# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(arch_ext_test "/root/repo/build/arch_ext_test")
set_tests_properties(arch_ext_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(arch_test "/root/repo/build/arch_test")
set_tests_properties(arch_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(im2col_test "/root/repo/build/im2col_test")
set_tests_properties(im2col_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(models_test "/root/repo/build/models_test")
set_tests_properties(models_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(resnet_train_test "/root/repo/build/resnet_train_test")
set_tests_properties(resnet_train_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sched_test "/root/repo/build/sched_test")
set_tests_properties(sched_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(train_test "/root/repo/build/train_test")
set_tests_properties(train_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
add_test(util_test "/root/repo/build/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;128;add_test;/root/repo/CMakeLists.txt;0;")
