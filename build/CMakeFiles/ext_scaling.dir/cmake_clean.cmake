file(REMOVE_RECURSE
  "CMakeFiles/ext_scaling.dir/bench/ext_scaling.cc.o"
  "CMakeFiles/ext_scaling.dir/bench/ext_scaling.cc.o.d"
  "ext_scaling"
  "ext_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
