file(REMOVE_RECURSE
  "CMakeFiles/fig10_main.dir/bench/fig10_main.cc.o"
  "CMakeFiles/fig10_main.dir/bench/fig10_main.cc.o.d"
  "fig10_main"
  "fig10_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
