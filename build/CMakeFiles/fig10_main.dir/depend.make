# Empty dependencies file for fig10_main.
# This may be replaced when dependencies are built.
