file(REMOVE_RECURSE
  "CMakeFiles/tab02_area_power.dir/bench/tab02_area_power.cc.o"
  "CMakeFiles/tab02_area_power.dir/bench/tab02_area_power.cc.o.d"
  "tab02_area_power"
  "tab02_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
