# Empty dependencies file for tab02_area_power.
# This may be replaced when dependencies are built.
