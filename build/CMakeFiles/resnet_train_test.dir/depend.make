# Empty dependencies file for resnet_train_test.
# This may be replaced when dependencies are built.
