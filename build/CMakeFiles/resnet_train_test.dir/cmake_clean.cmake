file(REMOVE_RECURSE
  "CMakeFiles/resnet_train_test.dir/tests/resnet_train_test.cc.o"
  "CMakeFiles/resnet_train_test.dir/tests/resnet_train_test.cc.o.d"
  "resnet_train_test"
  "resnet_train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
