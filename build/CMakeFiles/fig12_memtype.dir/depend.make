# Empty dependencies file for fig12_memtype.
# This may be replaced when dependencies are built.
