file(REMOVE_RECURSE
  "CMakeFiles/fig12_memtype.dir/bench/fig12_memtype.cc.o"
  "CMakeFiles/fig12_memtype.dir/bench/fig12_memtype.cc.o.d"
  "fig12_memtype"
  "fig12_memtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
