file(REMOVE_RECURSE
  "CMakeFiles/fig14_utilization.dir/bench/fig14_utilization.cc.o"
  "CMakeFiles/fig14_utilization.dir/bench/fig14_utilization.cc.o.d"
  "fig14_utilization"
  "fig14_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
