# Empty dependencies file for fig14_utilization.
# This may be replaced when dependencies are built.
