file(REMOVE_RECURSE
  "CMakeFiles/fig05_schedule.dir/bench/fig05_schedule.cc.o"
  "CMakeFiles/fig05_schedule.dir/bench/fig05_schedule.cc.o.d"
  "fig05_schedule"
  "fig05_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
