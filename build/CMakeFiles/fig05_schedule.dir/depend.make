# Empty dependencies file for fig05_schedule.
# This may be replaced when dependencies are built.
