# Empty dependencies file for train_gn_mbs.
# This may be replaced when dependencies are built.
