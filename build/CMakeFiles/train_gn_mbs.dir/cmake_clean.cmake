file(REMOVE_RECURSE
  "CMakeFiles/train_gn_mbs.dir/examples/train_gn_mbs.cc.o"
  "CMakeFiles/train_gn_mbs.dir/examples/train_gn_mbs.cc.o.d"
  "train_gn_mbs"
  "train_gn_mbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_gn_mbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
