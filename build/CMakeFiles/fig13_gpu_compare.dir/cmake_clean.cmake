file(REMOVE_RECURSE
  "CMakeFiles/fig13_gpu_compare.dir/bench/fig13_gpu_compare.cc.o"
  "CMakeFiles/fig13_gpu_compare.dir/bench/fig13_gpu_compare.cc.o.d"
  "fig13_gpu_compare"
  "fig13_gpu_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_gpu_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
