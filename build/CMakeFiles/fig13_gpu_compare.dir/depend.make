# Empty dependencies file for fig13_gpu_compare.
# This may be replaced when dependencies are built.
