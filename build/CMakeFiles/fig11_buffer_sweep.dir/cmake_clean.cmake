file(REMOVE_RECURSE
  "CMakeFiles/fig11_buffer_sweep.dir/bench/fig11_buffer_sweep.cc.o"
  "CMakeFiles/fig11_buffer_sweep.dir/bench/fig11_buffer_sweep.cc.o.d"
  "fig11_buffer_sweep"
  "fig11_buffer_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_buffer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
