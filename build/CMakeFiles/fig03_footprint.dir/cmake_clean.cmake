file(REMOVE_RECURSE
  "CMakeFiles/fig03_footprint.dir/bench/fig03_footprint.cc.o"
  "CMakeFiles/fig03_footprint.dir/bench/fig03_footprint.cc.o.d"
  "fig03_footprint"
  "fig03_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
