# Empty dependencies file for fig03_footprint.
# This may be replaced when dependencies are built.
