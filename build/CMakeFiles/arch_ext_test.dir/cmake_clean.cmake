file(REMOVE_RECURSE
  "CMakeFiles/arch_ext_test.dir/tests/arch_ext_test.cc.o"
  "CMakeFiles/arch_ext_test.dir/tests/arch_ext_test.cc.o.d"
  "arch_ext_test"
  "arch_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
