# Empty dependencies file for arch_ext_test.
# This may be replaced when dependencies are built.
