file(REMOVE_RECURSE
  "CMakeFiles/fig04_grouping.dir/bench/fig04_grouping.cc.o"
  "CMakeFiles/fig04_grouping.dir/bench/fig04_grouping.cc.o.d"
  "fig04_grouping"
  "fig04_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
