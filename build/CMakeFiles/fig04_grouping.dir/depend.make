# Empty dependencies file for fig04_grouping.
# This may be replaced when dependencies are built.
