file(REMOVE_RECURSE
  "libmbs.a"
)
