# Empty dependencies file for mbs.
# This may be replaced when dependencies are built.
