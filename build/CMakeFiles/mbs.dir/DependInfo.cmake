
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/area.cc" "CMakeFiles/mbs.dir/src/arch/area.cc.o" "gcc" "CMakeFiles/mbs.dir/src/arch/area.cc.o.d"
  "/root/repo/src/arch/energy.cc" "CMakeFiles/mbs.dir/src/arch/energy.cc.o" "gcc" "CMakeFiles/mbs.dir/src/arch/energy.cc.o.d"
  "/root/repo/src/arch/gpu.cc" "CMakeFiles/mbs.dir/src/arch/gpu.cc.o" "gcc" "CMakeFiles/mbs.dir/src/arch/gpu.cc.o.d"
  "/root/repo/src/arch/memory.cc" "CMakeFiles/mbs.dir/src/arch/memory.cc.o" "gcc" "CMakeFiles/mbs.dir/src/arch/memory.cc.o.d"
  "/root/repo/src/arch/systolic.cc" "CMakeFiles/mbs.dir/src/arch/systolic.cc.o" "gcc" "CMakeFiles/mbs.dir/src/arch/systolic.cc.o.d"
  "/root/repo/src/core/block.cc" "CMakeFiles/mbs.dir/src/core/block.cc.o" "gcc" "CMakeFiles/mbs.dir/src/core/block.cc.o.d"
  "/root/repo/src/core/layer.cc" "CMakeFiles/mbs.dir/src/core/layer.cc.o" "gcc" "CMakeFiles/mbs.dir/src/core/layer.cc.o.d"
  "/root/repo/src/core/network.cc" "CMakeFiles/mbs.dir/src/core/network.cc.o" "gcc" "CMakeFiles/mbs.dir/src/core/network.cc.o.d"
  "/root/repo/src/engine/evaluator.cc" "CMakeFiles/mbs.dir/src/engine/evaluator.cc.o" "gcc" "CMakeFiles/mbs.dir/src/engine/evaluator.cc.o.d"
  "/root/repo/src/engine/result_sink.cc" "CMakeFiles/mbs.dir/src/engine/result_sink.cc.o" "gcc" "CMakeFiles/mbs.dir/src/engine/result_sink.cc.o.d"
  "/root/repo/src/engine/scenario.cc" "CMakeFiles/mbs.dir/src/engine/scenario.cc.o" "gcc" "CMakeFiles/mbs.dir/src/engine/scenario.cc.o.d"
  "/root/repo/src/engine/sweep_runner.cc" "CMakeFiles/mbs.dir/src/engine/sweep_runner.cc.o" "gcc" "CMakeFiles/mbs.dir/src/engine/sweep_runner.cc.o.d"
  "/root/repo/src/models/alexnet.cc" "CMakeFiles/mbs.dir/src/models/alexnet.cc.o" "gcc" "CMakeFiles/mbs.dir/src/models/alexnet.cc.o.d"
  "/root/repo/src/models/inception_v3.cc" "CMakeFiles/mbs.dir/src/models/inception_v3.cc.o" "gcc" "CMakeFiles/mbs.dir/src/models/inception_v3.cc.o.d"
  "/root/repo/src/models/inception_v4.cc" "CMakeFiles/mbs.dir/src/models/inception_v4.cc.o" "gcc" "CMakeFiles/mbs.dir/src/models/inception_v4.cc.o.d"
  "/root/repo/src/models/resnet.cc" "CMakeFiles/mbs.dir/src/models/resnet.cc.o" "gcc" "CMakeFiles/mbs.dir/src/models/resnet.cc.o.d"
  "/root/repo/src/models/zoo.cc" "CMakeFiles/mbs.dir/src/models/zoo.cc.o" "gcc" "CMakeFiles/mbs.dir/src/models/zoo.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "CMakeFiles/mbs.dir/src/sched/schedule.cc.o" "gcc" "CMakeFiles/mbs.dir/src/sched/schedule.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "CMakeFiles/mbs.dir/src/sched/scheduler.cc.o" "gcc" "CMakeFiles/mbs.dir/src/sched/scheduler.cc.o.d"
  "/root/repo/src/sched/traffic.cc" "CMakeFiles/mbs.dir/src/sched/traffic.cc.o" "gcc" "CMakeFiles/mbs.dir/src/sched/traffic.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "CMakeFiles/mbs.dir/src/sim/simulator.cc.o" "gcc" "CMakeFiles/mbs.dir/src/sim/simulator.cc.o.d"
  "/root/repo/src/train/data.cc" "CMakeFiles/mbs.dir/src/train/data.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/data.cc.o.d"
  "/root/repo/src/train/im2col.cc" "CMakeFiles/mbs.dir/src/train/im2col.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/im2col.cc.o.d"
  "/root/repo/src/train/loss.cc" "CMakeFiles/mbs.dir/src/train/loss.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/loss.cc.o.d"
  "/root/repo/src/train/model.cc" "CMakeFiles/mbs.dir/src/train/model.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/model.cc.o.d"
  "/root/repo/src/train/norm.cc" "CMakeFiles/mbs.dir/src/train/norm.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/norm.cc.o.d"
  "/root/repo/src/train/ops.cc" "CMakeFiles/mbs.dir/src/train/ops.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/ops.cc.o.d"
  "/root/repo/src/train/optim.cc" "CMakeFiles/mbs.dir/src/train/optim.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/optim.cc.o.d"
  "/root/repo/src/train/resnet_model.cc" "CMakeFiles/mbs.dir/src/train/resnet_model.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/resnet_model.cc.o.d"
  "/root/repo/src/train/tensor.cc" "CMakeFiles/mbs.dir/src/train/tensor.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/tensor.cc.o.d"
  "/root/repo/src/train/trainer.cc" "CMakeFiles/mbs.dir/src/train/trainer.cc.o" "gcc" "CMakeFiles/mbs.dir/src/train/trainer.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/mbs.dir/src/util/table.cc.o" "gcc" "CMakeFiles/mbs.dir/src/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
