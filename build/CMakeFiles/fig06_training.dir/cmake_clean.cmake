file(REMOVE_RECURSE
  "CMakeFiles/fig06_training.dir/bench/fig06_training.cc.o"
  "CMakeFiles/fig06_training.dir/bench/fig06_training.cc.o.d"
  "fig06_training"
  "fig06_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
