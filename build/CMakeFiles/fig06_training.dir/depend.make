# Empty dependencies file for fig06_training.
# This may be replaced when dependencies are built.
