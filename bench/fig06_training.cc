// Fig. 6: training effectiveness of GN+MBS vs BN (left: validation error
// curves; right: pre-activation means of the first and last normalization
// layers, plus the drifting means of un-normalized training).
//
// The paper trains ResNet50 on ImageNet across 4 GPUs; this reproduction
// trains a compact CNN on a synthetic dataset (DESIGN.md substitutions) and
// additionally reports the bit-level check that MBS serialization does not
// change GN gradients — the property that makes the curves coincide. The
// three independent training runs fan out across the engine's SweepRunner.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "engine/engine.h"
#include "train/data.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace mbs;
  using namespace mbs::train;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  // Noise level chosen so the task is learnable but not saturated — the
  // curves separate the way Fig. 6's ImageNet curves do.
  const Dataset train_set =
      make_synthetic_dataset(512, 8, 1, 12, /*seed=*/101, /*noise=*/1.0);
  const Dataset val_set =
      make_synthetic_dataset(256, 8, 1, 12, /*seed=*/102, /*noise=*/1.0);

  TrainRunConfig rc;
  rc.epochs = 14;
  rc.batch = 32;
  rc.sgd.lr = 0.05;             // paper: initial LR 0.05 (Bottou et al.)
  rc.lr_decay_epochs = {8, 12}; // scaled-down analogue of 30/60/80
  rc.lr_decay = 0.1;

  auto run = [&](NormMode norm, bool serialize) {
    return [&, norm, serialize] {
      SmallCnnConfig cfg;
      cfg.norm = norm;
      cfg.classes = 8;
      cfg.stage_channels = {16, 32};
      cfg.seed = 2026;
      SmallCnn model(cfg);
      TrainRunConfig r = rc;
      if (serialize) r.chunks = {8, 8, 8, 8};  // MBS sub-batches
      return train_model(model, train_set, val_set, r);
    };
  };

  std::printf("=== Fig. 6: BN vs GN+MBS training (synthetic ImageNet "
              "stand-in; see DESIGN.md) ===\n\n");
  // Every epoch row compares all three training runs, so sharding cannot
  // subdivide the training work — only the emitted rows.
  const auto runs = driver.runner().map<std::vector<EpochLog>>(
      {run(NormMode::kBatch, /*serialize=*/false),
       run(NormMode::kGroup, /*serialize=*/true),
       run(NormMode::kNone, /*serialize=*/false)});
  const auto& bn = runs[0];
  const auto& gn_mbs = runs[1];
  const auto& none = runs[2];

  engine::ResultSink sink(
      "", {"epoch", "BN val err [%]", "GN+MBS val err [%]",
           "no-norm val err [%]", "BN preact mean (last)",
           "GN+MBS preact mean (last)", "no-norm preact mean (last)"});
  for (std::size_t e = 0; e < bn.size(); ++e) {
    if (!shard.owns(e)) continue;  // one output row per epoch
    sink.add_row({std::to_string(e), util::fmt(bn[e].val_error, 1),
                  util::fmt(gn_mbs[e].val_error, 1),
                  util::fmt(none[e].val_error, 1),
                  util::fmt(bn[e].last_preact_mean, 3),
                  util::fmt(gn_mbs[e].last_preact_mean, 3),
                  util::fmt(none[e].last_preact_mean, 3)});
  }
  sink.print(std::cout);
  sink.export_files("fig06_training");

  std::printf("\nfinal validation error: BN %.1f%%  GN+MBS %.1f%%  "
              "no-norm %.1f%%\n", bn.back().val_error,
              gn_mbs.back().val_error, none.back().val_error);
  std::printf("(paper: BN 24.0%% vs GN+MBS 23.8%% top-1 on ImageNet — "
              "comparable effectiveness; normalized pre-activations stay "
              "near zero, un-normalized ones drift.)\n\n");

  // The bit-level argument behind the coincident curves: serialized GN
  // gradients equal full-batch GN gradients.
  SmallCnnConfig cfg;
  cfg.norm = NormMode::kGroup;
  cfg.seed = 4;
  cfg.classes = 8;
  const Tensor x = train_set.images.slice_batch(0, 32);
  const std::vector<int> labels(train_set.labels.begin(),
                                train_set.labels.begin() + 32);
  SmallCnn full(cfg), serial(cfg);
  compute_gradients(full, x, labels, {32});
  compute_gradients(serial, x, labels, {8, 8, 8, 8});
  double max_rel = 0;
  auto gf = full.gradients(), gs = serial.gradients();
  for (std::size_t i = 0; i < gf.size(); ++i)
    for (std::int64_t j = 0; j < gf[i]->size(); ++j) {
      const double a = (*gf[i])[j], b = (*gs[i])[j];
      const double scale = std::max({std::fabs(a), std::fabs(b), 1e-6});
      max_rel = std::max(max_rel, std::fabs(a - b) / scale);
    }
  std::printf("max relative gradient difference, GN full-batch vs GN+MBS "
              "(4 sub-batches): %.2e (float32 noise)\n", max_rel);
  return 0;
}
