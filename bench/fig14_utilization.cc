// Fig. 14: systolic-array utilization of convolution and FC layers per CNN
// and configuration, with unlimited DRAM bandwidth to isolate the effect of
// sub-batch size and GEMM shape. Also prints the Tab. 1 GEMM dimensions the
// mapping relies on. The 30-scenario grid is one engine sweep.
#include <cstdio>
#include <iostream>

#include "engine/engine.h"
#include "models/zoo.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  std::printf("=== Tab. 1: im2col GEMM dimensions per training phase ===\n");
  engine::ResultSink tab1("", {"phase", "Gh", "Gw", "K"});
  engine::add_rows(tab1, shard,
                   {{"Forward", "N x Ho x Wo", "Co", "Ci x R x S"},
                    {"Data Gradient", "N x Hi x Wi", "Ci", "Co x R x S"},
                    {"Weight Gradient", "Ci x R x S", "Co", "N x Ho x Wo"}});
  tab1.print(std::cout);

  std::printf("\n=== Fig. 14: systolic array utilization (conv + FC, "
              "unlimited DRAM bandwidth) ===\n\n");

  const std::vector<sched::ExecConfig> configs = {
      sched::ExecConfig::kBaseline, sched::ExecConfig::kArchOpt,
      sched::ExecConfig::kMbsFs, sched::ExecConfig::kMbs1,
      sched::ExecConfig::kMbs2};

  sim::WaveCoreConfig hw;
  hw.unlimited_dram_bw = true;
  const auto grid = engine::scenario_grid(models::evaluated_network_names(),
                                          configs, {}, hw);
  // The AVG row aggregates every network, so each shard needs the full
  // grid regardless of which rows it owns.
  const auto results = driver.run(grid, [](std::size_t) { return true; });

  engine::ResultSink sink(
      "", {"network", "Baseline", "ArchOpt", "MBS-FS", "MBS1", "MBS2"});
  const std::size_t ncfg = configs.size();
  std::vector<double> sums(ncfg, 0.0);
  std::size_t count = 0;
  for (std::size_t i = 0; i < results.size(); i += ncfg) {
    std::vector<std::string> row{results[i].network->name};
    for (std::size_t ci = 0; ci < ncfg; ++ci) {
      const double u = results[i + ci].step.systolic_utilization;
      row.push_back(util::fmt(u, 3));
      sums[ci] += u;
    }
    if (shard.owns(count)) sink.add_row(row);  // one output row per network
    ++count;
  }
  std::vector<std::string> avg{"AVG"};
  for (double s : sums) avg.push_back(util::fmt(s / static_cast<double>(count), 3));
  if (shard.owns(count)) sink.add_row(avg);  // the final AVG row
  sink.print(std::cout);
  sink.export_files("fig14_utilization");

  std::printf("\npaper's averages: Baseline 0.538, ArchOpt 0.815, MBS-FS "
              "0.667, MBS1/MBS2 0.786 (within 3%% of full mini-batch).\n");
  return 0;
}
