// Fig. 14: systolic-array utilization of convolution and FC layers per CNN
// and configuration, with unlimited DRAM bandwidth to isolate the effect of
// sub-batch size and GEMM shape. Also prints the Tab. 1 GEMM dimensions the
// mapping relies on.
#include <cstdio>
#include <iostream>

#include "arch/systolic.h"
#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace mbs;

  std::printf("=== Tab. 1: im2col GEMM dimensions per training phase ===\n");
  util::Table tab1({"phase", "Gh", "Gw", "K"});
  tab1.add_row({"Forward", "N x Ho x Wo", "Co", "Ci x R x S"});
  tab1.add_row({"Data Gradient", "N x Hi x Wi", "Ci", "Co x R x S"});
  tab1.add_row({"Weight Gradient", "Ci x R x S", "Co", "N x Ho x Wo"});
  tab1.print(std::cout);

  std::printf("\n=== Fig. 14: systolic array utilization (conv + FC, "
              "unlimited DRAM bandwidth) ===\n\n");

  const sched::ExecConfig configs[] = {
      sched::ExecConfig::kBaseline, sched::ExecConfig::kArchOpt,
      sched::ExecConfig::kMbsFs, sched::ExecConfig::kMbs1,
      sched::ExecConfig::kMbs2};

  util::Table t({"network", "Baseline", "ArchOpt", "MBS-FS", "MBS1", "MBS2"});
  double sums[5] = {0, 0, 0, 0, 0};
  int count = 0;
  for (const auto& name : models::evaluated_network_names()) {
    const core::Network net = models::make_network(name);
    std::vector<std::string> row{net.name};
    int ci = 0;
    for (auto cfg : configs) {
      sim::WaveCoreConfig hw;
      hw.unlimited_dram_bw = true;
      const auto r =
          sim::simulate_step(net, sched::build_schedule(net, cfg), hw);
      row.push_back(util::fmt(r.systolic_utilization, 3));
      sums[ci++] += r.systolic_utilization;
    }
    t.add_row(row);
    ++count;
  }
  std::vector<std::string> avg{"AVG"};
  for (double s : sums) avg.push_back(util::fmt(s / count, 3));
  t.add_row(avg);
  t.print(std::cout);

  std::printf("\npaper's averages: Baseline 0.538, ArchOpt 0.815, MBS-FS "
              "0.667, MBS1/MBS2 0.786 (within 3%% of full mini-batch).\n");
  return 0;
}
