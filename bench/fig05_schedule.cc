// Fig. 5: the serialized training flow MBS produces for ResNet50 — layer
// groups, per-group sub-batch sizes, iteration counts and the chunk
// sequences (the paper's run shows e.g. "3,3,3,3,3,3,3,3,3,3,2"). Schedules
// and traffic come from one engine sweep.
#include <cstdio>

#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const auto grid = engine::scenario_grid(
      {"resnet50"}, {sched::ExecConfig::kMbs1, sched::ExecConfig::kMbs2}, {},
      {}, engine::Stage::kTraffic);
  // Console-only bench: shard by printed config section (= scenario index).
  const auto results = driver.run(grid);
  const core::Network& net = *results[0].network;

  std::printf("=== Fig. 5: MBS serialized training flow for ResNet50 "
              "(mini-batch %d per core) ===\n\n", net.mini_batch_per_core);

  for (std::size_t ri = 0; ri < results.size(); ++ri) {
    if (!shard.owns(ri)) continue;  // one printed section per config
    const engine::ScenarioResult& r = results[ri];
    const sched::Schedule& s = *r.schedule;
    std::printf("%s (%zu groups, %d total sub-batch iterations, "
                "%.2f GiB DRAM/step/core):\n",
                sched::to_string(r.scenario.config), s.groups.size(),
                s.total_iterations(),
                r.traffic->dram_bytes() / (1024.0 * 1024 * 1024));
    for (std::size_t g = 0; g < s.groups.size(); ++g) {
      const sched::Group& grp = s.groups[g];
      std::printf("  Group%zu  blocks %-8s .. %-8s  sub-batch %2d  "
                  "%2d iterations  sizes = ",
                  g + 1,
                  net.blocks[static_cast<std::size_t>(grp.first)].name.c_str(),
                  net.blocks[static_cast<std::size_t>(grp.last)].name.c_str(),
                  grp.sub_batch, grp.iterations);
      const auto chunks = grp.chunks(s.mini_batch);
      for (std::size_t i = 0; i < chunks.size(); ++i)
        std::printf("%s%d", i ? "," : "", chunks[i]);
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Paper's run: 4 groups with sizes 3,...,2 / 6,...,2 / 11,11,10 "
              "/ 16,16 — monotonically growing sub-batches as down-sampling "
              "shrinks features.\n");
  return 0;
}
