// Fig. 12: ResNet50 training-time sensitivity to the off-chip memory type
// (HBM2x2 / GDDR5 / LPDDR4) for Baseline / ArchOpt / IL / MBS2, with the
// execution-time breakdown by layer type. Speedups are normalized to
// Baseline with HBM2x2. Uses 64 samples per core (the paper grows the
// mini-batch for the high-capacity off-package memories). The 12 scenarios
// share one ResNet50 build and four schedules via the engine's evaluator.
#include <cstdio>
#include <iostream>

#include "arch/memory.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const sched::ExecConfig configs[] = {
      sched::ExecConfig::kBaseline, sched::ExecConfig::kArchOpt,
      sched::ExecConfig::kIL, sched::ExecConfig::kMbs2};
  const arch::MemoryConfig memories[] = {arch::hbm2_x2(), arch::gddr5(),
                                         arch::lpddr4()};

  std::vector<engine::Scenario> grid;
  for (auto cfg : configs)
    for (const auto& mem : memories) {
      engine::Scenario s;
      s.network = "resnet50";
      s.config = cfg;
      s.params.mini_batch = 64;
      s.hw.memory = mem;
      grid.push_back(std::move(s));
    }

  const auto results = driver.run(grid);

  std::printf("=== Fig. 12: ResNet50 sensitivity to memory type "
              "(64 samples/core) ===\n\n");
  engine::ResultSink mem_sink(
      "Tab. 4 memory configurations",
      {"memory", "total BW [GiB/s]", "capacity [GiB]", "channels"});
  {
    const auto mems = arch::all_memory_configs();
    for (std::size_t mi = 0; mi < mems.size(); ++mi) {
      if (!shard.owns(mi)) continue;  // one output row per memory config
      const auto& m = mems[mi];
      mem_sink.add_row(
          {m.name,
           util::fmt(m.bandwidth_bytes_per_s / (1024.0 * 1024 * 1024), 1),
           util::fmt(static_cast<double>(m.capacity_bytes) /
                     (1024.0 * 1024 * 1024), 0),
           std::to_string(m.channels)});
    }
  }
  mem_sink.print(std::cout);

  // Reference: Baseline with HBM2x2 — the first scenario of the grid.
  const double ref = results[0].step.time_s;
  engine::ResultSink sink(
      "per-step time breakdown by layer type [ms]",
      {"config", "memory", "time [ms]", "conv", "fc", "norm", "pool", "sum",
       "speedup"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!shard.owns(i)) continue;  // one output row per scenario
    const engine::ScenarioResult& r = results[i];
    auto ms = [](double s) { return util::fmt(s * 1e3, 1); };
    sink.add_row({sched::to_string(r.scenario.config), r.scenario.hw.memory.name,
                  ms(r.step.time_s), ms(r.step.time_by_type.conv),
                  ms(r.step.time_by_type.fc), ms(r.step.time_by_type.norm),
                  ms(r.step.time_by_type.pool), ms(r.step.time_by_type.sum),
                  util::fmt(ref / r.step.time_s, 2)});
  }
  std::printf("\n");
  sink.print(std::cout);
  mem_sink.export_files("fig12_memories");
  sink.export_files("fig12_breakdown");
  std::printf("\npaper's headline: MBS2 loses ~4%% moving to GDDR5 and <15%% "
              "to LPDDR4, while Baseline loses ~40%%.\n");
  return 0;
}
