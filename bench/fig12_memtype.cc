// Fig. 12: ResNet50 training-time sensitivity to the off-chip memory type
// (HBM2x2 / GDDR5 / LPDDR4) for Baseline / ArchOpt / IL / MBS2, with the
// execution-time breakdown by layer type. Speedups are normalized to
// Baseline with HBM2x2. Uses 64 samples per core (the paper grows the
// mini-batch for the high-capacity off-package memories).
#include <cstdio>
#include <iostream>

#include "arch/memory.h"
#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace mbs;
  const core::Network net = models::make_network("resnet50");
  sched::ScheduleParams params;
  params.mini_batch = 64;

  const sched::ExecConfig configs[] = {
      sched::ExecConfig::kBaseline, sched::ExecConfig::kArchOpt,
      sched::ExecConfig::kIL, sched::ExecConfig::kMbs2};
  const arch::MemoryConfig memories[] = {arch::hbm2_x2(), arch::gddr5(),
                                         arch::lpddr4()};

  std::printf("=== Fig. 12: ResNet50 sensitivity to memory type "
              "(64 samples/core) ===\n\n");
  std::printf("--- Tab. 4 memory configurations ---\n");
  util::Table mem_tab({"memory", "total BW [GiB/s]", "capacity [GiB]",
                       "channels"});
  for (const auto& m : arch::all_memory_configs())
    mem_tab.add_row({m.name,
                     util::fmt(m.bandwidth_bytes_per_s / (1024.0 * 1024 * 1024), 1),
                     util::fmt(static_cast<double>(m.capacity_bytes) /
                               (1024.0 * 1024 * 1024), 0),
                     std::to_string(m.channels)});
  mem_tab.print(std::cout);

  double ref = 0;
  util::Table t({"config", "memory", "time [ms]", "conv", "fc", "norm",
                 "pool", "sum", "speedup"});
  for (auto cfg : configs)
    for (const auto& mem : memories) {
      sim::WaveCoreConfig hw;
      hw.memory = mem;
      const auto r =
          sim::simulate_step(net, sched::build_schedule(net, cfg, params), hw);
      if (cfg == sched::ExecConfig::kBaseline && mem.name == "HBM2x2")
        ref = r.time_s;
      auto ms = [](double s) { return util::fmt(s * 1e3, 1); };
      t.add_row({sched::to_string(cfg), mem.name, ms(r.time_s),
                 ms(r.time_by_type.conv), ms(r.time_by_type.fc),
                 ms(r.time_by_type.norm), ms(r.time_by_type.pool),
                 ms(r.time_by_type.sum), util::fmt(ref / r.time_s, 2)});
    }
  std::printf("\n--- per-step time breakdown by layer type [ms] ---\n");
  t.print(std::cout);
  std::printf("\npaper's headline: MBS2 loses ~4%% moving to GDDR5 and <15%% "
              "to LPDDR4, while Baseline loses ~40%%.\n");
  return 0;
}
