// Fig. 10: per-training-step execution time (a), energy (b) and DRAM
// traffic (c) for the six evaluated CNNs under the six Tab. 3
// configurations. Bars in the paper are absolute values; lines are values
// normalized to Baseline (time, energy) and to ArchOpt (traffic).
//
// The 36-scenario grid runs through the parallel experiment engine: each
// network is built once and each (network, config) schedule is computed
// once, shared across the sweep threads.
#include <cstdio>
#include <iostream>

#include "engine/engine.h"
#include "models/zoo.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const std::vector<sched::ExecConfig> configs = sched::paper_tab3_configs();
  const std::vector<engine::Scenario> grid =
      engine::scenario_grid(models::evaluated_network_names(), configs);

  const auto results = driver.run(grid);

  std::printf("=== Fig. 10: per-step time / energy / DRAM traffic "
              "(WaveCore, HBM2, mini-batch 32/core; AlexNet 64) ===\n\n");

  engine::ResultSink time_sink(
      "Fig. 10a: execution time per training step",
      {"network", "config", "time [ms]", "vs Baseline", "vs ArchOpt"});
  engine::ResultSink energy_sink(
      "Fig. 10b: energy per training step",
      {"network", "config", "energy [J]", "vs Baseline", "DRAM share"});
  engine::ResultSink traffic_sink(
      "Fig. 10c: DRAM traffic per training step",
      {"network", "config", "DRAM [GiB]", "vs ArchOpt"});

  const std::size_t ncfg = configs.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!shard.owns(i)) continue;  // un-owned rows belong to other shards
    const engine::ScenarioResult& r = results[i];
    // Rows are network-major: the network's Baseline and ArchOpt rows sit at
    // the start of its stripe.
    const std::size_t base = i - i % ncfg;
    const sim::StepResult& baseline = results[base].step;
    const sim::StepResult& archopt = results[base + 1].step;

    time_sink.add_row({r.network->name, sched::to_string(r.scenario.config),
                       util::fmt(r.step.time_s * 1e3, 2),
                       util::fmt(baseline.time_s / r.step.time_s, 2),
                       i % ncfg >= 1
                           ? util::fmt(archopt.time_s / r.step.time_s, 2)
                           : "-"});
    energy_sink.add_row(
        {r.network->name, sched::to_string(r.scenario.config),
         util::fmt(r.step.energy.total(), 2),
         util::fmt(r.step.energy.total() / baseline.energy.total(), 2),
         util::fmt(r.step.energy.dram_fraction() * 100, 1) + "%"});
    traffic_sink.add_row(
        {r.network->name, sched::to_string(r.scenario.config),
         util::fmt(r.step.dram_bytes / static_cast<double>(util::kGiB), 2),
         i % ncfg >= 1 ? util::fmt(r.step.dram_bytes / archopt.dram_bytes, 2)
                       : "-"});
  }

  time_sink.print(std::cout);
  std::printf("\n");
  energy_sink.print(std::cout);
  std::printf("\n");
  traffic_sink.print(std::cout);
  time_sink.export_files("fig10_time");
  energy_sink.export_files("fig10_energy");
  traffic_sink.export_files("fig10_traffic");
  return 0;
}
