// Fig. 10: per-training-step execution time (a), energy (b) and DRAM
// traffic (c) for the six evaluated CNNs under the six Tab. 3
// configurations. Bars in the paper are absolute values; lines are values
// normalized to Baseline (time, energy) and to ArchOpt (traffic).
#include <cstdio>
#include <iostream>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace mbs;

  const sched::ExecConfig configs[] = {
      sched::ExecConfig::kBaseline, sched::ExecConfig::kArchOpt,
      sched::ExecConfig::kIL,       sched::ExecConfig::kMbsFs,
      sched::ExecConfig::kMbs1,     sched::ExecConfig::kMbs2};

  std::printf("=== Fig. 10: per-step time / energy / DRAM traffic "
              "(WaveCore, HBM2, mini-batch 32/core; AlexNet 64) ===\n\n");

  util::Table time_tab({"network", "config", "time [ms]", "vs Baseline",
                        "vs ArchOpt"});
  util::Table energy_tab({"network", "config", "energy [J]", "vs Baseline",
                          "DRAM share"});
  util::Table traffic_tab({"network", "config", "DRAM [GiB]", "vs ArchOpt"});

  for (const auto& name : models::evaluated_network_names()) {
    const core::Network net = models::make_network(name);
    sim::WaveCoreConfig hw;

    double base_time = 0, archopt_time = 0, base_energy = 0, archopt_traffic = 0;
    for (auto cfg : configs) {
      const sched::Schedule s = sched::build_schedule(net, cfg);
      const sim::StepResult r = sim::simulate_step(net, s, hw);
      if (cfg == sched::ExecConfig::kBaseline) {
        base_time = r.time_s;
        base_energy = r.energy.total();
      }
      if (cfg == sched::ExecConfig::kArchOpt) {
        archopt_time = r.time_s;
        archopt_traffic = r.dram_bytes;
      }
      time_tab.add_row({net.name, sched::to_string(cfg),
                        util::fmt(r.time_s * 1e3, 2),
                        util::fmt(base_time / r.time_s, 2),
                        archopt_time > 0
                            ? util::fmt(archopt_time / r.time_s, 2)
                            : "-"});
      energy_tab.add_row({net.name, sched::to_string(cfg),
                          util::fmt(r.energy.total(), 2),
                          util::fmt(r.energy.total() / base_energy, 2),
                          util::fmt(r.energy.dram_fraction() * 100, 1) + "%"});
      traffic_tab.add_row(
          {net.name, sched::to_string(cfg),
           util::fmt(r.dram_bytes / static_cast<double>(util::kGiB), 2),
           archopt_traffic > 0
               ? util::fmt(r.dram_bytes / archopt_traffic, 2)
               : "-"});
    }
  }

  std::printf("--- Fig. 10a: execution time per training step ---\n");
  time_tab.print(std::cout);
  std::printf("\n--- Fig. 10b: energy per training step ---\n");
  energy_tab.print(std::cout);
  std::printf("\n--- Fig. 10c: DRAM traffic per training step ---\n");
  traffic_tab.print(std::cout);
  return 0;
}
