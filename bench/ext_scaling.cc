// Extension study (Sec. 4.2 "Scalability"): weak scaling of MBS training
// across multiple WaveCore accelerators. Each device runs the same MBS
// schedule on its mini-batch shard and joins a ring all-reduce of the 16b
// parameter gradients at the end of the step — the only communication the
// paper's scheme requires besides loss computation. The per-device step
// simulations come from one engine sweep; the (closed-form) scaling model
// is evaluated on top of them.
#include <cstdio>
#include <iostream>

#include "arch/scaling.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  std::printf("=== Extension: multi-accelerator weak scaling of MBS2 "
              "training ===\n\n");

  const auto grid = engine::scenario_grid({"resnet50", "inception_v3"},
                                          {sched::ExecConfig::kMbs2});
  // Each scenario fans out into six device-count rows: scenario r feeds
  // rows 6*r .. 6*r+5, so it is needed when the shard owns any of them.
  const std::size_t kDeviceCounts = 6;
  auto scenario_needed = [&](std::size_t r) {
    for (std::size_t d = 0; d < kDeviceCounts; ++d)
      if (shard.owns(r * kDeviceCounts + d)) return true;
    return false;
  };
  const auto results = driver.run(grid, scenario_needed);

  engine::ResultSink sink(
      "", {"network", "devices", "step [ms]", "all-reduce [ms]", "efficiency",
           "samples/s"});
  for (std::size_t ri = 0; ri < results.size(); ++ri) {
    if (!scenario_needed(ri)) continue;
    const engine::ScenarioResult& r = results[ri];
    const double grad_bytes =
        2.0 * static_cast<double>(r.network->param_count());  // 16b gradients

    std::size_t di = 0;
    for (const auto& sr : arch::weak_scaling_sweep(
             r.step.time_s, grad_bytes, {1, 2, 4, 8, 16, 32})) {
      const std::size_t row = ri * kDeviceCounts + di++;
      if (!shard.owns(row)) continue;  // one output row per device count
      const double samples =
          static_cast<double>(r.network->mini_batch_per_core) * 2 * sr.devices;
      sink.add_row({r.network->name, std::to_string(sr.devices),
                    util::fmt(sr.step_time_s * 1e3, 1),
                    util::fmt(sr.allreduce_time_s * 1e3, 1),
                    util::fmt(sr.efficiency * 100, 1) + "%",
                    util::fmt(samples / sr.step_time_s, 0)});
    }
  }
  sink.print(std::cout);
  sink.export_files("ext_scaling");
  std::printf("\nMBS helps scaling indirectly: shorter steps raise the "
              "relative all-reduce cost, but even at 32 devices efficiency "
              "stays high because gradients are 16b and the ring moves at "
              "most 2x their volume.\n");
  return 0;
}
