// Extension study (Sec. 4.2 "Scalability"): weak scaling of MBS training
// across multiple WaveCore accelerators. Each device runs the same MBS
// schedule on its mini-batch shard and joins a ring all-reduce of the 16b
// parameter gradients at the end of the step — the only communication the
// paper's scheme requires besides loss computation.
#include <cstdio>
#include <iostream>

#include "arch/scaling.h"
#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace mbs;

  std::printf("=== Extension: multi-accelerator weak scaling of MBS2 "
              "training ===\n\n");

  util::Table t({"network", "devices", "step [ms]", "all-reduce [ms]",
                 "efficiency", "samples/s"});
  for (const char* name : {"resnet50", "inception_v3"}) {
    const core::Network net = models::make_network(name);
    const sched::Schedule s =
        sched::build_schedule(net, sched::ExecConfig::kMbs2);
    const sim::StepResult r =
        sim::simulate_step(net, s, sim::WaveCoreConfig{});
    const double grad_bytes =
        2.0 * static_cast<double>(net.param_count());  // 16b gradients

    for (const auto& sr : arch::weak_scaling_sweep(
             r.time_s, grad_bytes, {1, 2, 4, 8, 16, 32})) {
      const double samples =
          static_cast<double>(net.mini_batch_per_core) * 2 * sr.devices;
      t.add_row({net.name, std::to_string(sr.devices),
                 util::fmt(sr.step_time_s * 1e3, 1),
                 util::fmt(sr.allreduce_time_s * 1e3, 1),
                 util::fmt(sr.efficiency * 100, 1) + "%",
                 util::fmt(samples / sr.step_time_s, 0)});
    }
  }
  t.print(std::cout);
  std::printf("\nMBS helps scaling indirectly: shorter steps raise the "
              "relative all-reduce cost, but even at 32 devices efficiency "
              "stays high because gradients are 16b and the ring moves at "
              "most 2x their volume.\n");
  return 0;
}
