// google-benchmark microbenchmarks of the library's hot paths — the
// systolic GEMM timing model, the scheduler and the network builders — plus
// the engine layer on top of them: single-scenario evaluation (cold vs
// memoized) and full Fig. 10-style sweeps (serial vs threaded). These bound
// the cost of design-space studies, which run thousands of scenarios.
#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "models/zoo.h"
#include "sched/scheduler.h"

namespace {

using namespace mbs;

engine::Scenario resnet50_mbs2() {
  engine::Scenario s;
  s.network = "resnet50";
  s.config = sched::ExecConfig::kMbs2;
  return s;
}

// ---- Library primitives -----------------------------------------------------

void BM_SimulateGemm(benchmark::State& state) {
  arch::SystolicConfig cfg;
  const arch::GemmShape shape{100352, 256, 1152};
  for (auto _ : state)
    benchmark::DoNotOptimize(arch::simulate_gemm(cfg, shape));
}
BENCHMARK(BM_SimulateGemm);

void BM_BuildScheduleGreedy(benchmark::State& state) {
  const core::Network net = models::make_network("resnet50");
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::build_schedule(net, sched::ExecConfig::kMbs2));
}
BENCHMARK(BM_BuildScheduleGreedy);

void BM_BuildScheduleOptimalDp(benchmark::State& state) {
  const core::Network net = models::make_network("resnet50");
  sched::ScheduleParams p;
  p.optimal_grouping = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::build_schedule(net, sched::ExecConfig::kMbs2, p));
}
BENCHMARK(BM_BuildScheduleOptimalDp);

void BM_BuildResNet50(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(models::make_network("resnet50"));
}
BENCHMARK(BM_BuildResNet50);

// ---- Engine: memoized scenario evaluation -----------------------------------

// Full cold pipeline: network build + schedule + traffic + simulate_step.
void BM_EvaluateScenarioCold(benchmark::State& state) {
  const engine::Scenario s = resnet50_mbs2();
  for (auto _ : state) {
    engine::Evaluator eval;
    benchmark::DoNotOptimize(engine::evaluate_scenario(s, eval));
  }
}
BENCHMARK(BM_EvaluateScenarioCold);

// Memoized path: every stage is an evaluator cache hit.
void BM_EvaluateScenarioCached(benchmark::State& state) {
  const engine::Scenario s = resnet50_mbs2();
  engine::Evaluator eval;
  engine::evaluate_scenario(s, eval);  // warm the caches
  for (auto _ : state)
    benchmark::DoNotOptimize(engine::evaluate_scenario(s, eval));
}
BENCHMARK(BM_EvaluateScenarioCached);

// ---- Engine: Fig. 10-shaped sweeps (6 networks x 6 configs) -----------------

void BM_SweepFig10Serial(benchmark::State& state) {
  const auto grid = engine::scenario_grid(models::evaluated_network_names(),
                                          sched::paper_tab3_configs());
  engine::SweepOptions opts;
  opts.threads = 1;
  const engine::SweepRunner runner(opts);
  for (auto _ : state) {
    engine::Evaluator eval;
    benchmark::DoNotOptimize(runner.run(grid, eval));
  }
}
BENCHMARK(BM_SweepFig10Serial);

void BM_SweepFig10Threaded(benchmark::State& state) {
  const auto grid = engine::scenario_grid(models::evaluated_network_names(),
                                          sched::paper_tab3_configs());
  const engine::SweepRunner runner;  // hardware_concurrency threads
  for (auto _ : state) {
    engine::Evaluator eval;
    benchmark::DoNotOptimize(runner.run(grid, eval));
  }
}
BENCHMARK(BM_SweepFig10Threaded);

}  // namespace

BENCHMARK_MAIN();
