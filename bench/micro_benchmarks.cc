// google-benchmark microbenchmarks of the library's hot paths — the
// systolic GEMM timing model, the scheduler and the network builders — plus
// the engine layer on top of them: single-scenario evaluation (cold vs
// memoized) and full Fig. 10-style sweeps (serial vs threaded), and the
// training kernel layer (blocked GEMM, im2col convolution, whole training
// steps; serial vs pooled via util::set_thread_budget). These bound the
// cost of design-space studies and of the Fig. 6 training reproduction.
// PR 6 adds roofline rows: per-GEMM-kernel GFLOP/s and fraction of the
// measured single-core FMA peak, swept over thread budgets {1,2,4,8} and
// both microkernel families (portable/avx2) — the numbers behind
// BENCH_PR6.json's scaling table.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "engine/engine.h"
#include "models/zoo.h"
#include "sched/scheduler.h"
#include "train/data.h"
#include "train/gemm_microkernels.h"
#include "train/im2col.h"
#include "train/model.h"
#include "train/ops.h"
#include "train/trainer.h"
#include "util/cpu.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

using namespace mbs;

engine::Scenario resnet50_mbs2() {
  engine::Scenario s;
  s.network = "resnet50";
  s.config = sched::ExecConfig::kMbs2;
  return s;
}

// ---- Library primitives -----------------------------------------------------

void BM_SimulateGemm(benchmark::State& state) {
  arch::SystolicConfig cfg;
  const arch::GemmShape shape{100352, 256, 1152};
  for (auto _ : state)
    benchmark::DoNotOptimize(arch::simulate_gemm(cfg, shape));
}
BENCHMARK(BM_SimulateGemm);

void BM_BuildScheduleGreedy(benchmark::State& state) {
  const core::Network net = models::make_network("resnet50");
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::build_schedule(net, sched::ExecConfig::kMbs2));
}
BENCHMARK(BM_BuildScheduleGreedy);

void BM_BuildScheduleOptimalDp(benchmark::State& state) {
  const core::Network net = models::make_network("resnet50");
  sched::ScheduleParams p;
  p.optimal_grouping = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::build_schedule(net, sched::ExecConfig::kMbs2, p));
}
BENCHMARK(BM_BuildScheduleOptimalDp);

void BM_BuildResNet50(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(models::make_network("resnet50"));
}
BENCHMARK(BM_BuildResNet50);

// ---- Engine: memoized scenario evaluation -----------------------------------

// Full cold pipeline: network build + schedule + traffic + simulate_step.
void BM_EvaluateScenarioCold(benchmark::State& state) {
  const engine::Scenario s = resnet50_mbs2();
  for (auto _ : state) {
    engine::Evaluator eval;
    benchmark::DoNotOptimize(engine::evaluate_scenario(s, eval));
  }
}
BENCHMARK(BM_EvaluateScenarioCold);

// Memoized path: every stage is an evaluator cache hit.
void BM_EvaluateScenarioCached(benchmark::State& state) {
  const engine::Scenario s = resnet50_mbs2();
  engine::Evaluator eval;
  engine::evaluate_scenario(s, eval);  // warm the caches
  for (auto _ : state)
    benchmark::DoNotOptimize(engine::evaluate_scenario(s, eval));
}
BENCHMARK(BM_EvaluateScenarioCached);

// ---- Engine: Fig. 10-shaped sweeps (6 networks x 6 configs) -----------------

void BM_SweepFig10Serial(benchmark::State& state) {
  const auto grid = engine::scenario_grid(models::evaluated_network_names(),
                                          sched::paper_tab3_configs());
  engine::SweepOptions opts;
  opts.threads = 1;
  const engine::SweepRunner runner(opts);
  for (auto _ : state) {
    engine::Evaluator eval;
    benchmark::DoNotOptimize(runner.run(grid, eval));
  }
}
BENCHMARK(BM_SweepFig10Serial);

void BM_SweepFig10Threaded(benchmark::State& state) {
  const auto grid = engine::scenario_grid(models::evaluated_network_names(),
                                          sched::paper_tab3_configs());
  const engine::SweepRunner runner;  // hardware_concurrency threads
  for (auto _ : state) {
    engine::Evaluator eval;
    benchmark::DoNotOptimize(runner.run(grid, eval));
  }
}
BENCHMARK(BM_SweepFig10Threaded);

// ---- Engine: schedule-group batching (fig12-shaped sweep) -------------------

// Twelve scenarios sharing four schedules (4 configs x 3 memory systems):
// grouped runs do one schedule/traffic lookup per group, ungrouped ones do
// one per scenario. state.range(0) selects grouping (1 = on).
void BM_TrafficGrouped(benchmark::State& state) {
  std::vector<engine::Scenario> grid;
  for (auto cfg : {sched::ExecConfig::kBaseline, sched::ExecConfig::kArchOpt,
                   sched::ExecConfig::kIL, sched::ExecConfig::kMbs2})
    for (const auto& mem :
         {arch::hbm2_x2(), arch::gddr5(), arch::lpddr4()}) {
      engine::Scenario s;
      s.network = "resnet50";
      s.config = cfg;
      s.hw.memory = mem;
      grid.push_back(std::move(s));
    }
  engine::SweepOptions opts;
  opts.group_by_schedule = state.range(0) != 0;
  const engine::SweepRunner runner(opts);
  for (auto _ : state) {
    engine::Evaluator eval;
    benchmark::DoNotOptimize(runner.run(grid, eval));
  }
}
BENCHMARK(BM_TrafficGrouped)->Arg(1)->Arg(0);

// ---- Training kernel layer (serial = budget 1, pooled = hardware) -----------

// state.range(0) is the thread budget (0 = hardware concurrency).
void BM_GemmSmall(benchmark::State& state) {
  // M/N/K deliberately not tile multiples.
  util::Rng rng(1);
  const train::Tensor a = train::Tensor::randn({129, 65}, rng);
  const train::Tensor b = train::Tensor::randn({65, 130}, rng);
  util::set_thread_budget(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(train::matmul(a, b));
  util::set_thread_budget(-1);
  state.SetLabel("remainder tiles, no zoo layer");
}
BENCHMARK(BM_GemmSmall)->Arg(1)->Arg(0);

void BM_GemmResNetShaped(benchmark::State& state) {
  // A fig06-scale im2col GEMM: A [N*Ho*Wo, Ci*Kh*Kw] x W^T [K, Co] — the
  // forward GEMM of the fig06 SmallCnn stage-2 3x3 conv (batch 32,
  // Ci=Co=32 @ 12x12: M = 32*12*12 = 4608, K = 32*3*3 = 288).
  util::Rng rng(2);
  const train::Tensor a = train::Tensor::randn({4608, 288}, rng);
  const train::Tensor w = train::Tensor::randn({32, 288}, rng);
  const train::Tensor bias = train::Tensor::randn({32}, rng, 0.1);
  util::set_thread_budget(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(train::matmul_bt_f32(a, w, bias));
  util::set_thread_budget(-1);
  state.SetLabel("fig06 SmallCnn stage-2 3x3 fwd GEMM");
}
BENCHMARK(BM_GemmResNetShaped)->Arg(1)->Arg(0);

// ---- GEMM roofline (per-kernel GFLOP/s vs the measured FMA peak) ------------
//
// state.range(0) = thread budget, state.range(1) = microkernel family
// (0 = portable, 1 = avx2; avx2 rows degrade to the portable family on
// hosts without it — the label records what actually ran). Counters:
// GFLOPs is the achieved rate, frac_peak the fraction of the measured
// single-core FMA peak (thread budgets > 1 can exceed 1.0 on multi-core
// hosts; on a single-core host they show the oversubscription penalty).

/// Forces MBS_KERNEL for the benchmark's lifetime, restores default after.
struct IsaBenchGuard {
  explicit IsaBenchGuard(bool avx2) {
    setenv("MBS_KERNEL", avx2 ? "avx2" : "portable", 1);
    train::detail::reset_microkernel_dispatch();
  }
  ~IsaBenchGuard() {
    unsetenv("MBS_KERNEL");
    train::detail::reset_microkernel_dispatch();
  }
};

void roofline_counters(benchmark::State& state, double flops_per_iter,
                       const char* shape_label) {
  const double total =
      flops_per_iter * static_cast<double>(state.iterations());
  const double peak = train::detail::measured_peak_gflops() * 1e9;
  state.counters["GFLOPs"] = benchmark::Counter(
      total * 1e-9, benchmark::Counter::kIsRate);
  state.counters["frac_peak"] =
      benchmark::Counter(total / peak, benchmark::Counter::kIsRate);
  state.SetLabel(std::string(shape_label) + " isa=" +
                 util::to_string(train::active_gemm_isa()));
}

void BM_RooflineMatmulF32(benchmark::State& state) {
  // ResNet-50 conv3_x 3x3 fwd shape at batch 1: M = Ho*Wo = 28*28 = 784,
  // K = Ci*3*3 = 128*9 = 1152, N = Co = 128 (models/resnet.cc).
  IsaBenchGuard isa(state.range(1) != 0);
  util::Rng rng(11);
  const train::Tensor a = train::Tensor::randn({784, 1152}, rng);
  const train::Tensor b = train::Tensor::randn({1152, 128}, rng);
  util::set_thread_budget(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(train::matmul(a, b));
  util::set_thread_budget(-1);
  roofline_counters(state, 2.0 * 784 * 1152 * 128,
                    "resnet50 conv3_x 3x3 fwd f32");
}
BENCHMARK(BM_RooflineMatmulF32)
    ->UseRealTime()
    ->ArgNames({"threads", "avx2"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1});

void BM_RooflineMatmulBtF64(benchmark::State& state) {
  // ResNet-50 conv3_x weight-gradient GEMM (double accumulation):
  // dW[Co, Ci*Kh*Kw] = dY^T[Co, Ho*Wo] x cols[Ci*Kh*Kw, Ho*Wo]^T.
  IsaBenchGuard isa(state.range(1) != 0);
  util::Rng rng(12);
  const train::Tensor a = train::Tensor::randn({128, 784}, rng);
  const train::Tensor b = train::Tensor::randn({1152, 784}, rng);
  util::set_thread_budget(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(train::matmul_bt(a, b));
  util::set_thread_budget(-1);
  roofline_counters(state, 2.0 * 128 * 784 * 1152,
                    "resnet50 conv3_x wgrad f64");
}
BENCHMARK(BM_RooflineMatmulBtF64)
    ->UseRealTime()
    ->ArgNames({"threads", "avx2"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1});

void BM_RooflineMatmulBtF32(benchmark::State& state) {
  // fig06 SmallCnn stage-2 3x3 fwd GEMM with bias seeding (the
  // conv2d_forward production path): M=4608, K=288, N=32.
  IsaBenchGuard isa(state.range(1) != 0);
  util::Rng rng(13);
  const train::Tensor a = train::Tensor::randn({4608, 288}, rng);
  const train::Tensor w = train::Tensor::randn({32, 288}, rng);
  const train::Tensor bias = train::Tensor::randn({32}, rng, 0.1);
  util::set_thread_budget(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(train::matmul_bt_f32(a, w, bias));
  util::set_thread_budget(-1);
  roofline_counters(state, 2.0 * 4608 * 288 * 32,
                    "fig06 SmallCnn stage-2 3x3 fwd f32+init");
}
BENCHMARK(BM_RooflineMatmulBtF32)
    ->UseRealTime()
    ->ArgNames({"threads", "avx2"})
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({8, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1});

void BM_Conv2dForward(benchmark::State& state) {
  util::Rng rng(3);
  const train::Tensor x = train::Tensor::randn({4, 32, 28, 28}, rng);
  const train::Tensor w = train::Tensor::randn({32, 32, 3, 3}, rng, 0.2);
  const train::Tensor b = train::Tensor::randn({32}, rng, 0.1);
  util::set_thread_budget(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(train::conv2d_forward(x, w, b, 1, 1));
  util::set_thread_budget(-1);
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(0);

void BM_Conv2dBackward(benchmark::State& state) {
  util::Rng rng(4);
  const train::Tensor x = train::Tensor::randn({4, 32, 28, 28}, rng);
  const train::Tensor w = train::Tensor::randn({32, 32, 3, 3}, rng, 0.2);
  const train::Tensor dy = train::Tensor::randn({4, 32, 28, 28}, rng);
  util::set_thread_budget(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(train::conv2d_backward(x, w, dy, 1, 1));
  util::set_thread_budget(-1);
}
BENCHMARK(BM_Conv2dBackward)->Arg(1)->Arg(0);

// Backward consuming the forward's im2col lowering from a per-layer
// ConvCache (the production model path), against persistent gradient
// scratch — the zero-redundancy hot path. Compare with BM_Conv2dBackward
// (which re-lowers the input and allocates fresh grads) for the reuse win.
void BM_Conv2dBackwardCached(benchmark::State& state) {
  util::Rng rng(4);
  const train::Tensor x = train::Tensor::randn({4, 32, 28, 28}, rng);
  const train::Tensor w = train::Tensor::randn({32, 32, 3, 3}, rng, 0.2);
  const train::Tensor dy = train::Tensor::randn({4, 32, 28, 28}, rng);
  train::ConvCache cache;
  train::Conv2dGrads grads;
  train::Tensor y;
  util::set_thread_budget(static_cast<int>(state.range(0)));
  train::conv2d_forward_into(x, w, train::Tensor(), 1, 1, &cache, y);
  for (auto _ : state) {
    train::conv2d_backward_into(x, w, dy, 1, 1, /*need_dx=*/true, &cache,
                                grads);
    benchmark::DoNotOptimize(grads.dx.data());
  }
  util::set_thread_budget(-1);
}
BENCHMARK(BM_Conv2dBackwardCached)->Arg(1)->Arg(0);

void BM_TrainStep(benchmark::State& state) {
  // One fig06-style GN+MBS optimizer step (batch 32 as four sub-batches).
  const train::Dataset data = train::make_synthetic_dataset(32, 8, 1, 12, 7);
  train::SmallCnnConfig cfg;
  cfg.norm = train::NormMode::kGroup;
  cfg.classes = 8;
  cfg.stage_channels = {16, 32};
  train::SmallCnn model(cfg);
  train::Sgd opt({/*lr=*/0.05, /*momentum=*/0.9, /*weight_decay=*/1e-4});
  util::set_thread_budget(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(train::train_step(model, opt, data.images,
                                               data.labels, {8, 8, 8, 8}));
  util::set_thread_budget(-1);
}
BENCHMARK(BM_TrainStep)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
