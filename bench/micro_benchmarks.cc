// google-benchmark microbenchmarks of the library's hot paths: the systolic
// GEMM timing model, the traffic model, and the full scheduler. These bound
// the cost of design-space sweeps (Fig. 11/12-style studies run thousands of
// simulate_step calls).
#include <benchmark/benchmark.h>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sched/traffic.h"
#include "sim/simulator.h"

namespace {

using namespace mbs;

void BM_SimulateGemm(benchmark::State& state) {
  arch::SystolicConfig cfg;
  const arch::GemmShape shape{100352, 256, 1152};
  for (auto _ : state)
    benchmark::DoNotOptimize(arch::simulate_gemm(cfg, shape));
}
BENCHMARK(BM_SimulateGemm);

void BM_BuildScheduleGreedy(benchmark::State& state) {
  const core::Network net = models::make_network("resnet50");
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::build_schedule(net, sched::ExecConfig::kMbs2));
}
BENCHMARK(BM_BuildScheduleGreedy);

void BM_BuildScheduleOptimalDp(benchmark::State& state) {
  const core::Network net = models::make_network("resnet50");
  sched::ScheduleParams p;
  p.optimal_grouping = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::build_schedule(net, sched::ExecConfig::kMbs2, p));
}
BENCHMARK(BM_BuildScheduleOptimalDp);

void BM_ComputeTraffic(benchmark::State& state) {
  const core::Network net = models::make_network("resnet50");
  const sched::Schedule s =
      sched::build_schedule(net, sched::ExecConfig::kMbs2);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::compute_traffic(net, s));
}
BENCHMARK(BM_ComputeTraffic);

void BM_SimulateStep(benchmark::State& state) {
  const core::Network net = models::make_network("resnet50");
  const sched::Schedule s =
      sched::build_schedule(net, sched::ExecConfig::kMbs2);
  const sim::WaveCoreConfig hw;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_step(net, s, hw));
}
BENCHMARK(BM_SimulateStep);

void BM_BuildResNet50(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(models::make_network("resnet50"));
}
BENCHMARK(BM_BuildResNet50);

}  // namespace

BENCHMARK_MAIN();
