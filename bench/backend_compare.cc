// Analytic-vs-cycle backend divergence across the zoo: every network
// (CNNs and the Transformer-family additions alike) is scheduled once under
// MBS2 per buffer size, then simulated on both Device::kWaveCore (the
// paper's analytic traffic/time model) and Device::kSystolic (the
// cycle-level os/ws/is backend), bandwidth-constrained and in the
// bandwidth-unconstrained limit.
//
// The table answers two questions the analytic model alone cannot:
//   - how far is the analytic step time from cycle-level truth (rel. error),
//     and how much of the cycle time is DRAM stall vs compute?
//   - do the backends agree on traffic? They must: the cycle backend
//     charges stalls against the schedule's analytic DRAM bytes, so in the
//     unconstrained limit the two models may only disagree in time, never
//     in bytes moved (the trailing headline counts this invariant).
//
// Usage: backend_compare
//   MBS_SYSTOLIC_DATAFLOW=os|ws|is  cycle-backend dataflow (default os)
//   MBS_SYSTOLIC_SPAD=<bytes>       PE-array scratchpad (default 524288)
//
// Composes with the engine plumbing like every bench: --shard=i/N gates
// output rows, --cache-dir warm-starts repeated runs byte-identically, and
// --threads bounds the sweep pool.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "arch/dataflow.h"
#include "engine/engine.h"
#include "models/zoo.h"
#include "util/env.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  arch::Dataflow dataflow = arch::Dataflow::kOutputStationary;
  if (const char* env = std::getenv("MBS_SYSTOLIC_DATAFLOW"); env && *env) {
    if (!arch::parse_dataflow(env, &dataflow)) {
      std::fprintf(stderr,
                   "bad MBS_SYSTOLIC_DATAFLOW '%s': expected os, ws or is\n",
                   env);
      return 1;
    }
  }
  const std::int64_t spad =
      util::env_int("MBS_SYSTOLIC_SPAD", 512 * 1024, 1, 1LL << 40);

  const std::vector<std::string> networks = models::all_network_names();
  const double buffers_mib[] = {2, 10, 40};

  // Four scenarios per (network, buffer) comparison point, so row index ==
  // scenario index / 4 (the sharding unit): analytic and cycle backends,
  // each bandwidth-constrained and in the unconstrained limit. All four
  // share one schedule cache key per point — the sweep batches them.
  std::vector<engine::Scenario> grid;
  for (const std::string& net : networks)
    for (double mib : buffers_mib)
      for (int variant = 0; variant < 4; ++variant) {
        engine::Scenario s;
        s.network = net;
        s.config = sched::ExecConfig::kMbs2;
        s.params.buffer_bytes =
            static_cast<std::int64_t>(mib * static_cast<double>(util::kMiB));
        s.hw.global_buffer_bytes = s.params.buffer_bytes;
        if (variant % 2 == 1) s.device = engine::Device::kSystolic;
        s.systolic.dataflow = dataflow;
        s.systolic.scratchpad_bytes = spad;
        s.hw.unlimited_dram_bw = variant >= 2;
        grid.push_back(std::move(s));
      }

  const auto results =
      driver.run(grid, [&](std::size_t i) { return shard.owns(i / 4); });

  std::printf("=== Backend comparison: analytic (WaveCore) vs cycle-level "
              "(systolic, %s dataflow, %s scratchpad) under MBS2 ===\n\n",
              arch::to_string(dataflow),
              util::format_bytes(static_cast<double>(spad)).c_str());

  engine::ResultSink sink(
      "analytic vs cycle-level step time (rel. error = cycle/analytic - 1; "
      "stall = DRAM-stall share of cycle time; bytes== checks DRAM traffic "
      "agreement in the unconstrained-bandwidth limit)",
      {"network", "buffer", "analytic", "cycle", "rel.err", "stall", "util",
       "map.eff", "DRAM/step", "bytes=="});
  std::size_t points = 0, bytes_agree = 0;
  for (std::size_t i = 0; i + 3 < grid.size(); i += 4) {
    const engine::ScenarioResult& analytic = results[i];
    const engine::ScenarioResult& cycle = results[i + 1];
    const engine::ScenarioResult& analytic_nobw = results[i + 2];
    const engine::ScenarioResult& cycle_nobw = results[i + 3];
    ++points;
    const bool agree =
        analytic_nobw.step.dram_bytes == cycle_nobw.systolic.dram_bytes &&
        cycle_nobw.systolic.stats.stall_cycles == 0;
    if (agree) ++bytes_agree;
    if (!shard.owns(i / 4)) continue;
    const double t_a = analytic.step.time_s;
    const double t_c = cycle.systolic.time_s;
    sink.add_row({analytic.scenario.network,
                  util::fmt(buffers_mib[(i / 4) % std::size(buffers_mib)], 0) +
                      " MiB",
                  util::format_time(t_a), util::format_time(t_c),
                  util::fmt(100.0 * (t_c / t_a - 1.0), 1) + "%",
                  util::fmt(100.0 * cycle.systolic.stall_time_s / t_c, 1) + "%",
                  util::fmt(cycle.systolic.stats.util, 3),
                  util::fmt(cycle.systolic.stats.mapping_eff, 3),
                  util::format_bytes(cycle.systolic.dram_bytes),
                  agree ? "yes" : "NO"});
  }
  sink.print(std::cout);
  sink.export_files("backend_compare");

  std::printf("\nunconstrained-limit DRAM traffic: analytic == cycle on "
              "%zu/%zu (network, buffer) points%s\n",
              bytes_agree, points,
              bytes_agree == points
                  ? " — the backends diverge in time, never in bytes"
                  : " — traffic models have DRIFTED apart");
  return bytes_agree == points ? 0 : 1;
}
