// Ablation of the individual MBS design choices DESIGN.md calls out:
//   (1) inter-branch reuse (MBS2 vs MBS1) — Sec. 1 claims +20% traffic
//       without it;
//   (2) the 1-bit ReLU gradient masks (Sec. 3) — traffic attributable to
//       activation stashing vs masks;
//   (3) the weight-gradient partial-sum overhead of serialization (Sec. 3
//       "Data Synchronization").
#include <cstdio>
#include <iostream>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sched/traffic.h"
#include "util/table.h"

int main() {
  using namespace mbs;
  using sched::TrafficClass;

  std::printf("=== Ablation: MBS feature contributions ===\n\n");

  std::printf("--- (1) inter-branch reuse: MBS1 traffic relative to MBS2 "
              "(paper: ~1.2x without it) ---\n");
  util::Table t1({"network", "MBS1 [GiB]", "MBS2 [GiB]", "MBS1/MBS2"});
  for (const auto& name : models::evaluated_network_names()) {
    const core::Network net = models::make_network(name);
    const double m1 = sched::dram_traffic_bytes(
        net, sched::build_schedule(net, sched::ExecConfig::kMbs1));
    const double m2 = sched::dram_traffic_bytes(
        net, sched::build_schedule(net, sched::ExecConfig::kMbs2));
    t1.add_row({net.name, util::fmt(m1 / (1024.0 * 1024 * 1024), 2),
                util::fmt(m2 / (1024.0 * 1024 * 1024), 2),
                util::fmt(m1 / m2, 2)});
  }
  t1.print(std::cout);

  std::printf("\n--- (2) ReLU 1-bit masks: mask traffic vs the 16b "
              "activation re-reads they replace ---\n");
  util::Table t2({"network", "mask traffic [MiB]", "16b equivalent [MiB]",
                  "savings"});
  for (const auto& name : models::evaluated_network_names()) {
    const core::Network net = models::make_network(name);
    const auto traffic = sched::compute_traffic(
        net, sched::build_schedule(net, sched::ExecConfig::kMbs2));
    const double mask = traffic.dram_bytes_by_class(TrafficClass::kMask);
    const double equivalent = mask * 16.0;  // 1b vs 16b per element
    t2.add_row({net.name, util::fmt(mask / (1024.0 * 1024), 1),
                util::fmt(equivalent / (1024.0 * 1024), 1),
                util::fmt((equivalent - mask) / (1024.0 * 1024), 1) + " MiB"});
  }
  t2.print(std::cout);

  std::printf("\n--- (3) weight-gradient partial-sum overhead of "
              "serialization ---\n");
  util::Table t3({"network", "config", "iterations", "wgrad traffic [MiB]",
                  "share of total"});
  for (const auto& name : {"resnet50", "alexnet"}) {
    const core::Network net = models::make_network(name);
    for (auto cfg : {sched::ExecConfig::kBaseline, sched::ExecConfig::kMbsFs,
                     sched::ExecConfig::kMbs2}) {
      const sched::Schedule s = sched::build_schedule(net, cfg);
      const auto traffic = sched::compute_traffic(net, s);
      const double wg = traffic.dram_bytes_by_class(TrafficClass::kWgradPartial);
      t3.add_row({net.name, sched::to_string(cfg),
                  std::to_string(s.total_iterations()),
                  util::fmt(wg / (1024.0 * 1024), 1),
                  util::fmt(100.0 * wg / traffic.dram_bytes(), 1) + "%"});
    }
  }
  t3.print(std::cout);
  return 0;
}
