// Ablation of the individual MBS design choices DESIGN.md calls out:
//   (1) inter-branch reuse (MBS2 vs MBS1) — Sec. 1 claims +20% traffic
//       without it;
//   (2) the 1-bit ReLU gradient masks (Sec. 3) — traffic attributable to
//       activation stashing vs masks;
//   (3) the weight-gradient partial-sum overhead of serialization (Sec. 3
//       "Data Synchronization").
// One engine sweep provides every schedule/traffic pair; the MBS2 results
// are shared between parts (1), (2) and (3) through the evaluator cache.
#include <cstdio>
#include <iostream>

#include "engine/engine.h"
#include "models/zoo.h"

int main(int argc, char** argv) {
  using namespace mbs;
  using sched::TrafficClass;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const std::vector<std::string> all_nets = models::evaluated_network_names();
  const auto grid = engine::scenario_grid(
      all_nets, {sched::ExecConfig::kMbs1, sched::ExecConfig::kMbs2}, {}, {},
      engine::Stage::kTraffic);
  // Tables (1) and (2) emit one row per network; row ni reads the MBS1/MBS2
  // pair at scenarios 2*ni and 2*ni+1.
  const auto results =
      driver.run(grid, [&](std::size_t i) { return shard.owns(i / 2); });

  std::printf("=== Ablation: MBS feature contributions ===\n\n");

  engine::ResultSink t1(
      "(1) inter-branch reuse: MBS1 traffic relative to MBS2 "
      "(paper: ~1.2x without it)",
      {"network", "MBS1 [GiB]", "MBS2 [GiB]", "MBS1/MBS2"});
  for (std::size_t ni = 0; ni < all_nets.size(); ++ni) {
    if (!shard.owns(ni)) continue;  // one output row per network
    const double m1 = results[ni * 2].traffic->dram_bytes();
    const double m2 = results[ni * 2 + 1].traffic->dram_bytes();
    t1.add_row({results[ni * 2].network->name,
                util::fmt(m1 / (1024.0 * 1024 * 1024), 2),
                util::fmt(m2 / (1024.0 * 1024 * 1024), 2),
                util::fmt(m1 / m2, 2)});
  }
  t1.print(std::cout);
  t1.export_files("ablation_inter_branch");

  engine::ResultSink t2(
      "(2) ReLU 1-bit masks: mask traffic vs the 16b activation re-reads "
      "they replace",
      {"network", "mask traffic [MiB]", "16b equivalent [MiB]", "savings"});
  for (std::size_t ni = 0; ni < all_nets.size(); ++ni) {
    if (!shard.owns(ni)) continue;  // one output row per network
    const sched::Traffic& traffic = *results[ni * 2 + 1].traffic;  // MBS2
    const double mask = traffic.dram_bytes_by_class(TrafficClass::kMask);
    const double equivalent = mask * 16.0;  // 1b vs 16b per element
    t2.add_row({results[ni * 2 + 1].network->name,
                util::fmt(mask / (1024.0 * 1024), 1),
                util::fmt(equivalent / (1024.0 * 1024), 1),
                util::fmt((equivalent - mask) / (1024.0 * 1024), 1) + " MiB"});
  }
  std::printf("\n");
  t2.print(std::cout);
  t2.export_files("ablation_relu_masks");

  // Part (3) adds Baseline and MBS-FS points for two networks; the MBS2
  // points are evaluator cache hits from the sweep above.
  const auto wgrad_grid = engine::scenario_grid(
      {"resnet50", "alexnet"},
      {sched::ExecConfig::kBaseline, sched::ExecConfig::kMbsFs,
       sched::ExecConfig::kMbs2},
      {}, {}, engine::Stage::kTraffic);
  const auto wgrad_results = driver.run(wgrad_grid);

  engine::ResultSink t3(
      "(3) weight-gradient partial-sum overhead of serialization",
      {"network", "config", "iterations", "wgrad traffic [MiB]",
       "share of total"});
  for (std::size_t i = 0; i < wgrad_results.size(); ++i) {
    if (!shard.owns(i)) continue;  // one output row per scenario
    const engine::ScenarioResult& r = wgrad_results[i];
    const double wg =
        r.traffic->dram_bytes_by_class(TrafficClass::kWgradPartial);
    t3.add_row({r.network->name, sched::to_string(r.scenario.config),
                std::to_string(r.schedule->total_iterations()),
                util::fmt(wg / (1024.0 * 1024), 1),
                util::fmt(100.0 * wg / r.traffic->dram_bytes(), 1) + "%"});
  }
  std::printf("\n");
  t3.print(std::cout);
  t3.export_files("ablation_wgrad");
  return 0;
}
