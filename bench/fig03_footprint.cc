// Fig. 3: per-layer inter-layer data and parameter sizes of ResNet50 with a
// mini-batch of 32 and 16b words, sorted by inter-layer data size; plus
// Sec. 2's observation that only ~9% of inter-layer data is reusable with a
// 10 MiB buffer. The (single-scenario) analysis runs through the engine so
// the network build is shared with any co-resident sweep.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  engine::Scenario scenario;
  scenario.network = "resnet50";
  scenario.stage = engine::Stage::kNetwork;  // layer walk only, no scheduling
  // Every output row comes from the single scenario, so each shard needs it.
  const auto results = driver.run({scenario}, [](std::size_t) { return true; });
  const core::Network& net = *results[0].network;
  const int n = net.mini_batch_per_core;

  struct Row {
    std::string name;
    double inter_layer_mb;  // mini-batch footprint: input + output
    double params_mb;
  };
  std::vector<Row> rows;
  for (const core::Block& blk : net.blocks)
    blk.for_each_layer([&](const core::Layer& l, int) {
      Row r;
      r.name = l.name;
      r.inter_layer_mb =
          static_cast<double>(n) *
          (l.input_bytes_per_sample() + l.output_bytes_per_sample()) / 1e6;
      r.params_mb = static_cast<double>(l.param_bytes()) / 1e6;
      rows.push_back(r);
    });
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.inter_layer_mb > b.inter_layer_mb;
  });

  std::printf("=== Fig. 3: ResNet50 per-layer footprints "
              "(mini-batch %d, 16b words), sorted ===\n\n", n);
  engine::ResultSink sink(
      "", {"rank", "layer", "inter-layer data [MB]", "params [MB]"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!shard.owns(i)) continue;  // one output row per ranked layer
    sink.add_row({std::to_string(i + 1), rows[i].name,
                  util::fmt(rows[i].inter_layer_mb, 2),
                  util::fmt(rows[i].params_mb, 3)});
  }
  sink.print(std::cout);
  sink.export_files("fig03_footprint");

  // Sec. 2: fraction of inter-layer data reusable with a 10 MiB buffer —
  // data volume belonging to layers whose whole-mini-batch working set fits.
  double total = 0, reusable = 0;
  const double buffer_mb = 10.0 * 1024 * 1024 / 1e6;
  for (const Row& r : rows) {
    total += r.inter_layer_mb;
    if (r.inter_layer_mb <= buffer_mb) reusable += r.inter_layer_mb;
  }
  std::printf("\nreusable inter-layer data with a 10 MiB buffer: %.1f%% "
              "(paper Sec. 2: 9.3%%)\n", 100.0 * reusable / total);
  std::printf("largest per-layer footprint: %.1f MB; total parameters: %s\n",
              rows.front().inter_layer_mb,
              util::fmt_int(net.param_count()).c_str());
  return 0;
}
