// Buffer-capacity x DRAM-bandwidth Pareto front for any zoo network under
// MBS2 — the "memory configuration frontier" the paper's Fig. 11 hints at
// but never sweeps jointly. Every (buffer, bandwidth) point is simulated
// under both grouping variants (contiguous, the paper's search space, and
// non-contiguous — see sched::GroupingVariant), so scheduler variants,
// models, and memory configs compose in one engine grid.
//
// A grid point is *frontier* (non-dominated) within its variant when no
// other point needs at most its buffer AND at most its bandwidth AND still
// trains at most as fast, with at least one strict improvement — i.e. the
// set of memory provisionings a rational designer would pick from.
//
// Usage: pareto_sweep [network] [seq]
//   network: any models::all_network_names() entry (default resnet50),
//            e.g. resnet50, alexnet, vit_base, transformer_base.
//   seq:     optional sequence-length override for Transformer-family
//            networks (tokens; ViTs need a perfect square). The frontier
//            moves with seq because the attention score matrix B*H*S*S
//            scales quadratically where every other footprint is linear.
//
// Composes with the engine plumbing like every bench: --shard=i/N gates
// output rows (frontier dominance is computed over the full grid via lazy
// materialization), --cache-dir warm-starts repeated runs byte-identically,
// and --threads bounds the sweep pool.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "arch/memory.h"
#include "engine/engine.h"
#include "models/zoo.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const auto& args = driver.args();
  const std::string net_name = !args.empty() ? args[0] : "resnet50";
  const std::vector<std::string> known = models::all_network_names();
  if (std::find(known.begin(), known.end(), net_name) == known.end()) {
    std::fprintf(stderr, "unknown network '%s'; choose one of:", net_name.c_str());
    for (const auto& n : known) std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  int seq = 0;
  if (args.size() > 1) seq = std::atoi(args[1].c_str());
  std::string seq_why;
  if (!models::valid_sequence_length(net_name, seq, &seq_why)) {
    std::fprintf(stderr, "bad seq '%s': %s\n",
                 args.size() > 1 ? args[1].c_str() : "", seq_why.c_str());
    return 1;
  }

  const sched::GroupingVariant variants[] = {
      sched::GroupingVariant::kContiguous,
      sched::GroupingVariant::kNonContiguous};
  const double buffers_mib[] = {2, 5, 10, 20, 40};
  const double bw_scales[] = {0.25, 0.5, 1.0, 2.0};
  const arch::MemoryConfig base_mem = arch::hbm2();

  // Row-major: variant, then buffer, then bandwidth — one output row per
  // scenario, so scenario index == row index (the default sharding unit).
  std::vector<engine::Scenario> grid;
  for (sched::GroupingVariant variant : variants)
    for (double mib : buffers_mib)
      for (double scale : bw_scales) {
        engine::Scenario s;
        s.network = net_name;
        s.seq = seq;
        s.config = sched::ExecConfig::kMbs2;
        s.params.variant = variant;
        s.params.buffer_bytes =
            static_cast<std::int64_t>(mib * static_cast<double>(util::kMiB));
        s.hw.global_buffer_bytes = s.params.buffer_bytes;
        s.hw.memory = base_mem;
        s.hw.memory.bandwidth_bytes_per_s = base_mem.bandwidth_bytes_per_s * scale;
        s.label = std::string(sched::to_string(variant));
        grid.push_back(std::move(s));
      }

  const auto results = driver.run(grid);

  // Dominance is decided over the whole grid (lazy materialization fills
  // rows this shard does not own), minimizing (buffer, bandwidth, time)
  // within each variant's 20-point plane.
  const std::size_t n_bufs = std::size(buffers_mib);
  const std::size_t n_bws = std::size(bw_scales);
  const std::size_t plane = n_bufs * n_bws;
  auto coords = [&](std::size_t i) {
    const std::size_t in_plane = i % plane;
    struct {
      double buffer_mib, bw_scale;
    } c{buffers_mib[in_plane / n_bws], bw_scales[in_plane % n_bws]};
    return c;
  };
  auto dominated = [&](std::size_t i) {
    const auto ci = coords(i);
    const double ti = results[i].step.time_s;
    const std::size_t base = (i / plane) * plane;  // this variant's plane
    for (std::size_t j = base; j < base + plane; ++j) {
      if (j == i) continue;
      const auto cj = coords(j);
      const double tj = results[j].step.time_s;
      const bool no_worse = cj.buffer_mib <= ci.buffer_mib &&
                            cj.bw_scale <= ci.bw_scale && tj <= ti;
      const bool strictly_better = cj.buffer_mib < ci.buffer_mib ||
                                   cj.bw_scale < ci.bw_scale || tj < ti;
      if (no_worse && strictly_better) return true;
    }
    return false;
  };

  // The seq tag is appended only when overridden, keeping the default
  // stdout byte-identical to the pre-seq era.
  std::printf("=== Pareto sweep: %s%s under MBS2, buffer x DRAM bandwidth x "
              "grouping variant ===\n\n",
              results[0].network->name.c_str(),
              seq > 0 ? (" (seq=" + std::to_string(seq) + ")").c_str() : "");

  engine::ResultSink sink(
      "buffer/bandwidth Pareto front (frontier = non-dominated in its "
      "variant's plane, minimizing buffer, bandwidth and time)",
      {"variant", "buffer", "DRAM bw", "time", "DRAM/step", "energy",
       "groups", "frontier"});
  std::size_t frontier_per_variant[2] = {0, 0};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const bool frontier = !dominated(i);
    if (frontier) ++frontier_per_variant[i / plane];
    if (!shard.owns(i)) continue;  // one output row per scenario
    const auto c = coords(i);
    const engine::ScenarioResult& r = results[i];
    sink.add_row({r.scenario.label, util::fmt(c.buffer_mib, 0) + " MiB",
                  util::format_bytes(r.scenario.hw.memory.bandwidth_bytes_per_s) + "/s",
                  util::format_time(r.step.time_s),
                  util::format_bytes(r.step.dram_bytes),
                  util::fmt(r.step.energy.total(), 3) + " J",
                  std::to_string(r.schedule->groups.size()),
                  frontier ? "yes" : "no"});
  }
  sink.print(std::cout);
  sink.export_files("pareto_sweep");

  // The scheduler-variant comparison: non-contiguous merging searches a
  // strict superset of the contiguous space, so any disagreement would mean
  // relaxing the paper's contiguity restriction buys something.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < plane; ++i)
    if (results[i].step.time_s == results[plane + i].step.time_s &&
        results[i].step.dram_bytes == results[plane + i].step.dram_bytes)
      ++agree;
  std::printf("\nfrontier points: %zu/%zu (contiguous), %zu/%zu "
              "(noncontig)\n",
              frontier_per_variant[0], plane, frontier_per_variant[1], plane);
  std::printf("scheduler variants agree bit-for-bit on %zu/%zu grid points "
              "— the paper's contiguous-grouping restriction %s\n",
              agree, plane,
              agree == plane ? "loses nothing on this network"
                             : "is NOT lossless on this network");
  return 0;
}
