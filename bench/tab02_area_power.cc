// Tab. 2: accelerator specification comparison — V100 / TPU v1 / TPU v2
// published specs next to the WaveCore area/power model roll-up (Sec. 4.2).
// The (cheap) spec computations run as engine jobs so the bench shares the
// SweepRunner execution path with every other figure reproduction.
#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/area.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();
  const arch::AreaModel model;

  const auto parts = driver.runner().map<std::vector<arch::AcceleratorSpec>>(
      {[&] { return arch::accelerator_comparison(model); }});
  const std::vector<arch::AcceleratorSpec>& specs = parts[0];

  std::printf("=== Tab. 2: accelerator specification comparison ===\n\n");
  engine::ResultSink sink(
      "", {"", "technology [nm]", "die area [mm^2]", "clock [GHz]", "TOPS/die",
           "peak power [W]", "on-chip buffers [MiB]"});
  for (std::size_t si = 0; si < specs.size(); ++si) {
    if (!shard.owns(si)) continue;  // one output row per accelerator
    const auto& s = specs[si];
    sink.add_row({s.name, s.technology,
                  s.die_area_mm2 > 0 ? util::fmt(s.die_area_mm2, 1) : "N/A",
                  util::fmt(s.clock_ghz, 2),
                  util::fmt(s.tops, 0) + " (" + s.tops_kind + ")",
                  s.peak_power_w > 0 ? util::fmt(s.peak_power_w, 0) : "N/A",
                  s.on_chip_buffers_mib > 0
                      ? util::fmt(s.on_chip_buffers_mib, 0)
                      : "N/A"});
  }
  sink.print(std::cout);
  sink.export_files("tab02_specs");

  engine::ResultSink roll("WaveCore area roll-up (Sec. 4.2)",
                          {"component", "area"});
  engine::add_rows(
      roll, shard,
      {{"one PE", util::fmt(model.pe_area_um2, 0) + " um^2"},
       {"128x128 PE array", util::fmt(model.array_mm2(), 2) + " mm^2"},
       {"global buffer / core",
        util::fmt(model.global_buffer_mm2_per_core, 2) + " mm^2"},
       {"vector units / core",
        util::fmt(model.vector_units_mm2_per_core, 2) + " mm^2"},
       {"total (2 cores)", util::fmt(model.total_mm2(), 1) + " mm^2"}});
  std::printf("\n");
  roll.print(std::cout);
  roll.export_files("tab02_area");
  std::printf("\npaper: PE 12,173 um^2; array 199.45 mm^2 (67%% of die); "
              "total 534.0 mm^2; 45 FP16 TOPS; 56 W peak.\n");
  return 0;
}
