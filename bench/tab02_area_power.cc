// Tab. 2: accelerator specification comparison — V100 / TPU v1 / TPU v2
// published specs next to the WaveCore area/power model roll-up (Sec. 4.2).
#include <cstdio>
#include <iostream>

#include "arch/area.h"
#include "util/table.h"

int main() {
  using namespace mbs;
  const arch::AreaModel model;

  std::printf("=== Tab. 2: accelerator specification comparison ===\n\n");
  util::Table t({"", "technology [nm]", "die area [mm^2]", "clock [GHz]",
                 "TOPS/die", "peak power [W]", "on-chip buffers [MiB]"});
  for (const auto& s : arch::accelerator_comparison(model)) {
    t.add_row({s.name, s.technology,
               s.die_area_mm2 > 0 ? util::fmt(s.die_area_mm2, 1) : "N/A",
               util::fmt(s.clock_ghz, 2),
               util::fmt(s.tops, 0) + " (" + s.tops_kind + ")",
               s.peak_power_w > 0 ? util::fmt(s.peak_power_w, 0) : "N/A",
               s.on_chip_buffers_mib > 0 ? util::fmt(s.on_chip_buffers_mib, 0)
                                         : "N/A"});
  }
  t.print(std::cout);

  std::printf("\n--- WaveCore area roll-up (Sec. 4.2) ---\n");
  util::Table roll({"component", "area"});
  roll.add_row({"one PE", util::fmt(model.pe_area_um2, 0) + " um^2"});
  roll.add_row({"128x128 PE array", util::fmt(model.array_mm2(), 2) + " mm^2"});
  roll.add_row({"global buffer / core",
                util::fmt(model.global_buffer_mm2_per_core, 2) + " mm^2"});
  roll.add_row({"vector units / core",
                util::fmt(model.vector_units_mm2_per_core, 2) + " mm^2"});
  roll.add_row({"total (2 cores)", util::fmt(model.total_mm2(), 1) + " mm^2"});
  roll.print(std::cout);
  std::printf("\npaper: PE 12,173 um^2; array 199.45 mm^2 (67%% of die); "
              "total 534.0 mm^2; 45 FP16 TOPS; 56 W peak.\n");
  return 0;
}
