// Chaos soak: the service layer's crash-consistency contract, under fire.
//
// The sweep service's promise is that worker crashes, I/O errors, torn
// writes, and byte-level store corruption change *when* work happens but
// never *what* comes out: the merged sweep output is byte-identical to a
// fault-free run, and a served answer is byte-identical to the storeless
// reference. This bench makes that promise falsifiable on every run:
//
//   1. Reference: evaluate the grid storeless (no cache, no spool) and
//      render the canonical ResultSink CSV/JSON bytes + per-scenario
//      ServeCore answers.
//   2. Chaos drain: repeatedly fork a worker against one shared spool +
//      cache store, each round arming a seeded random MBS_FAULTS schedule
//      (crash mid-claim, EIO on entry/done writes, torn entry writes) —
//      and, between rounds, corrupting a random shard record on disk
//      (truncation or a flipped byte).
//   3. Clean finish: drain the remainder fault-free and materialize the
//      sweep warm from the (battered) store. The rendered CSV/JSON must
//      equal the reference bytes exactly.
//   4. Serve under corruption: flip a byte in every step record, then
//      query every scenario through ServeCore. Every answer must match
//      the reference; the corruption must surface as `degraded` (graceful
//      re-evaluation), never as a wrong answer or a daemon error.
//
// Any violation exits nonzero. MBS_CHAOS_SEED picks the fault schedule
// (default 42, what CI pins); MBS_CHAOS_ROUNDS the number of chaos
// workers (default 8); MBS_CHAOS_DIR the scratch root (default: a fresh
// mkdtemp under /tmp). Exports chaos_grid_ref / chaos_grid via
// MBS_RESULT_DIR for the CI byte-identity cmp.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/cache_store.h"
#include "engine/result_sink.h"
#include "engine/scenario.h"
#include "engine/serve.h"
#include "engine/sweep_runner.h"
#include "models/zoo.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

namespace fsys = std::filesystem;
using namespace mbs;

std::string num(long v) { return std::to_string(v); }

/// One round's fault schedule: every entry deterministic in the rng.
std::string pick_faults(util::Rng& rng) {
  switch (rng.uniform_int(5)) {
    case 0:
      return "spool.unit.start:crash@" + num(1 + (long)rng.uniform_int(3));
    case 1:
      return "cache.entry.write:fail@" + num(1 + (long)rng.uniform_int(4));
    case 2:
      return "cache.entry.write:torn@" + num(1 + (long)rng.uniform_int(4)) +
             "/" + num(8 + (long)rng.uniform_int(160));
    case 3:
      return "spool.done.write:fail@1,spool.unit.start:crash@" +
             num(2 + (long)rng.uniform_int(2));
    default:
      return "cache.entry.read:fail@" + num(1 + (long)rng.uniform_int(6));
  }
}

/// All .rec files under `dir` (skipping quarantine/), sorted for a
/// deterministic pick order.
std::vector<std::string> list_records(const std::string& dir) {
  std::vector<std::string> recs;
  std::error_code ec;
  for (fsys::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    const std::string p = it->path().string();
    if (p.size() > 4 && p.compare(p.size() - 4, 4, ".rec") == 0 &&
        p.find("/quarantine/") == std::string::npos)
      recs.push_back(p);
  }
  std::sort(recs.begin(), recs.end());
  return recs;
}

bool read_bytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

void write_bytes(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Damages `path` in place: truncation (a torn write as a crash would
/// leave it) or one flipped byte (bit rot). Non-atomic on purpose.
void damage_file(util::Rng& rng, const std::string& path) {
  std::string bytes;
  if (!read_bytes(path, &bytes) || bytes.size() < 4) return;
  if (rng.uniform_int(2) == 0) {
    bytes.resize(1 + rng.uniform_int(bytes.size() - 1));
  } else {
    bytes[rng.uniform_int(bytes.size())] ^= 0x20;
  }
  write_bytes(path, bytes);
}

/// The canonical rendering of the grid: one row per scenario, the answer
/// cell carrying every %.17g metric. Byte equality of two renderings is
/// double-bit equality of every result.
engine::ResultSink render(const std::vector<std::string>& specs,
                          const std::vector<std::string>& answers) {
  engine::ResultSink sink("chaos soak grid", {"spec", "answer"});
  for (std::size_t i = 0; i < specs.size(); ++i)
    sink.add_row({specs[i], answers[i]});
  return sink;
}

std::string csv_of(const engine::ResultSink& sink) {
  std::ostringstream os;
  sink.write_csv(os);
  return os.str();
}

std::string json_of(const engine::ResultSink& sink) {
  std::ostringstream os;
  sink.write_json(os);
  return os.str();
}

}  // namespace

int main() {
  // The chaos loop forks workers; a single-threaded parent keeps
  // fork-while-threaded hazards out of the picture (the pool never spins
  // up, and drain heartbeat threads are joined before each fork).
  util::set_thread_budget(1);

  std::string root;
  if (const char* env = std::getenv("MBS_CHAOS_DIR"); env && *env) {
    root = env;
    std::error_code ec;
    fsys::create_directories(root, ec);
  } else {
    char tmpl[] = "/tmp/mbs_chaos.XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (!made) {
      std::fprintf(stderr, "chaos_soak: mkdtemp failed\n");
      return 1;
    }
    root = made;
  }
  const std::string cache_path = root + "/cache/evaluator.mbscache";
  const std::string shard_dir = cache_path + ".d";
  const std::string spool_dir = root + "/spool";
  const long seed = util::env_int("MBS_CHAOS_SEED", 42, 0, 1L << 62);
  const long rounds = util::env_int("MBS_CHAOS_ROUNDS", 8, 0, 10000);
  // Keep a wedged round short: a worker whose done-marker write was
  // eaten would otherwise wait the full default stall timeout.
  ::setenv("MBS_SPOOL_TIMEOUT_MS", "1000", /*overwrite=*/0);
  ::setenv("MBS_CACHE_RETRY_MS", "1", /*overwrite=*/0);

  // ---- Grid: every evaluated network under both MBS configs.
  std::vector<std::string> specs;
  for (const std::string& net : models::evaluated_network_names())
    for (const char* cfg : {"MBS1", "MBS2"})
      specs.push_back("net=" + net + ";cfg=" + std::string(cfg) +
                      ";buf=8388608");
  std::vector<engine::Scenario> grid;
  for (const std::string& spec : specs) {
    engine::Scenario s;
    std::string error;
    if (!engine::parse_scenario(spec, &s, &error)) {
      std::fprintf(stderr, "chaos_soak: bad spec '%s': %s\n", spec.c_str(),
                   error.c_str());
      return 1;
    }
    grid.push_back(std::move(s));
  }

  engine::SweepOptions opts;
  opts.threads = 1;

  // ---- Phase 1: storeless fault-free reference.
  std::vector<std::string> ref_answers(specs.size());
  std::string ref_csv, ref_json;
  {
    engine::Evaluator eval(nullptr);
    const std::vector<engine::ScenarioResult> results =
        engine::SweepRunner(opts).run(grid, eval);
    for (std::size_t i = 0; i < specs.size(); ++i)
      ref_answers[i] = engine::ServeCore::format_answer(grid[i], results[i]);
    const engine::ResultSink sink = render(specs, ref_answers);
    ref_csv = csv_of(sink);
    ref_json = json_of(sink);
    sink.export_files("chaos_grid_ref");
  }

  // ---- Phase 2: chaos drain. Each round forks a worker with a seeded
  // fault schedule; between rounds the parent corrupts a shard record.
  util::Rng rng(static_cast<std::uint64_t>(seed));
  long crashed = 0, clean = 0, damaged = 0;
  engine::SweepOptions spool_opts = opts;
  spool_opts.spool_dir = spool_dir;
  for (long r = 0; r < rounds; ++r) {
    const std::string faults = pick_faults(rng);
    std::fprintf(stderr, "chaos_soak: round %ld faults=%s\n", r,
                 faults.c_str());
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "chaos_soak: fork failed\n");
      return 1;
    }
    if (pid == 0) {
      util::fault_arm(faults);
      engine::CacheStore store(cache_path);
      engine::Evaluator eval(&store);
      engine::SweepRunner(spool_opts).run(grid, eval);
      store.save();
      std::_Exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
      ++clean;
    else
      ++crashed;
    const std::vector<std::string> recs = list_records(shard_dir);
    if (!recs.empty()) {
      damage_file(rng, recs[rng.uniform_int(recs.size())]);
      ++damaged;
    }
  }

  // ---- Phase 3: fault-free finish; the merged output must be
  // byte-identical to the reference despite everything above.
  std::string chaos_csv, chaos_json;
  {
    engine::CacheStore store(cache_path);
    engine::Evaluator eval(&store);
    const std::vector<engine::ScenarioResult> results =
        engine::SweepRunner(spool_opts).run(grid, eval);
    store.save();
    std::vector<std::string> answers(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
      answers[i] = engine::ServeCore::format_answer(grid[i], results[i]);
    const engine::ResultSink sink = render(specs, answers);
    chaos_csv = csv_of(sink);
    chaos_json = json_of(sink);
    sink.export_files("chaos_grid");
    sink.print(std::cout);
  }
  const bool csv_ok = chaos_csv == ref_csv;
  const bool json_ok = chaos_json == ref_json;

  // ---- Phase 4: serve with a fully corrupted step tier. Every answer
  // must still match the storeless reference; the damage must surface as
  // graceful degradation, never as a wrong answer.
  long serve_mismatches = 0;
  std::size_t step_recs_damaged = 0;
  engine::ServeStats serve_stats;
  {
    for (const std::string& rec : list_records(shard_dir + "/step")) {
      damage_file(rng, rec);
      ++step_recs_damaged;
    }
    engine::CacheStore store(cache_path);
    engine::ServeCore core(&store, /*hot_capacity=*/8);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const engine::ServeCore::Answer a = core.query(specs[i]);
      if (!a.ok || a.text != ref_answers[i]) {
        ++serve_mismatches;
        std::fprintf(stderr, "chaos_soak: WRONG ANSWER for %s\n  got: %s\n  want: %s\n",
                     specs[i].c_str(), a.text.c_str(), ref_answers[i].c_str());
      }
    }
    serve_stats = core.stats();
  }
  const bool serve_ok = serve_mismatches == 0 && serve_stats.errors == 0;
  const bool degraded_ok = step_recs_damaged == 0 || serve_stats.degraded > 0;

  std::printf("\n--- chaos soak summary ---\n");
  std::printf("seed=%ld rounds=%ld grid=%zu scenarios\n", seed, rounds,
              specs.size());
  std::printf("workers: crashed=%ld clean=%ld; records damaged=%ld "
              "(+%zu step records pre-serve)\n",
              crashed, clean, damaged, step_recs_damaged);
  std::printf("byte identity: csv %s (%zu bytes), json %s (%zu bytes)\n",
              csv_ok ? "OK" : "MISMATCH", ref_csv.size(),
              json_ok ? "OK" : "MISMATCH", ref_json.size());
  std::printf("serve: queries=%zu store=%zu computed=%zu degraded=%zu "
              "errors=%zu mismatches=%ld\n",
              serve_stats.queries, serve_stats.store_hits,
              serve_stats.computed, serve_stats.degraded, serve_stats.errors,
              serve_mismatches);
  const bool pass = csv_ok && json_ok && serve_ok && degraded_ok;
  std::printf("CHAOS SOAK %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
