// Fig. 13: NVIDIA V100 (modeled; see DESIGN.md substitutions) vs
// WaveCore+MBS2 with different memory systems, per training step of 64
// samples, for ResNet50/101/152 and Inception v3. Speedups are WaveCore
// relative to the V100 estimate. The mixed-device grid (one GPU scenario
// plus four WaveCore memory variants per network) is a single engine sweep;
// the MBS2 schedule of each network is computed once and shared across its
// four memory variants.
#include <cstdio>
#include <iostream>

#include "arch/gpu.h"
#include "arch/memory.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const char* nets[] = {"resnet50", "resnet101", "resnet152", "inception_v3"};
  const arch::MemoryConfig memories[] = {arch::hbm2_x2(), arch::gddr5(),
                                         arch::hbm2(), arch::lpddr4()};
  const std::size_t per_net = 1 + std::size(memories);

  std::vector<engine::Scenario> grid;
  for (const char* name : nets) {
    engine::Scenario gpu;
    gpu.network = name;
    gpu.device = engine::Device::kGpu;
    gpu.gpu_mini_batch = 64;  // global mini-batch (32 per WaveCore core)
    grid.push_back(std::move(gpu));
    for (const auto& mem : memories) {
      engine::Scenario s;
      s.network = name;
      s.config = sched::ExecConfig::kMbs2;
      s.hw.memory = mem;
      grid.push_back(std::move(s));
    }
  }

  // One output row per network: row ni aggregates its GPU scenario and the
  // four WaveCore memory variants.
  const auto results = driver.run(
      grid, [&](std::size_t i) { return shard.owns(i / per_net); });

  std::printf("=== Fig. 13: V100 (Caffe model) vs WaveCore + MBS2 ===\n");
  std::printf("(single WaveCore has ~30%% of V100 peak compute and 27%% of "
              "its bandwidth with LPDDR4, yet trains faster)\n\n");

  engine::ResultSink sink(
      "", {"network", "V100 [ms]", "HBM2x2 [ms]", "speedup", "GDDR5 [ms]",
           "speedup", "HBM2 [ms]", "speedup", "LPDDR4 [ms]", "speedup"});
  for (std::size_t ni = 0; ni < std::size(nets); ++ni) {
    if (!shard.owns(ni)) continue;  // one output row per network
    const engine::ScenarioResult& gpu = results[ni * per_net];
    std::vector<std::string> row{gpu.network->name,
                                 util::fmt(gpu.step.time_s * 1e3, 1)};
    for (std::size_t mi = 0; mi < std::size(memories); ++mi) {
      const sim::StepResult& r = results[ni * per_net + 1 + mi].step;
      row.push_back(util::fmt(r.time_s * 1e3, 1));
      row.push_back(util::fmt(gpu.step.time_s / r.time_s, 2));
    }
    sink.add_row(row);
  }
  sink.print(std::cout);
  sink.export_files("fig13_gpu_compare");
  std::printf("\npaper's headline: WaveCore+MBS2 beats the V100 with every "
              "memory type (speedups 1.06-1.27), and the gap widens with "
              "network depth.\n");
  return 0;
}
