// Fig. 13: NVIDIA V100 (modeled; see DESIGN.md substitutions) vs
// WaveCore+MBS2 with different memory systems, per training step of 64
// samples, for ResNet50/101/152 and Inception v3. Speedups are WaveCore
// relative to the V100 estimate.
#include <cstdio>
#include <iostream>

#include "arch/gpu.h"
#include "arch/memory.h"
#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace mbs;

  const char* nets[] = {"resnet50", "resnet101", "resnet152", "inception_v3"};
  const arch::MemoryConfig memories[] = {arch::hbm2_x2(), arch::gddr5(),
                                         arch::hbm2(), arch::lpddr4()};

  std::printf("=== Fig. 13: V100 (Caffe model) vs WaveCore + MBS2 ===\n");
  std::printf("(single WaveCore has ~30%% of V100 peak compute and 27%% of "
              "its bandwidth with LPDDR4, yet trains faster)\n\n");

  util::Table t({"network", "V100 [ms]", "HBM2x2 [ms]", "speedup",
                 "GDDR5 [ms]", "speedup", "HBM2 [ms]", "speedup",
                 "LPDDR4 [ms]", "speedup"});
  for (const char* name : nets) {
    const core::Network net = models::make_network(name);
    const int batch = 64;  // global mini-batch (32 per WaveCore core)
    const auto gpu = arch::simulate_gpu_step(arch::GpuModel{}, net, batch);

    std::vector<std::string> row{net.name, util::fmt(gpu.time_s * 1e3, 1)};
    const sched::Schedule s =
        sched::build_schedule(net, sched::ExecConfig::kMbs2);
    for (const auto& mem : memories) {
      sim::WaveCoreConfig hw;
      hw.memory = mem;
      const auto r = sim::simulate_step(net, s, hw);
      row.push_back(util::fmt(r.time_s * 1e3, 1));
      row.push_back(util::fmt(gpu.time_s / r.time_s, 2));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::printf("\npaper's headline: WaveCore+MBS2 beats the V100 with every "
              "memory type (speedups 1.06-1.27), and the gap widens with "
              "network depth.\n");
  return 0;
}
