// Traffic replay against the serve layer: thousands of mixed hot / warm /
// cold Scenario queries fired at a ServeCore over this run's cache store,
// reporting per-class latency percentiles (p50/p99/max), hit rates, and —
// the property everything else rests on — that every served answer is
// bit-identical to the batch Evaluator's result for the same Scenario key
// (the answers are %.17g-rendered, so string equality is double-bit
// equality; any mismatch fails the run).
//
// Query mix (deterministic SplitMix64 trace, seed fixed): 90% of queries
// draw from a 12-key hot set (they stay resident in the LRU), 9% from the
// 42-key warm tail (mostly evicted between visits: exercises the
// store-hit tier), 1% from cold keys outside the pre-warmed grid
// (exercises the compute tier and the write-through path). The replay
// summary table (counts, hit rates, verification, answer fingerprint) is
// deterministic; the latency table below it is wall-clock and is not.
//
// Usage: serve_replay
//   MBS_REPLAY_QUERIES=N   queries to fire (default 4000)
//   MBS_SERVE_HOT=N        ServeCore LRU capacity (default 32)
// The answers-fingerprint line is the cross-run identity check: it must
// not move across MBS_THREADS settings, warm vs cold stores, or spool
// drains (the sweep-service CI job asserts this).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/serve.h"
#include "models/zoo.h"
#include "util/env.h"
#include "util/fnv.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

struct ClassStats {
  std::vector<double> latencies_us;
  std::size_t queries = 0;
  std::size_t hot_hits = 0;

  void record(double us, bool hot) {
    latencies_us.push_back(us);
    ++queries;
    if (hot) ++hot_hits;
  }

  double percentile(double p) {
    if (latencies_us.empty()) return 0;
    std::sort(latencies_us.begin(), latencies_us.end());
    std::size_t i = static_cast<std::size_t>(p * (latencies_us.size() - 1));
    return latencies_us[i];
  }
};

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);

  const long n_queries =
      util::env_int("MBS_REPLAY_QUERIES", 4000, 1, 100000000);
  const std::size_t hot_capacity = static_cast<std::size_t>(
      util::env_int("MBS_SERVE_HOT", 32, 1, 1 << 24));

  // ---- Key space. Specs are the ground truth; the warm grid is parsed
  // from them so the served and batch sides share one Scenario per spec.
  const std::vector<std::string> networks = models::evaluated_network_names();
  std::vector<std::string> specs;        // warm keys: served AND pre-warmed
  std::vector<std::string> cold_specs;   // cold keys: served, never warmed
  for (const std::string& net : networks)
    for (const char* cfg : {"MBS1", "MBS2"})
      for (long mib : {8, 16})
        specs.push_back("net=" + net + ";cfg=" + std::string(cfg) +
                        ";buf=" + std::to_string(mib * 1024 * 1024));
  for (const std::string& net : networks)
    for (long mib : {8, 16})
      specs.push_back("net=" + net + ";cfg=MBS2;dev=systolic;buf=" +
                      std::to_string(mib * 1024 * 1024));
  for (const std::string& net : networks) specs.push_back("net=" + net + ";dev=gpu");
  for (const std::string& net : networks)
    specs.push_back("net=" + net + ";cfg=MBS2;stage=traffic;buf=" +
                    std::to_string(8 * 1024 * 1024));
  for (const std::string& net : networks)
    cold_specs.push_back("net=" + net + ";cfg=MBS2;buf=" +
                         std::to_string(12 * 1024 * 1024));

  std::vector<engine::Scenario> grid;
  std::vector<engine::Scenario> all_scenarios;  // warm + cold, spec order
  for (const std::vector<std::string>* list : {&specs, &cold_specs})
    for (const std::string& spec : *list) {
      engine::Scenario s;
      std::string error;
      if (!engine::parse_scenario(spec, &s, &error)) {
        std::fprintf(stderr, "serve_replay: bad spec '%s': %s\n",
                     spec.c_str(), error.c_str());
        return 1;
      }
      all_scenarios.push_back(s);
      if (list == &specs) grid.push_back(s);
    }

  // ---- Warm phase: batch-evaluate the warm grid through the driver (the
  // normal sweep path: schedule groups, thread pool, cache store), then
  // flush so the serve tiers below start from a genuinely warm store.
  engine::SweepResults warm = driver.run(grid);
  (void)warm;
  if (driver.store()) driver.store()->save();

  // ---- Expected answers: an INDEPENDENT in-memory batch Evaluator (no
  // store — it must not warm the one the serve path reads) computes every
  // spec, rendered by the same formatter the serve path uses. Cold specs
  // therefore genuinely exercise ServeCore's compute tier below.
  engine::Evaluator ref_eval;
  std::vector<std::string> expected;
  for (const engine::Scenario& s : all_scenarios)
    expected.push_back(engine::ServeCore::format_answer(
        s, engine::evaluate_scenario(s, ref_eval)));

  // ---- Replay. Classes: hot = first 12 warm specs (90% of draws), warm
  // tail = the rest of the warm grid (9%), cold = outside the grid (1%).
  const std::size_t n_hot = 12;
  engine::ServeCore core(driver.store(), hot_capacity);
  util::Rng rng(42);  // fixed seed: the trace is part of the bench
  ClassStats cls[3];
  const char* cls_name[3] = {"hot", "warm-tail", "cold"};
  std::uint64_t fingerprint = util::fnv1a64("serve-replay-v1");
  long mismatches = 0;

  for (long q = 0; q < n_queries; ++q) {
    const double draw = rng.uniform();
    int c;
    std::size_t idx;
    if (draw < 0.90) {
      c = 0;
      idx = rng.uniform_int(n_hot);
    } else if (draw < 0.99) {
      c = 1;
      idx = n_hot + rng.uniform_int(specs.size() - n_hot);
    } else {
      c = 2;
      idx = specs.size() + rng.uniform_int(cold_specs.size());
    }
    const std::string& spec =
        c == 2 ? cold_specs[idx - specs.size()] : specs[idx];
    const auto t0 = std::chrono::steady_clock::now();
    const engine::ServeCore::Answer a = core.query(spec);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    cls[c].record(us, a.source == engine::ServeCore::Source::kHot);
    if (!a.ok || a.text != expected[idx]) {
      ++mismatches;
      if (mismatches <= 5)
        std::fprintf(stderr,
                     "serve_replay: MISMATCH on '%s'\n  served:   %s\n"
                     "  expected: %s\n",
                     spec.c_str(), a.text.c_str(), expected[idx].c_str());
    }
    fingerprint = util::fnv1a64(a.text, fingerprint);
  }

  const engine::ServeStats st = core.stats();
  const double hot_rate =
      cls[0].queries ? static_cast<double>(cls[0].hot_hits) /
                           static_cast<double>(cls[0].queries)
                     : 0.0;

  // ---- Deterministic replay summary (fixed trace => fixed counts).
  engine::ResultSink summary(
      "serve_replay: deterministic replay summary",
      {"metric", "value"});
  summary.add_row({"queries", std::to_string(st.queries)});
  summary.add_row({"hot_class_queries", std::to_string(cls[0].queries)});
  summary.add_row({"warm_tail_queries", std::to_string(cls[1].queries)});
  summary.add_row({"cold_queries", std::to_string(cls[2].queries)});
  summary.add_row({"lru_hits", std::to_string(st.hot_hits)});
  summary.add_row({"store_hits", std::to_string(st.store_hits)});
  summary.add_row({"computed", std::to_string(st.computed)});
  char rate_buf[32];
  std::snprintf(rate_buf, sizeof rate_buf, "%.4f", hot_rate);
  summary.add_row({"hot_query_hit_rate", rate_buf});
  summary.add_row({"answers_verified",
                   std::to_string(st.queries - static_cast<std::size_t>(
                                                   mismatches)) +
                       "/" + std::to_string(st.queries)});
  char fp_buf[32];
  std::snprintf(fp_buf, sizeof fp_buf, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  summary.add_row({"answers_fingerprint", fp_buf});
  summary.print(std::cout);
  summary.export_files("serve_replay_summary");

  // ---- Latency table (wall-clock: NOT byte-stable run to run).
  engine::ResultSink lat("serve_replay: latency by class (microseconds)",
                         {"class", "queries", "p50_us", "p99_us", "max_us"});
  for (int c = 0; c < 3; ++c) {
    lat.add_row({cls_name[c], std::to_string(cls[c].queries),
                 fmt(cls[c].percentile(0.50)), fmt(cls[c].percentile(0.99)),
                 fmt(cls[c].percentile(1.0))});
  }
  lat.print(std::cout);
  lat.export_files("serve_replay");

  std::printf("\nserve_replay: %s — %ld/%ld answers bit-identical to the "
              "batch evaluator, hot-query hit rate %.1f%%\n",
              mismatches == 0 && hot_rate >= 0.95 ? "PASS" : "FAIL",
              static_cast<long>(st.queries) - mismatches,
              static_cast<long>(st.queries), 100.0 * hot_rate);
  return (mismatches == 0 && hot_rate >= 0.95) ? 0 : 1;
}
