// Fig. 11: ResNet50 per-step execution time and DRAM traffic sensitivity to
// the per-core global buffer size (5-40 MiB), for IL / MBS-FS / MBS1 / MBS2,
// normalized to IL at 5 MiB. The 20-point (buffer x config) grid is one
// engine sweep; the IL @ 5 MiB reference is simply its first point.
#include <cstdio>
#include <iostream>

#include "engine/engine.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const std::vector<sched::ExecConfig> configs =
      sched::serialized_configs_with_il();
  const double sizes_mib[] = {5, 10, 20, 30, 40};

  std::vector<engine::Scenario> grid;
  for (double mib : sizes_mib)
    for (sched::ExecConfig cfg : configs) {
      engine::Scenario s;
      s.network = "resnet50";
      s.config = cfg;
      s.params.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
      s.hw.global_buffer_bytes = s.params.buffer_bytes;
      grid.push_back(std::move(s));
    }

  // One output row per buffer size: row si aggregates the ncfg scenarios
  // si*ncfg .. si*ncfg+ncfg-1.
  const auto results = driver.run(
      grid, [&](std::size_t i) { return shard.owns(i / configs.size()); });

  std::printf("=== Fig. 11: ResNet50 sensitivity to global buffer size "
              "(normalized to IL @ 5 MiB) ===\n\n");

  // Reference: IL at 5 MiB — the first scenario of the grid.
  const double ref_time = results[0].step.time_s;
  const double ref_traffic = results[0].step.dram_bytes;

  engine::ResultSink time_sink("normalized execution time",
                               {"buffer", "IL", "MBS-FS", "MBS1", "MBS2"});
  engine::ResultSink traffic_sink("normalized DRAM traffic",
                                  {"buffer", "IL", "MBS-FS", "MBS1", "MBS2"});
  const std::size_t ncfg = configs.size();
  for (std::size_t si = 0; si < std::size(sizes_mib); ++si) {
    if (!shard.owns(si)) continue;  // one output row per buffer size
    std::vector<std::string> trow{util::fmt(sizes_mib[si], 0) + " MiB"};
    std::vector<std::string> drow{util::fmt(sizes_mib[si], 0) + " MiB"};
    for (std::size_t ci = 0; ci < ncfg; ++ci) {
      const sim::StepResult& r = results[si * ncfg + ci].step;
      trow.push_back(util::fmt(r.time_s / ref_time, 2));
      drow.push_back(util::fmt(r.dram_bytes / ref_traffic, 2));
    }
    time_sink.add_row(trow);
    traffic_sink.add_row(drow);
  }

  time_sink.print(std::cout);
  std::printf("\n");
  traffic_sink.print(std::cout);
  time_sink.export_files("fig11_time");
  traffic_sink.export_files("fig11_traffic");
  std::printf("\npaper's headline: IL at 40 MiB still saves less traffic "
              "than MBS2 at 5 MiB, and MBS1/MBS2 vary little with buffer "
              "size.\n");
  return 0;
}
