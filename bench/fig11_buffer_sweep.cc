// Fig. 11: ResNet50 per-step execution time and DRAM traffic sensitivity to
// the per-core global buffer size (5-40 MiB), for IL / MBS-FS / MBS1 / MBS2,
// normalized to IL at 5 MiB.
#include <cstdio>
#include <iostream>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace mbs;
  const core::Network net = models::make_network("resnet50");

  const sched::ExecConfig configs[] = {
      sched::ExecConfig::kIL, sched::ExecConfig::kMbsFs,
      sched::ExecConfig::kMbs1, sched::ExecConfig::kMbs2};
  const double sizes_mib[] = {5, 10, 20, 30, 40};

  std::printf("=== Fig. 11: ResNet50 sensitivity to global buffer size "
              "(normalized to IL @ 5 MiB) ===\n\n");

  // Reference: IL at 5 MiB.
  double ref_time = 0, ref_traffic = 0;
  {
    sched::ScheduleParams p;
    p.buffer_bytes = 5ll * 1024 * 1024;
    sim::WaveCoreConfig hw;
    hw.global_buffer_bytes = p.buffer_bytes;
    const auto r = sim::simulate_step(
        net, sched::build_schedule(net, sched::ExecConfig::kIL, p), hw);
    ref_time = r.time_s;
    ref_traffic = r.dram_bytes;
  }

  util::Table time_tab({"buffer", "IL", "MBS-FS", "MBS1", "MBS2"});
  util::Table traffic_tab({"buffer", "IL", "MBS-FS", "MBS1", "MBS2"});
  for (double mib : sizes_mib) {
    std::vector<std::string> trow{util::fmt(mib, 0) + " MiB"};
    std::vector<std::string> drow{util::fmt(mib, 0) + " MiB"};
    for (auto cfg : configs) {
      sched::ScheduleParams p;
      p.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
      sim::WaveCoreConfig hw;
      hw.global_buffer_bytes = p.buffer_bytes;
      const auto r =
          sim::simulate_step(net, sched::build_schedule(net, cfg, p), hw);
      trow.push_back(util::fmt(r.time_s / ref_time, 2));
      drow.push_back(util::fmt(r.dram_bytes / ref_traffic, 2));
    }
    time_tab.add_row(trow);
    traffic_tab.add_row(drow);
  }

  std::printf("--- normalized execution time ---\n");
  time_tab.print(std::cout);
  std::printf("\n--- normalized DRAM traffic ---\n");
  traffic_tab.print(std::cout);
  std::printf("\npaper's headline: IL at 40 MiB still saves less traffic "
              "than MBS2 at 5 MiB, and MBS1/MBS2 vary little with buffer "
              "size.\n");
  return 0;
}
