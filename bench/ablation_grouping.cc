// Ablation (footnote 1): greedy layer grouping vs the optimal contiguous
// partition found by dynamic programming. The paper reports the exhaustive
// search improves traffic and performance by roughly 1%. Greedy and DP
// schedules for all (network, config) pairs come from one engine sweep —
// the DP points differ only in ScheduleParams::optimal_grouping, so they
// memoize under distinct schedule keys.
#include <cstdio>
#include <iostream>

#include "engine/engine.h"
#include "models/zoo.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  std::printf("=== Ablation: greedy vs optimal (DP) layer grouping "
              "(paper footnote 1: optimal is ~1%% better) ===\n\n");

  const std::vector<sched::ExecConfig> configs = {sched::ExecConfig::kMbs1,
                                                  sched::ExecConfig::kMbs2};
  std::vector<engine::Scenario> grid;
  for (const std::string& name : models::evaluated_network_names())
    for (sched::ExecConfig cfg : configs)
      for (bool optimal : {false, true}) {
        engine::Scenario s;
        s.network = name;
        s.config = cfg;
        s.params.optimal_grouping = optimal;
        s.stage = engine::Stage::kTraffic;  // no step simulation needed
        grid.push_back(std::move(s));
      }

  // One output row per (network, config): row r reads the greedy/DP pair at
  // scenarios 2*r and 2*r+1.
  const auto results =
      driver.run(grid, [&](std::size_t i) { return shard.owns(i / 2); });

  engine::ResultSink sink(
      "", {"network", "config", "greedy groups", "DP groups",
           "greedy DRAM [GiB]", "DP DRAM [GiB]", "DP gain"});
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    if (!shard.owns(i / 2)) continue;  // one output row per greedy/DP pair
    const engine::ScenarioResult& greedy = results[i];
    const engine::ScenarioResult& dp = results[i + 1];
    const double tg = greedy.traffic->dram_bytes();
    const double td = dp.traffic->dram_bytes();
    sink.add_row({greedy.network->name,
                  sched::to_string(greedy.scenario.config),
                  std::to_string(greedy.schedule->groups.size()),
                  std::to_string(dp.schedule->groups.size()),
                  util::fmt(tg / (1024.0 * 1024 * 1024), 3),
                  util::fmt(td / (1024.0 * 1024 * 1024), 3),
                  util::fmt(100.0 * (tg - td) / tg, 2) + "%"});
  }
  sink.print(std::cout);
  sink.export_files("ablation_grouping");
  return 0;
}
