// Ablation (footnote 1): greedy layer grouping vs the optimal contiguous
// partition found by dynamic programming. The paper reports the exhaustive
// search improves traffic and performance by roughly 1%.
#include <cstdio>
#include <iostream>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sched/traffic.h"
#include "util/table.h"

int main() {
  using namespace mbs;

  std::printf("=== Ablation: greedy vs optimal (DP) layer grouping "
              "(paper footnote 1: optimal is ~1%% better) ===\n\n");

  util::Table t({"network", "config", "greedy groups", "DP groups",
                 "greedy DRAM [GiB]", "DP DRAM [GiB]", "DP gain"});
  for (const auto& name : models::evaluated_network_names()) {
    const core::Network net = models::make_network(name);
    for (auto cfg : {sched::ExecConfig::kMbs1, sched::ExecConfig::kMbs2}) {
      const sched::Schedule greedy = sched::build_schedule(net, cfg);
      sched::ScheduleParams p;
      p.optimal_grouping = true;
      const sched::Schedule dp = sched::build_schedule(net, cfg, p);
      const double tg = sched::dram_traffic_bytes(net, greedy);
      const double td = sched::dram_traffic_bytes(net, dp);
      t.add_row({net.name, sched::to_string(cfg),
                 std::to_string(greedy.groups.size()),
                 std::to_string(dp.groups.size()),
                 util::fmt(tg / (1024.0 * 1024 * 1024), 3),
                 util::fmt(td / (1024.0 * 1024 * 1024), 3),
                 util::fmt(100.0 * (tg - td) / tg, 2) + "%"});
    }
  }
  t.print(std::cout);
  return 0;
}
