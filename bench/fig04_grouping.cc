// Fig. 4: per-block inter-layer data size per sample, the resulting minimum
// sub-batch iteration count, and the MBS layer grouping for ResNet50 with 32
// samples and a 10 MiB buffer. The MBS1/MBS2 schedules come from one engine
// sweep (the network is built once and shared).
#include <cstdio>
#include <iostream>

#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const auto grid = engine::scenario_grid(
      {"resnet50"}, {sched::ExecConfig::kMbs1, sched::ExecConfig::kMbs2}, {},
      {}, engine::Stage::kSchedule);
  // Every per-block row reads both schedules, so each shard needs both.
  const auto results = driver.run(grid, [](std::size_t) { return true; });

  const core::Network& net = *results[0].network;
  const sched::Schedule& s1 = *results[0].schedule;
  const sched::Schedule& s2 = *results[1].schedule;

  std::printf("=== Fig. 4: ResNet50 per-block footprints, minimum iteration "
              "counts and MBS grouping (32 samples, 10 MiB) ===\n\n");

  engine::ResultSink sink(
      "", {"block", "kind", "data/sample [MB]", "MBS2 data/sample [MB]",
           "max sub-batch", "MIN iterations", "MBS1 group", "MBS2 group"});
  for (std::size_t b = 0; b < net.blocks.size(); ++b) {
    if (!shard.owns(b)) continue;  // one output row per block
    const int bi = static_cast<int>(b);
    sink.add_row(
        {net.blocks[b].name, core::to_string(net.blocks[b].kind),
         util::fmt(static_cast<double>(s1.block_footprint[b]) / 1e6, 2),
         util::fmt(static_cast<double>(s2.block_footprint[b]) / 1e6, 2),
         std::to_string(s2.block_max_sub[b]),
         std::to_string(
             sched::iterations_for(s2.mini_batch, s2.block_max_sub[b])),
         std::to_string(s1.group_of_block(bi) + 1),
         std::to_string(s2.group_of_block(bi) + 1)});
  }
  sink.print(std::cout);
  sink.export_files("fig04_grouping");

  std::printf("\nMBS1 forms %zu groups; MBS2 forms %zu groups "
              "(paper Fig. 4 shows 4 groups for its configuration).\n",
              s1.groups.size(), s2.groups.size());
  return 0;
}
