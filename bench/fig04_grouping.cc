// Fig. 4: per-block inter-layer data size per sample, the resulting minimum
// sub-batch iteration count, and the MBS layer grouping for ResNet50 with 32
// samples and a 10 MiB buffer.
#include <cstdio>
#include <iostream>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace mbs;
  const core::Network net = models::make_network("resnet50");

  std::printf("=== Fig. 4: ResNet50 per-block footprints, minimum iteration "
              "counts and MBS grouping (32 samples, 10 MiB) ===\n\n");

  const sched::Schedule s1 =
      sched::build_schedule(net, sched::ExecConfig::kMbs1);
  const sched::Schedule s2 =
      sched::build_schedule(net, sched::ExecConfig::kMbs2);

  util::Table t({"block", "kind", "data/sample [MB]", "MBS2 data/sample [MB]",
                 "max sub-batch", "MIN iterations", "MBS1 group",
                 "MBS2 group"});
  for (std::size_t b = 0; b < net.blocks.size(); ++b) {
    const int bi = static_cast<int>(b);
    t.add_row({net.blocks[b].name, core::to_string(net.blocks[b].kind),
               util::fmt(static_cast<double>(s1.block_footprint[b]) / 1e6, 2),
               util::fmt(static_cast<double>(s2.block_footprint[b]) / 1e6, 2),
               std::to_string(s2.block_max_sub[b]),
               std::to_string(sched::iterations_for(s2.mini_batch,
                                                    s2.block_max_sub[b])),
               std::to_string(s1.group_of_block(bi) + 1),
               std::to_string(s2.group_of_block(bi) + 1)});
  }
  t.print(std::cout);

  std::printf("\nMBS1 forms %zu groups; MBS2 forms %zu groups "
              "(paper Fig. 4 shows 4 groups for its configuration).\n",
              s1.groups.size(), s2.groups.size());
  return 0;
}
