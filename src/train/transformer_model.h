// A tiny pre-norm transformer for the training substrate.
//
// The laptop-scale analogue of the model zoo's transformer family, built
// from the same functional ops the CNN models use: every projection is a
// 1x1 convolution over the token axis (exactly the GEMM the zoo's qkv /
// proj / MLP layers model), the mixing step is real softmax attention
// (train/attention.h), and normalization is selectable none / BN / GN.
//
// Its purpose is the transformer leg of the GN+MBS gradient-equivalence
// story: attention is sample-local (each token attends within its own
// sample) and GN is sample-local, so serializing the mini-batch into
// sub-batches with gradient accumulation reproduces full-batch gradients
// to float32 precision — while BN, whose statistics span the mini-batch,
// diverges. tests/train_test.cc asserts both halves.
//
// Token activations are [N, d_model, S, 1]: channels-major with the
// sequence along H, matching both the attention op's layout and the
// conv-as-token-projection trick.
#pragma once

#include <cstdint>
#include <vector>

#include "train/attention.h"
#include "train/model.h"
#include "train/norm.h"
#include "train/ops.h"
#include "train/tensor.h"

namespace mbs::train {

struct TinyTransformerConfig {
  int in_channels = 3;  ///< raw per-token input channels (embedded by 1x1)
  int seq = 9;          ///< tokens per sample
  int d_model = 16;
  int heads = 2;        ///< must divide d_model
  int depth = 2;        ///< transformer blocks
  int mlp_ratio = 2;    ///< MLP hidden = mlp_ratio * d_model
  int classes = 4;
  NormMode norm = NormMode::kGroup;
  int gn_groups = 4;    ///< must divide d_model and mlp_ratio * d_model
  std::uint64_t seed = 1;
};

/// Pre-norm blocks: x + proj(attn(qkv(norm(x)))) then
/// x + fc2(relu(fc1(norm(x)))); mean-pooled tokens feed a linear
/// classifier. Gradients accumulate across backward() calls (zero_grad()
/// resets) — the MBS synchronization contract.
class TinyTransformer {
 public:
  explicit TinyTransformer(const TinyTransformerConfig& config);

  /// Forward on x [N, in_channels, S, 1]; returns logits [N, classes] and
  /// retains per-layer caches for backward().
  Tensor forward(const Tensor& x);

  /// Backpropagates d(loss)/d(logits), accumulating parameter gradients.
  void backward(const Tensor& dlogits);

  void zero_grad();
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();

  const TinyTransformerConfig& config() const { return config_; }

 private:
  struct NormParams {
    Tensor gamma, beta, dgamma, dbeta;
    NormCache cache;
  };
  struct Block {
    Tensor qkv_w, qkv_dw, proj_w, proj_dw, fc1_w, fc1_dw, fc2_w, fc2_dw;
    NormParams norm1, norm2;
    AttentionCache attn;
    // Forward caches.
    Tensor x_in, n1_out, qkv_out, attn_out, add1, n2_out, f1_out, relu_out;
  };

  Tensor norm_forward(NormParams& np, const Tensor& x);
  Tensor norm_backward(NormParams& np, const Tensor& dy);

  TinyTransformerConfig config_;
  Tensor embed_w, embed_dw;
  Tensor embed_in_, embed_out_;
  std::vector<Block> blocks_;
  Tensor fc_w, fc_b, fc_dw, fc_db;
  Tensor gap_out_;
  std::vector<int> gap_in_shape_;
};

}  // namespace mbs::train
