#include "train/optim.h"

#include <cassert>

#include "util/parallel.h"

namespace mbs::train {

void Sgd::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  assert(params.size() == grads.size());
  util::ScopedKernelTimer timer(util::KernelKind::kSgd);
  if (velocity_.empty())
    for (Tensor* p : params) velocity_.push_back(Tensor(p->shape()));
  assert(velocity_.size() == params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& v = velocity_[i];
    assert(p.size() == g.size() && p.size() == v.size());
    const float mu = static_cast<float>(config_.momentum);
    const float wd = static_cast<float>(config_.weight_decay);
    const float lr = static_cast<float>(config_.lr);
    // Elementwise update: any range partition is bit-identical.
    util::parallel_for(p.size(), 1 << 14,
                       [&](std::int64_t j0, std::int64_t j1) {
                         for (std::int64_t j = j0; j < j1; ++j) {
                           v[j] = mu * v[j] + g[j] + wd * p[j];
                           p[j] -= lr * v[j];
                         }
                       });
  }
}

}  // namespace mbs::train
