// Normalization layers on the kernel pool: BN statistics are per channel
// and GN statistics per (sample, group), so the loops fan those units out
// across util::parallel_for — each unit's reductions stay on one thread in
// the original accumulation order, keeping results bit-identical at any
// thread count. GN's backward additionally accumulates dgamma/dbeta across
// samples, so it parallelizes over groups only (samples stay an inner,
// in-order loop).
#include "train/norm.h"

#include <cassert>
#include <cmath>

#include "util/parallel.h"

namespace mbs::train {

Tensor batchnorm_forward(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, NormCache& cache, float eps) {
  assert(x.ndim() == 4);
  util::ScopedKernelTimer timer(util::KernelKind::kNorm);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t m = static_cast<std::int64_t>(n) * h * w;
  cache.x = x;
  cache.mean = Tensor({c});
  cache.inv_std = Tensor({c});
  Tensor y(x.shape());
  cache.xhat = Tensor(x.shape());
  util::parallel_for(c, 1, [&](std::int64_t c0, std::int64_t c1) {
  for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
    double sum = 0, sq = 0;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double v = x.at(b, ch, i, j);
          sum += v;
          sq += v * v;
        }
    const double mean = sum / static_cast<double>(m);
    const double var = sq / static_cast<double>(m) - mean * mean;
    const double inv = 1.0 / std::sqrt(var + eps);
    cache.mean[ch] = static_cast<float>(mean);
    cache.inv_std[ch] = static_cast<float>(inv);
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float xh = static_cast<float>((x.at(b, ch, i, j) - mean) * inv);
          cache.xhat.at(b, ch, i, j) = xh;
          y.at(b, ch, i, j) = gamma[ch] * xh + beta[ch];
        }
  }
  });
  return y;
}

NormGrads batchnorm_backward(const Tensor& dy, const Tensor& gamma,
                             const NormCache& cache) {
  util::ScopedKernelTimer timer(util::KernelKind::kNorm);
  const Tensor& x = cache.x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const double m = static_cast<double>(n) * h * w;
  NormGrads g;
  g.dx = Tensor(x.shape());
  g.dgamma = Tensor({c});
  g.dbeta = Tensor({c});
  util::parallel_for(c, 1, [&](std::int64_t c0, std::int64_t c1) {
  for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
    double sum_dy = 0, sum_dy_xhat = 0;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double d = dy.at(b, ch, i, j);
          sum_dy += d;
          sum_dy_xhat += d * cache.xhat.at(b, ch, i, j);
        }
    g.dbeta[ch] = static_cast<float>(sum_dy);
    g.dgamma[ch] = static_cast<float>(sum_dy_xhat);
    const double inv = cache.inv_std[ch];
    const double gam = gamma[ch];
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double d = dy.at(b, ch, i, j);
          const double xh = cache.xhat.at(b, ch, i, j);
          g.dx.at(b, ch, i, j) = static_cast<float>(
              gam * inv * (d - sum_dy / m - xh * sum_dy_xhat / m));
        }
  }
  });
  return g;
}

Tensor groupnorm_forward(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, int groups, NormCache& cache,
                         float eps) {
  assert(x.ndim() == 4);
  util::ScopedKernelTimer timer(util::KernelKind::kNorm);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  assert(c % groups == 0);
  const int cpg = c / groups;
  const double m = static_cast<double>(cpg) * h * w;
  cache.x = x;
  cache.mean = Tensor({n, groups});
  cache.inv_std = Tensor({n, groups});
  cache.xhat = Tensor(x.shape());
  Tensor y(x.shape());
  util::parallel_for(
      static_cast<std::int64_t>(n) * groups, 1,
      [&](std::int64_t u0, std::int64_t u1) {
  for (std::int64_t unit = u0; unit < u1; ++unit) {
    const int b = static_cast<int>(unit / groups);
    const int gr = static_cast<int>(unit % groups);
    {
      double sum = 0, sq = 0;
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double v = x.at(b, cc, i, j);
            sum += v;
            sq += v * v;
          }
      const double mean = sum / m;
      const double var = sq / m - mean * mean;
      const double inv = 1.0 / std::sqrt(var + eps);
      cache.mean[static_cast<std::int64_t>(b) * groups + gr] =
          static_cast<float>(mean);
      cache.inv_std[static_cast<std::int64_t>(b) * groups + gr] =
          static_cast<float>(inv);
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const float xh =
                static_cast<float>((x.at(b, cc, i, j) - mean) * inv);
            cache.xhat.at(b, cc, i, j) = xh;
            y.at(b, cc, i, j) = gamma[cc] * xh + beta[cc];
          }
    }
  }
      });
  return y;
}

NormGrads groupnorm_backward(const Tensor& dy, const Tensor& gamma,
                             int groups, const NormCache& cache) {
  util::ScopedKernelTimer timer(util::KernelKind::kNorm);
  const Tensor& x = cache.x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cpg = c / groups;
  const double m = static_cast<double>(cpg) * h * w;
  NormGrads g;
  g.dx = Tensor(x.shape());
  g.dgamma = Tensor({c});
  g.dbeta = Tensor({c});
  // dgamma/dbeta accumulate across samples, so the fan-out unit is the
  // group (channels partition by group); samples stay in-order inside.
  util::parallel_for(groups, 1, [&](std::int64_t g0, std::int64_t g1) {
  for (int gr = static_cast<int>(g0); gr < g1; ++gr)
    for (int b = 0; b < n; ++b) {
      // Sums over the normalization group, with dy scaled by gamma (the
      // affine transform sits between xhat and the loss).
      double sum_dyg = 0, sum_dyg_xhat = 0;
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double d = dy.at(b, cc, i, j);
            const double xh = cache.xhat.at(b, cc, i, j);
            g.dbeta[cc] += static_cast<float>(d);
            g.dgamma[cc] += static_cast<float>(d * xh);
            sum_dyg += d * gamma[cc];
            sum_dyg_xhat += d * gamma[cc] * xh;
          }
      const double inv =
          cache.inv_std[static_cast<std::int64_t>(b) * groups + gr];
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double d = dy.at(b, cc, i, j) * gamma[cc];
            const double xh = cache.xhat.at(b, cc, i, j);
            g.dx.at(b, cc, i, j) = static_cast<float>(
                inv * (d - sum_dyg / m - xh * sum_dyg_xhat / m));
          }
    }
  });
  return g;
}

}  // namespace mbs::train
