#include "train/norm.h"

#include <cassert>
#include <cmath>

namespace mbs::train {

Tensor batchnorm_forward(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, NormCache& cache, float eps) {
  assert(x.ndim() == 4);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t m = static_cast<std::int64_t>(n) * h * w;
  cache.x = x;
  cache.mean = Tensor({c});
  cache.inv_std = Tensor({c});
  Tensor y(x.shape());
  cache.xhat = Tensor(x.shape());
  for (int ch = 0; ch < c; ++ch) {
    double sum = 0, sq = 0;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double v = x.at(b, ch, i, j);
          sum += v;
          sq += v * v;
        }
    const double mean = sum / static_cast<double>(m);
    const double var = sq / static_cast<double>(m) - mean * mean;
    const double inv = 1.0 / std::sqrt(var + eps);
    cache.mean[ch] = static_cast<float>(mean);
    cache.inv_std[ch] = static_cast<float>(inv);
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float xh = static_cast<float>((x.at(b, ch, i, j) - mean) * inv);
          cache.xhat.at(b, ch, i, j) = xh;
          y.at(b, ch, i, j) = gamma[ch] * xh + beta[ch];
        }
  }
  return y;
}

NormGrads batchnorm_backward(const Tensor& dy, const Tensor& gamma,
                             const NormCache& cache) {
  const Tensor& x = cache.x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const double m = static_cast<double>(n) * h * w;
  NormGrads g;
  g.dx = Tensor(x.shape());
  g.dgamma = Tensor({c});
  g.dbeta = Tensor({c});
  for (int ch = 0; ch < c; ++ch) {
    double sum_dy = 0, sum_dy_xhat = 0;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double d = dy.at(b, ch, i, j);
          sum_dy += d;
          sum_dy_xhat += d * cache.xhat.at(b, ch, i, j);
        }
    g.dbeta[ch] = static_cast<float>(sum_dy);
    g.dgamma[ch] = static_cast<float>(sum_dy_xhat);
    const double inv = cache.inv_std[ch];
    const double gam = gamma[ch];
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double d = dy.at(b, ch, i, j);
          const double xh = cache.xhat.at(b, ch, i, j);
          g.dx.at(b, ch, i, j) = static_cast<float>(
              gam * inv * (d - sum_dy / m - xh * sum_dy_xhat / m));
        }
  }
  return g;
}

Tensor groupnorm_forward(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, int groups, NormCache& cache,
                         float eps) {
  assert(x.ndim() == 4);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  assert(c % groups == 0);
  const int cpg = c / groups;
  const double m = static_cast<double>(cpg) * h * w;
  cache.x = x;
  cache.mean = Tensor({n, groups});
  cache.inv_std = Tensor({n, groups});
  cache.xhat = Tensor(x.shape());
  Tensor y(x.shape());
  for (int b = 0; b < n; ++b)
    for (int gr = 0; gr < groups; ++gr) {
      double sum = 0, sq = 0;
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double v = x.at(b, cc, i, j);
            sum += v;
            sq += v * v;
          }
      const double mean = sum / m;
      const double var = sq / m - mean * mean;
      const double inv = 1.0 / std::sqrt(var + eps);
      cache.mean[static_cast<std::int64_t>(b) * groups + gr] =
          static_cast<float>(mean);
      cache.inv_std[static_cast<std::int64_t>(b) * groups + gr] =
          static_cast<float>(inv);
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const float xh =
                static_cast<float>((x.at(b, cc, i, j) - mean) * inv);
            cache.xhat.at(b, cc, i, j) = xh;
            y.at(b, cc, i, j) = gamma[cc] * xh + beta[cc];
          }
    }
  return y;
}

NormGrads groupnorm_backward(const Tensor& dy, const Tensor& gamma,
                             int groups, const NormCache& cache) {
  const Tensor& x = cache.x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cpg = c / groups;
  const double m = static_cast<double>(cpg) * h * w;
  NormGrads g;
  g.dx = Tensor(x.shape());
  g.dgamma = Tensor({c});
  g.dbeta = Tensor({c});
  for (int b = 0; b < n; ++b)
    for (int gr = 0; gr < groups; ++gr) {
      // Sums over the normalization group, with dy scaled by gamma (the
      // affine transform sits between xhat and the loss).
      double sum_dyg = 0, sum_dyg_xhat = 0;
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double d = dy.at(b, cc, i, j);
            const double xh = cache.xhat.at(b, cc, i, j);
            g.dbeta[cc] += static_cast<float>(d);
            g.dgamma[cc] += static_cast<float>(d * xh);
            sum_dyg += d * gamma[cc];
            sum_dyg_xhat += d * gamma[cc] * xh;
          }
      const double inv =
          cache.inv_std[static_cast<std::int64_t>(b) * groups + gr];
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double d = dy.at(b, cc, i, j) * gamma[cc];
            const double xh = cache.xhat.at(b, cc, i, j);
            g.dx.at(b, cc, i, j) = static_cast<float>(
                inv * (d - sum_dyg / m - xh * sum_dyg_xhat / m));
          }
    }
  return g;
}

}  // namespace mbs::train
