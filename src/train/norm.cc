// Normalization layers on the kernel pool: BN statistics are per channel
// and GN statistics per (sample, group), so the loops fan those units out
// across util::parallel_for — each unit's reductions stay on one thread in
// the original accumulation order, keeping results bit-identical at any
// thread count. GN's backward additionally accumulates dgamma/dbeta across
// samples, so it parallelizes over groups only (samples stay an inner,
// in-order loop).
//
// Two implementations of each pass live here. The default walks raw
// pointers over the contiguous [H,W] (BN) / [Cg,H,W] (GN) runs of the
// NCHW layout and hoists loop-invariant scalars; MBS_NO_NORM_REWRITE=1
// falls back to the original Tensor::at() form. The rewrite preserves
// every floating-point expression SHAPE — accumulation order, promotion
// points, and association are unchanged, and only subexpressions that
// appear verbatim per iteration (e.g. `sum_dy / m`, `gam * inv`) are
// hoisted, never re-associated ones (`xh * sum / m` stays written out,
// because `(xh*sum)/m != xh*(sum/m)` in rounding) — so both paths are
// bit-identical; tests/kernel_test.cc and the CI golden diff enforce it.
#include "train/norm.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/parallel.h"

namespace mbs::train {

namespace {

bool g_norm_rewrite = [] {
  const char* env = std::getenv("MBS_NO_NORM_REWRITE");
  return !(env && *env && std::strcmp(env, "0") != 0);
}();

// ---------------------------------------------------------------------------
// Legacy Tensor::at() implementations (MBS_NO_NORM_REWRITE=1).
// ---------------------------------------------------------------------------

Tensor batchnorm_forward_legacy(const Tensor& x, const Tensor& gamma,
                                const Tensor& beta, NormCache& cache,
                                float eps) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t m = static_cast<std::int64_t>(n) * h * w;
  Tensor y(x.shape());
  util::parallel_for(c, 1, [&](std::int64_t c0, std::int64_t c1) {
  for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
    double sum = 0, sq = 0;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double v = x.at(b, ch, i, j);
          sum += v;
          sq += v * v;
        }
    const double mean = sum / static_cast<double>(m);
    const double var = sq / static_cast<double>(m) - mean * mean;
    const double inv = 1.0 / std::sqrt(var + eps);
    cache.mean[ch] = static_cast<float>(mean);
    cache.inv_std[ch] = static_cast<float>(inv);
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float xh = static_cast<float>((x.at(b, ch, i, j) - mean) * inv);
          cache.xhat.at(b, ch, i, j) = xh;
          y.at(b, ch, i, j) = gamma[ch] * xh + beta[ch];
        }
  }
  });
  return y;
}

NormGrads batchnorm_backward_legacy(const Tensor& dy, const Tensor& gamma,
                                    const NormCache& cache) {
  const Tensor& x = cache.x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const double m = static_cast<double>(n) * h * w;
  NormGrads g;
  g.dx = Tensor(x.shape());
  g.dgamma = Tensor({c});
  g.dbeta = Tensor({c});
  util::parallel_for(c, 1, [&](std::int64_t c0, std::int64_t c1) {
  for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
    double sum_dy = 0, sum_dy_xhat = 0;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double d = dy.at(b, ch, i, j);
          sum_dy += d;
          sum_dy_xhat += d * cache.xhat.at(b, ch, i, j);
        }
    g.dbeta[ch] = static_cast<float>(sum_dy);
    g.dgamma[ch] = static_cast<float>(sum_dy_xhat);
    const double inv = cache.inv_std[ch];
    const double gam = gamma[ch];
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const double d = dy.at(b, ch, i, j);
          const double xh = cache.xhat.at(b, ch, i, j);
          g.dx.at(b, ch, i, j) = static_cast<float>(
              gam * inv * (d - sum_dy / m - xh * sum_dy_xhat / m));
        }
  }
  });
  return g;
}

Tensor groupnorm_forward_legacy(const Tensor& x, const Tensor& gamma,
                                const Tensor& beta, int groups,
                                NormCache& cache, float eps) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cpg = c / groups;
  const double m = static_cast<double>(cpg) * h * w;
  Tensor y(x.shape());
  util::parallel_for(
      static_cast<std::int64_t>(n) * groups, 1,
      [&](std::int64_t u0, std::int64_t u1) {
  for (std::int64_t unit = u0; unit < u1; ++unit) {
    const int b = static_cast<int>(unit / groups);
    const int gr = static_cast<int>(unit % groups);
    {
      double sum = 0, sq = 0;
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double v = x.at(b, cc, i, j);
            sum += v;
            sq += v * v;
          }
      const double mean = sum / m;
      const double var = sq / m - mean * mean;
      const double inv = 1.0 / std::sqrt(var + eps);
      cache.mean[static_cast<std::int64_t>(b) * groups + gr] =
          static_cast<float>(mean);
      cache.inv_std[static_cast<std::int64_t>(b) * groups + gr] =
          static_cast<float>(inv);
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const float xh =
                static_cast<float>((x.at(b, cc, i, j) - mean) * inv);
            cache.xhat.at(b, cc, i, j) = xh;
            y.at(b, cc, i, j) = gamma[cc] * xh + beta[cc];
          }
    }
  }
      });
  return y;
}

NormGrads groupnorm_backward_legacy(const Tensor& dy, const Tensor& gamma,
                                    int groups, const NormCache& cache) {
  const Tensor& x = cache.x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cpg = c / groups;
  const double m = static_cast<double>(cpg) * h * w;
  NormGrads g;
  g.dx = Tensor(x.shape());
  g.dgamma = Tensor({c});
  g.dbeta = Tensor({c});
  // dgamma/dbeta accumulate across samples, so the fan-out unit is the
  // group (channels partition by group); samples stay in-order inside.
  util::parallel_for(groups, 1, [&](std::int64_t g0, std::int64_t g1) {
  for (int gr = static_cast<int>(g0); gr < g1; ++gr)
    for (int b = 0; b < n; ++b) {
      // Sums over the normalization group, with dy scaled by gamma (the
      // affine transform sits between xhat and the loss).
      double sum_dyg = 0, sum_dyg_xhat = 0;
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double d = dy.at(b, cc, i, j);
            const double xh = cache.xhat.at(b, cc, i, j);
            g.dbeta[cc] += static_cast<float>(d);
            g.dgamma[cc] += static_cast<float>(d * xh);
            sum_dyg += d * gamma[cc];
            sum_dyg_xhat += d * gamma[cc] * xh;
          }
      const double inv =
          cache.inv_std[static_cast<std::int64_t>(b) * groups + gr];
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const double d = dy.at(b, cc, i, j) * gamma[cc];
            const double xh = cache.xhat.at(b, cc, i, j);
            g.dx.at(b, cc, i, j) = static_cast<float>(
                inv * (d - sum_dyg / m - xh * sum_dyg_xhat / m));
          }
    }
  });
  return g;
}

}  // namespace

void set_norm_rewrite(bool enabled) { g_norm_rewrite = enabled; }

bool norm_rewrite_enabled() { return g_norm_rewrite; }

// ---------------------------------------------------------------------------
// Raw-pointer implementations (default). Each (b, ch) pair owns one
// contiguous [H*W] run of the NCHW layout; walking it with a flat index
// visits elements in exactly the i-then-j order of the legacy loops.
// ---------------------------------------------------------------------------

Tensor batchnorm_forward(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, NormCache& cache, float eps) {
  assert(x.ndim() == 4);
  util::ScopedKernelTimer timer(util::KernelKind::kNorm);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t m = static_cast<std::int64_t>(n) * h * w;
  cache.x = x;
  cache.mean = Tensor({c});
  cache.inv_std = Tensor({c});
  cache.xhat = Tensor(x.shape());
  if (!g_norm_rewrite) return batchnorm_forward_legacy(x, gamma, beta, cache, eps);
  Tensor y(x.shape());
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  util::parallel_for(c, 1, [&](std::int64_t c0, std::int64_t c1) {
  for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
    double sum = 0, sq = 0;
    for (int b = 0; b < n; ++b) {
      const float* px =
          x.data() + (static_cast<std::int64_t>(b) * c + ch) * plane;
      for (std::int64_t t = 0; t < plane; ++t) {
        const double v = px[t];
        sum += v;
        sq += v * v;
      }
    }
    const double mean = sum / static_cast<double>(m);
    const double var = sq / static_cast<double>(m) - mean * mean;
    const double inv = 1.0 / std::sqrt(var + eps);
    cache.mean[ch] = static_cast<float>(mean);
    cache.inv_std[ch] = static_cast<float>(inv);
    const float ga = gamma[ch], be = beta[ch];
    for (int b = 0; b < n; ++b) {
      const std::int64_t off = (static_cast<std::int64_t>(b) * c + ch) * plane;
      const float* px = x.data() + off;
      float* pxh = cache.xhat.data() + off;
      float* py = y.data() + off;
      for (std::int64_t t = 0; t < plane; ++t) {
        const float xh = static_cast<float>((px[t] - mean) * inv);
        pxh[t] = xh;
        py[t] = ga * xh + be;
      }
    }
  }
  });
  return y;
}

NormGrads batchnorm_backward(const Tensor& dy, const Tensor& gamma,
                             const NormCache& cache) {
  util::ScopedKernelTimer timer(util::KernelKind::kNorm);
  if (!g_norm_rewrite) return batchnorm_backward_legacy(dy, gamma, cache);
  const Tensor& x = cache.x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const double m = static_cast<double>(n) * h * w;
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  NormGrads g;
  g.dx = Tensor(x.shape());
  g.dgamma = Tensor({c});
  g.dbeta = Tensor({c});
  util::parallel_for(c, 1, [&](std::int64_t c0, std::int64_t c1) {
  for (int ch = static_cast<int>(c0); ch < c1; ++ch) {
    double sum_dy = 0, sum_dy_xhat = 0;
    for (int b = 0; b < n; ++b) {
      const std::int64_t off = (static_cast<std::int64_t>(b) * c + ch) * plane;
      const float* pdy = dy.data() + off;
      const float* pxh = cache.xhat.data() + off;
      for (std::int64_t t = 0; t < plane; ++t) {
        const double d = pdy[t];
        sum_dy += d;
        sum_dy_xhat += d * pxh[t];
      }
    }
    g.dbeta[ch] = static_cast<float>(sum_dy);
    g.dgamma[ch] = static_cast<float>(sum_dy_xhat);
    const double inv = cache.inv_std[ch];
    const double gam = gamma[ch];
    // gam * inv and sum_dy / m appear verbatim in the legacy expression
    // (left-to-right association), so hoisting them is bit-preserving;
    // `xh * sum_dy_xhat / m` associates as (xh*sum)/m and must stay
    // written out.
    const double gi = gam * inv;
    const double k1 = sum_dy / m;
    for (int b = 0; b < n; ++b) {
      const std::int64_t off = (static_cast<std::int64_t>(b) * c + ch) * plane;
      const float* pdy = dy.data() + off;
      const float* pxh = cache.xhat.data() + off;
      float* pdx = g.dx.data() + off;
      for (std::int64_t t = 0; t < plane; ++t) {
        const double d = pdy[t];
        const double xh = pxh[t];
        pdx[t] = static_cast<float>(gi * (d - k1 - xh * sum_dy_xhat / m));
      }
    }
  }
  });
  return g;
}

Tensor groupnorm_forward(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, int groups, NormCache& cache,
                         float eps) {
  assert(x.ndim() == 4);
  util::ScopedKernelTimer timer(util::KernelKind::kNorm);
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  assert(c % groups == 0);
  const int cpg = c / groups;
  const double m = static_cast<double>(cpg) * h * w;
  cache.x = x;
  cache.mean = Tensor({n, groups});
  cache.inv_std = Tensor({n, groups});
  cache.xhat = Tensor(x.shape());
  if (!g_norm_rewrite)
    return groupnorm_forward_legacy(x, gamma, beta, groups, cache, eps);
  Tensor y(x.shape());
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  util::parallel_for(
      static_cast<std::int64_t>(n) * groups, 1,
      [&](std::int64_t u0, std::int64_t u1) {
  for (std::int64_t unit = u0; unit < u1; ++unit) {
    const int b = static_cast<int>(unit / groups);
    const int gr = static_cast<int>(unit % groups);
    // The group's cpg channels are contiguous in NCHW, so the statistics
    // pass is one flat run (same cc-then-i-then-j visit order).
    const std::int64_t base =
        (static_cast<std::int64_t>(b) * c + gr * cpg) * plane;
    const std::int64_t run = static_cast<std::int64_t>(cpg) * plane;
    double sum = 0, sq = 0;
    {
      const float* px = x.data() + base;
      for (std::int64_t t = 0; t < run; ++t) {
        const double v = px[t];
        sum += v;
        sq += v * v;
      }
    }
    const double mean = sum / m;
    const double var = sq / m - mean * mean;
    const double inv = 1.0 / std::sqrt(var + eps);
    cache.mean[static_cast<std::int64_t>(b) * groups + gr] =
        static_cast<float>(mean);
    cache.inv_std[static_cast<std::int64_t>(b) * groups + gr] =
        static_cast<float>(inv);
    for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc) {
      const std::int64_t off = (static_cast<std::int64_t>(b) * c + cc) * plane;
      const float* px = x.data() + off;
      float* pxh = cache.xhat.data() + off;
      float* py = y.data() + off;
      const float ga = gamma[cc], be = beta[cc];
      for (std::int64_t t = 0; t < plane; ++t) {
        const float xh = static_cast<float>((px[t] - mean) * inv);
        pxh[t] = xh;
        py[t] = ga * xh + be;
      }
    }
  }
      });
  return y;
}

NormGrads groupnorm_backward(const Tensor& dy, const Tensor& gamma,
                             int groups, const NormCache& cache) {
  util::ScopedKernelTimer timer(util::KernelKind::kNorm);
  if (!g_norm_rewrite)
    return groupnorm_backward_legacy(dy, gamma, groups, cache);
  const Tensor& x = cache.x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cpg = c / groups;
  const double m = static_cast<double>(cpg) * h * w;
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  NormGrads g;
  g.dx = Tensor(x.shape());
  g.dgamma = Tensor({c});
  g.dbeta = Tensor({c});
  // dgamma/dbeta accumulate across samples, so the fan-out unit is the
  // group (channels partition by group); samples stay in-order inside.
  util::parallel_for(groups, 1, [&](std::int64_t g0, std::int64_t g1) {
  for (int gr = static_cast<int>(g0); gr < g1; ++gr)
    for (int b = 0; b < n; ++b) {
      // Sums over the normalization group, with dy scaled by gamma (the
      // affine transform sits between xhat and the loss).
      double sum_dyg = 0, sum_dyg_xhat = 0;
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc) {
        const std::int64_t off =
            (static_cast<std::int64_t>(b) * c + cc) * plane;
        const float* pdy = dy.data() + off;
        const float* pxh = cache.xhat.data() + off;
        const double ga = gamma[cc];
        // Float accumulators across the b loop: read-modify-write through
        // locals keeps the adds in the legacy order and type.
        float db = g.dbeta[cc], dg = g.dgamma[cc];
        for (std::int64_t t = 0; t < plane; ++t) {
          const double d = pdy[t];
          const double xh = pxh[t];
          db += static_cast<float>(d);
          dg += static_cast<float>(d * xh);
          sum_dyg += d * ga;
          sum_dyg_xhat += d * ga * xh;
        }
        g.dbeta[cc] = db;
        g.dgamma[cc] = dg;
      }
      const double inv =
          cache.inv_std[static_cast<std::int64_t>(b) * groups + gr];
      const double k1 = sum_dyg / m;
      for (int cc = gr * cpg; cc < (gr + 1) * cpg; ++cc) {
        const std::int64_t off =
            (static_cast<std::int64_t>(b) * c + cc) * plane;
        const float* pdy = dy.data() + off;
        const float* pxh = cache.xhat.data() + off;
        float* pdx = g.dx.data() + off;
        const float gaf = gamma[cc];
        for (std::int64_t t = 0; t < plane; ++t) {
          const double d = pdy[t] * gaf;  // float multiply, then promote
          const double xh = pxh[t];
          pdx[t] = static_cast<float>(
              inv * (d - k1 - xh * sum_dyg_xhat / m));
        }
      }
    }
  });
  return g;
}

}  // namespace mbs::train
