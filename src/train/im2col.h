// im2col convolution lowering (Sec. 4.1).
//
// WaveCore maps convolutions onto its systolic array by rewriting them as
// GEMMs over im2col-expanded inputs (Chetlur et al. 2014), because direct
// convolution would need re-tuning for every sub-batch size MBS produces.
// This file implements that lowering functionally so the repository can
// demonstrate (and test) that the GEMM formulation is exactly equivalent to
// direct convolution for all three training passes of Tab. 1.
#pragma once

#include "train/tensor.h"

namespace mbs::train {

/// Expands x [N,Ci,H,W] into the im2col matrix A [N*Ho*Wo, Ci*Kh*Kw]:
/// row r = (n, oh, ow) holds the receptive field of output position (oh, ow)
/// of sample n, with zero padding materialized. Gh/Gw/K match Tab. 1.
Tensor im2col(const Tensor& x, int kernel_h, int kernel_w, int stride,
              int pad_h, int pad_w);

/// Scatter-adds columns back to input-gradient form: the adjoint of
/// im2col. cols is [N*Ho*Wo, Ci*Kh*Kw]; returns [N,Ci,H,W].
Tensor col2im(const Tensor& cols, const std::vector<int>& x_shape,
              int kernel_h, int kernel_w, int stride, int pad_h, int pad_w);

/// Plain row-major GEMM: C[M,N] = A[M,K] * B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// B transposed: C[M,N] = A[M,K] * B[N,K]^T.
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// A transposed: C[M,N] = A[K,M]^T * B[K,N].
Tensor matmul_at(const Tensor& a, const Tensor& b);

/// B transposed with FLOAT accumulation and per-column initialization:
/// C[i,j] starts at init[j] (0 when init is empty) and adds a[i,p]*b[j,p]
/// for p = 0..K-1 with float rounding at every step — exactly the
/// accumulation direct convolution performs per output element, which is
/// what lets conv2d_forward delegate to the GEMM path bit-for-bit
/// (matmul_bt's double accumulator would change the low bits).
Tensor matmul_bt_f32(const Tensor& a, const Tensor& b, const Tensor& init);

/// Per-column float sums of a [R, N] matrix, each column accumulated in
/// increasing row order — the conv bias-gradient reduction.
Tensor column_sums_f32(const Tensor& m);

/// Repacks [N,C,H,W] into the GEMM row layout [N*H*W, C] (row (n,h,w),
/// column c) and back. The adjoint pair used to move dY and GEMM outputs
/// between tensor and matrix form.
Tensor nchw_to_rows(const Tensor& t);
Tensor rows_to_nchw(const Tensor& rows, const std::vector<int>& shape4);

/// Repacks a [Ci*Kh*Kw, Co] weight-gradient GEMM result into conv weight
/// layout [Co, Ci, Kh, Kw].
Tensor kxn_to_conv_weights(const Tensor& m, int co, int ci, int kh, int kw);

/// Convolution forward via im2col + GEMM (Tab. 1 "Forward"). Must equal
/// conv2d_forward bit-for-bit up to float summation order.
Tensor conv2d_forward_im2col(const Tensor& x, const Tensor& w,
                             const Tensor& bias, int stride, int pad);

struct Conv2dIm2colGrads {
  Tensor dx;
  Tensor dw;
  Tensor dbias;
};

/// Convolution backward via the Tab. 1 "Data Gradient" and "Weight
/// Gradient" GEMMs.
Conv2dIm2colGrads conv2d_backward_im2col(const Tensor& x, const Tensor& w,
                                         const Tensor& dy, int stride,
                                         int pad);

}  // namespace mbs::train
