// im2col convolution lowering (Sec. 4.1).
//
// WaveCore maps convolutions onto its systolic array by rewriting them as
// GEMMs over im2col-expanded inputs (Chetlur et al. 2014), because direct
// convolution would need re-tuning for every sub-batch size MBS produces.
// This file implements that lowering functionally so the repository can
// demonstrate (and test) that the GEMM formulation is exactly equivalent to
// direct convolution for all three training passes of Tab. 1.
#pragma once

#include "train/tensor.h"

namespace mbs::train {

/// Expands x [N,Ci,H,W] into the im2col matrix A [N*Ho*Wo, Ci*Kh*Kw]:
/// row r = (n, oh, ow) holds the receptive field of output position (oh, ow)
/// of sample n, with zero padding materialized. Gh/Gw/K match Tab. 1.
Tensor im2col(const Tensor& x, int kernel_h, int kernel_w, int stride,
              int pad_h, int pad_w);

/// Scatter-adds columns back to input-gradient form: the adjoint of
/// im2col. cols is [N*Ho*Wo, Ci*Kh*Kw]; returns [N,Ci,H,W].
Tensor col2im(const Tensor& cols, const std::vector<int>& x_shape,
              int kernel_h, int kernel_w, int stride, int pad_h, int pad_w);

/// Plain row-major GEMM: C[M,N] = A[M,K] * B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// B transposed: C[M,N] = A[M,K] * B[N,K]^T.
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// A transposed: C[M,N] = A[K,M]^T * B[K,N].
Tensor matmul_at(const Tensor& a, const Tensor& b);

/// B transposed with FLOAT accumulation and per-column initialization:
/// C[i,j] starts at init[j] (0 when init is empty) and adds a[i,p]*b[j,p]
/// for p = 0..K-1 with float rounding at every step — exactly the
/// accumulation direct convolution performs per output element, which is
/// what lets conv2d_forward delegate to the GEMM path bit-for-bit
/// (matmul_bt's double accumulator would change the low bits).
Tensor matmul_bt_f32(const Tensor& a, const Tensor& b, const Tensor& init);

/// Per-column float sums of a [R, N] matrix, each column accumulated in
/// increasing row order — the conv bias-gradient reduction.
Tensor column_sums_f32(const Tensor& m);

/// Repacks [N,C,H,W] into the GEMM row layout [N*H*W, C] (row (n,h,w),
/// column c) and back. The adjoint pair used to move dY and GEMM outputs
/// between tensor and matrix form.
Tensor nchw_to_rows(const Tensor& t);
Tensor rows_to_nchw(const Tensor& rows, const std::vector<int>& shape4);

/// Repacks a [Ci*Kh*Kw, Co] weight-gradient GEMM result into conv weight
/// layout [Co, Ci, Kh, Kw].
Tensor kxn_to_conv_weights(const Tensor& m, int co, int ci, int kh, int kw);

// ---- Raw-pointer entry points (the zero-allocation kernel path) ------------
//
// ops.cc drives the production convolutions through these: outputs land in
// caller-provided buffers (step-persistent Tensors or util::workspace()
// arena scratch), so a steady-state training step never touches the heap.
// Each mirrors its Tensor-returning namesake bit for bit.

/// im2col into `cols` (n*oh*ow rows of ci*kh*kw floats). Only in-bounds
/// receptive-field entries are written: the caller must hand either freshly
/// zeroed memory or a buffer reused from a pass with the SAME geometry
/// (padding positions only ever hold zeros, so they stay correct).
void im2col_into(const Tensor& x, int kernel_h, int kernel_w, int stride,
                 int pad_h, int pad_w, float* cols);

/// C[M,N] = A[M,K] * B[N,K]^T, float accumulation seeded per column from
/// `init` (nullptr = 0): the raw form of matmul_bt_f32.
void matmul_bt_f32_into(const float* a, std::int64_t m, const float* b,
                        std::int64_t n, int k, const float* init, float* c);

/// C[M,N] = A[K,M]^T * B[K,N]: the raw form of matmul_at.
void matmul_at_into(const float* a, std::int64_t m, const float* b,
                    std::int64_t n, int k, float* c);

/// Per-column float sums of a [rows, n] matrix into out[n] (overwritten),
/// rows accumulated in increasing order: the raw form of column_sums_f32.
void column_sums_f32_into(const float* m, std::int64_t rows, int n,
                          float* out);

/// [N,C,H,W] -> [N*H*W, C] rows into a caller buffer of t.size() floats.
void nchw_to_rows_into(const Tensor& t, float* rows);

/// [N*H*W, C] rows back into 4-D tensor `t` (already shaped, fully
/// overwritten).
void rows_to_nchw_into(const float* rows, Tensor& t);

/// [Ci*Kh*Kw, Co] -> [Co, Ci, Kh, Kw] repack into `w` (fully overwritten).
void kxn_to_conv_weights_into(const float* m, int co, int ci, int kh, int kw,
                              float* w);

/// Convolution forward via im2col + GEMM (Tab. 1 "Forward"). Must equal
/// conv2d_forward bit-for-bit up to float summation order.
Tensor conv2d_forward_im2col(const Tensor& x, const Tensor& w,
                             const Tensor& bias, int stride, int pad);

struct Conv2dIm2colGrads {
  Tensor dx;
  Tensor dw;
  Tensor dbias;
};

/// Convolution backward via the Tab. 1 "Data Gradient" and "Weight
/// Gradient" GEMMs.
Conv2dIm2colGrads conv2d_backward_im2col(const Tensor& x, const Tensor& w,
                                         const Tensor& dy, int stride,
                                         int pad);

}  // namespace mbs::train
