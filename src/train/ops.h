// Functional forward/backward operators: convolution, pooling, linear, ReLU.
//
// Every forward returns the tensors needed for the matching backward; there
// is no global autograd state, so the same model object can run full-batch
// and MBS-serialized steps interchangeably.
#pragma once

#include <vector>

#include "train/tensor.h"

namespace mbs::train {

// ---- Convolution -----------------------------------------------------------

/// y[n,co,oh,ow] = sum_{ci,kh,kw} x[n,ci,oh*s-p+kh,ow*s-p+kw] * w[co,ci,kh,kw]
/// (+ bias). Weights are [Co, Ci, Kh, Kw].
Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      int stride, int pad);

struct Conv2dGrads {
  Tensor dx;
  Tensor dw;
  Tensor dbias;
};

/// Gradients of conv2d_forward w.r.t. input, weights and bias.
Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy, int stride, int pad,
                            bool need_dx = true);

// ---- Pooling ---------------------------------------------------------------

struct MaxPoolResult {
  Tensor y;
  /// Flat input index of each output element's maximum (the simulator's
  /// 1-byte "pool index" stash corresponds to this, Sec. 3).
  std::vector<std::int64_t> argmax;
};

MaxPoolResult maxpool_forward(const Tensor& x, int kernel, int stride);

Tensor maxpool_backward(const Tensor& dy, const MaxPoolResult& cache,
                        const std::vector<int>& x_shape);

/// Global average pooling to [N, C].
Tensor global_avg_pool_forward(const Tensor& x);
Tensor global_avg_pool_backward(const Tensor& dy, const std::vector<int>& x_shape);

// ---- Activation ------------------------------------------------------------

Tensor relu_forward(const Tensor& x);

/// ReLU backward needs only the sign of the forward output — the property
/// MBS exploits with 1-bit masks (Sec. 3).
Tensor relu_backward(const Tensor& dy, const Tensor& y);

// ---- Linear ----------------------------------------------------------------

/// y[n,o] = sum_i x[n,i] * w[o,i] + b[o]. x is flattened to [N, features].
Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias);

struct LinearGrads {
  Tensor dx;
  Tensor dw;
  Tensor dbias;
};

LinearGrads linear_backward(const Tensor& x, const Tensor& w, const Tensor& dy);

}  // namespace mbs::train
