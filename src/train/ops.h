// Functional forward/backward operators: convolution, pooling, linear, ReLU.
//
// Every forward returns the tensors needed for the matching backward; there
// is no global autograd state, so the same model object can run full-batch
// and MBS-serialized steps interchangeably.
#pragma once

#include <vector>

#include "train/tensor.h"

namespace mbs::train {

// ---- Convolution -----------------------------------------------------------

/// Step-persistent per-layer conv workspace (the NormCache analogue for
/// data reuse): conv2d_forward records its im2col lowering here and
/// conv2d_backward consumes it, so a training step lowers each conv input
/// exactly once — the paper's redundancy-elimination discipline applied to
/// our own hot path. The buffer is reused in place across steps
/// (Tensor::ensure_shape), reaching zero steady-state heap allocations.
/// One cache belongs to exactly one conv layer; backward falls back to
/// recomputing the lowering (bit-identically) whenever the cache is absent,
/// stale, or disabled via MBS_NO_CONV_CACHE=1.
struct ConvCache {
  Tensor cols;               ///< [N*Ho*Wo, Ci*Kh*Kw] from the last forward
  std::vector<int> x_shape;  ///< geometry stamp of the cached lowering
  int kh = 0, kw = 0, stride = 0, pad = 0;
  bool valid = false;

  bool matches(const Tensor& x, int kh_, int kw_, int stride_,
               int pad_) const {
    return valid && kh == kh_ && kw == kw_ && stride == stride_ &&
           pad == pad_ && x_shape == x.shape();
  }
};

/// y[n,co,oh,ow] = sum_{ci,kh,kw} x[n,ci,oh*s-p+kh,ow*s-p+kw] * w[co,ci,kh,kw]
/// (+ bias). Weights are [Co, Ci, Kh, Kw].
Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      int stride, int pad);

struct Conv2dGrads {
  Tensor dx;
  Tensor dw;
  Tensor dbias;
};

/// Gradients of conv2d_forward w.r.t. input, weights and bias.
Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy, int stride, int pad,
                            bool need_dx = true);

/// The zero-allocation production forms the models drive: `y`/`g` are
/// step-persistent caller tensors reshaped in place, scratch comes from
/// the per-thread workspace arena, and `cache` (optional) carries the
/// im2col lowering from forward to backward. Results are bit-identical to
/// the Tensor-returning forms at every MBS_THREADS setting, with and
/// without the cache. When `need_dx` is false `g->dx` is left untouched.
void conv2d_forward_into(const Tensor& x, const Tensor& w, const Tensor& bias,
                         int stride, int pad, ConvCache* cache, Tensor& y);
void conv2d_backward_into(const Tensor& x, const Tensor& w, const Tensor& dy,
                          int stride, int pad, bool need_dx, ConvCache* cache,
                          Conv2dGrads& g);

// ---- Pooling ---------------------------------------------------------------

struct MaxPoolResult {
  Tensor y;
  /// Flat input index of each output element's maximum (the simulator's
  /// 1-byte "pool index" stash corresponds to this, Sec. 3).
  std::vector<std::int64_t> argmax;
};

MaxPoolResult maxpool_forward(const Tensor& x, int kernel, int stride);

Tensor maxpool_backward(const Tensor& dy, const MaxPoolResult& cache,
                        const std::vector<int>& x_shape);

/// Global average pooling to [N, C].
Tensor global_avg_pool_forward(const Tensor& x);
Tensor global_avg_pool_backward(const Tensor& dy, const std::vector<int>& x_shape);

// ---- Activation ------------------------------------------------------------

Tensor relu_forward(const Tensor& x);

/// relu_forward into a step-persistent output (single pass, no copy, no
/// steady-state allocation); value-identical to relu_forward.
void relu_forward_into(const Tensor& x, Tensor& y);

/// ReLU backward needs only the sign of the forward output — the property
/// MBS exploits with 1-bit masks (Sec. 3).
Tensor relu_backward(const Tensor& dy, const Tensor& y);

/// relu_backward writing through `d` in place (d starts as dy and becomes
/// dx); value-identical to d = relu_backward(d, y) without the copy.
void relu_backward_inplace(Tensor& d, const Tensor& y);

// ---- Linear ----------------------------------------------------------------

/// y[n,o] = sum_i x[n,i] * w[o,i] + b[o]. x is flattened to [N, features].
Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias);

struct LinearGrads {
  Tensor dx;
  Tensor dw;
  Tensor dbias;
};

LinearGrads linear_backward(const Tensor& x, const Tensor& w, const Tensor& dy);

}  // namespace mbs::train
