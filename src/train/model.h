// A compact CNN for the Fig. 6 training experiment: stages of
// conv3x3 -> norm -> ReLU -> maxpool, then global average pooling and a
// linear classifier. The normalization mode is selectable (none / BN / GN)
// to reproduce the three curves of Fig. 6.
//
// Gradients accumulate across backward() calls (zero_grad() resets them),
// which is exactly what MBS-serialized execution needs: run several
// sub-batches, accumulate, then apply one optimizer step (Sec. 3 "Data
// Synchronization").
#pragma once

#include <cstdint>
#include <vector>

#include "train/norm.h"
#include "train/ops.h"
#include "train/tensor.h"

namespace mbs::train {

enum class NormMode { kNone, kBatch, kGroup };

const char* to_string(NormMode m);

struct SmallCnnConfig {
  int in_channels = 1;
  int image = 12;           ///< square input size
  int classes = 4;
  std::vector<int> stage_channels = {8, 16};
  NormMode norm = NormMode::kGroup;
  int gn_groups = 4;        ///< must divide every stage channel count
  std::uint64_t seed = 1;
};

class SmallCnn {
 public:
  explicit SmallCnn(const SmallCnnConfig& config);

  /// Runs the network on x [N, C, H, W]; returns logits [N, classes] and
  /// retains the per-layer caches needed by backward().
  Tensor forward(const Tensor& x);

  /// Backpropagates d(loss)/d(logits), *accumulating* parameter gradients.
  void backward(const Tensor& dlogits);

  void zero_grad();

  /// Parameter and gradient tensors in matching order (for the optimizer
  /// and for gradient-equivalence tests).
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();

  /// Mean of the first/last normalization layer's output (pre-activation)
  /// from the most recent forward pass — the quantity Fig. 6 (right) plots.
  /// Falls back to the conv output when norm is disabled.
  double first_preact_mean() const { return first_preact_mean_; }
  double last_preact_mean() const { return last_preact_mean_; }

  const SmallCnnConfig& config() const { return config_; }

 private:
  struct Stage {
    // Parameters and gradients.
    Tensor w, b, dw, db;
    Tensor gamma, beta, dgamma, dbeta;
    // Forward caches.
    Tensor x_in, conv_out, norm_out, relu_out;
    NormCache ncache;
    ConvCache ccache;  ///< forward's im2col lowering, reused by backward
    MaxPoolResult pool;
    Conv2dGrads gscratch;  ///< step-persistent conv-gradient staging
  };

  SmallCnnConfig config_;
  std::vector<Stage> stages_;
  Tensor fc_w, fc_b, fc_dw, fc_db;
  Tensor gap_out_;           ///< cache: global-average-pool output
  std::vector<int> gap_in_shape_;
  double first_preact_mean_ = 0;
  double last_preact_mean_ = 0;
};

}  // namespace mbs::train
