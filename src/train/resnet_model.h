// A small residual CNN for the training substrate.
//
// The paper's Fig. 6 experiment trains ResNet50; this is its laptop-scale
// analogue with real multi-branch (residual) topology, so the
// serialization-equivalence property is exercised on the same structural
// features MBS2's inter-branch reuse targets: shared block inputs, identity
// and projection shortcuts, and merge Adds.
#pragma once

#include <cstdint>
#include <vector>

#include "train/model.h"
#include "train/norm.h"
#include "train/ops.h"
#include "train/tensor.h"

namespace mbs::train {

struct SmallResNetConfig {
  int in_channels = 1;
  int image = 12;
  int classes = 4;
  int stem_channels = 8;
  /// One residual block per stage; stages beyond the first stride by 2 and
  /// project the shortcut.
  std::vector<int> stage_channels = {8, 16};
  NormMode norm = NormMode::kGroup;
  int gn_groups = 4;
  std::uint64_t seed = 1;
};

/// conv3x3 -> norm -> ReLU -> conv3x3 -> norm, plus identity or projected
/// shortcut, merged by Add then ReLU (a basic-block ResNet).
class SmallResNet {
 public:
  explicit SmallResNet(const SmallResNetConfig& config);

  /// Forward to logits [N, classes]; retains caches for backward().
  Tensor forward(const Tensor& x);

  /// Accumulates parameter gradients (zero_grad() resets).
  void backward(const Tensor& dlogits);

  void zero_grad();
  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();

  const SmallResNetConfig& config() const { return config_; }

 private:
  struct NormParams {
    Tensor gamma, beta, dgamma, dbeta;
    NormCache cache;
  };
  struct ConvParams {
    Tensor w, dw;
    int stride = 1;
    ConvCache cache;       ///< forward's im2col lowering, reused by backward
    Conv2dGrads gscratch;  ///< step-persistent conv-gradient staging
  };
  struct ResBlock {
    ConvParams conv1, conv2, proj;  ///< proj.w empty for identity shortcut
    NormParams norm1, norm2, norm_proj;
    // Forward caches.
    Tensor x_in, c1_out, n1_out, r1_out, c2_out, n2_out, proj_out,
        shortcut_out, add_out, relu_out;
  };

  Tensor norm_forward(NormParams& np, const Tensor& x);
  Tensor norm_backward(NormParams& np, const Tensor& dy);

  SmallResNetConfig config_;
  ConvParams stem_;
  NormParams stem_norm_;
  Tensor stem_in_, stem_conv_out_, stem_norm_out_, stem_relu_out_;
  std::vector<ResBlock> blocks_;
  Tensor fc_w, fc_b, fc_dw, fc_db;
  Tensor gap_out_;
  std::vector<int> gap_in_shape_;
};

}  // namespace mbs::train
