#include "train/trainer.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>

#include "train/loss.h"
#include "util/parallel.h"

namespace mbs::train {

namespace {

/// Runs forward+backward over the given chunk partition, accumulating
/// gradients scaled by 1 / mini-batch.
StepMetrics accumulate_gradients(SmallCnn& model, const Tensor& x,
                                 const std::vector<int>& labels,
                                 const std::vector<int>& chunks) {
  const int n = x.dim(0);
  model.zero_grad();
  StepMetrics m;
  int offset = 0;
  for (int c : chunks) {
    assert(c > 0 && offset + c <= n);
    const Tensor xc = x.slice_batch(offset, c);
    const std::vector<int> yc(labels.begin() + offset,
                              labels.begin() + offset + c);
    const Tensor logits = model.forward(xc);
    LossResult lr = softmax_cross_entropy(logits, yc);
    // Scale so the accumulated gradient equals the full-batch mean-loss
    // gradient regardless of the chunking.
    lr.dlogits.scale(1.0f / static_cast<float>(n));
    model.backward(lr.dlogits);
    m.loss += lr.loss_sum;
    m.accuracy += lr.correct;
    offset += c;
  }
  assert(offset == n);
  m.loss /= n;
  m.accuracy /= n;
  return m;
}

}  // namespace

StepMetrics compute_gradients(SmallCnn& model, const Tensor& x,
                              const std::vector<int>& labels,
                              const std::vector<int>& chunks) {
  return accumulate_gradients(model, x, labels, chunks);
}

StepMetrics train_step(SmallCnn& model, Sgd& opt, const Tensor& x,
                       const std::vector<int>& labels,
                       const std::vector<int>& chunks) {
  const StepMetrics m = accumulate_gradients(model, x, labels, chunks);
  opt.step(model.parameters(), model.gradients());
  return m;
}

EvalMetrics evaluate(SmallCnn& model, const Dataset& data, int batch) {
  EvalMetrics e;
  const int n = data.size();
  int correct = 0;
  for (int off = 0; off < n; off += batch) {
    const int c = std::min(batch, n - off);
    const Tensor xc = data.images.slice_batch(off, c);
    const std::vector<int> yc(data.labels.begin() + off,
                              data.labels.begin() + off + c);
    const Tensor logits = model.forward(xc);
    const LossResult lr = softmax_cross_entropy(logits, yc);
    e.loss += lr.loss_sum;
    correct += lr.correct;
  }
  e.loss /= n;
  e.error = 1.0 - static_cast<double>(correct) / n;
  return e;
}

std::vector<EpochLog> train_model(SmallCnn& model, const Dataset& train_set,
                                  const Dataset& val_set,
                                  const TrainRunConfig& config) {
  util::Rng rng(config.shuffle_seed);
  Sgd opt(config.sgd);
  const int n = train_set.size();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochLog> logs;
  // The gathered mini-batch is the same shape every step; keep one buffer
  // for the whole run instead of allocating per step (the same
  // step-persistent storage discipline as the kernel layer's ConvCache
  // and gradient scratch).
  Tensor x;
  std::vector<int> labels(static_cast<std::size_t>(config.batch));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (std::find(config.lr_decay_epochs.begin(), config.lr_decay_epochs.end(),
                  epoch) != config.lr_decay_epochs.end())
      opt.set_lr(opt.lr() * config.lr_decay);

    // Fisher-Yates shuffle with the deterministic RNG so BN and GN+MBS runs
    // see identical sample orderings.
    for (int i = n - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(j)]);
    }

    EpochLog log;
    log.epoch = epoch;
    int steps = 0;
    for (int off = 0; off + config.batch <= n; off += config.batch) {
      // Gather the shuffled mini-batch (pure per-sample copies, so the
      // pool partition is bit-irrelevant). Every element is overwritten,
      // so reusing the buffer is value-identical to a fresh tensor.
      x.ensure_shape({config.batch, train_set.images.dim(1),
                      train_set.images.dim(2), train_set.images.dim(3)});
      const std::int64_t per = train_set.images.size() / n;
      util::parallel_for(config.batch, 4, [&](std::int64_t i0,
                                              std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const int src = order[static_cast<std::size_t>(off + i)];
          std::memcpy(x.data() + i * per,
                      train_set.images.data() + src * per,
                      static_cast<std::size_t>(per) * sizeof(float));
          labels[static_cast<std::size_t>(i)] =
              train_set.labels[static_cast<std::size_t>(src)];
        }
      });
      const std::vector<int> chunks =
          config.chunks.empty() ? std::vector<int>{config.batch}
                                : config.chunks;
      const StepMetrics m = train_step(model, opt, x, labels, chunks);
      log.train_loss += m.loss;
      ++steps;
    }
    log.train_loss /= std::max(1, steps);
    log.first_preact_mean = model.first_preact_mean();
    log.last_preact_mean = model.last_preact_mean();
    const EvalMetrics ev = evaluate(model, val_set);
    log.val_error = 100.0 * ev.error;
    logs.push_back(log);
  }
  return logs;
}

}  // namespace mbs::train
