// Batch normalization and group normalization, forward and backward.
//
// BN (Ioffe & Szegedy 2015) normalizes each channel over the whole
// mini-batch — which is exactly why it is incompatible with MBS (Sec. 3.1):
// sub-batch serialization changes the statistics. GN (Wu & He 2018)
// normalizes within channel groups of a single sample, so serializing the
// mini-batch leaves the math bit-for-bit unchanged; that property is what
// makes GN+MBS training equivalent to unserialized GN training, and it is
// verified by tests/train_test.cc.
#pragma once

#include "train/tensor.h"

namespace mbs::train {

/// Cache produced by a normalization forward pass, consumed by backward.
struct NormCache {
  Tensor x;      ///< forward input
  Tensor xhat;   ///< normalized input
  Tensor mean;   ///< per-statistic mean
  Tensor inv_std;///< 1 / sqrt(var + eps)
};

struct NormGrads {
  Tensor dx;
  Tensor dgamma;
  Tensor dbeta;
};

/// Batch normalization (training mode, batch statistics).
/// x: [N,C,H,W]; gamma/beta: [C]. eps defaults to 1e-5.
Tensor batchnorm_forward(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, NormCache& cache,
                         float eps = 1e-5f);

NormGrads batchnorm_backward(const Tensor& dy, const Tensor& gamma,
                             const NormCache& cache);

/// Group normalization: statistics over (C/groups, H, W) of each sample.
/// `groups` must divide C.
Tensor groupnorm_forward(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, int groups, NormCache& cache,
                         float eps = 1e-5f);

NormGrads groupnorm_backward(const Tensor& dy, const Tensor& gamma,
                             int groups, const NormCache& cache);

/// Selects between the raw-pointer norm loops (default) and the legacy
/// Tensor::at() form. Both are bit-identical — the toggle exists for A/B
/// timing and for tests that prove the identity in-process. The initial
/// value honors MBS_NO_NORM_REWRITE=1 (which selects the legacy form).
void set_norm_rewrite(bool enabled);
bool norm_rewrite_enabled();

}  // namespace mbs::train
