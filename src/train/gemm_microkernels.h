// Internal contract between the blocked-GEMM driver (im2col.cc) and its
// microkernel families (the portable scalar kernels in im2col.cc and the
// explicit AVX2 kernels in gemm_avx2.cc).
//
// A microkernel computes C rows [i0, i1) against ONE packed B panel of nc
// columns (panel[p*nc + jj], p-major), each output element as a single
// in-order pass over p = 0..K-1 with a fixed accumulator type. That
// per-element operation sequence is the bit-identity contract: every
// family must produce byte-identical results, which is what lets
// MBS_KERNEL switch families without perturbing the committed golden
// outputs. Concretely that means the f32 kernels perform an UNFUSED
// multiply-then-add per term (the portable baseline targets plain x86-64,
// which has no FMA instruction, so the AVX2 family must not contract
// either — gemm_avx2.cc is additionally built with -ffp-contract=off so
// the compiler cannot fuse behind our back). The f64 kernel may use FMA
// freely: both factors are exact float-to-double promotions, so the
// 48-bit product is exact in double and fused vs. separate rounding are
// the same bits.
//
// Panel slack: blocked_gemm over-allocates every panel by kPanelSlack
// floats so 8-wide vector loads on the last row's column remainder stay
// inside the allocation (the lanes past nc are garbage and are never
// stored — tail stores are masked).
#pragma once

#include <cstdint>

#include "util/cpu.h"

namespace mbs::train::detail {

/// Extra floats appended to every packed panel allocation (see above).
constexpr int kPanelSlack = 8;

struct MicroKernels {
  /// Float-accumulating kernel (matmul / matmul_at / matmul_bt_f32):
  /// C[i, j0+jj] = init[j0+jj] (or 0) + sum_p a[i*ars + p*acs] *
  /// panel[p*nc + jj], accumulated in float, one unfused mul+add per term.
  void (*gemm_f32)(const float* a, std::int64_t ars, std::int64_t acs,
                   const float* panel, int k, int nc, const float* init,
                   std::int64_t j0, float* c, std::int64_t ldc,
                   std::int64_t i0, std::int64_t i1);
  /// Double-accumulating kernel (matmul_bt): products
  /// double(a) * double(b), rounded to float only on the final store.
  void (*gemm_f64)(const float* a, std::int64_t ars, std::int64_t acs,
                   const float* panel, int k, int nc, std::int64_t j0,
                   float* c, std::int64_t ldc, std::int64_t i0,
                   std::int64_t i1);
  /// Packs rows [j0, j0+nc) of a [N,K] row-major matrix (columns of B^T)
  /// into panel[p*nc + jj] — a transpose, pure data movement.
  void (*pack_nk)(const float* b, int k, std::int64_t j0, int nc,
                  float* panel);
  /// Measures this family's single-core peak GFLOP/s (the roofline
  /// ceiling probe; FMA chains for the AVX2 family, unfused scalar
  /// chains for the portable one).
  double (*peak_probe)();
};

/// The AVX2 microkernel family, or nullptr when the build target couldn't
/// compile it (non-x86, or a compiler without -mavx2/-mfma). Defined in
/// gemm_avx2.cc; whether it is *used* is a separate runtime decision.
const MicroKernels* avx2_microkernels();

/// The portable scalar family (always available; defined in im2col.cc).
const MicroKernels& portable_microkernels();

/// The family the next blocked-GEMM call will run, resolved once from
/// util::resolve_kernel_isa (MBS_KERNEL x CPUID x build support) and
/// cached. Thread-safe.
const MicroKernels& active_microkernels();

/// Drops the cached resolution so the next call re-reads MBS_KERNEL /
/// MBS_FORCE_NO_AVX2 — for tests and benchmarks that A/B the two paths
/// inside one process. Not safe concurrently with running GEMMs.
void reset_microkernel_dispatch();

/// Measured peak GFLOP/s of one core's FMA (or mul+add, when the AVX2
/// family is unavailable) throughput — the roofline ceiling the
/// micro-benchmarks report achieved fractions against. Measured once per
/// process on first call, on the calling thread.
double measured_peak_gflops();

}  // namespace mbs::train::detail

namespace mbs::train {

/// The ISA the GEMM family dispatches to (for stats lines and benchmark
/// labels). Same cached resolution as detail::active_microkernels().
util::KernelIsa active_gemm_isa();

}  // namespace mbs::train
