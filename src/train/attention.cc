#include "train/attention.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "train/im2col.h"

namespace mbs::train {

namespace {

/// In-place row softmax of an [s, s] matrix with max-subtraction. Serial
/// per row: deterministic regardless of the kernel pool size.
void softmax_rows(float* m, int s) {
  for (int i = 0; i < s; ++i) {
    float* row = m + static_cast<std::int64_t>(i) * s;
    float mx = row[0];
    for (int j = 1; j < s; ++j) mx = row[j] > mx ? row[j] : mx;
    double sum = 0;
    for (int j = 0; j < s; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < s; ++j) row[j] *= inv;
  }
}

}  // namespace

Tensor attention_forward(const Tensor& x, int heads, AttentionCache& cache) {
  assert(x.ndim() == 4 && x.dim(3) == 1);
  const int n = x.dim(0);
  const int d = x.dim(1) / 3;
  const int s = x.dim(2);
  assert(x.dim(1) == 3 * d && heads > 0 && d % heads == 0);
  const int dh = d / heads;
  const float scale = static_cast<float>(1.0 / std::sqrt(double(dh)));

  Tensor y({n, d, s, 1});
  cache.probs.ensure_shape({n, heads, s, s});
  const std::int64_t ss = static_cast<std::int64_t>(s) * s;
  for (int b = 0; b < n; ++b) {
    for (int h = 0; h < heads; ++h) {
      const float* q = x.data() + (static_cast<std::int64_t>(b) * 3 * d +
                                   static_cast<std::int64_t>(h) * dh) * s;
      const float* k = q + static_cast<std::int64_t>(d) * s;
      const float* v = k + static_cast<std::int64_t>(d) * s;
      float* p = cache.probs.data() +
                 (static_cast<std::int64_t>(b) * heads + h) * ss;
      // scores[i,j] = sum_c Q[c,i] K[c,j] / sqrt(dh), softmaxed in place.
      matmul_at_into(q, s, k, s, dh, p);
      for (std::int64_t e = 0; e < ss; ++e) p[e] *= scale;
      softmax_rows(p, s);
      // ctx[c,i] = sum_j V[c,j] P[i,j] — the P.V GEMM, streamed operands.
      float* ctx = y.data() + (static_cast<std::int64_t>(b) * d +
                               static_cast<std::int64_t>(h) * dh) * s;
      matmul_bt_f32_into(v, dh, p, s, s, nullptr, ctx);
    }
  }
  return y;
}

Tensor attention_backward(const Tensor& dy, const Tensor& x, int heads,
                          const AttentionCache& cache) {
  const int n = x.dim(0);
  const int d = x.dim(1) / 3;
  const int s = x.dim(2);
  assert(dy.dim(0) == n && dy.dim(1) == d && dy.dim(2) == s);
  const int dh = d / heads;
  const float scale = static_cast<float>(1.0 / std::sqrt(double(dh)));
  const std::int64_t ss = static_cast<std::int64_t>(s) * s;

  Tensor dx({n, 3 * d, s, 1});
  // Per-(sample, head) scratch, reused across the loop: the upstream score
  // gradient and one transpose staging buffer for the B^T-only microkernel.
  std::vector<float> dp(static_cast<std::size_t>(ss));
  std::vector<float> tr(static_cast<std::size_t>(ss));
  for (int b = 0; b < n; ++b) {
    for (int h = 0; h < heads; ++h) {
      const float* q = x.data() + (static_cast<std::int64_t>(b) * 3 * d +
                                   static_cast<std::int64_t>(h) * dh) * s;
      const float* k = q + static_cast<std::int64_t>(d) * s;
      const float* v = k + static_cast<std::int64_t>(d) * s;
      const float* p = cache.probs.data() +
                       (static_cast<std::int64_t>(b) * heads + h) * ss;
      const float* dctx = dy.data() + (static_cast<std::int64_t>(b) * d +
                                       static_cast<std::int64_t>(h) * dh) * s;
      float* dq = dx.data() + (static_cast<std::int64_t>(b) * 3 * d +
                               static_cast<std::int64_t>(h) * dh) * s;
      float* dk = dq + static_cast<std::int64_t>(d) * s;
      float* dv = dk + static_cast<std::int64_t>(d) * s;

      // dV[c,j] = sum_i dCtx[c,i] P[i,j] (via P^T staged in tr).
      for (int i = 0; i < s; ++i)
        for (int j = 0; j < s; ++j)
          tr[static_cast<std::size_t>(j) * s + i] =
              p[static_cast<std::int64_t>(i) * s + j];
      matmul_bt_f32_into(dctx, dh, tr.data(), s, s, nullptr, dv);

      // dP[i,j] = sum_c dCtx[c,i] V[c,j], then the softmax-row backward
      // dS[i,j] = scale * P[i,j] * (dP[i,j] - sum_k dP[i,k] P[i,k]).
      matmul_at_into(dctx, s, v, s, dh, dp.data());
      for (int i = 0; i < s; ++i) {
        const std::int64_t r = static_cast<std::int64_t>(i) * s;
        double dot = 0;
        for (int j = 0; j < s; ++j)
          dot += static_cast<double>(dp[static_cast<std::size_t>(r + j)]) *
                 p[r + j];
        for (int j = 0; j < s; ++j)
          dp[static_cast<std::size_t>(r + j)] =
              scale * p[r + j] *
              (dp[static_cast<std::size_t>(r + j)] - static_cast<float>(dot));
      }

      // dQ[c,i] = sum_j K[c,j] dS[i,j]; dK[c,j] = sum_i Q[c,i] dS[i,j]
      // (via dS^T staged in tr).
      matmul_bt_f32_into(k, dh, dp.data(), s, s, nullptr, dq);
      for (int i = 0; i < s; ++i)
        for (int j = 0; j < s; ++j)
          tr[static_cast<std::size_t>(j) * s + i] =
              dp[static_cast<std::size_t>(i) * s + j];
      matmul_bt_f32_into(q, dh, tr.data(), s, s, nullptr, dk);
    }
  }
  return dx;
}

}  // namespace mbs::train
