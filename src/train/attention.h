// Softmax attention, forward and backward, for the training substrate.
//
// This is the functional counterpart of core::LayerKind::kAttention: the
// two batched GEMMs whose operands are BOTH streamed activations (Q.K^T
// and P.V — no resident weights), with the row-softmax between them. The
// GEMMs reuse the same microkernel entry points as the convolution path
// (im2col.h matmul_*_into), so the attention block exercises the exact
// kernels the rest of the substrate is built on.
//
// Every sample attends only within itself (scores are [S, S] per sample
// and head), so attention — like GN — is sample-local: serializing the
// mini-batch into sub-batches leaves the math bit-for-bit unchanged. That
// is the property the transformer GN+MBS gradient-equivalence demo and
// tests/train_test.cc verify.
//
// Layout: token activations are NCHW tensors with the sequence along H —
// x is [N, 3*d, S, 1] holding Q, K, V stacked along channels (the output
// of a fused qkv projection, matching the model zoo's qkv layer), each
// [d, S] block channel-major. With `heads` heads of dh = d/heads channels,
// the per-(sample, head) operand Q[dh, S] is one contiguous row-major
// slice of x — no repacking between the projection and the GEMMs.
#pragma once

#include "train/tensor.h"

namespace mbs::train {

/// Cache produced by attention_forward, consumed by attention_backward:
/// the softmax rows P ("probs", [N, heads, S, S]). This is the score
/// matrix whose sub-batch-dependent footprint the schedule model charges
/// for (core::attention_score_bytes_per_sample) — forward stashes it, the
/// backward pass re-reads it.
struct AttentionCache {
  Tensor probs;
};

/// y = softmax(Q^T.K / sqrt(dh)) applied to V, per sample and head.
/// x: [N, 3*d, S, 1] (Q, K, V along channels); `heads` must divide d.
/// Returns [N, d, S, 1] and fills `cache` for the backward pass.
Tensor attention_forward(const Tensor& x, int heads, AttentionCache& cache);

/// Gradient of attention_forward w.r.t. x. dy: [N, d, S, 1]; x and cache
/// are the forward's input and output cache. Returns [N, 3*d, S, 1].
Tensor attention_backward(const Tensor& dy, const Tensor& x, int heads,
                          const AttentionCache& cache);

}  // namespace mbs::train
