#include "train/transformer_model.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "util/parallel.h"

namespace mbs::train {

namespace {

/// 1x1 conv weights = a per-token linear projection, He-initialized on
/// the channel fan-in.
Tensor token_proj(util::Rng& rng, int co, int ci) {
  return Tensor::randn({co, ci, 1, 1}, rng, std::sqrt(2.0 / ci));
}

}  // namespace

TinyTransformer::TinyTransformer(const TinyTransformerConfig& config)
    : config_(config) {
  assert(config.heads > 0 && config.d_model % config.heads == 0);
  assert(config.d_model % config.gn_groups == 0);
  util::Rng rng(config.seed);
  auto make_norm_params = [&](int c) {
    NormParams np;
    np.gamma = Tensor::full({c}, 1.0f);
    np.beta = Tensor({c});
    np.dgamma = Tensor({c});
    np.dbeta = Tensor({c});
    return np;
  };

  const int d = config.d_model;
  const int m = config.mlp_ratio * d;
  embed_w = token_proj(rng, d, config.in_channels);
  embed_dw = Tensor(embed_w.shape());
  for (int i = 0; i < config.depth; ++i) {
    Block b;
    b.norm1 = make_norm_params(d);
    b.qkv_w = token_proj(rng, 3 * d, d);
    b.qkv_dw = Tensor(b.qkv_w.shape());
    b.proj_w = token_proj(rng, d, d);
    b.proj_dw = Tensor(b.proj_w.shape());
    b.norm2 = make_norm_params(d);
    b.fc1_w = token_proj(rng, m, d);
    b.fc1_dw = Tensor(b.fc1_w.shape());
    b.fc2_w = token_proj(rng, d, m);
    b.fc2_dw = Tensor(b.fc2_w.shape());
    blocks_.push_back(std::move(b));
  }
  fc_w = Tensor::randn({config.classes, d}, rng, std::sqrt(2.0 / d));
  fc_b = Tensor({config.classes});
  fc_dw = Tensor(fc_w.shape());
  fc_db = Tensor({config.classes});
}

Tensor TinyTransformer::norm_forward(NormParams& np, const Tensor& x) {
  switch (config_.norm) {
    case NormMode::kNone: return x;
    case NormMode::kBatch:
      return batchnorm_forward(x, np.gamma, np.beta, np.cache);
    case NormMode::kGroup:
      return groupnorm_forward(x, np.gamma, np.beta, config_.gn_groups,
                               np.cache);
  }
  return x;
}

Tensor TinyTransformer::norm_backward(NormParams& np, const Tensor& dy) {
  switch (config_.norm) {
    case NormMode::kNone: return dy;
    case NormMode::kBatch: {
      NormGrads g = batchnorm_backward(dy, np.gamma, np.cache);
      np.dgamma.axpy(1.0f, g.dgamma);
      np.dbeta.axpy(1.0f, g.dbeta);
      return std::move(g.dx);
    }
    case NormMode::kGroup: {
      NormGrads g = groupnorm_backward(dy, np.gamma, config_.gn_groups,
                                       np.cache);
      np.dgamma.axpy(1.0f, g.dgamma);
      np.dbeta.axpy(1.0f, g.dbeta);
      return std::move(g.dx);
    }
  }
  return dy;
}

Tensor TinyTransformer::forward(const Tensor& x) {
  assert(x.ndim() == 4 && x.dim(1) == config_.in_channels &&
         x.dim(2) == config_.seq && x.dim(3) == 1);
  embed_in_ = x;
  embed_out_ = conv2d_forward(x, embed_w, Tensor(), 1, 0);

  Tensor cur = embed_out_;
  for (Block& b : blocks_) {
    b.x_in = cur;
    b.n1_out = norm_forward(b.norm1, cur);
    b.qkv_out = conv2d_forward(b.n1_out, b.qkv_w, Tensor(), 1, 0);
    b.attn_out = attention_forward(b.qkv_out, config_.heads, b.attn);
    b.add1 = conv2d_forward(b.attn_out, b.proj_w, Tensor(), 1, 0);
    b.add1.axpy(1.0f, b.x_in);

    b.n2_out = norm_forward(b.norm2, b.add1);
    b.f1_out = conv2d_forward(b.n2_out, b.fc1_w, Tensor(), 1, 0);
    relu_forward_into(b.f1_out, b.relu_out);
    Tensor out = conv2d_forward(b.relu_out, b.fc2_w, Tensor(), 1, 0);
    out.axpy(1.0f, b.add1);
    cur = std::move(out);
  }

  gap_in_shape_ = cur.shape();
  gap_out_ = global_avg_pool_forward(cur);
  return linear_forward(gap_out_, fc_w, fc_b);
}

void TinyTransformer::backward(const Tensor& dlogits) {
  LinearGrads lg = linear_backward(gap_out_, fc_w, dlogits);
  fc_dw.axpy(1.0f, lg.dw);
  fc_db.axpy(1.0f, lg.dbias);
  Tensor d = global_avg_pool_backward(lg.dx, gap_in_shape_);

  for (std::size_t i = blocks_.size(); i-- > 0;) {
    Block& b = blocks_[i];
    // MLP residual: the incoming gradient feeds both the branch and the
    // skip path (which continues as the gradient at add1).
    Conv2dGrads f2 = conv2d_backward(b.relu_out, b.fc2_w, d, 1, 0);
    b.fc2_dw.axpy(1.0f, f2.dw);
    relu_backward_inplace(f2.dx, b.relu_out);
    Conv2dGrads f1 = conv2d_backward(b.n2_out, b.fc1_w, f2.dx, 1, 0);
    b.fc1_dw.axpy(1.0f, f1.dw);
    Tensor d_add1 = norm_backward(b.norm2, f1.dx);
    d_add1.axpy(1.0f, d);

    // Attention residual, mirrored: proj -> attention -> qkv -> norm.
    Conv2dGrads pg = conv2d_backward(b.attn_out, b.proj_w, d_add1, 1, 0);
    b.proj_dw.axpy(1.0f, pg.dw);
    Tensor d_qkv =
        attention_backward(pg.dx, b.qkv_out, config_.heads, b.attn);
    Conv2dGrads qg = conv2d_backward(b.n1_out, b.qkv_w, d_qkv, 1, 0);
    b.qkv_dw.axpy(1.0f, qg.dw);
    Tensor d_x = norm_backward(b.norm1, qg.dx);
    d_x.axpy(1.0f, d_add1);
    d = std::move(d_x);
  }

  Conv2dGrads eg = conv2d_backward(embed_in_, embed_w, d, 1, 0,
                                   /*need_dx=*/false);
  embed_dw.axpy(1.0f, eg.dw);
}

void TinyTransformer::zero_grad() {
  std::vector<Tensor*> gs{&embed_dw};
  for (Block& b : blocks_) {
    gs.push_back(&b.qkv_dw);
    gs.push_back(&b.proj_dw);
    gs.push_back(&b.fc1_dw);
    gs.push_back(&b.fc2_dw);
    gs.push_back(&b.norm1.dgamma);
    gs.push_back(&b.norm1.dbeta);
    gs.push_back(&b.norm2.dgamma);
    gs.push_back(&b.norm2.dbeta);
  }
  gs.push_back(&fc_dw);
  gs.push_back(&fc_db);
  util::parallel_for(static_cast<std::int64_t>(gs.size()), 1,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         gs[static_cast<std::size_t>(i)]->zero();
                     });
}

std::vector<Tensor*> TinyTransformer::parameters() {
  std::vector<Tensor*> out{&embed_w};
  auto add_norm = [&](NormParams& np) {
    if (config_.norm != NormMode::kNone) {
      out.push_back(&np.gamma);
      out.push_back(&np.beta);
    }
  };
  for (Block& b : blocks_) {
    add_norm(b.norm1);
    out.push_back(&b.qkv_w);
    out.push_back(&b.proj_w);
    add_norm(b.norm2);
    out.push_back(&b.fc1_w);
    out.push_back(&b.fc2_w);
  }
  out.push_back(&fc_w);
  out.push_back(&fc_b);
  return out;
}

std::vector<Tensor*> TinyTransformer::gradients() {
  std::vector<Tensor*> out{&embed_dw};
  auto add_norm = [&](NormParams& np) {
    if (config_.norm != NormMode::kNone) {
      out.push_back(&np.dgamma);
      out.push_back(&np.dbeta);
    }
  };
  for (Block& b : blocks_) {
    add_norm(b.norm1);
    out.push_back(&b.qkv_dw);
    out.push_back(&b.proj_dw);
    add_norm(b.norm2);
    out.push_back(&b.fc1_dw);
    out.push_back(&b.fc2_dw);
  }
  out.push_back(&fc_dw);
  out.push_back(&fc_db);
  return out;
}

}  // namespace mbs::train
