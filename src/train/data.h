// Synthetic image-classification dataset — the ImageNet stand-in for the
// Fig. 6 experiment (see DESIGN.md substitutions). Each class is a distinct
// oriented grating plus a class-positioned blob, corrupted with Gaussian
// noise, so the task is learnable but not trivial.
#pragma once

#include <cstdint>
#include <vector>

#include "train/tensor.h"

namespace mbs::train {

struct Dataset {
  Tensor images;            ///< [N, C, H, W]
  std::vector<int> labels;  ///< [N], values in [0, classes)
  int classes = 0;

  int size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Generates `n` samples with `classes` balanced classes. Deterministic in
/// `seed`; different seeds give disjoint-looking train/validation splits.
Dataset make_synthetic_dataset(int n, int classes, int channels, int image,
                               std::uint64_t seed, double noise = 0.6);

}  // namespace mbs::train
