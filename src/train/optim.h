// SGD with momentum (Sutskever et al. 2013), the optimizer used in the
// paper's Fig. 6 training runs.
#pragma once

#include <vector>

#include "train/tensor.h"

namespace mbs::train {

struct SgdConfig {
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 0.0;
};

class Sgd {
 public:
  explicit Sgd(SgdConfig config) : config_(config) {}

  /// v = momentum*v + (g + wd*p);  p -= lr*v. Velocity buffers are created
  /// lazily on the first step and keyed by parameter order.
  void step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads);

  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

}  // namespace mbs::train
