// Training operators on the fast kernel layer.
//
// The convolutions delegate to the im2col+GEMM path (train/im2col.cc) —
// the equivalence the im2col tests assert is the production path. Bit
// identity with the original scalar loops is preserved exactly, not
// approximately: the forward GEMM accumulates in float starting from the
// bias with K traversed in the original (c, r, s) order
// (matmul_bt_f32), the weight-gradient GEMM sums rows in the original
// (b, yh, yw) order (matmul_at), and the data-gradient scatter keeps the
// seed's per-element addend sequence (two implementations, dispatched on
// dY density — see the scatter_dx_* kernels). The zero-redundancy layer
// on top (PR 4): conv2d_forward_into records its im2col lowering in a
// per-layer ConvCache that conv2d_backward_into consumes, all scratch is
// workspace-arena memory, and outputs land in step-persistent caller
// tensors — a steady-state train step's conv/GEMM path performs zero
// heap allocations (Debug-asserted via util/alloc_hook.cc). Everything
// else is data-parallel over disjoint output ranges via
// util::parallel_for, which never splits a floating-point reduction — so
// results are bit-identical at any MBS_THREADS setting.
#include "train/ops.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "train/im2col.h"
#include "util/arena.h"
#include "util/parallel.h"

namespace mbs::train {

namespace {

int out_dim(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// MBS_NO_CONV_CACHE=1 disables forward-to-backward im2col reuse (the
/// A/B escape hatch for timing the redundancy): backward then re-lowers
/// its input exactly like the pre-cache code, bit for bit.
bool conv_cache_enabled() {
  static const bool disabled = [] {
    const char* env = std::getenv("MBS_NO_CONV_CACHE");
    return env && *env && std::strcmp(env, "0") != 0;
  }();
  return !disabled;
}

struct ConvGeom {
  int n, ci, ih, iw, co, kh, kw, oh, ow, stride, pad;
};

/// The seed's data-gradient scatter, kept verbatim for sparse dY: its
/// `d == 0` skip drops whole receptive fields, which wins when the
/// incoming gradient is ReLU-sparsified (the no-norm training runs).
void scatter_dx_sparse(const ConvGeom& g, const float* dyd, const float* wd,
                       float* dxd) {
  const std::int64_t x_hw = static_cast<std::int64_t>(g.ih) * g.iw;
  const std::int64_t y_hw = static_cast<std::int64_t>(g.oh) * g.ow;
  util::parallel_for(g.n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b)
      for (int o = 0; o < g.co; ++o) {
        const float* dy_plane = dyd + (b * g.co + o) * y_hw;
        for (int yh = 0; yh < g.oh; ++yh) {
          const int xh0 = yh * g.stride - g.pad;
          const int r_lo = xh0 < 0 ? -xh0 : 0;
          const int r_hi = g.ih - xh0 < g.kh ? g.ih - xh0 : g.kh;
          for (int yw = 0; yw < g.ow; ++yw) {
            const float d =
                dy_plane[static_cast<std::int64_t>(yh) * g.ow + yw];
            if (d == 0.0f) continue;
            const int xw0 = yw * g.stride - g.pad;
            const int s_lo = xw0 < 0 ? -xw0 : 0;
            const int s_hi = g.iw - xw0 < g.kw ? g.iw - xw0 : g.kw;
            for (int c = 0; c < g.ci; ++c)
              for (int r = r_lo; r < r_hi; ++r) {
                const float* w_row =
                    wd +
                    ((static_cast<std::int64_t>(o) * g.ci + c) * g.kh + r) *
                        g.kw;
                float* dx_row = dxd + (b * g.ci + c) * x_hw +
                                static_cast<std::int64_t>(xh0 + r) * g.iw +
                                xw0;
                for (int s = s_lo; s < s_hi; ++s)
                  dx_row[s] += d * w_row[s];
              }
          }
        }
      }
  });
}

/// Dense stride-1 scatter: per weight tap (r, s) the update is a shifted
/// plane axpy dx[yh + r-pad, yw + s-pad] += dy[yh, yw] * w[o,c,r,s], which
/// vectorizes over whole rows (and over whole planes when the columns
/// align). Bit-identity with the seed nest: for a fixed dx element the
/// addend sequence is still o-major then (yh, yw)-lexicographic, because r
/// and s are iterated DESCENDING (element yh = xh - r + pad rises as r
/// falls, yw likewise), and the dropped `d == 0` skip only removes +/-0
/// addends, which cannot change any finite accumulation (same contract as
/// the GEMM paths' dropped zero skips, see im2col.cc).
void scatter_dx_dense_s1(const ConvGeom& g, const float* dyd, const float* wd,
                         float* dxd) {
  const std::int64_t x_hw = static_cast<std::int64_t>(g.ih) * g.iw;
  const std::int64_t y_hw = static_cast<std::int64_t>(g.oh) * g.ow;
  util::parallel_for(g.n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b)
      for (int o = 0; o < g.co; ++o) {
        const float* dy_plane = dyd + (b * g.co + o) * y_hw;
        for (int c = 0; c < g.ci; ++c) {
          const float* w_plane =
              wd + (static_cast<std::int64_t>(o) * g.ci + c) * g.kh * g.kw;
          float* dx_plane = dxd + (b * g.ci + c) * x_hw;
          for (int r = g.kh - 1; r >= 0; --r) {
            const int dr = r - g.pad;  // xh = yh + dr
            const int yh_lo = dr < 0 ? -dr : 0;
            const int yh_hi = g.oh < g.ih - dr ? g.oh : g.ih - dr;
            if (yh_hi <= yh_lo) continue;
            for (int s = g.kw - 1; s >= 0; --s) {
              const float wv = w_plane[static_cast<std::int64_t>(r) * g.kw + s];
              const int ds = s - g.pad;  // xw = yw + ds
              const int yw_lo = ds < 0 ? -ds : 0;
              const int yw_hi = g.ow < g.iw - ds ? g.ow : g.iw - ds;
              if (yw_hi <= yw_lo) continue;
              if (ds == 0 && g.iw == g.ow) {
                // Columns align: the rows form one contiguous run.
                const float* src = dy_plane +
                                   static_cast<std::int64_t>(yh_lo) * g.ow;
                float* dst =
                    dx_plane + static_cast<std::int64_t>(yh_lo + dr) * g.iw;
                const std::int64_t len =
                    static_cast<std::int64_t>(yh_hi - yh_lo) * g.ow;
                for (std::int64_t t = 0; t < len; ++t) dst[t] += src[t] * wv;
                continue;
              }
              const int len = yw_hi - yw_lo;
              for (int yh = yh_lo; yh < yh_hi; ++yh) {
                const float* src =
                    dy_plane + static_cast<std::int64_t>(yh) * g.ow + yw_lo;
                float* dst = dx_plane +
                             static_cast<std::int64_t>(yh + dr) * g.iw +
                             yw_lo + ds;
                for (int t = 0; t < len; ++t) dst[t] += src[t] * wv;
              }
            }
          }
        }
      }
  });
}

/// General-stride fallback (dense): per tap, strided row updates in the
/// same r/s-descending order.
void scatter_dx_dense(const ConvGeom& g, const float* dyd, const float* wd,
                      float* dxd) {
  const std::int64_t x_hw = static_cast<std::int64_t>(g.ih) * g.iw;
  const std::int64_t y_hw = static_cast<std::int64_t>(g.oh) * g.ow;
  util::parallel_for(g.n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b)
      for (int o = 0; o < g.co; ++o) {
        const float* dy_plane = dyd + (b * g.co + o) * y_hw;
        for (int c = 0; c < g.ci; ++c) {
          const float* w_plane =
              wd + (static_cast<std::int64_t>(o) * g.ci + c) * g.kh * g.kw;
          float* dx_plane = dxd + (b * g.ci + c) * x_hw;
          for (int yh = 0; yh < g.oh; ++yh) {
            const int xh0 = yh * g.stride - g.pad;
            const int r_lo = xh0 < 0 ? -xh0 : 0;
            const int r_hi = g.ih - xh0 < g.kh ? g.ih - xh0 : g.kh;
            const float* dy_row =
                dy_plane + static_cast<std::int64_t>(yh) * g.ow;
            for (int r = r_lo; r < r_hi; ++r) {
              float* dx_row =
                  dx_plane + static_cast<std::int64_t>(xh0 + r) * g.iw;
              const float* w_row =
                  w_plane + static_cast<std::int64_t>(r) * g.kw;
              for (int s = g.kw - 1; s >= 0; --s) {
                const float wv = w_row[s];
                // Valid yw: 0 <= yw*stride - pad + s < iw.
                if (g.iw - 1 + g.pad - s < 0) continue;
                const int yw_lo = g.pad - s <= 0
                                      ? 0
                                      : (g.pad - s + g.stride - 1) / g.stride;
                int yw_hi = (g.iw - 1 + g.pad - s) / g.stride + 1;
                if (yw_hi > g.ow) yw_hi = g.ow;
                for (int yw = yw_lo; yw < yw_hi; ++yw)
                  dx_row[yw * g.stride - g.pad + s] += dy_row[yw] * wv;
              }
            }
          }
        }
      }
  });
}

}  // namespace

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      int stride, int pad) {
  Tensor y;
  conv2d_forward_into(x, w, bias, stride, pad, /*cache=*/nullptr, y);
  return y;
}

void conv2d_forward_into(const Tensor& x, const Tensor& w, const Tensor& bias,
                         int stride, int pad, ConvCache* cache, Tensor& y) {
  assert(x.ndim() == 4 && w.ndim() == 4);
  util::ScopedKernelTimer timer(util::KernelKind::kConvFwd);
  const int n = x.dim(0), ci = x.dim(1);
  const int co = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  assert(w.dim(1) == ci);
  const int oh = out_dim(x.dim(2), kh, stride, pad);
  const int ow = out_dim(x.dim(3), kw, stride, pad);
  const int rows = n * oh * ow;
  const int k = ci * kh * kw;

  util::ArenaScope scope;
  // The im2col lowering: into the layer's step-persistent cache when one
  // is attached, else into zeroed arena scratch. Buffer reuse preserves
  // contents ONLY when the full geometry stamp matches — the padding-zero
  // layout depends on kernel/stride/pad, not just the cols shape, so a
  // geometry change that happens to keep the shape (e.g. a 3x1 kernel
  // followed by a 1x3 one) must re-zero the buffer.
  float* cols = nullptr;
  if (cache && conv_cache_enabled()) {
    if (cache->matches(x, kh, kw, stride, pad))
      cache->cols.ensure_shape({rows, k});  // padding zeros still valid
    else
      cache->cols.ensure_zeroed({rows, k});
    cols = cache->cols.data();
    cache->x_shape = x.shape();
    cache->kh = kh;
    cache->kw = kw;
    cache->stride = stride;
    cache->pad = pad;
    cache->valid = true;
  } else {
    cols = scope.floats(static_cast<std::int64_t>(rows) * k);
    std::memset(cols, 0,
                static_cast<std::size_t>(rows) * k * sizeof(float));
    if (cache) cache->valid = false;
  }
  im2col_into(x, kh, kw, stride, pad, pad, cols);

  // W is already the [Co, Ci*Kh*Kw] GEMM operand in row-major memory; no
  // reshaped copy needed. C [N*Ho*Wo, Co] is arena scratch.
  float* c = scope.floats(static_cast<std::int64_t>(rows) * co);
  matmul_bt_f32_into(cols, rows, w.data(), co, k,
                     bias.empty() ? nullptr : bias.data(), c);
  y.ensure_shape({n, co, oh, ow});
  rows_to_nchw_into(c, y);
}

Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy, int stride, int pad,
                            bool need_dx) {
  Conv2dGrads g;
  conv2d_backward_into(x, w, dy, stride, pad, need_dx, /*cache=*/nullptr, g);
  return g;
}

void conv2d_backward_into(const Tensor& x, const Tensor& w, const Tensor& dy,
                          int stride, int pad, bool need_dx, ConvCache* cache,
                          Conv2dGrads& g) {
  util::ScopedKernelTimer timer(util::KernelKind::kConvBwd);
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int co = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = dy.dim(2), ow = dy.dim(3);
  const int rows = n * oh * ow;
  const int k = ci * kh * kw;

  util::ArenaScope scope;
  // dY as a [N*Ho*Wo, Co] matrix (arena scratch, fully overwritten).
  float* dy2 = scope.floats(static_cast<std::int64_t>(rows) * co);
  nchw_to_rows_into(dy, dy2);

  // The forward pass's im2col lowering, reused when the layer cache holds
  // it — the other half of the per-step im2col cost. Recomputed (bit-
  // identically) when absent or stale.
  const float* cols = nullptr;
  if (cache && cache->matches(x, kh, kw, stride, pad)) {
    cols = cache->cols.data();
  } else {
    float* scratch = scope.floats(static_cast<std::int64_t>(rows) * k);
    std::memset(scratch, 0,
                static_cast<std::size_t>(rows) * k * sizeof(float));
    im2col_into(x, kh, kw, stride, pad, pad, scratch);
    cols = scratch;
  }

  // Weight gradient: im2col(x)^T * dY sums rows in the original
  // (b, yh, yw) order; bias gradient: dY column sums, same order.
  float* dw_kxn = scope.floats(static_cast<std::int64_t>(k) * co);
  matmul_at_into(cols, k, dy2, co, rows, dw_kxn);
  g.dw.ensure_shape(w.shape());
  kxn_to_conv_weights_into(dw_kxn, co, ci, kh, kw, g.dw.data());
  g.dbias.ensure_shape({co});
  column_sums_f32_into(dy2, rows, co, g.dbias.data());

  if (!need_dx) return;

  // Data gradient. The GEMM formulation (dY * W scattered with col2im)
  // pre-reduces over output channels and would change the per-element
  // float summation order, so the computation stays a scatter over the
  // seed's per-element addend sequence (o-major, then (yh, yw)-
  // lexicographic; see the scatter_dx_* kernels above). Two bit-identical
  // implementations cover the density extremes, so the dispatch below is
  // value-dependent but result-invariant: ReLU-sparsified gradients (the
  // no-norm training runs) keep the seed loop whose `d == 0` skip drops
  // whole receptive fields, while dense gradients take the vectorized
  // shifted-plane form.
  g.dx.ensure_zeroed({n, ci, ih, iw});
  const ConvGeom geom{n,  ci, ih,     iw, co, kh,
                      kw, oh, ow, stride, pad};
  const float* dyd = dy.data();
  std::int64_t zeros = 0;
  const std::int64_t dy_n = dy.size();
  for (std::int64_t i = 0; i < dy_n; ++i) zeros += dyd[i] == 0.0f;
  if (3 * zeros >= dy_n)
    scatter_dx_sparse(geom, dyd, w.data(), g.dx.data());
  else if (stride == 1)
    scatter_dx_dense_s1(geom, dyd, w.data(), g.dx.data());
  else
    scatter_dx_dense(geom, dyd, w.data(), g.dx.data());
}

MaxPoolResult maxpool_forward(const Tensor& x, int kernel, int stride) {
  util::ScopedKernelTimer timer(util::KernelKind::kPool);
  const int n = x.dim(0), c = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int oh = out_dim(ih, kernel, stride, 0);
  const int ow = out_dim(iw, kernel, stride, 0);
  MaxPoolResult r;
  r.y = Tensor({n, c, oh, ow});
  r.argmax.assign(static_cast<std::size_t>(r.y.size()), 0);
  const std::int64_t per = static_cast<std::int64_t>(oh) * ow;
  const std::int64_t x_hw = static_cast<std::int64_t>(ih) * iw;
  const float* xd = x.data();
  float* yd = r.y.data();
  util::parallel_for(
      static_cast<std::int64_t>(n) * c, 1,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t plane = p0; plane < p1; ++plane) {
          const float* x_plane = xd + plane * x_hw;
          const std::int64_t x_base = plane * x_hw;
          std::int64_t oi = plane * per;
          for (int yh = 0; yh < oh; ++yh)
            for (int yw = 0; yw < ow; ++yw, ++oi) {
              float best = -std::numeric_limits<float>::infinity();
              std::int64_t best_idx = 0;
              for (int r2 = 0; r2 < kernel; ++r2) {
                const int xh = yh * stride + r2;
                if (xh >= ih) continue;
                const float* row =
                    x_plane + static_cast<std::int64_t>(xh) * iw;
                for (int s2 = 0; s2 < kernel; ++s2) {
                  const int xw = yw * stride + s2;
                  if (xw >= iw) continue;
                  const float v = row[xw];
                  if (v > best) {
                    best = v;
                    best_idx = x_base + static_cast<std::int64_t>(xh) * iw + xw;
                  }
                }
              }
              yd[oi] = best;
              r.argmax[static_cast<std::size_t>(oi)] = best_idx;
            }
        }
      });
  return r;
}

Tensor maxpool_backward(const Tensor& dy, const MaxPoolResult& cache,
                        const std::vector<int>& x_shape) {
  util::ScopedKernelTimer timer(util::KernelKind::kPool);
  Tensor dx(x_shape);
  // argmax targets stay inside their own (sample, channel) plane, so the
  // scatter-add partitions cleanly over planes.
  const std::int64_t planes =
      static_cast<std::int64_t>(dy.dim(0)) * dy.dim(1);
  const std::int64_t per = dy.size() / (planes < 1 ? 1 : planes);
  util::parallel_for(planes, 1, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t i = p0 * per; i < p1 * per; ++i)
      dx[cache.argmax[static_cast<std::size_t>(i)]] += dy[i];
  });
  return dx;
}

Tensor global_avg_pool_forward(const Tensor& x) {
  util::ScopedKernelTimer timer(util::KernelKind::kPool);
  const int n = x.dim(0), c = x.dim(1);
  const int hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  const float* xd = x.data();
  float* yd = y.data();
  util::parallel_for(
      static_cast<std::int64_t>(n) * c, 4,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t plane = p0; plane < p1; ++plane) {
          const float* row = xd + plane * hw;
          double s = 0;
          for (int i = 0; i < hw; ++i) s += row[i];
          yd[plane] = static_cast<float>(s / hw);
        }
      });
  return y;
}

Tensor global_avg_pool_backward(const Tensor& dy,
                                const std::vector<int>& x_shape) {
  util::ScopedKernelTimer timer(util::KernelKind::kPool);
  Tensor dx(x_shape);
  const int c = x_shape[1];
  const std::int64_t hw = static_cast<std::int64_t>(x_shape[2]) * x_shape[3];
  const float inv = 1.0f / static_cast<float>(hw);
  float* dxd = dx.data();
  util::parallel_for(
      static_cast<std::int64_t>(x_shape[0]) * c, 4,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t plane = p0; plane < p1; ++plane) {
          const float d = dy[plane] * inv;
          float* row = dxd + plane * hw;
          for (std::int64_t i = 0; i < hw; ++i) row[i] = d;
        }
      });
  return dx;
}

Tensor relu_forward(const Tensor& x) {
  util::ScopedKernelTimer timer(util::KernelKind::kRelu);
  Tensor y = x;
  float* yd = y.data();
  util::parallel_for(y.size(), 1 << 15,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         if (yd[i] < 0) yd[i] = 0;
                     });
  return y;
}

void relu_forward_into(const Tensor& x, Tensor& y) {
  util::ScopedKernelTimer timer(util::KernelKind::kRelu);
  y.ensure_shape(x.shape());
  const float* xd = x.data();
  float* yd = y.data();
  // One pass writing every element: value-identical to copy-then-clamp.
  util::parallel_for(x.size(), 1 << 15,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         yd[i] = xd[i] < 0 ? 0.0f : xd[i];
                     });
}

Tensor relu_backward(const Tensor& dy, const Tensor& y) {
  assert(dy.size() == y.size());
  Tensor dx = dy;
  relu_backward_inplace(dx, y);
  return dx;
}

void relu_backward_inplace(Tensor& d, const Tensor& y) {
  assert(d.size() == y.size());
  util::ScopedKernelTimer timer(util::KernelKind::kRelu);
  const float* yd = y.data();
  float* dxd = d.data();
  util::parallel_for(d.size(), 1 << 15,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         if (yd[i] <= 0) dxd[i] = 0;
                     });
}

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias) {
  util::ScopedKernelTimer timer(util::KernelKind::kLinear);
  const int n = x.dim(0);
  const std::int64_t in = x.size() / n;
  const int out = w.dim(0);
  assert(w.dim(1) == in);
  Tensor y({n, out});
  util::parallel_for(n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b)
      for (int o = 0; o < out; ++o) {
        double acc = bias.empty() ? 0.0 : bias[o];
        for (std::int64_t i = 0; i < in; ++i)
          acc += x[b * in + i] * w[o * in + i];
        y[b * out + o] = static_cast<float>(acc);
      }
  });
  return y;
}

LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy) {
  util::ScopedKernelTimer timer(util::KernelKind::kLinear);
  const int n = x.dim(0);
  const std::int64_t in = x.size() / n;
  const int out = w.dim(0);
  LinearGrads g;
  g.dx = Tensor(x.shape());
  g.dw = Tensor({out, static_cast<int>(in)});
  g.dbias = Tensor({out});
  // dw/dbias reduce over the batch (owned per output unit), dx over the
  // output units (owned per sample); each keeps the original term order.
  util::parallel_for(out, 4, [&](std::int64_t o0, std::int64_t o1) {
    for (std::int64_t o = o0; o < o1; ++o)
      for (int b = 0; b < n; ++b) {
        const float d = dy[static_cast<std::int64_t>(b) * out + o];
        g.dbias[o] += d;
        for (std::int64_t i = 0; i < in; ++i)
          g.dw[o * in + i] += d * x[b * in + i];
      }
  });
  util::parallel_for(n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b)
      for (int o = 0; o < out; ++o) {
        const float d = dy[b * out + o];
        for (std::int64_t i = 0; i < in; ++i)
          g.dx[b * in + i] += d * w[o * in + i];
      }
  });
  return g;
}

}  // namespace mbs::train
