// Training operators on the fast kernel layer.
//
// The convolutions delegate to the im2col+GEMM path (train/im2col.cc) —
// the equivalence the im2col tests assert is the production path. Bit
// identity with the original scalar loops is preserved exactly, not
// approximately: the forward GEMM accumulates in float starting from the
// bias with K traversed in the original (c, r, s) order
// (matmul_bt_f32), the weight-gradient GEMM sums rows in the original
// (b, yh, yw) order (matmul_at), and the data-gradient scatter keeps the
// original loop nest per sample. Everything else is data-parallel over
// disjoint output ranges via util::parallel_for, which never splits a
// floating-point reduction — so results are bit-identical at any
// MBS_THREADS setting.
#include "train/ops.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "train/im2col.h"
#include "util/parallel.h"

namespace mbs::train {

namespace {

int out_dim(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      int stride, int pad) {
  assert(x.ndim() == 4 && w.ndim() == 4);
  util::ScopedKernelTimer timer(util::KernelKind::kConvFwd);
  const int n = x.dim(0), ci = x.dim(1);
  const int co = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  assert(w.dim(1) == ci);
  const int oh = out_dim(x.dim(2), kh, stride, pad);
  const int ow = out_dim(x.dim(3), kw, stride, pad);

  const Tensor a = im2col(x, kh, kw, stride, pad, pad);
  Tensor w2({co, ci * kh * kw});  // W viewed as the [Co, K] GEMM operand
  std::memcpy(w2.data(), w.data(),
              static_cast<std::size_t>(w.size()) * sizeof(float));
  const Tensor c = matmul_bt_f32(a, w2, bias);  // [N*Ho*Wo, Co]
  return rows_to_nchw(c, {n, co, oh, ow});
}

Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy, int stride, int pad,
                            bool need_dx) {
  util::ScopedKernelTimer timer(util::KernelKind::kConvBwd);
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int co = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = dy.dim(2), ow = dy.dim(3);

  Conv2dGrads g;

  // Weight gradient: im2col(x)^T * dY sums rows in the original
  // (b, yh, yw) order; bias gradient: dY column sums, same order.
  const Tensor dy2 = nchw_to_rows(dy);
  const Tensor a = im2col(x, kh, kw, stride, pad, pad);
  g.dw = kxn_to_conv_weights(matmul_at(a, dy2), co, ci, kh, kw);
  g.dbias = column_sums_f32(dy2);

  if (!need_dx) return g;

  // Data gradient. The GEMM formulation (dY * W scattered with col2im)
  // pre-reduces over output channels and would change the per-element
  // float summation order, so the scatter keeps the original loop nest —
  // gradients flow only within a sample, so samples fan out across the
  // pool, and the inner loops run on raw pointers with the padding
  // branches hoisted into (r, s) bounds.
  g.dx = Tensor({n, ci, ih, iw});
  const float* dyd = dy.data();
  const float* wd = w.data();
  float* dxd = g.dx.data();
  const std::int64_t x_hw = static_cast<std::int64_t>(ih) * iw;
  const std::int64_t y_hw = static_cast<std::int64_t>(oh) * ow;
  util::parallel_for(n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b)
      for (int o = 0; o < co; ++o) {
        const float* dy_plane = dyd + (b * co + o) * y_hw;
        for (int yh = 0; yh < oh; ++yh) {
          const int xh0 = yh * stride - pad;
          const int r_lo = xh0 < 0 ? -xh0 : 0;
          const int r_hi = ih - xh0 < kh ? ih - xh0 : kh;
          for (int yw = 0; yw < ow; ++yw) {
            const float d = dy_plane[static_cast<std::int64_t>(yh) * ow + yw];
            if (d == 0.0f) continue;
            const int xw0 = yw * stride - pad;
            const int s_lo = xw0 < 0 ? -xw0 : 0;
            const int s_hi = iw - xw0 < kw ? iw - xw0 : kw;
            for (int c = 0; c < ci; ++c)
              for (int r = r_lo; r < r_hi; ++r) {
                const float* w_row =
                    wd + ((static_cast<std::int64_t>(o) * ci + c) * kh + r) *
                             kw;
                float* dx_row =
                    dxd + (b * ci + c) * x_hw +
                    static_cast<std::int64_t>(xh0 + r) * iw + xw0;
                for (int s = s_lo; s < s_hi; ++s)
                  dx_row[s] += d * w_row[s];
              }
          }
        }
      }
  });
  return g;
}

MaxPoolResult maxpool_forward(const Tensor& x, int kernel, int stride) {
  util::ScopedKernelTimer timer(util::KernelKind::kPool);
  const int n = x.dim(0), c = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int oh = out_dim(ih, kernel, stride, 0);
  const int ow = out_dim(iw, kernel, stride, 0);
  MaxPoolResult r;
  r.y = Tensor({n, c, oh, ow});
  r.argmax.assign(static_cast<std::size_t>(r.y.size()), 0);
  const std::int64_t per = static_cast<std::int64_t>(oh) * ow;
  util::parallel_for(
      static_cast<std::int64_t>(n) * c, 1,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t plane = p0; plane < p1; ++plane) {
          const int b = static_cast<int>(plane / c);
          const int ch = static_cast<int>(plane % c);
          std::int64_t oi = plane * per;
          for (int yh = 0; yh < oh; ++yh)
            for (int yw = 0; yw < ow; ++yw, ++oi) {
              float best = -std::numeric_limits<float>::infinity();
              std::int64_t best_idx = 0;
              for (int r2 = 0; r2 < kernel; ++r2)
                for (int s2 = 0; s2 < kernel; ++s2) {
                  const int xh = yh * stride + r2;
                  const int xw = yw * stride + s2;
                  if (xh >= ih || xw >= iw) continue;
                  const float v = x.at(b, ch, xh, xw);
                  if (v > best) {
                    best = v;
                    best_idx = x.idx4(b, ch, xh, xw);
                  }
                }
              r.y[oi] = best;
              r.argmax[static_cast<std::size_t>(oi)] = best_idx;
            }
        }
      });
  return r;
}

Tensor maxpool_backward(const Tensor& dy, const MaxPoolResult& cache,
                        const std::vector<int>& x_shape) {
  util::ScopedKernelTimer timer(util::KernelKind::kPool);
  Tensor dx(x_shape);
  // argmax targets stay inside their own (sample, channel) plane, so the
  // scatter-add partitions cleanly over planes.
  const std::int64_t planes =
      static_cast<std::int64_t>(dy.dim(0)) * dy.dim(1);
  const std::int64_t per = dy.size() / (planes < 1 ? 1 : planes);
  util::parallel_for(planes, 1, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t i = p0 * per; i < p1 * per; ++i)
      dx[cache.argmax[static_cast<std::size_t>(i)]] += dy[i];
  });
  return dx;
}

Tensor global_avg_pool_forward(const Tensor& x) {
  util::ScopedKernelTimer timer(util::KernelKind::kPool);
  const int n = x.dim(0), c = x.dim(1);
  const int hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  const float* xd = x.data();
  float* yd = y.data();
  util::parallel_for(
      static_cast<std::int64_t>(n) * c, 4,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t plane = p0; plane < p1; ++plane) {
          const float* row = xd + plane * hw;
          double s = 0;
          for (int i = 0; i < hw; ++i) s += row[i];
          yd[plane] = static_cast<float>(s / hw);
        }
      });
  return y;
}

Tensor global_avg_pool_backward(const Tensor& dy,
                                const std::vector<int>& x_shape) {
  util::ScopedKernelTimer timer(util::KernelKind::kPool);
  Tensor dx(x_shape);
  const int c = x_shape[1];
  const std::int64_t hw = static_cast<std::int64_t>(x_shape[2]) * x_shape[3];
  const float inv = 1.0f / static_cast<float>(hw);
  float* dxd = dx.data();
  util::parallel_for(
      static_cast<std::int64_t>(x_shape[0]) * c, 4,
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t plane = p0; plane < p1; ++plane) {
          const float d = dy[plane] * inv;
          float* row = dxd + plane * hw;
          for (std::int64_t i = 0; i < hw; ++i) row[i] = d;
        }
      });
  return dx;
}

Tensor relu_forward(const Tensor& x) {
  util::ScopedKernelTimer timer(util::KernelKind::kRelu);
  Tensor y = x;
  float* yd = y.data();
  util::parallel_for(y.size(), 1 << 15,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         if (yd[i] < 0) yd[i] = 0;
                     });
  return y;
}

Tensor relu_backward(const Tensor& dy, const Tensor& y) {
  assert(dy.size() == y.size());
  util::ScopedKernelTimer timer(util::KernelKind::kRelu);
  Tensor dx = dy;
  const float* yd = y.data();
  float* dxd = dx.data();
  util::parallel_for(dx.size(), 1 << 15,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         if (yd[i] <= 0) dxd[i] = 0;
                     });
  return dx;
}

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias) {
  util::ScopedKernelTimer timer(util::KernelKind::kLinear);
  const int n = x.dim(0);
  const std::int64_t in = x.size() / n;
  const int out = w.dim(0);
  assert(w.dim(1) == in);
  Tensor y({n, out});
  util::parallel_for(n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b)
      for (int o = 0; o < out; ++o) {
        double acc = bias.empty() ? 0.0 : bias[o];
        for (std::int64_t i = 0; i < in; ++i)
          acc += x[b * in + i] * w[o * in + i];
        y[b * out + o] = static_cast<float>(acc);
      }
  });
  return y;
}

LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy) {
  util::ScopedKernelTimer timer(util::KernelKind::kLinear);
  const int n = x.dim(0);
  const std::int64_t in = x.size() / n;
  const int out = w.dim(0);
  LinearGrads g;
  g.dx = Tensor(x.shape());
  g.dw = Tensor({out, static_cast<int>(in)});
  g.dbias = Tensor({out});
  // dw/dbias reduce over the batch (owned per output unit), dx over the
  // output units (owned per sample); each keeps the original term order.
  util::parallel_for(out, 4, [&](std::int64_t o0, std::int64_t o1) {
    for (std::int64_t o = o0; o < o1; ++o)
      for (int b = 0; b < n; ++b) {
        const float d = dy[static_cast<std::int64_t>(b) * out + o];
        g.dbias[o] += d;
        for (std::int64_t i = 0; i < in; ++i)
          g.dw[o * in + i] += d * x[b * in + i];
      }
  });
  util::parallel_for(n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b)
      for (int o = 0; o < out; ++o) {
        const float d = dy[b * out + o];
        for (std::int64_t i = 0; i < in; ++i)
          g.dx[b * in + i] += d * w[o * in + i];
      }
  });
  return g;
}

}  // namespace mbs::train
