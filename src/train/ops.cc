#include "train/ops.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mbs::train {

namespace {

int out_dim(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      int stride, int pad) {
  assert(x.ndim() == 4 && w.ndim() == 4);
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int co = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  assert(w.dim(1) == ci);
  const int oh = out_dim(ih, kh, stride, pad);
  const int ow = out_dim(iw, kw, stride, pad);
  Tensor y({n, co, oh, ow});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < co; ++o) {
      const float bv = bias.empty() ? 0.0f : bias[o];
      for (int yh = 0; yh < oh; ++yh)
        for (int yw = 0; yw < ow; ++yw) {
          float acc = bv;
          for (int c = 0; c < ci; ++c)
            for (int r = 0; r < kh; ++r) {
              const int xh = yh * stride - pad + r;
              if (xh < 0 || xh >= ih) continue;
              for (int s = 0; s < kw; ++s) {
                const int xw = yw * stride - pad + s;
                if (xw < 0 || xw >= iw) continue;
                acc += x.at(b, c, xh, xw) * w.at(o, c, r, s);
              }
            }
          y.at(b, o, yh, yw) = acc;
        }
    }
  return y;
}

Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy, int stride, int pad,
                            bool need_dx) {
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int co = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = dy.dim(2), ow = dy.dim(3);
  Conv2dGrads g;
  g.dw = Tensor({co, ci, kh, kw});
  g.dbias = Tensor({co});
  if (need_dx) g.dx = Tensor({n, ci, ih, iw});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < co; ++o)
      for (int yh = 0; yh < oh; ++yh)
        for (int yw = 0; yw < ow; ++yw) {
          const float d = dy.at(b, o, yh, yw);
          if (d == 0.0f) continue;
          g.dbias[o] += d;
          for (int c = 0; c < ci; ++c)
            for (int r = 0; r < kh; ++r) {
              const int xh = yh * stride - pad + r;
              if (xh < 0 || xh >= ih) continue;
              for (int s = 0; s < kw; ++s) {
                const int xw = yw * stride - pad + s;
                if (xw < 0 || xw >= iw) continue;
                g.dw.at(o, c, r, s) += d * x.at(b, c, xh, xw);
                if (need_dx) g.dx.at(b, c, xh, xw) += d * w.at(o, c, r, s);
              }
            }
        }
  return g;
}

MaxPoolResult maxpool_forward(const Tensor& x, int kernel, int stride) {
  const int n = x.dim(0), c = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int oh = out_dim(ih, kernel, stride, 0);
  const int ow = out_dim(iw, kernel, stride, 0);
  MaxPoolResult r;
  r.y = Tensor({n, c, oh, ow});
  r.argmax.assign(static_cast<std::size_t>(r.y.size()), 0);
  std::int64_t oi = 0;
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int yh = 0; yh < oh; ++yh)
        for (int yw = 0; yw < ow; ++yw, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (int r2 = 0; r2 < kernel; ++r2)
            for (int s2 = 0; s2 < kernel; ++s2) {
              const int xh = yh * stride + r2;
              const int xw = yw * stride + s2;
              if (xh >= ih || xw >= iw) continue;
              const float v = x.at(b, ch, xh, xw);
              if (v > best) {
                best = v;
                best_idx = x.idx4(b, ch, xh, xw);
              }
            }
          r.y[oi] = best;
          r.argmax[static_cast<std::size_t>(oi)] = best_idx;
        }
  return r;
}

Tensor maxpool_backward(const Tensor& dy, const MaxPoolResult& cache,
                        const std::vector<int>& x_shape) {
  Tensor dx(x_shape);
  for (std::int64_t i = 0; i < dy.size(); ++i)
    dx[cache.argmax[static_cast<std::size_t>(i)]] += dy[i];
  return dx;
}

Tensor global_avg_pool_forward(const Tensor& x) {
  const int n = x.dim(0), c = x.dim(1);
  const int hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      double s = 0;
      for (int h = 0; h < x.dim(2); ++h)
        for (int w = 0; w < x.dim(3); ++w) s += x.at(b, ch, h, w);
      y[static_cast<std::int64_t>(b) * c + ch] =
          static_cast<float>(s / hw);
    }
  return y;
}

Tensor global_avg_pool_backward(const Tensor& dy,
                                const std::vector<int>& x_shape) {
  Tensor dx(x_shape);
  const int n = x_shape[0], c = x_shape[1], h = x_shape[2], w = x_shape[3];
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      const float d = dy[static_cast<std::int64_t>(b) * c + ch] * inv;
      for (int y2 = 0; y2 < h; ++y2)
        for (int x2 = 0; x2 < w; ++x2) dx.at(b, ch, y2, x2) = d;
    }
  return dx;
}

Tensor relu_forward(const Tensor& x) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.size(); ++i)
    if (y[i] < 0) y[i] = 0;
  return y;
}

Tensor relu_backward(const Tensor& dy, const Tensor& y) {
  assert(dy.size() == y.size());
  Tensor dx = dy;
  for (std::int64_t i = 0; i < dx.size(); ++i)
    if (y[i] <= 0) dx[i] = 0;
  return dx;
}

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias) {
  const int n = x.dim(0);
  const std::int64_t in = x.size() / n;
  const int out = w.dim(0);
  assert(w.dim(1) == in);
  Tensor y({n, out});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < out; ++o) {
      double acc = bias.empty() ? 0.0 : bias[o];
      for (std::int64_t i = 0; i < in; ++i)
        acc += x[b * in + i] * w[o * in + i];
      y[static_cast<std::int64_t>(b) * out + o] = static_cast<float>(acc);
    }
  return y;
}

LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy) {
  const int n = x.dim(0);
  const std::int64_t in = x.size() / n;
  const int out = w.dim(0);
  LinearGrads g;
  g.dx = Tensor(x.shape());
  g.dw = Tensor({out, static_cast<int>(in)});
  g.dbias = Tensor({out});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < out; ++o) {
      const float d = dy[static_cast<std::int64_t>(b) * out + o];
      g.dbias[o] += d;
      for (std::int64_t i = 0; i < in; ++i) {
        g.dw[o * in + i] += d * x[b * in + i];
        g.dx[b * in + i] += d * w[o * in + i];
      }
    }
  return g;
}

}  // namespace mbs::train
