#include "train/model.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "util/parallel.h"

namespace mbs::train {

const char* to_string(NormMode m) {
  switch (m) {
    case NormMode::kNone: return "none";
    case NormMode::kBatch: return "BN";
    case NormMode::kGroup: return "GN";
  }
  return "?";
}

SmallCnn::SmallCnn(const SmallCnnConfig& config) : config_(config) {
  util::Rng rng(config.seed);
  int c_in = config.in_channels;
  for (int c_out : config.stage_channels) {
    Stage s;
    const double fan_in = static_cast<double>(c_in) * 3 * 3;
    s.w = Tensor::randn({c_out, c_in, 3, 3}, rng, std::sqrt(2.0 / fan_in));
    s.b = Tensor({c_out});
    s.dw = Tensor(s.w.shape());
    s.db = Tensor({c_out});
    s.gamma = Tensor::full({c_out}, 1.0f);
    s.beta = Tensor({c_out});
    s.dgamma = Tensor({c_out});
    s.dbeta = Tensor({c_out});
    if (config.norm == NormMode::kGroup)
      assert(c_out % config.gn_groups == 0);
    stages_.push_back(std::move(s));
    c_in = c_out;
  }
  const int feat = config.stage_channels.back();
  fc_w = Tensor::randn({config.classes, feat}, rng, std::sqrt(2.0 / feat));
  fc_b = Tensor({config.classes});
  fc_dw = Tensor(fc_w.shape());
  fc_db = Tensor({config.classes});
}

Tensor SmallCnn::forward(const Tensor& x) {
  Tensor cur = x;
  for (std::size_t si = 0; si < stages_.size(); ++si) {
    Stage& s = stages_[si];
    s.x_in = cur;
    conv2d_forward_into(cur, s.w, s.b, /*stride=*/1, /*pad=*/1, &s.ccache,
                        s.conv_out);
    switch (config_.norm) {
      case NormMode::kNone:
        s.norm_out = s.conv_out;
        break;
      case NormMode::kBatch:
        s.norm_out = batchnorm_forward(s.conv_out, s.gamma, s.beta, s.ncache);
        break;
      case NormMode::kGroup:
        s.norm_out = groupnorm_forward(s.conv_out, s.gamma, s.beta,
                                       config_.gn_groups, s.ncache);
        break;
    }
    if (si == 0) first_preact_mean_ = s.norm_out.mean();
    if (si + 1 == stages_.size()) last_preact_mean_ = s.norm_out.mean();
    relu_forward_into(s.norm_out, s.relu_out);
    s.pool = maxpool_forward(s.relu_out, /*kernel=*/2, /*stride=*/2);
    cur = s.pool.y;
  }
  gap_in_shape_ = cur.shape();
  gap_out_ = global_avg_pool_forward(cur);
  return linear_forward(gap_out_, fc_w, fc_b);
}

void SmallCnn::backward(const Tensor& dlogits) {
  LinearGrads lg = linear_backward(gap_out_, fc_w, dlogits);
  fc_dw.axpy(1.0f, lg.dw);
  fc_db.axpy(1.0f, lg.dbias);
  Tensor d = global_avg_pool_backward(lg.dx, gap_in_shape_);

  for (std::size_t i = stages_.size(); i-- > 0;) {
    Stage& s = stages_[i];
    d = maxpool_backward(d, s.pool, s.relu_out.shape());
    relu_backward_inplace(d, s.relu_out);
    switch (config_.norm) {
      case NormMode::kNone:
        break;
      case NormMode::kBatch: {
        NormGrads ng = batchnorm_backward(d, s.gamma, s.ncache);
        s.dgamma.axpy(1.0f, ng.dgamma);
        s.dbeta.axpy(1.0f, ng.dbeta);
        d = std::move(ng.dx);
        break;
      }
      case NormMode::kGroup: {
        NormGrads ng = groupnorm_backward(d, s.gamma, config_.gn_groups,
                                          s.ncache);
        s.dgamma.axpy(1.0f, ng.dgamma);
        s.dbeta.axpy(1.0f, ng.dbeta);
        d = std::move(ng.dx);
        break;
      }
    }
    conv2d_backward_into(s.x_in, s.w, d, /*stride=*/1, /*pad=*/1,
                         /*need_dx=*/i > 0, &s.ccache, s.gscratch);
    s.dw.axpy(1.0f, s.gscratch.dw);
    s.db.axpy(1.0f, s.gscratch.dbias);
    // Swap rather than move: the scratch keeps a buffer (the old d) whose
    // capacity it reuses next step, so the backward stays allocation-free.
    if (i > 0) std::swap(d, s.gscratch.dx);
  }
}

void SmallCnn::zero_grad() {
  // One pool dispatch for all gradient buffers (they are disjoint, so the
  // partition is bit-irrelevant) instead of one per tensor.
  std::vector<Tensor*> gs;
  for (Stage& s : stages_) {
    gs.push_back(&s.dw);
    gs.push_back(&s.db);
    gs.push_back(&s.dgamma);
    gs.push_back(&s.dbeta);
  }
  gs.push_back(&fc_dw);
  gs.push_back(&fc_db);
  util::parallel_for(static_cast<std::int64_t>(gs.size()), 1,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         gs[static_cast<std::size_t>(i)]->zero();
                     });
}

std::vector<Tensor*> SmallCnn::parameters() {
  std::vector<Tensor*> out;
  for (Stage& s : stages_) {
    out.push_back(&s.w);
    out.push_back(&s.b);
    if (config_.norm != NormMode::kNone) {
      out.push_back(&s.gamma);
      out.push_back(&s.beta);
    }
  }
  out.push_back(&fc_w);
  out.push_back(&fc_b);
  return out;
}

std::vector<Tensor*> SmallCnn::gradients() {
  std::vector<Tensor*> out;
  for (Stage& s : stages_) {
    out.push_back(&s.dw);
    out.push_back(&s.db);
    if (config_.norm != NormMode::kNone) {
      out.push_back(&s.dgamma);
      out.push_back(&s.dbeta);
    }
  }
  out.push_back(&fc_dw);
  out.push_back(&fc_db);
  return out;
}

}  // namespace mbs::train
