#include "train/im2col.h"

#include <cassert>

namespace mbs::train {

namespace {

int out_dim(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

Tensor im2col(const Tensor& x, int kernel_h, int kernel_w, int stride,
              int pad_h, int pad_w) {
  assert(x.ndim() == 4);
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int oh = out_dim(ih, kernel_h, stride, pad_h);
  const int ow = out_dim(iw, kernel_w, stride, pad_w);
  const int k = ci * kernel_h * kernel_w;
  Tensor cols({n * oh * ow, k});
  std::int64_t row = 0;
  for (int b = 0; b < n; ++b)
    for (int yh = 0; yh < oh; ++yh)
      for (int yw = 0; yw < ow; ++yw, ++row) {
        std::int64_t col = 0;
        for (int c = 0; c < ci; ++c)
          for (int r = 0; r < kernel_h; ++r)
            for (int s = 0; s < kernel_w; ++s, ++col) {
              const int xh = yh * stride - pad_h + r;
              const int xw = yw * stride - pad_w + s;
              if (xh >= 0 && xh < ih && xw >= 0 && xw < iw)
                cols[row * k + col] = x.at(b, c, xh, xw);
            }
      }
  return cols;
}

Tensor col2im(const Tensor& cols, const std::vector<int>& x_shape,
              int kernel_h, int kernel_w, int stride, int pad_h, int pad_w) {
  const int n = x_shape[0], ci = x_shape[1], ih = x_shape[2], iw = x_shape[3];
  const int oh = out_dim(ih, kernel_h, stride, pad_h);
  const int ow = out_dim(iw, kernel_w, stride, pad_w);
  const int k = ci * kernel_h * kernel_w;
  assert(cols.dim(0) == n * oh * ow && cols.dim(1) == k);
  Tensor x(x_shape);
  std::int64_t row = 0;
  for (int b = 0; b < n; ++b)
    for (int yh = 0; yh < oh; ++yh)
      for (int yw = 0; yw < ow; ++yw, ++row) {
        std::int64_t col = 0;
        for (int c = 0; c < ci; ++c)
          for (int r = 0; r < kernel_h; ++r)
            for (int s = 0; s < kernel_w; ++s, ++col) {
              const int xh = yh * stride - pad_h + r;
              const int xw = yw * stride - pad_w + s;
              if (xh >= 0 && xh < ih && xw >= 0 && xw < iw)
                x.at(b, c, xh, xw) += cols[row * k + col];
            }
      }
  return x;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0));
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p) {
      const float av = a[static_cast<std::int64_t>(i) * k + p];
      if (av == 0.0f) continue;
      for (int j = 0; j < n; ++j)
        c[static_cast<std::int64_t>(i) * n + j] +=
            av * b[static_cast<std::int64_t>(p) * n + j];
    }
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1));
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0;
      for (int p = 0; p < k; ++p)
        acc += static_cast<double>(a[static_cast<std::int64_t>(i) * k + p]) *
               b[static_cast<std::int64_t>(j) * k + p];
      c[static_cast<std::int64_t>(i) * n + j] = static_cast<float>(acc);
    }
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(0) == b.dim(0));
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int p = 0; p < k; ++p)
    for (int i = 0; i < m; ++i) {
      const float av = a[static_cast<std::int64_t>(p) * m + i];
      if (av == 0.0f) continue;
      for (int j = 0; j < n; ++j)
        c[static_cast<std::int64_t>(i) * n + j] +=
            av * b[static_cast<std::int64_t>(p) * n + j];
    }
  return c;
}

Tensor conv2d_forward_im2col(const Tensor& x, const Tensor& w,
                             const Tensor& bias, int stride, int pad) {
  const int n = x.dim(0);
  const int co = w.dim(0), ci = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  const int oh = out_dim(x.dim(2), kh, stride, pad);
  const int ow = out_dim(x.dim(3), kw, stride, pad);

  // A [N*Ho*Wo, Ci*Kh*Kw]; B = W reshaped [Co, Ci*Kh*Kw], used transposed.
  const Tensor a = im2col(x, kh, kw, stride, pad, pad);
  Tensor w2({co, ci * kh * kw});
  for (std::int64_t i = 0; i < w.size(); ++i) w2[i] = w[i];
  const Tensor c = matmul_bt(a, w2);  // [N*Ho*Wo, Co]

  // Repack [N*Ho*Wo, Co] -> [N, Co, Ho, Wo] and add bias.
  Tensor y({n, co, oh, ow});
  std::int64_t row = 0;
  for (int b = 0; b < n; ++b)
    for (int yh = 0; yh < oh; ++yh)
      for (int yw = 0; yw < ow; ++yw, ++row)
        for (int o = 0; o < co; ++o)
          y.at(b, o, yh, yw) = c[row * co + o] + (bias.empty() ? 0.0f : bias[o]);
  return y;
}

Conv2dIm2colGrads conv2d_backward_im2col(const Tensor& x, const Tensor& w,
                                         const Tensor& dy, int stride,
                                         int pad) {
  const int n = x.dim(0);
  const int co = w.dim(0), ci = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  const int oh = dy.dim(2), ow = dy.dim(3);
  const std::int64_t k = static_cast<std::int64_t>(ci) * kh * kw;

  // dY as a [N*Ho*Wo, Co] matrix.
  Tensor dy2({n * oh * ow, co});
  std::int64_t row = 0;
  for (int b = 0; b < n; ++b)
    for (int yh = 0; yh < oh; ++yh)
      for (int yw = 0; yw < ow; ++yw, ++row)
        for (int o = 0; o < co; ++o)
          dy2[row * co + o] = dy.at(b, o, yh, yw);

  Conv2dIm2colGrads g;

  // Weight gradient (Tab. 1): [Ci*R*S, Co] = A^T [K, Gh]^T... computed as
  // im2col(x)^T * dY, then repacked to [Co, Ci, Kh, Kw].
  const Tensor a = im2col(x, kh, kw, stride, pad, pad);
  const Tensor dw2 = matmul_at(a, dy2);  // [Ci*Kh*Kw, Co]
  g.dw = Tensor({co, ci, kh, kw});
  for (std::int64_t i = 0; i < k; ++i)
    for (int o = 0; o < co; ++o)
      g.dw[static_cast<std::int64_t>(o) * k + i] = dw2[i * co + o];

  // Bias gradient: column sums of dY.
  g.dbias = Tensor({co});
  for (std::int64_t r2 = 0; r2 < dy2.dim(0); ++r2)
    for (int o = 0; o < co; ++o) g.dbias[o] += dy2[r2 * co + o];

  // Data gradient (Tab. 1): dA = dY * W [Gh, K], scattered back with col2im.
  Tensor w2({co, static_cast<int>(k)});
  for (std::int64_t i = 0; i < w.size(); ++i) w2[i] = w[i];
  const Tensor da = matmul(dy2, w2);  // [N*Ho*Wo, Ci*Kh*Kw]
  g.dx = col2im(da, x.shape(), kh, kw, stride, pad, pad);
  return g;
}

}  // namespace mbs::train
