// im2col lowering and the blocked GEMM family (the fast kernel layer).
//
// The GEMMs are cache-blocked over N (a packed B panel of kPanelCols
// columns) with a register-blocked kMR x kNR micro-kernel and parallelism
// over M row blocks on util::parallel_for. Bit-identity with the naive
// triple loops is by construction: every output element C[i,j] is computed
// by exactly one thread as a single pass over p = 0..K-1 in increasing
// order with the same accumulator type as the naive loop (float for
// matmul/matmul_at/matmul_bt_f32, double for matmul_bt), so the rounded
// operation sequence per element is unchanged at any thread count or tile
// size. The naive loops' `if (v == 0) continue` sparsity skips are dropped
// on the blocked path (the small-shape path keeps the seed's skip):
// for finite operands, adding a +/-0 term never changes a float
// accumulator that is not -0.0, and the accumulators here start at +0.0
// (or a bias that SGD can never drive to -0.0) and can never become -0.0
// — exact cancellation rounds to +0.0 and +/-0 terms preserve the sign —
// so the skip was a pure optimization, not a semantic. (The one exception
// is non-finite data: 0 * Inf is NaN where the skipping loop left the
// output untouched. A training run whose tensors hold Inf/NaN has already
// diverged, so the determinism contract is scoped to finite values.)
// Two dispatch refinements on top of the PR-3 design, both preserving the
// per-element operation sequence exactly: (1) small shapes (K < 128 and a
// C that fits in L1) skip the panel pack and tile machinery entirely —
// packing cost more than it saved there (BENCH_PR3: 0.88x at K=65) — and
// run direct loops instead; (2) the packed B panel is workspace-arena
// scratch (util::Arena), not a fresh std::vector, so the blocked path
// performs no heap allocation per call.
//
// PR 6 adds the ISA dispatch layer: the microkernels this file defines are
// the PORTABLE family (baseline target, compiler-autovectorized), and the
// blocked driver calls whichever detail::MicroKernels table
// active_microkernels() resolves — this one, or the explicit AVX2 family
// in gemm_avx2.cc (MBS_KERNEL overrides, CPUID decides by default). The
// small-shape fast path is shared by both ISAs (below the cutoff the pack
// machinery, not the arithmetic, dominates), so MBS_KERNEL only affects
// the blocked path. Both families honor the same per-element contract
// documented in gemm_microkernels.h, so the dispatch is bit-invisible.
#include "train/im2col.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>

#include "train/gemm_microkernels.h"
#include "util/arena.h"
#include "util/cpu.h"
#include "util/parallel.h"

namespace mbs::train {

namespace {

int out_dim(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

constexpr int kPanelCols = 64;  // packed B panel width (multiple of kNR)
constexpr int kMR = 4;          // micro-kernel rows
constexpr int kNR = 8;          // micro-kernel columns

/// Packs B columns [j0, j0+nc) of a [K,N] row-major matrix into
/// panel[p*nc + jj].
void pack_panel_kn(const float* b, std::int64_t n, int k, std::int64_t j0,
                   int nc, float* panel) {
  for (int p = 0; p < k; ++p)
    std::memcpy(panel + static_cast<std::int64_t>(p) * nc, b + p * n + j0,
                static_cast<std::size_t>(nc) * sizeof(float));
}

/// Packs rows [j0, j0+nc) of a [N,K] row-major matrix (columns of B^T)
/// into panel[p*nc + jj].
void pack_panel_nk(const float* b, int k, std::int64_t j0, int nc,
                   float* panel) {
  for (int jj = 0; jj < nc; ++jj) {
    const float* src = b + (j0 + jj) * k;
    for (int p = 0; p < k; ++p) panel[static_cast<std::int64_t>(p) * nc + jj] = src[p];
  }
}

/// Float micro-kernel: C rows [i0, i1) x panel columns [0, nc), K-major
/// single pass. A is addressed a[i*ars + p*acs] so the same kernel serves
/// both A-normal (ars=K, acs=1) and A-transposed (ars=1, acs=M) layouts.
/// init (length >= j0+nc) seeds each column's accumulator; null = 0.
void gemm_panel_f32(const float* a, std::int64_t ars, std::int64_t acs,
                    const float* panel, int k, int nc, const float* init,
                    std::int64_t j0, float* c, std::int64_t ldc,
                    std::int64_t i0, std::int64_t i1) {
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const int mr = static_cast<int>(i1 - i < kMR ? i1 - i : kMR);
    for (int j = 0; j < nc; j += kNR) {
      const int nr = nc - j < kNR ? nc - j : kNR;
      float acc[kMR][kNR];
      for (int ii = 0; ii < mr; ++ii)
        for (int jj = 0; jj < nr; ++jj)
          acc[ii][jj] = init ? init[j0 + j + jj] : 0.0f;
      const float* bp = panel + j;
      for (int p = 0; p < k; ++p, bp += nc) {
        float av[kMR];
        for (int ii = 0; ii < mr; ++ii) av[ii] = a[(i + ii) * ars + p * acs];
        for (int ii = 0; ii < mr; ++ii)
          for (int jj = 0; jj < nr; ++jj) acc[ii][jj] += av[ii] * bp[jj];
      }
      for (int ii = 0; ii < mr; ++ii)
        for (int jj = 0; jj < nr; ++jj)
          c[(i + ii) * ldc + j0 + j + jj] = acc[ii][jj];
    }
  }
}

/// Double-accumulator micro-kernel (matmul_bt semantics): the product is
/// computed in double — static_cast<double>(a) * b, as in the naive loop —
/// and the accumulator rounds to float only on the final store.
void gemm_panel_f64(const float* a, std::int64_t ars, std::int64_t acs,
                    const float* panel, int k, int nc, std::int64_t j0,
                    float* c, std::int64_t ldc, std::int64_t i0,
                    std::int64_t i1) {
  for (std::int64_t i = i0; i < i1; i += kMR) {
    const int mr = static_cast<int>(i1 - i < kMR ? i1 - i : kMR);
    for (int j = 0; j < nc; j += kNR) {
      const int nr = nc - j < kNR ? nc - j : kNR;
      double acc[kMR][kNR];
      for (int ii = 0; ii < mr; ++ii)
        for (int jj = 0; jj < nr; ++jj) acc[ii][jj] = 0.0;
      const float* bp = panel + j;
      for (int p = 0; p < k; ++p, bp += nc) {
        double av[kMR];
        for (int ii = 0; ii < mr; ++ii)
          av[ii] = static_cast<double>(a[(i + ii) * ars + p * acs]);
        for (int ii = 0; ii < mr; ++ii)
          for (int jj = 0; jj < nr; ++jj) acc[ii][jj] += av[ii] * bp[jj];
      }
      for (int ii = 0; ii < mr; ++ii)
        for (int jj = 0; jj < nr; ++jj)
          c[(i + ii) * ldc + j0 + j + jj] = static_cast<float>(acc[ii][jj]);
    }
  }
}

/// Row-block grain sized so a range is worth a pool dispatch.
std::int64_t row_grain(int k) {
  const std::int64_t g = 32768 / (k < 1 ? 1 : k);
  return g < kMR ? kMR : g;
}

/// Portable peak probe: 8 independent unfused scalar mul+add chains (the
/// exact op mix of the portable f32 kernels), autovectorized however the
/// baseline target allows. The AVX2 family carries its own FMA probe.
double peak_probe_gflops_portable() {
  constexpr int kChains = 8;
  constexpr std::int64_t kIters = 4000000;
  const float m = 0.999f, a = 1e-3f;
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {  // rep 0 is warm-up
    float acc[kChains];
    for (int r = 0; r < kChains; ++r)
      acc[r] = 1.0f + 0.01f * static_cast<float>(r);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t it = 0; it < kIters; ++it)
      for (int r = 0; r < kChains; ++r) acc[r] = acc[r] * m + a;
    const auto t1 = std::chrono::steady_clock::now();
    float total = 0;
    for (int r = 0; r < kChains; ++r) total += acc[r];
    volatile float escape = total;
    (void)escape;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double flops = static_cast<double>(kIters) * kChains * 2;
    if (rep > 0 && secs > 0) best = best > flops / secs ? best : flops / secs;
  }
  return best / 1e9;
}

enum class PanelLayout { kKN, kNK };

/// Shared blocked-GEMM driver: packs one B panel per column block into
/// workspace-arena scratch, then fans the M dimension across the pool.
/// The panel is over-allocated by detail::kPanelSlack floats so the AVX2
/// family's unmasked 8-wide loads on the last row's column tail stay in
/// bounds (the extra lanes are never stored).
template <typename Kernel>
void blocked_gemm(std::int64_t m, std::int64_t n, int k, PanelLayout layout,
                  const float* b, const detail::MicroKernels& mk,
                  const Kernel& kernel) {
  util::ArenaScope scope;
  float* panel = scope.floats(static_cast<std::int64_t>(k) *
                                  (n < kPanelCols ? n : kPanelCols) +
                              detail::kPanelSlack);
  for (std::int64_t j0 = 0; j0 < n; j0 += kPanelCols) {
    const int nc =
        static_cast<int>(n - j0 < kPanelCols ? n - j0 : kPanelCols);
    if (layout == PanelLayout::kKN)
      pack_panel_kn(b, n, k, j0, nc, panel);
    else
      mk.pack_nk(b, k, j0, nc, panel);
    util::parallel_for(m, row_grain(k),
                       [&](std::int64_t i0, std::int64_t i1) {
                         kernel(panel, nc, j0, i0, i1);
                       });
  }
}

// ---- Small-shape fast path --------------------------------------------------
// Below this cutoff the pack + register-tile machinery costs more than it
// saves; the direct loops keep the identical per-element K-order pass and
// accumulator types, so the dispatch threshold is bit-irrelevant.

bool small_gemm_shape(std::int64_t m, std::int64_t n, int k) {
  return k < 128 && m * n <= std::int64_t{32} * 1024;
}

/// Grain for row loops whose per-row cost is ~n*k.
std::int64_t small_row_grain(std::int64_t n, int k) {
  const std::int64_t cost = n * (k < 1 ? 1 : k);
  const std::int64_t g = 32768 / (cost < 1 ? 1 : cost);
  return g < 1 ? 1 : g;
}

/// B in [K,N] row-major: C rows accumulated in p order — the seed's naive
/// matmul loop nest verbatim, zero skip included (the skip only drops +/-0
/// addends, and measurably helps codegen even on dense data). A is
/// addressed a[i*ars + p*acs], serving both A-normal (matmul) and
/// A-transposed (matmul_at) callers.
void small_gemm_kn_f32(const float* a, std::int64_t ars, std::int64_t acs,
                       const float* b, std::int64_t m, std::int64_t n, int k,
                       float* c) {
  util::parallel_for(
      m, small_row_grain(n, k), [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          float* __restrict__ crow = c + i * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
          for (int p = 0; p < k; ++p) {
            const float av = a[i * ars + p * acs];
            if (av == 0.0f) continue;
            const float* __restrict__ brow =
                b + static_cast<std::int64_t>(p) * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
}

}  // namespace

// ---- ISA dispatch -----------------------------------------------------------

namespace detail {

const MicroKernels& portable_microkernels() {
  static const MicroKernels mk{gemm_panel_f32, gemm_panel_f64, pack_panel_nk,
                               peak_probe_gflops_portable};
  return mk;
}

namespace {

std::atomic<int> g_active_isa{-1};  // -1 = unresolved

util::KernelIsa resolved_isa() {
  int v = g_active_isa.load(std::memory_order_acquire);
  if (v < 0) {
    v = static_cast<int>(
        util::resolve_kernel_isa(avx2_microkernels() != nullptr));
    g_active_isa.store(v, std::memory_order_release);
  }
  return static_cast<util::KernelIsa>(v);
}

}  // namespace

const MicroKernels& active_microkernels() {
  return resolved_isa() == util::KernelIsa::kAvx2 ? *avx2_microkernels()
                                                  : portable_microkernels();
}

void reset_microkernel_dispatch() {
  g_active_isa.store(-1, std::memory_order_release);
}

double measured_peak_gflops() {
  // The machine's ceiling, not the active path's: portable roofline rows
  // report their fraction of the same hardware peak, which is exactly the
  // "what's left on the table" number. Measured once per process.
  static const double peak = [] {
    const MicroKernels* avx2 = avx2_microkernels();
    if (avx2 && util::cpu_supports_avx2()) return avx2->peak_probe();
    return portable_microkernels().peak_probe();
  }();
  return peak;
}

}  // namespace detail

util::KernelIsa active_gemm_isa() { return detail::resolved_isa(); }

Tensor im2col(const Tensor& x, int kernel_h, int kernel_w, int stride,
              int pad_h, int pad_w) {
  assert(x.ndim() == 4);
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int oh = out_dim(ih, kernel_h, stride, pad_h);
  const int ow = out_dim(iw, kernel_w, stride, pad_w);
  Tensor cols({n * oh * ow, ci * kernel_h * kernel_w});  // zero-initialized
  im2col_into(x, kernel_h, kernel_w, stride, pad_h, pad_w, cols.data());
  return cols;
}

void im2col_into(const Tensor& x, int kernel_h, int kernel_w, int stride,
                 int pad_h, int pad_w, float* cd) {
  assert(x.ndim() == 4);
  util::ScopedKernelTimer timer(util::KernelKind::kIm2col);
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int oh = out_dim(ih, kernel_h, stride, pad_h);
  const int ow = out_dim(iw, kernel_w, stride, pad_w);
  const int k = ci * kernel_h * kernel_w;
  const float* xd = x.data();
  util::parallel_for(
      static_cast<std::int64_t>(n) * oh * ow, row_grain(k),
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t row = begin; row < end; ++row) {
          const int b = static_cast<int>(row / (static_cast<std::int64_t>(oh) * ow));
          const int rest = static_cast<int>(row % (static_cast<std::int64_t>(oh) * ow));
          const int yh = rest / ow, yw = rest % ow;
          float* out = cd + row * k;
          const int xw0 = yw * stride - pad_w;
          const int s_lo = xw0 < 0 ? -xw0 : 0;
          const int s_hi = iw - xw0 < kernel_w ? iw - xw0 : kernel_w;
          for (int c = 0; c < ci; ++c)
            for (int r = 0; r < kernel_h; ++r) {
              const int xh = yh * stride - pad_h + r;
              if (xh < 0 || xh >= ih) continue;  // padded row stays zero
              const float* src =
                  xd + ((static_cast<std::int64_t>(b) * ci + c) * ih + xh) * iw +
                  xw0;
              float* dst = out + (static_cast<std::int64_t>(c) * kernel_h + r) *
                                     kernel_w;
              for (int s = s_lo; s < s_hi; ++s) dst[s] = src[s];
            }
        }
      });
}

Tensor col2im(const Tensor& cols, const std::vector<int>& x_shape,
              int kernel_h, int kernel_w, int stride, int pad_h, int pad_w) {
  util::ScopedKernelTimer timer(util::KernelKind::kIm2col);
  const int n = x_shape[0], ci = x_shape[1], ih = x_shape[2], iw = x_shape[3];
  const int oh = out_dim(ih, kernel_h, stride, pad_h);
  const int ow = out_dim(iw, kernel_w, stride, pad_w);
  const int k = ci * kernel_h * kernel_w;
  assert(cols.dim(0) == n * oh * ow && cols.dim(1) == k);
  Tensor x(x_shape);
  const float* cd = cols.data();
  float* xd = x.data();
  // The scatter-add stays inside one sample, so partitioning over samples
  // keeps every x element owned by one thread in unchanged (yh,yw,r,s)
  // accumulation order.
  util::parallel_for(n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b) {
      std::int64_t row = b * oh * ow;
      for (int yh = 0; yh < oh; ++yh)
        for (int yw = 0; yw < ow; ++yw, ++row) {
          const float* in = cd + row * k;
          const int xw0 = yw * stride - pad_w;
          const int s_lo = xw0 < 0 ? -xw0 : 0;
          const int s_hi = iw - xw0 < kernel_w ? iw - xw0 : kernel_w;
          for (int c = 0; c < ci; ++c)
            for (int r = 0; r < kernel_h; ++r) {
              const int xh = yh * stride - pad_h + r;
              if (xh < 0 || xh >= ih) continue;
              float* dst =
                  xd + ((b * ci + c) * ih + xh) * iw + xw0;
              const float* src =
                  in + (static_cast<std::int64_t>(c) * kernel_h + r) * kernel_w;
              for (int s = s_lo; s < s_hi; ++s) dst[s] += src[s];
            }
        }
    }
  });
  return x;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0));
  util::ScopedKernelTimer timer(util::KernelKind::kGemm);
  const std::int64_t m = a.dim(0), n = b.dim(1);
  const int k = a.dim(1);
  util::note_kernel_flops(2 * m * n * k);
  Tensor c({static_cast<int>(m), static_cast<int>(n)});
  const float* ad = a.data();
  float* cd = c.data();
  if (small_gemm_shape(m, n, k)) {
    small_gemm_kn_f32(ad, k, 1, b.data(), m, n, k, cd);
    return c;
  }
  const detail::MicroKernels& mk = detail::active_microkernels();
  blocked_gemm(m, n, k, PanelLayout::kKN, b.data(), mk,
               [&](const float* panel, int nc, std::int64_t j0,
                   std::int64_t i0, std::int64_t i1) {
                 mk.gemm_f32(ad, k, 1, panel, k, nc, nullptr, j0, cd, n, i0,
                             i1);
               });
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1));
  util::ScopedKernelTimer timer(util::KernelKind::kGemm);
  const std::int64_t m = a.dim(0), n = b.dim(0);
  const int k = a.dim(1);
  util::note_kernel_flops(2 * m * n * k);
  Tensor c({static_cast<int>(m), static_cast<int>(n)});
  const float* ad = a.data();
  float* cd = c.data();
  const detail::MicroKernels& mk = detail::active_microkernels();
  blocked_gemm(m, n, k, PanelLayout::kNK, b.data(), mk,
               [&](const float* panel, int nc, std::int64_t j0,
                   std::int64_t i0, std::int64_t i1) {
                 mk.gemm_f64(ad, k, 1, panel, k, nc, j0, cd, n, i0, i1);
               });
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(0) == b.dim(0));
  const std::int64_t m = a.dim(1), n = b.dim(1);
  Tensor c({static_cast<int>(m), static_cast<int>(n)});
  matmul_at_into(a.data(), m, b.data(), n, a.dim(0), c.data());
  return c;
}

void matmul_at_into(const float* a, std::int64_t m, const float* b,
                    std::int64_t n, int k, float* c) {
  util::ScopedKernelTimer timer(util::KernelKind::kGemm);
  util::note_kernel_flops(2 * m * n * k);
  if (small_gemm_shape(m, n, k)) {
    small_gemm_kn_f32(a, 1, m, b, m, n, k, c);
    return;
  }
  const detail::MicroKernels& mk = detail::active_microkernels();
  blocked_gemm(m, n, k, PanelLayout::kKN, b, mk,
               [&](const float* panel, int nc, std::int64_t j0,
                   std::int64_t i0, std::int64_t i1) {
                 mk.gemm_f32(a, 1, m, panel, k, nc, nullptr, j0, c, n, i0,
                             i1);
               });
}

Tensor matmul_bt_f32(const Tensor& a, const Tensor& b, const Tensor& init) {
  assert(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1));
  assert(init.empty() || init.size() == b.dim(0));
  const std::int64_t m = a.dim(0), n = b.dim(0);
  Tensor c({static_cast<int>(m), static_cast<int>(n)});
  matmul_bt_f32_into(a.data(), m, b.data(), n, a.dim(1),
                     init.empty() ? nullptr : init.data(), c.data());
  return c;
}

void matmul_bt_f32_into(const float* a, std::int64_t m, const float* b,
                        std::int64_t n, int k, const float* init, float* c) {
  util::ScopedKernelTimer timer(util::KernelKind::kGemm);
  util::note_kernel_flops(2 * m * n * k);
  const detail::MicroKernels& mk = detail::active_microkernels();
  blocked_gemm(m, n, k, PanelLayout::kNK, b, mk,
               [&](const float* panel, int nc, std::int64_t j0,
                   std::int64_t i0, std::int64_t i1) {
                 mk.gemm_f32(a, k, 1, panel, k, nc, init, j0, c, n, i0, i1);
               });
}

Tensor column_sums_f32(const Tensor& m) {
  assert(m.ndim() == 2);
  Tensor sums({m.dim(1)});
  column_sums_f32_into(m.data(), m.dim(0), m.dim(1), sums.data());
  return sums;
}

void column_sums_f32_into(const float* m, std::int64_t rows, int n,
                          float* out) {
  for (int j = 0; j < n; ++j) out[j] = 0.0f;
  for (std::int64_t r = 0; r < rows; ++r)
    for (int j = 0; j < n; ++j) out[j] += m[r * n + j];
}

Tensor nchw_to_rows(const Tensor& t) {
  assert(t.ndim() == 4);
  const int n = t.dim(0), c = t.dim(1);
  const std::int64_t hw = static_cast<std::int64_t>(t.dim(2)) * t.dim(3);
  Tensor rows({static_cast<int>(n * hw), c});
  nchw_to_rows_into(t, rows.data());
  return rows;
}

void nchw_to_rows_into(const Tensor& t, float* rd) {
  assert(t.ndim() == 4);
  const int c = t.dim(1);
  const std::int64_t hw = static_cast<std::int64_t>(t.dim(2)) * t.dim(3);
  const float* td = t.data();
  util::parallel_for(static_cast<std::int64_t>(t.dim(0)) * hw, row_grain(c),
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t row = begin; row < end; ++row) {
                         const std::int64_t b = row / hw, pos = row % hw;
                         for (int ch = 0; ch < c; ++ch)
                           rd[row * c + ch] = td[(b * c + ch) * hw + pos];
                       }
                     });
}

Tensor rows_to_nchw(const Tensor& rows, const std::vector<int>& shape4) {
  assert(rows.ndim() == 2 && shape4.size() == 4);
  assert(rows.dim(0) == static_cast<std::int64_t>(shape4[0]) * shape4[2] *
                            shape4[3] &&
         rows.dim(1) == shape4[1]);
  Tensor t(shape4);
  rows_to_nchw_into(rows.data(), t);
  return t;
}

void rows_to_nchw_into(const float* rd, Tensor& t) {
  assert(t.ndim() == 4);
  const int c = t.dim(1);
  const std::int64_t hw = static_cast<std::int64_t>(t.dim(2)) * t.dim(3);
  float* td = t.data();
  util::parallel_for(static_cast<std::int64_t>(t.dim(0)) * hw, row_grain(c),
                     [&](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t row = begin; row < end; ++row) {
                         const std::int64_t b = row / hw, pos = row % hw;
                         for (int ch = 0; ch < c; ++ch)
                           td[(b * c + ch) * hw + pos] = rd[row * c + ch];
                       }
                     });
}

Tensor kxn_to_conv_weights(const Tensor& m, int co, int ci, int kh, int kw) {
  assert(m.ndim() == 2 &&
         m.dim(0) == static_cast<std::int64_t>(ci) * kh * kw &&
         m.dim(1) == co);
  Tensor w({co, ci, kh, kw});
  kxn_to_conv_weights_into(m.data(), co, ci, kh, kw, w.data());
  return w;
}

void kxn_to_conv_weights_into(const float* md, int co, int ci, int kh, int kw,
                              float* wd) {
  const std::int64_t k = static_cast<std::int64_t>(ci) * kh * kw;
  for (std::int64_t i = 0; i < k; ++i)
    for (int o = 0; o < co; ++o)
      wd[static_cast<std::int64_t>(o) * k + i] = md[i * co + o];
}

Tensor conv2d_forward_im2col(const Tensor& x, const Tensor& w,
                             const Tensor& bias, int stride, int pad) {
  const int n = x.dim(0);
  const int co = w.dim(0), ci = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  const int oh = out_dim(x.dim(2), kh, stride, pad);
  const int ow = out_dim(x.dim(3), kw, stride, pad);

  // A [N*Ho*Wo, Ci*Kh*Kw]; B = W reshaped [Co, Ci*Kh*Kw], used transposed.
  const Tensor a = im2col(x, kh, kw, stride, pad, pad);
  Tensor w2({co, ci * kh * kw});
  std::memcpy(w2.data(), w.data(),
              static_cast<std::size_t>(w.size()) * sizeof(float));
  const Tensor c = matmul_bt(a, w2);  // [N*Ho*Wo, Co]

  // Repack [N*Ho*Wo, Co] -> [N, Co, Ho, Wo] and add bias.
  Tensor y = rows_to_nchw(c, {n, co, oh, ow});
  if (!bias.empty()) {
    const std::int64_t hw = static_cast<std::int64_t>(oh) * ow;
    float* yd = y.data();
    for (int b = 0; b < n; ++b)
      for (int o = 0; o < co; ++o) {
        float* row = yd + (static_cast<std::int64_t>(b) * co + o) * hw;
        for (std::int64_t i = 0; i < hw; ++i) row[i] += bias[o];
      }
  }
  return y;
}

Conv2dIm2colGrads conv2d_backward_im2col(const Tensor& x, const Tensor& w,
                                         const Tensor& dy, int stride,
                                         int pad) {
  const int co = w.dim(0), ci = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  const std::int64_t k = static_cast<std::int64_t>(ci) * kh * kw;

  // dY as a [N*Ho*Wo, Co] matrix.
  const Tensor dy2 = nchw_to_rows(dy);

  Conv2dIm2colGrads g;

  // Weight gradient (Tab. 1): im2col(x)^T * dY, repacked to [Co,Ci,Kh,Kw].
  const Tensor a = im2col(x, kh, kw, stride, pad, pad);
  g.dw = kxn_to_conv_weights(matmul_at(a, dy2), co, ci, kh, kw);

  // Bias gradient: column sums of dY.
  g.dbias = column_sums_f32(dy2);

  // Data gradient (Tab. 1): dA = dY * W [Gh, K], scattered back with col2im.
  Tensor w2({co, static_cast<int>(k)});
  std::memcpy(w2.data(), w.data(),
              static_cast<std::size_t>(w.size()) * sizeof(float));
  const Tensor da = matmul(dy2, w2);  // [N*Ho*Wo, Ci*Kh*Kw]
  g.dx = col2im(da, x.shape(), kh, kw, stride, pad, pad);
  return g;
}

}  // namespace mbs::train
