// A minimal dense float32 tensor for the functional training substrate.
//
// This is deliberately small: row-major storage, explicit shapes, no views,
// no autograd — each op in ops.h/norm.h implements its own backward pass.
// It exists so the repository can *run* the paper's Fig. 6 experiment
// (BN vs GN+MBS training) rather than only model it.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mbs::train {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
    data_.assign(static_cast<std::size_t>(count(shape_)), 0.0f);
  }

  /// Element count of `shape`. Negative dimensions and products that would
  /// overflow int64 abort with a message — explicitly, not via assert,
  /// so oversized shapes fail loudly in Release builds instead of wrapping
  /// into a small allocation (same policy as the serde length guard).
  static std::int64_t count(const std::vector<int>& shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  static Tensor full(std::vector<int> shape, float value) {
    Tensor t(std::move(shape));
    for (float& v : t.data_) v = value;
    return t;
  }

  /// Gaussian init with the given standard deviation (deterministic).
  static Tensor randn(std::vector<int> shape, util::Rng& rng,
                      double stddev = 1.0) {
    Tensor t(std::move(shape));
    for (float& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
  }

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const { return shape_[static_cast<std::size_t>(i)]; }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// 4-D accessor (NCHW).
  float& at(int n, int c, int h, int w) {
    return data_[static_cast<std::size_t>(idx4(n, c, h, w))];
  }
  float at(int n, int c, int h, int w) const {
    return data_[static_cast<std::size_t>(idx4(n, c, h, w))];
  }

  std::int64_t idx4(int n, int c, int h, int w) const {
    assert(ndim() == 4);
    return ((static_cast<std::int64_t>(n) * shape_[1] + c) * shape_[2] + h) *
               shape_[3] + w;
  }

  /// Reshapes in place, reusing the existing heap buffer whenever its
  /// capacity suffices (std::vector::assign semantics) — the step-persistent
  /// storage discipline of the kernel layer's zero-allocation contract.
  /// When the shape is unchanged this is a no-op and the CONTENTS ARE
  /// PRESERVED (a reused im2col buffer keeps its padding zeros); on a shape
  /// change the tensor is zero-filled like a freshly constructed one.
  /// The initializer_list overloads compare before materializing anything,
  /// so a steady-state call like ensure_shape({n, c, h, w}) touches no heap.
  void ensure_shape(const std::vector<int>& shape);
  void ensure_shape(std::initializer_list<int> shape);

  /// As ensure_shape, but always zero-filled — for scatter-add targets that
  /// must start from zero every call (e.g. the conv data gradient).
  void ensure_zeroed(const std::vector<int>& shape);
  void ensure_zeroed(std::initializer_list<int> shape);

  /// fill/axpy/scale are elementwise and run on the kernel pool (any range
  /// partition is bit-identical); implementations live in tensor.cc.
  void fill(float v);
  void zero() { fill(0.0f); }

  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);

  void scale(float alpha);

  /// Returns the batch slice [first, first+count) along dimension 0.
  Tensor slice_batch(int first, int count) const;

  double mean() const {
    if (data_.empty()) return 0.0;
    double s = 0;
    for (float v : data_) s += v;
    return s / static_cast<double>(data_.size());
  }

  double abs_max() const {
    double m = 0;
    for (float v : data_) m = std::max(m, static_cast<double>(v < 0 ? -v : v));
    return m;
  }

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace mbs::train
