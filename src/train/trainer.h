// Training loops: conventional full-mini-batch steps and MBS-serialized
// steps (sub-batches with gradient accumulation and one parameter update
// per mini-batch — Sec. 3's synchronization contract).
#pragma once

#include <vector>

#include "train/data.h"
#include "train/model.h"
#include "train/optim.h"

namespace mbs::train {

struct StepMetrics {
  double loss = 0;      ///< mean loss over the mini-batch
  double accuracy = 0;  ///< top-1 accuracy over the mini-batch
};

/// One optimizer step over (x, labels). `chunks` partitions the mini-batch
/// into sub-batches processed sequentially with gradient accumulation;
/// pass {N} for conventional (unserialized) execution. The parameter update
/// happens exactly once, after all chunks — MBS keeps the original
/// mini-batch synchronization points.
StepMetrics train_step(SmallCnn& model, Sgd& opt, const Tensor& x,
                       const std::vector<int>& labels,
                       const std::vector<int>& chunks);

/// Computes gradients only (no optimizer step); used by the equivalence
/// tests comparing serialized and unserialized execution.
StepMetrics compute_gradients(SmallCnn& model, const Tensor& x,
                              const std::vector<int>& labels,
                              const std::vector<int>& chunks);

struct EvalMetrics {
  double loss = 0;
  double error = 0;  ///< top-1 error rate in [0, 1]
};

EvalMetrics evaluate(SmallCnn& model, const Dataset& data, int batch = 64);

/// One epoch record for the Fig. 6 curves.
struct EpochLog {
  int epoch = 0;
  double train_loss = 0;
  double val_error = 0;         ///< percent
  double first_preact_mean = 0; ///< Fig. 6 right: first norm layer
  double last_preact_mean = 0;  ///< Fig. 6 right: last norm layer
};

struct TrainRunConfig {
  int epochs = 12;
  int batch = 32;
  SgdConfig sgd;
  /// Sub-batch chunk sizes per step; empty = unserialized.
  std::vector<int> chunks;
  /// Epochs at which the learning rate decays by `lr_decay`.
  std::vector<int> lr_decay_epochs;
  double lr_decay = 0.1;
  std::uint64_t shuffle_seed = 7;
};

/// Trains `model` on `train_set`, evaluating on `val_set` after each epoch.
std::vector<EpochLog> train_model(SmallCnn& model, const Dataset& train_set,
                                  const Dataset& val_set,
                                  const TrainRunConfig& config);

}  // namespace mbs::train
