#include "train/data.h"

#include <cmath>

namespace mbs::train {

Dataset make_synthetic_dataset(int n, int classes, int channels, int image,
                               std::uint64_t seed, double noise) {
  util::Rng rng(seed);
  Dataset d;
  d.classes = classes;
  d.images = Tensor({n, channels, image, image});
  d.labels.resize(static_cast<std::size_t>(n));

  const double pi = 3.14159265358979323846;
  for (int i = 0; i < n; ++i) {
    const int label = i % classes;
    d.labels[static_cast<std::size_t>(i)] = label;
    // Class signature: grating orientation/frequency plus a blob location.
    const double angle = pi * label / classes;
    const double freq = 2.0 * pi * (1.0 + label % 3) / image;
    const double bx = (0.25 + 0.5 * ((label / 2) % 2)) * image;
    const double by = (0.25 + 0.5 * (label % 2)) * image;
    const double phase = rng.uniform(0.0, 2.0 * pi);  // nuisance variation
    for (int c = 0; c < channels; ++c)
      for (int y = 0; y < image; ++y)
        for (int x = 0; x < image; ++x) {
          const double u = x * std::cos(angle) + y * std::sin(angle);
          const double grating = std::sin(freq * u + phase);
          const double dx = (x - bx) / (0.15 * image);
          const double dy = (y - by) / (0.15 * image);
          const double blob = std::exp(-(dx * dx + dy * dy));
          const double v = 0.7 * grating + 1.2 * blob + noise * rng.normal();
          d.images.at(i, c, y, x) = static_cast<float>(v);
        }
  }
  return d;
}

}  // namespace mbs::train
