#include "train/tensor.h"

#include <algorithm>
#include <cstring>

namespace mbs::train {

Tensor Tensor::slice_batch(int first, int count) const {
  assert(ndim() >= 1);
  assert(first >= 0 && first + count <= dim(0));
  std::vector<int> s = shape_;
  s[0] = count;
  Tensor out(std::move(s));
  const std::int64_t per = size() / dim(0);
  std::memcpy(out.data(), data() + static_cast<std::size_t>(first) * per,
              static_cast<std::size_t>(count * per) * sizeof(float));
  return out;
}

}  // namespace mbs::train
