#include "train/tensor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/parallel.h"

namespace mbs::train {

std::int64_t Tensor::count(const std::vector<int>& shape) {
  std::int64_t n = 1;
  for (int d : shape) {
    if (d < 0) {
      std::fprintf(stderr, "Tensor: negative dimension %d\n", d);
      std::abort();
    }
    if (d != 0 && n > std::numeric_limits<std::int64_t>::max() / d) {
      std::fprintf(stderr,
                   "Tensor: shape element count overflows int64 "
                   "(... * %lld * %d)\n",
                   static_cast<long long>(n), d);
      std::abort();
    }
    n *= d;
  }
  return n;
}

namespace {

template <typename Range>
bool same_shape(const std::vector<int>& shape, const Range& other) {
  return shape.size() == other.size() &&
         std::equal(other.begin(), other.end(), shape.begin());
}

}  // namespace

void Tensor::ensure_shape(const std::vector<int>& shape) {
  if (same_shape(shape_, shape)) return;
  shape_ = shape;
  data_.assign(static_cast<std::size_t>(count(shape_)),
               0.0f);  // reuses capacity
}

void Tensor::ensure_shape(std::initializer_list<int> shape) {
  if (same_shape(shape_, shape)) return;
  shape_.assign(shape.begin(), shape.end());
  data_.assign(static_cast<std::size_t>(count(shape_)), 0.0f);
}

void Tensor::ensure_zeroed(const std::vector<int>& shape) {
  if (same_shape(shape_, shape)) {
    // assign() would redundantly re-walk the buffer serially; the pooled
    // fill is bit-identical (zeros are zeros) and faster for large grads.
    fill(0.0f);
    return;
  }
  ensure_shape(shape);
}

void Tensor::ensure_zeroed(std::initializer_list<int> shape) {
  if (same_shape(shape_, shape)) {
    fill(0.0f);
    return;
  }
  ensure_shape(shape);
}

void Tensor::fill(float v) {
  float* d = data_.data();
  util::parallel_for(size(), 1 << 16,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i) d[i] = v;
                     });
}

void Tensor::axpy(float alpha, const Tensor& other) {
  assert(size() == other.size());
  float* d = data_.data();
  const float* o = other.data();
  util::parallel_for(size(), 1 << 15,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         d[i] += alpha * o[i];
                     });
}

void Tensor::scale(float alpha) {
  float* d = data_.data();
  util::parallel_for(size(), 1 << 16,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i) d[i] *= alpha;
                     });
}

Tensor Tensor::slice_batch(int first, int count) const {
  assert(ndim() >= 1);
  assert(first >= 0 && first + count <= dim(0));
  std::vector<int> s = shape_;
  s[0] = count;
  Tensor out(std::move(s));
  const std::int64_t per = size() / dim(0);
  std::memcpy(out.data(), data() + static_cast<std::size_t>(first) * per,
              static_cast<std::size_t>(count * per) * sizeof(float));
  return out;
}

}  // namespace mbs::train
