#include "train/resnet_model.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "util/parallel.h"

namespace mbs::train {

namespace {

Tensor he_conv(util::Rng& rng, int co, int ci, int k) {
  const double fan_in = static_cast<double>(ci) * k * k;
  return Tensor::randn({co, ci, k, k}, rng, std::sqrt(2.0 / fan_in));
}

NormCache empty_cache() { return {}; }

}  // namespace

SmallResNet::SmallResNet(const SmallResNetConfig& config) : config_(config) {
  util::Rng rng(config.seed);
  auto make_norm_params = [&](int c) {
    NormParams np;
    np.gamma = Tensor::full({c}, 1.0f);
    np.beta = Tensor({c});
    np.dgamma = Tensor({c});
    np.dbeta = Tensor({c});
    np.cache = empty_cache();
    return np;
  };

  stem_.w = he_conv(rng, config.stem_channels, config.in_channels, 3);
  stem_.dw = Tensor(stem_.w.shape());
  stem_.stride = 1;
  stem_norm_ = make_norm_params(config.stem_channels);

  int c_in = config.stem_channels;
  for (std::size_t s = 0; s < config.stage_channels.size(); ++s) {
    const int c_out = config.stage_channels[s];
    const int stride = s == 0 ? 1 : 2;
    ResBlock b;
    b.conv1.w = he_conv(rng, c_out, c_in, 3);
    b.conv1.dw = Tensor(b.conv1.w.shape());
    b.conv1.stride = stride;
    b.norm1 = make_norm_params(c_out);
    b.conv2.w = he_conv(rng, c_out, c_out, 3);
    b.conv2.dw = Tensor(b.conv2.w.shape());
    b.conv2.stride = 1;
    b.norm2 = make_norm_params(c_out);
    if (stride != 1 || c_in != c_out) {
      b.proj.w = he_conv(rng, c_out, c_in, 1);
      b.proj.dw = Tensor(b.proj.w.shape());
      b.proj.stride = stride;
      b.norm_proj = make_norm_params(c_out);
    }
    blocks_.push_back(std::move(b));
    c_in = c_out;
  }

  fc_w = Tensor::randn({config.classes, c_in}, rng, std::sqrt(2.0 / c_in));
  fc_b = Tensor({config.classes});
  fc_dw = Tensor(fc_w.shape());
  fc_db = Tensor({config.classes});
}

Tensor SmallResNet::norm_forward(NormParams& np, const Tensor& x) {
  switch (config_.norm) {
    case NormMode::kNone: return x;
    case NormMode::kBatch:
      return batchnorm_forward(x, np.gamma, np.beta, np.cache);
    case NormMode::kGroup:
      return groupnorm_forward(x, np.gamma, np.beta, config_.gn_groups,
                               np.cache);
  }
  return x;
}

Tensor SmallResNet::norm_backward(NormParams& np, const Tensor& dy) {
  switch (config_.norm) {
    case NormMode::kNone: return dy;
    case NormMode::kBatch: {
      NormGrads g = batchnorm_backward(dy, np.gamma, np.cache);
      np.dgamma.axpy(1.0f, g.dgamma);
      np.dbeta.axpy(1.0f, g.dbeta);
      return std::move(g.dx);
    }
    case NormMode::kGroup: {
      NormGrads g = groupnorm_backward(dy, np.gamma, config_.gn_groups,
                                       np.cache);
      np.dgamma.axpy(1.0f, g.dgamma);
      np.dbeta.axpy(1.0f, g.dbeta);
      return std::move(g.dx);
    }
  }
  return dy;
}

Tensor SmallResNet::forward(const Tensor& x) {
  stem_in_ = x;
  conv2d_forward_into(x, stem_.w, Tensor(), 1, 1, &stem_.cache,
                      stem_conv_out_);
  stem_norm_out_ = norm_forward(stem_norm_, stem_conv_out_);
  relu_forward_into(stem_norm_out_, stem_relu_out_);

  Tensor cur = stem_relu_out_;
  for (ResBlock& b : blocks_) {
    b.x_in = cur;
    conv2d_forward_into(cur, b.conv1.w, Tensor(), b.conv1.stride, 1,
                        &b.conv1.cache, b.c1_out);
    b.n1_out = norm_forward(b.norm1, b.c1_out);
    relu_forward_into(b.n1_out, b.r1_out);
    conv2d_forward_into(b.r1_out, b.conv2.w, Tensor(), 1, 1, &b.conv2.cache,
                        b.c2_out);
    b.n2_out = norm_forward(b.norm2, b.c2_out);
    if (!b.proj.w.empty()) {
      conv2d_forward_into(cur, b.proj.w, Tensor(), b.proj.stride, 0,
                          &b.proj.cache, b.proj_out);
      b.shortcut_out = norm_forward(b.norm_proj, b.proj_out);
    } else {
      b.shortcut_out = cur;
    }
    b.add_out = b.n2_out;
    b.add_out.axpy(1.0f, b.shortcut_out);
    relu_forward_into(b.add_out, b.relu_out);
    cur = b.relu_out;
  }

  gap_in_shape_ = cur.shape();
  gap_out_ = global_avg_pool_forward(cur);
  return linear_forward(gap_out_, fc_w, fc_b);
}

void SmallResNet::backward(const Tensor& dlogits) {
  LinearGrads lg = linear_backward(gap_out_, fc_w, dlogits);
  fc_dw.axpy(1.0f, lg.dw);
  fc_db.axpy(1.0f, lg.dbias);
  Tensor d = global_avg_pool_backward(lg.dx, gap_in_shape_);

  for (std::size_t i = blocks_.size(); i-- > 0;) {
    ResBlock& b = blocks_[i];
    relu_backward_inplace(d, b.relu_out);
    // Add backward: the gradient flows unchanged to both branches — the
    // routing MBS exploits (Sec. 3 "Back Propagation").
    Tensor d_main = d;
    Tensor d_short = d;

    d_main = norm_backward(b.norm2, d_main);
    conv2d_backward_into(b.r1_out, b.conv2.w, d_main, 1, 1, /*need_dx=*/true,
                         &b.conv2.cache, b.conv2.gscratch);
    b.conv2.dw.axpy(1.0f, b.conv2.gscratch.dw);
    // Swap rather than copy: d_main's old buffer (conv2's dy, same size
    // as its dx) circulates into the scratch, keeping the step
    // allocation-free; the in-place mask equals relu_backward exactly.
    std::swap(d_main, b.conv2.gscratch.dx);
    relu_backward_inplace(d_main, b.r1_out);
    d_main = norm_backward(b.norm1, d_main);
    conv2d_backward_into(b.x_in, b.conv1.w, d_main, b.conv1.stride, 1,
                         /*need_dx=*/true, &b.conv1.cache, b.conv1.gscratch);
    b.conv1.dw.axpy(1.0f, b.conv1.gscratch.dw);

    // Copy rather than move or swap: moving would leave the scratch
    // empty, and swapping would hand it d_main's buffer, which for
    // stride-2 blocks is half dx's size — the scratch would then regrow
    // inside the conv path every step. The copy itself allocates outside
    // the kernel timers (and only until d_in's capacity stabilizes).
    Tensor d_in = b.conv1.gscratch.dx;
    if (!b.proj.w.empty()) {
      d_short = norm_backward(b.norm_proj, d_short);
      conv2d_backward_into(b.x_in, b.proj.w, d_short, b.proj.stride, 0,
                           /*need_dx=*/true, &b.proj.cache, b.proj.gscratch);
      b.proj.dw.axpy(1.0f, b.proj.gscratch.dw);
      d_in.axpy(1.0f, b.proj.gscratch.dx);
    } else {
      d_in.axpy(1.0f, d_short);
    }
    d = std::move(d_in);
  }

  relu_backward_inplace(d, stem_relu_out_);
  d = norm_backward(stem_norm_, d);
  conv2d_backward_into(stem_in_, stem_.w, d, 1, 1, /*need_dx=*/false,
                       &stem_.cache, stem_.gscratch);
  stem_.dw.axpy(1.0f, stem_.gscratch.dw);
}

void SmallResNet::zero_grad() {
  // One pool dispatch for all gradient buffers (disjoint, so the partition
  // is bit-irrelevant) instead of one per tensor.
  std::vector<Tensor*> gs;
  auto add_norm = [&](NormParams& np) {
    gs.push_back(&np.dgamma);
    gs.push_back(&np.dbeta);
  };
  gs.push_back(&stem_.dw);
  add_norm(stem_norm_);
  for (ResBlock& b : blocks_) {
    gs.push_back(&b.conv1.dw);
    gs.push_back(&b.conv2.dw);
    if (!b.proj.w.empty()) gs.push_back(&b.proj.dw);
    add_norm(b.norm1);
    add_norm(b.norm2);
    if (!b.proj.w.empty()) add_norm(b.norm_proj);
  }
  gs.push_back(&fc_dw);
  gs.push_back(&fc_db);
  util::parallel_for(static_cast<std::int64_t>(gs.size()), 1,
                     [&](std::int64_t i0, std::int64_t i1) {
                       for (std::int64_t i = i0; i < i1; ++i)
                         gs[static_cast<std::size_t>(i)]->zero();
                     });
}

std::vector<Tensor*> SmallResNet::parameters() {
  std::vector<Tensor*> out{&stem_.w};
  auto add_norm = [&](NormParams& np) {
    if (config_.norm != NormMode::kNone) {
      out.push_back(&np.gamma);
      out.push_back(&np.beta);
    }
  };
  add_norm(stem_norm_);
  for (ResBlock& b : blocks_) {
    out.push_back(&b.conv1.w);
    add_norm(b.norm1);
    out.push_back(&b.conv2.w);
    add_norm(b.norm2);
    if (!b.proj.w.empty()) {
      out.push_back(&b.proj.w);
      add_norm(b.norm_proj);
    }
  }
  out.push_back(&fc_w);
  out.push_back(&fc_b);
  return out;
}

std::vector<Tensor*> SmallResNet::gradients() {
  std::vector<Tensor*> out{&stem_.dw};
  auto add_norm = [&](NormParams& np) {
    if (config_.norm != NormMode::kNone) {
      out.push_back(&np.dgamma);
      out.push_back(&np.dbeta);
    }
  };
  add_norm(stem_norm_);
  for (ResBlock& b : blocks_) {
    out.push_back(&b.conv1.dw);
    add_norm(b.norm1);
    out.push_back(&b.conv2.dw);
    add_norm(b.norm2);
    if (!b.proj.w.empty()) {
      out.push_back(&b.proj.dw);
      add_norm(b.norm_proj);
    }
  }
  out.push_back(&fc_dw);
  out.push_back(&fc_db);
  return out;
}

}  // namespace mbs::train
