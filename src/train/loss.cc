#include "train/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mbs::train {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  const int n = logits.dim(0);
  const int k = logits.dim(1);
  assert(static_cast<int>(labels.size()) == n);
  LossResult r;
  r.dlogits = Tensor(logits.shape());
  for (int b = 0; b < n; ++b) {
    const float* row = logits.data() + static_cast<std::int64_t>(b) * k;
    float mx = row[0];
    int arg = 0;
    for (int c = 1; c < k; ++c)
      if (row[c] > mx) {
        mx = row[c];
        arg = c;
      }
    double z = 0;
    for (int c = 0; c < k; ++c) z += std::exp(static_cast<double>(row[c] - mx));
    const int label = labels[static_cast<std::size_t>(b)];
    assert(label >= 0 && label < k);
    const double logp =
        static_cast<double>(row[label] - mx) - std::log(z);
    r.loss_sum += -logp;
    if (arg == label) ++r.correct;
    for (int c = 0; c < k; ++c) {
      const double p = std::exp(static_cast<double>(row[c] - mx)) / z;
      r.dlogits[static_cast<std::int64_t>(b) * k + c] =
          static_cast<float>(p - (c == label ? 1.0 : 0.0));
    }
  }
  return r;
}

}  // namespace mbs::train
