// Softmax cross-entropy loss.
#pragma once

#include <vector>

#include "train/tensor.h"

namespace mbs::train {

struct LossResult {
  double loss_sum = 0;   ///< summed (not averaged) over the batch
  Tensor dlogits;        ///< d(loss_sum)/d(logits)
  int correct = 0;       ///< top-1 correct predictions
};

/// Softmax cross-entropy over logits [N, classes]. Returns the *sum* of the
/// per-sample losses and its gradient, so MBS-style sub-batch accumulation
/// can divide by the full mini-batch size once (Sec. 3 "Data
/// Synchronization": all synchronization points stay at mini-batch scope).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

}  // namespace mbs::train
