// Explicit AVX2 microkernels for the blocked GEMM family.
//
// This is the only translation unit compiled with -mavx2 -mfma (plus
// -ffp-contract=off, see below); everything else targets baseline x86-64,
// so the library runs on any host and picks this family at runtime via
// detail::active_microkernels().
//
// Bit-identity with the portable family is the hard constraint, not a
// nicety: the committed fig06 golden stdout must be byte-identical on both
// dispatch paths. Two rules enforce it:
//
//  1. Same per-element operation sequence. Each C[i,j] is one in-order
//     pass over p = 0..K-1; vectorizing across j (8 columns per __m256)
//     changes which elements share an instruction, never the sequence of
//     rounded operations any single element sees.
//  2. Same roundings. The portable family compiles for plain x86-64,
//     which has no FMA instruction, so its float kernels round the
//     multiply and the add separately. The f32 kernels here therefore use
//     explicit _mm256_mul_ps + _mm256_add_ps — NOT _mm256_fmadd_ps — and
//     the TU is built with -ffp-contract=off so GCC (whose mul/add
//     intrinsics are plain vector expressions it would happily contract
//     under the default -ffp-contract=fast) cannot fuse them behind our
//     back. The f64 kernel DOES use _mm256_fmadd_pd: both factors are
//     exact float->double promotions, so the 48-bit product is exact in
//     double and fused vs. separate rounding give identical bits — there
//     FMA is a free throughput win.
//
// Tile shape: 4 rows x 16 columns (8 __m256 accumulators) for full f32
// tiles, stepping down to one 8-wide vector with a masked tail store for
// column remainders; 4 x 8 (8 __m256d accumulators) for f64. Column-tail
// B loads are unmasked — blocked_gemm over-allocates each panel by
// detail::kPanelSlack floats so they stay in bounds — and the garbage
// lanes are dropped by the masked store.
#include "train/gemm_microkernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <chrono>

namespace mbs::train::detail {

namespace {

using std::int64_t;

alignas(32) constexpr int kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                            0,  0,  0,  0,  0,  0,  0,  0};

/// Lane mask with the first r of 8 lanes enabled (1 <= r <= 8).
inline __m256i tail_mask(int r) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - r));
}

// ---- f32: 4 x 16 full tile --------------------------------------------------

template <int MR>
inline void tile_f32_x16(const float* a_base, int64_t ars, int64_t acs,
                         const float* bp, int k, int nc, const float* initp,
                         float* c, int64_t ldc) {
  __m256 acc0[MR], acc1[MR];
  for (int ii = 0; ii < MR; ++ii) {
    acc0[ii] = initp ? _mm256_loadu_ps(initp) : _mm256_setzero_ps();
    acc1[ii] = initp ? _mm256_loadu_ps(initp + 8) : _mm256_setzero_ps();
  }
  for (int p = 0; p < k; ++p, bp += nc) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    for (int ii = 0; ii < MR; ++ii) {
      const __m256 av = _mm256_set1_ps(a_base[ii * ars + p * acs]);
      acc0[ii] = _mm256_add_ps(acc0[ii], _mm256_mul_ps(av, b0));
      acc1[ii] = _mm256_add_ps(acc1[ii], _mm256_mul_ps(av, b1));
    }
  }
  for (int ii = 0; ii < MR; ++ii) {
    _mm256_storeu_ps(c + ii * ldc, acc0[ii]);
    _mm256_storeu_ps(c + ii * ldc + 8, acc1[ii]);
  }
}

// ---- f32: one 8-wide vector, optionally masked ------------------------------

template <int MR>
inline void tile_f32_x8(const float* a_base, int64_t ars, int64_t acs,
                        const float* bp, int k, int nc, const float* initp,
                        float* c, int64_t ldc, int nr) {
  const __m256i mask = tail_mask(nr);
  __m256 acc[MR];
  for (int ii = 0; ii < MR; ++ii)
    acc[ii] = initp ? _mm256_maskload_ps(initp, mask) : _mm256_setzero_ps();
  for (int p = 0; p < k; ++p, bp += nc) {
    const __m256 b0 = _mm256_loadu_ps(bp);  // panel slack keeps this in bounds
    for (int ii = 0; ii < MR; ++ii) {
      const __m256 av = _mm256_set1_ps(a_base[ii * ars + p * acs]);
      acc[ii] = _mm256_add_ps(acc[ii], _mm256_mul_ps(av, b0));
    }
  }
  if (nr == 8) {
    for (int ii = 0; ii < MR; ++ii) _mm256_storeu_ps(c + ii * ldc, acc[ii]);
  } else {
    for (int ii = 0; ii < MR; ++ii)
      _mm256_maskstore_ps(c + ii * ldc, mask, acc[ii]);
  }
}

void gemm_panel_f32_avx2(const float* a, int64_t ars, int64_t acs,
                         const float* panel, int k, int nc, const float* init,
                         int64_t j0, float* c, int64_t ldc, int64_t i0,
                         int64_t i1) {
  for (int64_t i = i0; i < i1; i += 4) {
    const int mr = static_cast<int>(i1 - i < 4 ? i1 - i : 4);
    const float* a_base = a + i * ars;
    float* crow = c + i * ldc + j0;
    int j = 0;
    for (; j + 16 <= nc; j += 16) {
      const float* ip = init ? init + j0 + j : nullptr;
      switch (mr) {
        case 4: tile_f32_x16<4>(a_base, ars, acs, panel + j, k, nc, ip, crow + j, ldc); break;
        case 3: tile_f32_x16<3>(a_base, ars, acs, panel + j, k, nc, ip, crow + j, ldc); break;
        case 2: tile_f32_x16<2>(a_base, ars, acs, panel + j, k, nc, ip, crow + j, ldc); break;
        default: tile_f32_x16<1>(a_base, ars, acs, panel + j, k, nc, ip, crow + j, ldc); break;
      }
    }
    for (; j < nc; j += 8) {
      const int nr = nc - j < 8 ? nc - j : 8;
      const float* ip = init ? init + j0 + j : nullptr;
      switch (mr) {
        case 4: tile_f32_x8<4>(a_base, ars, acs, panel + j, k, nc, ip, crow + j, ldc, nr); break;
        case 3: tile_f32_x8<3>(a_base, ars, acs, panel + j, k, nc, ip, crow + j, ldc, nr); break;
        case 2: tile_f32_x8<2>(a_base, ars, acs, panel + j, k, nc, ip, crow + j, ldc, nr); break;
        default: tile_f32_x8<1>(a_base, ars, acs, panel + j, k, nc, ip, crow + j, ldc, nr); break;
      }
    }
  }
}

// ---- f64: 4 x 8 tile (two __m256d per row), optionally masked ---------------

template <int MR>
inline void tile_f64_x8(const float* a_base, int64_t ars, int64_t acs,
                        const float* bp, int k, int nc, float* c, int64_t ldc,
                        int nr) {
  const __m256i mask = tail_mask(nr);
  __m256d lo[MR], hi[MR];
  for (int ii = 0; ii < MR; ++ii) {
    lo[ii] = _mm256_setzero_pd();
    hi[ii] = _mm256_setzero_pd();
  }
  for (int p = 0; p < k; ++p, bp += nc) {
    const __m256 bv = _mm256_loadu_ps(bp);  // panel slack keeps this in bounds
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bv));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bv, 1));
    for (int ii = 0; ii < MR; ++ii) {
      const __m256d av =
          _mm256_set1_pd(static_cast<double>(a_base[ii * ars + p * acs]));
      lo[ii] = _mm256_fmadd_pd(av, blo, lo[ii]);  // exact product: fuse freely
      hi[ii] = _mm256_fmadd_pd(av, bhi, hi[ii]);
    }
  }
  for (int ii = 0; ii < MR; ++ii) {
    const __m256 f =
        _mm256_set_m128(_mm256_cvtpd_ps(hi[ii]), _mm256_cvtpd_ps(lo[ii]));
    if (nr == 8)
      _mm256_storeu_ps(c + ii * ldc, f);
    else
      _mm256_maskstore_ps(c + ii * ldc, mask, f);
  }
}

void gemm_panel_f64_avx2(const float* a, int64_t ars, int64_t acs,
                         const float* panel, int k, int nc, int64_t j0,
                         float* c, int64_t ldc, int64_t i0, int64_t i1) {
  for (int64_t i = i0; i < i1; i += 4) {
    const int mr = static_cast<int>(i1 - i < 4 ? i1 - i : 4);
    const float* a_base = a + i * ars;
    float* crow = c + i * ldc + j0;
    for (int j = 0; j < nc; j += 8) {
      const int nr = nc - j < 8 ? nc - j : 8;
      switch (mr) {
        case 4: tile_f64_x8<4>(a_base, ars, acs, panel + j, k, nc, crow + j, ldc, nr); break;
        case 3: tile_f64_x8<3>(a_base, ars, acs, panel + j, k, nc, crow + j, ldc, nr); break;
        case 2: tile_f64_x8<2>(a_base, ars, acs, panel + j, k, nc, crow + j, ldc, nr); break;
        default: tile_f64_x8<1>(a_base, ars, acs, panel + j, k, nc, crow + j, ldc, nr); break;
      }
    }
  }
}

// ---- NK pack: 8x8 in-register transpose -------------------------------------

/// Transposes the 8x8 block at rows[t][p..p+7] into out columns: after the
/// shuffle network, row q of the result holds element p+q of all 8 input
/// rows. Pure data movement — bitwise equal to the scalar pack by
/// construction.
inline void transpose8x8(const float* src, int64_t stride, float* panel,
                         int nc) {
  const __m256 r0 = _mm256_loadu_ps(src + 0 * stride);
  const __m256 r1 = _mm256_loadu_ps(src + 1 * stride);
  const __m256 r2 = _mm256_loadu_ps(src + 2 * stride);
  const __m256 r3 = _mm256_loadu_ps(src + 3 * stride);
  const __m256 r4 = _mm256_loadu_ps(src + 4 * stride);
  const __m256 r5 = _mm256_loadu_ps(src + 5 * stride);
  const __m256 r6 = _mm256_loadu_ps(src + 6 * stride);
  const __m256 r7 = _mm256_loadu_ps(src + 7 * stride);
  const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
  const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
  const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
  const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
  const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
  const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
  const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
  const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  _mm256_storeu_ps(panel + 0 * nc, _mm256_permute2f128_ps(u0, u4, 0x20));
  _mm256_storeu_ps(panel + 1 * nc, _mm256_permute2f128_ps(u1, u5, 0x20));
  _mm256_storeu_ps(panel + 2 * nc, _mm256_permute2f128_ps(u2, u6, 0x20));
  _mm256_storeu_ps(panel + 3 * nc, _mm256_permute2f128_ps(u3, u7, 0x20));
  _mm256_storeu_ps(panel + 4 * nc, _mm256_permute2f128_ps(u0, u4, 0x31));
  _mm256_storeu_ps(panel + 5 * nc, _mm256_permute2f128_ps(u1, u5, 0x31));
  _mm256_storeu_ps(panel + 6 * nc, _mm256_permute2f128_ps(u2, u6, 0x31));
  _mm256_storeu_ps(panel + 7 * nc, _mm256_permute2f128_ps(u3, u7, 0x31));
}

void pack_panel_nk_avx2(const float* b, int k, int64_t j0, int nc,
                        float* panel) {
  int jj = 0;
  for (; jj + 8 <= nc; jj += 8) {
    const float* rows = b + (j0 + jj) * static_cast<int64_t>(k);
    int p = 0;
    // The vector store of transposed row p+q covers panel columns
    // [jj, jj+8) — in bounds because jj+8 <= nc; the last row p+7 < k by
    // the loop bound, so no slack is needed here.
    for (; p + 8 <= k; p += 8)
      transpose8x8(rows + p, k, panel + static_cast<int64_t>(p) * nc + jj, nc);
    for (; p < k; ++p)
      for (int t = 0; t < 8; ++t)
        panel[static_cast<int64_t>(p) * nc + jj + t] =
            rows[static_cast<int64_t>(t) * k + p];
  }
  for (; jj < nc; ++jj) {
    const float* src = b + (j0 + jj) * static_cast<int64_t>(k);
    for (int p = 0; p < k; ++p)
      panel[static_cast<int64_t>(p) * nc + jj] = src[p];
  }
}

// ---- Measured FMA roofline ceiling ------------------------------------------

/// One core's FMA throughput, measured with 10 independent 8-lane fused
/// chains (enough to cover FMA latency x 2 ports on every recent x86).
/// This is the ceiling the roofline rows report fractions of — including
/// for the f32 GEMMs, whose unfused mul+add can at best tie it.
double peak_probe_gflops_avx2() {
  constexpr int kChains = 10;
  constexpr int64_t kIters = 600000;  // ~100 MFLOP per rep
  const __m256 m = _mm256_set1_ps(0.999f);
  const __m256 a = _mm256_set1_ps(1e-3f);
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {  // rep 0 is warm-up
    __m256 acc[kChains];
    for (int r = 0; r < kChains; ++r)
      acc[r] = _mm256_set1_ps(1.0f + 0.01f * static_cast<float>(r));
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t it = 0; it < kIters; ++it)
      for (int r = 0; r < kChains; ++r)
        acc[r] = _mm256_fmadd_ps(acc[r], m, a);
    const auto t1 = std::chrono::steady_clock::now();
    float sink[8];
    __m256 total = acc[0];
    for (int r = 1; r < kChains; ++r) total = _mm256_add_ps(total, acc[r]);
    _mm256_storeu_ps(sink, total);
    volatile float escape = sink[0];
    (void)escape;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double flops =
        static_cast<double>(kIters) * kChains * 8 * 2;  // 8 lanes, 2 flops/fma
    if (rep > 0 && secs > 0) best = best > flops / secs ? best : flops / secs;
  }
  return best / 1e9;
}

}  // namespace

const MicroKernels* avx2_microkernels() {
  static const MicroKernels mk{gemm_panel_f32_avx2, gemm_panel_f64_avx2,
                               pack_panel_nk_avx2, peak_probe_gflops_avx2};
  return &mk;
}

}  // namespace mbs::train::detail

#else  // !(__AVX2__ && __FMA__): stub so the library links on any target

namespace mbs::train::detail {

const MicroKernels* avx2_microkernels() { return nullptr; }

}  // namespace mbs::train::detail

#endif
