// Transformer-family encoders expressed in the shape-level core::Layer /
// core::Block vocabulary, so the MBS scheduler, traffic model, and
// simulator sweep them exactly like the CNN zoo (ROADMAP: "new workloads
// through the engine").
//
// Mapping (documented in docs/WORKLOADS.md):
//  * The token sequence is a spatial grid: a ViT patch embedding produces
//    {d_model, H/patch, W/patch} and every token-wise linear layer is a
//    1x1 convolution over that grid; a text-style encoder uses {d_model,
//    seq_len, 1} directly.
//  * Each encoder layer is two pre-norm residual Blocks merged by Add
//    (no post-add ReLU — the blocks are built without the CNN helper's
//    trailing activation): an attention block [norm, qkv 1x1 conv d->3d,
//    score 1x1 conv 3d->tokens, softmax stand-in act, context 1x1 conv
//    tokens->d, output 1x1 conv d->d] and an MLP block [norm, 1x1 conv
//    d->ratio*d, act, 1x1 conv ratio*d->d].
//  * Approximations, deliberate and small: the score/context convolutions
//    stand in for the QK^T and A*V activation-activation GEMMs, so their
//    "weights" (4*d*tokens per layer, a few percent of real layer
//    parameters) model the K/V operands, and the score GEMM's FLOPs are
//    3x the real QK^T (it consumes the packed 3d query row). Softmax
//    backward is modeled like a ReLU mask. All projection/MLP parameter
//    counts and FLOPs are exact.
#pragma once

#include <string>

#include "core/network.h"
#include "core/shape.h"

namespace mbs::models {

/// Everything that defines one Transformer-family encoder.
struct TransformerConfig {
  std::string name;                       ///< Network::name
  core::FeatureShape input{3, 224, 224};  ///< raw per-sample input
  /// Patch-embedding size. > 0: ViT-style patchify stem (conv
  /// patch x patch / patch) + norm over `input`. 0: `input` is already a
  /// {d_model, tokens, 1} embedded sequence and no stem is emitted.
  int patch = 16;
  int d_model = 768;    ///< token embedding width
  int depth = 12;       ///< encoder layers (each = attention + MLP block)
  int mlp_ratio = 4;    ///< MLP hidden width as a multiple of d_model
  /// Classification head: > 0 emits [norm, global-avg-pool, fc]; 0 emits a
  /// final norm only (text-style encoder).
  int num_classes = 1000;
  int mini_batch_per_core = 32;  ///< evaluation mini-batch (Sec. 5 default)
};

/// Builds the encoder described by `cfg`. Aborts (via core::Block::check)
/// on inconsistent configurations.
core::Network make_transformer(const TransformerConfig& cfg);

/// ViT-B/16 on 224x224: d=768, 12 layers, 196 tokens (~93M modeled params).
core::Network make_vit_base();

/// ViT-S/16 on 224x224: d=384, 12 layers, 196 tokens (~25M modeled params).
core::Network make_vit_small();

/// Text-style post-embedding encoder: d=512, 6 layers over a 192-token
/// sequence, no patch stem, final-norm head.
core::Network make_transformer_base();

}  // namespace mbs::models
