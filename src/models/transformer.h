// Transformer-family encoders expressed in the shape-level core::Layer /
// core::Block vocabulary, so the MBS scheduler, traffic model, and
// simulator sweep them exactly like the CNN zoo (ROADMAP: "new workloads
// through the engine").
//
// Mapping (documented in docs/WORKLOADS.md):
//  * The token sequence is a spatial grid: a ViT patch embedding produces
//    {d_model, H/patch, W/patch} and every token-wise linear layer is a
//    1x1 convolution over that grid; a text-style encoder uses {d_model,
//    seq_len, 1} directly.
//  * Each encoder layer is two pre-norm residual Blocks merged by Add
//    (no post-add ReLU — the blocks are built without the CNN helper's
//    trailing activation): an attention block [norm, qkv 1x1 conv d->3d,
//    multi-head attention (core::LayerKind::kAttention), output 1x1 conv
//    d->d] and an MLP block [norm, 1x1 conv d->ratio*d, act, 1x1 conv
//    ratio*d->d].
//  * The attention layer is the real thing: Q.K^T and softmax(P).V are
//    activation-activation GEMMs with no resident weights, the per-sample
//    heads x S x S score matrix is a first-class footprint/traffic term,
//    and the softmax runs on the vector unit. Parameter counts and FLOPs
//    are exact (the pre-PR-10 stand-in carried ~3x QK^T phantom FLOPs and
//    4*d*S phantom params per layer).
#pragma once

#include <string>

#include "core/network.h"
#include "core/shape.h"

namespace mbs::models {

/// Everything that defines one Transformer-family encoder.
struct TransformerConfig {
  std::string name;                       ///< Network::name
  core::FeatureShape input{3, 224, 224};  ///< raw per-sample input
  /// Patch-embedding size. > 0: ViT-style patchify stem (conv
  /// patch x patch / patch) + norm over `input`. 0: `input` is already a
  /// {d_model, tokens, 1} embedded sequence and no stem is emitted.
  int patch = 16;
  int d_model = 768;    ///< token embedding width
  int depth = 12;       ///< encoder layers (each = attention + MLP block)
  int heads = 12;       ///< attention heads (d_model must divide evenly)
  int mlp_ratio = 4;    ///< MLP hidden width as a multiple of d_model
  /// Classification head: > 0 emits [norm, global-avg-pool, fc]; 0 emits a
  /// final norm only (text-style encoder).
  int num_classes = 1000;
  int mini_batch_per_core = 32;  ///< evaluation mini-batch (Sec. 5 default)
};

/// Builds the encoder described by `cfg`. Aborts (via core::Block::check)
/// on inconsistent configurations.
core::Network make_transformer(const TransformerConfig& cfg);

/// ViT-B/16 on 224x224: d=768, 12 layers, 12 heads, 196 tokens (86.3M
/// params, matching the reference 86.6M to within 1%). `seq` > 0 overrides
/// the token count (must be a perfect square g*g; the input becomes
/// 16g x 16g); 0 keeps the 224x224 default.
core::Network make_vit_base(int seq = 0);

/// ViT-S/16 on 224x224: d=384, 12 layers, 6 heads, 196 tokens (~22M
/// params). `seq` as in make_vit_base.
core::Network make_vit_small(int seq = 0);

/// Text-style post-embedding encoder: d=512, 6 layers, 8 heads over a
/// 192-token sequence, no patch stem, final-norm head. `seq` > 0 overrides
/// the sequence length directly; 0 keeps 192.
core::Network make_transformer_base(int seq = 0);

}  // namespace mbs::models
