// ResNet-50/101/152 (He et al., 2016) for 224x224 inputs, built with
// bottleneck residual blocks. The stride-2 downsampling sits on the 3x3
// convolution (the widely deployed "v1.5" variant) and shortcuts project
// with a 1x1 convolution whenever shape changes.
#pragma once

#include "core/network.h"

namespace mbs::models {

/// Builds ResNet with `depth` in {50, 101, 152}. Mini-batch per core
/// defaults to 32 (Sec. 5). Aborts on unsupported depth.
core::Network make_resnet(int depth, int mini_batch_per_core = 32);

}  // namespace mbs::models
