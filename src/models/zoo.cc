#include "models/zoo.h"

#include <cstdio>
#include <cstdlib>

#include "models/alexnet.h"
#include "models/inception_v3.h"
#include "models/inception_v4.h"
#include "models/resnet.h"

namespace mbs::models {

core::Network make_network(const std::string& name) {
  if (name == "resnet50") return make_resnet(50);
  if (name == "resnet101") return make_resnet(101);
  if (name == "resnet152") return make_resnet(152);
  if (name == "inception_v3") return make_inception_v3();
  if (name == "inception_v4") return make_inception_v4();
  if (name == "alexnet") return make_alexnet();
  std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
  std::abort();
}

std::vector<std::string> evaluated_network_names() {
  return {"resnet50",     "resnet101",    "resnet152",
          "inception_v3", "inception_v4", "alexnet"};
}

std::vector<core::Network> all_evaluated_networks() {
  std::vector<core::Network> nets;
  for (const auto& name : evaluated_network_names())
    nets.push_back(make_network(name));
  return nets;
}

}  // namespace mbs::models
