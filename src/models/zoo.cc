#include "models/zoo.h"

#include <cstdio>
#include <cstdlib>

#include "models/alexnet.h"
#include "models/inception_v3.h"
#include "models/inception_v4.h"
#include "models/resnet.h"
#include "models/transformer.h"

namespace mbs::models {

core::Network make_network(const std::string& name) {
  if (name == "resnet50") return make_resnet(50);
  if (name == "resnet101") return make_resnet(101);
  if (name == "resnet152") return make_resnet(152);
  if (name == "inception_v3") return make_inception_v3();
  if (name == "inception_v4") return make_inception_v4();
  if (name == "alexnet") return make_alexnet();
  if (name == "vit_small") return make_vit_small();
  if (name == "vit_base") return make_vit_base();
  if (name == "transformer_base") return make_transformer_base();
  std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
  std::abort();
}

std::vector<std::string> evaluated_network_names() {
  return {"resnet50",     "resnet101",    "resnet152",
          "inception_v3", "inception_v4", "alexnet"};
}

std::vector<std::string> transformer_network_names() {
  return {"vit_small", "vit_base", "transformer_base"};
}

std::vector<std::string> all_network_names() {
  std::vector<std::string> names = evaluated_network_names();
  for (auto& name : transformer_network_names())
    names.push_back(std::move(name));
  return names;
}

std::vector<core::Network> all_evaluated_networks() {
  std::vector<core::Network> nets;
  for (const auto& name : evaluated_network_names())
    nets.push_back(make_network(name));
  return nets;
}

}  // namespace mbs::models
