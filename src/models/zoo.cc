#include "models/zoo.h"

#include <cstdio>
#include <cstdlib>

#include "models/alexnet.h"
#include "models/inception_v3.h"
#include "models/inception_v4.h"
#include "models/resnet.h"
#include "models/transformer.h"

namespace mbs::models {

core::Network make_network(const std::string& name) {
  return make_network(name, 0);
}

core::Network make_network(const std::string& name, int seq) {
  if (name == "vit_small") return make_vit_small(seq);
  if (name == "vit_base") return make_vit_base(seq);
  if (name == "transformer_base") return make_transformer_base(seq);
  if (seq > 0) {
    std::fprintf(stderr, "network '%s' has no sequence-length axis\n",
                 name.c_str());
    std::abort();
  }
  if (name == "resnet50") return make_resnet(50);
  if (name == "resnet101") return make_resnet(101);
  if (name == "resnet152") return make_resnet(152);
  if (name == "inception_v3") return make_inception_v3();
  if (name == "inception_v4") return make_inception_v4();
  if (name == "alexnet") return make_alexnet();
  std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
  std::abort();
}

bool is_transformer_network(const std::string& name) {
  for (const std::string& t : transformer_network_names())
    if (name == t) return true;
  return false;
}

bool valid_sequence_length(const std::string& name, int seq,
                           std::string* why) {
  if (seq == 0) return true;
  if (seq < 0) {
    if (why) *why = "seq must be >= 0";
    return false;
  }
  if (!is_transformer_network(name)) {
    if (why) *why = "network '" + name + "' has no sequence-length axis";
    return false;
  }
  if (name == "vit_small" || name == "vit_base") {
    int g = 0;
    while ((g + 1) * (g + 1) <= seq) ++g;
    if (g * g != seq) {
      if (why)
        *why = "seq for '" + name +
               "' must be a perfect square (tokens form a patch grid), got " +
               std::to_string(seq);
      return false;
    }
  }
  return true;
}

std::vector<std::string> evaluated_network_names() {
  return {"resnet50",     "resnet101",    "resnet152",
          "inception_v3", "inception_v4", "alexnet"};
}

std::vector<std::string> transformer_network_names() {
  return {"vit_small", "vit_base", "transformer_base"};
}

std::vector<std::string> all_network_names() {
  std::vector<std::string> names = evaluated_network_names();
  for (auto& name : transformer_network_names())
    names.push_back(std::move(name));
  return names;
}

std::vector<core::Network> all_evaluated_networks() {
  std::vector<core::Network> nets;
  for (const auto& name : evaluated_network_names())
    nets.push_back(make_network(name));
  return nets;
}

}  // namespace mbs::models
