// Shared helpers for model builders: the conv -> norm -> relu triple used
// throughout the evaluated CNNs (Fig. 2's "Conv Norm phi" pattern).
#pragma once

#include <string>
#include <vector>

#include "core/layer.h"

namespace mbs::models {

using core::FeatureShape;
using core::Layer;
using core::NormKind;
using core::PoolKind;

/// Appends conv (no bias) + norm + ReLU to `chain`; returns the output shape.
inline FeatureShape conv_norm_act(std::vector<Layer>& chain,
                                  const std::string& name, FeatureShape in,
                                  int out_c, int kernel_h, int kernel_w,
                                  int stride, int pad_h, int pad_w) {
  chain.push_back(core::make_conv(name + ".conv", in, out_c, kernel_h,
                                  kernel_w, stride, pad_h, pad_w));
  const FeatureShape out = chain.back().out;
  chain.push_back(core::make_norm(name + ".norm", out));
  chain.push_back(core::make_act(name + ".relu", out));
  return out;
}

/// Square-kernel convenience overload.
inline FeatureShape conv_norm_act(std::vector<Layer>& chain,
                                  const std::string& name, FeatureShape in,
                                  int out_c, int kernel, int stride, int pad) {
  return conv_norm_act(chain, name, in, out_c, kernel, kernel, stride, pad,
                       pad);
}

/// Appends conv + norm (no activation — the residual merge applies ReLU
/// after the Add); returns the output shape.
inline FeatureShape conv_norm(std::vector<Layer>& chain,
                              const std::string& name, FeatureShape in,
                              int out_c, int kernel, int stride, int pad) {
  chain.push_back(core::make_conv(name + ".conv", in, out_c, kernel, kernel,
                                  stride, pad, pad));
  const FeatureShape out = chain.back().out;
  chain.push_back(core::make_norm(name + ".norm", out));
  return out;
}

}  // namespace mbs::models
