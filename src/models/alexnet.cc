#include "models/alexnet.h"

#include <string>
#include <vector>

#include "models/common.h"

namespace mbs::models {

namespace {

using Chain = std::vector<Layer>;

FeatureShape conv_act(Chain& chain, const std::string& name, FeatureShape in,
                      int out_c, int kernel, int stride, int pad) {
  chain.push_back(core::make_conv(name + ".conv", in, out_c, kernel, kernel,
                                  stride, pad, pad, /*bias=*/true));
  const FeatureShape out = chain.back().out;
  chain.push_back(core::make_act(name + ".relu", out));
  return out;
}

}  // namespace

core::Network make_alexnet(int mini_batch_per_core) {
  core::Network net;
  net.name = "AlexNet";
  net.input = FeatureShape{3, 224, 224};
  net.mini_batch_per_core = mini_batch_per_core;

  auto push_conv = [&](const std::string& name, FeatureShape in, int out_c,
                       int kernel, int stride, int pad) {
    Chain chain;
    conv_act(chain, name, in, out_c, kernel, stride, pad);
    net.blocks.push_back(core::make_simple_block(name, std::move(chain)));
    return net.blocks.back().out;
  };
  auto push_pool = [&](const std::string& name, FeatureShape in) {
    net.blocks.push_back(core::make_simple_block(
        name, {core::make_pool(name, in, 3, 2, 0, PoolKind::kMax)}));
    return net.blocks.back().out;
  };

  FeatureShape cur = push_conv("conv1", net.input, 64, 11, 4, 2);  // 55x55
  cur = push_pool("pool1", cur);                                   // 27x27
  cur = push_conv("conv2", cur, 192, 5, 1, 2);                     // 27x27
  cur = push_pool("pool2", cur);                                   // 13x13
  cur = push_conv("conv3", cur, 384, 3, 1, 1);
  cur = push_conv("conv4", cur, 256, 3, 1, 1);
  cur = push_conv("conv5", cur, 256, 3, 1, 1);
  cur = push_pool("pool5", cur);  // 6x6x256

  auto push_fc = [&](const std::string& name, std::int64_t in_features,
                     int out_features, bool relu) {
    Chain chain;
    chain.push_back(core::make_fc(name, in_features, out_features));
    if (relu) chain.push_back(core::make_act(name + ".relu", chain.back().out));
    net.blocks.push_back(core::make_simple_block(name, std::move(chain)));
    return net.blocks.back().out;
  };
  cur = push_fc("fc6", cur.elements(), 4096, true);
  cur = push_fc("fc7", cur.elements(), 4096, true);
  push_fc("fc8", cur.elements(), 1000, false);

  net.check();
  return net;
}

}  // namespace mbs::models
