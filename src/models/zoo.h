// Registry of every network the reproduction can evaluate: the six CNNs of
// the paper (Sec. 5) plus the Transformer-family additions, all reachable
// through one `make_network(name)` entry point so engine scenario grids can
// sweep any of them.
#pragma once

#include <string>
#include <vector>

#include "core/network.h"

namespace mbs::models {

/// Builds a network by name. CNN zoo: "resnet50", "resnet101", "resnet152",
/// "inception_v3", "inception_v4", "alexnet". Transformer family:
/// "vit_small", "vit_base", "transformer_base". Aborts on unknown names.
core::Network make_network(const std::string& name);

/// Builds a network by name with a sequence-length override. `seq` == 0 is
/// exactly make_network(name); `seq` > 0 is only valid for the Transformer
/// family (ViTs additionally require a perfect square) and aborts for CNNs,
/// which have no sequence axis.
core::Network make_network(const std::string& name, int seq);

/// True for the Transformer-family names (the networks that accept a
/// sequence-length override and whose modeled content changed when real
/// attention replaced the PR-5 stand-ins).
bool is_transformer_network(const std::string& name);

/// Whether `seq` is a sequence-length override make_network(name, seq)
/// accepts: 0 always (the default length), > 0 only for the Transformer
/// family, and for ViTs only perfect squares (the tokens form a patch
/// grid). Returns false and fills *why (when non-null) otherwise — the
/// abort-free precheck for query paths (serve, sweep binaries) where
/// make_network's assert would kill the process.
bool valid_sequence_length(const std::string& name, int seq,
                           std::string* why);

/// Names of the six networks the paper evaluates, in its presentation
/// order. This list feeds the paper-figure grids, so it never grows —
/// additions go to transformer_network_names() / all_network_names().
std::vector<std::string> evaluated_network_names();

/// Names of the Transformer-family additions (docs/WORKLOADS.md walks
/// through how they are expressed in the core vocabulary).
std::vector<std::string> transformer_network_names();

/// Every registered network name: evaluated CNNs first, then the
/// Transformer family. The list new-workload benches (pareto_sweep,
/// schedule_explorer) accept.
std::vector<std::string> all_network_names();

/// Builds all six paper-evaluated networks.
std::vector<core::Network> all_evaluated_networks();

}  // namespace mbs::models
