// Registry of every network the reproduction can evaluate: the six CNNs of
// the paper (Sec. 5) plus the Transformer-family additions, all reachable
// through one `make_network(name)` entry point so engine scenario grids can
// sweep any of them.
#pragma once

#include <string>
#include <vector>

#include "core/network.h"

namespace mbs::models {

/// Builds a network by name. CNN zoo: "resnet50", "resnet101", "resnet152",
/// "inception_v3", "inception_v4", "alexnet". Transformer family:
/// "vit_small", "vit_base", "transformer_base". Aborts on unknown names.
core::Network make_network(const std::string& name);

/// Names of the six networks the paper evaluates, in its presentation
/// order. This list feeds the paper-figure grids, so it never grows —
/// additions go to transformer_network_names() / all_network_names().
std::vector<std::string> evaluated_network_names();

/// Names of the Transformer-family additions (docs/WORKLOADS.md walks
/// through how they are expressed in the core vocabulary).
std::vector<std::string> transformer_network_names();

/// Every registered network name: evaluated CNNs first, then the
/// Transformer family. The list new-workload benches (pareto_sweep,
/// schedule_explorer) accept.
std::vector<std::string> all_network_names();

/// Builds all six paper-evaluated networks.
std::vector<core::Network> all_evaluated_networks();

}  // namespace mbs::models
