// Registry of the CNNs evaluated in the paper (Sec. 5).
#pragma once

#include <string>
#include <vector>

#include "core/network.h"

namespace mbs::models {

/// Builds a network by name: "resnet50", "resnet101", "resnet152",
/// "inception_v3", "inception_v4", "alexnet". Aborts on unknown names.
core::Network make_network(const std::string& name);

/// Names of all evaluated networks, in the paper's presentation order.
std::vector<std::string> evaluated_network_names();

/// Builds all six evaluated networks.
std::vector<core::Network> all_evaluated_networks();

}  // namespace mbs::models
