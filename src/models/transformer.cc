#include "models/transformer.h"

#include <cassert>
#include <utility>
#include <vector>

#include "models/common.h"

namespace mbs::models {

namespace {

using core::Block;
using core::BlockKind;
using core::Branch;

/// A pre-norm residual block: `main` plus an identity shortcut merged by a
/// bare Add. Transformers apply no activation after the residual sum, so
/// this deliberately skips core::make_residual_block's trailing ReLU.
Block make_pre_norm_residual(std::string name, FeatureShape in,
                             std::vector<Layer> main) {
  assert(!main.empty());
  Block b;
  b.kind = BlockKind::kResidual;
  b.name = std::move(name);
  b.in = in;
  b.out = main.back().out;
  b.branches.push_back(Branch{std::move(main)});
  b.branches.push_back(Branch{});  // identity shortcut
  b.merge.push_back(core::make_add(b.name + ".add", b.out));
  b.check();
  return b;
}

/// Token-wise linear projection: a 1x1 convolution over the token grid.
Layer token_linear(const std::string& name, FeatureShape in, int out_c) {
  return core::make_conv(name, in, out_c, /*kernel=*/1, /*stride=*/1,
                         /*pad=*/0);
}

/// Self-attention block over a {d, gh, gw} token grid (tokens = gh * gw):
/// pre-norm, packed QKV projection, the multi-head attention layer (real
/// Q.K^T / softmax / P.V, no resident weights), and the output projection.
Block make_attention_block(const std::string& name, FeatureShape in,
                           int heads) {
  const int d = in.c;
  std::vector<Layer> main;
  main.push_back(core::make_norm(name + ".norm", in));
  main.push_back(token_linear(name + ".qkv", in, 3 * d));
  main.push_back(core::make_attention(name + ".attn", main.back().out, heads));
  main.push_back(token_linear(name + ".proj", main.back().out, d));
  return make_pre_norm_residual(name, in, std::move(main));
}

/// MLP block: pre-norm, expand to ratio*d, GELU stand-in act, project back.
Block make_mlp_block(const std::string& name, FeatureShape in, int ratio) {
  const int d = in.c;
  std::vector<Layer> main;
  main.push_back(core::make_norm(name + ".norm", in));
  main.push_back(token_linear(name + ".fc1", in, ratio * d));
  main.push_back(core::make_act(name + ".act", main.back().out));
  main.push_back(token_linear(name + ".fc2", main.back().out, d));
  return make_pre_norm_residual(name, in, std::move(main));
}

}  // namespace

core::Network make_transformer(const TransformerConfig& cfg) {
  assert(cfg.d_model > 0 && cfg.depth > 0 && cfg.mlp_ratio > 0);
  assert(cfg.heads > 0 && cfg.d_model % cfg.heads == 0);

  core::Network net;
  net.name = cfg.name;
  net.input = cfg.input;
  net.mini_batch_per_core = cfg.mini_batch_per_core;

  FeatureShape cur = cfg.input;
  if (cfg.patch > 0) {
    // Patchify stem: non-overlapping patch x patch convolution, then the
    // embedding norm. This is the network's first GEMM (its data gradient
    // is skipped by the traffic model like every first layer).
    std::vector<Layer> stem;
    stem.push_back(core::make_conv("patch_embed.conv", cur, cfg.d_model,
                                   cfg.patch, cfg.patch, /*pad=*/0));
    stem.push_back(core::make_norm("patch_embed.norm", stem.back().out));
    cur = stem.back().out;
    net.blocks.push_back(
        core::make_simple_block("patch_embed", std::move(stem)));
  } else {
    assert(cfg.input.c == cfg.d_model &&
           "patch == 0 requires a pre-embedded {d_model, tokens, 1} input");
  }

  for (int layer = 0; layer < cfg.depth; ++layer) {
    const std::string prefix = "enc" + std::to_string(layer);
    net.blocks.push_back(
        make_attention_block(prefix + ".attn", cur, cfg.heads));
    net.blocks.push_back(make_mlp_block(prefix + ".mlp", cur, cfg.mlp_ratio));
  }

  if (cfg.num_classes > 0) {
    std::vector<Layer> head;
    head.push_back(core::make_norm("head.norm", cur));
    head.push_back(core::make_global_avg_pool("head.pool", cur));
    head.push_back(core::make_fc("head.fc", cfg.d_model, cfg.num_classes));
    net.blocks.push_back(core::make_simple_block("head", std::move(head)));
  } else {
    net.blocks.push_back(core::make_simple_block(
        "final_norm", {core::make_norm("final_norm", cur)}));
  }

  net.check();
  return net;
}

namespace {

/// Applies a ViT sequence-length override: `seq` must be a perfect square
/// g*g, and the raw input grows/shrinks to patch*g x patch*g so the patch
/// stem emits exactly `seq` tokens.
void apply_vit_seq(TransformerConfig* cfg, int seq) {
  if (seq <= 0) return;
  int g = 1;
  while (g * g < seq) ++g;
  assert(g * g == seq && "ViT sequence length must be a perfect square");
  cfg->input = FeatureShape{3, cfg->patch * g, cfg->patch * g};
}

}  // namespace

core::Network make_vit_base(int seq) {
  TransformerConfig cfg;
  cfg.name = "ViT-Base/16";
  apply_vit_seq(&cfg, seq);
  return make_transformer(cfg);
}

core::Network make_vit_small(int seq) {
  TransformerConfig cfg;
  cfg.name = "ViT-Small/16";
  cfg.d_model = 384;
  cfg.heads = 6;
  apply_vit_seq(&cfg, seq);
  return make_transformer(cfg);
}

core::Network make_transformer_base(int seq) {
  TransformerConfig cfg;
  cfg.name = "TransformerBase";
  cfg.input = FeatureShape{512, seq > 0 ? seq : 192, 1};
  cfg.patch = 0;
  cfg.d_model = 512;
  cfg.depth = 6;
  cfg.heads = 8;
  cfg.num_classes = 0;
  return make_transformer(cfg);
}

}  // namespace mbs::models
