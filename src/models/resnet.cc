#include "models/resnet.h"

#include <array>
#include <cassert>
#include <string>

#include "models/common.h"

namespace mbs::models {

namespace {

/// Builds one bottleneck residual block: 1x1 reduce, 3x3 (carries stride),
/// 1x1 expand, with a projection shortcut when shape changes.
core::Block make_bottleneck(const std::string& name, FeatureShape in,
                            int planes, int stride) {
  const int out_c = planes * 4;

  std::vector<Layer> main;
  FeatureShape cur = conv_norm_act(main, name + ".a", in, planes, 1, 1, 0);
  cur = conv_norm_act(main, name + ".b", cur, planes, 3, stride, 1);
  cur = conv_norm(main, name + ".c", cur, out_c, 1, 1, 0);

  std::vector<Layer> shortcut;
  if (stride != 1 || in.c != out_c)
    conv_norm(shortcut, name + ".proj", in, out_c, 1, stride, 0);

  return core::make_residual_block(name, in, std::move(main),
                                   std::move(shortcut));
}

}  // namespace

core::Network make_resnet(int depth, int mini_batch_per_core) {
  std::array<int, 4> stage_blocks{};
  switch (depth) {
    case 50: stage_blocks = {3, 4, 6, 3}; break;
    case 101: stage_blocks = {3, 4, 23, 3}; break;
    case 152: stage_blocks = {3, 8, 36, 3}; break;
    default: assert(false && "supported depths: 50, 101, 152");
  }

  core::Network net;
  net.name = "ResNet" + std::to_string(depth);
  net.input = FeatureShape{3, 224, 224};
  net.mini_batch_per_core = mini_batch_per_core;

  // Stem: 7x7/2 convolution then 3x3/2 max pooling.
  std::vector<Layer> stem;
  FeatureShape cur = conv_norm_act(stem, "stem", net.input, 64, 7, 2, 3);
  net.blocks.push_back(core::make_simple_block("stem", std::move(stem)));
  net.blocks.push_back(core::make_simple_block(
      "maxpool",
      {core::make_pool("maxpool", cur, 3, 2, 1, PoolKind::kMax)}));
  cur = net.blocks.back().out;

  const std::array<int, 4> planes{64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int i = 0; i < stage_blocks[static_cast<std::size_t>(stage)]; ++i) {
      const int stride = (stage > 0 && i == 0) ? 2 : 1;
      const std::string name =
          "res" + std::to_string(stage + 2) + "." + std::to_string(i);
      net.blocks.push_back(make_bottleneck(
          name, cur, planes[static_cast<std::size_t>(stage)], stride));
      cur = net.blocks.back().out;
    }
  }

  net.blocks.push_back(core::make_simple_block(
      "avgpool", {core::make_global_avg_pool("avgpool", cur)}));
  cur = net.blocks.back().out;
  net.blocks.push_back(core::make_simple_block(
      "fc", {core::make_fc("fc", cur.elements(), 1000)}));

  net.check();
  return net;
}

}  // namespace mbs::models
