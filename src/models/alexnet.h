// AlexNet (Krizhevsky et al., 2012), single-column variant for 224x224
// inputs. Convolutions carry biases and there are no normalization layers,
// matching the paper's characterization of AlexNet as having "mostly
// convolution layers with few memory-BW bound layers" (Sec. 6).
#pragma once

#include "core/network.h"

namespace mbs::models {

core::Network make_alexnet(int mini_batch_per_core = 64);

}  // namespace mbs::models
