// Inception v4 (Szegedy et al., 2017) for 299x299 inputs. As with the v3
// builder, nested splits inside Inception-C modules are flattened into
// sibling branches (see inception_v3.h for the rationale).
#pragma once

#include "core/network.h"

namespace mbs::models {

core::Network make_inception_v4(int mini_batch_per_core = 32);

}  // namespace mbs::models
