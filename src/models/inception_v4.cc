#include "models/inception_v4.h"

#include <string>
#include <vector>

#include "models/common.h"

namespace mbs::models {

namespace {

using Chain = std::vector<Layer>;

Chain pool_proj_branch(const std::string& name, FeatureShape in, int out_c) {
  Chain chain;
  chain.push_back(core::make_pool(name + ".pool", in, 3, 1, 1, PoolKind::kAvg));
  conv_norm_act(chain, name + ".proj", chain.back().out, out_c, 1, 1, 0);
  return chain;
}

/// 35x35 module (output 384 channels).
core::Block inception_a(const std::string& name, FeatureShape in) {
  Chain b1;
  conv_norm_act(b1, name + ".b1", in, 96, 1, 1, 0);

  Chain b2;
  FeatureShape cur = conv_norm_act(b2, name + ".b2a", in, 64, 1, 1, 0);
  conv_norm_act(b2, name + ".b2b", cur, 96, 3, 1, 1);

  Chain b3;
  cur = conv_norm_act(b3, name + ".b3a", in, 64, 1, 1, 0);
  cur = conv_norm_act(b3, name + ".b3b", cur, 96, 3, 1, 1);
  conv_norm_act(b3, name + ".b3c", cur, 96, 3, 1, 1);

  return core::make_inception_block(
      name, in,
      {std::move(b1), std::move(b2), std::move(b3),
       pool_proj_branch(name + ".b4", in, 96)});
}

/// 35x35 -> 17x17 reduction (output 1024 channels).
core::Block reduction_a(const std::string& name, FeatureShape in) {
  Chain b1;
  conv_norm_act(b1, name + ".b1", in, 384, 3, 2, 0);

  Chain b2;
  FeatureShape cur = conv_norm_act(b2, name + ".b2a", in, 192, 1, 1, 0);
  cur = conv_norm_act(b2, name + ".b2b", cur, 224, 3, 1, 1);
  conv_norm_act(b2, name + ".b2c", cur, 256, 3, 2, 0);

  Chain b3;
  b3.push_back(core::make_pool(name + ".b3.pool", in, 3, 2, 0, PoolKind::kMax));

  return core::make_inception_block(
      name, in, {std::move(b1), std::move(b2), std::move(b3)});
}

/// 17x17 module (output 1024 channels).
core::Block inception_b(const std::string& name, FeatureShape in) {
  Chain b1;
  conv_norm_act(b1, name + ".b1", in, 384, 1, 1, 0);

  Chain b2;
  FeatureShape cur = conv_norm_act(b2, name + ".b2a", in, 192, 1, 1, 0);
  cur = conv_norm_act(b2, name + ".b2b", cur, 224, 1, 7, 1, 0, 3);
  conv_norm_act(b2, name + ".b2c", cur, 256, 7, 1, 1, 3, 0);

  Chain b3;
  cur = conv_norm_act(b3, name + ".b3a", in, 192, 1, 1, 0);
  cur = conv_norm_act(b3, name + ".b3b", cur, 192, 7, 1, 1, 3, 0);
  cur = conv_norm_act(b3, name + ".b3c", cur, 224, 1, 7, 1, 0, 3);
  cur = conv_norm_act(b3, name + ".b3d", cur, 224, 7, 1, 1, 3, 0);
  conv_norm_act(b3, name + ".b3e", cur, 256, 1, 7, 1, 0, 3);

  return core::make_inception_block(
      name, in,
      {std::move(b1), std::move(b2), std::move(b3),
       pool_proj_branch(name + ".b4", in, 128)});
}

/// 17x17 -> 8x8 reduction (output 1536 channels).
core::Block reduction_b(const std::string& name, FeatureShape in) {
  Chain b1;
  FeatureShape cur = conv_norm_act(b1, name + ".b1a", in, 192, 1, 1, 0);
  conv_norm_act(b1, name + ".b1b", cur, 192, 3, 2, 0);

  Chain b2;
  cur = conv_norm_act(b2, name + ".b2a", in, 256, 1, 1, 0);
  cur = conv_norm_act(b2, name + ".b2b", cur, 256, 1, 7, 1, 0, 3);
  cur = conv_norm_act(b2, name + ".b2c", cur, 320, 7, 1, 1, 3, 0);
  conv_norm_act(b2, name + ".b2d", cur, 320, 3, 2, 0);

  Chain b3;
  b3.push_back(core::make_pool(name + ".b3.pool", in, 3, 2, 0, PoolKind::kMax));

  return core::make_inception_block(
      name, in, {std::move(b1), std::move(b2), std::move(b3)});
}

/// 8x8 module (output 1536 channels); nested splits flattened.
core::Block inception_c(const std::string& name, FeatureShape in) {
  Chain b1;
  conv_norm_act(b1, name + ".b1", in, 256, 1, 1, 0);

  Chain b2a;
  FeatureShape cur = conv_norm_act(b2a, name + ".b2", in, 384, 1, 1, 0);
  conv_norm_act(b2a, name + ".b2h", cur, 256, 1, 3, 1, 0, 1);
  Chain b2b;
  cur = conv_norm_act(b2b, name + ".b2'", in, 384, 1, 1, 0);
  conv_norm_act(b2b, name + ".b2v", cur, 256, 3, 1, 1, 1, 0);

  Chain b3a;
  cur = conv_norm_act(b3a, name + ".b3a", in, 384, 1, 1, 0);
  cur = conv_norm_act(b3a, name + ".b3b", cur, 448, 3, 1, 1, 1, 0);
  cur = conv_norm_act(b3a, name + ".b3c", cur, 512, 1, 3, 1, 0, 1);
  conv_norm_act(b3a, name + ".b3h", cur, 256, 1, 3, 1, 0, 1);
  Chain b3b;
  cur = conv_norm_act(b3b, name + ".b3a'", in, 384, 1, 1, 0);
  cur = conv_norm_act(b3b, name + ".b3b'", cur, 448, 3, 1, 1, 1, 0);
  cur = conv_norm_act(b3b, name + ".b3c'", cur, 512, 1, 3, 1, 0, 1);
  conv_norm_act(b3b, name + ".b3v", cur, 256, 3, 1, 1, 1, 0);

  return core::make_inception_block(
      name, in,
      {std::move(b1), std::move(b2a), std::move(b2b), std::move(b3a),
       std::move(b3b), pool_proj_branch(name + ".b4", in, 256)});
}

}  // namespace

core::Network make_inception_v4(int mini_batch_per_core) {
  core::Network net;
  net.name = "InceptionV4";
  net.input = FeatureShape{3, 299, 299};
  net.mini_batch_per_core = mini_batch_per_core;

  // Stem part 1: plain convolutions.
  Chain stem1;
  FeatureShape cur = conv_norm_act(stem1, "stem.1", net.input, 32, 3, 2, 0);
  cur = conv_norm_act(stem1, "stem.2", cur, 32, 3, 1, 0);
  cur = conv_norm_act(stem1, "stem.3", cur, 64, 3, 1, 1);
  net.blocks.push_back(core::make_simple_block("stem1", std::move(stem1)));
  cur = net.blocks.back().out;  // 147x147x64

  // Stem split 1: maxpool || 3x3/2 conv.
  {
    Chain p;
    p.push_back(core::make_pool("stem4.pool", cur, 3, 2, 0, PoolKind::kMax));
    Chain c;
    conv_norm_act(c, "stem4.conv", cur, 96, 3, 2, 0);
    net.blocks.push_back(
        core::make_inception_block("stem4", cur, {std::move(p), std::move(c)}));
    cur = net.blocks.back().out;  // 73x73x160
  }

  // Stem split 2: (1x1, 3x3) || (1x1, 7x1, 1x7, 3x3).
  {
    Chain a;
    FeatureShape t = conv_norm_act(a, "stem5a.1", cur, 64, 1, 1, 0);
    conv_norm_act(a, "stem5a.2", t, 96, 3, 1, 0);
    Chain b;
    t = conv_norm_act(b, "stem5b.1", cur, 64, 1, 1, 0);
    t = conv_norm_act(b, "stem5b.2", t, 64, 1, 7, 1, 0, 3);
    t = conv_norm_act(b, "stem5b.3", t, 64, 7, 1, 1, 3, 0);
    conv_norm_act(b, "stem5b.4", t, 96, 3, 1, 0);
    net.blocks.push_back(
        core::make_inception_block("stem5", cur, {std::move(a), std::move(b)}));
    cur = net.blocks.back().out;  // 71x71x192
  }

  // Stem split 3: 3x3/2 conv || maxpool.
  {
    Chain a;
    conv_norm_act(a, "stem6.conv", cur, 192, 3, 2, 0);
    Chain b;
    b.push_back(core::make_pool("stem6.pool", cur, 3, 2, 0, PoolKind::kMax));
    net.blocks.push_back(
        core::make_inception_block("stem6", cur, {std::move(a), std::move(b)}));
    cur = net.blocks.back().out;  // 35x35x384
  }

  for (int i = 0; i < 4; ++i) {
    net.blocks.push_back(inception_a("inceptA." + std::to_string(i), cur));
    cur = net.blocks.back().out;
  }
  net.blocks.push_back(reduction_a("reductA", cur));
  cur = net.blocks.back().out;  // 17x17x1024

  for (int i = 0; i < 7; ++i) {
    net.blocks.push_back(inception_b("inceptB." + std::to_string(i), cur));
    cur = net.blocks.back().out;
  }
  net.blocks.push_back(reduction_b("reductB", cur));
  cur = net.blocks.back().out;  // 8x8x1536

  for (int i = 0; i < 3; ++i) {
    net.blocks.push_back(inception_c("inceptC." + std::to_string(i), cur));
    cur = net.blocks.back().out;
  }

  net.blocks.push_back(core::make_simple_block(
      "avgpool", {core::make_global_avg_pool("avgpool", cur)}));
  cur = net.blocks.back().out;
  net.blocks.push_back(core::make_simple_block(
      "fc", {core::make_fc("fc", cur.elements(), 1000)}));

  net.check();
  return net;
}

}  // namespace mbs::models
