// Inception v3 (Szegedy et al., 2015) for 299x299 inputs.
//
// The Mixed_7b/7c modules of the reference network contain nested splits
// (a 1x1 convolution whose output feeds both a 1x3 and a 3x1 convolution).
// The block IR models branches as chains from the shared block input, so
// those nested splits are flattened into two sibling branches that each
// repeat the leading convolution. This preserves the multi-branch reuse
// structure MBS exploits at the cost of a small parameter-count increase
// (documented in DESIGN.md).
#pragma once

#include "core/network.h"

namespace mbs::models {

core::Network make_inception_v3(int mini_batch_per_core = 32);

}  // namespace mbs::models
