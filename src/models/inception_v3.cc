#include "models/inception_v3.h"

#include <string>
#include <vector>

#include "models/common.h"

namespace mbs::models {

namespace {

using Chain = std::vector<Layer>;

/// Appends an average-pool (3x3/1, pad 1) + 1x1 conv projection branch.
Chain pool_proj_branch(const std::string& name, FeatureShape in, int out_c,
                       PoolKind kind) {
  Chain chain;
  chain.push_back(core::make_pool(name + ".pool", in, 3, 1, 1, kind));
  conv_norm_act(chain, name + ".proj", chain.back().out, out_c, 1, 1, 0);
  return chain;
}

/// 35x35 module: 1x1 / 5x5 / double-3x3 / pool-projection branches.
core::Block inception_a(const std::string& name, FeatureShape in,
                        int pool_features) {
  Chain b1;
  conv_norm_act(b1, name + ".b1", in, 64, 1, 1, 0);

  Chain b2;
  FeatureShape cur = conv_norm_act(b2, name + ".b2a", in, 48, 1, 1, 0);
  conv_norm_act(b2, name + ".b2b", cur, 64, 5, 1, 2);

  Chain b3;
  cur = conv_norm_act(b3, name + ".b3a", in, 64, 1, 1, 0);
  cur = conv_norm_act(b3, name + ".b3b", cur, 96, 3, 1, 1);
  conv_norm_act(b3, name + ".b3c", cur, 96, 3, 1, 1);

  return core::make_inception_block(
      name, in,
      {std::move(b1), std::move(b2), std::move(b3),
       pool_proj_branch(name + ".b4", in, pool_features, PoolKind::kAvg)});
}

/// 35x35 -> 17x17 grid reduction.
core::Block inception_b(const std::string& name, FeatureShape in) {
  Chain b1;
  conv_norm_act(b1, name + ".b1", in, 384, 3, 2, 0);

  Chain b2;
  FeatureShape cur = conv_norm_act(b2, name + ".b2a", in, 64, 1, 1, 0);
  cur = conv_norm_act(b2, name + ".b2b", cur, 96, 3, 1, 1);
  conv_norm_act(b2, name + ".b2c", cur, 96, 3, 2, 0);

  Chain b3;
  b3.push_back(core::make_pool(name + ".b3.pool", in, 3, 2, 0, PoolKind::kMax));

  return core::make_inception_block(
      name, in, {std::move(b1), std::move(b2), std::move(b3)});
}

/// 17x17 module with factorized 7x7 convolutions.
core::Block inception_c(const std::string& name, FeatureShape in, int c7) {
  Chain b1;
  conv_norm_act(b1, name + ".b1", in, 192, 1, 1, 0);

  Chain b2;
  FeatureShape cur = conv_norm_act(b2, name + ".b2a", in, c7, 1, 1, 0);
  cur = conv_norm_act(b2, name + ".b2b", cur, c7, 1, 7, 1, 0, 3);
  conv_norm_act(b2, name + ".b2c", cur, 192, 7, 1, 1, 3, 0);

  Chain b3;
  cur = conv_norm_act(b3, name + ".b3a", in, c7, 1, 1, 0);
  cur = conv_norm_act(b3, name + ".b3b", cur, c7, 7, 1, 1, 3, 0);
  cur = conv_norm_act(b3, name + ".b3c", cur, c7, 1, 7, 1, 0, 3);
  cur = conv_norm_act(b3, name + ".b3d", cur, c7, 7, 1, 1, 3, 0);
  conv_norm_act(b3, name + ".b3e", cur, 192, 1, 7, 1, 0, 3);

  return core::make_inception_block(
      name, in,
      {std::move(b1), std::move(b2), std::move(b3),
       pool_proj_branch(name + ".b4", in, 192, PoolKind::kAvg)});
}

/// 17x17 -> 8x8 grid reduction.
core::Block inception_d(const std::string& name, FeatureShape in) {
  Chain b1;
  FeatureShape cur = conv_norm_act(b1, name + ".b1a", in, 192, 1, 1, 0);
  conv_norm_act(b1, name + ".b1b", cur, 320, 3, 2, 0);

  Chain b2;
  cur = conv_norm_act(b2, name + ".b2a", in, 192, 1, 1, 0);
  cur = conv_norm_act(b2, name + ".b2b", cur, 192, 1, 7, 1, 0, 3);
  cur = conv_norm_act(b2, name + ".b2c", cur, 192, 7, 1, 1, 3, 0);
  conv_norm_act(b2, name + ".b2d", cur, 192, 3, 2, 0);

  Chain b3;
  b3.push_back(core::make_pool(name + ".b3.pool", in, 3, 2, 0, PoolKind::kMax));

  return core::make_inception_block(
      name, in, {std::move(b1), std::move(b2), std::move(b3)});
}

/// 8x8 module. Nested 1x3/3x1 splits are flattened into sibling branches.
core::Block inception_e(const std::string& name, FeatureShape in) {
  Chain b1;
  conv_norm_act(b1, name + ".b1", in, 320, 1, 1, 0);

  Chain b2a;
  FeatureShape cur = conv_norm_act(b2a, name + ".b2", in, 384, 1, 1, 0);
  conv_norm_act(b2a, name + ".b2h", cur, 384, 1, 3, 1, 0, 1);
  Chain b2b;
  cur = conv_norm_act(b2b, name + ".b2'", in, 384, 1, 1, 0);
  conv_norm_act(b2b, name + ".b2v", cur, 384, 3, 1, 1, 1, 0);

  Chain b3a;
  cur = conv_norm_act(b3a, name + ".b3a", in, 448, 1, 1, 0);
  cur = conv_norm_act(b3a, name + ".b3b", cur, 384, 3, 1, 1);
  conv_norm_act(b3a, name + ".b3h", cur, 384, 1, 3, 1, 0, 1);
  Chain b3b;
  cur = conv_norm_act(b3b, name + ".b3a'", in, 448, 1, 1, 0);
  cur = conv_norm_act(b3b, name + ".b3b'", cur, 384, 3, 1, 1);
  conv_norm_act(b3b, name + ".b3v", cur, 384, 3, 1, 1, 1, 0);

  return core::make_inception_block(
      name, in,
      {std::move(b1), std::move(b2a), std::move(b2b), std::move(b3a),
       std::move(b3b), pool_proj_branch(name + ".b4", in, 192, PoolKind::kAvg)});
}

}  // namespace

core::Network make_inception_v3(int mini_batch_per_core) {
  core::Network net;
  net.name = "InceptionV3";
  net.input = FeatureShape{3, 299, 299};
  net.mini_batch_per_core = mini_batch_per_core;

  // Stem.
  auto push_cna = [&](const std::string& name, FeatureShape in, int out_c,
                      int kernel, int stride, int pad) {
    Chain chain;
    conv_norm_act(chain, name, in, out_c, kernel, stride, pad);
    net.blocks.push_back(core::make_simple_block(name, std::move(chain)));
    return net.blocks.back().out;
  };
  FeatureShape cur = push_cna("conv1a", net.input, 32, 3, 2, 0);  // 149x149
  cur = push_cna("conv2a", cur, 32, 3, 1, 0);                     // 147x147
  cur = push_cna("conv2b", cur, 64, 3, 1, 1);                     // 147x147
  net.blocks.push_back(core::make_simple_block(
      "pool1", {core::make_pool("pool1", cur, 3, 2, 0, PoolKind::kMax)}));
  cur = net.blocks.back().out;                                    // 73x73
  cur = push_cna("conv3b", cur, 80, 1, 1, 0);                     // 73x73
  cur = push_cna("conv4a", cur, 192, 3, 1, 0);                    // 71x71
  net.blocks.push_back(core::make_simple_block(
      "pool2", {core::make_pool("pool2", cur, 3, 2, 0, PoolKind::kMax)}));
  cur = net.blocks.back().out;                                    // 35x35x192

  net.blocks.push_back(inception_a("mixed5b", cur, 32));
  cur = net.blocks.back().out;  // 256
  net.blocks.push_back(inception_a("mixed5c", cur, 64));
  cur = net.blocks.back().out;  // 288
  net.blocks.push_back(inception_a("mixed5d", cur, 64));
  cur = net.blocks.back().out;  // 288

  net.blocks.push_back(inception_b("mixed6a", cur));
  cur = net.blocks.back().out;  // 17x17x768

  net.blocks.push_back(inception_c("mixed6b", cur, 128));
  cur = net.blocks.back().out;
  net.blocks.push_back(inception_c("mixed6c", cur, 160));
  cur = net.blocks.back().out;
  net.blocks.push_back(inception_c("mixed6d", cur, 160));
  cur = net.blocks.back().out;
  net.blocks.push_back(inception_c("mixed6e", cur, 192));
  cur = net.blocks.back().out;

  net.blocks.push_back(inception_d("mixed7a", cur));
  cur = net.blocks.back().out;  // 8x8x1280

  net.blocks.push_back(inception_e("mixed7b", cur));
  cur = net.blocks.back().out;  // 8x8x2048
  net.blocks.push_back(inception_e("mixed7c", cur));
  cur = net.blocks.back().out;

  net.blocks.push_back(core::make_simple_block(
      "avgpool", {core::make_global_avg_pool("avgpool", cur)}));
  cur = net.blocks.back().out;
  net.blocks.push_back(core::make_simple_block(
      "fc", {core::make_fc("fc", cur.elements(), 1000)}));

  net.check();
  return net;
}

}  // namespace mbs::models
