#include "core/block.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace mbs::core {

namespace {

[[noreturn]] void fail(const Block& b, const char* msg) {
  std::fprintf(stderr, "Block '%s' invalid: %s\n", b.name.c_str(), msg);
  std::abort();
}

/// Working set of a single layer viewed in isolation: live input(s) plus
/// output. Merge layers execute in place — Add overwrites one operand with
/// the sum and Concat assembles branch slices directly in the output
/// buffer — so they provision no extra copy space.
std::int64_t layer_working_set(const Layer& l, DataType t) {
  if (l.kind == LayerKind::kAdd) return 2 * l.out.bytes(t);
  if (l.kind == LayerKind::kConcat) return l.out.bytes(t);
  // Attention materializes the heads x S x S score matrix between its two
  // GEMMs, on top of the streamed QKV input and context output.
  return l.input_bytes_per_sample(t) + l.output_bytes_per_sample(t) +
         l.attention_score_bytes_per_sample(t);
}

}  // namespace

const char* to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::kSimple: return "simple";
    case BlockKind::kResidual: return "residual";
    case BlockKind::kInception: return "inception";
  }
  return "?";
}

std::int64_t Block::param_count() const {
  std::int64_t total = 0;
  for_each_layer([&](const Layer& l, int) { total += l.param_count(); });
  return total;
}

std::int64_t Block::flops_per_sample() const {
  std::int64_t total = 0;
  for_each_layer([&](const Layer& l, int) { total += l.flops_per_sample(); });
  return total;
}

std::int64_t Block::footprint_per_branch(DataType t) const {
  std::int64_t peak = 0;
  for_each_layer([&](const Layer& l, int) {
    peak = std::max(peak, layer_working_set(l, t));
  });
  return peak;
}

std::int64_t Block::footprint_inter_branch(DataType t) const {
  if (kind == BlockKind::kSimple) return footprint_per_branch(t);

  const std::int64_t block_in = in.bytes(t);
  const std::int64_t block_out = out.bytes(t);
  std::int64_t peak = 0;

  if (kind == BlockKind::kResidual) {
    // Eq. 1. Branch 0 is the main path; branch 1 the shortcut. While the main
    // path runs past its first layer the block input must stay resident for
    // the shortcut; while the shortcut runs, the main-path output must stay
    // resident for the merge.
    const std::int64_t main_out =
        branches[0].is_identity() ? block_in
                                  : branches[0].layers.back().out.bytes(t);
    for (std::size_t b = 0; b < branches.size(); ++b) {
      const auto& chain = branches[b].layers;
      for (std::size_t l = 0; l < chain.size(); ++l) {
        std::int64_t cond = 0;
        if (b == 0 && l != 0) cond += block_in;
        if (b != 0) cond += main_out;
        peak = std::max(peak, layer_working_set(chain[l], t) + cond);
      }
    }
    // Merge point: both branch outputs coexist; the in-place sum overwrites
    // one of them (the following ReLU is shape-preserving and adds nothing).
    const std::int64_t shortcut_out =
        branches.size() > 1 && !branches[1].is_identity()
            ? branches[1].layers.back().out.bytes(t)
            : block_in;
    peak = std::max(peak, main_out + shortcut_out);
    return peak;
  }

  // Eq. 2 (inception): while executing any branch layer past the first, the
  // block input must stay resident for the remaining branches; until the
  // last layer of a branch, space for the concatenated block output is
  // provisioned.
  for (const auto& branch : branches) {
    const auto& chain = branch.layers;
    for (std::size_t l = 0; l < chain.size(); ++l) {
      std::int64_t cond = 0;
      if (l != 0) cond += block_in;
      if (l + 1 != chain.size()) cond += block_out;
      peak = std::max(peak, layer_working_set(chain[l], t) + cond);
    }
  }
  // All branch outputs coexist as slices of the block output at the merge.
  peak = std::max(peak, block_in + block_out);
  return peak;
}

void Block::for_each_layer(
    const std::function<void(const Layer&, int)>& fn) const {
  for (std::size_t b = 0; b < branches.size(); ++b)
    for (const Layer& l : branches[b].layers) fn(l, static_cast<int>(b));
  for (const Layer& l : merge) fn(l, -1);
}

int Block::layer_count() const {
  int n = 0;
  for_each_layer([&](const Layer&, int) { ++n; });
  return n;
}

void Block::check() const {
  if (branches.empty()) fail(*this, "no branches");
  for (const auto& branch : branches) {
    FeatureShape cur = in;
    for (const Layer& l : branch.layers) {
      if (!(l.in == cur) && l.kind != LayerKind::kFc)
        fail(*this, ("layer '" + l.name + "' input shape mismatch").c_str());
      if (l.kind == LayerKind::kFc && l.in.elements() != cur.elements())
        fail(*this, ("fc '" + l.name + "' input element mismatch").c_str());
      cur = l.out;
    }
  }
  if (kind == BlockKind::kSimple) {
    if (branches.size() != 1) fail(*this, "simple block must have 1 branch");
    const auto& chain = branches[0].layers;
    const FeatureShape last = chain.empty() ? in : chain.back().out;
    if (!(last == out)) fail(*this, "output shape mismatch");
    return;
  }
  if (kind == BlockKind::kResidual) {
    for (const auto& branch : branches) {
      const FeatureShape branch_out =
          branch.is_identity() ? in : branch.layers.back().out;
      if (!(branch_out == out)) fail(*this, "residual branch output mismatch");
    }
    if (merge.empty() || merge.front().kind != LayerKind::kAdd)
      fail(*this, "residual block must merge with Add");
    return;
  }
  // Inception: channel counts must sum; spatial sizes must agree.
  int c_sum = 0;
  for (const auto& branch : branches) {
    if (branch.is_identity()) fail(*this, "inception identity branch");
    const FeatureShape branch_out = branch.layers.back().out;
    if (branch_out.h != out.h || branch_out.w != out.w)
      fail(*this, "inception branch spatial mismatch");
    c_sum += branch_out.c;
  }
  if (c_sum != out.c) fail(*this, "inception channel sum mismatch");
  if (merge.empty() || merge.front().kind != LayerKind::kConcat)
    fail(*this, "inception block must merge with Concat");
}

Block make_simple_block(std::string name, std::vector<Layer> layers) {
  assert(!layers.empty());
  Block b;
  b.kind = BlockKind::kSimple;
  b.name = std::move(name);
  b.in = layers.front().in;
  b.out = layers.back().out;
  b.branches.push_back(Branch{std::move(layers)});
  b.check();
  return b;
}

Block make_residual_block(std::string name, FeatureShape in,
                          std::vector<Layer> main,
                          std::vector<Layer> shortcut) {
  assert(!main.empty());
  Block b;
  b.kind = BlockKind::kResidual;
  b.name = std::move(name);
  b.in = in;
  b.out = main.back().out;
  b.branches.push_back(Branch{std::move(main)});
  b.branches.push_back(Branch{std::move(shortcut)});
  b.merge.push_back(make_add(b.name + ".add", b.out));
  b.merge.push_back(make_act(b.name + ".relu", b.out));
  b.check();
  return b;
}

Block make_inception_block(std::string name, FeatureShape in,
                           std::vector<std::vector<Layer>> branches) {
  assert(!branches.empty());
  Block b;
  b.kind = BlockKind::kInception;
  b.name = std::move(name);
  b.in = in;
  int c_sum = 0;
  for (auto& chain : branches) {
    assert(!chain.empty());
    c_sum += chain.back().out.c;
    b.branches.push_back(Branch{std::move(chain)});
  }
  const FeatureShape first_out = b.branches[0].layers.back().out;
  b.out = FeatureShape{c_sum, first_out.h, first_out.w};
  b.merge.push_back(make_concat(b.name + ".concat", first_out, c_sum));
  b.check();
  return b;
}

}  // namespace mbs::core
