// Multi-branch blocks: the scheduling unit of MBS.
//
// MBS treats a multi-branch module (residual bottleneck, inception module)
// as a single unit when optimizing locality (Sec. 3, "MBS essentially treats
// such a block as a layer"). A Block is either a simple chain of layers or a
// set of branches that share a split point and a merge point. The per-sample
// on-chip space requirements follow Eq. 1 (residual) and Eq. 2 (inception).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/layer.h"
#include "core/shape.h"

namespace mbs::core {

/// One branch of a block: a chain of layers. An empty chain is an identity
/// branch (the un-projected shortcut of a residual block).
struct Branch {
  std::vector<Layer> layers;

  bool is_identity() const { return layers.empty(); }
};

enum class BlockKind {
  kSimple,     ///< single chain, no split/merge
  kResidual,   ///< main branch + shortcut, merged by element-wise Add (Eq. 1)
  kInception,  ///< B parallel branches merged by channel Concat (Eq. 2)
};

const char* to_string(BlockKind kind);

/// A scheduling unit: one layer chain or one multi-branch module.
struct Block {
  BlockKind kind = BlockKind::kSimple;
  std::string name;
  FeatureShape in;   ///< per-sample block input shape
  FeatureShape out;  ///< per-sample block output shape
  std::vector<Branch> branches;
  /// Layers applied after the branches merge (residual: Add then ReLU;
  /// inception: Concat). Empty for simple blocks.
  std::vector<Layer> merge;

  /// Total learnable parameters in the block.
  std::int64_t param_count() const;

  /// Per-sample forward FLOPs over all branches and merge layers.
  std::int64_t flops_per_sample() const;

  /// Largest single-layer inter-layer data volume: max over layers of
  /// input + output bytes (the grey bars of Fig. 4). This is the footprint
  /// MBS1 provisions for (no cross-branch data is kept on chip).
  std::int64_t footprint_per_branch(DataType t = DataType::kF16) const;

  /// Per-sample space with inter-branch reuse (MBS2): Eq. 1 for residual
  /// blocks, Eq. 2 for inception blocks, and footprint_per_branch for
  /// simple chains.
  std::int64_t footprint_inter_branch(DataType t = DataType::kF16) const;

  /// Visits every layer: all branch layers in branch order, then merge
  /// layers. `branch` is the branch index or -1 for merge layers.
  void for_each_layer(
      const std::function<void(const Layer&, int branch)>& fn) const;

  /// Number of layers including merge layers.
  int layer_count() const;

  /// Validates internal shape consistency (chains connect, branches merge
  /// to `out`). Aborts with a message on violation; used by model builders.
  void check() const;
};

/// Builds a simple block from a chain of layers.
Block make_simple_block(std::string name, std::vector<Layer> layers);

/// Builds a residual block: `main` chain plus `shortcut` chain (empty for
/// identity) merged by Add followed by ReLU.
Block make_residual_block(std::string name, FeatureShape in,
                          std::vector<Layer> main,
                          std::vector<Layer> shortcut);

/// Builds an inception block: parallel branches concatenated channel-wise.
Block make_inception_block(std::string name, FeatureShape in,
                           std::vector<std::vector<Layer>> branches);

}  // namespace mbs::core
