// A network is an ordered list of blocks plus training-time metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/block.h"

namespace mbs::core {

/// A CNN described at shape level, as a chain of (possibly multi-branch)
/// blocks. Per-core mini-batch size follows the paper's evaluation setup
/// (32 per core for the deep CNNs, 64 for AlexNet, Sec. 5).
struct Network {
  std::string name;
  FeatureShape input;           ///< per-sample network input (e.g. 3x224x224)
  int mini_batch_per_core = 32; ///< default evaluation mini-batch per core
  std::vector<Block> blocks;

  /// Total learnable parameters.
  std::int64_t param_count() const;

  /// Forward FLOPs for one sample.
  std::int64_t flops_per_sample() const;

  /// Total layers across all blocks (including merge layers).
  int layer_count() const;

  /// Validates inter-block shape consistency. Aborts on violation.
  void check() const;
};

}  // namespace mbs::core
