// Layer descriptors: the shape-level IR the scheduler and simulator operate
// on. A Layer records per-sample input/output shapes, kernel geometry, and
// parameter counts; it carries no tensor data (the functional training
// substrate in src/train has real tensors).
#pragma once

#include <cstdint>
#include <string>

#include "core/shape.h"

namespace mbs::core {

/// Kinds of layers appearing in the evaluated CNNs.
enum class LayerKind {
  kConv,      ///< 2-D convolution (im2col GEMM on WaveCore)
  kFc,        ///< fully connected (GEMM)
  kPool,      ///< max / average / global-average pooling
  kNorm,      ///< feature normalization (BN in the baseline, GN under MBS)
  kAct,       ///< ReLU activation
  kAdd,       ///< element-wise sum at a residual merge point
  kConcat,    ///< channel concatenation at an inception merge point
  kAttention, ///< multi-head softmax attention (activation-activation GEMMs)
};

const char* to_string(LayerKind kind);

/// Pooling flavors.
enum class PoolKind { kMax, kAvg, kGlobalAvg };

/// Normalization flavors. Identical for footprint/traffic purposes (both
/// have 2*C parameters); they differ in the training substrate and in
/// MBS compatibility (BN needs the whole per-processor mini-batch, Sec. 3.1).
enum class NormKind { kBatch, kGroup };

/// A single layer. Construct through the factory functions below so that
/// output shapes and parameter counts stay consistent.
struct Layer {
  LayerKind kind = LayerKind::kConv;
  std::string name;
  FeatureShape in;   ///< per-sample input shape
  FeatureShape out;  ///< per-sample output shape

  // Convolution / pooling geometry. Padding can be asymmetric across the
  // two spatial dimensions (Inception's 1x7 / 7x1 convolutions).
  int kernel_h = 1;
  int kernel_w = 1;
  int stride = 1;
  int pad_h = 0;
  int pad_w = 0;

  PoolKind pool_kind = PoolKind::kMax;
  NormKind norm_kind = NormKind::kGroup;
  bool has_bias = false;

  /// Attention head count (kAttention only). The per-sample score matrix is
  /// heads x S x S with S = in.h * in.w tokens.
  int heads = 1;

  /// Number of learnable parameters (0 for pool/act/add/concat).
  std::int64_t param_count() const;

  /// Bytes of parameters at the given storage type.
  std::int64_t param_bytes(DataType t = DataType::kF16) const;

  /// Per-sample forward FLOPs (multiply and add counted separately).
  std::int64_t flops_per_sample() const;

  /// True for layers executed on the systolic array (conv, fc); the rest run
  /// on WaveCore's vector/scalar units (Sec. 4.2). Attention is NOT in this
  /// set: its Q.K^T / P.V GEMMs have no resident weight operand, so the
  /// simulators charge them through a dedicated path rather than the
  /// weight-stationary gemm_shape mapping.
  bool is_gemm() const { return kind == LayerKind::kConv || kind == LayerKind::kFc; }

  /// True for multi-head attention layers.
  bool is_attention() const { return kind == LayerKind::kAttention; }

  /// Per-sample bytes of the softmax score/probability matrix (kAttention
  /// only: heads * S * S values at `t`); 0 for every other kind.
  std::int64_t attention_score_bytes_per_sample(DataType t = DataType::kF16) const;

  /// Per-sample bytes read by this layer's forward pass, counting Add's two
  /// operands and Concat's branch inputs.
  std::int64_t input_bytes_per_sample(DataType t = DataType::kF16) const;

  /// Per-sample bytes written by this layer's forward pass.
  std::int64_t output_bytes_per_sample(DataType t = DataType::kF16) const;
};

/// Output spatial size of a convolution/pooling window.
int conv_out_dim(int in, int kernel, int stride, int pad);

// ---- Factory functions -----------------------------------------------------

/// 2-D convolution: `out_c` filters of kernel_h x kernel_w over `in`, with
/// per-dimension padding.
Layer make_conv(std::string name, FeatureShape in, int out_c, int kernel_h,
                int kernel_w, int stride, int pad_h, int pad_w,
                bool bias = false);

/// Square-kernel convenience overload with symmetric padding.
Layer make_conv(std::string name, FeatureShape in, int out_c, int kernel,
                int stride, int pad, bool bias = false);

/// Fully connected layer over a flattened input.
Layer make_fc(std::string name, std::int64_t in_features, int out_features,
              bool bias = true);

/// Normalization over `in` (shape-preserving, 2*C parameters).
Layer make_norm(std::string name, FeatureShape in,
                NormKind kind = NormKind::kGroup);

/// ReLU activation (shape-preserving).
Layer make_act(std::string name, FeatureShape in);

/// Max or average pooling.
Layer make_pool(std::string name, FeatureShape in, int kernel, int stride,
                int pad, PoolKind kind);

/// Global average pooling to 1x1.
Layer make_global_avg_pool(std::string name, FeatureShape in);

/// Residual element-wise sum of two tensors of shape `in`.
Layer make_add(std::string name, FeatureShape in);

/// Channel concatenation producing `out_c` channels at `in`'s spatial size.
Layer make_concat(std::string name, FeatureShape in, int out_c);

/// Multi-head softmax attention over a packed QKV input. `in` holds the
/// concatenated Q, K, V projections (3*d channels over the token grid), so
/// in.c must be divisible by 3 and the model dimension d = in.c / 3 by
/// `heads`. Output is the d-channel context over the same token grid. The
/// layer owns no parameters: both GEMMs (Q.K^T and P.V) consume streamed
/// activations only.
Layer make_attention(std::string name, FeatureShape in, int heads);

}  // namespace mbs::core
