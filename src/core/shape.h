// Per-sample feature shapes and storage data types.
//
// The paper's analysis works at the granularity of per-sample feature
// volumes (Fig. 3/4: "data size / sample"); mini-batch and sub-batch sizes
// multiply these. Features and weights are stored as 16-bit words with
// 32-bit accumulation (mixed precision, Sec. 5); ReLU backward masks are
// stored as a single bit per element (Sec. 3).
#pragma once

#include <cstdint>

namespace mbs::core {

/// Storage data types used by the traffic and buffer models.
enum class DataType {
  kF16,  ///< 16-bit floating point (default storage for features/weights)
  kF32,  ///< 32-bit floating point (accumulation)
  kI8,   ///< 8-bit integer (pooling argmax indices)
  kBit,  ///< 1-bit (ReLU gradient masks)
};

/// Size of one element of `t` in bits.
constexpr std::int64_t dtype_bits(DataType t) {
  switch (t) {
    case DataType::kF16: return 16;
    case DataType::kF32: return 32;
    case DataType::kI8: return 8;
    case DataType::kBit: return 1;
  }
  return 16;
}

/// Bytes for `elements` values of type `t`, rounded up to whole bytes.
constexpr std::int64_t bytes_for(std::int64_t elements, DataType t) {
  return (elements * dtype_bits(t) + 7) / 8;
}

/// Shape of one sample's feature map: channels x height x width.
struct FeatureShape {
  int c = 0;
  int h = 0;
  int w = 0;

  constexpr std::int64_t elements() const {
    return static_cast<std::int64_t>(c) * h * w;
  }
  constexpr std::int64_t bytes(DataType t = DataType::kF16) const {
    return bytes_for(elements(), t);
  }
  constexpr bool operator==(const FeatureShape&) const = default;
};

}  // namespace mbs::core
