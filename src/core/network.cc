#include "core/network.h"

#include <cstdio>
#include <cstdlib>

namespace mbs::core {

std::int64_t Network::param_count() const {
  std::int64_t total = 0;
  for (const Block& b : blocks) total += b.param_count();
  return total;
}

std::int64_t Network::flops_per_sample() const {
  std::int64_t total = 0;
  for (const Block& b : blocks) total += b.flops_per_sample();
  return total;
}

int Network::layer_count() const {
  int n = 0;
  for (const Block& b : blocks) n += b.layer_count();
  return n;
}

void Network::check() const {
  FeatureShape cur = input;
  for (const Block& b : blocks) {
    b.check();
    const bool fc_flatten =
        b.branches.size() == 1 && !b.branches[0].layers.empty() &&
        b.branches[0].layers.front().kind == LayerKind::kFc;
    const bool ok = fc_flatten ? b.in.elements() == cur.elements()
                               : b.in == cur;
    if (!ok) {
      std::fprintf(stderr, "Network '%s': block '%s' input mismatch\n",
                   name.c_str(), b.name.c_str());
      std::abort();
    }
    cur = b.out;
  }
}

}  // namespace mbs::core
