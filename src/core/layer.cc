#include "core/layer.h"

#include <cassert>

namespace mbs::core {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kFc: return "fc";
    case LayerKind::kPool: return "pool";
    case LayerKind::kNorm: return "norm";
    case LayerKind::kAct: return "act";
    case LayerKind::kAdd: return "add";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kAttention: return "attention";
  }
  return "?";
}

std::int64_t Layer::param_count() const {
  switch (kind) {
    case LayerKind::kConv: {
      const std::int64_t weights = static_cast<std::int64_t>(in.c) * kernel_h *
                                   kernel_w * out.c;
      return weights + (has_bias ? out.c : 0);
    }
    case LayerKind::kFc: {
      const std::int64_t weights = in.elements() * out.c;
      return weights + (has_bias ? out.c : 0);
    }
    case LayerKind::kNorm:
      return 2LL * in.c;  // scale and shift per channel
    default:
      return 0;
  }
}

std::int64_t Layer::param_bytes(DataType t) const {
  return bytes_for(param_count(), t);
}

std::int64_t Layer::flops_per_sample() const {
  switch (kind) {
    case LayerKind::kConv:
      // 2 * MACs: each output element accumulates in.c * kh * kw products.
      return 2LL * out.elements() * in.c * kernel_h * kernel_w;
    case LayerKind::kFc:
      return 2LL * in.elements() * out.c;
    case LayerKind::kPool:
      if (pool_kind == PoolKind::kGlobalAvg) return in.elements();
      return static_cast<std::int64_t>(out.elements()) * kernel_h * kernel_w;
    case LayerKind::kNorm:
      // Two passes: mean/var accumulation then scale/shift application.
      return 8LL * in.elements();
    case LayerKind::kAct:
      return in.elements();
    case LayerKind::kAdd:
      return in.elements();
    case LayerKind::kConcat:
      return 0;  // pure data movement
    case LayerKind::kAttention: {
      // Forward GEMMs: scores = Q.K^T (2*S*S*d_h MACs per head, summing to
      // 2*S*S*d over heads) and context = P.V (another 2*S*S*d), plus the
      // softmax over each heads x S x S score matrix (~4 ops per element:
      // max, exp-subtract, sum, divide).
      const std::int64_t s = static_cast<std::int64_t>(in.h) * in.w;
      const std::int64_t d = in.c / 3;
      return 4 * s * s * d + 4 * heads * s * s;
    }
  }
  return 0;
}

std::int64_t Layer::attention_score_bytes_per_sample(DataType t) const {
  if (kind != LayerKind::kAttention) return 0;
  const std::int64_t s = static_cast<std::int64_t>(in.h) * in.w;
  return bytes_for(heads * s * s, t);
}

std::int64_t Layer::input_bytes_per_sample(DataType t) const {
  if (kind == LayerKind::kAdd) return 2 * in.bytes(t);
  if (kind == LayerKind::kConcat) return out.bytes(t);  // reads all branch outputs
  return in.bytes(t);
}

std::int64_t Layer::output_bytes_per_sample(DataType t) const {
  return out.bytes(t);
}

int conv_out_dim(int in, int kernel, int stride, int pad) {
  assert(stride > 0);
  return (in + 2 * pad - kernel) / stride + 1;
}

Layer make_conv(std::string name, FeatureShape in, int out_c, int kernel_h,
                int kernel_w, int stride, int pad_h, int pad_w, bool bias) {
  Layer l;
  l.kind = LayerKind::kConv;
  l.name = std::move(name);
  l.in = in;
  l.kernel_h = kernel_h;
  l.kernel_w = kernel_w;
  l.stride = stride;
  l.pad_h = pad_h;
  l.pad_w = pad_w;
  l.has_bias = bias;
  l.out = FeatureShape{out_c, conv_out_dim(in.h, kernel_h, stride, pad_h),
                       conv_out_dim(in.w, kernel_w, stride, pad_w)};
  assert(l.out.h > 0 && l.out.w > 0);
  return l;
}

Layer make_conv(std::string name, FeatureShape in, int out_c, int kernel,
                int stride, int pad, bool bias) {
  return make_conv(std::move(name), in, out_c, kernel, kernel, stride, pad,
                   pad, bias);
}

Layer make_fc(std::string name, std::int64_t in_features, int out_features,
              bool bias) {
  Layer l;
  l.kind = LayerKind::kFc;
  l.name = std::move(name);
  l.in = FeatureShape{static_cast<int>(in_features), 1, 1};
  l.out = FeatureShape{out_features, 1, 1};
  l.has_bias = bias;
  return l;
}

Layer make_norm(std::string name, FeatureShape in, NormKind kind) {
  Layer l;
  l.kind = LayerKind::kNorm;
  l.name = std::move(name);
  l.in = in;
  l.out = in;
  l.norm_kind = kind;
  return l;
}

Layer make_act(std::string name, FeatureShape in) {
  Layer l;
  l.kind = LayerKind::kAct;
  l.name = std::move(name);
  l.in = in;
  l.out = in;
  return l;
}

Layer make_pool(std::string name, FeatureShape in, int kernel, int stride,
                int pad, PoolKind kind) {
  Layer l;
  l.kind = LayerKind::kPool;
  l.name = std::move(name);
  l.in = in;
  l.kernel_h = kernel;
  l.kernel_w = kernel;
  l.stride = stride;
  l.pad_h = pad;
  l.pad_w = pad;
  l.pool_kind = kind;
  l.out = FeatureShape{in.c, conv_out_dim(in.h, kernel, stride, pad),
                       conv_out_dim(in.w, kernel, stride, pad)};
  assert(l.out.h > 0 && l.out.w > 0);
  return l;
}

Layer make_global_avg_pool(std::string name, FeatureShape in) {
  Layer l;
  l.kind = LayerKind::kPool;
  l.name = std::move(name);
  l.in = in;
  l.kernel_h = in.h;
  l.kernel_w = in.w;
  l.stride = 1;
  l.pool_kind = PoolKind::kGlobalAvg;
  l.out = FeatureShape{in.c, 1, 1};
  return l;
}

Layer make_add(std::string name, FeatureShape in) {
  Layer l;
  l.kind = LayerKind::kAdd;
  l.name = std::move(name);
  l.in = in;
  l.out = in;
  return l;
}

Layer make_concat(std::string name, FeatureShape in, int out_c) {
  Layer l;
  l.kind = LayerKind::kConcat;
  l.name = std::move(name);
  l.in = in;
  l.out = FeatureShape{out_c, in.h, in.w};
  return l;
}

Layer make_attention(std::string name, FeatureShape in, int heads) {
  Layer l;
  l.kind = LayerKind::kAttention;
  l.name = std::move(name);
  l.in = in;
  assert(in.c % 3 == 0);  // packed QKV input
  const int d = in.c / 3;
  assert(heads > 0 && d % heads == 0);
  l.heads = heads;
  l.out = FeatureShape{d, in.h, in.w};
  return l;
}

}  // namespace mbs::core
