// WaveCore training-step simulator.
//
// Executes a schedule over the architecture model and reports the metrics
// the paper's evaluation uses: per-step execution time (Fig. 10a, 12, 13),
// DRAM traffic (Fig. 10c, 11), energy (Fig. 10b), systolic-array
// utilization (Fig. 14), and a per-layer-type time breakdown (Fig. 12).
//
// The simulator accounts for all memory, buffer, and arithmetic activity
// (Sec. 5): GEMM layers run on the systolic array with their per-sub-batch
// im2col GEMM shapes; normalization/pooling/activation/merge layers run on
// the vector units and are usually bandwidth bound. Per layer, compute
// overlaps DRAM transfers (the local buffers are double buffered, Sec. 4.2),
// so layer time = max(compute, DRAM); layers execute in sequence.
#pragma once

#include <cstdint>

#include "arch/energy.h"
#include "arch/memory.h"
#include "arch/systolic.h"
#include "core/network.h"
#include "sched/schedule.h"
#include "sched/traffic.h"

namespace mbs::sim {

/// Full accelerator configuration (defaults: the Sec. 4.2 WaveCore).
struct WaveCoreConfig {
  arch::SystolicConfig systolic;          ///< per-core array
  arch::MemoryConfig memory = arch::hbm2();  ///< chip-level DRAM
  int cores = 2;
  std::int64_t global_buffer_bytes = 10ll * 1024 * 1024;  ///< per core
  double buffer_bw_bytes = 501.0 * 1024 * 1024 * 1024;    ///< per core (Fig. 9)
  double vector_flops = 2.87e12;          ///< per-core vector/scalar units
  arch::EnergyModel energy;               ///< dram_pj overridden by `memory`
  bool unlimited_dram_bw = false;         ///< Fig. 14's isolation mode
};

/// Per-layer-type execution time (Fig. 12's stacked bars). "sum" covers the
/// element-wise merge/activation work (Add/Concat/ReLU).
struct LayerTypeTimes {
  double conv = 0;
  double fc = 0;
  double norm = 0;
  double pool = 0;
  double sum = 0;

  double total() const { return conv + fc + norm + pool + sum; }
};

/// Results of one simulated training step (chip level: two cores each
/// processing their half of the global mini-batch in parallel).
struct StepResult {
  double time_s = 0;            ///< per-step execution time
  double dram_bytes = 0;        ///< chip DRAM traffic (2x per-core)
  double buffer_bytes = 0;      ///< chip global-buffer traffic
  double total_macs = 0;        ///< chip useful MACs
  double systolic_utilization = 0;  ///< conv+FC MAC-weighted (Fig. 14)
  double compute_time_s = 0;    ///< sum of per-layer compute components
  double memory_time_s = 0;     ///< sum of per-layer DRAM components
  LayerTypeTimes time_by_type;
  arch::EnergyBreakdown energy;
};

/// Simulates one training step of `net` under `schedule` on `hw`.
StepResult simulate_step(const core::Network& net,
                         const sched::Schedule& schedule,
                         const WaveCoreConfig& hw);

}  // namespace mbs::sim
