#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace mbs::sim {

namespace {

using core::Layer;
using core::LayerKind;
using sched::Phase;

/// DRAM and buffer bytes of one (block, layer) aggregated by phase.
struct LayerBytes {
  double dram[2] = {0, 0};  ///< indexed by Phase
  double buf[2] = {0, 0};
};

/// Approximate vector-unit operation counts (per sample).
double vector_ops_fwd(const Layer& l) {
  return static_cast<double>(l.flops_per_sample());
}

double vector_ops_bwd(const Layer& l) {
  switch (l.kind) {
    case LayerKind::kNorm:
      // Gradients w.r.t. input plus scale/shift parameter gradients.
      return 2.0 * static_cast<double>(l.flops_per_sample());
    case LayerKind::kAct:
      return static_cast<double>(l.in.elements());
    case LayerKind::kPool:
      return static_cast<double>(l.out.elements());
    case LayerKind::kAdd:
    case LayerKind::kConcat:
      return 0;  // backward is gradient routing
    default:
      return 0;
  }
}

/// Softmax ops of one attention layer, per sample per direction (~4 ops per
/// score-matrix element). Duplicated in arch/systolic.cc; keep in lock step.
double attention_softmax_ops(const Layer& l) {
  const double s = static_cast<double>(l.in.h) * l.in.w;
  return 4.0 * l.heads * s * s;
}

/// Fig. 12 category of a layer. Attention is GEMM-dominated compute and
/// reports under the conv slot (LayerTypeTimes' layout is
/// serialization-frozen, so it cannot grow a field).
double* type_slot(LayerTypeTimes& t, LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return &t.conv;
    case LayerKind::kAttention: return &t.conv;
    case LayerKind::kFc: return &t.fc;
    case LayerKind::kNorm: return &t.norm;
    case LayerKind::kPool: return &t.pool;
    default: return &t.sum;
  }
}

}  // namespace

StepResult simulate_step(const core::Network& net,
                         const sched::Schedule& schedule,
                         const WaveCoreConfig& hw) {
  const sched::Traffic traffic = sched::compute_traffic(net, schedule);

  // Aggregate traffic per (block, layer, phase).
  std::map<std::pair<int, int>, LayerBytes> by_layer;
  for (const sched::TrafficRecord& r : traffic.records) {
    LayerBytes& lb = by_layer[{r.block, r.layer}];
    const int p = r.phase == Phase::kForward ? 0 : 1;
    lb.dram[p] += r.dram_read + r.dram_write;
    lb.buf[p] += r.buf_read + r.buf_write;
  }

  const double dram_bw = hw.unlimited_dram_bw
                             ? std::numeric_limits<double>::infinity()
                             : hw.memory.per_core_bandwidth(hw.cores);

  StepResult out;
  double gemm_cycles = 0;
  double gemm_macs = 0;
  double vector_ops_total = 0;
  double gemm_buf_bytes = 0;

  arch::SystolicConfig systolic = hw.systolic;
  systolic.weight_double_buffering =
      sched::uses_weight_double_buffering(schedule.config);

  bool first_gemm = true;
  for (std::size_t bi = 0; bi < net.blocks.size(); ++bi) {
    const sched::Group& grp = schedule.groups[static_cast<std::size_t>(
        schedule.group_of_block(static_cast<int>(bi)))];
    const std::vector<int> chunks = grp.chunks(schedule.mini_batch);

    int li = 0;
    net.blocks[bi].for_each_layer([&](const Layer& l, int) {
      const LayerBytes lb = by_layer[{static_cast<int>(bi), li}];
      ++li;

      double compute_fwd = 0;
      double compute_bwd = 0;
      if (l.is_gemm()) {
        const bool skip_dgrad = first_gemm;
        first_gemm = false;
        for (int c : chunks) {
          const arch::GemmTiming fwd = arch::simulate_gemm(
              systolic, arch::gemm_shape(l, c, arch::GemmPass::kForward));
          gemm_cycles += static_cast<double>(fwd.cycles);
          gemm_macs += static_cast<double>(fwd.macs);
          gemm_buf_bytes += static_cast<double>(fwd.buf_read_bytes +
                                                fwd.buf_write_bytes);
          compute_fwd += fwd.seconds(systolic);

          const arch::GemmTiming wgrad = arch::simulate_gemm(
              systolic, arch::gemm_shape(l, c, arch::GemmPass::kWeightGrad));
          gemm_cycles += static_cast<double>(wgrad.cycles);
          gemm_macs += static_cast<double>(wgrad.macs);
          gemm_buf_bytes += static_cast<double>(wgrad.buf_read_bytes +
                                                wgrad.buf_write_bytes);
          compute_bwd += wgrad.seconds(systolic);

          if (!skip_dgrad) {
            const arch::GemmTiming dgrad = arch::simulate_gemm(
                systolic, arch::gemm_shape(l, c, arch::GemmPass::kDataGrad));
            gemm_cycles += static_cast<double>(dgrad.cycles);
            gemm_macs += static_cast<double>(dgrad.macs);
            gemm_buf_bytes += static_cast<double>(dgrad.buf_read_bytes +
                                                  dgrad.buf_write_bytes);
            compute_bwd += dgrad.seconds(systolic);
          }
        }
      } else if (l.is_attention()) {
        // Attention's Q.K^T / P.V GEMMs run on the array; shapes are per
        // (sample, head), so one simulation per distinct shape scales
        // exactly by mini_batch * heads regardless of the chunking. The
        // softmax runs on the vector unit.
        const double scale =
            static_cast<double>(schedule.mini_batch) * l.heads;
        auto run_attention = [&](arch::GemmPass pass, double* compute) {
          for (const arch::GemmShape& sh : arch::attention_gemm_shapes(l, pass)) {
            const arch::GemmTiming t = arch::simulate_gemm(systolic, sh);
            gemm_cycles += scale * static_cast<double>(t.cycles);
            gemm_macs += scale * static_cast<double>(t.macs);
            gemm_buf_bytes += scale * static_cast<double>(t.buf_read_bytes +
                                                          t.buf_write_bytes);
            *compute += scale * t.seconds(systolic);
          }
        };
        run_attention(arch::GemmPass::kForward, &compute_fwd);
        run_attention(arch::GemmPass::kDataGrad, &compute_bwd);
        const double soft =
            attention_softmax_ops(l) * schedule.mini_batch;
        vector_ops_total += 2 * soft;
        compute_fwd += soft / hw.vector_flops;
        compute_bwd += soft / hw.vector_flops;
      } else {
        const double n = schedule.mini_batch;
        const double ops_f = vector_ops_fwd(l) * n;
        const double ops_b = vector_ops_bwd(l) * n;
        vector_ops_total += ops_f + ops_b;
        compute_fwd = ops_f / hw.vector_flops;
        compute_bwd = ops_b / hw.vector_flops;
        // Vector layers also contend for global-buffer bandwidth.
        compute_fwd = std::max(compute_fwd, lb.buf[0] / hw.buffer_bw_bytes);
        compute_bwd = std::max(compute_bwd, lb.buf[1] / hw.buffer_bw_bytes);
      }

      const double t_fwd = std::max(compute_fwd, lb.dram[0] / dram_bw);
      const double t_bwd = std::max(compute_bwd, lb.dram[1] / dram_bw);
      out.time_s += t_fwd + t_bwd;
      out.compute_time_s += compute_fwd + compute_bwd;
      out.memory_time_s += (lb.dram[0] + lb.dram[1]) / dram_bw;
      *type_slot(out.time_by_type, l.kind) += t_fwd + t_bwd;
    });
  }

  out.systolic_utilization =
      gemm_cycles > 0
          ? gemm_macs / (gemm_cycles *
                         static_cast<double>(systolic.macs_per_cycle()))
          : 0;

  // Chip-level totals: both cores run the same schedule on their halves of
  // the global mini-batch in parallel.
  const double cores = hw.cores;
  out.dram_bytes = cores * traffic.dram_bytes();
  out.buffer_bytes = cores * (traffic.buffer_bytes() + gemm_buf_bytes);
  out.total_macs = cores * gemm_macs;

  arch::EnergyModel em = hw.energy;
  em.dram_pj_per_byte = hw.memory.energy_pj_per_byte;
  out.energy = arch::compute_energy(em, out.dram_bytes, out.buffer_bytes,
                                    out.total_macs, cores * vector_ops_total,
                                    out.time_s);
  return out;
}

}  // namespace mbs::sim
