#include "arch/area.h"

namespace mbs::arch {

double AreaModel::array_mm2() const {
  return pe_area_um2 * array_rows * array_cols / 1e6;
}

double AreaModel::total_mm2() const {
  const double per_core = array_mm2() + global_buffer_mm2_per_core +
                          vector_units_mm2_per_core + misc_mm2_per_core;
  // The crossbar/NoC extends the chip width by noc_width_extension_mm; with
  // a roughly square ~23 mm die this adds ~0.4 * sqrt(area) mm^2. The paper
  // folds this into the 534.0 mm^2 total; we keep the same roll-up.
  const double base = per_core * cores;
  const double noc = noc_width_extension_mm * 23.1;
  return base + noc;
}

double AreaModel::peak_tops() const {
  return 2.0 * array_rows * array_cols * clock_ghz * cores / 1e3;
}

std::vector<AcceleratorSpec> accelerator_comparison(const AreaModel& m) {
  std::vector<AcceleratorSpec> specs;
  specs.push_back({"V100", "12 FFN", 812.0, 1.53, 125.0, "FP16", 250.0, 33.0});
  specs.push_back({"TPU v1", "28", 331.0, 0.70, 92.0, "INT8", 43.0, 24.0});
  specs.push_back({"TPU v2", "N/A", 0.0, 0.70, 45.0, "FP16", 0.0, 0.0});
  specs.push_back({"WaveCore", "32", m.total_mm2(), m.clock_ghz, m.peak_tops(),
                   "FP16", m.peak_power_w, 20.0});
  return specs;
}

}  // namespace mbs::arch
