#include "arch/gpu.h"

#include <algorithm>
#include <cmath>

#include "arch/systolic.h"

namespace mbs::arch {

namespace {

using core::Layer;
using core::LayerKind;

/// Occupancy-limited efficiency of one GEMM: the fraction of the GPU the
/// thread-block grid can fill. Small grids (few output tiles) strand SMs —
/// the effect Fig. 13 attributes the V100's losses to.
double gemm_utilization(const GpuModel& gpu, const GemmShape& s) {
  const double tiles = std::ceil(static_cast<double>(s.gh) / gpu.tile) *
                       std::ceil(static_cast<double>(s.gw) / gpu.tile);
  const double slots = static_cast<double>(gpu.sm_count) * gpu.blocks_per_sm;
  // Quantized wave occupancy: e.g. 1.25 waves of blocks run at 1.25/2 = 62%.
  const double waves = tiles / slots;
  const double occupancy = waves / std::ceil(waves);
  return std::min(1.0, occupancy) * gpu.gemm_efficiency;
}

/// One GEMM pass: compute-or-bandwidth bound plus launch overhead.
void add_gemm(const GpuModel& gpu, const Layer& l, int n, GemmPass pass,
              GpuStepResult& r) {
  const GemmShape s = gemm_shape(l, n, pass);
  const double flops = 2.0 * static_cast<double>(s.macs());
  const double compute = flops / (gpu.peak_flops * gemm_utilization(gpu, s));

  // DRAM movement: A (im2col-expanded when materialized: written by the
  // im2col kernel then read by the GEMM), B, and C.
  const double a_bytes = 2.0 * static_cast<double>(s.gh) * s.k;
  const double b_bytes = 2.0 * static_cast<double>(s.k) * s.gw;
  const double c_bytes = 2.0 * static_cast<double>(s.gh) * s.gw;
  double bytes = a_bytes + b_bytes + c_bytes;
  if (gpu.materialize_im2col && l.kind == LayerKind::kConv &&
      (l.kernel_h > 1 || l.kernel_w > 1))
    bytes += a_bytes;  // the expansion is first written to DRAM
  const double memory = bytes / gpu.mem_bw_bytes;

  r.compute_time_s += compute;
  r.memory_time_s += memory;
  r.overhead_s += gpu.kernel_overhead_s * (gpu.materialize_im2col ? 2 : 1);
  r.dram_bytes += bytes;
  r.time_s += std::max(compute, memory) + gpu.kernel_overhead_s;
}

/// Bandwidth-bound vector layer (norm/act/pool/add): forward + backward.
void add_vector(const GpuModel& gpu, const Layer& l, int n, GpuStepResult& r) {
  const double in_b = static_cast<double>(l.input_bytes_per_sample()) * n;
  const double out_b = static_cast<double>(l.output_bytes_per_sample()) * n;
  // Forward: read input (+ an extra stats pass for norm), write output.
  // Backward: read gradient + stashed data, write input gradient.
  double bytes = in_b + out_b;
  if (l.kind == LayerKind::kNorm) bytes += in_b;
  bytes += 2.0 * (in_b + out_b);
  r.memory_time_s += bytes / gpu.mem_bw_bytes;
  r.dram_bytes += bytes;
  r.overhead_s += 2 * gpu.kernel_overhead_s;
  r.time_s += bytes / gpu.mem_bw_bytes + 2 * gpu.kernel_overhead_s;
}

}  // namespace

GpuStepResult simulate_gpu_step(const GpuModel& gpu, const core::Network& net,
                                int mini_batch) {
  GpuStepResult r;
  bool first_gemm = true;
  for (const core::Block& blk : net.blocks) {
    blk.for_each_layer([&](const Layer& l, int) {
      if (l.is_gemm()) {
        add_gemm(gpu, l, mini_batch, GemmPass::kForward, r);
        if (!first_gemm) add_gemm(gpu, l, mini_batch, GemmPass::kDataGrad, r);
        add_gemm(gpu, l, mini_batch, GemmPass::kWeightGrad, r);
        first_gemm = false;
      } else {
        add_vector(gpu, l, mini_batch, r);
      }
    });
  }
  return r;
}

}  // namespace mbs::arch
