#include "arch/energy.h"

namespace mbs::arch {

EnergyBreakdown compute_energy(const EnergyModel& model, double dram_bytes,
                               double buffer_bytes, double macs,
                               double vector_ops, double step_seconds) {
  EnergyBreakdown e;
  e.dram_j = dram_bytes * model.dram_pj_per_byte * 1e-12;
  e.buffer_j = buffer_bytes * model.buffer_pj_per_byte * 1e-12;
  e.mac_j = macs * (1.0 - model.zero_skip_fraction) * model.mac_pj * 1e-12;
  e.vector_j = vector_ops * model.vector_op_pj * 1e-12;
  e.static_j = model.static_power_w * step_seconds;
  return e;
}

}  // namespace mbs::arch
