// Energy model (Sec. 4.2 "Power Modeling", Sec. 6 energy results).
//
// The paper derives per-access and per-op energies from CACTI, Orion 2.0,
// the Rambus DRAM power model and published multiplier/adder/flip-flop
// figures; we embed equivalent per-unit constants (see DESIGN.md
// substitutions). Two properties the paper calls out are preserved:
// a global-buffer access is ~8x cheaper than a DRAM access (Sec. 6), and
// PEs skip multiply/accumulate work when an input is zero (Sec. 4.1).
#pragma once

#include <cstdint>

namespace mbs::arch {

/// Per-unit energy constants and static power.
struct EnergyModel {
  double dram_pj_per_byte = 25.0;    ///< overridden by MemoryConfig
  double buffer_pj_per_byte = 3.1;   ///< global buffer, ~DRAM/8 (Sec. 6)
  double mac_pj = 2.0;               ///< 16b multiply + 32b accumulate + regs
  double vector_op_pj = 0.4;         ///< vector/scalar unit op
  /// Fraction of MACs skipped because one input is zero (ReLU-induced
  /// sparsity; Sec. 4.1 "skip computes").
  double zero_skip_fraction = 0.4;
  /// Leakage/clock-tree power. Calibrated so ArchOpt's energy gain stays
  /// ~2% (Sec. 6: "ArchOpt has little energy benefit as it conserves only
  /// static energy").
  double static_power_w = 4.0;
};

/// Energy of one training step, broken into the components the paper
/// discusses (DRAM vs buffer vs arithmetic vs static).
struct EnergyBreakdown {
  double dram_j = 0;
  double buffer_j = 0;
  double mac_j = 0;
  double vector_j = 0;
  double static_j = 0;

  double total() const {
    return dram_j + buffer_j + mac_j + vector_j + static_j;
  }
  double dram_fraction() const {
    const double t = total();
    return t > 0 ? dram_j / t : 0;
  }
};

/// Combines activity counts into a step-energy breakdown.
EnergyBreakdown compute_energy(const EnergyModel& model, double dram_bytes,
                               double buffer_bytes, double macs,
                               double vector_ops, double step_seconds);

}  // namespace mbs::arch
