#include "arch/memory.h"

#include <cstdio>
#include <cstdlib>

namespace mbs::arch {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr std::int64_t kGiBInt = 1024ll * 1024 * 1024;
}  // namespace

MemoryConfig hbm2() {
  // One 4-die HBM2 stack: 300 GiB/s, 8 GiB, 8 channels (Tab. 4).
  return {"HBM2", 300.0 * kGiB, 8 * kGiBInt, 8, 25.0};
}

MemoryConfig hbm2_x2() {
  return {"HBM2x2", 600.0 * kGiB, 16 * kGiBInt, 16, 25.0};
}

MemoryConfig gddr5() {
  // 12 chips x 32 GiB/s, 1 GiB each (Tab. 4).
  return {"GDDR5", 384.0 * kGiB, 12 * kGiBInt, 12, 35.0};
}

MemoryConfig lpddr4() {
  // 8 chips x 29.9 GiB/s, 2 GiB each (Tab. 4).
  return {"LPDDR4", 239.2 * kGiB, 16 * kGiBInt, 8, 22.0};
}

std::vector<MemoryConfig> all_memory_configs() {
  return {hbm2(), hbm2_x2(), gddr5(), lpddr4()};
}

MemoryConfig memory_config_by_name(const std::string& name) {
  for (const MemoryConfig& m : all_memory_configs())
    if (m.name == name) return m;
  std::fprintf(stderr, "unknown memory config '%s'\n", name.c_str());
  std::abort();
}

}  // namespace mbs::arch
