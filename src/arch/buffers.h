// Local buffer sizing (Sec. 4.2 "Local Buffers").
//
// The A and B local input buffers are double buffered so data transfer
// overlaps compute; the accumulation buffer is triple buffered (current
// tile, previous tile draining to memory, next tile's partial sums
// loading). The sizes derive from the systolic geometry:
//   half of B  = one 16b word per PE                    = rows*cols*2 B
//   half of A  = two B halves (to hide the weight load) = 2 * |B half|
//   acc part   = one full C tile in 32b                 = tile_m*cols*4 B
// With the 128x128 array this gives the paper's 32 KiB / 64 KiB / 128 KiB.
#pragma once

#include <cstdint>

#include "arch/systolic.h"

namespace mbs::arch {

struct LocalBufferPlan {
  std::int64_t b_half_bytes = 0;   ///< one half of the B (weight) buffer
  std::int64_t a_half_bytes = 0;   ///< one half of the A (input) buffer
  std::int64_t acc_part_bytes = 0; ///< one part of the accumulation buffer
  int b_copies = 2;                ///< double buffered
  int a_copies = 2;
  int acc_copies = 3;              ///< triple buffered

  std::int64_t total_bytes() const {
    return b_half_bytes * b_copies + a_half_bytes * a_copies +
           acc_part_bytes * acc_copies;
  }
};

/// Derives the Sec. 4.2 buffer plan from the array geometry.
inline LocalBufferPlan plan_local_buffers(const SystolicConfig& cfg) {
  LocalBufferPlan p;
  p.b_half_bytes = static_cast<std::int64_t>(cfg.rows) * cfg.cols * 2;
  p.a_half_bytes = 2 * p.b_half_bytes;
  p.acc_part_bytes = static_cast<std::int64_t>(cfg.tile_m()) * cfg.cols * 4;
  return p;
}

}  // namespace mbs::arch
