// Multi-accelerator weak scaling (Sec. 4.2 "Scalability").
//
// The paper scales WaveCore by distributing larger global mini-batches
// across accelerators (or extra cores), with each device running the same
// MBS schedule on its share and communicating only for loss computation and
// the parameter all-reduce at the end of the step. This model estimates
// step time and scaling efficiency for that regime.
#pragma once

#include <cstdint>
#include <vector>

namespace mbs::arch {

struct InterconnectConfig {
  /// Per-device interconnect bandwidth (both directions combined), e.g.
  /// PCIe 3.0 x16-class links.
  double bandwidth_bytes_per_s = 12e9;
  double latency_s = 5e-6;  ///< per message
};

struct ScalingResult {
  int devices = 1;
  double compute_time_s = 0;    ///< per-device step time (unchanged: weak scaling)
  double allreduce_time_s = 0;  ///< ring all-reduce of the gradients
  double step_time_s = 0;
  double efficiency = 1.0;      ///< single-device step time / step time
};

/// Ring all-reduce cost: 2*(p-1)/p * bytes / bandwidth + 2*(p-1) hops of
/// latency. Exact for bandwidth-optimal ring implementations.
inline double ring_allreduce_seconds(double bytes, int devices,
                                     const InterconnectConfig& net) {
  if (devices <= 1) return 0;
  const double p = devices;
  return 2.0 * (p - 1.0) / p * bytes / net.bandwidth_bytes_per_s +
         2.0 * (p - 1.0) * net.latency_s;
}

/// Weak scaling: each device trains `per_device_step_s` on its fixed-size
/// shard, then all-reduces `gradient_bytes` (16b parameter gradients).
inline ScalingResult weak_scaling(double per_device_step_s,
                                  double gradient_bytes, int devices,
                                  const InterconnectConfig& net = {}) {
  ScalingResult r;
  r.devices = devices;
  r.compute_time_s = per_device_step_s;
  r.allreduce_time_s = ring_allreduce_seconds(gradient_bytes, devices, net);
  r.step_time_s = per_device_step_s + r.allreduce_time_s;
  r.efficiency = per_device_step_s / r.step_time_s;
  return r;
}

/// Sweeps device counts; returns one result per entry of `device_counts`.
inline std::vector<ScalingResult> weak_scaling_sweep(
    double per_device_step_s, double gradient_bytes,
    const std::vector<int>& device_counts, const InterconnectConfig& net = {}) {
  std::vector<ScalingResult> out;
  out.reserve(device_counts.size());
  for (int d : device_counts)
    out.push_back(weak_scaling(per_device_step_s, gradient_bytes, d, net));
  return out;
}

}  // namespace mbs::arch
