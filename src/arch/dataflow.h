// Systolic-array dataflow taxonomy for the cycle-level backend.
//
// The analytic wave model (simulate_gemm) hard-codes WaveCore's
// weight-stationary wave pipeline; the cycle-level backend
// (simulate_gemm_cycles / simulate_systolic_step) is parameterised over the
// three classic stationary choices so analytic-vs-cycle divergence can be
// attributed to mapping, not just bandwidth.
#pragma once

#include <cstring>

namespace mbs::arch {

/// Which GEMM operand stays pinned in the PE array across a fold.
enum class Dataflow {
  kOutputStationary,  ///< C tiles accumulate in place; A and B stream
  kWeightStationary,  ///< B (filter) folds preload; A streams, C drains
  kInputStationary,   ///< A (ifmap) folds preload; B streams, C drains
};

inline const char* to_string(Dataflow d) {
  switch (d) {
    case Dataflow::kOutputStationary: return "os";
    case Dataflow::kWeightStationary: return "ws";
    case Dataflow::kInputStationary: return "is";
  }
  return "?";
}

/// Parses "os" / "ws" / "is"; returns false (leaving *out untouched) on
/// anything else.
inline bool parse_dataflow(const char* s, Dataflow* out) {
  if (!s) return false;
  if (std::strcmp(s, "os") == 0) *out = Dataflow::kOutputStationary;
  else if (std::strcmp(s, "ws") == 0) *out = Dataflow::kWeightStationary;
  else if (std::strcmp(s, "is") == 0) *out = Dataflow::kInputStationary;
  else return false;
  return true;
}

}  // namespace mbs::arch
