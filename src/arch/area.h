// Area and peak-power estimation (Sec. 4.2, Tab. 2).
//
// The paper composes WaveCore's die area from published component designs:
// a 24T flip-flop (Kim et al. 2014), decimal FP multiplier/adder (Hickmann
// et al. 2007) scaled to 32 nm, CACTI for SRAM, and Orion 2.0 for the NoC.
// We embed the resulting per-component constants and reproduce the Tab. 2
// roll-up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mbs::arch {

/// Per-component area/power constants at 32 nm (Sec. 4.2).
struct AreaModel {
  double pe_area_um2 = 12173.0;          ///< one PE (>90% multiplier+adder)
  int array_rows = 128;
  int array_cols = 128;
  int cores = 2;
  double global_buffer_mm2_per_core = 18.65;  ///< 10 MiB, 32 banks (CACTI)
  double vector_units_mm2_per_core = 4.33;
  double noc_width_extension_mm = 0.4;   ///< crossbar/NoC (Orion/Dadiannao)
  double misc_mm2_per_core = 39.96;      ///< local buffers, ctrl, mem PHY
  double clock_ghz = 0.7;
  double peak_power_w = 56.0;

  /// Area of one 128x128 PE array in mm^2 (paper: 199.45 mm^2).
  double array_mm2() const;
  /// Total die area in mm^2 (paper: 534.0 mm^2).
  double total_mm2() const;
  /// Peak FP16 TOPS across all cores (paper: 45 TOPS).
  double peak_tops() const;
};

/// One row of Tab. 2 (accelerator spec comparison).
struct AcceleratorSpec {
  std::string name;
  std::string technology;
  double die_area_mm2 = 0;
  double clock_ghz = 0;
  double tops = 0;
  std::string tops_kind;
  double peak_power_w = 0;
  double on_chip_buffers_mib = 0;
};

/// Tab. 2: V100, TPU v1, TPU v2 published specs plus WaveCore computed from
/// `model`.
std::vector<AcceleratorSpec> accelerator_comparison(const AreaModel& model);

}  // namespace mbs::arch
