// Analytical V100-class GPU comparator for Fig. 13.
//
// The paper measures a TESLA V100 running Caffe. We do not have that
// hardware, so we model the mechanism Fig. 13 isolates: a GPU with 3x
// WaveCore's peak compute and memory bandwidth still loses on deep CNNs
// because (a) per-layer parallelism limits occupancy (few thread blocks for
// small sub-problems), (b) Caffe materializes im2col-expanded inputs in
// DRAM (R*S times the feature volume, written then re-read), and (c) every
// layer launch pays a fixed kernel overhead. See DESIGN.md substitutions.
#pragma once

#include <cstdint>

#include "core/network.h"

namespace mbs::arch {

/// GPU model parameters (defaults: V100 SXM2 + Caffe-style execution).
struct GpuModel {
  double peak_flops = 125e12;       ///< FP16 tensor-core peak (Tab. 2)
  double mem_bw_bytes = 900e9;      ///< HBM2 bandwidth
  int sm_count = 80;
  int tile = 128;                   ///< GEMM thread-block tile (128x128)
  int blocks_per_sm = 2;            ///< concurrent tiles per SM
  double kernel_overhead_s = 12e-6; ///< launch + framework overhead per kernel
  double gemm_efficiency = 0.55;    ///< achieved/peak at full occupancy (Caffe)
  bool materialize_im2col = true;   ///< Caffe lowers conv via explicit im2col
};

/// Per-training-step GPU execution estimate.
struct GpuStepResult {
  double time_s = 0;
  double dram_bytes = 0;
  double compute_time_s = 0;
  double memory_time_s = 0;
  double overhead_s = 0;
};

/// Estimates one training step (forward + both backward passes) of `net`
/// with `mini_batch` samples on the modeled GPU.
GpuStepResult simulate_gpu_step(const GpuModel& gpu, const core::Network& net,
                                int mini_batch);

}  // namespace mbs::arch
