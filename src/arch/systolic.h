// WaveCore's systolic-array compute model (Sec. 4.1).
//
// Convolutions and FC layers execute as im2col GEMMs (Tab. 1). A GEMM is
// blocked into m x n output tiles (n = array width; m sized so a tile fills
// one accumulation half-buffer). Each tile is computed in ceil(K / rows)
// waves. Without weight double buffering every wave pays a `rows`-cycle
// weight shift-in gap (Fig. 8b top); with the ArchOpt PE (one extra 16b
// register per PE) the next wave's weights load during the current wave's
// streaming, leaving only the initial fill and final drain (Fig. 8b bottom).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/dataflow.h"
#include "core/layer.h"

namespace mbs::core {
struct Network;
}
namespace mbs::sched {
struct Schedule;
struct Traffic;
}

namespace mbs::arch {

/// Systolic array geometry and clocking (defaults: Sec. 4, Tab. 2).
struct SystolicConfig {
  int rows = 128;              ///< PE array height (k)
  int cols = 128;              ///< PE array width (n)
  double clock_hz = 0.7e9;     ///< 0.7 GHz (Tab. 2)
  /// One part of the triple-buffered 32b accumulation buffer; determines the
  /// tile height m = acc_half_bytes / (cols * 4B) (Sec. 4.2: 128 KiB).
  std::int64_t acc_half_bytes = 128 * 1024;
  bool weight_double_buffering = true;

  /// Tile height m (rows of C per tile).
  int tile_m() const {
    return static_cast<int>(acc_half_bytes / (static_cast<std::int64_t>(cols) * 4));
  }
  /// Peak MACs per cycle.
  std::int64_t macs_per_cycle() const {
    return static_cast<std::int64_t>(rows) * cols;
  }
};

/// im2col GEMM dimensions: C[Gh x Gw] = A[Gh x K] * B[K x Gw].
struct GemmShape {
  std::int64_t gh = 0;
  std::int64_t gw = 0;
  std::int64_t k = 0;

  std::int64_t macs() const { return gh * gw * k; }
};

/// The three GEMM passes of a convolution/FC layer during training (Tab. 1).
enum class GemmPass { kForward, kDataGrad, kWeightGrad };

const char* to_string(GemmPass p);

/// Tab. 1: GEMM dimensions of an im2col convolution (or FC layer) for the
/// given training pass and sub-batch size.
GemmShape gemm_shape(const core::Layer& layer, int sub_batch, GemmPass pass);

/// GEMM dimensions of one attention layer per (sample, head): both operands
/// are streamed activations, so unlike gemm_shape the batch does not fold
/// into the shapes — callers scale results by sub_batch * heads. kForward is
/// {Q.K^T, P.V}; kDataGrad is {dP = dCtx.V^T, dV = P^T.dCtx, dQ = dS.K,
/// dK = dS^T.Q}; kWeightGrad is empty (attention owns no weights).
std::vector<GemmShape> attention_gemm_shapes(const core::Layer& layer,
                                             GemmPass pass);

/// Result of running one GEMM through the array.
struct GemmTiming {
  std::int64_t cycles = 0;
  std::int64_t macs = 0;          ///< useful MACs (Gh*Gw*K)
  double utilization = 0;         ///< macs / (cycles * rows * cols)
  std::int64_t buf_read_bytes = 0;   ///< A and B streamed from global buffer
  std::int64_t buf_write_bytes = 0;  ///< C tiles written back (16b)
  double seconds(const SystolicConfig& cfg) const {
    return static_cast<double>(cycles) / cfg.clock_hz;
  }
};

/// Simulates one GEMM: tiling, waves, fill/drain and (optionally) the
/// inter-wave weight shift-in gaps. Exact for edge (partial) tiles.
GemmTiming simulate_gemm(const SystolicConfig& cfg, const GemmShape& shape);

// ---------------------------------------------------------------------------
// Cycle-level backend (Device::kSystolic).
//
// Unlike the wave model above — which is the paper's analytic pipeline
// formula — this backend walks every fold a GEMM makes across the PE array
// under an explicit dataflow (os/ws/is), counts exact fill/stream/drain
// cycles per fold including partial edge folds, tracks the per-operand bytes
// each fold streams through the PE-array scratchpad, and charges DRAM stall
// cycles against the schedule's per-(layer, phase) traffic with a
// double-buffered scratchpad overlap gate.
// ---------------------------------------------------------------------------

/// Cycle accounting of a simulated region (one GEMM or a whole step).
struct ComputeStats {
  std::int64_t comp_cycles = 0;   ///< cycles the array/vector unit is busy
  std::int64_t stall_cycles = 0;  ///< cycles lost waiting on DRAM
  double util = 0;         ///< useful MACs / (total cycles * rows * cols)
  double mapping_eff = 0;  ///< mean mapped-PE fraction over all folds

  std::int64_t total_cycles() const { return comp_cycles + stall_cycles; }
};

/// Scratchpad bytes one GEMM streams per array-side operand (fp16).
/// A = left/streaming operand (activations), B = top/preloaded operand
/// (weights), C = outputs including partial-sum spills between k-folds.
struct OperandBytes {
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;

  std::int64_t total() const { return a + b + c; }
};

/// One GEMM through the cycle-level array under a dataflow.
struct GemmCycles {
  std::int64_t comp_cycles = 0;
  std::int64_t macs = 0;           ///< useful MACs (Gh*Gw*K)
  std::int64_t folds = 0;          ///< mapping rounds executed
  std::int64_t mapped_pe_folds = 0;  ///< sum over folds of PEs mapped
  OperandBytes bytes;              ///< scratchpad streaming totals
  /// Working set of the largest single fold (operands + outputs); the
  /// double-buffer gate needs 2x this to overlap DRAM with compute.
  std::int64_t max_fold_bytes = 0;

  double mapping_eff(const SystolicConfig& cfg) const {
    return folds > 0 ? static_cast<double>(mapped_pe_folds) /
                           (static_cast<double>(folds) * cfg.rows * cfg.cols)
                     : 0;
  }
};

/// Runs one GEMM through the array fold by fold. Exact for partial edge
/// folds; os folds over (Gh/rows x Gw/cols) with K streaming, ws/is fold the
/// reduction dimension over the array rows and spill 32b partial sums to the
/// scratchpad between k-folds.
GemmCycles simulate_gemm_cycles(const SystolicConfig& cfg, Dataflow df,
                                const GemmShape& shape);

/// Scenario-level knobs of the cycle backend (the array geometry itself
/// comes from the hardware config; these select the mapping).
struct SystolicOptions {
  Dataflow dataflow = Dataflow::kOutputStationary;
  /// PE-array staging scratchpad; a (layer, phase) overlaps DRAM transfers
  /// with compute only when two copies of its largest fold fit.
  std::int64_t scratchpad_bytes = 512 * 1024;
};

/// Full parameter set of simulate_systolic_step.
struct SystolicSimParams {
  SystolicConfig array;
  SystolicOptions options;
  /// Per-core DRAM bandwidth in bytes/s; <= 0 means unconstrained (no
  /// stall cycles anywhere).
  double dram_bw_bytes_per_s = 0;
  /// Global-buffer bandwidth seen by the vector unit (bytes/s).
  double buffer_bw_bytes = 0;
  double vector_flops = 0;  ///< vector-unit throughput (ops/s)
  int cores = 2;            ///< chip-level scale-out factor
};

/// Cycle-level result of one training step on one core (chip-level totals
/// where noted).
struct SystolicStepResult {
  ComputeStats stats;
  double time_s = 0;          ///< total_cycles / clock
  double compute_time_s = 0;  ///< comp_cycles / clock
  double stall_time_s = 0;    ///< stall_cycles / clock
  double dram_bytes = 0;      ///< chip (cores x per-core schedule traffic)
  double total_macs = 0;      ///< chip
  /// Average per-core scratchpad streaming bandwidth by operand (bytes/s).
  double bw_ifmap = 0;   ///< A operand
  double bw_filter = 0;  ///< B operand
  double bw_ofmap = 0;   ///< C operand (writes + partial-sum re-reads)
};

/// Simulates one training step at cycle granularity: every sub-batch GEMM of
/// every layer runs through simulate_gemm_cycles (data-grad skipped for the
/// first GEMM layer, like the analytic model); vector layers run on the
/// vector unit; DRAM stalls come from `traffic` per (layer, phase), fully
/// hidden behind compute when the double-buffer gate holds. DRAM bytes moved
/// are the schedule's analytic traffic by construction — the two backends
/// diverge in time, never in traffic.
SystolicStepResult simulate_systolic_step(const core::Network& net,
                                          const sched::Schedule& schedule,
                                          const sched::Traffic& traffic,
                                          const SystolicSimParams& p);

}  // namespace mbs::arch
