// WaveCore's systolic-array compute model (Sec. 4.1).
//
// Convolutions and FC layers execute as im2col GEMMs (Tab. 1). A GEMM is
// blocked into m x n output tiles (n = array width; m sized so a tile fills
// one accumulation half-buffer). Each tile is computed in ceil(K / rows)
// waves. Without weight double buffering every wave pays a `rows`-cycle
// weight shift-in gap (Fig. 8b top); with the ArchOpt PE (one extra 16b
// register per PE) the next wave's weights load during the current wave's
// streaming, leaving only the initial fill and final drain (Fig. 8b bottom).
#pragma once

#include <cstdint>

#include "core/layer.h"

namespace mbs::arch {

/// Systolic array geometry and clocking (defaults: Sec. 4, Tab. 2).
struct SystolicConfig {
  int rows = 128;              ///< PE array height (k)
  int cols = 128;              ///< PE array width (n)
  double clock_hz = 0.7e9;     ///< 0.7 GHz (Tab. 2)
  /// One part of the triple-buffered 32b accumulation buffer; determines the
  /// tile height m = acc_half_bytes / (cols * 4B) (Sec. 4.2: 128 KiB).
  std::int64_t acc_half_bytes = 128 * 1024;
  bool weight_double_buffering = true;

  /// Tile height m (rows of C per tile).
  int tile_m() const {
    return static_cast<int>(acc_half_bytes / (static_cast<std::int64_t>(cols) * 4));
  }
  /// Peak MACs per cycle.
  std::int64_t macs_per_cycle() const {
    return static_cast<std::int64_t>(rows) * cols;
  }
};

/// im2col GEMM dimensions: C[Gh x Gw] = A[Gh x K] * B[K x Gw].
struct GemmShape {
  std::int64_t gh = 0;
  std::int64_t gw = 0;
  std::int64_t k = 0;

  std::int64_t macs() const { return gh * gw * k; }
};

/// The three GEMM passes of a convolution/FC layer during training (Tab. 1).
enum class GemmPass { kForward, kDataGrad, kWeightGrad };

const char* to_string(GemmPass p);

/// Tab. 1: GEMM dimensions of an im2col convolution (or FC layer) for the
/// given training pass and sub-batch size.
GemmShape gemm_shape(const core::Layer& layer, int sub_batch, GemmPass pass);

/// Result of running one GEMM through the array.
struct GemmTiming {
  std::int64_t cycles = 0;
  std::int64_t macs = 0;          ///< useful MACs (Gh*Gw*K)
  double utilization = 0;         ///< macs / (cycles * rows * cols)
  std::int64_t buf_read_bytes = 0;   ///< A and B streamed from global buffer
  std::int64_t buf_write_bytes = 0;  ///< C tiles written back (16b)
  double seconds(const SystolicConfig& cfg) const {
    return static_cast<double>(cycles) / cfg.clock_hz;
  }
};

/// Simulates one GEMM: tiling, waves, fill/drain and (optionally) the
/// inter-wave weight shift-in gaps. Exact for edge (partial) tiles.
GemmTiming simulate_gemm(const SystolicConfig& cfg, const GemmShape& shape);

}  // namespace mbs::arch
