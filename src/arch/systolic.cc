#include "arch/systolic.h"

#include <algorithm>
#include <cassert>

namespace mbs::arch {

const char* to_string(GemmPass p) {
  switch (p) {
    case GemmPass::kForward: return "forward";
    case GemmPass::kDataGrad: return "data-grad";
    case GemmPass::kWeightGrad: return "weight-grad";
  }
  return "?";
}

GemmShape gemm_shape(const core::Layer& layer, int sub_batch, GemmPass pass) {
  assert(layer.is_gemm());
  const std::int64_t n = sub_batch;
  GemmShape s;
  if (layer.kind == core::LayerKind::kFc) {
    // FC is a plain GEMM: features are 1x1 "images".
    const std::int64_t in = layer.in.elements();
    const std::int64_t out = layer.out.c;
    switch (pass) {
      case GemmPass::kForward: s = {n, out, in}; break;
      case GemmPass::kDataGrad: s = {n, in, out}; break;
      case GemmPass::kWeightGrad: s = {in, out, n}; break;
    }
    return s;
  }
  const std::int64_t ci = layer.in.c;
  const std::int64_t co = layer.out.c;
  const std::int64_t rs =
      static_cast<std::int64_t>(layer.kernel_h) * layer.kernel_w;
  const std::int64_t hw_o = static_cast<std::int64_t>(layer.out.h) * layer.out.w;
  const std::int64_t hw_i = static_cast<std::int64_t>(layer.in.h) * layer.in.w;
  switch (pass) {
    case GemmPass::kForward: s = {n * hw_o, co, ci * rs}; break;
    case GemmPass::kDataGrad: s = {n * hw_i, ci, co * rs}; break;
    case GemmPass::kWeightGrad: s = {ci * rs, co, n * hw_o}; break;
  }
  return s;
}

GemmTiming simulate_gemm(const SystolicConfig& cfg, const GemmShape& shape) {
  assert(shape.gh > 0 && shape.gw > 0 && shape.k > 0);
  const std::int64_t m = cfg.tile_m();
  const std::int64_t n = cfg.cols;
  const std::int64_t k_rows = cfg.rows;

  const std::int64_t tiles_h = (shape.gh + m - 1) / m;
  const std::int64_t tiles_w = (shape.gw + n - 1) / n;
  const std::int64_t waves = (shape.k + k_rows - 1) / k_rows;

  GemmTiming t;
  t.macs = shape.macs();

  for (std::int64_t th = 0; th < tiles_h; ++th) {
    const std::int64_t m_t = std::min(m, shape.gh - th * m);
    for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
      const std::int64_t n_t = std::min(n, shape.gw - tw * n);
      std::int64_t cycles;
      if (cfg.weight_double_buffering) {
        // Initial weight fill, then each wave streams m_t rows; the next
        // wave's weights shift into the second register concurrently, which
        // only fully hides the k_rows-cycle load when m_t >= k_rows.
        cycles = k_rows + waves * std::max(m_t, k_rows) + n_t;
      } else {
        // Every wave pays the full weight shift-in gap (Fig. 8b top).
        cycles = waves * (k_rows + m_t) + k_rows + n_t;
      }
      t.cycles += cycles;
    }
  }

  // Global-buffer streaming: an A block (m_t x K) is re-read for every tile
  // column; a B block (K x n_t) for every tile row; C written back once in
  // 16b after the 32b accumulation completes.
  t.buf_read_bytes = 2 * (shape.gh * shape.k * tiles_w +
                          shape.k * shape.gw * tiles_h);
  t.buf_write_bytes = 2 * shape.gh * shape.gw;

  t.utilization = static_cast<double>(t.macs) /
                  (static_cast<double>(t.cycles) * cfg.rows * cfg.cols);
  return t;
}

}  // namespace mbs::arch
