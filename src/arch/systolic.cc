#include "arch/systolic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <utility>

#include "core/network.h"
#include "sched/schedule.h"
#include "sched/traffic.h"

namespace mbs::arch {

const char* to_string(GemmPass p) {
  switch (p) {
    case GemmPass::kForward: return "forward";
    case GemmPass::kDataGrad: return "data-grad";
    case GemmPass::kWeightGrad: return "weight-grad";
  }
  return "?";
}

GemmShape gemm_shape(const core::Layer& layer, int sub_batch, GemmPass pass) {
  assert(layer.is_gemm());
  const std::int64_t n = sub_batch;
  GemmShape s;
  if (layer.kind == core::LayerKind::kFc) {
    // FC is a plain GEMM: features are 1x1 "images".
    const std::int64_t in = layer.in.elements();
    const std::int64_t out = layer.out.c;
    switch (pass) {
      case GemmPass::kForward: s = {n, out, in}; break;
      case GemmPass::kDataGrad: s = {n, in, out}; break;
      case GemmPass::kWeightGrad: s = {in, out, n}; break;
    }
    return s;
  }
  const std::int64_t ci = layer.in.c;
  const std::int64_t co = layer.out.c;
  const std::int64_t rs =
      static_cast<std::int64_t>(layer.kernel_h) * layer.kernel_w;
  const std::int64_t hw_o = static_cast<std::int64_t>(layer.out.h) * layer.out.w;
  const std::int64_t hw_i = static_cast<std::int64_t>(layer.in.h) * layer.in.w;
  switch (pass) {
    case GemmPass::kForward: s = {n * hw_o, co, ci * rs}; break;
    case GemmPass::kDataGrad: s = {n * hw_i, ci, co * rs}; break;
    case GemmPass::kWeightGrad: s = {ci * rs, co, n * hw_o}; break;
  }
  return s;
}

std::vector<GemmShape> attention_gemm_shapes(const core::Layer& layer,
                                             GemmPass pass) {
  assert(layer.is_attention());
  const std::int64_t s = static_cast<std::int64_t>(layer.in.h) * layer.in.w;
  const std::int64_t dh = (layer.in.c / 3) / layer.heads;
  switch (pass) {
    case GemmPass::kForward:
      // scores[S x S] = Q[S x dh] . K^T; ctx[S x dh] = P[S x S] . V.
      return {{s, s, dh}, {s, dh, s}};
    case GemmPass::kDataGrad:
      // dP[S x S] = dCtx . V^T; dV[S x dh] = P^T . dCtx;
      // dQ[S x dh] = dS . K;    dK[S x dh] = dS^T . Q.
      return {{s, s, dh}, {s, dh, s}, {s, dh, s}, {s, dh, s}};
    case GemmPass::kWeightGrad:
      return {};
  }
  return {};
}

GemmTiming simulate_gemm(const SystolicConfig& cfg, const GemmShape& shape) {
  assert(shape.gh > 0 && shape.gw > 0 && shape.k > 0);
  const std::int64_t m = cfg.tile_m();
  const std::int64_t n = cfg.cols;
  const std::int64_t k_rows = cfg.rows;

  const std::int64_t tiles_h = (shape.gh + m - 1) / m;
  const std::int64_t tiles_w = (shape.gw + n - 1) / n;
  const std::int64_t waves = (shape.k + k_rows - 1) / k_rows;

  GemmTiming t;
  t.macs = shape.macs();

  for (std::int64_t th = 0; th < tiles_h; ++th) {
    const std::int64_t m_t = std::min(m, shape.gh - th * m);
    for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
      const std::int64_t n_t = std::min(n, shape.gw - tw * n);
      std::int64_t cycles;
      if (cfg.weight_double_buffering) {
        // Initial weight fill, then each wave streams m_t rows; the next
        // wave's weights shift into the second register concurrently, which
        // only fully hides the k_rows-cycle load when m_t >= k_rows.
        cycles = k_rows + waves * std::max(m_t, k_rows) + n_t;
      } else {
        // Every wave pays the full weight shift-in gap (Fig. 8b top).
        cycles = waves * (k_rows + m_t) + k_rows + n_t;
      }
      t.cycles += cycles;
    }
  }

  // Global-buffer streaming: an A block (m_t x K) is re-read for every tile
  // column; a B block (K x n_t) for every tile row; C written back once in
  // 16b after the 32b accumulation completes.
  t.buf_read_bytes = 2 * (shape.gh * shape.k * tiles_w +
                          shape.k * shape.gw * tiles_h);
  t.buf_write_bytes = 2 * shape.gh * shape.gw;

  t.utilization = static_cast<double>(t.macs) /
                  (static_cast<double>(t.cycles) * cfg.rows * cfg.cols);
  return t;
}

namespace {

constexpr std::int64_t kElemBytes = 2;  // fp16 operands

/// Skewed-wavefront cycles of one fold: `preload` cycles of stationary-
/// operand shift-in, then a `stream`-long skewed stream across a
/// `span_a` x `span_b` mapped region (first result after span_a + span_b - 2
/// cycles of fill/drain skew).
std::int64_t fold_cycles(std::int64_t preload, std::int64_t stream,
                         std::int64_t span_a, std::int64_t span_b) {
  return preload + stream + span_a + span_b - 2;
}

void add_fold(GemmCycles* g, std::int64_t cycles, std::int64_t mapped,
              std::int64_t macs, std::int64_t fold_bytes) {
  g->comp_cycles += cycles;
  g->mapped_pe_folds += mapped;
  g->macs += macs;
  g->folds += 1;
  g->max_fold_bytes = std::max(g->max_fold_bytes, fold_bytes);
}

}  // namespace

GemmCycles simulate_gemm_cycles(const SystolicConfig& cfg, Dataflow df,
                                const GemmShape& shape) {
  assert(shape.gh > 0 && shape.gw > 0 && shape.k > 0);
  const std::int64_t R = cfg.rows;
  const std::int64_t C = cfg.cols;
  GemmCycles g;

  if (df == Dataflow::kOutputStationary) {
    // C tiles pinned to the array: Gh folds over rows, Gw over cols, the
    // full reduction streams through each fold with no partial-sum spills.
    for (std::int64_t h0 = 0; h0 < shape.gh; h0 += R) {
      const std::int64_t m_t = std::min(R, shape.gh - h0);
      for (std::int64_t w0 = 0; w0 < shape.gw; w0 += C) {
        const std::int64_t n_t = std::min(C, shape.gw - w0);
        const std::int64_t cycles = fold_cycles(0, shape.k, m_t, n_t);
        const std::int64_t fold_elems =
            m_t * shape.k + shape.k * n_t + m_t * n_t;
        add_fold(&g, cycles, m_t * n_t, m_t * n_t * shape.k,
                 kElemBytes * fold_elems);
        g.bytes.a += kElemBytes * m_t * shape.k;
        g.bytes.b += kElemBytes * shape.k * n_t;
        g.bytes.c += kElemBytes * m_t * n_t;
      }
    }
    return g;
  }

  // ws/is fold the reduction over the array rows; C[m_t|n_t x span] partial
  // sums spill to the scratchpad after each fold and are re-read by every
  // fold after the first along k.
  for (std::int64_t k0 = 0; k0 < shape.k; k0 += R) {
    const std::int64_t k_t = std::min(R, shape.k - k0);
    const std::int64_t psum_rw = k0 == 0 ? 1 : 2;  // write, plus read-back
    if (df == Dataflow::kWeightStationary) {
      for (std::int64_t w0 = 0; w0 < shape.gw; w0 += C) {
        const std::int64_t n_t = std::min(C, shape.gw - w0);
        const std::int64_t cycles = fold_cycles(k_t, shape.gh, k_t, n_t);
        const std::int64_t fold_elems =
            k_t * n_t + shape.gh * k_t + shape.gh * n_t;
        add_fold(&g, cycles, k_t * n_t, k_t * n_t * shape.gh,
                 kElemBytes * fold_elems);
        g.bytes.a += kElemBytes * shape.gh * k_t;
        g.bytes.b += kElemBytes * k_t * n_t;
        g.bytes.c += kElemBytes * psum_rw * shape.gh * n_t;
      }
    } else {
      for (std::int64_t h0 = 0; h0 < shape.gh; h0 += C) {
        const std::int64_t m_t = std::min(C, shape.gh - h0);
        const std::int64_t cycles = fold_cycles(k_t, shape.gw, k_t, m_t);
        const std::int64_t fold_elems =
            k_t * m_t + shape.gw * k_t + m_t * shape.gw;
        add_fold(&g, cycles, k_t * m_t, k_t * m_t * shape.gw,
                 kElemBytes * fold_elems);
        g.bytes.a += kElemBytes * k_t * m_t;
        g.bytes.b += kElemBytes * shape.gw * k_t;
        g.bytes.c += kElemBytes * psum_rw * m_t * shape.gw;
      }
    }
  }
  return g;
}

namespace {

using core::Layer;
using core::LayerKind;

/// DRAM and buffer bytes of one (block, layer) aggregated by phase.
/// Lock-step with sim/simulator.cc's aggregation (same map, same key).
struct LayerBytes {
  double dram[2] = {0, 0};  ///< indexed by 0 = forward, 1 = backward
  double buf[2] = {0, 0};
};

// Vector-unit op counts, duplicated verbatim from sim/simulator.cc's
// anonymous namespace (arch cannot depend on sim). Keep the two in lock
// step: the differential harness asserts backend agreement on traffic, and
// any drift here shows up as unexplained time divergence.
double vector_ops_fwd(const Layer& l) {
  return static_cast<double>(l.flops_per_sample());
}

double vector_ops_bwd(const Layer& l) {
  switch (l.kind) {
    case LayerKind::kNorm:
      return 2.0 * static_cast<double>(l.flops_per_sample());
    case LayerKind::kAct:
      return static_cast<double>(l.in.elements());
    case LayerKind::kPool:
      return static_cast<double>(l.out.elements());
    case LayerKind::kAdd:
    case LayerKind::kConcat:
      return 0;
    default:
      return 0;
  }
}

/// Softmax ops of one attention layer, per sample per direction (~4 ops per
/// score-matrix element: max, exp-subtract, sum, divide — and the backward
/// Jacobian-vector product costs the same). Duplicated in sim/simulator.cc;
/// keep in lock step.
double attention_softmax_ops(const Layer& l) {
  const double s = static_cast<double>(l.in.h) * l.in.w;
  return 4.0 * l.heads * s * s;
}

/// ceil(bytes / per-cycle rate) as whole cycles; 0 when the rate is
/// unconstrained (rate <= 0 models infinite bandwidth).
std::int64_t transfer_cycles(double bytes, double bytes_per_cycle) {
  if (bytes_per_cycle <= 0 || bytes <= 0) return 0;
  return static_cast<std::int64_t>(std::ceil(bytes / bytes_per_cycle));
}

}  // namespace

SystolicStepResult simulate_systolic_step(const core::Network& net,
                                          const sched::Schedule& schedule,
                                          const sched::Traffic& traffic,
                                          const SystolicSimParams& p) {
  const SystolicConfig& cfg = p.array;
  const Dataflow df = p.options.dataflow;

  std::map<std::pair<int, int>, LayerBytes> by_layer;
  for (const sched::TrafficRecord& r : traffic.records) {
    LayerBytes& lb = by_layer[{r.block, r.layer}];
    const int ph = r.phase == sched::Phase::kForward ? 0 : 1;
    lb.dram[ph] += r.dram_read + r.dram_write;
    lb.buf[ph] += r.buf_read + r.buf_write;
  }

  const double dram_bpc = p.dram_bw_bytes_per_s > 0
                              ? p.dram_bw_bytes_per_s / cfg.clock_hz
                              : 0;
  const double buf_bpc =
      p.buffer_bw_bytes > 0 ? p.buffer_bw_bytes / cfg.clock_hz : 0;
  const double vec_opc =
      p.vector_flops > 0 ? p.vector_flops / cfg.clock_hz : 0;

  SystolicStepResult out;
  std::int64_t gemm_macs = 0;
  std::int64_t folds_total = 0;
  std::int64_t mapped_pe_total = 0;
  OperandBytes stream;

  bool first_gemm = true;
  for (std::size_t bi = 0; bi < net.blocks.size(); ++bi) {
    const sched::Group& grp = schedule.groups[static_cast<std::size_t>(
        schedule.group_of_block(static_cast<int>(bi)))];
    const std::vector<int> chunks = grp.chunks(schedule.mini_batch);

    int li = 0;
    net.blocks[bi].for_each_layer([&](const Layer& l, int) {
      const LayerBytes lb = by_layer[{static_cast<int>(bi), li}];
      ++li;

      std::int64_t comp[2] = {0, 0};  // forward, backward
      std::int64_t max_fold_bytes = 0;
      bool gate_on_scratchpad = false;
      if (l.is_gemm()) {
        gate_on_scratchpad = true;
        const bool skip_dgrad = first_gemm;
        first_gemm = false;
        auto run = [&](int sub_batch, GemmPass pass, int phase) {
          const GemmCycles gc =
              simulate_gemm_cycles(cfg, df, gemm_shape(l, sub_batch, pass));
          comp[phase] += gc.comp_cycles;
          gemm_macs += gc.macs;
          folds_total += gc.folds;
          mapped_pe_total += gc.mapped_pe_folds;
          stream.a += gc.bytes.a;
          stream.b += gc.bytes.b;
          stream.c += gc.bytes.c;
          max_fold_bytes = std::max(max_fold_bytes, gc.max_fold_bytes);
        };
        for (int c : chunks) {
          run(c, GemmPass::kForward, 0);
          run(c, GemmPass::kWeightGrad, 1);
          if (!skip_dgrad) run(c, GemmPass::kDataGrad, 1);
        }
      } else if (l.is_attention()) {
        // Attention GEMMs run on the array too; shapes are per (sample,
        // head), so one simulation per distinct shape scales exactly by
        // mini_batch * heads (chunking changes nothing: the shapes carry no
        // batch dimension). The softmax runs on the vector unit.
        gate_on_scratchpad = true;
        const std::int64_t scale =
            static_cast<std::int64_t>(schedule.mini_batch) * l.heads;
        auto run_attention = [&](GemmPass pass, int phase) {
          for (const GemmShape& sh : attention_gemm_shapes(l, pass)) {
            const GemmCycles gc = simulate_gemm_cycles(cfg, df, sh);
            comp[phase] += gc.comp_cycles * scale;
            gemm_macs += gc.macs * scale;
            folds_total += gc.folds * scale;
            mapped_pe_total += gc.mapped_pe_folds * scale;
            stream.a += gc.bytes.a * scale;
            stream.b += gc.bytes.b * scale;
            stream.c += gc.bytes.c * scale;
            max_fold_bytes = std::max(max_fold_bytes, gc.max_fold_bytes);
          }
        };
        run_attention(GemmPass::kForward, 0);
        run_attention(GemmPass::kDataGrad, 1);
        if (vec_opc > 0) {
          const double soft =
              attention_softmax_ops(l) * schedule.mini_batch;
          comp[0] += static_cast<std::int64_t>(std::ceil(soft / vec_opc));
          comp[1] += static_cast<std::int64_t>(std::ceil(soft / vec_opc));
        }
      } else {
        // Vector layers: op throughput, floored by global-buffer bandwidth
        // (mirrors the analytic model's max with buffer time).
        const double n = schedule.mini_batch;
        const std::int64_t ops_f = vec_opc > 0
            ? static_cast<std::int64_t>(
                  std::ceil(vector_ops_fwd(l) * n / vec_opc))
            : 0;
        const std::int64_t ops_b = vec_opc > 0
            ? static_cast<std::int64_t>(
                  std::ceil(vector_ops_bwd(l) * n / vec_opc))
            : 0;
        comp[0] = std::max(ops_f, transfer_cycles(lb.buf[0], buf_bpc));
        comp[1] = std::max(ops_b, transfer_cycles(lb.buf[1], buf_bpc));
      }

      // Double-buffer gate: a GEMM layer's DRAM transfers overlap compute
      // only when two copies of its largest fold fit in the scratchpad
      // (one computing, one filling); otherwise transfer and compute
      // serialize. Vector layers stream through the (double-buffered)
      // global buffer and always overlap.
      const bool overlap =
          !gate_on_scratchpad || 2 * max_fold_bytes <= p.options.scratchpad_bytes;
      for (int ph = 0; ph < 2; ++ph) {
        const std::int64_t dram = transfer_cycles(lb.dram[ph], dram_bpc);
        out.stats.comp_cycles += comp[ph];
        out.stats.stall_cycles +=
            overlap ? std::max<std::int64_t>(0, dram - comp[ph]) : dram;
      }
    });
  }

  const std::int64_t total = out.stats.total_cycles();
  out.stats.util =
      total > 0 ? static_cast<double>(gemm_macs) /
                      (static_cast<double>(total) * cfg.rows * cfg.cols)
                : 0;
  out.stats.mapping_eff =
      folds_total > 0 ? static_cast<double>(mapped_pe_total) /
                            (static_cast<double>(folds_total) * cfg.rows *
                             cfg.cols)
                      : 0;

  out.time_s = static_cast<double>(total) / cfg.clock_hz;
  out.compute_time_s = static_cast<double>(out.stats.comp_cycles) / cfg.clock_hz;
  out.stall_time_s = static_cast<double>(out.stats.stall_cycles) / cfg.clock_hz;

  // Chip-level totals; DRAM bytes are the schedule's analytic traffic by
  // construction, so the backends can never disagree on bytes moved.
  out.dram_bytes = p.cores * traffic.dram_bytes();
  out.total_macs = static_cast<double>(p.cores) * static_cast<double>(gemm_macs);
  if (out.time_s > 0) {
    out.bw_ifmap = static_cast<double>(stream.a) / out.time_s;
    out.bw_filter = static_cast<double>(stream.b) / out.time_s;
    out.bw_ofmap = static_cast<double>(stream.c) / out.time_s;
  }
  return out;
}

}  // namespace mbs::arch
