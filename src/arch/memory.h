// Off-chip memory configurations (Tab. 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mbs::arch {

/// One off-chip memory system attached to the two-core WaveCore chip.
struct MemoryConfig {
  std::string name;
  double bandwidth_bytes_per_s = 0;  ///< total chip bandwidth
  std::int64_t capacity_bytes = 0;   ///< total chip capacity
  int channels = 0;
  /// DRAM access energy in pJ per byte (literature-derived; the paper uses
  /// the Rambus power model — see DESIGN.md substitutions).
  double energy_pj_per_byte = 0;

  /// Bandwidth available to one of the two cores.
  double per_core_bandwidth(int cores = 2) const {
    return bandwidth_bytes_per_s / cores;
  }
};

/// Tab. 4 presets. `hbm2` is the default WaveCore memory (one 4-die stack).
MemoryConfig hbm2();
MemoryConfig hbm2_x2();
MemoryConfig gddr5();
MemoryConfig lpddr4();

/// All Tab. 4 configurations in presentation order.
std::vector<MemoryConfig> all_memory_configs();

/// Looks a configuration up by name ("HBM2", "HBM2x2", "GDDR5", "LPDDR4").
MemoryConfig memory_config_by_name(const std::string& name);

}  // namespace mbs::arch
