// Deterministic, seedable random number generation. Used by the training
// substrate (weight init, synthetic data) and by property-based tests so every
// run is reproducible regardless of platform libstdc++ differences.
#pragma once

#include <cmath>
#include <cstdint>

namespace mbs::util {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG with a one-word state.
/// Deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (uses two uniforms per pair; caches one).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  std::uint64_t state_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace mbs::util
