#include "util/parallel.h"

#include "util/env.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mbs::util {

namespace {

thread_local bool t_in_parallel_region = false;

std::atomic<int> g_budget_override{-1};  // -1 = unset, fall back to env

int env_budget() {
  // 0 = unset: fall back to hardware concurrency in resolve_budget.
  static const int value =
      static_cast<int>(env_int("MBS_THREADS", 0, 0, 65536));
  return value;
}

int resolve_budget(int requested) {
  if (requested <= 0)
    requested = static_cast<int>(std::thread::hardware_concurrency());
  return requested < 1 ? 1 : requested;
}

/// One parallel_for dispatch: workers (and the caller) claim range indices
/// from `next` until exhausted; the last finisher signals `done`.
struct Job {
  const RangeBody* body = nullptr;
  std::int64_t n = 0;
  std::int64_t base = 0;  // per-range length, first `rem` ranges get +1
  std::int64_t rem = 0;
  int ranges = 0;
  std::atomic<int> next{0};
  std::atomic<int> pending{0};
  std::exception_ptr error;
  std::mutex error_mu;

  void range_bounds(int r, std::int64_t* begin, std::int64_t* end) const {
    const std::int64_t b =
        r * base + (r < rem ? r : static_cast<std::int64_t>(rem));
    *begin = b;
    *end = b + base + (r < rem ? 1 : 0);
  }

  void run_ranges() {
    for (;;) {
      const int r = next.fetch_add(1, std::memory_order_relaxed);
      if (r >= ranges) return;
      std::int64_t begin = 0, end = 0;
      range_bounds(r, &begin, &end);
      try {
        (*body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    }
  }
};

/// Lazily started process-wide pool. Workers persist until process exit
/// (they are detached daemon-style threads parked on a condition variable,
/// so exit-time teardown order cannot deadlock against them).
class Pool {
 public:
  static Pool& instance() {
    static Pool* pool = new Pool();  // intentionally leaked: lives for the process
    return *pool;
  }

  /// Dispatches `job` across the workers (plus the caller). Returns false
  /// without running anything if another thread holds the dispatch lock —
  /// the caller then runs the job inline, which keeps concurrent top-level
  /// kernels from oversubscribing the budget.
  bool try_run(Job& job, int helpers) {
    std::unique_lock<std::mutex> dispatch(dispatch_mu_, std::try_to_lock);
    if (!dispatch.owns_lock()) return false;
    ensure_workers(helpers);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job.pending.store(workers_ + 1, std::memory_order_relaxed);
      job_ = &job;
      ++generation_;
    }
    work_cv_.notify_all();

    {
      // The caller is one of the budget's threads; its ranges are inside
      // the region too (a nested parallel_for must run inline, and must
      // never re-enter the dispatch lock this thread already holds).
      ParallelRegionGuard region;
      job.run_ranges();
    }
    finish(job);

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job.pending.load() == 0; });
    job_ = nullptr;
    return true;
  }

 private:
  Pool() = default;

  void ensure_workers(int helpers) {
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_ < helpers) {
      ++workers_;
      std::thread([this] { worker_loop(); }).detach();
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    std::uint64_t seen = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        job = job_;
      }
      if (job) {
        job->run_ranges();
        finish(*job);
      }
    }
  }

  void finish(Job& job) {
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }

  std::mutex dispatch_mu_;  // one dispatch at a time; losers run inline
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int workers_ = 0;
};

}  // namespace

int thread_budget() {
  const int override = g_budget_override.load(std::memory_order_relaxed);
  if (override >= 0) return resolve_budget(override);
  return resolve_budget(env_budget());
}

void set_thread_budget(int threads) {
  g_budget_override.store(threads, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel_region; }

ParallelRegionGuard::ParallelRegionGuard() : was_inside_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

ParallelRegionGuard::~ParallelRegionGuard() {
  t_in_parallel_region = was_inside_;
}

void parallel_for(std::int64_t n, std::int64_t grain, RangeBody body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int budget = thread_budget();
  std::int64_t ranges = (n + grain - 1) / grain;
  if (ranges > budget) ranges = budget;
  if (ranges <= 1 || t_in_parallel_region) {
    body(0, n);
    return;
  }

  Job job;
  job.body = &body;
  job.n = n;
  job.ranges = static_cast<int>(ranges);
  job.base = n / ranges;
  job.rem = n % ranges;
  if (!Pool::instance().try_run(job, static_cast<int>(ranges) - 1)) {
    body(0, n);
    return;
  }
  if (job.error) std::rethrow_exception(job.error);
}

// ---------------------------------------------------------------------------
// Kernel-time accounting
// ---------------------------------------------------------------------------

namespace {

struct KernelCounter {
  std::atomic<std::int64_t> calls{0};
  std::atomic<std::int64_t> nanos{0};
  std::atomic<std::int64_t> flops{0};
};

KernelCounter g_kernel_counters[static_cast<int>(KernelKind::kCount)];
thread_local bool t_in_kernel_timer = false;
thread_local KernelKind t_outermost_kind = KernelKind::kCount;
thread_local int t_kernel_path_depth = 0;
std::atomic<std::int64_t> g_kernel_path_allocs{0};

/// The kinds whose scopes form the zero-allocation conv/GEMM path.
bool counts_toward_kernel_path(KernelKind kind) {
  return kind == KernelKind::kGemm || kind == KernelKind::kIm2col ||
         kind == KernelKind::kConvFwd || kind == KernelKind::kConvBwd;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

KernelStat kernel_stat(KernelKind kind) {
  const KernelCounter& c = g_kernel_counters[static_cast<int>(kind)];
  KernelStat s;
  s.calls = c.calls.load(std::memory_order_relaxed);
  s.seconds = static_cast<double>(c.nanos.load(std::memory_order_relaxed)) * 1e-9;
  s.flops = c.flops.load(std::memory_order_relaxed);
  return s;
}

void note_kernel_flops(std::int64_t flops) {
  if (!t_in_kernel_timer || flops <= 0) return;
  g_kernel_counters[static_cast<int>(t_outermost_kind)].flops.fetch_add(
      flops, std::memory_order_relaxed);
}

const char* to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kGemm: return "gemm";
    case KernelKind::kIm2col: return "im2col";
    case KernelKind::kConvFwd: return "conv-fwd";
    case KernelKind::kConvBwd: return "conv-bwd";
    case KernelKind::kPool: return "pool";
    case KernelKind::kNorm: return "norm";
    case KernelKind::kLinear: return "linear";
    case KernelKind::kRelu: return "relu";
    case KernelKind::kSgd: return "sgd";
    case KernelKind::kCount: break;
  }
  return "?";
}

ScopedKernelTimer::ScopedKernelTimer(KernelKind kind)
    : kind_(kind),
      outermost_(!t_in_kernel_timer),
      in_path_(counts_toward_kernel_path(kind)) {
  if (in_path_) ++t_kernel_path_depth;
  if (outermost_) {
    t_in_kernel_timer = true;
    t_outermost_kind = kind;
    start_ns_ = now_ns();
  }
}

ScopedKernelTimer::~ScopedKernelTimer() {
  if (in_path_) --t_kernel_path_depth;
  if (!outermost_) return;
  t_in_kernel_timer = false;
  t_outermost_kind = KernelKind::kCount;
  KernelCounter& c = g_kernel_counters[static_cast<int>(kind_)];
  c.calls.fetch_add(1, std::memory_order_relaxed);
  c.nanos.fetch_add(now_ns() - start_ns_, std::memory_order_relaxed);
}

bool in_kernel_path() { return t_kernel_path_depth > 0; }

std::int64_t kernel_path_allocs() {
  return g_kernel_path_allocs.load(std::memory_order_relaxed);
}

namespace detail {

void note_alloc_for_kernel_path() {
  if (t_kernel_path_depth > 0)
    g_kernel_path_allocs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace mbs::util
