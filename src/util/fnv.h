// FNV-1a 64-bit hashing.
//
// Used wherever the tree needs a stable, dependency-free content hash:
// CacheStore derives per-entry shard file names from cache keys, the sweep
// spool fingerprints grids so two workers cannot drain mismatched grids
// through one queue, and serve_replay folds every served answer into one
// fingerprint so runs at different thread counts can be compared with a
// single string equality. The constants are the standard FNV-1a 64-bit
// offset basis and prime; the function is NOT cryptographic and callers
// that map hashes back to values must verify the preimage (CacheStore
// stores the full key inside each entry file for exactly this reason).
#pragma once

#include <cstdint>
#include <string_view>

namespace mbs::util {

inline std::uint64_t fnv1a64(std::string_view data,
                             std::uint64_t seed = 14695981039346656037ull) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace mbs::util
