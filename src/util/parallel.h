// Process-wide kernel thread pool with deterministic static partitioning.
//
// The training kernels (src/train/) and the sweep engine (src/engine/)
// share ONE thread budget: MBS_THREADS / --threads (0 = hardware
// concurrency). The pool is lazily started on first use and its workers
// persist for the process lifetime, so per-kernel dispatch costs a
// condition-variable wakeup rather than thread creation.
//
// Determinism contract: parallel_for(n, grain, body) splits [0, n) into at
// most thread_budget() contiguous ranges and runs body(begin, end) once per
// range. Callers arrange that every output element is computed entirely
// inside one range with an unchanged per-element operation order, and that
// ranges never split a floating-point reduction — then the result is
// bit-identical at every thread count, including 1 (see
// docs/ARCHITECTURE.md "Kernel layer & threading model").
//
// Nesting rule: a parallel_for issued from inside a pool worker — or from
// any thread that entered a ParallelRegionGuard, as engine::SweepRunner
// workers do — runs inline on the calling thread. Sweeps of training
// scenarios therefore never oversubscribe the budget: either the sweep
// fans out and kernels run inline, or the sweep is serial and the kernels
// get the whole pool.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

namespace mbs::util {

/// The process-wide thread budget shared by the kernel pool and
/// engine::SweepRunner: the last set_thread_budget() value if any, else
/// MBS_THREADS, else std::thread::hardware_concurrency(); always >= 1.
int thread_budget();

/// Overrides the budget (0 = hardware concurrency, negative = drop the
/// override and fall back to MBS_THREADS). engine::Driver calls this with
/// its --threads/MBS_THREADS value so both layers draw from one budget;
/// benchmarks and tests use it to pin serial vs pooled runs.
void set_thread_budget(int threads);

/// True while the calling thread is inside a pool worker or a
/// ParallelRegionGuard: any parallel_for it issues runs inline.
bool in_parallel_region();

/// Marks the current thread as already-parallel for its lifetime (RAII).
/// engine::SweepRunner workers hold one so nested kernels run inline.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard();
  ~ParallelRegionGuard();
  ParallelRegionGuard(const ParallelRegionGuard&) = delete;
  ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;

 private:
  bool was_inside_;
};

/// Non-owning reference to a `void(begin, end)` range body. parallel_for
/// blocks until the dispatch completes, so binding a temporary lambda is
/// safe — and unlike the std::function it replaced, nothing is copied or
/// heap-allocated per dispatch (large captures would otherwise put a
/// malloc inside every kernel, breaking the zero-allocation contract of
/// the conv/GEMM hot path).
class RangeBody {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, RangeBody> &&
                std::is_invocable_v<F&, std::int64_t, std::int64_t>>>
  RangeBody(F&& f)  // NOLINT(google-explicit-constructor): call-site adaptor
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, std::int64_t begin, std::int64_t end) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(begin, end);
        }) {}

  void operator()(std::int64_t begin, std::int64_t end) const {
    call_(obj_, begin, end);
  }

 private:
  void* obj_;
  void (*call_)(void*, std::int64_t, std::int64_t);
};

/// Runs body(begin, end) over a deterministic static partition of [0, n)
/// into contiguous ranges (at most thread_budget() of them, each at least
/// `grain` long except possibly the last split). Runs inline as body(0, n)
/// when the budget is 1, when n <= grain, or when called from inside a
/// parallel region. Exceptions from workers are rethrown on the caller.
void parallel_for(std::int64_t n, std::int64_t grain, RangeBody body);

// ---------------------------------------------------------------------------
// Kernel-time accounting (MBS_ENGINE_STATS=1 breakdown via engine::Driver).
// ---------------------------------------------------------------------------

enum class KernelKind {
  kGemm = 0,   // matmul / matmul_bt / matmul_at (outside a conv)
  kIm2col,     // im2col / col2im lowering (outside a conv)
  kConvFwd,    // conv2d_forward
  kConvBwd,    // conv2d_backward
  kPool,       // max / global-average pooling, forward and backward
  kNorm,       // batch/group normalization, forward and backward
  kLinear,     // linear_forward / linear_backward
  kRelu,       // relu_forward / relu_backward
  kSgd,        // Sgd::step
  kCount
};

struct KernelStat {
  std::int64_t calls = 0;
  double seconds = 0;
  /// Useful floating-point work performed under this kind's outermost
  /// timers (2*M*N*K per GEMM, noted by the GEMM entry points via
  /// note_kernel_flops) — seconds+flops give per-kind GFLOP/s in the
  /// MBS_ENGINE_STATS breakdown. 0 for kinds that never note flops.
  std::int64_t flops = 0;
};

/// Snapshot of accumulated per-kind kernel time. Only the OUTERMOST timer
/// on a thread records (a conv's internal GEMM counts as conv time), so the
/// kinds sum to total kernel time without double counting.
KernelStat kernel_stat(KernelKind kind);

/// Credits `flops` floating-point operations to the OUTERMOST kernel timer
/// active on this thread (so a conv's internal GEMM flops count as conv
/// flops, matching the time attribution). No-op outside any timer scope.
void note_kernel_flops(std::int64_t flops);

const char* to_string(KernelKind kind);

/// RAII timer the kernel entry points wrap themselves in. Thread-safe;
/// nested timers on the same thread are no-ops for time accounting, but
/// every conv/GEMM/im2col-kind timer keeps the thread inside the "kernel
/// path" for the allocation hook below.
class ScopedKernelTimer {
 public:
  explicit ScopedKernelTimer(KernelKind kind);
  ~ScopedKernelTimer();
  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;

 private:
  KernelKind kind_;
  bool outermost_;
  bool in_path_;  ///< this timer contributes to the kernel-path depth
  std::int64_t start_ns_ = 0;
};

// ---------------------------------------------------------------------------
// Zero-allocation contract of the conv/GEMM hot path (Debug witness).
// ---------------------------------------------------------------------------

/// True while the calling thread is inside a conv2d_forward/backward, GEMM
/// or im2col/col2im timer scope — the paths whose steady-state training
/// steps must not touch the heap (scratch comes from util::Arena, outputs
/// from step-persistent Tensors).
bool in_kernel_path();

/// Allocations observed while in_kernel_path() was true, counted by the
/// Debug-only global operator-new hook in util/alloc_hook.cc. Always 0 in
/// Release builds and in binaries that don't link the hook; call
/// alloc_hook_active() to know whether the counter is live.
std::int64_t kernel_path_allocs();

/// True when this binary carries the Debug allocation hook (referencing it
/// also forces the hook's object file into the link).
bool alloc_hook_active();

namespace detail {
/// Called by the operator-new hook; counts only on kernel-path threads.
void note_alloc_for_kernel_path();
}  // namespace detail

}  // namespace mbs::util
