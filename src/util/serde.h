// Exact-round-trip token serialization for the engine's disk cache.
//
// A document is a flat sequence of space-separated tokens: integers
// (decimal), doubles (C99 %a hex-floats, which round-trip bit-exactly
// through strtod), and length-prefixed strings ("5:hello") that may contain
// any byte, including spaces and newlines. Writer and Reader invert each
// other exactly. Reader never throws: malformed input sets fail() and
// subsequent reads return zero values, so callers validate once at the end
// (the cache store treats any failure as a cold start).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace mbs::util::serde {

class Writer {
 public:
  void put_int(std::int64_t v) {
    sep();
    out_ += std::to_string(v);
  }

  void put_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    sep();
    out_ += buf;
  }

  void put_string(std::string_view s) {
    sep();
    out_ += std::to_string(s.size());
    out_ += ':';
    out_.append(s.data(), s.size());
  }

  const std::string& str() const { return out_; }

 private:
  void sep() {
    if (!out_.empty()) out_.push_back(' ');
  }

  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  std::int64_t read_int() {
    const std::string tok(token());
    if (fail_) return 0;
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size() || tok.empty()) fail_ = true;
    return fail_ ? 0 : static_cast<std::int64_t>(v);
  }

  double read_double() {
    const std::string tok(token());
    if (fail_) return 0;
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || tok.empty()) fail_ = true;
    return fail_ ? 0 : v;
  }

  std::string read_string() {
    skip_ws();
    std::size_t len = 0;
    bool any_digit = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      // No in-bounds length exceeds the document size; capping here keeps
      // the accumulation from overflowing and wrapping the bounds check.
      if (len > text_.size()) {
        fail_ = true;
        return {};
      }
      len = len * 10 + static_cast<std::size_t>(text_[pos_++] - '0');
      any_digit = true;
    }
    if (!any_digit || len > text_.size() || pos_ >= text_.size() ||
        text_[pos_] != ':' || pos_ + 1 + len > text_.size()) {
      fail_ = true;
      return {};
    }
    ++pos_;  // ':'
    std::string out(text_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  bool fail() const { return fail_; }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

 private:
  std::string_view token() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !is_ws(text_[pos_])) ++pos_;
    if (pos_ == start) fail_ = true;
    return text_.substr(start, pos_ - start);
  }

  void skip_ws() {
    while (pos_ < text_.size() && is_ws(text_[pos_])) ++pos_;
  }

  static bool is_ws(char c) { return c == ' ' || c == '\n'; }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

}  // namespace mbs::util::serde
