#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/units.h"

namespace mbs::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  // Accept trailing unit suffixes (e.g. "1.5 ms") as numeric for alignment.
  return end != s.c_str();
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      const bool right = align_numeric && looks_numeric(row[c]);
      if (c) os << "  ";
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };

  emit(headers_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, true);
}

void Table::print_csv(std::ostream& os) const {
  // RFC-4180 quoting: cells containing a comma, quote or newline are
  // double-quoted with embedded quotes doubled; plain cells pass through.
  auto cell = [&](const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) {
      os << s;
      return;
    }
    os << '"';
    for (char c : s) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      cell(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_int(std::int64_t value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_bytes(double bytes) {
  const char* suffix = "B";
  double v = bytes;
  if (std::abs(v) >= static_cast<double>(kGiB)) { v /= static_cast<double>(kGiB); suffix = "GiB"; }
  else if (std::abs(v) >= static_cast<double>(kMiB)) { v /= static_cast<double>(kMiB); suffix = "MiB"; }
  else if (std::abs(v) >= static_cast<double>(kKiB)) { v /= static_cast<double>(kKiB); suffix = "KiB"; }
  return fmt(v, 2) + " " + suffix;
}

std::string format_si(double value) {
  const char* suffix = "";
  double v = value;
  if (std::abs(v) >= kTera) { v /= kTera; suffix = " T"; }
  else if (std::abs(v) >= kGiga) { v /= kGiga; suffix = " G"; }
  else if (std::abs(v) >= kMega) { v /= kMega; suffix = " M"; }
  else if (std::abs(v) >= kKilo) { v /= kKilo; suffix = " K"; }
  return fmt(v, 2) + suffix;
}

std::string format_time(double seconds) {
  if (seconds < 1e-6) return fmt(seconds * 1e9, 2) + " ns";
  if (seconds < 1e-3) return fmt(seconds * 1e6, 2) + " us";
  if (seconds < 1.0) return fmt(seconds * 1e3, 2) + " ms";
  return fmt(seconds, 3) + " s";
}

}  // namespace mbs::util
