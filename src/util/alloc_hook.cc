// Debug-only global allocation hook: the witness behind the kernel
// layer's zero-allocation contract.
//
// In Debug builds this file replaces the global operator new/delete family
// with malloc/free wrappers that bump util::kernel_path_allocs() whenever
// the allocating thread is inside a conv/GEMM/im2col timer scope
// (util::in_kernel_path()). Steady-state training steps must not move the
// counter: scratch comes from util::Arena, outputs live in step-persistent
// Tensors, and parallel_for dispatches nothing owning. The assertion lives
// in tests/kernel_test.cc (SteadyStateTrainStepIsAllocationFree) and runs
// in CI's Debug job.
//
// Release builds compile only alloc_hook_active() (returning false), so
// production binaries keep the default allocator untouched. The accessor
// also serves as the link anchor: a test referencing it pulls this object
// file — and with it the operator replacements — out of the static
// library.
#include "util/parallel.h"

namespace mbs::util {

bool alloc_hook_active() {
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace mbs::util

#ifndef NDEBUG

#include <cstdlib>
#include <new>

namespace {

void* counted_alloc(std::size_t size) {
  mbs::util::detail::note_alloc_for_kernel_path();
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  mbs::util::detail::note_alloc_for_kernel_path();
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : align) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // !NDEBUG
