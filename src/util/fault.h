// Deterministic fault injection for the service layer.
//
// Every filesystem mutation in the engine routes through a named fault site.
// Sites are armed via MBS_FAULTS=<site>:<spec>[,<site>:<spec>...] where spec
// is one of:
//
//   fail@N    the Nth call to the site (1-based) fails with EIO
//   every@K   every Kth call fails with EIO
//   torn@N/B  on the Nth call, the write is torn: only the first B bytes
//             reach the target file, yet the operation reports SUCCESS —
//             the caller's load-path corruption detection is the safety net
//   crash@N   on the Nth call the process exits immediately with code 3,
//             simulating a worker killed mid-operation
//
// Unarmed sites cost one relaxed atomic load. Counters are per-site and
// process-wide, so a schedule like "spool.unit.start:crash@2" is
// deterministic regardless of thread interleaving elsewhere.
//
// util::fs below is the thin wrapper the engine uses for file mutations:
// each helper consults its fault site first, then performs the real
// operation (tmp + atomic rename for writes, with optional
// fsync-before-rename under MBS_FSYNC=1). write_atomic writes `text`
// verbatim — callers that want a trailing newline append it themselves.
#pragma once

#include <string>

namespace mbs::util {

struct FaultDecision {
  bool fail = false;      // simulate EIO: the operation must not happen
  bool torn = false;      // torn write: truncate the payload...
  long torn_bytes = 0;    // ...at this byte offset, then report success
};

/// Consult the registry for `site`. Increments the site's call counter and
/// returns what (if anything) to inject. A crash spec does not return:
/// the process exits with code 3.
FaultDecision fault_point(const char* site);

/// Programmatically arm sites (same grammar as MBS_FAULTS). Adds to any
/// env-armed sites. Returns false and warns on stderr if the spec does not
/// parse; well-formed entries before the bad one stay armed.
bool fault_arm(const std::string& spec);

/// Disarm every site and reset all counters (tests only).
void fault_clear();

/// Total faults injected so far (fail + torn; crashes never return).
long fault_injection_count();

namespace fs {

/// Write `text` to `path` via tmp file + atomic rename, creating parent
/// directories as needed. Verbatim: no newline is appended. Under
/// MBS_FSYNC=1 the tmp file is fsync'd before the rename.
bool write_atomic(const std::string& path, const std::string& text,
                  const char* site);

/// Read all of `path` into *out. Returns false (without touching *out) on
/// error or injected EIO.
bool read_file(const std::string& path, std::string* out, const char* site);

/// rename(2). Injected EIO fails the rename; a torn spec is meaningless
/// here and treated as EIO.
bool rename_file(const std::string& from, const std::string& to,
                 const char* site);

/// unlink(2). Missing file counts as success.
bool remove_file(const std::string& path, const char* site);

/// Create `path` with O_EXCL and write `text` verbatim. Returns false if
/// the file already exists, on error, or on injected EIO.
bool create_exclusive(const std::string& path, const std::string& text,
                      const char* site);

}  // namespace fs

}  // namespace mbs::util
