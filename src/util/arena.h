// Workspace arena: the step-persistent scratch allocator of the kernel
// layer (the "zero-redundancy training hot path" memory plan).
//
// The training kernels need short-lived buffers every call — im2col
// matrices, GEMM packing panels, gradient staging — whose sizes repeat
// exactly from one training step to the next. Allocating them as fresh
// std::vectors put a malloc/free pair (and a page-faulting cold buffer)
// inside every kernel invocation. The Arena replaces that with bump
// allocation out of blocks that persist across steps: it grows while the
// first steps discover the high-water mark, then serves every later step
// without touching the heap (Debug builds assert this through the
// allocation hook in alloc_hook.cc; see docs/ARCHITECTURE.md "Memory &
// workspace layer").
//
// Lifetime discipline is a stack: a kernel takes a Marker on entry and
// rewinds it on exit (ArenaScope), so scratch never outlives the call that
// asked for it. State that must survive from forward to backward — the
// ConvCache im2col lowering, per-layer gradient scratch — is NOT arena
// memory; it lives in step-persistent Tensors (Tensor::ensure_shape).
//
// Arenas are per-thread (workspace()), matching the engine's threading
// model: each SweepRunner worker trains its own model, and kernel-pool
// workers never allocate scratch (they only execute into buffers the
// dispatching thread prepared).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mbs::util {

class Arena {
 public:
  /// Default alignment: one cache line, enough for any vectorized kernel.
  static constexpr std::size_t kAlign = 64;

  /// Bump-allocates `bytes` (aligned). Grows by appending a block — never
  /// by moving one, so previously returned pointers stay valid until the
  /// marker they were allocated under is rewound.
  void* allocate(std::size_t bytes);

  /// `n` floats of uninitialized scratch (callers overwrite or memset).
  float* floats(std::int64_t n) {
    return static_cast<float*>(
        allocate(static_cast<std::size_t>(n) * sizeof(float)));
  }

  /// A rewind point: everything allocated after mark() is reclaimed by
  /// rewind(). Stack discipline only — rewind markers in LIFO order.
  struct Marker {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  Marker mark() const;
  void rewind(const Marker& m);

  /// Reclaims everything but keeps the blocks: the next step re-bumps
  /// through memory that is already allocated and warm.
  void reset() { rewind(Marker{}); }

  /// Total bytes owned (persists across rewind/reset).
  std::size_t capacity() const;
  /// Bytes currently allocated (between mark and rewind).
  std::size_t used() const;
  /// Largest `used()` ever observed — the steady-state footprint.
  std::size_t high_water() const { return high_water_; }
  /// Heap acquisitions so far. Steady-state steps must not move this —
  /// the witness the zero-allocation tests check alongside the Debug
  /// operator-new hook.
  std::int64_t block_allocs() const { return block_allocs_; }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// Doubling growth from a non-trivial floor: a handful of warm-up blocks
  /// at most, regardless of how the first step's request sizes arrive.
  static constexpr std::size_t kMinBlock = std::size_t{1} << 20;  // 1 MiB

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< index of the block currently bumping
  std::size_t high_water_ = 0;
  std::int64_t block_allocs_ = 0;
};

/// The calling thread's workspace arena (created on first use, lives for
/// the thread). All kernel scratch in src/train/ comes from here.
Arena& workspace();

/// RAII mark/rewind over an arena (the workspace by default): scratch
/// allocated through the scope dies with it.
class ArenaScope {
 public:
  ArenaScope() : ArenaScope(workspace()) {}
  explicit ArenaScope(Arena& arena) : arena_(&arena), marker_(arena.mark()) {}
  ~ArenaScope() { arena_->rewind(marker_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  float* floats(std::int64_t n) { return arena_->floats(n); }

 private:
  Arena* arena_;
  Arena::Marker marker_;
};

}  // namespace mbs::util
