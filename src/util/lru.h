// LruMap: a fixed-capacity map with least-recently-used eviction.
//
// The serve layer's in-memory hot set: queries for keys in the map return
// without touching the disk store or the Evaluator, and the capacity bound
// keeps a long-running daemon's footprint flat no matter how many distinct
// keys the query stream visits. Intrusive list-over-map implementation —
// O(1) get/put, no allocation on a hit.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace mbs::util {

template <typename V>
class LruMap {
 public:
  /// A map that holds at most `capacity` entries (minimum 1).
  explicit LruMap(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  /// The value for `key`, refreshed to most-recently-used; nullptr on a
  /// miss. The pointer stays valid until the entry is evicted or replaced.
  const V* get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when at capacity.
  void put(const std::string& key, V value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_) {
      ++evictions_;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Entries dropped to make room (a daemon health metric).
  std::size_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::size_t evictions_ = 0;
  std::list<std::pair<std::string, V>> order_;  ///< front = most recent
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, V>>::iterator>
      index_;
};

}  // namespace mbs::util
