// Console table and CSV emission used by the benchmark harness to print the
// rows/series of each paper table and figure.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mbs::util {

/// Column-aligned console table. Collects rows of strings and prints them
/// with a header rule, right-aligning cells that parse as numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Column headers, as passed to the constructor.
  const std::vector<std::string>& headers() const { return headers_; }

  /// All data rows (each padded to the header width by add_row).
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders the aligned table to `os`.
  void print(std::ostream& os) const;

  /// Renders the table as CSV (RFC-4180: cells containing a comma, quote or
  /// newline are double-quoted with embedded quotes doubled).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places.
std::string fmt(double value, int digits = 2);

/// Formats an integer with thousands separators, e.g. 25,557,032.
std::string fmt_int(std::int64_t value);

}  // namespace mbs::util
