// Byte/size units and human-readable formatting helpers.
#pragma once

#include <cstdint>
#include <string>

namespace mbs::util {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Formats a byte count as a human-readable string, e.g. "10.0 MiB".
std::string format_bytes(double bytes);

/// Formats a count with an SI suffix, e.g. "3.86 G" for 3.86e9.
std::string format_si(double value);

/// Formats seconds as the most natural unit (ns/us/ms/s).
std::string format_time(double seconds);

}  // namespace mbs::util
