#include "util/arena.h"

#include <cassert>

namespace mbs::util {

namespace {

std::size_t align_up(std::size_t n) {
  return (n + Arena::kAlign - 1) & ~(Arena::kAlign - 1);
}

}  // namespace

void* Arena::allocate(std::size_t bytes) {
  bytes = align_up(bytes ? bytes : 1);
  // Advance through existing blocks first (they were sized by a previous
  // high-water pass); only append when none of them fits.
  while (active_ < blocks_.size() &&
         blocks_[active_].used + bytes > blocks_[active_].size)
    ++active_;
  if (active_ == blocks_.size()) {
    std::size_t size = capacity() * 2;
    if (size < kMinBlock) size = kMinBlock;
    if (size < bytes) size = align_up(bytes);
    Block b;
    // operator new[] keeps the block visible to the Debug allocation hook:
    // an unexpected mid-step growth shows up in kernel_path_allocs() as
    // well as in block_allocs().
    b.data = std::unique_ptr<unsigned char[]>(new unsigned char[size + kAlign]);
    b.size = size;
    blocks_.push_back(std::move(b));
    ++block_allocs_;
  }
  Block& block = blocks_[active_];
  // The block base may not be cache-line aligned; bump from an aligned
  // origin inside it (the +kAlign slack above covers the worst case).
  unsigned char* base = block.data.get();
  const std::size_t skew =
      align_up(reinterpret_cast<std::uintptr_t>(base)) -
      reinterpret_cast<std::uintptr_t>(base);
  void* p = base + skew + block.used;
  block.used += bytes;
  const std::size_t total = used();
  if (total > high_water_) high_water_ = total;
  return p;
}

Arena::Marker Arena::mark() const {
  Marker m;
  m.block = active_;
  m.used = active_ < blocks_.size() ? blocks_[active_].used : 0;
  return m;
}

void Arena::rewind(const Marker& m) {
  assert(m.block <= blocks_.size());
  for (std::size_t i = m.block + 1; i < blocks_.size(); ++i)
    blocks_[i].used = 0;
  if (m.block < blocks_.size()) blocks_[m.block].used = m.used;
  active_ = m.block;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.used;
  return total;
}

Arena& workspace() {
  thread_local Arena arena;
  return arena;
}

}  // namespace mbs::util
