#include "util/cpu.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace mbs::util {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool detect_avx2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx || !fma) return false;
  // XGETBV(0): the OS must have enabled XMM (bit 1) and YMM (bit 2) state,
  // or executing VEX-256 instructions faults.
  unsigned lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  if ((lo & 0x6u) != 0x6u) return false;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 5)) != 0;  // AVX2
}
#else
bool detect_avx2() { return false; }
#endif

}  // namespace

const char* to_string(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kPortable:
      return "portable";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "?";
}

bool cpu_supports_avx2() {
  static const bool hw = detect_avx2();  // CPUID once; the env hook each call
  if (const char* env = std::getenv("MBS_FORCE_NO_AVX2");
      env && *env && std::strcmp(env, "0") != 0)
    return false;
  return hw;
}

KernelIsa resolve_kernel_isa(bool have_avx2_kernels) {
  const bool avx2_ok = have_avx2_kernels && cpu_supports_avx2();
  const char* env = std::getenv("MBS_KERNEL");
  if (!env || !*env) return avx2_ok ? KernelIsa::kAvx2 : KernelIsa::kPortable;
  if (std::strcmp(env, "portable") == 0) return KernelIsa::kPortable;
  if (std::strcmp(env, "avx2") == 0)
    return avx2_ok ? KernelIsa::kAvx2 : KernelIsa::kPortable;
  std::fprintf(stderr,
               "bad MBS_KERNEL value '%s': expected 'avx2' or 'portable'\n",
               env);
  std::abort();
}

}  // namespace mbs::util
