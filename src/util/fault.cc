#include "util/fault.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mbs::util {

namespace {

struct SiteSpec {
  enum Kind { kFailNth, kEveryK, kTorn, kCrash } kind = kFailNth;
  long n = 0;           // target call number (fail@N, torn@N, crash@N) or K
  long torn_bytes = 0;  // torn@N/B truncation offset
};

struct SiteState {
  std::vector<SiteSpec> specs;
  long calls = 0;
};

std::mutex g_mu;
std::unordered_map<std::string, SiteState>& registry() {
  static std::unordered_map<std::string, SiteState> r;
  return r;
}
std::atomic<bool> g_armed{false};
std::atomic<long> g_injected{0};
std::once_flag g_env_once;

// One "site:kind@args" entry. Returns false on parse failure.
bool parse_entry(const std::string& entry) {
  const size_t colon = entry.find(':');
  const size_t at = entry.find('@', colon == std::string::npos ? 0 : colon);
  if (colon == std::string::npos || at == std::string::npos || colon == 0) {
    return false;
  }
  const std::string site = entry.substr(0, colon);
  const std::string kind = entry.substr(colon + 1, at - colon - 1);
  const std::string args = entry.substr(at + 1);

  SiteSpec spec;
  char* end = nullptr;
  if (kind == "fail") {
    spec.kind = SiteSpec::kFailNth;
  } else if (kind == "every") {
    spec.kind = SiteSpec::kEveryK;
  } else if (kind == "torn") {
    spec.kind = SiteSpec::kTorn;
  } else if (kind == "crash") {
    spec.kind = SiteSpec::kCrash;
  } else {
    return false;
  }
  spec.n = strtol(args.c_str(), &end, 10);
  if (end == args.c_str() || spec.n <= 0) return false;
  if (spec.kind == SiteSpec::kTorn) {
    if (*end != '/') return false;
    const char* b = end + 1;
    spec.torn_bytes = strtol(b, &end, 10);
    if (end == b || spec.torn_bytes < 0) return false;
  }
  if (*end != '\0') return false;

  std::lock_guard<std::mutex> lock(g_mu);
  registry()[site].specs.push_back(spec);
  g_armed.store(true, std::memory_order_release);
  return true;
}

bool arm_from_string(const std::string& spec) {
  bool ok = true;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    if (!entry.empty() && !parse_entry(entry)) {
      std::fprintf(stderr, "fault: bad MBS_FAULTS entry '%s' (ignored)\n",
                   entry.c_str());
      ok = false;
    }
    pos = comma + 1;
  }
  return ok;
}

void init_from_env() {
  const char* env = std::getenv("MBS_FAULTS");
  if (env && *env) arm_from_string(env);
}

bool fsync_enabled() {
  static const bool on = [] {
    const char* v = std::getenv("MBS_FSYNC");
    return v && *v && strcmp(v, "0") != 0;
  }();
  return on;
}

// Plain POSIX write of the whole buffer to an already-open fd.
bool write_all(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t w = write(fd, data + off, len - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

void make_parent_dirs(const std::string& path) {
  for (size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/') {
      mkdir(path.substr(0, i).c_str(), 0777);  // EEXIST is fine
    }
  }
}

// Write `text` straight to `path` (no tmp file) — used to materialize a
// torn write at the final path, exactly as a crash mid-write would leave it.
bool write_direct(const std::string& path, const char* data, size_t len) {
  make_parent_dirs(path);
  const int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return false;
  const bool ok = write_all(fd, data, len);
  close(fd);
  return ok;
}

}  // namespace

FaultDecision fault_point(const char* site) {
  std::call_once(g_env_once, init_from_env);
  FaultDecision d;
  if (!g_armed.load(std::memory_order_acquire)) return d;

  std::unique_lock<std::mutex> lock(g_mu);
  auto it = registry().find(site);
  if (it == registry().end()) return d;
  SiteState& st = it->second;
  st.calls++;
  for (const SiteSpec& spec : st.specs) {
    const bool hit = spec.kind == SiteSpec::kEveryK
                         ? (st.calls % spec.n == 0)
                         : (st.calls == spec.n);
    if (!hit) continue;
    switch (spec.kind) {
      case SiteSpec::kFailNth:
      case SiteSpec::kEveryK:
        d.fail = true;
        break;
      case SiteSpec::kTorn:
        d.torn = true;
        d.torn_bytes = spec.torn_bytes;
        break;
      case SiteSpec::kCrash:
        lock.unlock();
        std::fprintf(stderr, "fault: crash at site %s (call %ld)\n", site,
                     spec.n);
        std::fflush(nullptr);
        std::_Exit(3);
    }
  }
  if (d.fail || d.torn) {
    g_injected.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

bool fault_arm(const std::string& spec) {
  std::call_once(g_env_once, init_from_env);
  return arm_from_string(spec);
}

void fault_clear() {
  std::call_once(g_env_once, init_from_env);
  std::lock_guard<std::mutex> lock(g_mu);
  registry().clear();
  g_armed.store(false, std::memory_order_release);
  g_injected.store(0, std::memory_order_relaxed);
}

long fault_injection_count() {
  return g_injected.load(std::memory_order_relaxed);
}

namespace fs {

bool write_atomic(const std::string& path, const std::string& text,
                  const char* site) {
  const FaultDecision d = fault_point(site);
  if (d.fail) {
    errno = EIO;
    return false;
  }
  if (d.torn) {
    // Leave a truncated file at the final path and report success: this is
    // what an acknowledged-but-torn write looks like to the next reader.
    const size_t n = static_cast<size_t>(d.torn_bytes) < text.size()
                         ? static_cast<size_t>(d.torn_bytes)
                         : text.size();
    write_direct(path, text.data(), n);
    return true;
  }

  make_parent_dirs(path);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  const int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return false;
  bool ok = write_all(fd, text.data(), text.size());
  if (ok && fsync_enabled() && fsync(fd) != 0) ok = false;
  if (close(fd) != 0) ok = false;
  if (ok && rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) unlink(tmp.c_str());
  return ok;
}

bool read_file(const std::string& path, std::string* out, const char* site) {
  const FaultDecision d = fault_point(site);
  if (d.fail) {
    errno = EIO;
    return false;
  }
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  std::string buf;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t r = read(fd, chunk, sizeof(chunk));
    if (r < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return false;
    }
    if (r == 0) break;
    buf.append(chunk, static_cast<size_t>(r));
  }
  close(fd);
  if (d.torn && static_cast<size_t>(d.torn_bytes) < buf.size()) {
    buf.resize(static_cast<size_t>(d.torn_bytes));
  }
  *out = std::move(buf);
  return true;
}

bool rename_file(const std::string& from, const std::string& to,
                 const char* site) {
  const FaultDecision d = fault_point(site);
  if (d.fail || d.torn) {
    errno = EIO;
    return false;
  }
  return rename(from.c_str(), to.c_str()) == 0;
}

bool remove_file(const std::string& path, const char* site) {
  const FaultDecision d = fault_point(site);
  if (d.fail || d.torn) {
    errno = EIO;
    return false;
  }
  return unlink(path.c_str()) == 0 || errno == ENOENT;
}

bool create_exclusive(const std::string& path, const std::string& text,
                      const char* site) {
  const FaultDecision d = fault_point(site);
  if (d.fail || d.torn) {
    errno = EIO;
    return false;
  }
  const int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0666);
  if (fd < 0) return false;
  const bool ok = write_all(fd, text.data(), text.size());
  close(fd);
  if (!ok) unlink(path.c_str());
  return ok;
}

}  // namespace fs

}  // namespace mbs::util
