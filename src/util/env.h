// Validated environment-variable parsing.
//
// Numeric env vars used to be read with bare strtol, so MBS_SPOOL_TIMEOUT_MS=abc
// or a negative thread count silently became 0 and changed behavior without a
// trace. env_int is the one way the tree reads an integer from the
// environment: unset/empty returns the fallback silently; garbage, trailing
// junk, or out-of-range values warn on stderr and return the fallback, so a
// typo'd knob is loud but never fatal and never surprising.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mbs::util {

/// Integer env var `name`, constrained to [lo, hi]. Unset or empty returns
/// `fallback`. Non-numeric text, trailing junk, or an out-of-range value
/// warns on stderr and returns `fallback` — a bad knob must not silently
/// become 0.
inline long env_int(const char* name, long fallback, long lo, long hi) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') {
    std::fprintf(stderr,
                 "env: %s='%s' is not an integer; using default %ld\n", name,
                 raw, fallback);
    return fallback;
  }
  if (v < lo || v > hi) {
    std::fprintf(stderr,
                 "env: %s=%ld is outside [%ld, %ld]; using default %ld\n",
                 name, v, lo, hi, fallback);
    return fallback;
  }
  return v;
}

}  // namespace mbs::util
