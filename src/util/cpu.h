// Runtime CPU feature detection and kernel-ISA resolution.
//
// The training GEMMs ship two microkernel families: a portable scalar one
// (the historical blocked path, autovectorized by the compiler for the
// baseline target) and an explicit AVX2 one compiled into a single
// -mavx2/-mfma translation unit. Which family runs is a *runtime* decision
// so one binary serves every x86-64 host:
//
//   MBS_KERNEL=avx2|portable  forces a path (avx2 falls back to portable
//                             when the CPU or the build lacks it);
//   unset                     picks avx2 when CPUID says the host has
//                             AVX2+FMA with OS-enabled YMM state.
//
// MBS_FORCE_NO_AVX2=1 makes cpu_supports_avx2() report false regardless of
// CPUID — the test hook that lets the fallback path be exercised on hosts
// that do have AVX2.
#pragma once

namespace mbs::util {

/// The microkernel families a GEMM call can dispatch to.
enum class KernelIsa {
  kPortable = 0,  ///< blocked scalar kernels (baseline target, SSE2 autovec)
  kAvx2,          ///< explicit 8-wide AVX2 kernels (gemm_avx2.cc)
};

const char* to_string(KernelIsa isa);

/// True when the host CPU supports AVX2 + FMA and the OS has enabled YMM
/// state (CPUID + XGETBV, checked once and cached). Always false on
/// non-x86 builds, and forced false by MBS_FORCE_NO_AVX2=1 (re-read on
/// every call so tests can toggle it around a dispatch reset).
bool cpu_supports_avx2();

/// Resolves which ISA the GEMM dispatch should use, combining the
/// MBS_KERNEL override, cpu_supports_avx2(), and whether the binary
/// actually carries AVX2 kernels (`have_avx2_kernels`, false when the
/// compiler or target couldn't build them). An explicit MBS_KERNEL=avx2 on
/// an unsupported host falls back cleanly to kPortable; an unrecognized
/// MBS_KERNEL value aborts loudly (a typo'd A/B run must not silently
/// measure the wrong path).
KernelIsa resolve_kernel_isa(bool have_avx2_kernels);

}  // namespace mbs::util
