#include "sched/scheduler.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <limits>

#include "sched/traffic.h"

namespace mbs::sched {

namespace {

/// Recomputes each group's sub-batch size and iteration count from its
/// blocks' individual limits (a group runs at the tightest block's size).
void refresh_groups(Schedule& s) {
  for (Group& g : s.groups) {
    int sub = s.mini_batch;
    if (g.members.empty()) {
      for (int b = g.first; b <= g.last; ++b)
        sub = std::min(sub, s.block_max_sub[static_cast<std::size_t>(b)]);
    } else {
      for (int b : g.members)
        sub = std::min(sub, s.block_max_sub[static_cast<std::size_t>(b)]);
    }
    g.sub_batch = sub;
    g.iterations = iterations_for(s.mini_batch, sub);
  }
}

/// Initial grouping: maximal runs of blocks with equal minimum iteration
/// count (the red line of Fig. 4 determines the cut points).
std::vector<Group> initial_groups(const Schedule& s, int n_blocks) {
  std::vector<Group> groups;
  int start = 0;
  auto iters = [&](int b) {
    return iterations_for(s.mini_batch,
                          s.block_max_sub[static_cast<std::size_t>(b)]);
  };
  for (int b = 1; b <= n_blocks; ++b) {
    if (b == n_blocks || iters(b) != iters(start)) {
      Group g;
      g.first = start;
      g.last = b - 1;
      groups.push_back(g);
      start = b;
    }
  }
  return groups;
}

/// Greedy merging: repeatedly apply the adjacent-group merge that reduces
/// total modeled DRAM traffic the most, until no merge helps (Sec. 3).
void greedy_merge(const core::Network& net, Schedule& s) {
  refresh_groups(s);
  double best = dram_traffic_bytes(net, s);
  while (s.groups.size() > 1) {
    int best_idx = -1;
    double best_traffic = best;
    for (std::size_t g = 0; g + 1 < s.groups.size(); ++g) {
      Schedule cand = s;
      cand.groups[g].last = cand.groups[g + 1].last;
      cand.groups.erase(cand.groups.begin() + static_cast<std::ptrdiff_t>(g) + 1);
      refresh_groups(cand);
      const double traffic = dram_traffic_bytes(net, cand);
      if (traffic < best_traffic) {
        best_traffic = traffic;
        best_idx = static_cast<int>(g);
      }
    }
    if (best_idx < 0) break;
    s.groups[static_cast<std::size_t>(best_idx)].last =
        s.groups[static_cast<std::size_t>(best_idx) + 1].last;
    s.groups.erase(s.groups.begin() + best_idx + 1);
    refresh_groups(s);
    best = best_traffic;
  }
}

/// Non-contiguous greedy merging (GroupingVariant::kNonContiguous):
/// starting from the same initial groups, repeatedly apply the merge of
/// *any* two groups — adjacent or not — that reduces total modeled DRAM
/// traffic the most. Merged groups carry explicit sorted member lists and
/// the group vector stays ordered by first block. Because all tensor edges
/// of the evaluated networks connect adjacent blocks, merging non-adjacent
/// groups keeps no extra data on chip while still tightening the merged
/// sub-batch to the minimum over members, so in practice this search picks
/// exactly the adjacent merges the contiguous greedy picks — the variant is
/// the in-tree demonstration that the paper's contiguity restriction loses
/// nothing.
void greedy_merge_noncontig(const core::Network& net, Schedule& s) {
  // Every group carries members explicitly so downstream consumers can
  // rely on one representation for this variant.
  for (Group& g : s.groups) g.members = g.blocks();
  refresh_groups(s);
  double best = dram_traffic_bytes(net, s);

  auto merge_into = [](Schedule& sched, std::size_t a, std::size_t b) {
    Group& ga = sched.groups[a];
    Group& gb = sched.groups[b];
    std::vector<int> merged;
    merged.reserve(ga.members.size() + gb.members.size());
    std::merge(ga.members.begin(), ga.members.end(), gb.members.begin(),
               gb.members.end(), std::back_inserter(merged));
    ga.members = std::move(merged);
    ga.first = ga.members.front();
    ga.last = ga.members.back();
    sched.groups.erase(sched.groups.begin() + static_cast<std::ptrdiff_t>(b));
    std::sort(sched.groups.begin(), sched.groups.end(),
              [](const Group& x, const Group& y) { return x.first < y.first; });
  };

  while (s.groups.size() > 1) {
    std::size_t best_a = 0, best_b = 0;
    double best_traffic = best;
    for (std::size_t a = 0; a < s.groups.size(); ++a)
      for (std::size_t b = a + 1; b < s.groups.size(); ++b) {
        Schedule cand = s;
        merge_into(cand, a, b);
        refresh_groups(cand);
        const double traffic = dram_traffic_bytes(net, cand);
        if (traffic < best_traffic) {
          best_traffic = traffic;
          best_a = a;
          best_b = b;
        }
      }
    if (best_a == best_b) break;
    merge_into(s, best_a, best_b);
    refresh_groups(s);
    best = best_traffic;
  }
}

/// Optimal contiguous partition via dynamic programming (footnote 1).
/// Evaluates candidate partitions with the full traffic model; to keep this
/// polynomial it exploits that traffic is additive over groups given fixed
/// block footprints: dp[j] = min_i dp[i] + cost(i, j) where cost is the
/// traffic of a schedule containing group [i, j) with every other block in
/// singleton groups, minus the singleton baseline (a constant shift that
/// preserves the argmin).
void dp_optimal(const core::Network& net, Schedule& s) {
  const int n = static_cast<int>(net.blocks.size());

  // Singleton baseline: every block its own group.
  Schedule singles = s;
  singles.groups.clear();
  for (int b = 0; b < n; ++b) {
    Group g;
    g.first = g.last = b;
    singles.groups.push_back(g);
  }
  refresh_groups(singles);

  // cost(i, j): traffic with blocks [i, j] merged and all others singleton.
  auto cost = [&](int i, int j) {
    Schedule cand = singles;
    std::vector<Group> groups;
    for (int b = 0; b < i; ++b) groups.push_back(Group{b, b, 1, 1, {}});
    groups.push_back(Group{i, j, 1, 1, {}});
    for (int b = j + 1; b < n; ++b) groups.push_back(Group{b, b, 1, 1, {}});
    cand.groups = std::move(groups);
    refresh_groups(cand);
    return dram_traffic_bytes(net, cand);
  };
  const double base = dram_traffic_bytes(net, singles);

  std::vector<double> dp(static_cast<std::size_t>(n) + 1,
                         std::numeric_limits<double>::infinity());
  std::vector<int> cut(static_cast<std::size_t>(n) + 1, 0);
  dp[0] = 0;
  for (int j = 1; j <= n; ++j) {
    for (int i = 0; i < j; ++i) {
      const double c = dp[static_cast<std::size_t>(i)] +
                       (cost(i, j - 1) - base);
      if (c < dp[static_cast<std::size_t>(j)]) {
        dp[static_cast<std::size_t>(j)] = c;
        cut[static_cast<std::size_t>(j)] = i;
      }
    }
  }
  std::vector<Group> groups;
  for (int j = n; j > 0; j = cut[static_cast<std::size_t>(j)]) {
    Group g;
    g.first = cut[static_cast<std::size_t>(j)];
    g.last = j - 1;
    groups.push_back(g);
  }
  std::reverse(groups.begin(), groups.end());
  s.groups = std::move(groups);
  refresh_groups(s);
}

}  // namespace

Schedule build_schedule(const core::Network& net, ExecConfig config,
                        const ScheduleParams& params) {
  Schedule s;
  s.config = config;
  s.mini_batch =
      params.mini_batch > 0 ? params.mini_batch : net.mini_batch_per_core;
  s.buffer_bytes = params.buffer_bytes;
  s.block_footprint = block_footprints(net, config, params.feature_type);
  s.block_max_sub.reserve(s.block_footprint.size());
  for (std::int64_t fp : s.block_footprint)
    s.block_max_sub.push_back(
        max_sub_batch(fp, s.buffer_bytes, s.mini_batch));

  const int n = static_cast<int>(net.blocks.size());
  assert(n > 0);

  if (!uses_serialization(config)) {
    Group g;
    g.first = 0;
    g.last = n - 1;
    g.sub_batch = s.mini_batch;
    g.iterations = 1;
    s.groups.push_back(g);
    return s;
  }

  if (config == ExecConfig::kMbsFs) {
    // Full serialization: a single group at the tightest block's sub-batch.
    Group g;
    g.first = 0;
    g.last = n - 1;
    s.groups.push_back(g);
    refresh_groups(s);
    return s;
  }

  s.groups = initial_groups(s, n);
  refresh_groups(s);
  if (params.variant == GroupingVariant::kNonContiguous)
    greedy_merge_noncontig(net, s);
  else if (params.optimal_grouping)
    dp_optimal(net, s);
  else
    greedy_merge(net, s);
  return s;
}

}  // namespace mbs::sched
