// Schedule IR: the output of the MBS scheduler.
//
// A schedule partitions the network's blocks into contiguous layer groups;
// each group propagates the mini-batch in sub-batch sized chunks so that the
// group's peak per-sample footprint times the sub-batch size fits in the
// on-chip global buffer (Sec. 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/network.h"
#include "sched/config.h"

namespace mbs::sched {

/// Scheduler inputs.
struct ScheduleParams {
  std::int64_t buffer_bytes = 10ll * 1024 * 1024;  ///< per-core global buffer
  int mini_batch = 0;       ///< 0: use the network's per-core default
  bool optimal_grouping = false;  ///< use DP instead of greedy merging
  core::DataType feature_type = core::DataType::kF16;
};

/// One layer group: blocks [first, last] run with a common sub-batch size.
struct Group {
  int first = 0;      ///< first block index (inclusive)
  int last = 0;       ///< last block index (inclusive)
  int sub_batch = 1;  ///< samples per sub-batch iteration
  int iterations = 1; ///< ceil(mini_batch / sub_batch)

  /// Chunk sizes per iteration, greedy-filled: `sub_batch` for every
  /// iteration except a smaller final remainder (Fig. 5's "3,3,...,3,2").
  std::vector<int> chunks(int mini_batch) const;
};

/// A complete schedule for one network and execution configuration.
struct Schedule {
  ExecConfig config = ExecConfig::kBaseline;
  int mini_batch = 32;
  std::int64_t buffer_bytes = 0;
  std::vector<Group> groups;  ///< contiguous, covering all blocks in order

  /// Per-block per-sample footprint under this config's reuse policy.
  std::vector<std::int64_t> block_footprint;
  /// Per-block maximum sub-batch size (clamped to [1, mini_batch]).
  std::vector<int> block_max_sub;

  /// Group index owning `block`.
  int group_of_block(int block) const;
  /// Sub-batch iterations executed over `block`.
  int iterations_of_block(int block) const;
  /// Total sub-batch iterations across all groups.
  int total_iterations() const;
  /// True if `block` is the first block of its group (its input tensor is
  /// loaded from DRAM at a group boundary).
  bool is_group_boundary(int block) const;

  /// Checks structural invariants (cover, ordering, chunk sums, capacity).
  /// Returns an empty string when valid, else a description of the violation.
  std::string validate(const core::Network& net) const;
};

/// Computes the per-sample footprint of every block under `config`'s reuse
/// policy: Eq. 1/2 provisioning for MBS2, per-branch peaks otherwise.
std::vector<std::int64_t> block_footprints(const core::Network& net,
                                           ExecConfig config,
                                           core::DataType t);

/// Maximum sub-batch size for a per-sample footprint: floor(buffer /
/// footprint), clamped to [1, mini_batch].
int max_sub_batch(std::int64_t footprint_per_sample, std::int64_t buffer_bytes,
                  int mini_batch);

/// ceil(mini_batch / sub_batch).
int iterations_for(int mini_batch, int sub_batch);

}  // namespace mbs::sched
