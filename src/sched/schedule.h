// Schedule IR: the output of the MBS scheduler.
//
// A schedule partitions the network's blocks into contiguous layer groups;
// each group propagates the mini-batch in sub-batch sized chunks so that the
// group's peak per-sample footprint times the sub-batch size fits in the
// on-chip global buffer (Sec. 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/network.h"
#include "sched/config.h"

namespace mbs::sched {

/// Which layer-grouping search space the MBS1/MBS2 scheduler explores.
///
/// The paper (Sec. 3) restricts groups to *contiguous* runs of blocks; the
/// non-contiguous variant lifts that restriction and lets the greedy merger
/// combine any two groups, representing the result with explicit member
/// lists (`Group::members`). Because every tensor edge of the evaluated
/// networks connects adjacent blocks, a merge of non-adjacent groups keeps
/// no extra data on chip while still tightening the merged sub-batch — the
/// variant exists to *demonstrate* (via `bench/pareto_sweep` and
/// `tests/sched_test.cc`) that the paper's contiguity restriction loses
/// nothing, not to improve schedules.
enum class GroupingVariant {
  kContiguous,     ///< the paper's search space (default; bit-for-bit stable)
  kNonContiguous,  ///< merge any two groups; groups carry member lists
};

const char* to_string(GroupingVariant v);

/// Scheduler inputs. Every field is part of `engine::Scenario`'s schedule
/// cache key, so two scenarios with equal params share one schedule.
struct ScheduleParams {
  std::int64_t buffer_bytes = 10ll * 1024 * 1024;  ///< per-core global buffer
  int mini_batch = 0;       ///< 0: use the network's per-core default
  bool optimal_grouping = false;  ///< use DP instead of greedy merging
  core::DataType feature_type = core::DataType::kF16;
  /// Grouping search space for MBS1/MBS2 (ignored by the other configs).
  /// The default preserves current schedules bit for bit.
  GroupingVariant variant = GroupingVariant::kContiguous;
};

/// One layer group: a set of blocks that run with a common sub-batch size.
/// A contiguous group (the default, `members` empty) spans blocks
/// [first, last]; a non-contiguous group (GroupingVariant::kNonContiguous
/// only) lists its blocks explicitly in `members`, sorted ascending, with
/// `first`/`last` mirroring the extremes for display.
struct Group {
  int first = 0;      ///< first block index (inclusive)
  int last = 0;       ///< last block index (inclusive)
  int sub_batch = 1;  ///< samples per sub-batch iteration
  int iterations = 1; ///< ceil(mini_batch / sub_batch)
  /// Explicit block list for non-contiguous groups; empty means the
  /// contiguous range [first, last].
  std::vector<int> members;

  /// True when `block` belongs to this group.
  bool contains(int block) const;
  /// The group's block indices, ascending (materializes the range for
  /// contiguous groups).
  std::vector<int> blocks() const;

  /// Chunk sizes per iteration, greedy-filled: `sub_batch` for every
  /// iteration except a smaller final remainder (Fig. 5's "3,3,...,3,2").
  std::vector<int> chunks(int mini_batch) const;
};

/// A complete schedule for one network and execution configuration.
struct Schedule {
  ExecConfig config = ExecConfig::kBaseline;
  int mini_batch = 32;
  std::int64_t buffer_bytes = 0;
  /// Groups covering all blocks exactly once, ordered by first block.
  /// Contiguous unless the scheduler ran with
  /// GroupingVariant::kNonContiguous (then groups may interleave and carry
  /// explicit `members` lists).
  std::vector<Group> groups;

  /// Per-block per-sample footprint under this config's reuse policy.
  std::vector<std::int64_t> block_footprint;
  /// Per-block maximum sub-batch size (clamped to [1, mini_batch]).
  std::vector<int> block_max_sub;

  /// Group index owning `block`.
  int group_of_block(int block) const;
  /// Sub-batch iterations executed over `block`.
  int iterations_of_block(int block) const;
  /// Total sub-batch iterations across all groups.
  int total_iterations() const;
  /// True if `block` starts a new group run (its input tensor is loaded
  /// from DRAM at a group boundary): block 0, or a block whose predecessor
  /// belongs to a different group. For contiguous schedules this is exactly
  /// "block is some group's `first`".
  bool is_group_boundary(int block) const;

  /// Checks structural invariants (cover, ordering, chunk sums, capacity).
  /// Returns an empty string when valid, else a description of the violation.
  std::string validate(const core::Network& net) const;
};

/// Computes the per-sample footprint of every block under `config`'s reuse
/// policy: Eq. 1/2 provisioning for MBS2, per-branch peaks otherwise.
std::vector<std::int64_t> block_footprints(const core::Network& net,
                                           ExecConfig config,
                                           core::DataType t);

/// Maximum sub-batch size for a per-sample footprint: floor(buffer /
/// footprint), clamped to [1, mini_batch].
int max_sub_batch(std::int64_t footprint_per_sample, std::int64_t buffer_bytes,
                  int mini_batch);

/// ceil(mini_batch / sub_batch).
int iterations_for(int mini_batch, int sub_batch);

}  // namespace mbs::sched
