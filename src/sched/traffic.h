// DRAM and global-buffer traffic accounting for one training step.
//
// This is the model behind the paper's traffic results (Fig. 10c, Fig. 11):
// it walks every tensor edge of the network under a given schedule and
// decides, per configuration, whether the edge moves through DRAM or stays
// in the on-chip global buffer, and how often weights and weight-gradient
// partial sums are (re-)fetched.
#pragma once

#include <cstdint>
#include <vector>

#include "core/network.h"
#include "sched/schedule.h"

namespace mbs::sched {

/// Training phase a traffic record belongs to.
enum class Phase { kForward, kBackward };

/// What kind of data moved (used for reporting and for ablations).
enum class TrafficClass {
  kInput,        ///< network input samples
  kFeature,      ///< inter-layer activations moving in forward propagation
  kGradient,     ///< inter-layer loss gradients moving in back propagation
  kWeight,       ///< parameter reads (forward and data-gradient passes)
  kWgradPartial, ///< weight-gradient partial-sum writes and re-reads
  kStash,        ///< forward tensors stored for reuse in back propagation
  kMask,         ///< 1-bit ReLU gradient masks (MBS only)
};

const char* to_string(TrafficClass c);
const char* to_string(Phase p);

/// One aggregated traffic contribution, attributed to a layer and phase.
struct TrafficRecord {
  int block = 0;           ///< block index in the network
  int layer = 0;           ///< layer index within the block (for_each_layer order)
  core::LayerKind kind = core::LayerKind::kConv;
  bool is_gemm = false;    ///< runs on the systolic array
  Phase phase = Phase::kForward;
  TrafficClass cls = TrafficClass::kFeature;
  double dram_read = 0;    ///< bytes per training step (whole mini-batch)
  double dram_write = 0;
  double buf_read = 0;     ///< global-buffer bytes (energy model input)
  double buf_write = 0;
};

/// All traffic of one training step on one core.
struct Traffic {
  std::vector<TrafficRecord> records;

  double dram_bytes() const;
  double dram_read_bytes() const;
  double dram_write_bytes() const;
  double buffer_bytes() const;
  double dram_bytes_by_class(TrafficClass c) const;
  /// DRAM bytes attributed to a single block.
  double dram_bytes_for_block(int block) const;
};

/// Computes the per-step traffic of `schedule` over `net`. All byte counts
/// are per core (the paper reports per-chip numbers as 2x this).
Traffic compute_traffic(const core::Network& net, const Schedule& schedule);

/// Convenience: total DRAM bytes per step (used as the greedy/DP objective).
double dram_traffic_bytes(const core::Network& net, const Schedule& schedule);

}  // namespace mbs::sched
