#include "sched/schedule.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace mbs::sched {

const char* to_string(GroupingVariant v) {
  switch (v) {
    case GroupingVariant::kContiguous: return "contiguous";
    case GroupingVariant::kNonContiguous: return "noncontig";
  }
  return "?";
}

bool Group::contains(int block) const {
  if (members.empty()) return block >= first && block <= last;
  return std::binary_search(members.begin(), members.end(), block);
}

std::vector<int> Group::blocks() const {
  if (!members.empty()) return members;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(last - first + 1));
  for (int b = first; b <= last; ++b) out.push_back(b);
  return out;
}

std::vector<int> Group::chunks(int mini_batch) const {
  std::vector<int> out;
  int remaining = mini_batch;
  while (remaining > 0) {
    const int c = std::min(sub_batch, remaining);
    out.push_back(c);
    remaining -= c;
  }
  return out;
}

int Schedule::group_of_block(int block) const {
  // Non-contiguous groups can have overlapping [first, last] envelopes, so
  // membership (not the range test) decides.
  for (std::size_t g = 0; g < groups.size(); ++g)
    if (groups[g].contains(block)) return static_cast<int>(g);
  return -1;
}

int Schedule::iterations_of_block(int block) const {
  const int g = group_of_block(block);
  return g < 0 ? 1 : groups[static_cast<std::size_t>(g)].iterations;
}

int Schedule::total_iterations() const {
  int total = 0;
  for (const Group& g : groups) total += g.iterations;
  return total;
}

bool Schedule::is_group_boundary(int block) const {
  // Equivalent to "block is some group's first" for contiguous schedules;
  // for non-contiguous groups every run of consecutive members starts a
  // boundary (the group's data does not stay on chip across a gap).
  if (block <= 0) return true;
  return group_of_block(block - 1) != group_of_block(block);
}

std::string Schedule::validate(const core::Network& net) const {
  std::ostringstream err;
  const int n_blocks = static_cast<int>(net.blocks.size());
  if (groups.empty()) return "no groups";
  bool non_contiguous = false;
  for (const Group& g : groups) non_contiguous |= !g.members.empty();

  if (!non_contiguous) {
    if (groups.front().first != 0) return "first group does not start at 0";
    if (groups.back().last != n_blocks - 1)
      return "last group does not end at last block";
  } else {
    // Non-contiguous partition: every block owned by exactly one group.
    std::vector<int> owners(static_cast<std::size_t>(n_blocks), 0);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const Group& grp = groups[g];
      // Checked before blocks(): a member-less group with first > last
      // must be reported, not expanded into a bogus range.
      if (grp.members.empty() && grp.first > grp.last) {
        err << "group " << g << " has first > last";
        return err.str();
      }
      const std::vector<int> blocks = grp.blocks();
      if (!std::is_sorted(blocks.begin(), blocks.end()) ||
          std::adjacent_find(blocks.begin(), blocks.end()) != blocks.end()) {
        err << "group " << g << " members not sorted/unique";
        return err.str();
      }
      if (grp.first != blocks.front() || grp.last != blocks.back()) {
        err << "group " << g << " first/last disagree with members";
        return err.str();
      }
      for (int b : blocks) {
        if (b < 0 || b >= n_blocks) {
          err << "group " << g << " member out of range";
          return err.str();
        }
        ++owners[static_cast<std::size_t>(b)];
      }
    }
    for (int b = 0; b < n_blocks; ++b)
      if (owners[static_cast<std::size_t>(b)] != 1) {
        err << "block " << b << " owned by "
            << owners[static_cast<std::size_t>(b)] << " groups";
        return err.str();
      }
  }

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const Group& grp = groups[g];
    if (grp.first > grp.last) {
      err << "group " << g << " has first > last";
      return err.str();
    }
    if (!non_contiguous && g > 0 && grp.first != groups[g - 1].last + 1) {
      err << "group " << g << " is not contiguous with its predecessor";
      return err.str();
    }
    if (grp.sub_batch < 1 || grp.sub_batch > mini_batch) {
      err << "group " << g << " sub-batch out of range";
      return err.str();
    }
    if (grp.iterations != iterations_for(mini_batch, grp.sub_batch)) {
      err << "group " << g << " iteration count inconsistent";
      return err.str();
    }
    int sum = 0;
    for (int c : grp.chunks(mini_batch)) {
      if (c < 1 || c > grp.sub_batch) {
        err << "group " << g << " chunk out of range";
        return err.str();
      }
      sum += c;
    }
    if (sum != mini_batch) {
      err << "group " << g << " chunks do not sum to the mini-batch";
      return err.str();
    }
    // Capacity: the sub-batch footprint of every block in the group must fit
    // in the buffer, unless even one sample exceeds it (sub_batch == 1).
    if (uses_serialization(config)) {
      for (int b : grp.blocks()) {
        const auto fp = block_footprint[static_cast<std::size_t>(b)];
        if (grp.sub_batch > 1 &&
            fp * grp.sub_batch > buffer_bytes) {
          err << "group " << g << " block " << b
              << " exceeds the buffer at sub-batch " << grp.sub_batch;
          return err.str();
        }
      }
    }
  }
  return "";
}

std::vector<std::int64_t> block_footprints(const core::Network& net,
                                           ExecConfig config,
                                           core::DataType t) {
  std::vector<std::int64_t> out;
  out.reserve(net.blocks.size());
  for (const core::Block& b : net.blocks)
    out.push_back(uses_inter_branch_reuse(config) ? b.footprint_inter_branch(t)
                                                  : b.footprint_per_branch(t));
  return out;
}

int max_sub_batch(std::int64_t footprint_per_sample, std::int64_t buffer_bytes,
                  int mini_batch) {
  assert(footprint_per_sample > 0);
  const std::int64_t fit = buffer_bytes / footprint_per_sample;
  return static_cast<int>(
      std::clamp<std::int64_t>(fit, 1, mini_batch));
}

int iterations_for(int mini_batch, int sub_batch) {
  assert(sub_batch >= 1);
  return (mini_batch + sub_batch - 1) / sub_batch;
}

}  // namespace mbs::sched
