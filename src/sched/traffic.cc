#include "sched/traffic.h"

#include <algorithm>
#include <cassert>

namespace mbs::sched {

namespace {

using core::Block;
using core::DataType;
using core::Layer;
using core::LayerKind;
using core::Network;

constexpr DataType kFeat = DataType::kF16;

/// A layer with global (block, layer-within-block) indices and resolved
/// input/output tensor ids.
struct FlatLayer {
  int block = 0;
  int layer = 0;
  const Layer* l = nullptr;
  std::vector<int> in_tensors;
  int out_tensor = -1;
};

/// A tensor edge in the dataflow graph: produced once, consumed by one or
/// more layers (block inputs fan out to every branch).
struct TensorInfo {
  int producer = -1;  ///< flat layer index; -1 for the network input
  int producer_block = -1;
  std::vector<int> consumers;  ///< flat layer indices, in execution order
  std::int64_t bytes_ps = 0;   ///< per-sample bytes (16b features)
  std::int64_t elems_ps = 0;
  bool network_input = false;
  bool feeds_merge = false;    ///< consumed by a merge layer (Add/Concat)
};

/// Whole-network dataflow graph at tensor granularity.
struct Dataflow {
  std::vector<FlatLayer> layers;
  std::vector<TensorInfo> tensors;
  int first_gemm_flat = -1;  ///< first conv/fc: its data-gradient is skipped
};

Dataflow build_dataflow(const Network& net) {
  Dataflow df;

  auto add_tensor = [&](int producer, int block, std::int64_t elems) {
    TensorInfo t;
    t.producer = producer;
    t.producer_block = block;
    t.elems_ps = elems;
    t.bytes_ps = core::bytes_for(elems, kFeat);
    df.tensors.push_back(t);
    return static_cast<int>(df.tensors.size()) - 1;
  };

  // Network input.
  int cur = add_tensor(-1, -1, net.input.elements());
  df.tensors[static_cast<std::size_t>(cur)].network_input = true;

  for (std::size_t bi = 0; bi < net.blocks.size(); ++bi) {
    const Block& blk = net.blocks[bi];
    const int block_in_tensor = cur;
    int layer_in_block = 0;

    auto add_layer = [&](const Layer& l) {
      FlatLayer fl;
      fl.block = static_cast<int>(bi);
      fl.layer = layer_in_block++;
      fl.l = &l;
      df.layers.push_back(fl);
      return static_cast<int>(df.layers.size()) - 1;
    };
    auto connect = [&](int flat, int in_tensor) {
      df.layers[static_cast<std::size_t>(flat)].in_tensors.push_back(in_tensor);
      df.tensors[static_cast<std::size_t>(in_tensor)].consumers.push_back(flat);
    };

    // Branch chains. The identity branch contributes its (= the block's)
    // input tensor directly to the merge.
    std::vector<int> branch_out_tensors;
    for (const core::Branch& branch : blk.branches) {
      int t = block_in_tensor;
      for (const Layer& l : branch.layers) {
        const int flat = add_layer(l);
        connect(flat, t);
        t = add_tensor(flat, static_cast<int>(bi), l.out.elements());
        df.layers[static_cast<std::size_t>(flat)].out_tensor = t;
        if (df.first_gemm_flat < 0 && l.is_gemm()) df.first_gemm_flat = flat;
      }
      branch_out_tensors.push_back(t);
    }

    // Merge chain: the first merge layer consumes every branch output; the
    // rest form a chain.
    int t = branch_out_tensors.empty() ? block_in_tensor
                                       : branch_out_tensors[0];
    for (std::size_t mi = 0; mi < blk.merge.size(); ++mi) {
      const Layer& l = blk.merge[mi];
      const int flat = add_layer(l);
      if (mi == 0 && (l.kind == LayerKind::kAdd || l.kind == LayerKind::kConcat)) {
        for (int bt : branch_out_tensors) {
          connect(flat, bt);
          df.tensors[static_cast<std::size_t>(bt)].feeds_merge = true;
        }
      } else {
        connect(flat, t);
      }
      t = add_tensor(flat, static_cast<int>(bi), l.out.elements());
      df.layers[static_cast<std::size_t>(flat)].out_tensor = t;
    }
    cur = blk.merge.empty() ? branch_out_tensors[0] : t;
  }
  return df;
}

/// True when this layer's backward pass needs its 16b forward input
/// (convolution/FC weight gradients, normalization gradients, attention's
/// Q/K/V operands).
bool needs_input_stash(const Layer& l) {
  return l.kind == LayerKind::kConv || l.kind == LayerKind::kFc ||
         l.kind == LayerKind::kNorm || l.kind == LayerKind::kAttention;
}

/// Per-sample working-set bytes of a layer viewed in isolation. Attention
/// additionally holds its heads x S x S score matrix between the two GEMMs.
std::int64_t layer_ws(const Layer& l) {
  return l.input_bytes_per_sample(kFeat) + l.output_bytes_per_sample(kFeat) +
         l.attention_score_bytes_per_sample(kFeat);
}

class TrafficBuilder {
 public:
  TrafficBuilder(const Network& net, const Schedule& sched)
      : net_(net), sched_(sched), df_(build_dataflow(net)),
        n_(sched.mini_batch), masks_(uses_relu_masks(sched.config)) {}

  Traffic run() {
    for (std::size_t ti = 0; ti < df_.tensors.size(); ++ti)
      emit_tensor(static_cast<int>(ti));
    for (std::size_t fi = 0; fi < df_.layers.size(); ++fi)
      emit_layer(static_cast<int>(fi));
    return std::move(out_);
  }

 private:
  /// Does the edge tensor->consumer move through DRAM?
  bool edge_via_dram(int tensor, int consumer_flat) const {
    const TensorInfo& t = df_.tensors[static_cast<std::size_t>(tensor)];
    if (t.network_input) return true;
    const FlatLayer& c = df_.layers[static_cast<std::size_t>(consumer_flat)];
    const ExecConfig cfg = sched_.config;

    if (cfg == ExecConfig::kBaseline || cfg == ExecConfig::kArchOpt)
      return true;

    // Rank of this consumer among the tensor's consumers (fan-out order).
    const auto it = std::find(t.consumers.begin(), t.consumers.end(),
                              consumer_flat);
    const int rank = static_cast<int>(it - t.consumers.begin());

    // Is this the branch output that reaches the merge layer last (and can
    // therefore stay resident without extra provisioning)?
    const bool is_last_merge_operand = [&] {
      if (!t.feeds_merge) return false;
      const std::vector<int>& ins = c.in_tensors;
      int latest = -2;
      for (int in : ins) {
        const int p = df_.tensors[static_cast<std::size_t>(in)].producer;
        latest = std::max(latest, p);
      }
      return t.producer == latest;
    }();

    if (cfg == ExecConfig::kIL) {
      // On chip only when the whole mini-batch fits at both endpoints.
      const std::int64_t p_ws =
          t.producer < 0 ? 0
                         : layer_ws(*df_.layers[static_cast<std::size_t>(
                                         t.producer)].l);
      const std::int64_t need =
          static_cast<std::int64_t>(n_) * std::max(p_ws, layer_ws(*c.l));
      if (need > sched_.buffer_bytes) return true;
      // Cross-branch sharing additionally requires Eq. 1/2 provisioning for
      // the whole mini-batch.
      if ((rank > 0) || (t.feeds_merge && !is_last_merge_operand)) {
        const Block& blk = net_.blocks[static_cast<std::size_t>(c.block)];
        return static_cast<std::int64_t>(n_) * blk.footprint_inter_branch() >
               sched_.buffer_bytes;
      }
      return false;
    }

    // Serialized configs: group boundaries always spill.
    if (sched_.group_of_block(t.producer_block) !=
        sched_.group_of_block(c.block))
      return true;
    if (uses_inter_branch_reuse(cfg)) return false;
    // MBS1 / MBS-FS: no cross-branch provisioning. A block input is only
    // resident for its first consumer; branch outputs other than the last
    // produced one are spilled before the merge.
    if (rank > 0) return true;
    if (t.feeds_merge && !is_last_merge_operand) return true;
    return false;
  }

  /// Can a norm-style double pass over `bytes_ps` per sample be buffered?
  bool double_pass_buffered(int consumer_flat, std::int64_t in_bytes_ps) const {
    if (uses_serialization(sched_.config)) return true;  // chunk fits by construction
    const std::int64_t need = static_cast<std::int64_t>(n_) * 2 * in_bytes_ps;
    (void)consumer_flat;
    return need <= sched_.buffer_bytes;
  }

  void add(int flat, Phase phase, TrafficClass cls, double dram_rd,
           double dram_wr, double buf_rd, double buf_wr) {
    const FlatLayer& fl = df_.layers[static_cast<std::size_t>(flat)];
    TrafficRecord r;
    r.block = fl.block;
    r.layer = fl.layer;
    r.kind = fl.l->kind;
    r.is_gemm = fl.l->is_gemm();
    r.phase = phase;
    r.cls = cls;
    r.dram_read = dram_rd;
    r.dram_write = dram_wr;
    // Every DRAM transfer also moves through the global buffer.
    r.buf_read = buf_rd + dram_wr;
    r.buf_write = buf_wr + dram_rd;
    out_.records.push_back(r);
  }

  /// Emits forward feature movement, stash writes, gradient movement and
  /// stash reads for one tensor.
  void emit_tensor(int ti) {
    const TensorInfo& t = df_.tensors[static_cast<std::size_t>(ti)];
    const double bytes = static_cast<double>(t.bytes_ps) * n_;

    // --- Forward: producer side -------------------------------------------
    bool any_dram_consumer = false;
    for (int c : t.consumers) any_dram_consumer |= edge_via_dram(ti, c);

    bool stash16 = false;
    for (int c : t.consumers)
      stash16 |= needs_input_stash(*df_.layers[static_cast<std::size_t>(c)].l);
    // Without 1-bit masks, ReLU backward re-reads its 16b output, which must
    // therefore be present in DRAM.
    const bool act_out = t.producer >= 0 &&
        df_.layers[static_cast<std::size_t>(t.producer)].l->kind ==
            LayerKind::kAct;
    if (act_out && !masks_) stash16 = true;

    if (t.producer >= 0) {
      // Producer always writes its result into the global buffer.
      add(t.producer, Phase::kForward, TrafficClass::kFeature, 0, 0, 0, bytes);
      if (any_dram_consumer || stash16) {
        const TrafficClass cls =
            any_dram_consumer ? TrafficClass::kFeature : TrafficClass::kStash;
        add(t.producer, Phase::kForward, cls, 0, bytes, 0, 0);
      }
    }

    // --- Forward: consumer side -------------------------------------------
    for (int c : t.consumers) {
      const FlatLayer& fc = df_.layers[static_cast<std::size_t>(c)];
      const bool via_dram = edge_via_dram(ti, c);
      const TrafficClass cls =
          t.network_input ? TrafficClass::kInput : TrafficClass::kFeature;
      if (via_dram)
        add(c, Phase::kForward, cls, bytes, 0, 0, 0);
      else
        add(c, Phase::kForward, cls, 0, 0, bytes, 0);
      // Normalization iterates over its input twice (mean/variance, then
      // the normalization itself).
      if (fc.l->kind == LayerKind::kNorm) {
        if (double_pass_buffered(c, t.bytes_ps) || !via_dram)
          add(c, Phase::kForward, cls, 0, 0, bytes, 0);
        else
          add(c, Phase::kForward, cls, bytes, 0, 0, 0);
      }
    }

    // --- Backward: stash reads --------------------------------------------
    bool shared_read_done = false;
    for (int c : t.consumers) {
      const FlatLayer& fc = df_.layers[static_cast<std::size_t>(c)];
      if (!needs_input_stash(*fc.l)) continue;
      // With inter-branch reuse, consumers in the same block share one read.
      if (uses_inter_branch_reuse(sched_.config) && shared_read_done) {
        add(c, Phase::kBackward, TrafficClass::kStash, 0, 0, bytes, 0);
        continue;
      }
      add(c, Phase::kBackward, TrafficClass::kStash, bytes, 0, 0, 0);
      shared_read_done = true;
      // Normalization backward also needs two passes over x.
      if (fc.l->kind == LayerKind::kNorm) {
        if (double_pass_buffered(c, t.bytes_ps))
          add(c, Phase::kBackward, TrafficClass::kStash, 0, 0, bytes, 0);
        else
          add(c, Phase::kBackward, TrafficClass::kStash, bytes, 0, 0, 0);
      }
    }
    // ReLU backward: 1-bit mask (MBS) or a re-read of the 16b output.
    if (act_out) {
      const double mask_bytes =
          static_cast<double>(core::bytes_for(t.elems_ps, DataType::kBit)) * n_;
      if (masks_) {
        add(t.producer, Phase::kForward, TrafficClass::kMask, 0, mask_bytes, 0, 0);
        add(t.producer, Phase::kBackward, TrafficClass::kMask, mask_bytes, 0, 0, 0);
      } else {
        add(t.producer, Phase::kBackward, TrafficClass::kStash, bytes, 0, 0, 0);
      }
    }
    // Max pooling stores argmax indices (1 byte per output element).
    if (t.producer >= 0) {
      const Layer& pl = *df_.layers[static_cast<std::size_t>(t.producer)].l;
      if (pl.kind == LayerKind::kPool && pl.pool_kind == core::PoolKind::kMax) {
        const double idx_bytes =
            static_cast<double>(core::bytes_for(t.elems_ps, DataType::kI8)) * n_;
        add(t.producer, Phase::kForward, TrafficClass::kStash, 0, idx_bytes, 0, 0);
        add(t.producer, Phase::kBackward, TrafficClass::kStash, idx_bytes, 0, 0, 0);
      }
    }

    // --- Backward: gradient movement ---------------------------------------
    // grad(t) is produced (as partials) by each consumer's backward pass and
    // consumed by the producer's backward pass. Add/Concat backward is pure
    // routing: the gradient of an Add/Concat input aliases the gradient of
    // its output, so such consumers write nothing — the producer reads the
    // aliased gradient from wherever it lives. The network input needs no
    // gradient.
    if (t.producer < 0) return;
    if (t.consumers.empty()) return;  // final output; loss is out of scope
    for (int c : t.consumers) {
      const FlatLayer& fc = df_.layers[static_cast<std::size_t>(c)];
      const bool routed = fc.l->kind == LayerKind::kAdd ||
                          fc.l->kind == LayerKind::kConcat;
      bool via_dram;
      if (routed) {
        // Location of grad(merge output): spilled iff any forward edge of
        // the merge's output tensor moved through DRAM (mirror rule).
        via_dram = false;
        const TensorInfo& mo =
            df_.tensors[static_cast<std::size_t>(fc.out_tensor)];
        for (int mc : mo.consumers)
          via_dram |= edge_via_dram(fc.out_tensor, mc);
      } else {
        via_dram = edge_via_dram(ti, c);
        // The partial producer materializes its contribution.
        if (via_dram)
          add(c, Phase::kBackward, TrafficClass::kGradient, 0, bytes, 0, 0);
        else
          add(c, Phase::kBackward, TrafficClass::kGradient, 0, 0, 0, bytes);
      }
      if (via_dram)
        add(t.producer, Phase::kBackward, TrafficClass::kGradient, bytes, 0,
            0, 0);
      else
        add(t.producer, Phase::kBackward, TrafficClass::kGradient, 0, 0,
            bytes, 0);
    }
  }

  /// Emits the movement of the score/probability matrix internal to an
  /// attention layer. P = softmax(Q.K^T) sits between the two
  /// activation-activation GEMMs; it is always stashed to DRAM for the
  /// backward pass (the softmax gradient and dV both consume it), and the
  /// remaining intermediate passes stay on chip only while a sub-batch of
  /// score matrices fits in the global buffer. Because the schedule's
  /// per-sample block footprint includes the score matrix, serialized
  /// configs always fit; the unserialized configs spill once B*H*S*S
  /// outgrows the buffer — exactly the reuse pattern MBS is meant to keep
  /// on chip.
  void emit_attention(int fi) {
    const FlatLayer& fl = df_.layers[static_cast<std::size_t>(fi)];
    const Layer& l = *fl.l;
    const std::int64_t score_ps = l.attention_score_bytes_per_sample(kFeat);
    const double p = static_cast<double>(score_ps) * n_;

    add(fi, Phase::kForward, TrafficClass::kStash, 0, p, 0, 0);
    add(fi, Phase::kBackward, TrafficClass::kStash, p, 0, 0, 0);

    const int g = sched_.group_of_block(fl.block);
    const std::int64_t sub = sched_.groups[static_cast<std::size_t>(g)].sub_batch;
    if (sub * score_ps <= sched_.buffer_bytes) {
      // Scores/P shuttle through the buffer: GEMM1 writes scores, the
      // softmax reads them in place; backward re-reads P (for dV and the
      // softmax gradient) and streams dP/dS without leaving the chip.
      add(fi, Phase::kForward, TrafficClass::kFeature, 0, 0, p, p);
      add(fi, Phase::kBackward, TrafficClass::kFeature, 0, 0, 3 * p, p);
    } else {
      // A sub-batch of score matrices overflows the buffer: forward, the
      // softmax re-reads the spilled scores and GEMM2 re-reads P (its spill
      // is the stash write above); backward, dP and dS are materialized in
      // DRAM (dS read twice, for dQ and dK) and P is re-read for dV.
      add(fi, Phase::kForward, TrafficClass::kFeature, 2 * p, p, 0, 0);
      add(fi, Phase::kBackward, TrafficClass::kFeature, 4 * p, 2 * p, 0, 0);
    }
  }

  /// Emits weight and weight-gradient traffic for one layer.
  void emit_layer(int fi) {
    const FlatLayer& fl = df_.layers[static_cast<std::size_t>(fi)];
    const Layer& l = *fl.l;
    if (l.kind == LayerKind::kAttention) {
      emit_attention(fi);
      return;
    }
    const double w = static_cast<double>(l.param_bytes(kFeat));
    if (w == 0) return;
    const int it = sched_.iterations_of_block(fl.block);

    if (l.kind == LayerKind::kNorm) {
      // GN scale/shift parameters are small enough to stay on chip for the
      // whole step (Sec. 3.1): one read, one gradient write.
      add(fi, Phase::kForward, TrafficClass::kWeight, w, 0, 0, 0);
      add(fi, Phase::kBackward, TrafficClass::kWgradPartial, 0, w, 0, 0);
      return;
    }

    // Forward: weights re-read once per sub-batch iteration.
    add(fi, Phase::kForward, TrafficClass::kWeight, w * it, 0, 0, 0);
    // Backward data gradient re-reads (transposed) weights, except for the
    // first GEMM layer which needs no input gradient.
    if (fi != df_.first_gemm_flat)
      add(fi, Phase::kBackward, TrafficClass::kWeight, w * it, 0, 0, 0);
    // Weight-gradient partial sums: written every iteration, re-read on
    // every iteration after the first (Sec. 3 "Data Synchronization").
    add(fi, Phase::kBackward, TrafficClass::kWgradPartial, w * (it - 1),
        w * it, 0, 0);
  }

  const Network& net_;
  const Schedule& sched_;
  Dataflow df_;
  int n_;
  bool masks_;
  Traffic out_;
};

}  // namespace

const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kInput: return "input";
    case TrafficClass::kFeature: return "feature";
    case TrafficClass::kGradient: return "gradient";
    case TrafficClass::kWeight: return "weight";
    case TrafficClass::kWgradPartial: return "wgrad";
    case TrafficClass::kStash: return "stash";
    case TrafficClass::kMask: return "mask";
  }
  return "?";
}

const char* to_string(Phase p) {
  return p == Phase::kForward ? "fwd" : "bwd";
}

double Traffic::dram_bytes() const {
  return dram_read_bytes() + dram_write_bytes();
}

double Traffic::dram_read_bytes() const {
  double total = 0;
  for (const auto& r : records) total += r.dram_read;
  return total;
}

double Traffic::dram_write_bytes() const {
  double total = 0;
  for (const auto& r : records) total += r.dram_write;
  return total;
}

double Traffic::buffer_bytes() const {
  double total = 0;
  for (const auto& r : records) total += r.buf_read + r.buf_write;
  return total;
}

double Traffic::dram_bytes_by_class(TrafficClass c) const {
  double total = 0;
  for (const auto& r : records)
    if (r.cls == c) total += r.dram_read + r.dram_write;
  return total;
}

double Traffic::dram_bytes_for_block(int block) const {
  double total = 0;
  for (const auto& r : records)
    if (r.block == block) total += r.dram_read + r.dram_write;
  return total;
}

Traffic compute_traffic(const core::Network& net, const Schedule& schedule) {
  return TrafficBuilder(net, schedule).run();
}

double dram_traffic_bytes(const core::Network& net, const Schedule& schedule) {
  return compute_traffic(net, schedule).dram_bytes();
}

}  // namespace mbs::sched
