// Execution configurations evaluated in the paper (Tab. 3).
#pragma once

#include <string_view>
#include <vector>

namespace mbs::sched {

/// Tab. 3's six evaluation configurations, in presentation order.
enum class ExecConfig {
  kBaseline,  ///< two-level GEMM blocking; all inter-layer data via DRAM
  kArchOpt,   ///< Baseline + PE weight double buffering (gap-less waves)
  kIL,        ///< ArchOpt + inter-layer reuse only when a whole mini-batch fits
  kMbsFs,     ///< IL + full serialization: one sub-batch size for all layers
  kMbs1,      ///< IL + greedy layer grouping balancing intra/inter-layer reuse
  kMbs2,      ///< MBS1 + inter-branch data reuse (Eq. 1 / Eq. 2 provisioning)
};

inline const char* to_string(ExecConfig c) {
  switch (c) {
    case ExecConfig::kBaseline: return "Baseline";
    case ExecConfig::kArchOpt: return "ArchOpt";
    case ExecConfig::kIL: return "IL";
    case ExecConfig::kMbsFs: return "MBS-FS";
    case ExecConfig::kMbs1: return "MBS1";
    case ExecConfig::kMbs2: return "MBS2";
  }
  return "?";
}

/// Inverse of to_string: parses a Tab. 3 configuration name ("Baseline",
/// "ArchOpt", "IL", "MBS-FS", "MBS1", "MBS2"). Returns false (out
/// untouched) on an unknown name. Used by the serve layer's Scenario spec
/// parser.
inline bool parse_exec_config(const char* s, ExecConfig* out) {
  for (ExecConfig c :
       {ExecConfig::kBaseline, ExecConfig::kArchOpt, ExecConfig::kIL,
        ExecConfig::kMbsFs, ExecConfig::kMbs1, ExecConfig::kMbs2}) {
    if (std::string_view(s) == to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

/// All six execution configurations, in Tab. 3's presentation order.
/// (Previously copy-pasted as array literals across the bench binaries.)
inline std::vector<ExecConfig> all_exec_configs() {
  return {ExecConfig::kBaseline, ExecConfig::kArchOpt, ExecConfig::kIL,
          ExecConfig::kMbsFs,    ExecConfig::kMbs1,    ExecConfig::kMbs2};
}

/// Alias for the Tab. 3 evaluation set (all six configurations); the name
/// the paper-figure benches use when declaring their scenario grids.
inline std::vector<ExecConfig> paper_tab3_configs() {
  return all_exec_configs();
}

/// The serialized configurations (MBS-FS/MBS1/MBS2) plus IL — the subset
/// Fig. 11's buffer sweep evaluates.
inline std::vector<ExecConfig> serialized_configs_with_il() {
  return {ExecConfig::kIL, ExecConfig::kMbsFs, ExecConfig::kMbs1,
          ExecConfig::kMbs2};
}

/// All configurations except Baseline double-buffer weights in the PEs.
inline bool uses_weight_double_buffering(ExecConfig c) {
  return c != ExecConfig::kBaseline;
}

/// True for the configurations that serialize a mini-batch into sub-batches.
inline bool uses_serialization(ExecConfig c) {
  return c == ExecConfig::kMbsFs || c == ExecConfig::kMbs1 ||
         c == ExecConfig::kMbs2;
}

/// True when data shared between branches of a multi-branch block is kept on
/// chip (MBS2 only).
inline bool uses_inter_branch_reuse(ExecConfig c) {
  return c == ExecConfig::kMbs2;
}

/// True when ReLU backward uses 1-bit masks instead of re-reading 16b
/// activations (an MBS optimization, Sec. 3 "Back Propagation").
inline bool uses_relu_masks(ExecConfig c) { return uses_serialization(c); }

}  // namespace mbs::sched
