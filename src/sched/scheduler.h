// The MBS scheduler: builds an execution schedule for a network under one of
// the Tab. 3 configurations (Sec. 3 "Layer Grouping Optimizes Reuse").
#pragma once

#include "core/network.h"
#include "sched/schedule.h"

namespace mbs::sched {

/// Builds a schedule for `net` under `config`.
///
/// * Baseline / ArchOpt / IL: a single group spanning the whole network with
///   sub-batch = mini-batch (no serialization).
/// * MBS-FS: one group, sub-batch = the minimum feasible size over all blocks.
/// * MBS1 / MBS2: initial groups of equal minimum iteration count, then
///   greedy merging of adjacent groups while total modeled DRAM traffic
///   improves; MBS2 additionally provisions for inter-branch reuse (Eq. 1/2)
///   when computing footprints.
///
/// Two search-space knobs refine the MBS1/MBS2 grouping step:
///
/// * `params.optimal_grouping` replaces greedy merging with an O(blocks^2)
///   dynamic program over contiguous partitions (the exhaustive-search
///   reference of the paper's footnote 1).
/// * `params.variant == GroupingVariant::kNonContiguous` lets the greedy
///   merger combine *any* two groups, not just adjacent ones; the resulting
///   groups carry explicit member lists (`Group::members`). It takes
///   precedence over `optimal_grouping` (the DP searches the contiguous
///   space only). The default, `kContiguous`, preserves current schedules
///   bit for bit.
///
/// Determinism: for fixed inputs the result is a pure function of
/// (net, config, params) — the engine memoizes it under
/// `Scenario::schedule_key()`, which covers every `ScheduleParams` field.
Schedule build_schedule(const core::Network& net, ExecConfig config,
                        const ScheduleParams& params = {});

}  // namespace mbs::sched
