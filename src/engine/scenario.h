// Scenario: one point of the paper's evaluation design space.
//
// Every figure and table of the MBS evaluation is a sweep over the same
// four coordinates: which network, which Tab. 3 execution configuration,
// which scheduler parameters (buffer size, mini-batch, grouping algorithm),
// and which hardware model (WaveCore variant or the Fig. 13 GPU
// comparator). A Scenario captures one such point as plain data with a
// stable cache key, so the engine can memoize and parallelize sweeps
// without the 18 bespoke main() loops the seed repo used.
#pragma once

#include <string>
#include <vector>

#include "arch/gpu.h"
#include "sched/config.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

namespace mbs::engine {

/// Hardware model a scenario executes on.
enum class Device {
  kWaveCore,  ///< the Sec. 4.2 accelerator model (sim::simulate_step)
  kGpu,       ///< the analytical V100 comparator (arch::simulate_gpu_step)
  kSystolic,  ///< cycle-level systolic backend (arch::simulate_systolic_step)
};

const char* to_string(Device d);

/// How deep the pipeline runs for a scenario. Analysis benches that only
/// need the network or the schedule skip the later (more expensive) stages.
enum class Stage {
  kNetwork,   ///< build the network only
  kSchedule,  ///< + run the scheduler
  kTraffic,   ///< + compute the traffic model
  kSimulate,  ///< + simulate the training step (default)
};

/// One evaluation point. Value type: copy freely, no behaviour beyond key
/// derivation. Every field that influences a pipeline stage's result is
/// covered by that stage's key below — when adding a field, thread it into
/// scenario.cc or two different scenarios will alias one memoized result
/// (docs/WORKLOADS.md "Declaring a scenario grid").
struct Scenario {
  /// models::make_network name: an evaluated CNN ("resnet50", ...,
  /// "alexnet") or a Transformer-family addition ("vit_small", "vit_base",
  /// "transformer_base"); see models::all_network_names().
  std::string network;
  /// Sequence-length override for Transformer-family networks: 0 keeps the
  /// network's default token count (and every key byte-identical to the
  /// pre-seq era); > 0 rebuilds the network at that many tokens (ViTs need
  /// a perfect square). CNNs reject non-zero values.
  int seq = 0;
  /// Tab. 3 execution configuration (Baseline ... MBS2).
  sched::ExecConfig config = sched::ExecConfig::kBaseline;
  /// Scheduler inputs: buffer capacity, mini-batch override, greedy-vs-DP
  /// grouping, feature type, and the grouping-variant axis
  /// (sched::GroupingVariant — contiguous by default, non-contiguous to
  /// sweep the relaxed search space).
  sched::ScheduleParams params;
  /// WaveCore hardware point: systolic array, memory system (type and
  /// bandwidth), core count, global buffer, energy model.
  sim::WaveCoreConfig hw;

  Device device = Device::kWaveCore;
  arch::GpuModel gpu;      ///< used when device == kGpu
  int gpu_mini_batch = 64; ///< global mini-batch for the GPU comparator
  /// Cycle-backend mapping knobs (dataflow, scratchpad); used when
  /// device == kSystolic. The array geometry itself comes from `hw`.
  arch::SystolicOptions systolic;

  /// Evaluation depth (not part of any cache key: each stage memoizes
  /// independently, so deep and shallow scenarios share work).
  Stage stage = Stage::kSimulate;

  std::string label;  ///< free-form tag carried through to results

  /// Key of the network-construction stage (models::make_network input;
  /// carries the seq override only when non-default).
  std::string network_key() const;
  /// Key of the scheduling stage: network + config + every ScheduleParams
  /// field. Scenarios differing only in `hw` share this key. Fields added
  /// after PR 2 (params.variant) are emitted only when non-default, so
  /// pre-existing scenarios' keys never change bytes as axes accrue.
  std::string schedule_key() const;
  /// Key of the simulation stage: schedule_key + every hardware field (or
  /// the GPU model fields for kGpu scenarios). Two scenarios with equal
  /// cache keys produce bit-identical results.
  std::string cache_key() const;
};

/// Parses a textual Scenario spec — the serve layer's query format — of
/// semicolon-separated `key=value` fields:
///
///   net=resnet50;cfg=MBS2;buf=8388608;dev=systolic;df=ws;stage=simulate
///
/// Keys: net (required), seq (Transformer token count, 0 = default), cfg
/// (Tab. 3 name), buf (bytes), mb, opt (0/1), var
/// (contiguous|noncontiguous), dev (wavecore|gpu|systolic), df (systolic
/// dataflow), spad (bytes), gmb (GPU mini-batch), nobw (0/1), stage
/// (network|schedule|traffic|simulate). Unlisted fields keep their
/// defaults, so a spec's cache_key matches the batch benches' default
/// hardware point. Whitespace around fields is ignored. Returns false and
/// fills *error (when non-null) on an unknown key, malformed value, or a
/// missing net — the syntax check only; whether the network exists is the
/// caller's lookup (models::all_network_names()).
bool parse_scenario(const std::string& spec, Scenario* out,
                    std::string* error);

/// Cross product of networks x configs sharing `params` and `hw`, in
/// row-major (network-major) order — the shape of Figs. 10 and 14.
std::vector<Scenario> scenario_grid(
    const std::vector<std::string>& networks,
    const std::vector<sched::ExecConfig>& configs,
    const sched::ScheduleParams& params = {},
    const sim::WaveCoreConfig& hw = {}, Stage stage = Stage::kSimulate);

}  // namespace mbs::engine
