// ResultSink: structured output for sweep results.
//
// Collects string rows once and renders them three ways: the aligned
// console table every bench prints (via util::Table), RFC-4180-style CSV,
// and a JSON document — the latter two for bench-trajectory tooling that
// tracks figure reproductions across commits. Set MBS_RESULT_DIR to make
// every bench drop <dir>/<stem>.csv and <dir>/<stem>.json next to its
// console output. parse_csv/parse_json invert the two writers exactly
// (tests/engine_test.cc round-trips them).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/table.h"

namespace mbs::engine {

class ResultSink {
 public:
  ResultSink(std::string title, std::vector<std::string> headers);

  /// Appends a row; padded/truncated to the header width by util::Table.
  void add_row(std::vector<std::string> cells);

  const std::string& title() const { return title_; }
  const util::Table& table() const { return table_; }
  std::size_t row_count() const { return table_.row_count(); }

  /// Console rendering: "--- title ---" followed by the aligned table.
  void print(std::ostream& os) const;

  /// CSV: header row then data rows; cells containing a comma, quote or
  /// newline are double-quoted with embedded quotes doubled.
  void write_csv(std::ostream& os) const;

  /// JSON: {"title": ..., "headers": [...], "rows": [[...], ...]} with all
  /// cells as strings.
  void write_json(std::ostream& os) const;

  /// When the MBS_RESULT_DIR environment variable is set, writes
  /// <dir>/<stem><suffix>.csv and <dir>/<stem><suffix>.json, where the
  /// suffix is the process-wide shard infix (empty by default). Returns
  /// true if files were written.
  bool export_files(const std::string& stem) const;

  /// Sets the process-wide export infix — the active shard's
  /// ".shard<i>of<N>" — so every sink of a sharded run names its files
  /// after its shard. Called once by engine::Driver.
  static void set_export_suffix(std::string suffix);

  /// Contents recovered from an emitted document.
  struct Parsed {
    std::string title;  ///< empty for CSV (the format carries no title)
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  /// Inverse of write_csv. Aborts on malformed input (tooling use).
  static Parsed parse_csv(const std::string& text);
  /// Inverse of write_json (accepts exactly the subset write_json emits).
  static Parsed parse_json(const std::string& text);

  /// Reassembles a sharded run's documents, in shard order: unsharded row j
  /// lives in shard j % N at position j / N, so the merge interleaves the
  /// inputs round-robin. Headers (and titles, where present) must agree
  /// across shards; aborts on inconsistent inputs. Re-serializing the
  /// result through a ResultSink reproduces the unsharded document byte for
  /// byte (tools/merge_results.cc).
  static Parsed merge_shards(const std::vector<Parsed>& shards);

 private:
  std::string title_;
  util::Table table_;
};

}  // namespace mbs::engine
