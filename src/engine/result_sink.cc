#include "engine/result_sink.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/fault.h"

namespace mbs::engine {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_row(std::ostream& os, const std::vector<std::string>& row) {
  os << '[';
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ',';
    write_json_string(os, row[i]);
  }
  os << ']';
}

[[noreturn]] void parse_fail(const char* what) {
  std::fprintf(stderr, "ResultSink parse error: %s\n", what);
  std::abort();
}

/// Splits one CSV line (RFC-4180 quoting) into cells; advances `pos` past
/// the terminating newline. Returns false at end of input.
bool next_csv_row(const std::string& text, std::size_t& pos,
                  std::vector<std::string>& out) {
  out.clear();
  if (pos >= text.size()) return false;
  std::string cell;
  bool quoted = false;
  for (;;) {
    if (pos >= text.size()) {
      if (quoted) parse_fail("unterminated quoted CSV cell");
      out.push_back(std::move(cell));
      return true;
    }
    const char c = text[pos++];
    if (quoted) {
      if (c == '"') {
        if (pos < text.size() && text[pos] == '"') {
          cell.push_back('"');
          ++pos;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      out.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      out.push_back(std::move(cell));
      return true;
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
}

/// Minimal JSON reader for the subset write_json emits.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      parse_fail("unexpected character in JSON");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) parse_fail("unterminated JSON string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) parse_fail("truncated JSON escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) parse_fail("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out.push_back(static_cast<char>(
                std::strtol(hex.c_str(), nullptr, 16)));
            break;
          }
          default: parse_fail("unsupported JSON escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  std::vector<std::string> string_array() {
    std::vector<std::string> out;
    expect('[');
    if (consume(']')) return out;
    do {
      out.push_back(string());
    } while (consume(','));
    expect(']');
    return out;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

ResultSink::ResultSink(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), table_(std::move(headers)) {}

void ResultSink::add_row(std::vector<std::string> cells) {
  table_.add_row(std::move(cells));
}

void ResultSink::print(std::ostream& os) const {
  if (!title_.empty()) os << "--- " << title_ << " ---\n";
  table_.print(os);
}

void ResultSink::write_csv(std::ostream& os) const {
  table_.print_csv(os);  // RFC-4180 quoting lives on util::Table
}

void ResultSink::write_json(std::ostream& os) const {
  os << "{\"title\":";
  write_json_string(os, title_);
  os << ",\"headers\":";
  write_json_row(os, table_.headers());
  os << ",\"rows\":[";
  const auto& rows = table_.rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) os << ',';
    write_json_row(os, rows[i]);
  }
  os << "]}\n";
}

namespace {
std::string& export_suffix() {
  static std::string suffix;
  return suffix;
}
}  // namespace

void ResultSink::set_export_suffix(std::string suffix) {
  export_suffix() = std::move(suffix);
}

bool ResultSink::export_files(const std::string& stem) const {
  const char* dir = std::getenv("MBS_RESULT_DIR");
  if (!dir || !*dir) return false;
  const std::string base = std::string(dir) + "/" + stem + export_suffix();
  // Atomic writes (tmp + rename via util::fs): a crash or injected fault
  // mid-export can never leave a half-written file where a merge or a
  // byte-identity check would read it.
  std::ostringstream csv;
  write_csv(csv);
  if (!util::fs::write_atomic(base + ".csv", csv.str(),
                              "sink.export.write")) {
    std::fprintf(stderr, "ResultSink: cannot write %s.csv (MBS_RESULT_DIR)\n",
                 base.c_str());
    return false;
  }
  std::ostringstream json;
  write_json(json);
  if (!util::fs::write_atomic(base + ".json", json.str(),
                              "sink.export.write")) {
    std::fprintf(stderr, "ResultSink: cannot write %s.json (MBS_RESULT_DIR)\n",
                 base.c_str());
    return false;
  }
  return true;
}

ResultSink::Parsed ResultSink::parse_csv(const std::string& text) {
  Parsed out;
  std::size_t pos = 0;
  std::vector<std::string> row;
  if (!next_csv_row(text, pos, row)) parse_fail("empty CSV document");
  out.headers = row;
  while (next_csv_row(text, pos, row)) out.rows.push_back(row);
  return out;
}

ResultSink::Parsed ResultSink::merge_shards(const std::vector<Parsed>& shards) {
  if (shards.empty()) parse_fail("merge_shards: no shard documents");
  Parsed out;
  out.headers = shards[0].headers;
  std::size_t total = 0;
  for (const Parsed& shard : shards) {
    if (shard.headers != out.headers)
      parse_fail("merge_shards: shard headers disagree");
    // CSV carries no title; take the first non-empty one and require the
    // rest to match it.
    if (!shard.title.empty()) {
      if (out.title.empty())
        out.title = shard.title;
      else if (shard.title != out.title)
        parse_fail("merge_shards: shard titles disagree");
    }
    total += shard.rows.size();
  }
  const std::size_t n = shards.size();
  out.rows.reserve(total);
  for (std::size_t j = 0; j < total; ++j) {
    const Parsed& shard = shards[j % n];
    const std::size_t r = j / n;
    if (r >= shard.rows.size())
      parse_fail("merge_shards: shard row counts are not round-robin "
                 "consistent (were all shards run with the same grid?)");
    out.rows.push_back(shard.rows[r]);
  }
  return out;
}

ResultSink::Parsed ResultSink::parse_json(const std::string& text) {
  Parsed out;
  JsonReader r(text);
  r.expect('{');
  if (r.string() != "title") parse_fail("expected \"title\" key");
  r.expect(':');
  out.title = r.string();
  r.expect(',');
  if (r.string() != "headers") parse_fail("expected \"headers\" key");
  r.expect(':');
  out.headers = r.string_array();
  r.expect(',');
  if (r.string() != "rows") parse_fail("expected \"rows\" key");
  r.expect(':');
  r.expect('[');
  if (!r.consume(']')) {
    do {
      out.rows.push_back(r.string_array());
    } while (r.consume(','));
    r.expect(']');
  }
  r.expect('}');
  return out;
}

}  // namespace mbs::engine
