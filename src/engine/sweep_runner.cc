#include "engine/sweep_runner.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace mbs::engine {

std::string ShardPlan::suffix() const {
  if (!active()) return "";
  return ".shard" + std::to_string(index) + "of" + std::to_string(count);
}

ShardPlan ShardPlan::parse(const std::string& spec) {
  ShardPlan plan;
  char extra = 0;
  if (std::sscanf(spec.c_str(), "%d/%d%c", &plan.index, &plan.count, &extra) !=
          2 ||
      plan.count < 1 || plan.index < 0 || plan.index >= plan.count) {
    std::fprintf(stderr,
                 "bad shard spec '%s': expected i/N with 0 <= i < N\n",
                 spec.c_str());
    std::abort();
  }
  return plan;
}

ShardPlan ShardPlan::from_env() {
  const char* spec = std::getenv("MBS_SHARD");
  if (!spec || !*spec) return {};
  return parse(spec);
}

SweepResults::SweepResults(std::vector<Scenario> grid, Evaluator& eval)
    : grid_(std::move(grid)),
      eval_(&eval),
      slots_(grid_.size()),
      mu_(std::make_unique<std::mutex>()) {}

const ScenarioResult& SweepResults::operator[](std::size_t i) const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::unique_ptr<ScenarioResult>& slot = slots_[i];
  if (!slot)
    slot = std::make_unique<ScenarioResult>(evaluate_scenario(grid_[i], *eval_));
  return *slot;
}

ScenarioResult evaluate_scenario(const Scenario& s, Evaluator& eval) {
  ScenarioResult r;
  r.scenario = s;
  r.network = &eval.network(s.network);
  if (s.device == Device::kGpu) {
    r.gpu = eval.gpu_step(s);
    r.step.time_s = r.gpu.time_s;
    r.step.dram_bytes = r.gpu.dram_bytes;
    r.step.compute_time_s = r.gpu.compute_time_s;
    r.step.memory_time_s = r.gpu.memory_time_s;
  } else {
    if (s.stage >= Stage::kSchedule) r.schedule = &eval.schedule(s);
    if (s.stage >= Stage::kTraffic) r.traffic = &eval.traffic(s);
    if (s.stage >= Stage::kSimulate) r.step = eval.step(s);
  }
  return r;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {}

int SweepRunner::thread_count(int n) const {
  // Unset options fall back to the process-wide budget shared with the
  // kernel pool (MBS_THREADS / util::set_thread_budget).
  int t = opts_.threads;
  if (t <= 0) t = util::thread_budget();
  if (t > n) t = n;
  return t < 1 ? 1 : t;
}

void SweepRunner::for_each_index(int n, const std::function<void(int)>& fn) const {
  if (n <= 0) return;
  const int threads = thread_count(n);
  if (threads == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    // The sweep already consumes the thread budget, so kernels the jobs
    // reach (the training substrate's parallel_for) run inline here —
    // threaded sweeps of training scenarios never oversubscribe.
    util::ParallelRegionGuard nested_kernels_run_inline;
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

std::vector<ScenarioResult> SweepRunner::run(
    const std::vector<Scenario>& scenarios, Evaluator& eval) const {
  std::vector<ScenarioResult> out(scenarios.size());
  for_each_index(static_cast<int>(scenarios.size()), [&](int i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    out[idx] = evaluate_scenario(scenarios[idx], eval);
  });
  return out;
}

SweepResults SweepRunner::run_sharded(
    const std::vector<Scenario>& scenarios, Evaluator& eval,
    const std::function<bool(std::size_t)>& needed) const {
  SweepResults results(scenarios, eval);
  std::vector<std::size_t> owned;
  owned.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (needed(i)) owned.push_back(i);
  // Distinct slots per index: the pool fills them without the access lock.
  for_each_index(static_cast<int>(owned.size()), [&](int k) {
    const std::size_t idx = owned[static_cast<std::size_t>(k)];
    results.slots_[idx] = std::make_unique<ScenarioResult>(
        evaluate_scenario(scenarios[idx], eval));
  });
  return results;
}

SweepResults SweepRunner::run_sharded(const std::vector<Scenario>& scenarios,
                                      Evaluator& eval,
                                      const ShardPlan& plan) const {
  return run_sharded(scenarios, eval,
                     [&plan](std::size_t i) { return plan.owns(i); });
}

}  // namespace mbs::engine
