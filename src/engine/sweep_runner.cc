#include "engine/sweep_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mbs::engine {

ScenarioResult evaluate_scenario(const Scenario& s, Evaluator& eval) {
  ScenarioResult r;
  r.scenario = s;
  r.network = &eval.network(s.network);
  if (s.device == Device::kGpu) {
    r.gpu = eval.gpu_step(s);
    r.step.time_s = r.gpu.time_s;
    r.step.dram_bytes = r.gpu.dram_bytes;
    r.step.compute_time_s = r.gpu.compute_time_s;
    r.step.memory_time_s = r.gpu.memory_time_s;
  } else {
    if (s.stage >= Stage::kSchedule) r.schedule = &eval.schedule(s);
    if (s.stage >= Stage::kTraffic) r.traffic = &eval.traffic(s);
    if (s.stage >= Stage::kSimulate) r.step = eval.step(s);
  }
  return r;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {}

int SweepRunner::thread_count(int n) const {
  int t = opts_.threads;
  if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
  if (t <= 0) t = 1;
  if (t > n) t = n;
  return t < 1 ? 1 : t;
}

void SweepRunner::for_each_index(int n, const std::function<void(int)>& fn) const {
  if (n <= 0) return;
  const int threads = thread_count(n);
  if (threads == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

std::vector<ScenarioResult> SweepRunner::run(
    const std::vector<Scenario>& scenarios, Evaluator& eval) const {
  std::vector<ScenarioResult> out(scenarios.size());
  for_each_index(static_cast<int>(scenarios.size()), [&](int i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    out[idx] = evaluate_scenario(scenarios[idx], eval);
  });
  return out;
}

}  // namespace mbs::engine
