#include "engine/sweep_runner.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/cache_store.h"
#include "engine/spool.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/fnv.h"
#include "util/parallel.h"

namespace mbs::engine {

std::string ShardPlan::suffix() const {
  if (!active()) return "";
  return ".shard" + std::to_string(index) + "of" + std::to_string(count);
}

ShardPlan ShardPlan::parse(const std::string& spec) {
  ShardPlan plan;
  char extra = 0;
  if (std::sscanf(spec.c_str(), "%d/%d%c", &plan.index, &plan.count, &extra) !=
          2 ||
      plan.count < 1 || plan.index < 0 || plan.index >= plan.count) {
    std::fprintf(stderr,
                 "bad shard spec '%s': expected i/N with 0 <= i < N\n",
                 spec.c_str());
    std::abort();
  }
  return plan;
}

ShardPlan ShardPlan::from_env() {
  const char* spec = std::getenv("MBS_SHARD");
  if (!spec || !*spec) return {};
  return parse(spec);
}

SweepResults::SweepResults(std::vector<Scenario> grid, Evaluator& eval)
    : grid_(std::move(grid)),
      eval_(&eval),
      slots_(grid_.size()),
      mu_(std::make_unique<std::mutex>()) {}

const ScenarioResult& SweepResults::operator[](std::size_t i) const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::unique_ptr<ScenarioResult>& slot = slots_[i];
  if (!slot)
    slot = std::make_unique<ScenarioResult>(evaluate_scenario(grid_[i], *eval_));
  return *slot;
}

namespace {

/// The kSimulate-depth work of a scheduled (non-GPU) scenario: runs the
/// device-specific step model and maps its metrics into `r.step` so mixed
/// sweeps tabulate uniformly. Shared by the serial path and the grouped
/// phase-2 fan-out so both produce identical entries.
void simulate_into(ScenarioResult& r, const Scenario& s, Evaluator& eval) {
  if (s.device == Device::kSystolic) {
    r.systolic = eval.systolic_step(s);
    r.step.time_s = r.systolic.time_s;
    r.step.dram_bytes = r.systolic.dram_bytes;
    r.step.total_macs = r.systolic.total_macs;
    r.step.systolic_utilization = r.systolic.stats.util;
    r.step.compute_time_s = r.systolic.compute_time_s;
    r.step.memory_time_s = r.systolic.stall_time_s;
  } else {
    r.step = eval.step(s);
  }
}

}  // namespace

ScenarioResult evaluate_scenario(const Scenario& s, Evaluator& eval) {
  ScenarioResult r;
  r.scenario = s;
  r.network = &eval.network(s);
  if (s.device == Device::kGpu) {
    r.gpu = eval.gpu_step(s);
    r.step.time_s = r.gpu.time_s;
    r.step.dram_bytes = r.gpu.dram_bytes;
    r.step.compute_time_s = r.gpu.compute_time_s;
    r.step.memory_time_s = r.gpu.memory_time_s;
  } else {
    if (s.stage >= Stage::kSchedule) r.schedule = &eval.schedule(s);
    if (s.stage >= Stage::kTraffic) r.traffic = &eval.traffic(s);
    if (s.stage >= Stage::kSimulate) simulate_into(r, s, eval);
  }
  return r;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {}

int SweepRunner::thread_count(int n) const {
  // Unset options fall back to the process-wide budget shared with the
  // kernel pool (MBS_THREADS / util::set_thread_budget).
  int t = opts_.threads;
  if (t <= 0) t = util::thread_budget();
  if (t > n) t = n;
  return t < 1 ? 1 : t;
}

void SweepRunner::for_each_index(int n, const std::function<void(int)>& fn) const {
  if (n <= 0) return;
  const int threads = thread_count(n);
  if (threads == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&] {
    // The sweep already consumes the thread budget, so kernels the jobs
    // reach (the training substrate's parallel_for) run inline here —
    // threaded sweeps of training scenarios never oversubscribe.
    util::ParallelRegionGuard nested_kernels_run_inline;
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

void SweepRunner::evaluate_indices(const std::vector<Scenario>& scenarios,
                                   Evaluator& eval,
                                   const std::vector<std::size_t>& indices,
                                   ScenarioResult* out) const {
  if (!opts_.group_by_schedule) {
    for_each_index(static_cast<int>(indices.size()), [&](int k) {
      out[k] = evaluate_scenario(scenarios[indices[static_cast<std::size_t>(k)]],
                                 eval);
    });
    return;
  }

  // Group the scenarios that run the scheduler (WaveCore and the cycle
  // backend both do) by schedule cache key; GPU and network-only scenarios
  // stay ungrouped (they share no schedule-stage work).
  struct Group {
    std::size_t repr;  ///< first member, in input order
    Stage deepest;     ///< deepest stage any member needs
  };
  std::vector<Group> groups;
  std::unordered_map<std::string, std::size_t> group_by_key;
  std::vector<std::int64_t> group_of(indices.size(), -1);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const Scenario& s = scenarios[indices[k]];
    if (s.device == Device::kGpu || s.stage < Stage::kSchedule) continue;
    const auto [it, inserted] =
        group_by_key.emplace(s.schedule_key(), groups.size());
    if (inserted)
      groups.push_back(Group{indices[k], s.stage});
    else if (groups[it->second].deepest < s.stage)
      groups[it->second].deepest = s.stage;
    group_of[k] = static_cast<std::int64_t>(it->second);
  }

  // Phase 1: one worker unit per schedule group — the shared schedule (and
  // traffic, when any member runs that deep) is computed exactly once, and
  // no phase-2 worker ever blocks on another's in-flight schedule.
  struct SharedStages {
    const sched::Schedule* schedule = nullptr;
    const sched::Traffic* traffic = nullptr;
  };
  std::vector<SharedStages> shared(groups.size());
  for_each_index(static_cast<int>(groups.size()), [&](int gi) {
    const Group& g = groups[static_cast<std::size_t>(gi)];
    const Scenario& rep = scenarios[g.repr];
    SharedStages& sh = shared[static_cast<std::size_t>(gi)];
    sh.schedule = &eval.schedule(rep);
    if (g.deepest >= Stage::kTraffic) sh.traffic = &eval.traffic(rep);
  });

  // Phase 2: per-scenario work (device-specific simulation) fans out with
  // the group's shared stage results. The pointers are the very objects
  // evaluate_scenario would fetch from the evaluator, so grouped results
  // are identical to ungrouped ones — including for members shallower
  // than the group's deepest stage, which keep their own stage cut-off.
  for_each_index(static_cast<int>(indices.size()), [&](int k) {
    const Scenario& s = scenarios[indices[static_cast<std::size_t>(k)]];
    if (group_of[static_cast<std::size_t>(k)] < 0) {
      out[k] = evaluate_scenario(s, eval);
      return;
    }
    const SharedStages& sh = shared[static_cast<std::size_t>(
        group_of[static_cast<std::size_t>(k)])];
    ScenarioResult r;
    r.scenario = s;
    r.network = &eval.network(s);
    if (s.stage >= Stage::kSchedule) r.schedule = sh.schedule;
    if (s.stage >= Stage::kTraffic) r.traffic = sh.traffic;
    if (s.stage >= Stage::kSimulate) simulate_into(r, s, eval);
    out[k] = std::move(r);
  });
}

void SweepRunner::drain_spool(const std::vector<Scenario>& scenarios,
                              Evaluator& eval) const {
  if (opts_.spool_dir.empty() || scenarios.empty()) return;

  // Work units mirror evaluate_indices' batching: scenarios that run the
  // scheduler group by schedule cache key (one claim computes the shared
  // schedule/traffic once); GPU and network-only scenarios are singleton
  // units keyed by their full cache key. Every worker derives the same
  // unit list from the same grid, in first-occurrence order.
  std::vector<std::vector<std::size_t>> units;
  std::unordered_map<std::string, std::size_t> unit_by_key;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    const bool grouped =
        s.device != Device::kGpu && s.stage >= Stage::kSchedule;
    const std::string key =
        grouped ? "g:" + s.schedule_key() : "s:" + s.cache_key();
    const auto [it, inserted] = unit_by_key.emplace(key, units.size());
    if (inserted) units.emplace_back();
    units[it->second].push_back(i);
  }

  // Fingerprint the unit structure so two workers can only meet in one
  // queue when they drain the same grid. Stage depth matters (a deeper
  // stage evaluates more), so it joins each member's cache key.
  std::string fp_src;
  for (const std::vector<std::size_t>& unit : units) {
    for (std::size_t i : unit) {
      fp_src += scenarios[i].cache_key();
      fp_src += '|';
      fp_src += std::to_string(static_cast<int>(scenarios[i].stage));
      fp_src += '\n';
    }
    fp_src += ";\n";
  }
  const std::uint64_t fp = util::fnv1a64(fp_src);
  char fp_hex[17];
  std::snprintf(fp_hex, sizeof fp_hex, "%016llx",
                static_cast<unsigned long long>(fp));
  // Per-grid subdirectory: benches that sweep several grids (or several
  // binaries pointed at one spool root) get disjoint queues.
  SpoolQueue queue(opts_.spool_dir + "/" + fp_hex, fp, units.size());
  queue.init();

  CacheStore* store = eval.store();
  if (!store)
    std::fprintf(stderr,
                 "SweepRunner: spool drain without a cache store shares no "
                 "results between workers (set MBS_CACHE_DIR)\n");

  const long timeout_ms =
      util::env_int("MBS_SPOOL_TIMEOUT_MS", 60000, 0, 86400000);
  const long lease_ms =
      util::env_int("MBS_SPOOL_LEASE_MS", 60000, 100, 86400000);

  auto last_progress = std::chrono::steady_clock::now();
  std::size_t last_done = queue.done_count();
  for (;;) {
    const int u = queue.claim();
    if (u >= 0) {
      // Crash injection for the recovery tests (MBS_FAULTS=
      // spool.unit.start:crash@N): abandon the Nth claimed unit by exiting
      // hard, leaving a claim file owned by a dead pid.
      util::fault_point("spool.unit.start");
      const std::vector<std::size_t>& members =
          units[static_cast<std::size_t>(u)];
      // Heartbeat: refresh the claim's lease while the unit evaluates, so
      // a unit that legitimately takes longer than MBS_SPOOL_LEASE_MS is
      // not reclaimed out from under us by a cross-host peer.
      std::atomic<bool> evaluating{true};
      std::thread heartbeat([&queue, &evaluating, u, lease_ms] {
        const auto interval =
            std::chrono::milliseconds(std::max(lease_ms / 3, 50L));
        auto next = std::chrono::steady_clock::now() + interval;
        while (evaluating.load(std::memory_order_acquire)) {
          if (std::chrono::steady_clock::now() >= next) {
            queue.refresh_claim(u);
            next = std::chrono::steady_clock::now() + interval;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      });
      std::vector<ScenarioResult> scratch(members.size());
      evaluate_indices(scenarios, eval, members, scratch.data());
      // Flush per unit so peers (and a successor after a crash) see the
      // results immediately; the store write is incremental.
      if (store) store->save();
      evaluating.store(false, std::memory_order_release);
      heartbeat.join();
      queue.mark_done(u);
      last_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (queue.all_done()) break;
    // Nothing claimable: live peers hold the rest. Wait so the
    // materialization below starts warm from their results; on stall
    // (peer wedged, store unwritable) give up waiting — the eager pass
    // recomputes locally and the output bytes are unaffected.
    const std::size_t done = queue.done_count();
    if (done != last_done) {
      last_done = done;
      last_progress = std::chrono::steady_clock::now();
    } else if (std::chrono::steady_clock::now() - last_progress >
               std::chrono::milliseconds(timeout_ms)) {
      std::fprintf(stderr,
                   "SweepRunner: spool %s stalled (%zu/%zu units done after "
                   "%ld ms without progress); continuing without waiting\n",
                   queue.dir().c_str(), done, queue.unit_count(), timeout_ms);
      break;
    }
    ::usleep(20 * 1000);
  }
}

std::vector<ScenarioResult> SweepRunner::run(
    const std::vector<Scenario>& scenarios, Evaluator& eval) const {
  drain_spool(scenarios, eval);
  std::vector<ScenarioResult> out(scenarios.size());
  std::vector<std::size_t> all(scenarios.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  evaluate_indices(scenarios, eval, all, out.data());
  return out;
}

SweepResults SweepRunner::run_sharded(
    const std::vector<Scenario>& scenarios, Evaluator& eval,
    const std::function<bool(std::size_t)>& needed) const {
  drain_spool(scenarios, eval);
  SweepResults results(scenarios, eval);
  std::vector<std::size_t> owned;
  owned.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i)
    if (needed(i)) owned.push_back(i);
  // Distinct slots per index: the pool fills them without the access lock.
  std::vector<ScenarioResult> evaluated(owned.size());
  evaluate_indices(scenarios, eval, owned, evaluated.data());
  for (std::size_t k = 0; k < owned.size(); ++k)
    results.slots_[owned[k]] =
        std::make_unique<ScenarioResult>(std::move(evaluated[k]));
  return results;
}

SweepResults SweepRunner::run_sharded(const std::vector<Scenario>& scenarios,
                                      Evaluator& eval,
                                      const ShardPlan& plan) const {
  return run_sharded(scenarios, eval,
                     [&plan](std::size_t i) { return plan.owns(i); });
}

}  // namespace mbs::engine
