#include "engine/driver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "train/gemm_microkernels.h"
#include "util/env.h"
#include "util/parallel.h"

namespace mbs::engine {

namespace {

/// Value of `--<name>=...` when `arg` is that flag, nullptr otherwise.
const char* flag_value(const char* arg, const char* name) {
  std::string_view view(arg);
  const std::string prefix = std::string("--") + name + "=";
  if (view.substr(0, prefix.size()) != prefix) return nullptr;
  return arg + prefix.size();
}

int parse_int_flag(const char* value, const char* name) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "bad --%s value '%s': expected an integer\n", name,
                 value);
    std::abort();
  }
  return static_cast<int>(v);
}

void print_stage(const char* name, std::int64_t misses, std::int64_t disk) {
  std::fprintf(stderr, " %s %lld/%lld", name,
               static_cast<long long>(misses - disk),
               static_cast<long long>(disk));
}

}  // namespace

Driver::Driver(int argc, char** argv) {
  int shard_index = -1, shard_count = -1;
  SweepOptions sweep;
  std::string cache_dir;
  bool have_shard_flag = false;

  sweep.threads = static_cast<int>(
      util::env_int("MBS_THREADS", sweep.threads, 0, 65536));
  // Schedule-group batching is on by default; MBS_NO_SCHEDULE_GROUPS=1 is
  // the A/B escape hatch (output is byte-identical either way).
  if (const char* env = std::getenv("MBS_NO_SCHEDULE_GROUPS");
      env && *env && std::strcmp(env, "0") != 0)
    sweep.group_by_schedule = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = flag_value(arg, "shard")) {
      shard_ = ShardPlan::parse(v);
      have_shard_flag = true;
    } else if (const char* v2 = flag_value(arg, "shard-index")) {
      shard_index = parse_int_flag(v2, "shard-index");
    } else if (const char* v3 = flag_value(arg, "shard-count")) {
      shard_count = parse_int_flag(v3, "shard-count");
    } else if (const char* v4 = flag_value(arg, "threads")) {
      sweep.threads = parse_int_flag(v4, "threads");
    } else if (const char* v5 = flag_value(arg, "cache-dir")) {
      cache_dir = v5;
    } else if (const char* v6 = flag_value(arg, "spool-dir")) {
      sweep.spool_dir = v6;
    } else if (arg[0] == '-' && arg[1] == '-') {
      // A typo'd engine flag silently falling through to args() would make
      // the run quietly ignore what the user asked for.
      std::fprintf(stderr,
                   "unknown flag '%s' (expected --shard=I/N, --shard-index=I, "
                   "--shard-count=N, --threads=T, --cache-dir=DIR, or "
                   "--spool-dir=DIR)\n",
                   arg);
      std::abort();
    } else {
      args_.emplace_back(arg);
    }
  }

  if (shard_index >= 0 || shard_count >= 0) {
    if (shard_index < 0 || shard_count < 1 || shard_index >= shard_count) {
      std::fprintf(stderr,
                   "--shard-index=%d --shard-count=%d: need both, with "
                   "0 <= index < count\n",
                   shard_index, shard_count);
      std::abort();
    }
    shard_ = ShardPlan{shard_index, shard_count};
    have_shard_flag = true;
  }
  if (!have_shard_flag) shard_ = ShardPlan::from_env();

  if (sweep.spool_dir.empty())
    if (const char* env = std::getenv("MBS_SPOOL_DIR"); env && *env)
      sweep.spool_dir = env;

  if (!cache_dir.empty())
    store_ = std::make_unique<CacheStore>(cache_dir + "/evaluator.mbscache");
  else
    store_ = CacheStore::from_env();
  // A spool without a store would share no results between workers;
  // default the store into the spool directory so the drain composes out
  // of the box (an explicit --cache-dir/MBS_CACHE_DIR still wins).
  if (!store_ && !sweep.spool_dir.empty())
    store_ = std::make_unique<CacheStore>(sweep.spool_dir +
                                          "/cache/evaluator.mbscache");

  eval_ = std::make_unique<Evaluator>(store_.get());
  // One budget for both layers: the sweep pool and the kernel pool draw
  // from the same --threads/MBS_THREADS value (nested kernel use inside
  // sweep workers runs inline, see util/parallel.h).
  util::set_thread_budget(sweep.threads);
  runner_ = SweepRunner(sweep);
  ResultSink::set_export_suffix(shard_.suffix());
}

Driver::~Driver() {
  if (store_ && !store_->save())
    // The run's numbers are unaffected (the store is a cache), but the
    // next run will silently start cold for the lost entries — say so.
    std::fprintf(stderr,
                 "[mbs-engine] WARNING: cache-store save to %s failed "
                 "(%zu entry write failures); the next run starts cold "
                 "for those entries\n",
                 store_->path().c_str(), store_->save_failures());
  const char* stats_env = std::getenv("MBS_ENGINE_STATS");
  if (!stats_env || std::strcmp(stats_env, "1") != 0) return;
  const EvaluatorStats s = eval_->stats();
  std::fprintf(stderr, "[mbs-engine] computed/disk:");
  print_stage("net", s.network_misses, s.network_disk_hits);
  print_stage("sched", s.schedule_misses, s.schedule_disk_hits);
  print_stage("traffic", s.traffic_misses, s.traffic_disk_hits);
  print_stage("step", s.step_misses, s.step_disk_hits);
  print_stage("gpu", s.gpu_misses, s.gpu_disk_hits);
  print_stage("sys", s.systolic_misses, s.systolic_disk_hits);
  std::fprintf(stderr, "\n");
  if (store_)
    std::fprintf(stderr,
                 "[mbs-engine] cache-store %s: %zu loaded, %zu entries, "
                 "%zu save-failures\n",
                 store_->path().c_str(), store_->loaded_entries(),
                 store_->entry_count(), store_->save_failures());

  // Kernel-time breakdown (outermost timers only, so the kinds sum to
  // total time spent in the training kernel layer).
  bool any_kernel = false;
  for (int k = 0; k < static_cast<int>(util::KernelKind::kCount); ++k)
    if (util::kernel_stat(static_cast<util::KernelKind>(k)).calls > 0)
      any_kernel = true;
  if (any_kernel) {
    std::fprintf(stderr, "[mbs-engine] kernels (threads=%d, gemm-isa=%s):",
                 util::thread_budget(),
                 util::to_string(train::active_gemm_isa()));
    for (int k = 0; k < static_cast<int>(util::KernelKind::kCount); ++k) {
      const util::KernelStat s =
          util::kernel_stat(static_cast<util::KernelKind>(k));
      if (s.calls == 0) continue;
      std::fprintf(stderr, " %s %.3fs/%lld",
                   util::to_string(static_cast<util::KernelKind>(k)),
                   s.seconds, static_cast<long long>(s.calls));
      // Kinds whose entry points note FLOPs (the GEMM family, and convs
      // via their internal GEMMs) also report achieved GFLOP/s.
      if (s.flops > 0 && s.seconds > 0)
        std::fprintf(stderr, "(%.1fGF/s)",
                     static_cast<double>(s.flops) * 1e-9 / s.seconds);
    }
    std::fprintf(stderr, "\n");
  }
}

SweepResults Driver::run(const std::vector<Scenario>& grid) {
  return runner_.run_sharded(grid, *eval_, shard_);
}

SweepResults Driver::run(const std::vector<Scenario>& grid,
                         const std::function<bool(std::size_t)>& needed) {
  return runner_.run_sharded(grid, *eval_, needed);
}

}  // namespace mbs::engine
