// Umbrella header for the parallel experiment engine: Scenario descriptors,
// the memoizing Evaluator, the threaded SweepRunner, and the ResultSink.
// Every bench/ and examples/ binary drives its sweep through these four.
#pragma once

#include "engine/evaluator.h"
#include "engine/result_sink.h"
#include "engine/scenario.h"
#include "engine/sweep_runner.h"
