// Umbrella header for the parallel experiment engine: Scenario descriptors,
// the memoizing Evaluator with its disk-persistent CacheStore, the threaded
// (and process-shardable) SweepRunner, the ResultSink, and the shared
// command-line Driver. Every bench/ and examples/ binary drives its sweep
// through these.
#pragma once

#include "engine/cache_store.h"
#include "engine/driver.h"
#include "engine/evaluator.h"
#include "engine/result_sink.h"
#include "engine/scenario.h"
#include "engine/sweep_runner.h"
