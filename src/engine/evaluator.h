// Evaluator: memoized Scenario -> network -> schedule -> result pipeline.
//
// The paper's sweeps share almost all intermediate work: Fig. 10 builds
// each of the six networks once but schedules it six times; Fig. 11
// schedules ResNet50 twenty times but builds it once; Fig. 13 reuses one
// MBS2 schedule across four memory systems. The Evaluator caches each
// pipeline stage under the Scenario's stage key so shared work is computed
// exactly once — including across SweepRunner threads, where concurrent
// requests for the same key block on a per-entry std::once_flag while
// distinct keys proceed in parallel.
//
// All cached objects are immutable once constructed; references returned
// by the accessors stay valid for the Evaluator's lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "arch/gpu.h"
#include "core/network.h"
#include "engine/scenario.h"
#include "sched/schedule.h"
#include "sched/traffic.h"
#include "sim/simulator.h"

namespace mbs::engine {

class CacheStore;

/// Cache hit/miss counters, one set per pipeline stage. A miss consults the
/// disk store (when one is attached) before computing: `*_disk_hits` counts
/// misses satisfied from disk, so `misses - disk_hits` is the number of
/// actual computations.
struct EvaluatorStats {
  std::int64_t network_hits = 0, network_misses = 0, network_disk_hits = 0;
  std::int64_t schedule_hits = 0, schedule_misses = 0, schedule_disk_hits = 0;
  std::int64_t traffic_hits = 0, traffic_misses = 0, traffic_disk_hits = 0;
  std::int64_t step_hits = 0, step_misses = 0, step_disk_hits = 0;
  std::int64_t gpu_hits = 0, gpu_misses = 0, gpu_disk_hits = 0;
  std::int64_t systolic_hits = 0, systolic_misses = 0, systolic_disk_hits = 0;
};

namespace detail {

/// String-keyed cache of immutable values with exactly-once construction.
/// Entries are heap-allocated so references stay stable across rehashes.
template <typename T>
class KeyedCache {
 public:
  /// Returns the cached value for `key`, constructing it with `fn()` on
  /// first use. Concurrent callers with the same key wait for the single
  /// construction; callers with different keys do not serialize against
  /// each other (the map mutex is only held for the lookup).
  template <typename Fn>
  const T& get_or_compute(const std::string& key, Fn&& fn, bool* was_hit) {
    Entry* entry = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::unique_ptr<Entry>& slot = map_[key];
      if (slot) {
        *was_hit = true;
      } else {
        slot = std::make_unique<Entry>();
        *was_hit = false;
      }
      entry = slot.get();
    }
    std::call_once(entry->once, [&] { entry->value = fn(); });
    return entry->value;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Entry {
    std::once_flag once;
    T value;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> map_;
};

}  // namespace detail

class Evaluator {
 public:
  /// With a store, in-memory misses are first looked up on disk, and fresh
  /// computations are recorded for the store's next save(). The store (when
  /// non-null) must outlive the Evaluator; passing nullptr keeps the
  /// evaluator purely in-memory.
  explicit Evaluator(CacheStore* store = nullptr) : store_(store) {}

  /// models::make_network, memoized by name.
  const core::Network& network(const std::string& name);

  /// models::make_network with the scenario's sequence-length override,
  /// memoized by Scenario::network_key() (identical to the name-keyed
  /// overload when seq == 0, so default scenarios share its entries).
  const core::Network& network(const Scenario& s);

  /// sched::build_schedule for the scenario's (network, config, params),
  /// memoized by Scenario::schedule_key().
  const sched::Schedule& schedule(const Scenario& s);

  /// sched::compute_traffic for the scenario's schedule, memoized by
  /// Scenario::schedule_key() (traffic does not depend on hw).
  const sched::Traffic& traffic(const Scenario& s);

  /// sim::simulate_step for the full scenario, memoized by
  /// Scenario::cache_key(). Requires device == kWaveCore.
  const sim::StepResult& step(const Scenario& s);

  /// arch::simulate_gpu_step for kGpu scenarios, memoized by
  /// Scenario::cache_key().
  const arch::GpuStepResult& gpu_step(const Scenario& s);

  /// arch::simulate_systolic_step for kSystolic scenarios, memoized by
  /// Scenario::cache_key() (which carries the `dev=systolic` tag plus the
  /// dataflow/scratchpad fields on top of the WaveCore hardware point).
  const arch::SystolicStepResult& systolic_step(const Scenario& s);

  /// Snapshot of the hit/miss counters.
  EvaluatorStats stats() const;

  /// The disk store backing this evaluator (nullptr when purely
  /// in-memory). Spool drains flush it per work unit so concurrent
  /// workers see each other's results.
  CacheStore* store() const { return store_; }

 private:
  CacheStore* store_ = nullptr;

  detail::KeyedCache<core::Network> networks_;
  detail::KeyedCache<sched::Schedule> schedules_;
  detail::KeyedCache<sched::Traffic> traffics_;
  detail::KeyedCache<sim::StepResult> steps_;
  detail::KeyedCache<arch::GpuStepResult> gpu_steps_;
  detail::KeyedCache<arch::SystolicStepResult> systolic_steps_;

  mutable std::mutex stats_mu_;
  EvaluatorStats stats_;

  void count(std::int64_t EvaluatorStats::*hits,
             std::int64_t EvaluatorStats::*misses,
             std::int64_t EvaluatorStats::*disk_hits, bool was_hit,
             bool from_disk);

  /// The shared per-stage path: in-memory lookup, then (on a miss) the
  /// disk store, then `compute` — recording fresh values to the store and
  /// counting hit/miss/disk stats. `load`/`put` are CacheStore member
  /// pointers for this stage.
  template <typename T, typename Load, typename Put, typename Compute>
  const T& stage(detail::KeyedCache<T>& cache, const std::string& key,
                 Load load, Put put, Compute compute,
                 std::int64_t EvaluatorStats::*hits,
                 std::int64_t EvaluatorStats::*misses,
                 std::int64_t EvaluatorStats::*disk_hits);
};

}  // namespace mbs::engine
