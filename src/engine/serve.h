// ServeCore: the query engine behind tools/mbs_serve and bench/serve_replay.
//
// The ROADMAP's north star is serving schedule/traffic/simulate answers to
// many clients, not re-running batch sweeps. ServeCore turns the Evaluator
// into exactly that: a query takes a textual Scenario spec
// (engine::parse_scenario), answers it from a three-level hierarchy —
//
//   1. in-memory LRU hot set (util::LruMap, bounded capacity) — O(1),
//      no disk, no compute;
//   2. the shared CacheStore (per-entry files, concurrent-reader safe) —
//      one file read per stage, then hot;
//   3. a fresh Evaluator computing the missing stages (and writing them
//      through to the store for every future query);
//
// — and returns a deterministic one-line answer. Answers are formatted
// with %.17g (round-trip exact for doubles), so a served answer is
// string-equal to the batch-computed answer for the same Scenario if and
// only if every double is bit-identical; serve_replay and the sweep-service
// CI job assert exactly that equality.
//
// The per-query Evaluator is deliberately short-lived: the LRU and the
// store provide all cross-query reuse, so the daemon's memory stays
// bounded by the hot-set capacity no matter how many distinct keys the
// query stream visits.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

#include "engine/scenario.h"
#include "util/lru.h"

namespace mbs::engine {

class CacheStore;
struct ScenarioResult;

struct ServeStats {
  std::size_t queries = 0;    ///< total queries answered (incl. errors)
  std::size_t hot_hits = 0;   ///< answered from the in-memory LRU
  std::size_t store_hits = 0; ///< every missing stage came from the store
  std::size_t computed = 0;   ///< at least one stage ran the pipeline
  std::size_t errors = 0;     ///< malformed spec or unknown network
  /// Queries that hit store corruption mid-read (quarantined entries) and
  /// degraded gracefully to fresh evaluation. The answer is still correct
  /// — the store is a cache, never a source of truth — but the latency
  /// tier was worse than it should have been; a rising count means the
  /// disk under the store is eating writes.
  std::size_t degraded = 0;
};

class ServeCore {
 public:
  /// Where a query's answer came from (the latency tiers serve_replay
  /// buckets by).
  enum class Source { kHot, kStore, kComputed, kError };

  struct Answer {
    bool ok = false;
    /// One line: the stage's metrics (`time_s=... dram_bytes=...`) on
    /// success, a parse/lookup error message otherwise.
    std::string text;
    Source source = Source::kError;
  };

  /// Serves against `store` (may be null: everything computes) with an
  /// in-memory hot set of `hot_capacity` answers. Env default for the
  /// binaries: MBS_SERVE_HOT (tools/mbs_serve, bench/serve_replay).
  explicit ServeCore(CacheStore* store, std::size_t hot_capacity = 64);

  /// Answers one Scenario-spec query. Thread-safe (serialized; the hot
  /// path is O(1) under the lock, so the daemon's worst case is one cold
  /// evaluation ahead of you in line).
  Answer query(const std::string& spec);

  ServeStats stats() const;

  /// The canonical one-line rendering of an evaluated scenario, shared by
  /// the serve path and the batch-verification side of serve_replay:
  /// string equality of answers is double-bit equality of results.
  static std::string format_answer(const Scenario& s,
                                   const ScenarioResult& r);

 private:
  CacheStore* store_;
  mutable std::mutex mu_;
  util::LruMap<std::string> hot_;
  ServeStats stats_;
};

}  // namespace mbs::engine
