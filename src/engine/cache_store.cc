#include "engine/cache_store.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "models/zoo.h"
#include "util/env.h"
#include "util/fault.h"
#include "util/fnv.h"
#include "util/serde.h"

namespace mbs::engine {

namespace {

using util::serde::Reader;
using util::serde::Writer;

// ---- Per-struct serialization. Field order is part of kSchemaStamp: any
// ---- change here must bump the corresponding stage tag.

void write_shape(Writer& w, const core::FeatureShape& s) {
  w.put_int(s.c);
  w.put_int(s.h);
  w.put_int(s.w);
}

core::FeatureShape read_shape(Reader& r) {
  core::FeatureShape s;
  s.c = static_cast<int>(r.read_int());
  s.h = static_cast<int>(r.read_int());
  s.w = static_cast<int>(r.read_int());
  return s;
}

void write_layer(Writer& w, const core::Layer& l) {
  w.put_int(static_cast<int>(l.kind));
  w.put_string(l.name);
  write_shape(w, l.in);
  write_shape(w, l.out);
  w.put_int(l.kernel_h);
  w.put_int(l.kernel_w);
  w.put_int(l.stride);
  w.put_int(l.pad_h);
  w.put_int(l.pad_w);
  w.put_int(static_cast<int>(l.pool_kind));
  w.put_int(static_cast<int>(l.norm_kind));
  w.put_int(l.has_bias ? 1 : 0);
  // net2: attention layers append their head count; every other kind keeps
  // the net1 byte layout, so CNN records round-trip unchanged.
  if (l.kind == core::LayerKind::kAttention) w.put_int(l.heads);
}

core::Layer read_layer(Reader& r) {
  core::Layer l;
  l.kind = static_cast<core::LayerKind>(r.read_int());
  l.name = r.read_string();
  l.in = read_shape(r);
  l.out = read_shape(r);
  l.kernel_h = static_cast<int>(r.read_int());
  l.kernel_w = static_cast<int>(r.read_int());
  l.stride = static_cast<int>(r.read_int());
  l.pad_h = static_cast<int>(r.read_int());
  l.pad_w = static_cast<int>(r.read_int());
  l.pool_kind = static_cast<core::PoolKind>(r.read_int());
  l.norm_kind = static_cast<core::NormKind>(r.read_int());
  l.has_bias = r.read_int() != 0;
  if (l.kind == core::LayerKind::kAttention)
    l.heads = static_cast<int>(r.read_int());
  return l;
}

void write_layers(Writer& w, const std::vector<core::Layer>& layers) {
  w.put_int(static_cast<std::int64_t>(layers.size()));
  for (const core::Layer& l : layers) write_layer(w, l);
}

std::vector<core::Layer> read_layers(Reader& r) {
  const std::int64_t n = r.read_int();
  std::vector<core::Layer> out;
  if (r.fail() || n < 0) return out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n && !r.fail(); ++i)
    out.push_back(read_layer(r));
  return out;
}

void write_network(Writer& w, const core::Network& net) {
  w.put_string(net.name);
  write_shape(w, net.input);
  w.put_int(net.mini_batch_per_core);
  w.put_int(static_cast<std::int64_t>(net.blocks.size()));
  for (const core::Block& b : net.blocks) {
    w.put_int(static_cast<int>(b.kind));
    w.put_string(b.name);
    write_shape(w, b.in);
    write_shape(w, b.out);
    w.put_int(static_cast<std::int64_t>(b.branches.size()));
    for (const core::Branch& br : b.branches) write_layers(w, br.layers);
    write_layers(w, b.merge);
  }
}

core::Network read_network(Reader& r) {
  core::Network net;
  net.name = r.read_string();
  net.input = read_shape(r);
  net.mini_batch_per_core = static_cast<int>(r.read_int());
  const std::int64_t nblocks = r.read_int();
  for (std::int64_t i = 0; i < nblocks && !r.fail(); ++i) {
    core::Block b;
    b.kind = static_cast<core::BlockKind>(r.read_int());
    b.name = r.read_string();
    b.in = read_shape(r);
    b.out = read_shape(r);
    const std::int64_t nbranches = r.read_int();
    for (std::int64_t j = 0; j < nbranches && !r.fail(); ++j) {
      core::Branch br;
      br.layers = read_layers(r);
      b.branches.push_back(std::move(br));
    }
    b.merge = read_layers(r);
    net.blocks.push_back(std::move(b));
  }
  return net;
}

void write_schedule(Writer& w, const sched::Schedule& s) {
  w.put_int(static_cast<int>(s.config));
  w.put_int(s.mini_batch);
  w.put_int(s.buffer_bytes);
  w.put_int(static_cast<std::int64_t>(s.groups.size()));
  for (const sched::Group& g : s.groups) {
    w.put_int(g.first);
    w.put_int(g.last);
    w.put_int(g.sub_batch);
    w.put_int(g.iterations);
    w.put_int(static_cast<std::int64_t>(g.members.size()));
    for (int m : g.members) w.put_int(m);
  }
  w.put_int(static_cast<std::int64_t>(s.block_footprint.size()));
  for (std::int64_t v : s.block_footprint) w.put_int(v);
  w.put_int(static_cast<std::int64_t>(s.block_max_sub.size()));
  for (int v : s.block_max_sub) w.put_int(v);
}

sched::Schedule read_schedule(Reader& r) {
  sched::Schedule s;
  s.config = static_cast<sched::ExecConfig>(r.read_int());
  s.mini_batch = static_cast<int>(r.read_int());
  s.buffer_bytes = r.read_int();
  const std::int64_t ngroups = r.read_int();
  for (std::int64_t i = 0; i < ngroups && !r.fail(); ++i) {
    sched::Group g;
    g.first = static_cast<int>(r.read_int());
    g.last = static_cast<int>(r.read_int());
    g.sub_batch = static_cast<int>(r.read_int());
    g.iterations = static_cast<int>(r.read_int());
    const std::int64_t nmembers = r.read_int();
    for (std::int64_t j = 0; j < nmembers && !r.fail(); ++j)
      g.members.push_back(static_cast<int>(r.read_int()));
    s.groups.push_back(std::move(g));
  }
  const std::int64_t nfoot = r.read_int();
  for (std::int64_t i = 0; i < nfoot && !r.fail(); ++i)
    s.block_footprint.push_back(r.read_int());
  const std::int64_t nsub = r.read_int();
  for (std::int64_t i = 0; i < nsub && !r.fail(); ++i)
    s.block_max_sub.push_back(static_cast<int>(r.read_int()));
  return s;
}

void write_traffic(Writer& w, const sched::Traffic& t) {
  w.put_int(static_cast<std::int64_t>(t.records.size()));
  for (const sched::TrafficRecord& rec : t.records) {
    w.put_int(rec.block);
    w.put_int(rec.layer);
    w.put_int(static_cast<int>(rec.kind));
    w.put_int(rec.is_gemm ? 1 : 0);
    w.put_int(static_cast<int>(rec.phase));
    w.put_int(static_cast<int>(rec.cls));
    w.put_double(rec.dram_read);
    w.put_double(rec.dram_write);
    w.put_double(rec.buf_read);
    w.put_double(rec.buf_write);
  }
}

sched::Traffic read_traffic(Reader& r) {
  sched::Traffic t;
  const std::int64_t n = r.read_int();
  for (std::int64_t i = 0; i < n && !r.fail(); ++i) {
    sched::TrafficRecord rec;
    rec.block = static_cast<int>(r.read_int());
    rec.layer = static_cast<int>(r.read_int());
    rec.kind = static_cast<core::LayerKind>(r.read_int());
    rec.is_gemm = r.read_int() != 0;
    rec.phase = static_cast<sched::Phase>(r.read_int());
    rec.cls = static_cast<sched::TrafficClass>(r.read_int());
    rec.dram_read = r.read_double();
    rec.dram_write = r.read_double();
    rec.buf_read = r.read_double();
    rec.buf_write = r.read_double();
    t.records.push_back(rec);
  }
  return t;
}

void write_step(Writer& w, const sim::StepResult& s) {
  w.put_double(s.time_s);
  w.put_double(s.dram_bytes);
  w.put_double(s.buffer_bytes);
  w.put_double(s.total_macs);
  w.put_double(s.systolic_utilization);
  w.put_double(s.compute_time_s);
  w.put_double(s.memory_time_s);
  w.put_double(s.time_by_type.conv);
  w.put_double(s.time_by_type.fc);
  w.put_double(s.time_by_type.norm);
  w.put_double(s.time_by_type.pool);
  w.put_double(s.time_by_type.sum);
  w.put_double(s.energy.dram_j);
  w.put_double(s.energy.buffer_j);
  w.put_double(s.energy.mac_j);
  w.put_double(s.energy.vector_j);
  w.put_double(s.energy.static_j);
}

sim::StepResult read_step(Reader& r) {
  sim::StepResult s;
  s.time_s = r.read_double();
  s.dram_bytes = r.read_double();
  s.buffer_bytes = r.read_double();
  s.total_macs = r.read_double();
  s.systolic_utilization = r.read_double();
  s.compute_time_s = r.read_double();
  s.memory_time_s = r.read_double();
  s.time_by_type.conv = r.read_double();
  s.time_by_type.fc = r.read_double();
  s.time_by_type.norm = r.read_double();
  s.time_by_type.pool = r.read_double();
  s.time_by_type.sum = r.read_double();
  s.energy.dram_j = r.read_double();
  s.energy.buffer_j = r.read_double();
  s.energy.mac_j = r.read_double();
  s.energy.vector_j = r.read_double();
  s.energy.static_j = r.read_double();
  return s;
}

void write_gpu_step(Writer& w, const arch::GpuStepResult& s) {
  w.put_double(s.time_s);
  w.put_double(s.dram_bytes);
  w.put_double(s.compute_time_s);
  w.put_double(s.memory_time_s);
  w.put_double(s.overhead_s);
}

arch::GpuStepResult read_gpu_step(Reader& r) {
  arch::GpuStepResult s;
  s.time_s = r.read_double();
  s.dram_bytes = r.read_double();
  s.compute_time_s = r.read_double();
  s.memory_time_s = r.read_double();
  s.overhead_s = r.read_double();
  return s;
}

void write_systolic_step(Writer& w, const arch::SystolicStepResult& s) {
  w.put_int(s.stats.comp_cycles);
  w.put_int(s.stats.stall_cycles);
  w.put_double(s.stats.util);
  w.put_double(s.stats.mapping_eff);
  w.put_double(s.time_s);
  w.put_double(s.compute_time_s);
  w.put_double(s.stall_time_s);
  w.put_double(s.dram_bytes);
  w.put_double(s.total_macs);
  w.put_double(s.bw_ifmap);
  w.put_double(s.bw_filter);
  w.put_double(s.bw_ofmap);
}

arch::SystolicStepResult read_systolic_step(Reader& r) {
  arch::SystolicStepResult s;
  s.stats.comp_cycles = r.read_int();
  s.stats.stall_cycles = r.read_int();
  s.stats.util = r.read_double();
  s.stats.mapping_eff = r.read_double();
  s.time_s = r.read_double();
  s.compute_time_s = r.read_double();
  s.stall_time_s = r.read_double();
  s.dram_bytes = r.read_double();
  s.total_macs = r.read_double();
  s.bw_ifmap = r.read_double();
  s.bw_filter = r.read_double();
  s.bw_ofmap = r.read_double();
  return s;
}

}  // namespace

CacheStore::CacheStore(std::string path) : path_(std::move(path)) {}

std::unique_ptr<CacheStore> CacheStore::from_env() {
  const char* dir = std::getenv("MBS_CACHE_DIR");
  if (!dir || !*dir) return nullptr;
  return std::make_unique<CacheStore>(std::string(dir) +
                                      "/evaluator.mbscache");
}

namespace {

bool stamp_accepted(const std::string& stamp) {
  return stamp == CacheStore::kSchemaStamp ||
         stamp == CacheStore::kPreAttentionSchemaStamp ||
         stamp == CacheStore::kPreChecksumSchemaStamp ||
         stamp == CacheStore::kPreServiceSchemaStamp ||
         stamp == CacheStore::kLegacySchemaStamp;
}

/// The network name a record key refers to: the key itself for the
/// network stage (minus any ";seq=" suffix), the value of the `net=`
/// field otherwise (which leads the key, or follows the `dev=` tag for
/// GPU/systolic keys). Empty when the key carries no network.
std::string key_network(const char* stage, const std::string& key) {
  if (std::string(stage) == "net") return key.substr(0, key.find(';'));
  std::size_t pos = 0;
  if (key.compare(0, 4, "dev=") == 0) {
    const std::size_t semi = key.find(';');
    if (semi == std::string::npos) return "";
    pos = semi + 1;
  }
  if (key.compare(pos, 4, "net=") != 0) return "";
  const std::size_t start = pos + 4;
  const std::size_t end = key.find(';', start);
  return key.substr(start,
                    end == std::string::npos ? std::string::npos : end - start);
}

/// True for records whose stored content predates the real-attention
/// rework: Transformer-family keys kept their exact bytes while the
/// networks behind them changed (stand-in GEMM towers -> a real attention
/// layer), so the stamp is the only way to tell stale transformer content
/// from fresh. Such records read as a miss; the entry file is left alone
/// and is simply overwritten when the recomputed value saves under the
/// current stamp.
bool stale_transformer_record(const std::string& stamp, const char* stage,
                              const std::string& key) {
  if (stamp == CacheStore::kSchemaStamp) return false;
  return models::is_transformer_network(key_network(stage, key));
}

// Outcome of validating one shard entry file against the stage and key the
// caller asked for. The distinction matters because it decides the file's
// fate: a kMiss leaves the file alone (it is someone else's valid data — an
// fnv1a64 collision, or a newer writer whose stamp we don't know), while
// kCorrupt quarantines it (it can never validate for anyone).
enum class EntryStatus {
  kChecksummed,  // current format: record body is in `*body`, verified
  kInline,       // pre-checksum stamp: record tokens follow in the Reader
  kMiss,
  kCorrupt,
};

EntryStatus check_entry(Reader& r, const char* stage, const std::string& key,
                        std::string* body) {
  if (r.read_string() != "mbs-entry" || r.fail()) return EntryStatus::kCorrupt;
  if (r.read_int() != CacheStore::kFormatVersion || r.fail())
    return EntryStatus::kCorrupt;
  const std::string stamp = r.read_string();
  if (r.fail()) return EntryStatus::kCorrupt;
  if (!stamp_accepted(stamp)) return EntryStatus::kMiss;
  if (r.read_string() != stage || r.fail()) return EntryStatus::kCorrupt;
  const std::string file_key = r.read_string();
  if (r.fail()) return EntryStatus::kCorrupt;
  if (file_key != key) return EntryStatus::kMiss;
  if (stale_transformer_record(stamp, stage, file_key))
    return EntryStatus::kMiss;
  // Checksummed framing arrived with svc2 (pre-attention stamp included);
  // earlier stamps carry the record tokens inline.
  if (stamp != CacheStore::kSchemaStamp &&
      stamp != CacheStore::kPreAttentionSchemaStamp)
    return EntryStatus::kInline;
  const std::uint64_t want = static_cast<std::uint64_t>(r.read_int());
  *body = r.read_string();
  if (r.fail() || !r.at_end()) return EntryStatus::kCorrupt;
  if (util::fnv1a64(*body) != want) return EntryStatus::kCorrupt;
  return EntryStatus::kChecksummed;
}

char hex_digit(std::uint64_t v) {
  return "0123456789abcdef"[v & 0xf];
}

}  // namespace

std::string CacheStore::entry_file(const char* stage,
                                   const std::string& key) const {
  const std::uint64_t h = util::fnv1a64(key);
  std::string name(16, '0');
  for (int i = 0; i < 16; ++i) name[15 - i] = hex_digit(h >> (4 * i));
  return shard_dir() + "/" + stage + "/" + name + ".rec";
}

void CacheStore::quarantine_entry(const char* stage, const std::string& key) {
  const std::string src = entry_file(stage, key);
  const std::string qdir = shard_dir() + "/quarantine";
  std::error_code ec;
  std::filesystem::create_directories(qdir, ec);
  const std::string name = src.substr(src.rfind('/') + 1);
  const std::string dst = qdir + "/" + stage + "." + name;
  if (!util::fs::rename_file(src, dst, "cache.quarantine.rename")) {
    // Quarantine must never re-serve the bad bytes; if the move itself
    // fails, removal is the fallback.
    std::remove(src.c_str());
  }
  ++corrupt_entries_;
  std::fprintf(stderr, "CacheStore: quarantined corrupt entry %s (stage %s)\n",
               src.c_str(), stage);
}

void CacheStore::ensure_loaded() {
  std::call_once(load_once_, [&] {
    std::string text;
    if (!util::fs::read_file(path_, &text, "cache.legacy.read"))
      return;  // no legacy file: cold start
    std::lock_guard<std::mutex> lock(mu_);
    if (!parse_file(text)) {
      networks_.clear();
      schedules_.clear();
      traffics_.clear();
      steps_.clear();
      gpu_steps_.clear();
      systolic_steps_.clear();
      dirty_.clear();
      loaded_ = 0;
      std::fprintf(stderr,
                   "CacheStore: %s is stale or malformed; starting cold\n",
                   path_.c_str());
    }
  });
}

bool CacheStore::parse_file(const std::string& text) {
  Reader r(text);
  if (r.read_string() != "mbs-cache") return false;
  if (r.read_int() != kFormatVersion) return false;
  // Older stamps predate stages they cannot contain records of; every
  // record layout they can hold is unchanged. Accepting them keeps
  // pre-existing warm caches valid across upgrades. The exception is
  // Transformer-family records under a pre-net2 stamp (stale stand-in
  // content, see stale_transformer_record): those are parsed past but not
  // retained, so their keys read as misses and recompute.
  const std::string stamp = r.read_string();
  if (!stamp_accepted(stamp)) return false;
  while (!r.at_end() && !r.fail()) {
    const std::string stage = r.read_string();
    const std::string key = r.read_string();
    const bool stale = stale_transformer_record(stamp, stage.c_str(), key);
    if (stage == "net") {
      core::Network v = read_network(r);
      if (!stale) networks_[key] = std::move(v);
    } else if (stage == "sched") {
      sched::Schedule v = read_schedule(r);
      if (!stale) schedules_[key] = std::move(v);
    } else if (stage == "traffic") {
      sched::Traffic v = read_traffic(r);
      if (!stale) traffics_[key] = std::move(v);
    } else if (stage == "step") {
      sim::StepResult v = read_step(r);
      if (!stale) steps_[key] = v;
    } else if (stage == "gpu") {
      arch::GpuStepResult v = read_gpu_step(r);
      if (!stale) gpu_steps_[key] = v;
    } else if (stage == "sys") {
      arch::SystolicStepResult v = read_systolic_step(r);
      if (!stale) systolic_steps_[key] = v;
    } else {
      return false;
    }
  }
  if (r.fail()) return false;
  loaded_ = networks_.size() + schedules_.size() + traffics_.size() +
            steps_.size() + gpu_steps_.size() + systolic_steps_.size();
  return true;
}

std::string CacheStore::serialize() const {
  Writer w;
  w.put_string("mbs-cache");
  w.put_int(kFormatVersion);
  w.put_string(kSchemaStamp);
  for (const auto& [key, v] : networks_) {
    w.put_string("net");
    w.put_string(key);
    write_network(w, v);
  }
  for (const auto& [key, v] : schedules_) {
    w.put_string("sched");
    w.put_string(key);
    write_schedule(w, v);
  }
  for (const auto& [key, v] : traffics_) {
    w.put_string("traffic");
    w.put_string(key);
    write_traffic(w, v);
  }
  for (const auto& [key, v] : steps_) {
    w.put_string("step");
    w.put_string(key);
    write_step(w, v);
  }
  for (const auto& [key, v] : gpu_steps_) {
    w.put_string("gpu");
    w.put_string(key);
    write_gpu_step(w, v);
  }
  for (const auto& [key, v] : systolic_steps_) {
    w.put_string("sys");
    w.put_string(key);
    write_systolic_step(w, v);
  }
  return w.str();
}

// One lookup/insert pair per stage; all share the lazy legacy-file load
// and the lock. A memory miss falls through to the per-entry shard file:
// on a valid read the value is cached in memory (and counted as loaded),
// so each key touches disk at most once per process. A file that fails
// validation (torn write, bad checksum, wrong stage, parse failure) is
// quarantined and the lookup is a miss; a key mismatch or unknown-newer
// stamp is a plain miss that leaves the file alone.
#define MBS_CACHE_STORE_STAGE(Fn, PutFn, Map, Type, Stage, ReadFn)      \
  bool CacheStore::Fn(const std::string& key, Type* out) {              \
    ensure_loaded();                                                    \
    std::lock_guard<std::mutex> lock(mu_);                              \
    const auto it = Map.find(key);                                      \
    if (it != Map.end()) {                                              \
      *out = it->second;                                                \
      return true;                                                      \
    }                                                                   \
    std::string text;                                                   \
    if (!util::fs::read_file(entry_file(Stage, key), &text,             \
                             "cache.entry.read"))                       \
      return false;                                                     \
    Reader r(text);                                                     \
    std::string body;                                                   \
    const EntryStatus st = check_entry(r, Stage, key, &body);           \
    if (st == EntryStatus::kMiss) return false;                         \
    if (st == EntryStatus::kCorrupt) {                                  \
      quarantine_entry(Stage, key);                                     \
      return false;                                                     \
    }                                                                   \
    Reader br(body);                                                    \
    Reader& pr = st == EntryStatus::kChecksummed ? br : r;              \
    Type v = ReadFn(pr);                                                \
    if (pr.fail() || !pr.at_end()) {                                    \
      quarantine_entry(Stage, key);                                     \
      return false;                                                     \
    }                                                                   \
    *out = v;                                                           \
    Map.emplace(key, std::move(v));                                     \
    ++loaded_;                                                          \
    return true;                                                        \
  }                                                                     \
  void CacheStore::PutFn(const std::string& key, const Type& v) {       \
    ensure_loaded();                                                    \
    std::lock_guard<std::mutex> lock(mu_);                              \
    if (Map.emplace(key, v).second) dirty_.emplace(Stage, key);         \
  }

MBS_CACHE_STORE_STAGE(load_network, put_network, networks_, core::Network,
                      "net", read_network)
MBS_CACHE_STORE_STAGE(load_schedule, put_schedule, schedules_,
                      sched::Schedule, "sched", read_schedule)
MBS_CACHE_STORE_STAGE(load_traffic, put_traffic, traffics_, sched::Traffic,
                      "traffic", read_traffic)
MBS_CACHE_STORE_STAGE(load_step, put_step, steps_, sim::StepResult, "step",
                      read_step)
MBS_CACHE_STORE_STAGE(load_gpu_step, put_gpu_step, gpu_steps_,
                      arch::GpuStepResult, "gpu", read_gpu_step)
MBS_CACHE_STORE_STAGE(load_systolic_step, put_systolic_step, systolic_steps_,
                      arch::SystolicStepResult, "sys", read_systolic_step)

#undef MBS_CACHE_STORE_STAGE

bool CacheStore::save() {
  ensure_loaded();
  // Serialize dirty entries under the lock, write them outside it.
  std::vector<std::tuple<std::string, std::string, std::string>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dirty_.empty()) return true;
    pending.reserve(dirty_.size());
    for (const auto& [stage, key] : dirty_) {
      Writer body;
      if (stage == "net")
        write_network(body, networks_.at(key));
      else if (stage == "sched")
        write_schedule(body, schedules_.at(key));
      else if (stage == "traffic")
        write_traffic(body, traffics_.at(key));
      else if (stage == "step")
        write_step(body, steps_.at(key));
      else if (stage == "gpu")
        write_gpu_step(body, gpu_steps_.at(key));
      else
        write_systolic_step(body, systolic_steps_.at(key));
      // The record tokens are wrapped as one length-prefixed string with
      // an fnv1a64 checksum in front: a torn write breaks the length or
      // the checksum, never silently yields a shorter-but-parseable body.
      Writer w;
      w.put_string("mbs-entry");
      w.put_int(kFormatVersion);
      w.put_string(kSchemaStamp);
      w.put_string(stage);
      w.put_string(key);
      w.put_int(static_cast<std::int64_t>(util::fnv1a64(body.str())));
      w.put_string(body.str());
      pending.emplace_back(stage, key, w.str());
    }
  }
  const long retries = util::env_int("MBS_CACHE_SAVE_RETRIES", 3, 0, 100);
  const long backoff_ms = util::env_int("MBS_CACHE_RETRY_MS", 10, 0, 60000);
  bool all_ok = true;
  for (const auto& [stage, key, text] : pending) {
    bool ok = false;
    for (long attempt = 0; attempt <= retries && !ok; ++attempt) {
      if (attempt > 0 && backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff_ms * attempt));
      }
      ok = util::fs::write_atomic(entry_file(stage.c_str(), key), text + "\n",
                                  "cache.entry.write");
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
      dirty_.erase({stage, key});
    } else {
      all_ok = false;
      ++save_failures_;
      std::fprintf(stderr,
                   "CacheStore: giving up on %s/%s after %ld attempts\n",
                   stage.c_str(), key.c_str(), retries + 1);
    }
  }
  return all_ok;
}

bool CacheStore::save_legacy_single_file() {
  ensure_loaded();
  std::string text;
  {
    std::lock_guard<std::mutex> lock(mu_);
    text = serialize();
  }
  if (!util::fs::write_atomic(path_, text + "\n", "cache.legacy.write")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++save_failures_;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  dirty_.clear();  // every entry is now persisted (in the legacy file)
  return true;
}

std::size_t CacheStore::loaded_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loaded_;
}

std::size_t CacheStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return networks_.size() + schedules_.size() + traffics_.size() +
         steps_.size() + gpu_steps_.size() + systolic_steps_.size();
}

bool CacheStore::dirty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !dirty_.empty();
}

std::size_t CacheStore::save_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return save_failures_;
}

std::size_t CacheStore::corrupt_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_entries_;
}

}  // namespace mbs::engine
