// CacheStore: disk persistence for the Evaluator's memoized results.
//
// The in-memory Evaluator caches die with the process, so every bench run
// and every CI trajectory invocation starts cold. A CacheStore serializes
// the memoized network / schedule / traffic / step / GPU-step values to one
// versioned file, keyed by the same stable Scenario cache keys the
// in-memory caches use. The Evaluator consults the store on an in-memory
// miss and records fresh computations for the next save(), so a repeated
// sweep starts warm and produces bit-identical output (values round-trip
// exactly via util::serde's hex-float encoding).
//
// The backing file is loaded lazily on the first lookup. A header carries a
// format version and a schema stamp covering every serialized struct; any
// mismatch — or any malformed byte — discards the file and starts cold
// (the store is a cache, never a source of truth). save() writes through a
// temp file + rename, so concurrent shard processes sharing a cache
// directory cannot corrupt it (last writer wins).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/gpu.h"
#include "core/network.h"
#include "sched/schedule.h"
#include "sched/traffic.h"
#include "sim/simulator.h"

namespace mbs::engine {

class CacheStore {
 public:
  /// Bumped when the token framing of the file itself changes.
  static constexpr int kFormatVersion = 1;
  /// Bumped (per stage) when a serialized struct gains/loses fields.
  /// sched2: Group gained the `members` list (non-contiguous grouping).
  /// sys1: the cycle-level systolic-step stage joined the file.
  static constexpr const char* kSchemaStamp =
      "net1;sched2;traffic1;step1;gpu1;sys1";
  /// Still-accepted older stamps. A stage tag bump invalidates only files
  /// whose existing records changed layout; a file written before a brand-new
  /// stage existed cannot contain records of that stage, so it stays valid
  /// (warm starts survive the upgrade; only the new stage starts cold).
  static constexpr const char* kLegacySchemaStamp =
      "net1;sched2;traffic1;step1;gpu1";

  explicit CacheStore(std::string path);

  /// Store at $MBS_CACHE_DIR/evaluator.mbscache, or nullptr when the
  /// variable is unset or empty.
  static std::unique_ptr<CacheStore> from_env();

  // Lookups copy the stored value into `out` and return true on a hit.
  // The first lookup loads the backing file. All methods are thread-safe.
  bool load_network(const std::string& key, core::Network* out);
  bool load_schedule(const std::string& key, sched::Schedule* out);
  bool load_traffic(const std::string& key, sched::Traffic* out);
  bool load_step(const std::string& key, sim::StepResult* out);
  bool load_gpu_step(const std::string& key, arch::GpuStepResult* out);
  bool load_systolic_step(const std::string& key,
                          arch::SystolicStepResult* out);

  void put_network(const std::string& key, const core::Network& v);
  void put_schedule(const std::string& key, const sched::Schedule& v);
  void put_traffic(const std::string& key, const sched::Traffic& v);
  void put_step(const std::string& key, const sim::StepResult& v);
  void put_gpu_step(const std::string& key, const arch::GpuStepResult& v);
  void put_systolic_step(const std::string& key,
                         const arch::SystolicStepResult& v);

  /// Writes every entry back when new ones were added since load (temp file
  /// + rename; creates the parent directory). Returns false on IO failure,
  /// true otherwise (including the nothing-to-do case).
  bool save();

  const std::string& path() const { return path_; }
  /// Entries read from the backing file (0 before the lazy load).
  std::size_t loaded_entries() const;
  /// Current total entries across all stages.
  std::size_t entry_count() const;
  /// True when save() has something new to write.
  bool dirty() const;

 private:
  void ensure_loaded();
  bool parse_file(const std::string& text);
  std::string serialize() const;  // callers hold mu_

  std::string path_;
  std::once_flag load_once_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, core::Network> networks_;
  std::unordered_map<std::string, sched::Schedule> schedules_;
  std::unordered_map<std::string, sched::Traffic> traffics_;
  std::unordered_map<std::string, sim::StepResult> steps_;
  std::unordered_map<std::string, arch::GpuStepResult> gpu_steps_;
  std::unordered_map<std::string, arch::SystolicStepResult> systolic_steps_;
  std::size_t loaded_ = 0;
  bool dirty_ = false;
};

}  // namespace mbs::engine
