// CacheStore: disk persistence for the Evaluator's memoized results.
//
// The in-memory Evaluator caches die with the process, so every bench run
// and every CI trajectory invocation starts cold. A CacheStore serializes
// the memoized network / schedule / traffic / step / GPU-step /
// systolic-step values to disk, keyed by the same stable Scenario cache
// keys the in-memory caches use. The Evaluator consults the store on an
// in-memory miss and records fresh computations for the next save(), so a
// repeated sweep starts warm and produces bit-identical output (values
// round-trip exactly via util::serde's hex-float encoding).
//
// On-disk layout (since the sweep-service PR) is content-addressed and
// sharded per entry: each record lives in its own file
//
//   <path>.d/<stage>/<fnv1a64(key) as 16 hex digits>.rec
//
// written via temp file + atomic rename. Because distinct keys land in
// distinct files (each file embeds its full key; a hash collision reads as
// a miss and recomputes) and equal keys always serialize to identical
// bytes, any number of processes can read and write one warm cache
// directory concurrently without clobbering each other — the failure mode
// of the old single-file, last-writer-wins layout. save() is incremental:
// only entries added since the last save touch disk.
//
// The legacy single-file layout (`<path>` holding every record) is still
// read on the first lookup, so pre-existing warm caches keep working; new
// writes always go to the sharded directory. A header in both layouts
// carries a format version and a schema stamp covering every serialized
// struct; any mismatch — or any malformed byte — discards that file and
// treats its entries as cold (the store is a cache, never a source of
// truth).
//
// Since svc2, each shard entry additionally carries an fnv1a64 checksum
// over its length-prefixed record body, so a torn write (a crash or
// injected fault that leaves a truncated file behind) is detected on load
// rather than trusted. A file that fails validation is moved to
// `<shard_dir>/quarantine/` — never re-read, never able to wedge the
// store — and its key reads as a miss. All filesystem mutations route
// through util::fs, whose named fault sites (MBS_FAULTS) make these
// failure paths deterministically testable.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "arch/gpu.h"
#include "core/network.h"
#include "sched/schedule.h"
#include "sched/traffic.h"
#include "sim/simulator.h"

namespace mbs::engine {

class CacheStore {
 public:
  /// Bumped when the token framing of a store file itself changes.
  static constexpr int kFormatVersion = 1;
  /// Bumped (per stage) when a serialized struct gains/loses fields.
  /// net2: attention layers append a `heads` field (real-attention rework;
  ///       every other layer kind keeps the net1 byte layout).
  /// sched2: Group gained the `members` list (non-contiguous grouping).
  /// sys1: the cycle-level systolic-step stage joined the store.
  /// svc2: shard entries carry a per-record fnv1a64 checksum over a
  ///       length-prefixed body, so torn writes are detected on load
  ///       (record layouts themselves unchanged).
  static constexpr const char* kSchemaStamp =
      "net2;sched2;traffic1;step1;gpu1;sys1;svc2";
  /// Still-accepted older stamps. A stage tag bump invalidates only files
  /// whose existing records changed layout; no record layout has changed
  /// since these stamps were current, so files carrying them stay valid
  /// (warm starts survive the upgrade) — with one carve-out: records keyed
  /// by a Transformer-family network read as a miss under every pre-net2
  /// stamp, because the attention rework changed those networks' contents
  /// without changing their keys (the stand-in GEMM towers became a real
  /// attention layer). CNN-keyed records are untouched by the rework and
  /// stay warm.
  /// Pre-attention: the net1 era's current stamp — checksummed shard
  /// entries, stand-in transformers.
  static constexpr const char* kPreAttentionSchemaStamp =
      "net1;sched2;traffic1;step1;gpu1;sys1;svc2";
  /// svc1: the first sharded per-entry layout — record tokens inline after
  /// the header, no checksum.
  static constexpr const char* kPreChecksumSchemaStamp =
      "net1;sched2;traffic1;step1;gpu1;sys1;svc1";
  static constexpr const char* kPreServiceSchemaStamp =
      "net1;sched2;traffic1;step1;gpu1;sys1";
  /// Pre-systolic stamp: such a file cannot contain "sys" records, and
  /// every record it can hold is unchanged.
  static constexpr const char* kLegacySchemaStamp =
      "net1;sched2;traffic1;step1;gpu1";

  explicit CacheStore(std::string path);

  /// Store at $MBS_CACHE_DIR/evaluator.mbscache, or nullptr when the
  /// variable is unset or empty.
  static std::unique_ptr<CacheStore> from_env();

  // Lookups copy the stored value into `out` and return true on a hit.
  // The first lookup loads the legacy single file (if present); misses
  // then fall through to the per-entry shard files. All methods are
  // thread-safe.
  bool load_network(const std::string& key, core::Network* out);
  bool load_schedule(const std::string& key, sched::Schedule* out);
  bool load_traffic(const std::string& key, sched::Traffic* out);
  bool load_step(const std::string& key, sim::StepResult* out);
  bool load_gpu_step(const std::string& key, arch::GpuStepResult* out);
  bool load_systolic_step(const std::string& key,
                          arch::SystolicStepResult* out);

  void put_network(const std::string& key, const core::Network& v);
  void put_schedule(const std::string& key, const sched::Schedule& v);
  void put_traffic(const std::string& key, const sched::Traffic& v);
  void put_step(const std::string& key, const sim::StepResult& v);
  void put_gpu_step(const std::string& key, const arch::GpuStepResult& v);
  void put_systolic_step(const std::string& key,
                         const arch::SystolicStepResult& v);

  /// Writes every entry added since the last save to its own shard file
  /// (temp file + atomic rename; creates directories as needed). A failed
  /// write is retried up to MBS_CACHE_SAVE_RETRIES times with a linear
  /// MBS_CACHE_RETRY_MS backoff before the entry is left dirty for the
  /// next save(). Returns false if any write failed after retries, true
  /// otherwise (including the nothing-to-do case). Safe to call from many
  /// processes sharing one cache directory: equal keys write identical
  /// bytes.
  bool save();

  /// Writes ALL entries to the legacy single file at path() (temp file +
  /// rename, old format). Kept for compatibility tooling and for tests
  /// that exercise the legacy load path; normal operation never calls it.
  bool save_legacy_single_file();

  const std::string& path() const { return path_; }
  /// Directory holding the per-entry shard files.
  std::string shard_dir() const { return path_ + ".d"; }
  /// Entries read from disk so far (legacy file + lazy per-entry loads).
  std::size_t loaded_entries() const;
  /// Current total entries across all stages (in memory).
  std::size_t entry_count() const;
  /// True when save() has something new to write.
  bool dirty() const;
  /// Cumulative count of entry writes that failed (disk full, unwritable
  /// directory, ...). Surfaced by the Driver as a warning + stat.
  std::size_t save_failures() const;
  /// Cumulative count of shard entry files that failed validation on load
  /// (torn write, bad checksum, wrong stage, parse failure) and were moved
  /// to `<shard_dir>/quarantine/`. Each such lookup reads as a miss and
  /// the value is recomputed; ServeCore surfaces the delta per query as
  /// the `degraded` stat.
  std::size_t corrupt_entries() const;

 private:
  void ensure_loaded();
  bool parse_file(const std::string& text);
  std::string serialize() const;  // callers hold mu_
  std::string entry_file(const char* stage, const std::string& key) const;
  /// Moves a failed-validation entry file out of the shard tree so it is
  /// never re-read (callers hold mu_).
  void quarantine_entry(const char* stage, const std::string& key);

  std::string path_;
  std::once_flag load_once_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, core::Network> networks_;
  std::unordered_map<std::string, sched::Schedule> schedules_;
  std::unordered_map<std::string, sched::Traffic> traffics_;
  std::unordered_map<std::string, sim::StepResult> steps_;
  std::unordered_map<std::string, arch::GpuStepResult> gpu_steps_;
  std::unordered_map<std::string, arch::SystolicStepResult> systolic_steps_;
  /// (stage tag, key) pairs not yet persisted; ordered so save() writes
  /// deterministically.
  std::set<std::pair<std::string, std::string>> dirty_;
  std::size_t loaded_ = 0;
  std::size_t save_failures_ = 0;
  std::size_t corrupt_entries_ = 0;
};

}  // namespace mbs::engine
