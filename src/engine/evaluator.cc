#include "engine/evaluator.h"

#include <cassert>

#include "engine/cache_store.h"
#include "models/zoo.h"
#include "sched/scheduler.h"

namespace mbs::engine {

void Evaluator::count(std::int64_t EvaluatorStats::*hits,
                      std::int64_t EvaluatorStats::*misses,
                      std::int64_t EvaluatorStats::*disk_hits, bool was_hit,
                      bool from_disk) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (was_hit)
    ++(stats_.*hits);
  else
    ++(stats_.*misses);
  if (from_disk) ++(stats_.*disk_hits);
}

template <typename T, typename Load, typename Put, typename Compute>
const T& Evaluator::stage(detail::KeyedCache<T>& cache, const std::string& key,
                          Load load, Put put, Compute compute,
                          std::int64_t EvaluatorStats::*hits,
                          std::int64_t EvaluatorStats::*misses,
                          std::int64_t EvaluatorStats::*disk_hits) {
  bool hit = false, disk = false;
  const T& value = cache.get_or_compute(
      key,
      [&] {
        T v{};
        if (store_ && (store_->*load)(key, &v)) {
          disk = true;
          return v;
        }
        v = compute();
        if (store_) (store_->*put)(key, v);
        return v;
      },
      &hit);
  count(hits, misses, disk_hits, hit, disk);
  return value;
}

const core::Network& Evaluator::network(const std::string& name) {
  return stage(
      networks_, name, &CacheStore::load_network, &CacheStore::put_network,
      [&] { return models::make_network(name); }, &EvaluatorStats::network_hits,
      &EvaluatorStats::network_misses, &EvaluatorStats::network_disk_hits);
}

const core::Network& Evaluator::network(const Scenario& s) {
  return stage(
      networks_, s.network_key(), &CacheStore::load_network,
      &CacheStore::put_network,
      [&] { return models::make_network(s.network, s.seq); },
      &EvaluatorStats::network_hits, &EvaluatorStats::network_misses,
      &EvaluatorStats::network_disk_hits);
}

const sched::Schedule& Evaluator::schedule(const Scenario& s) {
  return stage(
      schedules_, s.schedule_key(), &CacheStore::load_schedule,
      &CacheStore::put_schedule,
      [&] { return sched::build_schedule(network(s), s.config, s.params); },
      &EvaluatorStats::schedule_hits, &EvaluatorStats::schedule_misses,
      &EvaluatorStats::schedule_disk_hits);
}

const sched::Traffic& Evaluator::traffic(const Scenario& s) {
  return stage(
      traffics_, s.schedule_key(), &CacheStore::load_traffic,
      &CacheStore::put_traffic,
      [&] { return sched::compute_traffic(network(s), schedule(s)); },
      &EvaluatorStats::traffic_hits, &EvaluatorStats::traffic_misses,
      &EvaluatorStats::traffic_disk_hits);
}

const sim::StepResult& Evaluator::step(const Scenario& s) {
  assert(s.device == Device::kWaveCore);
  return stage(
      steps_, s.cache_key(), &CacheStore::load_step, &CacheStore::put_step,
      [&] { return sim::simulate_step(network(s), schedule(s), s.hw); },
      &EvaluatorStats::step_hits, &EvaluatorStats::step_misses,
      &EvaluatorStats::step_disk_hits);
}

const arch::GpuStepResult& Evaluator::gpu_step(const Scenario& s) {
  assert(s.device == Device::kGpu);
  return stage(
      gpu_steps_, s.cache_key(), &CacheStore::load_gpu_step,
      &CacheStore::put_gpu_step,
      [&] {
        return arch::simulate_gpu_step(s.gpu, network(s), s.gpu_mini_batch);
      },
      &EvaluatorStats::gpu_hits, &EvaluatorStats::gpu_misses,
      &EvaluatorStats::gpu_disk_hits);
}

const arch::SystolicStepResult& Evaluator::systolic_step(const Scenario& s) {
  assert(s.device == Device::kSystolic);
  return stage(
      systolic_steps_, s.cache_key(), &CacheStore::load_systolic_step,
      &CacheStore::put_systolic_step,
      [&] {
        arch::SystolicSimParams p;
        p.array = s.hw.systolic;
        p.options = s.systolic;
        p.dram_bw_bytes_per_s =
            s.hw.unlimited_dram_bw ? 0
                                   : s.hw.memory.per_core_bandwidth(s.hw.cores);
        p.buffer_bw_bytes = s.hw.buffer_bw_bytes;
        p.vector_flops = s.hw.vector_flops;
        p.cores = s.hw.cores;
        return arch::simulate_systolic_step(network(s), schedule(s),
                                            traffic(s), p);
      },
      &EvaluatorStats::systolic_hits, &EvaluatorStats::systolic_misses,
      &EvaluatorStats::systolic_disk_hits);
}

EvaluatorStats Evaluator::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace mbs::engine
