#include "engine/evaluator.h"

#include <cassert>

#include "models/zoo.h"
#include "sched/scheduler.h"

namespace mbs::engine {

void Evaluator::count(std::int64_t EvaluatorStats::*hits,
                      std::int64_t EvaluatorStats::*misses, bool was_hit) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (was_hit)
    ++(stats_.*hits);
  else
    ++(stats_.*misses);
}

const core::Network& Evaluator::network(const std::string& name) {
  bool hit = false;
  const core::Network& net = networks_.get_or_compute(
      name, [&] { return models::make_network(name); }, &hit);
  count(&EvaluatorStats::network_hits, &EvaluatorStats::network_misses, hit);
  return net;
}

const sched::Schedule& Evaluator::schedule(const Scenario& s) {
  bool hit = false;
  const sched::Schedule& sch = schedules_.get_or_compute(
      s.schedule_key(),
      [&] { return sched::build_schedule(network(s.network), s.config, s.params); },
      &hit);
  count(&EvaluatorStats::schedule_hits, &EvaluatorStats::schedule_misses, hit);
  return sch;
}

const sched::Traffic& Evaluator::traffic(const Scenario& s) {
  bool hit = false;
  const sched::Traffic& t = traffics_.get_or_compute(
      s.schedule_key(),
      [&] { return sched::compute_traffic(network(s.network), schedule(s)); },
      &hit);
  count(&EvaluatorStats::traffic_hits, &EvaluatorStats::traffic_misses, hit);
  return t;
}

const sim::StepResult& Evaluator::step(const Scenario& s) {
  assert(s.device == Device::kWaveCore);
  bool hit = false;
  const sim::StepResult& r = steps_.get_or_compute(
      s.cache_key(),
      [&] { return sim::simulate_step(network(s.network), schedule(s), s.hw); },
      &hit);
  count(&EvaluatorStats::step_hits, &EvaluatorStats::step_misses, hit);
  return r;
}

const arch::GpuStepResult& Evaluator::gpu_step(const Scenario& s) {
  assert(s.device == Device::kGpu);
  bool hit = false;
  const arch::GpuStepResult& r = gpu_steps_.get_or_compute(
      s.cache_key(),
      [&] {
        return arch::simulate_gpu_step(s.gpu, network(s.network),
                                       s.gpu_mini_batch);
      },
      &hit);
  count(&EvaluatorStats::gpu_hits, &EvaluatorStats::gpu_misses, hit);
  return r;
}

EvaluatorStats Evaluator::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace mbs::engine
