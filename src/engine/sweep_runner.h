// SweepRunner: fans a vector of Scenarios (or arbitrary jobs) across a
// std::thread pool and returns results in input order.
//
// Every pipeline stage the workers touch is a pure function memoized by the
// shared Evaluator, so a parallel sweep is deterministically bit-identical
// to running the same scenarios serially — the property tests/engine_test.cc
// asserts and the paper-figure benches rely on for reproducibility.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/evaluator.h"
#include "engine/scenario.h"

namespace mbs::engine {

/// Deterministic round-robin partition of sweep work across processes.
/// Unit i belongs to shard `i % count`; every bench shards its output rows
/// (and thereby the scenarios that feed them) with the same rule, so the
/// per-shard ResultSink exports interleave back into the unsharded row
/// order (ResultSink::merge_shards, tools/merge_results.cc).
struct ShardPlan {
  int index = 0;
  int count = 1;

  bool active() const { return count > 1; }

  /// True when this shard owns unit `i` (always true for the identity plan).
  bool owns(std::size_t i) const {
    return count <= 1 ||
           static_cast<int>(i % static_cast<std::size_t>(count)) == index;
  }

  /// ".shard<i>of<N>" when active, "" otherwise (the export-file infix).
  std::string suffix() const;

  /// Parses "i/N" (e.g. "0/4"); requires 0 <= i < N. Aborts with a message
  /// on malformed input.
  static ShardPlan parse(const std::string& spec);
  /// Reads MBS_SHARD ("i/N"); the identity plan when unset or empty.
  static ShardPlan from_env();
};

/// One evaluated scenario. `network`/`schedule`/`traffic` point at entries
/// owned by the Evaluator and stay valid for its lifetime; they are null
/// where the stage does not apply (GPU scenarios have no schedule; a
/// Scenario::stage shallower than kSimulate leaves later stages unrun).
struct ScenarioResult {
  Scenario scenario;
  const core::Network* network = nullptr;
  const sched::Schedule* schedule = nullptr;
  const sched::Traffic* traffic = nullptr;
  /// WaveCore step metrics; for kGpu/kSystolic scenarios the time/traffic
  /// fields are mapped from the device-specific estimate so sweeps mixing
  /// devices tabulate uniformly.
  sim::StepResult step;
  arch::GpuStepResult gpu;  ///< populated only for kGpu scenarios
  arch::SystolicStepResult systolic;  ///< populated only for kSystolic ones
};

/// Evaluates one scenario against `eval` (the serial reference path; the
/// parallel runner calls exactly this per index).
ScenarioResult evaluate_scenario(const Scenario& s, Evaluator& eval);

struct SweepOptions {
  /// Worker threads; 0 uses std::thread::hardware_concurrency().
  int threads = 0;
  /// Batch scenarios that share a schedule cache key (fig12's four memory
  /// systems per config, fig13's GPU comparisons, …): each group's
  /// schedule and traffic are computed exactly once up front, then the
  /// member scenarios fan out with the shared results — no worker ever
  /// blocks on another's in-flight schedule, and the evaluator sees one
  /// traffic lookup per group instead of one per scenario. Results are
  /// byte-identical to ungrouped runs (the shared objects ARE the
  /// evaluator-cached ones). Disable for A/B timing with
  /// MBS_NO_SCHEDULE_GROUPS=1 (engine::Driver) or this flag.
  bool group_by_schedule = true;
  /// When non-empty, run() / run_sharded() first drain the grid through a
  /// SpoolQueue rooted here (env: MBS_SPOOL_DIR via engine::Driver): N
  /// worker processes sharing the directory claim schedule-key groups
  /// dynamically and share results through the evaluator's cache store,
  /// then each materializes its own (full or sharded) output warm — byte
  /// identical to a spool-less run. See engine/spool.h for the protocol.
  std::string spool_dir;
};

/// Results of a (possibly sharded) sweep, indexed like the scenario grid.
/// Entries the shard plan owned are evaluated eagerly on the thread pool;
/// any other entry is materialized lazily on first access, so cross-row
/// references (a stripe's Baseline row, a sweep's global normalization
/// point) work from every shard at the cost of evaluating just those
/// scenarios. The Evaluator must outlive this object.
class SweepResults {
 public:
  SweepResults() = default;

  std::size_t size() const { return grid_.size(); }
  bool empty() const { return grid_.empty(); }

  /// The result for grid entry `i`, evaluating it now if the eager pass
  /// skipped it. Thread-safe; references stay valid for this object's
  /// lifetime.
  const ScenarioResult& operator[](std::size_t i) const;

  class const_iterator {
   public:
    const_iterator(const SweepResults* parent, std::size_t i)
        : parent_(parent), i_(i) {}
    const ScenarioResult& operator*() const { return (*parent_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const SweepResults* parent_;
    std::size_t i_;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, grid_.size()}; }

 private:
  friend class SweepRunner;
  SweepResults(std::vector<Scenario> grid, Evaluator& eval);

  std::vector<Scenario> grid_;
  Evaluator* eval_ = nullptr;
  mutable std::vector<std::unique_ptr<ScenarioResult>> slots_;
  mutable std::unique_ptr<std::mutex> mu_;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Runs scenario `i` on the pool for every i; results come back in input
  /// order, identical to calling evaluate_scenario serially.
  std::vector<ScenarioResult> run(const std::vector<Scenario>& scenarios,
                                  Evaluator& eval) const;

  /// Sharded run: eagerly evaluates (on the pool) only the scenarios with
  /// `needed(i)` true; the returned view materializes any other entry
  /// lazily on access. `needed` encodes which scenarios feed the rows this
  /// shard owns — benches whose rows aggregate several scenarios map row
  /// ownership back to scenario indices here.
  SweepResults run_sharded(const std::vector<Scenario>& scenarios,
                           Evaluator& eval,
                           const std::function<bool(std::size_t)>& needed) const;

  /// Sharded run where scenario i feeds exactly output row i (the common
  /// case): eager work is the scenarios `plan` owns. With the identity plan
  /// this evaluates everything eagerly and is value-identical to run().
  SweepResults run_sharded(const std::vector<Scenario>& scenarios,
                           Evaluator& eval, const ShardPlan& plan) const;

  /// Parallel for over [0, n): each index is claimed once by some worker.
  /// `fn` must be safe to call concurrently for distinct indices.
  void for_each_index(int n, const std::function<void(int)>& fn) const;

  /// Generic ordered parallel map for consumers whose unit of work is not a
  /// Scenario (e.g. the training benches): executes `jobs` on the pool and
  /// returns their results in input order. R must be default-constructible.
  template <typename R>
  std::vector<R> map(const std::vector<std::function<R()>>& jobs) const {
    std::vector<R> out(jobs.size());
    for_each_index(static_cast<int>(jobs.size()),
                   [&](int i) { out[static_cast<std::size_t>(i)] = jobs[static_cast<std::size_t>(i)](); });
    return out;
  }

  /// Threads that would be used for `n` jobs (bounded by both).
  int thread_count(int n) const;

 private:
  /// Evaluates `indices` (positions into `scenarios`) into out[0..k),
  /// grouping by schedule key when the options ask for it. out[k] is the
  /// result for scenarios[indices[k]]; entries are identical to
  /// evaluate_scenario's regardless of grouping.
  void evaluate_indices(const std::vector<Scenario>& scenarios,
                        Evaluator& eval,
                        const std::vector<std::size_t>& indices,
                        ScenarioResult* out) const;

  /// Work-queue drain of `scenarios` when opts_.spool_dir is set (no-op
  /// otherwise): claims schedule-key groups from the spool, evaluates
  /// them, and flushes the evaluator's cache store after each, then waits
  /// (bounded by MBS_SPOOL_TIMEOUT_MS) for peers to finish so the caller's
  /// subsequent materialization starts warm. Purely an evaluation-sharing
  /// accelerator: results and output bytes are unaffected by it.
  void drain_spool(const std::vector<Scenario>& scenarios,
                   Evaluator& eval) const;

  SweepOptions opts_;
};

}  // namespace mbs::engine
