// SweepRunner: fans a vector of Scenarios (or arbitrary jobs) across a
// std::thread pool and returns results in input order.
//
// Every pipeline stage the workers touch is a pure function memoized by the
// shared Evaluator, so a parallel sweep is deterministically bit-identical
// to running the same scenarios serially — the property tests/engine_test.cc
// asserts and the paper-figure benches rely on for reproducibility.
#pragma once

#include <functional>
#include <vector>

#include "engine/evaluator.h"
#include "engine/scenario.h"

namespace mbs::engine {

/// One evaluated scenario. `network`/`schedule`/`traffic` point at entries
/// owned by the Evaluator and stay valid for its lifetime; they are null
/// where the stage does not apply (GPU scenarios have no schedule; a
/// Scenario::stage shallower than kSimulate leaves later stages unrun).
struct ScenarioResult {
  Scenario scenario;
  const core::Network* network = nullptr;
  const sched::Schedule* schedule = nullptr;
  const sched::Traffic* traffic = nullptr;
  /// WaveCore step metrics; for kGpu scenarios the time/traffic fields are
  /// mapped from the GPU estimate so sweeps mixing devices tabulate
  /// uniformly.
  sim::StepResult step;
  arch::GpuStepResult gpu;  ///< populated only for kGpu scenarios
};

/// Evaluates one scenario against `eval` (the serial reference path; the
/// parallel runner calls exactly this per index).
ScenarioResult evaluate_scenario(const Scenario& s, Evaluator& eval);

struct SweepOptions {
  /// Worker threads; 0 uses std::thread::hardware_concurrency().
  int threads = 0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  /// Runs scenario `i` on the pool for every i; results come back in input
  /// order, identical to calling evaluate_scenario serially.
  std::vector<ScenarioResult> run(const std::vector<Scenario>& scenarios,
                                  Evaluator& eval) const;

  /// Parallel for over [0, n): each index is claimed once by some worker.
  /// `fn` must be safe to call concurrently for distinct indices.
  void for_each_index(int n, const std::function<void(int)>& fn) const;

  /// Generic ordered parallel map for consumers whose unit of work is not a
  /// Scenario (e.g. the training benches): executes `jobs` on the pool and
  /// returns their results in input order. R must be default-constructible.
  template <typename R>
  std::vector<R> map(const std::vector<std::function<R()>>& jobs) const {
    std::vector<R> out(jobs.size());
    for_each_index(static_cast<int>(jobs.size()),
                   [&](int i) { out[static_cast<std::size_t>(i)] = jobs[static_cast<std::size_t>(i)](); });
    return out;
  }

  /// Threads that would be used for `n` jobs (bounded by both).
  int thread_count(int n) const;

 private:
  SweepOptions opts_;
};

}  // namespace mbs::engine
