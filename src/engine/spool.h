// SpoolQueue: a filesystem work queue for multi-process sweep drains.
//
// Static sharding (MBS_SHARD) splits a grid round-robin at launch time; a
// spool splits it dynamically. N independent worker processes point at one
// spool directory (MBS_SPOOL_DIR) and claim work units — schedule-key
// groups of the grid — whenever they go idle, so an unbalanced grid drains
// at the speed of the fleet rather than of its slowest static shard.
//
// The protocol is files and atomic renames, the same trick
// CacheStore::save uses — no server, no locks:
//
//   <dir>/manifest       grid fingerprint + unit count (rejects a worker
//                        whose grid differs from the queue's)
//   <dir>/todo/u<k>      unit k is unclaimed
//   <dir>/claimed/u<k>.g<gen>.<host>.<pid>
//                        unit k is being evaluated; <gen> counts how many
//                        times the unit has been claimed, <host>.<pid>
//                        identifies the owner
//   <dir>/done/u<k>      unit k's results are in the shared cache store
//   <dir>/failed/u<k>    unit k killed its owner <gen> times in a row and
//                        is quarantined with diagnostics (poisoned unit)
//
// A claim is `rename(todo/u<k>, claimed/u<k>.g1.<host>.<pid>)`: rename(2)
// is atomic, so exactly one racing worker wins. Completion writes the done
// marker (temp + rename) *before* unlinking the claim, so a unit is always
// visible in at least one state.
//
// Crash recovery distinguishes owners by host. A same-host owner is probed
// with kill(pid, 0); a cross-host pid is meaningless, so foreign claims are
// declared dead only when their lease expires — the claim file's mtime is
// older than MBS_SPOOL_LEASE_MS. Live owners refresh the mtime via
// refresh_claim() heartbeats while a long unit evaluates, so a slow unit
// is never falsely reclaimed. Reclaim is a *takeover*: the stale claim is
// renamed directly to `u<k>.g<gen+1>.<newhost>.<newpid>` — one atomic
// step, one winner, and the generation stamp means two reclaimers can
// never both think they own the unit (the double-reclaim ABA of a
// claim→todo→claim round trip). A unit whose generation would exceed
// MBS_SPOOL_POISON_LIMIT moves to failed/ with diagnostics instead of
// killing workers forever; failed units count toward all_done() so the
// fleet drains past them.
//
// Workers share *results* through the concurrent CacheStore (flushed per
// unit), not through the queue: after the drain each worker materializes
// the full sweep warm from the store, so every worker's output is
// byte-identical to a single-process, unsharded run. Rare races (a unit
// re-created after a claim/done was concurrently erased by init) at worst
// re-execute deterministic memoized work — never corrupt it.
//
// Every mutation routes through util::fs named fault sites
// (spool.claim.rename, spool.reclaim.rename, spool.done.write, ...), so
// MBS_FAULTS can deterministically kill a worker at any protocol step.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mbs::engine {

class SpoolQueue {
 public:
  /// A queue at `dir` for a grid with `units` work units and the given
  /// content fingerprint (util::fnv1a64 over the units' member cache
  /// keys). Callers normally embed the fingerprint in `dir` too, so
  /// different grids sharing one MBS_SPOOL_DIR root get disjoint queues.
  SpoolQueue(std::string dir, std::uint64_t fingerprint, std::size_t units);

  /// Creates the directories, the manifest, and one todo file per unit not
  /// already claimed, done, or failed. Idempotent, and safe to race with
  /// other workers' init. Aborts with a message when `dir` already holds a
  /// queue for a different grid (fingerprint or unit-count mismatch) —
  /// mixing grids in one queue would corrupt both drains.
  void init();

  /// Claims one unit and returns its index, or -1 when nothing is
  /// claimable right now (every remaining unit is done, failed, or held
  /// by a live worker). Stale claims — same-host owner dead by pid probe,
  /// or foreign owner's lease expired — are taken over directly with a
  /// bumped generation; a unit at the poison limit moves to failed/.
  int claim();

  /// Heartbeat: bumps the mtime of this process's claim on `unit` so its
  /// lease stays fresh while a long evaluation runs. Returns false when
  /// this process holds no claim on `unit` (e.g. it was never claimed
  /// here). Thread-safe against claim()/mark_done().
  bool refresh_claim(int unit);

  /// Marks `unit` done and releases this process's claim. Idempotent.
  void mark_done(int unit);

  std::size_t done_count() const;
  /// Units quarantined in failed/ (poisoned: killed too many workers).
  std::size_t failed_count() const;
  /// Done or failed — a poisoned unit must not livelock the fleet.
  bool all_done() const { return done_count() + failed_count() >= units_; }
  std::size_t unit_count() const { return units_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string claim_name(int unit, long gen) const;

  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  std::size_t units_ = 0;
  std::string host_;

  mutable std::mutex mu_;
  /// unit -> full path of the claim this process currently holds.
  std::unordered_map<int, std::string> claim_paths_;
};

}  // namespace mbs::engine
