// SpoolQueue: a filesystem work queue for multi-process sweep drains.
//
// Static sharding (MBS_SHARD) splits a grid round-robin at launch time; a
// spool splits it dynamically. N independent worker processes point at one
// spool directory (MBS_SPOOL_DIR) and claim work units — schedule-key
// groups of the grid — whenever they go idle, so an unbalanced grid drains
// at the speed of the fleet rather than of its slowest static shard.
//
// The protocol is files and atomic renames, the same trick
// CacheStore::save uses — no server, no locks:
//
//   <dir>/manifest       grid fingerprint + unit count (rejects a worker
//                        whose grid differs from the queue's)
//   <dir>/todo/u<k>      unit k is unclaimed
//   <dir>/claimed/u<k>.<pid>  unit k is being evaluated by <pid>
//   <dir>/done/u<k>      unit k's results are in the shared cache store
//
// A claim is `rename(todo/u<k>, claimed/u<k>.<pid>)`: rename(2) is atomic,
// so exactly one racing worker wins. Completion writes the done marker
// (temp + rename) *before* unlinking the claim, so a unit is always
// visible in at least one state. Crash recovery: a claim whose owner pid
// no longer exists (kill(pid, 0) == ESRCH) is renamed back into todo/ by
// whichever live worker notices first — again atomic, one winner.
//
// Workers share *results* through the concurrent CacheStore (flushed per
// unit), not through the queue: after the drain each worker materializes
// the full sweep warm from the store, so every worker's output is
// byte-identical to a single-process, unsharded run. Rare races (a unit
// re-created after a claim/done was concurrently erased by init) at worst
// re-execute deterministic memoized work — never corrupt it.
//
// Liveness checks use pid probing, so all workers of one queue must run on
// one machine (they share a filesystem and a pid namespace).
#pragma once

#include <cstdint>
#include <string>

namespace mbs::engine {

class SpoolQueue {
 public:
  /// A queue at `dir` for a grid with `units` work units and the given
  /// content fingerprint (util::fnv1a64 over the units' member cache
  /// keys). Callers normally embed the fingerprint in `dir` too, so
  /// different grids sharing one MBS_SPOOL_DIR root get disjoint queues.
  SpoolQueue(std::string dir, std::uint64_t fingerprint, std::size_t units);

  /// Creates the directories, the manifest, and one todo file per unit not
  /// already claimed or done. Idempotent, and safe to race with other
  /// workers' init. Aborts with a message when `dir` already holds a queue
  /// for a different grid (fingerprint or unit-count mismatch) — mixing
  /// grids in one queue would corrupt both drains.
  void init();

  /// Claims one unit and returns its index, or -1 when nothing is
  /// claimable right now (every remaining unit is done or held by a live
  /// worker). Stale claims of dead workers are reclaimed first.
  int claim();

  /// Marks `unit` done and releases this process's claim. Idempotent.
  void mark_done(int unit);

  std::size_t done_count() const;
  bool all_done() const { return done_count() >= units_; }
  std::size_t unit_count() const { return units_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::uint64_t fingerprint_ = 0;
  std::size_t units_ = 0;
};

}  // namespace mbs::engine
