#include "engine/scenario.h"

#include <cstdio>
#include <cstdlib>

#include "arch/dataflow.h"

namespace mbs::engine {

namespace {

/// Appends one `name=value` field to a key. Doubles print with %.17g so
/// distinct configurations can never collide after rounding.
void field(std::string& key, const char* name, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g;", name, v);
  key += buf;
}

void field(std::string& key, const char* name, std::int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%lld;", name,
                static_cast<long long>(v));
  key += buf;
}

void field(std::string& key, const char* name, int v) {
  field(key, name, static_cast<std::int64_t>(v));
}

void field(std::string& key, const char* name, bool v) {
  key += name;
  key += v ? "=1;" : "=0;";
}

void field(std::string& key, const char* name, const std::string& v) {
  key += name;
  key += '=';
  key += v;
  key += ';';
}

}  // namespace

const char* to_string(Device d) {
  switch (d) {
    case Device::kWaveCore: return "WaveCore";
    case Device::kGpu: return "GPU";
    case Device::kSystolic: return "Systolic";
  }
  return "?";
}

std::string Scenario::network_key() const {
  // The bare name at the default sequence length, so every pre-seq network
  // key keeps its exact bytes.
  if (seq == 0) return network;
  return network + ";seq=" + std::to_string(seq);
}

std::string Scenario::schedule_key() const {
  std::string key;
  field(key, "net", network);
  field(key, "cfg", std::string(sched::to_string(config)));
  field(key, "buf", params.buffer_bytes);
  field(key, "mb", params.mini_batch);
  field(key, "opt", params.optimal_grouping);
  field(key, "ft", static_cast<int>(params.feature_type));
  // Appended only when non-default so every pre-variant key keeps its
  // exact bytes and the key space never fragments as axes accrue. No
  // collision is possible: default keys end in the ft field, never in a
  // var field.
  if (params.variant != sched::GroupingVariant::kContiguous)
    field(key, "var", static_cast<int>(params.variant));
  if (seq != 0) field(key, "seq", seq);
  return key;
}

std::string Scenario::cache_key() const {
  if (device == Device::kGpu) {
    std::string key;
    field(key, "dev", std::string("gpu"));
    field(key, "net", network);
    if (seq != 0) field(key, "seq", seq);
    field(key, "gmb", gpu_mini_batch);
    field(key, "flops", gpu.peak_flops);
    field(key, "bw", gpu.mem_bw_bytes);
    field(key, "sm", gpu.sm_count);
    field(key, "tile", gpu.tile);
    field(key, "bps", gpu.blocks_per_sm);
    field(key, "ko", gpu.kernel_overhead_s);
    field(key, "eff", gpu.gemm_efficiency);
    field(key, "im2col", gpu.materialize_im2col);
    return key;
  }
  std::string key;
  // Like params.variant in schedule_key(): the device tag appears only for
  // non-default devices, so every pre-existing kWaveCore key keeps its
  // exact bytes. No collision is possible: kWaveCore keys start with the
  // net field, never with a dev field.
  if (device == Device::kSystolic) field(key, "dev", std::string("systolic"));
  key += schedule_key();
  field(key, "rows", hw.systolic.rows);
  field(key, "cols", hw.systolic.cols);
  field(key, "clk", hw.systolic.clock_hz);
  field(key, "acc", hw.systolic.acc_half_bytes);
  field(key, "mem", hw.memory.name);
  field(key, "membw", hw.memory.bandwidth_bytes_per_s);
  field(key, "memcap", hw.memory.capacity_bytes);
  field(key, "memch", hw.memory.channels);
  field(key, "mempj", hw.memory.energy_pj_per_byte);
  field(key, "cores", hw.cores);
  field(key, "gbuf", hw.global_buffer_bytes);
  field(key, "gbw", hw.buffer_bw_bytes);
  field(key, "vflops", hw.vector_flops);
  field(key, "edram", hw.energy.dram_pj_per_byte);
  field(key, "ebuf", hw.energy.buffer_pj_per_byte);
  field(key, "emac", hw.energy.mac_pj);
  field(key, "evec", hw.energy.vector_op_pj);
  field(key, "ezero", hw.energy.zero_skip_fraction);
  field(key, "estat", hw.energy.static_power_w);
  field(key, "nobw", hw.unlimited_dram_bw);
  if (device == Device::kSystolic) {
    field(key, "df", std::string(arch::to_string(systolic.dataflow)));
    field(key, "spad", systolic.scratchpad_bytes);
  }
  return key;
}

namespace {

bool parse_i64(const std::string& v, std::int64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (!end || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool parse_bool(const std::string& v, bool* out) {
  if (v == "0")
    *out = false;
  else if (v == "1")
    *out = true;
  else
    return false;
  return true;
}

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && (s[a] == ' ' || s[a] == '\t')) ++a;
  while (b > a && (s[b - 1] == ' ' || s[b - 1] == '\t')) --b;
  return s.substr(a, b - a);
}

}  // namespace

bool parse_scenario(const std::string& spec, Scenario* out,
                    std::string* error) {
  Scenario s;
  bool have_net = false;
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string tok = trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (tok.empty()) continue;  // stray/trailing semicolons are fine
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos)
      return fail("field '" + tok + "': expected key=value");
    const std::string key = trim(tok.substr(0, eq));
    const std::string value = trim(tok.substr(eq + 1));
    std::int64_t i64 = 0;
    bool b = false;
    if (key == "net") {
      s.network = value;
      have_net = !value.empty();
    } else if (key == "seq") {
      if (!parse_i64(value, &i64) || i64 < 0)
        return fail("bad seq '" + value + "': expected tokens >= 0");
      s.seq = static_cast<int>(i64);
    } else if (key == "cfg") {
      if (!sched::parse_exec_config(value.c_str(), &s.config))
        return fail("unknown cfg '" + value +
                    "' (Baseline|ArchOpt|IL|MBS-FS|MBS1|MBS2)");
    } else if (key == "buf") {
      if (!parse_i64(value, &i64) || i64 <= 0)
        return fail("bad buf '" + value + "': expected bytes > 0");
      s.params.buffer_bytes = i64;
    } else if (key == "mb") {
      if (!parse_i64(value, &i64) || i64 < 0)
        return fail("bad mb '" + value + "'");
      s.params.mini_batch = static_cast<int>(i64);
    } else if (key == "opt") {
      if (!parse_bool(value, &b)) return fail("bad opt '" + value + "'");
      s.params.optimal_grouping = b;
    } else if (key == "var") {
      if (value == "contiguous")
        s.params.variant = sched::GroupingVariant::kContiguous;
      else if (value == "noncontiguous")
        s.params.variant = sched::GroupingVariant::kNonContiguous;
      else
        return fail("bad var '" + value + "' (contiguous|noncontiguous)");
    } else if (key == "dev") {
      if (value == "wavecore")
        s.device = Device::kWaveCore;
      else if (value == "gpu")
        s.device = Device::kGpu;
      else if (value == "systolic")
        s.device = Device::kSystolic;
      else
        return fail("bad dev '" + value + "' (wavecore|gpu|systolic)");
    } else if (key == "df") {
      if (!arch::parse_dataflow(value.c_str(), &s.systolic.dataflow))
        return fail("bad df '" + value + "' (os|ws|is)");
    } else if (key == "spad") {
      if (!parse_i64(value, &i64) || i64 <= 0)
        return fail("bad spad '" + value + "': expected bytes > 0");
      s.systolic.scratchpad_bytes = i64;
    } else if (key == "gmb") {
      if (!parse_i64(value, &i64) || i64 <= 0)
        return fail("bad gmb '" + value + "'");
      s.gpu_mini_batch = static_cast<int>(i64);
    } else if (key == "nobw") {
      if (!parse_bool(value, &b)) return fail("bad nobw '" + value + "'");
      s.hw.unlimited_dram_bw = b;
    } else if (key == "stage") {
      if (value == "network")
        s.stage = Stage::kNetwork;
      else if (value == "schedule")
        s.stage = Stage::kSchedule;
      else if (value == "traffic")
        s.stage = Stage::kTraffic;
      else if (value == "simulate")
        s.stage = Stage::kSimulate;
      else
        return fail("bad stage '" + value +
                    "' (network|schedule|traffic|simulate)");
    } else {
      return fail("unknown field '" + key + "'");
    }
  }
  if (!have_net) return fail("missing required field net=<network>");
  *out = s;
  return true;
}

std::vector<Scenario> scenario_grid(
    const std::vector<std::string>& networks,
    const std::vector<sched::ExecConfig>& configs,
    const sched::ScheduleParams& params, const sim::WaveCoreConfig& hw,
    Stage stage) {
  std::vector<Scenario> out;
  out.reserve(networks.size() * configs.size());
  for (const std::string& net : networks)
    for (sched::ExecConfig cfg : configs) {
      Scenario s;
      s.network = net;
      s.config = cfg;
      s.params = params;
      s.hw = hw;
      s.stage = stage;
      out.push_back(std::move(s));
    }
  return out;
}

}  // namespace mbs::engine
