#include "engine/serve.h"

#include <cstdio>
#include <exception>

#include "engine/cache_store.h"
#include "engine/evaluator.h"
#include "engine/sweep_runner.h"
#include "models/zoo.h"

namespace mbs::engine {

namespace {

void num(std::string& out, const char* name, double v) {
  char buf[64];
  // %.17g round-trips doubles exactly: equal strings <=> equal bits.
  std::snprintf(buf, sizeof buf, "%s%s=%.17g", out.empty() ? "" : " ", name,
                v);
  out += buf;
}

void num(std::string& out, const char* name, std::int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%s=%lld", out.empty() ? "" : " ", name,
                static_cast<long long>(v));
  out += buf;
}

}  // namespace

std::string ServeCore::format_answer(const Scenario& s,
                                     const ScenarioResult& r) {
  std::string out;
  if (s.device == Device::kGpu) {
    num(out, "time_s", r.gpu.time_s);
    num(out, "dram_bytes", r.gpu.dram_bytes);
    num(out, "compute_s", r.gpu.compute_time_s);
    num(out, "memory_s", r.gpu.memory_time_s);
    num(out, "overhead_s", r.gpu.overhead_s);
    return out;
  }
  if (s.stage == Stage::kNetwork) {
    num(out, "blocks", static_cast<std::int64_t>(r.network->blocks.size()));
    num(out, "layers", static_cast<std::int64_t>(r.network->layer_count()));
    num(out, "params", r.network->param_count());
    return out;
  }
  if (s.stage == Stage::kSchedule) {
    num(out, "mb", static_cast<std::int64_t>(r.schedule->mini_batch));
    num(out, "groups", static_cast<std::int64_t>(r.schedule->groups.size()));
    for (std::size_t i = 0; i < r.schedule->groups.size(); ++i) {
      const sched::Group& g = r.schedule->groups[i];
      char buf[96];
      std::snprintf(buf, sizeof buf, " g%zu=%d-%d/%dx%d", i, g.first, g.last,
                    g.sub_batch, g.iterations);
      out += buf;
    }
    return out;
  }
  if (s.stage == Stage::kTraffic) {
    num(out, "records", static_cast<std::int64_t>(r.traffic->records.size()));
    num(out, "dram_bytes", r.traffic->dram_bytes());
    return out;
  }
  if (s.device == Device::kSystolic) {
    num(out, "comp_cycles", r.systolic.stats.comp_cycles);
    num(out, "stall_cycles", r.systolic.stats.stall_cycles);
    num(out, "util", r.systolic.stats.util);
    num(out, "mapping_eff", r.systolic.stats.mapping_eff);
    num(out, "time_s", r.systolic.time_s);
    num(out, "dram_bytes", r.systolic.dram_bytes);
    return out;
  }
  num(out, "time_s", r.step.time_s);
  num(out, "dram_bytes", r.step.dram_bytes);
  num(out, "buffer_bytes", r.step.buffer_bytes);
  num(out, "macs", r.step.total_macs);
  num(out, "util", r.step.systolic_utilization);
  num(out, "compute_s", r.step.compute_time_s);
  num(out, "memory_s", r.step.memory_time_s);
  num(out, "energy_j", r.step.energy.dram_j + r.step.energy.buffer_j +
                           r.step.energy.mac_j + r.step.energy.vector_j +
                           r.step.energy.static_j);
  return out;
}

ServeCore::ServeCore(CacheStore* store, std::size_t hot_capacity)
    : store_(store), hot_(hot_capacity) {}

ServeCore::Answer ServeCore::query(const std::string& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;

  Scenario s;
  std::string error;
  if (!parse_scenario(spec, &s, &error)) {
    ++stats_.errors;
    return {false, "bad query: " + error, Source::kError};
  }
  // Validate the network name up front: an unknown name must be a clean
  // error answer, not a died-in-the-model-zoo daemon.
  bool known = false;
  for (const std::string& name : models::all_network_names())
    known = known || name == s.network;
  if (!known) {
    ++stats_.errors;
    return {false, "unknown network '" + s.network + "'", Source::kError};
  }
  // Same for the sequence-length override: seq on a CNN or a non-square
  // ViT grid would assert inside the model zoo.
  std::string seq_why;
  if (!models::valid_sequence_length(s.network, s.seq, &seq_why)) {
    ++stats_.errors;
    return {false, "bad query: " + seq_why, Source::kError};
  }

  // The stage is not part of cache_key (stages memoize independently), but
  // two queries differing only in depth have different answers.
  const std::string key =
      s.cache_key() + "#stage=" + std::to_string(static_cast<int>(s.stage));
  if (const std::string* hit = hot_.get(key)) {
    ++stats_.hot_hits;
    return {true, *hit, Source::kHot};
  }

  // Short-lived evaluator: all cross-query reuse lives in the LRU and the
  // store, keeping the daemon's footprint bounded by the hot capacity.
  // Any failure in here — including store corruption discovered mid-read,
  // which quarantines the bad entry and recomputes — must stay confined
  // to this query: the daemon answers it (or errors it) and lives on.
  const std::size_t corrupt_before = store_ ? store_->corrupt_entries() : 0;
  Evaluator eval(store_);
  ScenarioResult r;
  try {
    r = evaluate_scenario(s, eval);
  } catch (const std::exception& e) {
    ++stats_.errors;
    return {false, std::string("evaluation failed: ") + e.what(),
            Source::kError};
  }
  if (store_ && store_->corrupt_entries() > corrupt_before)
    ++stats_.degraded;
  const EvaluatorStats st = eval.stats();
  const std::int64_t misses = st.network_misses + st.schedule_misses +
                              st.traffic_misses + st.step_misses +
                              st.gpu_misses + st.systolic_misses;
  const std::int64_t disk = st.network_disk_hits + st.schedule_disk_hits +
                            st.traffic_disk_hits + st.step_disk_hits +
                            st.gpu_disk_hits + st.systolic_disk_hits;
  if (misses == disk) {
    ++stats_.store_hits;
  } else {
    ++stats_.computed;
    // Write-through: the next process (or crash-restarted daemon) starts
    // warm for this key.
    if (store_) store_->save();
  }
  std::string text = format_answer(s, r);
  hot_.put(key, text);
  return {true, std::move(text),
          misses == disk ? Source::kStore : Source::kComputed};
}

ServeStats ServeCore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mbs::engine
