// Driver: the shared command-line front end of every bench and example.
//
// One object owns the engine plumbing a sweep binary needs — shard plan,
// disk cache store, evaluator, thread pool — and parses the flags/env vars
// that configure them, so the 18 mains stay declarative (grid + rows) and
// pick up new engine features without per-binary changes.
//
// Flags (all optional; unrecognized arguments stay available via args()
// for binaries with positional parameters):
//   --shard=I/N | --shard-index=I --shard-count=N
//       run shard I of N (env: MBS_SHARD=I/N). Benches gate their output
//       rows with shard().owns(row); ResultSink exports gain a
//       ".shardIofN" infix and merge byte-identically via merge_results.
//   --threads=T     sweep worker threads (env: MBS_THREADS; 0 = hardware)
//   --cache-dir=D   persist the evaluator cache under D
//                   (env: MBS_CACHE_DIR); repeated runs start warm
//   --spool-dir=D   drain sweeps through a work-queue spool rooted at D
//                   (env: MBS_SPOOL_DIR): concurrent worker processes
//                   sharing D claim schedule-key groups dynamically and
//                   share results through the cache store (defaulted to
//                   D/cache when no --cache-dir/MBS_CACHE_DIR is given),
//                   each producing byte-identical full output. See
//                   engine/spool.h.
//
// Env only:
//   MBS_RESULT_DIR    ResultSink CSV/JSON export directory
//   MBS_ENGINE_STATS  =1: print per-stage computed/disk-loaded counts and
//                     cache-store activity to stderr at exit
//   MBS_NO_SCHEDULE_GROUPS  =1: disable SweepRunner's schedule-group
//                     batching (A/B timing; output is byte-identical)
//   MBS_NO_CONV_CACHE =1: disable the training substrate's forward-to-
//                     backward im2col reuse (A/B timing; byte-identical)
//
// The destructor saves the cache store, so a bench persists whatever it
// computed for the next (warm) run.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/cache_store.h"
#include "engine/evaluator.h"
#include "engine/result_sink.h"
#include "engine/sweep_runner.h"

namespace mbs::engine {

class Driver {
 public:
  /// Parses flags and environment; aborts with a usage message on a
  /// malformed flag value.
  Driver(int argc, char** argv);
  ~Driver();

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  const ShardPlan& shard() const { return shard_; }
  Evaluator& evaluator() { return *eval_; }
  /// The disk cache store (nullptr when neither --cache-dir, MBS_CACHE_DIR,
  /// nor a spool directory is configured).
  CacheStore* store() { return store_.get(); }
  const SweepRunner& runner() const { return runner_; }
  /// Positional arguments, in order (flags stripped).
  const std::vector<std::string>& args() const { return args_; }

  /// Sharded sweep over this driver's evaluator and pool: scenarios the
  /// shard owns are evaluated eagerly in parallel, the rest materialize
  /// lazily on access (see SweepResults).
  SweepResults run(const std::vector<Scenario>& grid);

  /// As run(), for benches whose output rows aggregate several scenarios:
  /// `needed(i)` says whether scenario i feeds a row this shard owns and
  /// should therefore be evaluated eagerly.
  SweepResults run(const std::vector<Scenario>& grid,
                   const std::function<bool(std::size_t)>& needed);

 private:
  ShardPlan shard_;
  std::unique_ptr<CacheStore> store_;
  std::unique_ptr<Evaluator> eval_;
  SweepRunner runner_;
  std::vector<std::string> args_;
};

/// Adds `rows` to `sink`, keeping the ones `plan` owns (ordinal = position
/// in `rows`). The row-gating idiom for fixed tables whose contents don't
/// come out of a results loop.
inline void add_rows(ResultSink& sink, const ShardPlan& plan,
                     std::vector<std::vector<std::string>> rows) {
  for (std::size_t i = 0; i < rows.size(); ++i)
    if (plan.owns(i)) sink.add_row(std::move(rows[i]));
}

}  // namespace mbs::engine
