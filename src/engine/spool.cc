#include "engine/spool.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/env.h"
#include "util/fault.h"
#include "util/serde.h"

namespace mbs::engine {

namespace fs = std::filesystem;

namespace {

constexpr int kManifestVersion = 1;

/// Parses "u<k>" (optionally followed by `.`-anything); -1 when malformed.
int unit_of(const std::string& name) {
  if (name.size() < 2 || name[0] != 'u') return -1;
  int k = 0;
  std::size_t i = 1;
  for (; i < name.size() && name[i] >= '0' && name[i] <= '9'; ++i)
    k = k * 10 + (name[i] - '0');
  if (i == 1) return -1;
  if (i != name.size() && name[i] != '.') return -1;
  return k;
}

/// A parsed claim name "u<k>.g<gen>.<host>.<pid>". The host may itself
/// contain dots (an FQDN): the pid is everything after the *last* dot, the
/// host everything between the generation stamp and that.
struct ClaimInfo {
  int unit = -1;
  long gen = 0;
  std::string host;
  long pid = -1;
};

bool parse_claim(const std::string& name, ClaimInfo* out) {
  out->unit = unit_of(name);
  if (out->unit < 0) return false;
  const std::size_t first_dot = name.find('.');
  if (first_dot == std::string::npos || first_dot + 2 >= name.size() ||
      name[first_dot + 1] != 'g')
    return false;
  char* end = nullptr;
  out->gen = std::strtol(name.c_str() + first_dot + 2, &end, 10);
  if (end == name.c_str() + first_dot + 2 || *end != '.' || out->gen <= 0)
    return false;
  const std::size_t host_start =
      static_cast<std::size_t>(end - name.c_str()) + 1;
  const std::size_t last_dot = name.rfind('.');
  if (last_dot == std::string::npos || last_dot < host_start + 1) return false;
  out->host = name.substr(host_start, last_dot - host_start);
  if (out->host.empty()) return false;
  char* pend = nullptr;
  out->pid = std::strtol(name.c_str() + last_dot + 1, &pend, 10);
  return pend != name.c_str() + last_dot + 1 && *pend == '\0' && out->pid > 0;
}

bool process_alive(long pid) {
  // kill(pid, 0) probes existence without signaling. EPERM would mean
  // "exists but not ours" — workers share a uid, so treat only ESRCH as
  // dead and anything else as alive (never steal a live worker's claim).
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

/// True when the claim file's mtime is older than `lease_ms`. A missing
/// file (someone else already took it over) counts as not expired.
bool lease_expired(const std::string& path, long lease_ms) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  struct timespec now;
  ::clock_gettime(CLOCK_REALTIME, &now);
  const long age_ms =
      (now.tv_sec - st.st_mtim.tv_sec) * 1000L +
      (now.tv_nsec - st.st_mtim.tv_nsec) / 1000000L;
  return age_ms > lease_ms;
}

/// rename(2) preserves the source's mtime, so a freshly taken claim would
/// instantly look lease-expired; every successful claim rename is followed
/// by an mtime touch.
void touch(const std::string& path) {
  ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
}

std::string this_host() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) != 0 || !buf[0]) return "localhost";
  return buf;
}

long lease_ms_env() {
  return util::env_int("MBS_SPOOL_LEASE_MS", 60000, 100, 86400000);
}

long poison_limit_env() {
  return util::env_int("MBS_SPOOL_POISON_LIMIT", 3, 1, 1000000);
}

}  // namespace

SpoolQueue::SpoolQueue(std::string dir, std::uint64_t fingerprint,
                       std::size_t units)
    : dir_(std::move(dir)),
      fingerprint_(fingerprint),
      units_(units),
      host_(this_host()) {}

std::string SpoolQueue::claim_name(int unit, long gen) const {
  return dir_ + "/claimed/u" + std::to_string(unit) + ".g" +
         std::to_string(gen) + "." + host_ + "." +
         std::to_string(static_cast<long>(::getpid()));
}

void SpoolQueue::init() {
  std::error_code ec;
  fs::create_directories(dir_ + "/todo", ec);
  fs::create_directories(dir_ + "/claimed", ec);
  fs::create_directories(dir_ + "/done", ec);
  fs::create_directories(dir_ + "/failed", ec);

  const std::string manifest = dir_ + "/manifest";
  {
    std::string text;
    if (util::fs::read_file(manifest, &text, "spool.manifest.read")) {
      util::serde::Reader r(text);
      const bool magic_ok = r.read_string() == "mbs-spool" &&
                            r.read_int() == kManifestVersion;
      const std::uint64_t fp = static_cast<std::uint64_t>(r.read_int());
      const std::int64_t n = r.read_int();
      if (!magic_ok || r.fail() || fp != fingerprint_ ||
          n != static_cast<std::int64_t>(units_)) {
        std::fprintf(stderr,
                     "SpoolQueue: %s already holds a different grid "
                     "(manifest says fingerprint %016llx over %lld units, "
                     "this grid is %016llx over %zu); refusing to mix "
                     "grids in one spool\n",
                     dir_.c_str(), static_cast<unsigned long long>(fp),
                     static_cast<long long>(n),
                     static_cast<unsigned long long>(fingerprint_), units_);
        std::abort();
      }
    } else {
      util::serde::Writer w;
      w.put_string("mbs-spool");
      w.put_int(kManifestVersion);
      w.put_int(static_cast<std::int64_t>(fingerprint_));
      w.put_int(static_cast<std::int64_t>(units_));
      // Racing workers write identical bytes; the atomic rename makes the
      // last one a no-op.
      if (!util::fs::write_atomic(manifest, w.str() + "\n",
                                  "spool.manifest.write")) {
        std::fprintf(stderr, "SpoolQueue: cannot write %s\n",
                     manifest.c_str());
        std::abort();
      }
    }
  }

  // Seed todo/ with every unit not already claimed, done, or failed. The
  // existence checks and the O_EXCL create are not one atomic step, so a
  // unit that finishes in the gap can be re-created and re-executed —
  // harmless: the work is deterministic and memoized, and mark_done is
  // idempotent.
  std::set<int> busy;
  for (const char* sub : {"/claimed", "/done", "/failed"}) {
    std::error_code it_ec;
    for (const auto& entry : fs::directory_iterator(dir_ + sub, it_ec)) {
      const int k = unit_of(entry.path().filename().string());
      if (k >= 0) busy.insert(k);
    }
  }
  for (std::size_t k = 0; k < units_; ++k) {
    if (busy.count(static_cast<int>(k))) continue;
    util::fs::create_exclusive(dir_ + "/todo/u" + std::to_string(k), "",
                               "spool.todo.create");
  }
}

int SpoolQueue::claim() {
  // Fresh units first: whatever is in todo/.
  std::vector<int> candidates;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_ + "/todo", ec)) {
    const int k = unit_of(entry.path().filename().string());
    if (k >= 0 && static_cast<std::size_t>(k) < units_)
      candidates.push_back(k);
  }
  for (int k : candidates) {
    const std::string from = dir_ + "/todo/u" + std::to_string(k);
    const std::string to = claim_name(k, 1);
    // Atomic: exactly one racing worker's rename succeeds.
    if (util::fs::rename_file(from, to, "spool.claim.rename")) {
      touch(to);  // rename kept todo/'s old mtime; start the lease now
      std::lock_guard<std::mutex> lock(mu_);
      claim_paths_[k] = to;
      return k;
    }
  }

  // Nothing fresh: look for stale claims. A same-host owner is dead when
  // its pid is gone; a foreign owner is dead when its lease expired (pids
  // don't travel between machines, mtimes on a shared filesystem do).
  const long lease_ms = lease_ms_env();
  const long poison_limit = poison_limit_env();
  for (const auto& entry : fs::directory_iterator(dir_ + "/claimed", ec)) {
    const std::string name = entry.path().filename().string();
    ClaimInfo ci;
    if (!parse_claim(name, &ci)) continue;
    if (static_cast<std::size_t>(ci.unit) >= units_) continue;
    const std::string claim = dir_ + "/claimed/" + name;
    if (ci.host == host_) {
      if (process_alive(ci.pid)) continue;
    } else if (!lease_expired(claim, lease_ms)) {
      continue;
    }
    if (fs::exists(dir_ + "/done/u" + std::to_string(ci.unit), ec)) {
      // Crashed after completing: results are already in the store; just
      // drop the stale claim.
      util::fs::remove_file(claim, "spool.claim.unlink");
      continue;
    }
    if (ci.gen >= poison_limit) {
      // The unit has now killed `gen` consecutive owners: quarantine it
      // instead of feeding it another worker. The rename is the atomic
      // hand-off; the diagnostics overwrite a file we then own.
      const std::string failed = dir_ + "/failed/u" + std::to_string(ci.unit);
      if (util::fs::rename_file(claim, failed, "spool.failed.rename")) {
        std::fprintf(stderr,
                     "SpoolQueue: unit %d poisoned after %ld failed claims "
                     "(last owner %s.%ld); quarantined in failed/\n",
                     ci.unit, ci.gen, ci.host.c_str(), ci.pid);
        util::fs::write_atomic(
            failed,
            "poisoned unit " + std::to_string(ci.unit) + " after " +
                std::to_string(ci.gen) + " failed claims; last owner " +
                ci.host + "." + std::to_string(ci.pid) + "\n",
            "spool.failed.write");
      }
      continue;
    }
    std::fprintf(stderr,
                 "SpoolQueue: reclaiming unit %d from dead worker %ld "
                 "(claim generation %ld)\n",
                 ci.unit, ci.pid, ci.gen);
    // Takeover: rename the stale claim straight to ours with a bumped
    // generation. One atomic step — racing reclaimers can't both win, and
    // the old claim name ceases to exist, so nobody can reclaim it twice.
    const std::string to = claim_name(ci.unit, ci.gen + 1);
    if (util::fs::rename_file(claim, to, "spool.reclaim.rename")) {
      touch(to);
      std::lock_guard<std::mutex> lock(mu_);
      claim_paths_[ci.unit] = to;
      return ci.unit;
    }
  }
  return -1;
}

bool SpoolQueue::refresh_claim(int unit) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = claim_paths_.find(unit);
    if (it == claim_paths_.end()) return false;
    path = it->second;
  }
  touch(path);
  return true;
}

void SpoolQueue::mark_done(int unit) {
  const std::string done = dir_ + "/done/u" + std::to_string(unit);
  // Done marker first (temp + rename: atomic, idempotent), claim release
  // second — the unit is never invisible, so a crash between the two at
  // worst leaves a stale claim that the dead-owner sweep drops.
  if (!util::fs::write_atomic(done, "done\n", "spool.done.write")) {
    std::fprintf(stderr, "SpoolQueue: cannot write %s\n", done.c_str());
    return;  // keep the claim: the unit must not look claimable
  }
  std::string claim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = claim_paths_.find(unit);
    if (it != claim_paths_.end()) {
      claim = it->second;
      claim_paths_.erase(it);
    }
  }
  if (!claim.empty()) util::fs::remove_file(claim, "spool.claim.unlink");
}

std::size_t SpoolQueue::done_count() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_ + "/done", ec)) {
    if (unit_of(entry.path().filename().string()) >= 0) ++n;
  }
  return n;
}

std::size_t SpoolQueue::failed_count() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_ + "/failed", ec)) {
    if (unit_of(entry.path().filename().string()) >= 0) ++n;
  }
  return n;
}

}  // namespace mbs::engine
