#include "engine/spool.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/serde.h"

namespace mbs::engine {

namespace fs = std::filesystem;

namespace {

constexpr int kManifestVersion = 1;

/// Parses "u<k>" (optionally followed by `.`-anything); -1 when malformed.
int unit_of(const std::string& name) {
  if (name.size() < 2 || name[0] != 'u') return -1;
  int k = 0;
  std::size_t i = 1;
  for (; i < name.size() && name[i] >= '0' && name[i] <= '9'; ++i)
    k = k * 10 + (name[i] - '0');
  if (i == 1) return -1;
  if (i != name.size() && name[i] != '.') return -1;
  return k;
}

/// Owner pid from a claim name "u<k>.<pid>"; -1 when malformed.
long pid_of(const std::string& name) {
  const std::size_t dot = name.rfind('.');
  if (dot == std::string::npos || dot + 1 >= name.size()) return -1;
  char* end = nullptr;
  const long pid = std::strtol(name.c_str() + dot + 1, &end, 10);
  return (end && *end == '\0' && pid > 0) ? pid : -1;
}

bool process_alive(long pid) {
  // kill(pid, 0) probes existence without signaling. EPERM would mean
  // "exists but not ours" — workers share a uid, so treat only ESRCH as
  // dead and anything else as alive (never steal a live worker's claim).
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

/// Atomic file creation at `path` (content ignored by readers). Returns
/// false when the path already exists or cannot be created.
bool create_exclusive(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

/// Writes `text` to `path` via temp + atomic rename (clobbers).
bool write_atomic(const std::string& path, const std::string& text) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << text << '\n';
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

SpoolQueue::SpoolQueue(std::string dir, std::uint64_t fingerprint,
                       std::size_t units)
    : dir_(std::move(dir)), fingerprint_(fingerprint), units_(units) {}

void SpoolQueue::init() {
  std::error_code ec;
  fs::create_directories(dir_ + "/todo", ec);
  fs::create_directories(dir_ + "/claimed", ec);
  fs::create_directories(dir_ + "/done", ec);

  const std::string manifest = dir_ + "/manifest";
  {
    std::ifstream in(manifest, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      // Named string: Reader is a view over its argument and must not
      // outlive it.
      const std::string text = buf.str();
      util::serde::Reader r(text);
      const bool magic_ok = r.read_string() == "mbs-spool" &&
                            r.read_int() == kManifestVersion;
      const std::uint64_t fp = static_cast<std::uint64_t>(r.read_int());
      const std::int64_t n = r.read_int();
      if (!magic_ok || r.fail() || fp != fingerprint_ ||
          n != static_cast<std::int64_t>(units_)) {
        std::fprintf(stderr,
                     "SpoolQueue: %s already holds a different grid "
                     "(manifest says fingerprint %016llx over %lld units, "
                     "this grid is %016llx over %zu); refusing to mix "
                     "grids in one spool\n",
                     dir_.c_str(), static_cast<unsigned long long>(fp),
                     static_cast<long long>(n),
                     static_cast<unsigned long long>(fingerprint_), units_);
        std::abort();
      }
    } else {
      util::serde::Writer w;
      w.put_string("mbs-spool");
      w.put_int(kManifestVersion);
      w.put_int(static_cast<std::int64_t>(fingerprint_));
      w.put_int(static_cast<std::int64_t>(units_));
      // Racing workers write identical bytes; the atomic rename makes the
      // last one a no-op.
      if (!write_atomic(manifest, w.str())) {
        std::fprintf(stderr, "SpoolQueue: cannot write %s\n",
                     manifest.c_str());
        std::abort();
      }
    }
  }

  // Seed todo/ with every unit not already claimed or done. The existence
  // checks and the O_EXCL create are not one atomic step, so a unit that
  // finishes in the gap can be re-created and re-executed — harmless: the
  // work is deterministic and memoized, and mark_done is idempotent.
  std::set<int> busy;
  for (const char* sub : {"/claimed", "/done"}) {
    std::error_code it_ec;
    for (const auto& entry : fs::directory_iterator(dir_ + sub, it_ec)) {
      const int k = unit_of(entry.path().filename().string());
      if (k >= 0) busy.insert(k);
    }
  }
  for (std::size_t k = 0; k < units_; ++k) {
    if (busy.count(static_cast<int>(k))) continue;
    create_exclusive(dir_ + "/todo/u" + std::to_string(k));
  }
}

int SpoolQueue::claim() {
  for (int pass = 0; pass < 2; ++pass) {
    // Pass 0: whatever is in todo/. Pass 1: after reclaiming dead
    // workers' claims back into todo/.
    std::vector<int> candidates;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_ + "/todo", ec)) {
      const int k = unit_of(entry.path().filename().string());
      if (k >= 0 && static_cast<std::size_t>(k) < units_)
        candidates.push_back(k);
    }
    for (int k : candidates) {
      const std::string from = dir_ + "/todo/u" + std::to_string(k);
      const std::string to = dir_ + "/claimed/u" + std::to_string(k) + "." +
                             std::to_string(static_cast<long>(::getpid()));
      // Atomic: exactly one racing worker's rename succeeds.
      if (std::rename(from.c_str(), to.c_str()) == 0) return k;
    }
    if (pass == 1) break;

    // Reclaim abandoned claims: owner dead and no done marker.
    bool reclaimed = false;
    for (const auto& entry : fs::directory_iterator(dir_ + "/claimed", ec)) {
      const std::string name = entry.path().filename().string();
      const int k = unit_of(name);
      const long pid = pid_of(name);
      if (k < 0 || pid < 0 || process_alive(pid)) continue;
      const std::string claim = dir_ + "/claimed/" + name;
      if (fs::exists(dir_ + "/done/u" + std::to_string(k), ec)) {
        // Crashed after completing: results are already in the store;
        // just drop the stale claim.
        std::remove(claim.c_str());
        continue;
      }
      std::fprintf(stderr,
                   "SpoolQueue: reclaiming unit %d from dead worker %ld\n",
                   k, pid);
      const std::string back = dir_ + "/todo/u" + std::to_string(k);
      // Racing reclaimers: one rename wins, the loser's just fails.
      if (std::rename(claim.c_str(), back.c_str()) == 0) reclaimed = true;
    }
    if (!reclaimed) break;
  }
  return -1;
}

void SpoolQueue::mark_done(int unit) {
  const std::string done = dir_ + "/done/u" + std::to_string(unit);
  // Done marker first (temp + rename: atomic, idempotent), claim release
  // second — the unit is never invisible, so a crash between the two at
  // worst leaves a stale claim that the dead-owner sweep drops.
  if (!write_atomic(done, std::string("done"))) {
    std::fprintf(stderr, "SpoolQueue: cannot write %s\n", done.c_str());
    return;  // keep the claim: the unit must not look claimable
  }
  const std::string claim = dir_ + "/claimed/u" + std::to_string(unit) + "." +
                            std::to_string(static_cast<long>(::getpid()));
  std::remove(claim.c_str());
}

std::size_t SpoolQueue::done_count() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_ + "/done", ec)) {
    if (unit_of(entry.path().filename().string()) >= 0) ++n;
  }
  return n;
}

}  // namespace mbs::engine
