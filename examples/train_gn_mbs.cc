// Example: functional MBS training with gradient accumulation.
//
// Uses the float32 training substrate to run the same model through
// (a) conventional full-mini-batch GN training and (b) MBS-serialized GN
// training (sub-batches of 8 with one parameter update per mini-batch), and
// prints both loss trajectories — they coincide to float32 precision, which
// is the correctness property MBS rests on (Sec. 3). The two independent
// runs fan out across the engine's SweepRunner.
#include <cstdio>

#include "engine/engine.h"
#include "train/data.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace mbs;
  using namespace mbs::train;
  engine::Driver driver(argc, argv);

  const Dataset train_set = make_synthetic_dataset(256, 4, 1, 12, /*seed=*/51);
  const Dataset val_set = make_synthetic_dataset(128, 4, 1, 12, /*seed=*/52);

  TrainRunConfig rc;
  rc.epochs = 8;
  rc.batch = 32;
  rc.sgd.lr = 0.05;

  SmallCnnConfig cfg;
  cfg.norm = NormMode::kGroup;
  cfg.seed = 12345;

  auto run = [&](std::vector<int> chunks) {
    return [&, chunks] {
      SmallCnn model(cfg);
      TrainRunConfig r = rc;
      r.chunks = chunks;
      return train_model(model, train_set, val_set, r);
    };
  };

  const auto runs = driver.runner().map<std::vector<EpochLog>>(
      {run({}),              // conventional full-mini-batch training
       run({8, 8, 8, 8})});  // MBS: four sub-batch iterations per step
  const auto& full = runs[0];
  const auto& mbs = runs[1];

  std::printf("epoch | full-batch loss / val err | MBS(8,8,8,8) loss / val err\n");
  std::printf("------+---------------------------+----------------------------\n");
  for (std::size_t e = 0; e < full.size(); ++e)
    std::printf("%5d | %12.4f / %6.1f%% | %12.4f / %6.1f%%\n",
                full[e].epoch, full[e].train_loss, full[e].val_error,
                mbs[e].train_loss, mbs[e].val_error);
  std::printf("\nThe trajectories coincide: GN statistics are per-sample, so "
              "serializing the mini-batch changes memory behaviour, not "
              "training math.\n");
  return 0;
}
