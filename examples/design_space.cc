// Example: accelerator design-space exploration with the simulator.
//
// The paper's closing argument (Sec. 8) is that MBS makes WaveCore robust to
// memory design decisions: buffer capacity and DRAM bandwidth matter far
// less than with conventional training, so a designer can pick cheap,
// high-capacity memory. This example sweeps the (global buffer size x
// memory type) plane for ResNet50 and reports, per configuration, the MBS2
// step time and its slowdown versus the most expensive design point.
#include <cstdio>
#include <iostream>

#include "arch/memory.h"
#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace mbs;
  const std::string name = argc > 1 ? argv[1] : "resnet50";
  const core::Network net = models::make_network(name);

  const double buffers_mib[] = {5, 10, 20};
  const arch::MemoryConfig memories[] = {arch::hbm2_x2(), arch::hbm2(),
                                         arch::gddr5(), arch::lpddr4()};

  std::printf("=== Design-space sweep: %s, MBS2 vs Baseline ===\n\n",
              net.name.c_str());

  // Reference: the most expensive point (HBM2x2, 20 MiB).
  double ref = 0;
  util::Table t({"buffer", "memory", "Baseline [ms]", "MBS2 [ms]",
                 "MBS2 slowdown vs best", "MBS2 advantage"});
  for (double mib : buffers_mib) {
    for (const auto& mem : memories) {
      sched::ScheduleParams p;
      p.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
      sim::WaveCoreConfig hw;
      hw.memory = mem;
      hw.global_buffer_bytes = p.buffer_bytes;
      const auto base = sim::simulate_step(
          net, sched::build_schedule(net, sched::ExecConfig::kBaseline, p), hw);
      const auto mbs = sim::simulate_step(
          net, sched::build_schedule(net, sched::ExecConfig::kMbs2, p), hw);
      if (ref == 0 && mib == 20 && mem.name == "HBM2x2") ref = mbs.time_s;
      t.add_row({util::fmt(mib, 0) + " MiB", mem.name,
                 util::fmt(base.time_s * 1e3, 1),
                 util::fmt(mbs.time_s * 1e3, 1),
                 ref > 0 ? util::fmt(mbs.time_s / ref, 2) + "x" : "-",
                 util::fmt(base.time_s / mbs.time_s, 2) + "x"});
    }
  }
  t.print(std::cout);
  std::printf("\nTakeaway: under MBS2 even the cheapest corner (5 MiB + "
              "LPDDR4) stays within a few percent of the premium design, "
              "while conventional training degrades steeply.\n");
  return 0;
}
