// Example: accelerator design-space exploration with the engine.
//
// The paper's closing argument (Sec. 8) is that MBS makes WaveCore robust to
// memory design decisions: buffer capacity and DRAM bandwidth matter far
// less than with conventional training, so a designer can pick cheap,
// high-capacity memory. This example sweeps the (global buffer size x
// memory type) plane for a network and reports, per configuration, the MBS2
// step time and its slowdown versus the most expensive design point. The
// 24-scenario grid fans across the engine's thread pool; each (config,
// buffer) schedule is built once and reused across the four memory types.
#include <cstdio>
#include <iostream>
#include <string>

#include "arch/memory.h"
#include "engine/engine.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();
  const std::string name =
      !driver.args().empty() ? driver.args()[0] : "resnet50";

  const double buffers_mib[] = {5, 10, 20};
  const arch::MemoryConfig memories[] = {arch::hbm2_x2(), arch::hbm2(),
                                         arch::gddr5(), arch::lpddr4()};

  // Grid: (buffer, memory) x {Baseline, MBS2}, Baseline first per point.
  std::vector<engine::Scenario> grid;
  for (double mib : buffers_mib)
    for (const auto& mem : memories)
      for (sched::ExecConfig cfg :
           {sched::ExecConfig::kBaseline, sched::ExecConfig::kMbs2}) {
        engine::Scenario s;
        s.network = name;
        s.config = cfg;
        s.params.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
        s.hw.memory = mem;
        s.hw.global_buffer_bytes = s.params.buffer_bytes;
        grid.push_back(std::move(s));
      }

  // One output row per (buffer, memory): row r reads the Baseline/MBS2
  // pair at scenarios 2*r and 2*r+1.
  const auto results =
      driver.run(grid, [&](std::size_t i) { return shard.owns(i / 2); });

  std::printf("=== Design-space sweep: %s, MBS2 vs Baseline ===\n\n",
              results[0].network->name.c_str());

  // Reference: the most expensive point (HBM2x2, 20 MiB) — the MBS2 half of
  // the last buffer row's first memory entry.
  const std::size_t per_buffer = std::size(memories) * 2;
  const double ref =
      results[(std::size(buffers_mib) - 1) * per_buffer + 1].step.time_s;

  engine::ResultSink sink(
      "", {"buffer", "memory", "Baseline [ms]", "MBS2 [ms]",
           "MBS2 slowdown vs best", "MBS2 advantage"});
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    if (!shard.owns(i / 2)) continue;  // one output row per design point
    const sim::StepResult& base = results[i].step;
    const sim::StepResult& mbs = results[i + 1].step;
    const engine::Scenario& sc = results[i].scenario;
    sink.add_row(
        {util::fmt(static_cast<double>(sc.params.buffer_bytes) /
                   static_cast<double>(util::kMiB), 0) + " MiB",
         sc.hw.memory.name, util::fmt(base.time_s * 1e3, 1),
         util::fmt(mbs.time_s * 1e3, 1),
         util::fmt(mbs.time_s / ref, 2) + "x",
         util::fmt(base.time_s / mbs.time_s, 2) + "x"});
  }
  sink.print(std::cout);
  sink.export_files("design_space");
  std::printf("\nTakeaway: under MBS2 even the cheapest corner (5 MiB + "
              "LPDDR4) stays within a few percent of the premium design, "
              "while conventional training degrades steeply.\n");
  return 0;
}
