// Quickstart: schedule one network with MBS and simulate a training step.
//
//   $ ./quickstart
//
// Demonstrates the engine API every bench and example builds on:
//   1. declare Scenarios        — which network, which Tab. 3 config
//   2. engine::SweepRunner      — evaluate them (threaded, memoized)
//   3. read ScenarioResults     — network, schedule and step metrics
#include <cstdio>

#include "engine/engine.h"

int main(int argc, char** argv) {
  using namespace mbs;

  // 0. The shared driver parses the engine flags/env every binary supports
  //    (--threads, --cache-dir for warm starts, --shard for grid sharding).
  engine::Driver driver(argc, argv);

  // 1. Two scenarios: conventional training vs MBS with inter-branch reuse,
  //    both on ResNet50 with the default Sec. 4.2 WaveCore.
  const auto scenarios = engine::scenario_grid(
      {"resnet50"},
      {sched::ExecConfig::kBaseline, sched::ExecConfig::kMbs2});

  // 2. One engine sweep. The evaluator builds ResNet50 once and shares it;
  //    with more scenarios the runner fans out across a thread pool. This
  //    comparative demo reads both results, so it runs them on every shard.
  const auto results =
      driver.run(scenarios, [](std::size_t) { return true; });
  const engine::ScenarioResult& rb = results[0];  // Baseline
  const engine::ScenarioResult& rm = results[1];  // MBS2

  // 3. Results: the network description, the MBS layer grouping, and the
  //    simulated step metrics.
  const core::Network& net = *rb.network;
  std::printf("network: %s (%s parameters, %.1f GFLOPs/sample)\n",
              net.name.c_str(), util::fmt_int(net.param_count()).c_str(),
              static_cast<double>(net.flops_per_sample()) / 1e9);
  std::printf("MBS formed %zu layer groups; sub-batch sizes:",
              rm.schedule->groups.size());
  for (const sched::Group& g : rm.schedule->groups)
    std::printf(" %d", g.sub_batch);
  std::printf("\n");

  std::printf("\n%-22s %12s %12s\n", "", "Baseline", "MBS2");
  std::printf("%-22s %9.1f ms %9.1f ms\n", "step time",
              rb.step.time_s * 1e3, rm.step.time_s * 1e3);
  std::printf("%-22s %9.1f GB %9.1f GB\n", "DRAM traffic",
              rb.step.dram_bytes / 1e9, rm.step.dram_bytes / 1e9);
  std::printf("%-22s %10.2f J %10.2f J\n", "energy",
              rb.step.energy.total(), rm.step.energy.total());
  std::printf("%-22s %11.0f%% %11.0f%%\n", "systolic utilization",
              100 * rb.step.systolic_utilization,
              100 * rm.step.systolic_utilization);
  std::printf("\nMBS2: %.2fx speedup, %.1fx less DRAM traffic, %.0f%% energy"
              " saved\n", rb.step.time_s / rm.step.time_s,
              rb.step.dram_bytes / rm.step.dram_bytes,
              100 * (1 - rm.step.energy.total() / rb.step.energy.total()));
  return 0;
}
