// Quickstart: schedule one network with MBS and simulate a training step.
//
//   $ ./quickstart
//
// Demonstrates the three core API calls:
//   1. models::make_network(...)   — build a CNN description
//   2. sched::build_schedule(...)  — run the MBS scheduler
//   3. sim::simulate_step(...)     — execute it on the WaveCore model
#include <cstdio>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace mbs;

  // 1. A network description: ResNet50, 32 samples per accelerator core.
  const core::Network net = models::make_network("resnet50");
  std::printf("network: %s (%s parameters, %.1f GFLOPs/sample)\n",
              net.name.c_str(), util::fmt_int(net.param_count()).c_str(),
              static_cast<double>(net.flops_per_sample()) / 1e9);

  // 2. Schedules: conventional training vs MBS with inter-branch reuse.
  const sched::Schedule baseline =
      sched::build_schedule(net, sched::ExecConfig::kBaseline);
  const sched::Schedule mbs =
      sched::build_schedule(net, sched::ExecConfig::kMbs2);
  std::printf("MBS formed %zu layer groups; sub-batch sizes:", mbs.groups.size());
  for (const sched::Group& g : mbs.groups) std::printf(" %d", g.sub_batch);
  std::printf("\n");

  // 3. Simulate one training step of each on the default WaveCore (two
  //    128x128 systolic cores, 10 MiB global buffers, HBM2).
  const sim::WaveCoreConfig hw;
  const sim::StepResult rb = sim::simulate_step(net, baseline, hw);
  const sim::StepResult rm = sim::simulate_step(net, mbs, hw);

  std::printf("\n%-22s %12s %12s\n", "", "Baseline", "MBS2");
  std::printf("%-22s %9.1f ms %9.1f ms\n", "step time",
              rb.time_s * 1e3, rm.time_s * 1e3);
  std::printf("%-22s %9.1f GB %9.1f GB\n", "DRAM traffic",
              rb.dram_bytes / 1e9, rm.dram_bytes / 1e9);
  std::printf("%-22s %10.2f J %10.2f J\n", "energy",
              rb.energy.total(), rm.energy.total());
  std::printf("%-22s %11.0f%% %11.0f%%\n", "systolic utilization",
              100 * rb.systolic_utilization, 100 * rm.systolic_utilization);
  std::printf("\nMBS2: %.2fx speedup, %.1fx less DRAM traffic, %.0f%% energy"
              " saved\n", rb.time_s / rm.time_s, rb.dram_bytes / rm.dram_bytes,
              100 * (1 - rm.energy.total() / rb.energy.total()));
  return 0;
}
