// Example: transformer GN+MBS gradient equivalence.
//
// The paper's correctness argument (Sec. 3) is that serializing a
// mini-batch into sub-batches leaves training math unchanged as long as
// every per-sample operator is sample-local. Attention IS sample-local —
// each token attends only within its own sample — so the argument extends
// beyond CNNs to transformers. This example demonstrates it on the tiny
// functional transformer (real softmax attention between the qkv and proj
// GEMMs):
//
//   1. one mini-batch, gradients computed full-batch vs. MBS-serialized
//      (4 sub-batches with accumulation): with GN the gradients agree to
//      float32 rounding; with BN they visibly diverge (the Sec. 3.1
//      incompatibility, unchanged by the architecture swap);
//   2. two short training runs (full vs. serialized), fanned out across
//      the engine's SweepRunner, whose loss trajectories coincide.
//
// Exits non-zero if the GN gradient-equivalence gate fails. All printed
// values are bit-deterministic at any MBS_THREADS setting.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "engine/engine.h"
#include "train/data.h"
#include "train/loss.h"
#include "train/optim.h"
#include "train/transformer_model.h"

namespace {

using namespace mbs::train;

/// Reinterprets [N, C, H, W] images as [N, C, H*W, 1] token sequences —
/// the ViT trick of reading patches in raster order (row-major layouts
/// are identical, so this is a pure copy).
Tensor tokens_from_images(const Tensor& images) {
  Tensor t({images.dim(0), images.dim(1), images.dim(2) * images.dim(3), 1});
  std::memcpy(t.data(), images.data(),
              static_cast<std::size_t>(images.size()) * sizeof(float));
  return t;
}

/// Forward+backward over a chunk partition with gradient accumulation
/// scaled by 1/mini-batch (the trainer's accumulate_gradients, for the
/// transformer model). Returns the mean loss.
double accumulate(TinyTransformer& model, const Tensor& x,
                  const std::vector<int>& labels,
                  const std::vector<int>& chunks) {
  const int n = x.dim(0);
  model.zero_grad();
  double loss = 0;
  int offset = 0;
  for (int c : chunks) {
    const Tensor xc = x.slice_batch(offset, c);
    const std::vector<int> yc(labels.begin() + offset,
                              labels.begin() + offset + c);
    const Tensor logits = model.forward(xc);
    LossResult lr = softmax_cross_entropy(logits, yc);
    lr.dlogits.scale(1.0f / static_cast<float>(n));
    model.backward(lr.dlogits);
    loss += lr.loss_sum;
    offset += c;
  }
  return loss / n;
}

/// Largest absolute gradient difference between two models after one
/// accumulation pass each (the tests/train_test.cc equivalence metric).
double max_grad_diff(TinyTransformer& a, TinyTransformer& b) {
  double max_abs = 0;
  const auto ga = a.gradients(), gb = b.gradients();
  for (std::size_t i = 0; i < ga.size(); ++i)
    for (std::int64_t j = 0; j < ga[i]->size(); ++j) {
      const double diff = std::abs((*ga[i])[j] - (*gb[i])[j]);
      max_abs = diff > max_abs ? diff : max_abs;
    }
  return max_abs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);

  // 4x4 synthetic "images" read as 16-token sequences.
  const Dataset train_set = make_synthetic_dataset(128, 4, 3, 4, /*seed=*/61);
  const Tensor tokens = tokens_from_images(train_set.images);

  TinyTransformerConfig cfg;
  cfg.in_channels = 3;
  cfg.seq = 16;
  cfg.d_model = 16;
  cfg.heads = 2;
  cfg.depth = 2;
  cfg.classes = 4;
  cfg.seed = 12345;

  const int batch = 32;
  const Tensor x = tokens.slice_batch(0, batch);
  const std::vector<int> labels(train_set.labels.begin(),
                                train_set.labels.begin() + batch);
  const std::vector<int> full = {batch};
  const std::vector<int> serial = {8, 8, 8, 8};

  // 1. One-step gradient equivalence, GN vs. BN.
  auto grad_diff = [&](NormMode norm) {
    TinyTransformerConfig c = cfg;
    c.norm = norm;
    TinyTransformer a(c), b(c);
    accumulate(a, x, labels, full);
    accumulate(b, x, labels, serial);
    return max_grad_diff(a, b);
  };
  const double gn_abs = grad_diff(NormMode::kGroup);
  const double bn_abs = grad_diff(NormMode::kBatch);
  std::printf("one-step gradient equivalence, full batch vs MBS(8,8,8,8):\n");
  std::printf("  GN: max absolute gradient difference = %.3e\n", gn_abs);
  std::printf("  BN: max absolute gradient difference = %.3e\n", bn_abs);
  const bool gn_ok = gn_abs < 2e-4;
  std::printf("  -> GN %s (tolerance 2e-4); BN diverges because its "
              "statistics span the mini-batch\n",
              gn_ok ? "EQUIVALENT" : "MISMATCH");

  // 2. Short training runs, full vs. serialized, via the sweep runner.
  auto run = [&](std::vector<int> chunks) {
    return [&, chunks] {
      TinyTransformer model(cfg);
      Sgd opt(SgdConfig{0.05, 0.9, 0.0});
      std::vector<double> losses;
      for (int epoch = 0; epoch < 4; ++epoch) {
        double sum = 0;
        int steps = 0;
        for (int off = 0; off + batch <= train_set.size(); off += batch) {
          const Tensor xb = tokens.slice_batch(off, batch);
          const std::vector<int> yb(train_set.labels.begin() + off,
                                    train_set.labels.begin() + off + batch);
          sum += accumulate(model, xb, yb, chunks);
          opt.step(model.parameters(), model.gradients());
          ++steps;
        }
        losses.push_back(sum / steps);
      }
      return losses;
    };
  };
  const auto runs = driver.runner().map<std::vector<double>>(
      {run(full), run(serial)});

  std::printf("\nepoch | full-batch loss | MBS(8,8,8,8) loss\n");
  std::printf("------+-----------------+------------------\n");
  for (std::size_t e = 0; e < runs[0].size(); ++e)
    std::printf("%5zu | %15.6f | %17.6f\n", e, runs[0][e], runs[1][e]);
  std::printf("\nAttention is sample-local (tokens attend within their own "
              "sample), so GN+MBS transformer training reproduces full-batch "
              "gradients — the Sec. 3 equivalence extends beyond CNNs.\n");
  return gn_ok ? 0 : 1;
}
