// Example: explore MBS schedules and traffic for any evaluated network.
//
// Usage: schedule_explorer [network] [buffer_MiB]
//   network:    resnet50 (default) | resnet101 | resnet152 | inception_v3 |
//               inception_v4 | alexnet
//   buffer_MiB: per-core global buffer size, default 10
//
// Prints, for each Tab. 3 configuration: the layer groups the scheduler
// forms, their sub-batch sizes/iteration counts (Fig. 5), and the modeled
// per-step DRAM traffic broken down by class. All six (config) scenarios
// run as one engine sweep over the shared network build.
#include <cstdio>
#include <iostream>
#include <string>

#include "engine/engine.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  const engine::ShardPlan shard = driver.shard();

  const auto& args = driver.args();
  const std::string net_name = !args.empty() ? args[0] : "resnet50";
  const double buffer_mib = args.size() > 1 ? std::stod(args[1]) : 10.0;

  sched::ScheduleParams params;
  params.buffer_bytes =
      static_cast<std::int64_t>(buffer_mib * static_cast<double>(util::kMiB));

  const auto grid = engine::scenario_grid(
      {net_name}, sched::paper_tab3_configs(), params, {},
      engine::Stage::kTraffic);
  // One summary row (and printed group listing) per configuration, which
  // is the scenario index — the default sharding unit.
  const auto results = driver.run(grid);
  const core::Network& net = *results[0].network;

  std::printf("%s: %d blocks, %d layers, %s params, %.2f GFLOPs/sample\n",
              net.name.c_str(), static_cast<int>(net.blocks.size()),
              net.layer_count(), util::fmt_int(net.param_count()).c_str(),
              static_cast<double>(net.flops_per_sample()) / 1e9);
  std::printf("mini-batch/core: %d, buffer: %.1f MiB\n\n",
              net.mini_batch_per_core, buffer_mib);

  engine::ResultSink summary(
      "", {"config", "groups", "iterations", "DRAM/step", "weights", "wgrad",
           "features", "gradients", "stash"});
  for (std::size_t ri = 0; ri < results.size(); ++ri) {
    if (!shard.owns(ri)) continue;  // one output row per configuration
    const engine::ScenarioResult& r = results[ri];
    const sched::Schedule& s = *r.schedule;
    const std::string err = s.validate(net);
    if (!err.empty()) {
      std::fprintf(stderr, "invalid schedule (%s): %s\n",
                   sched::to_string(r.scenario.config), err.c_str());
      return 1;
    }
    const sched::Traffic& t = *r.traffic;
    summary.add_row(
        {sched::to_string(r.scenario.config), std::to_string(s.groups.size()),
         std::to_string(s.total_iterations()),
         util::format_bytes(t.dram_bytes()),
         util::format_bytes(t.dram_bytes_by_class(sched::TrafficClass::kWeight)),
         util::format_bytes(
             t.dram_bytes_by_class(sched::TrafficClass::kWgradPartial)),
         util::format_bytes(
             t.dram_bytes_by_class(sched::TrafficClass::kFeature)),
         util::format_bytes(
             t.dram_bytes_by_class(sched::TrafficClass::kGradient)),
         util::format_bytes(
             t.dram_bytes_by_class(sched::TrafficClass::kStash))});

    if (sched::uses_serialization(r.scenario.config)) {
      std::printf("%s groups (Fig. 5 style):\n",
                  sched::to_string(r.scenario.config));
      for (std::size_t g = 0; g < s.groups.size(); ++g) {
        const auto& grp = s.groups[g];
        std::printf("  group %zu: blocks [%d..%d] (%s..%s), sub-batch %d, "
                    "%d iterations, chunks ",
                    g + 1, grp.first, grp.last,
                    net.blocks[static_cast<std::size_t>(grp.first)].name.c_str(),
                    net.blocks[static_cast<std::size_t>(grp.last)].name.c_str(),
                    grp.sub_batch, grp.iterations);
        const auto chunks = grp.chunks(s.mini_batch);
        for (std::size_t i = 0; i < chunks.size(); ++i)
          std::printf("%s%d", i ? "," : "", chunks[i]);
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  summary.print(std::cout);
  summary.export_files("schedule_explorer");
  return 0;
}
