// Example: explore MBS schedules and traffic for any evaluated network.
//
// Usage: schedule_explorer [network] [buffer_MiB]
//   network:    resnet50 (default) | resnet101 | resnet152 | inception_v3 |
//               inception_v4 | alexnet
//   buffer_MiB: per-core global buffer size, default 10
//
// Prints, for each Tab. 3 configuration: the layer groups the scheduler
// forms, their sub-batch sizes/iteration counts (Fig. 5), and the modeled
// per-step DRAM traffic broken down by class.
#include <cstdio>
#include <iostream>
#include <string>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sched/traffic.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace mbs;

  const std::string net_name = argc > 1 ? argv[1] : "resnet50";
  const double buffer_mib = argc > 2 ? std::stod(argv[2]) : 10.0;

  const core::Network net = models::make_network(net_name);
  sched::ScheduleParams params;
  params.buffer_bytes =
      static_cast<std::int64_t>(buffer_mib * static_cast<double>(util::kMiB));

  std::printf("%s: %d blocks, %d layers, %s params, %.2f GFLOPs/sample\n",
              net.name.c_str(), static_cast<int>(net.blocks.size()),
              net.layer_count(), util::fmt_int(net.param_count()).c_str(),
              static_cast<double>(net.flops_per_sample()) / 1e9);
  std::printf("mini-batch/core: %d, buffer: %.1f MiB\n\n",
              net.mini_batch_per_core, buffer_mib);

  const sched::ExecConfig configs[] = {
      sched::ExecConfig::kBaseline, sched::ExecConfig::kArchOpt,
      sched::ExecConfig::kIL,       sched::ExecConfig::kMbsFs,
      sched::ExecConfig::kMbs1,     sched::ExecConfig::kMbs2};

  util::Table summary({"config", "groups", "iterations", "DRAM/step",
                       "weights", "wgrad", "features", "gradients", "stash"});
  for (auto cfg : configs) {
    const sched::Schedule s = sched::build_schedule(net, cfg, params);
    const std::string err = s.validate(net);
    if (!err.empty()) {
      std::fprintf(stderr, "invalid schedule (%s): %s\n",
                   sched::to_string(cfg), err.c_str());
      return 1;
    }
    const sched::Traffic t = sched::compute_traffic(net, s);
    summary.add_row(
        {sched::to_string(cfg), std::to_string(s.groups.size()),
         std::to_string(s.total_iterations()),
         util::format_bytes(t.dram_bytes()),
         util::format_bytes(t.dram_bytes_by_class(sched::TrafficClass::kWeight)),
         util::format_bytes(
             t.dram_bytes_by_class(sched::TrafficClass::kWgradPartial)),
         util::format_bytes(
             t.dram_bytes_by_class(sched::TrafficClass::kFeature)),
         util::format_bytes(
             t.dram_bytes_by_class(sched::TrafficClass::kGradient)),
         util::format_bytes(
             t.dram_bytes_by_class(sched::TrafficClass::kStash))});

    if (sched::uses_serialization(cfg)) {
      std::printf("%s groups (Fig. 5 style):\n", sched::to_string(cfg));
      for (std::size_t g = 0; g < s.groups.size(); ++g) {
        const auto& grp = s.groups[g];
        std::printf("  group %zu: blocks [%d..%d] (%s..%s), sub-batch %d, "
                    "%d iterations, chunks ",
                    g + 1, grp.first, grp.last,
                    net.blocks[static_cast<std::size_t>(grp.first)].name.c_str(),
                    net.blocks[static_cast<std::size_t>(grp.last)].name.c_str(),
                    grp.sub_batch, grp.iterations);
        const auto chunks = grp.chunks(s.mini_batch);
        for (std::size_t i = 0; i < chunks.size(); ++i)
          std::printf("%s%d", i ? "," : "", chunks[i]);
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  summary.print(std::cout);
  return 0;
}
