#!/usr/bin/env bash
# Docs-consistency check (CI "docs" step; run from the repo root):
#
#   1. every bench binary (the MBS_BENCHES list in CMakeLists.txt, plus
#      micro_benchmarks) appears backticked in the README repro table;
#   2. every example binary (the add_executable(...) calls under the
#      Examples section) is mentioned in README.md or docs/REPRODUCING.md;
#   3. every MBS_* environment variable read by any source (getenv) is
#      documented in docs/REPRODUCING.md's consolidated table;
#   4. the workload guide exists and README links to it.
#
# Pure grep — no build needed — so stale docs fail fast on any machine.
set -u

fail=0
err() {
  echo "check_docs: $*" >&2
  fail=1
}

[ -f CMakeLists.txt ] || { echo "run from the repo root" >&2; exit 2; }

# 1. Bench binaries in the README repro table.
benches="$(sed -n '/^set(MBS_BENCHES/,/^)/p' CMakeLists.txt \
           | grep -Eo '^  [a-z0-9_]+' | tr -d ' ') micro_benchmarks"
for b in $benches; do
  grep -q "\`$b\`" README.md || err "README.md repro table is missing \`$b\`"
done

# 2. Example binaries mentioned in README or the repro guide.
examples="$(grep -Eo 'add_executable\([a-z0-9_]+ examples/' CMakeLists.txt \
            | sed -E 's/add_executable\(([a-z0-9_]+) .*/\1/')"
for e in $examples; do
  grep -q "$e" README.md docs/REPRODUCING.md ||
    err "example '$e' appears in neither README.md nor docs/REPRODUCING.md"
done

# 3. Every env var the code reads is documented in REPRODUCING.md.
vars="$(grep -rhoE 'getenv\("MBS_[A-Z_]+"\)' src bench examples tools tests \
        2>/dev/null | grep -oE 'MBS_[A-Z_]+' | sort -u)"
for v in $vars; do
  grep -q "$v" docs/REPRODUCING.md ||
    err "env var $v is read by the code but undocumented in docs/REPRODUCING.md"
done

# 4. The workload guide is present and reachable from the README.
[ -f docs/WORKLOADS.md ] || err "docs/WORKLOADS.md is missing"
grep -q 'WORKLOADS.md' README.md || err "README.md does not link docs/WORKLOADS.md"

if [ "$fail" -eq 0 ]; then
  echo "check_docs: OK ($(echo "$benches" | wc -w | tr -d ' ') benches," \
       "$(echo "$examples" | wc -w | tr -d ' ') examples," \
       "$(echo "$vars" | wc -w | tr -d ' ') env vars)"
fi
exit "$fail"
