// merge_results: combines the per-shard CSV/JSON exports of a sharded sweep
// into the documents an unsharded run would have written, byte for byte.
//
// A sweep sharded with MBS_SHARD=i/N (or --shard=i/N) exports
// <stem>.shard<i>of<N>.csv/.json per ResultSink; the rows of unsharded row
// index j live in shard j%N at position j/N. This tool scans a result
// directory (default: $MBS_RESULT_DIR), groups shard files by (stem,
// extension), verifies every shard 0..N-1 is present, interleaves the rows
// back (ResultSink::merge_shards) and writes <stem>.csv/.json next to the
// shard files.
//
//   usage: merge_results [result-dir]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/result_sink.h"
#include "util/fault.h"

namespace fs = std::filesystem;
using mbs::engine::ResultSink;

namespace {

struct ShardFile {
  int index = 0;
  fs::path path;
};

struct Group {
  int count = 0;
  std::vector<ShardFile> files;
};

/// Splits "name.shard<i>of<N>.<ext>" into (stem, i, N, ext); false when the
/// file name does not follow the shard export pattern.
bool parse_shard_name(const std::string& name, std::string* stem, int* index,
                      int* count, std::string* ext) {
  const std::size_t dot = name.rfind('.');
  if (dot == std::string::npos) return false;
  *ext = name.substr(dot + 1);
  if (*ext != "csv" && *ext != "json") return false;
  const std::string base = name.substr(0, dot);
  const std::size_t marker = base.rfind(".shard");
  if (marker == std::string::npos) return false;
  int i = 0, n = 0;
  char extra = 0;
  if (std::sscanf(base.c_str() + marker, ".shard%dof%d%c", &i, &n, &extra) !=
          2 ||
      n < 1 || i < 0 || i >= n)
    return false;
  *stem = base.substr(0, marker);
  *index = i;
  *count = n;
  return true;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "merge_results: cannot read %s\n",
                 path.string().c_str());
    std::exit(1);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  if (argc > 1) {
    dir = argv[1];
  } else if (const char* env = std::getenv("MBS_RESULT_DIR"); env && *env) {
    dir = env;
  } else {
    std::fprintf(stderr,
                 "usage: merge_results [result-dir]   (or set MBS_RESULT_DIR)\n");
    return 1;
  }

  // Group shard files by (stem, extension).
  std::map<std::pair<std::string, std::string>, Group> groups;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string stem, ext;
    int index = 0, count = 0;
    if (!parse_shard_name(entry.path().filename().string(), &stem, &index,
                          &count, &ext))
      continue;
    Group& g = groups[{stem, ext}];
    if (g.count != 0 && g.count != count) {
      std::fprintf(stderr,
                   "merge_results: %s has shard files from different shard "
                   "counts (%d and %d)\n",
                   stem.c_str(), g.count, count);
      return 1;
    }
    g.count = count;
    g.files.push_back({index, entry.path()});
  }
  if (ec) {
    std::fprintf(stderr, "merge_results: cannot scan %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (groups.empty()) {
    std::fprintf(stderr, "merge_results: no *.shard<i>of<N>.{csv,json} files "
                         "in %s\n",
                 dir.c_str());
    return 1;
  }

  for (auto& [key, group] : groups) {
    const auto& [stem, ext] = key;
    std::sort(group.files.begin(), group.files.end(),
              [](const ShardFile& a, const ShardFile& b) {
                return a.index < b.index;
              });
    if (static_cast<int>(group.files.size()) != group.count) {
      std::fprintf(stderr,
                   "merge_results: %s.%s has %zu of %d shard files\n",
                   stem.c_str(), ext.c_str(), group.files.size(), group.count);
      return 1;
    }
    std::vector<ResultSink::Parsed> shards;
    shards.reserve(group.files.size());
    for (const ShardFile& f : group.files) {
      const std::string text = read_file(f.path);
      shards.push_back(ext == "csv" ? ResultSink::parse_csv(text)
                                    : ResultSink::parse_json(text));
    }
    const ResultSink::Parsed merged = ResultSink::merge_shards(shards);

    // Re-serialize through a ResultSink: same writers as the unsharded run.
    ResultSink sink(merged.title, merged.headers);
    for (const auto& row : merged.rows) sink.add_row(row);
    const fs::path out_path = fs::path(dir) / (stem + "." + ext);
    std::ostringstream out;
    if (ext == "csv")
      sink.write_csv(out);
    else
      sink.write_json(out);
    // Atomic (tmp + rename): a crash mid-merge leaves the previous output
    // intact instead of a truncated file.
    if (!mbs::util::fs::write_atomic(out_path.string(), out.str(),
                                     "merge.output.write")) {
      std::fprintf(stderr, "merge_results: cannot write %s\n",
                   out_path.string().c_str());
      return 1;
    }
    std::printf("merged %d shards x %zu rows -> %s\n", group.count,
                merged.rows.size(), out_path.string().c_str());
  }
  return 0;
}
