// mbs_serve: a query daemon over the warm evaluator store.
//
// Reads one request per line on stdin, answers one line on stdout
// (flushed per answer, so it composes with pipes and coprocesses):
//
//   <scenario spec>   e.g. net=resnet50;cfg=MBS2;buf=8388608
//                     -> "ok <metrics>" or "err <message>"
//   stats             -> "stats queries=... hot=... store=... computed=...
//                         errors=... degraded=..."
//   quit              -> exits (EOF does too)
//
// Blank lines and lines starting with '#' are ignored. Answer payloads
// are ServeCore::format_answer renderings: %.17g doubles, so an answer is
// string-equal to the batch Evaluator's result if and only if every
// double is bit-identical (the sweep-service CI job asserts this).
//
// Serving tiers: in-memory LRU hot set (capacity MBS_SERVE_HOT, default
// 64) over the CacheStore (--cache-dir / MBS_CACHE_DIR; answers any key a
// batch sweep already computed without recomputing it), with cold keys
// evaluated on demand and written through to the store. Memory stays
// bounded by the hot capacity regardless of how many keys the query
// stream visits.
//
// Per-query failures never kill the daemon (they answer "err ..." and
// count in the errors stat); store corruption discovered mid-read degrades
// that query to fresh evaluation (the degraded stat). SIGTERM/SIGINT shut
// down cleanly: the read loop exits and dirty store entries are flushed
// before the process does.
//
// Usage: mbs_serve [--cache-dir=DIR] [--threads=T]
#include <signal.h>

#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "engine/cache_store.h"
#include "engine/driver.h"
#include "engine/serve.h"
#include "util/env.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_shutdown_signal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  if (!driver.store())
    std::fprintf(stderr,
                 "mbs_serve: no cache store (--cache-dir/MBS_CACHE_DIR); "
                 "every cold key will be computed, none remembered on "
                 "disk\n");

  // No SA_RESTART: the signal must interrupt the blocking stdin read so
  // the loop observes g_shutdown instead of waiting for the next line.
  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  const std::size_t hot_capacity = static_cast<std::size_t>(
      util::env_int("MBS_SERVE_HOT", 64, 1, 1 << 24));
  engine::ServeCore core(driver.store(), hot_capacity);

  std::string line;
  while (!g_shutdown && std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit") break;
    if (line == "stats") {
      const engine::ServeStats st = core.stats();
      std::printf("stats queries=%zu hot=%zu store=%zu computed=%zu "
                  "errors=%zu degraded=%zu\n",
                  st.queries, st.hot_hits, st.store_hits, st.computed,
                  st.errors, st.degraded);
      std::fflush(stdout);
      continue;
    }
    const engine::ServeCore::Answer a = core.query(line);
    std::printf("%s %s\n", a.ok ? "ok" : "err", a.text.c_str());
    std::fflush(stdout);
  }
  if (g_shutdown) {
    // Flush write-through results the dtor would also catch — doing it
    // here makes the shutdown path explicit and loggable.
    if (driver.store() && driver.store()->dirty()) driver.store()->save();
    std::fprintf(stderr, "mbs_serve: caught signal, flushed store, bye\n");
  }
  return 0;
}
