// mbs_serve: a query daemon over the warm evaluator store.
//
// Reads one request per line on stdin, answers one line on stdout
// (flushed per answer, so it composes with pipes and coprocesses):
//
//   <scenario spec>   e.g. net=resnet50;cfg=MBS2;buf=8388608
//                     -> "ok <metrics>" or "err <message>"
//   stats             -> "stats queries=... hot=... store=... computed=...
//                         errors=..."
//   quit              -> exits (EOF does too)
//
// Blank lines and lines starting with '#' are ignored. Answer payloads
// are ServeCore::format_answer renderings: %.17g doubles, so an answer is
// string-equal to the batch Evaluator's result if and only if every
// double is bit-identical (the sweep-service CI job asserts this).
//
// Serving tiers: in-memory LRU hot set (capacity MBS_SERVE_HOT, default
// 64) over the CacheStore (--cache-dir / MBS_CACHE_DIR; answers any key a
// batch sweep already computed without recomputing it), with cold keys
// evaluated on demand and written through to the store. Memory stays
// bounded by the hot capacity regardless of how many keys the query
// stream visits.
//
// Usage: mbs_serve [--cache-dir=DIR] [--threads=T]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "engine/driver.h"
#include "engine/serve.h"

int main(int argc, char** argv) {
  using namespace mbs;
  engine::Driver driver(argc, argv);
  if (!driver.store())
    std::fprintf(stderr,
                 "mbs_serve: no cache store (--cache-dir/MBS_CACHE_DIR); "
                 "every cold key will be computed, none remembered on "
                 "disk\n");

  std::size_t hot_capacity = 64;
  if (const char* env = std::getenv("MBS_SERVE_HOT"); env && *env)
    hot_capacity = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  engine::ServeCore core(driver.store(), hot_capacity);

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit") break;
    if (line == "stats") {
      const engine::ServeStats st = core.stats();
      std::printf("stats queries=%zu hot=%zu store=%zu computed=%zu "
                  "errors=%zu\n",
                  st.queries, st.hot_hits, st.store_hits, st.computed,
                  st.errors);
      std::fflush(stdout);
      continue;
    }
    const engine::ServeCore::Answer a = core.query(line);
    std::printf("%s %s\n", a.ok ? "ok" : "err", a.text.c_str());
    std::fflush(stdout);
  }
  return 0;
}
