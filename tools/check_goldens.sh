#!/usr/bin/env bash
# Golden-output check (CI "systolic-backend" job; run from the repo root
# after building everything into build/):
#
# Re-runs every bench and example binary that existed before the cycle-level
# systolic backend landed and byte-compares
#
#   1. its stdout against tests/golden/stdout/<bin>.stdout, and
#   2. every CSV/JSON it exports against tests/golden/exports/
#
# The goldens were captured from the tree immediately before the systolic
# backend merged, so any diff here means the new backend perturbed a
# pre-existing result — the backend must be strictly additive.
set -u

[ -f CMakeLists.txt ] || { echo "run from the repo root" >&2; exit 2; }
build="${1:-build}"

# Engine env vars would legitimately change output (sharding gates rows,
# stats add stderr noise is fine but keep it quiet) — run clean.
unset MBS_SHARD MBS_CACHE_DIR MBS_ENGINE_STATS MBS_THREADS \
      MBS_RESULT_DIR MBS_SYSTOLIC_DATAFLOW MBS_SYSTOLIC_SPAD 2>/dev/null

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
mkdir -p "$work/stdout" "$work/results"

fail=0
for golden in tests/golden/stdout/*.stdout; do
  bin="$(basename "$golden" .stdout)"
  if [ ! -x "$build/$bin" ]; then
    echo "check_goldens: $build/$bin not built" >&2
    fail=1
    continue
  fi
  if ! MBS_RESULT_DIR="$work/results" "$build/$bin" \
       > "$work/stdout/$bin.stdout" 2>/dev/null; then
    echo "check_goldens: $bin exited nonzero" >&2
    fail=1
  fi
  if ! cmp -s "$golden" "$work/stdout/$bin.stdout"; then
    echo "check_goldens: stdout of $bin differs from $golden" >&2
    diff "$golden" "$work/stdout/$bin.stdout" | head -20 >&2
    fail=1
  fi
done

for golden in tests/golden/exports/*; do
  name="$(basename "$golden")"
  if [ ! -f "$work/results/$name" ]; then
    echo "check_goldens: export $name was not produced" >&2
    fail=1
  elif ! cmp -s "$golden" "$work/results/$name"; then
    echo "check_goldens: export $name differs from its golden" >&2
    diff "$golden" "$work/results/$name" | head -20 >&2
    fail=1
  fi
done

# The kernel-layer job's standalone fig06 golden must stay in lock-step
# with the copy under stdout/ (same bytes, two consumers).
if ! cmp -s tests/golden/fig06_training.stdout \
            tests/golden/stdout/fig06_training.stdout; then
  echo "check_goldens: the two fig06_training goldens disagree" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "check_goldens: OK ($(ls tests/golden/stdout | wc -l | tr -d ' ') stdouts," \
       "$(ls tests/golden/exports | wc -l | tr -d ' ') exports byte-identical)"
fi
exit "$fail"
