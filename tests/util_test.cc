// Unit tests for src/util: formatting, RNG determinism, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace mbs::util {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(10.0 * kMiB), "10.00 MiB");
  EXPECT_EQ(format_bytes(1.5 * kGiB), "1.50 GiB");
}

TEST(Units, FormatSi) {
  EXPECT_EQ(format_si(3.86e9), "3.86 G");
  EXPECT_EQ(format_si(125e12), "125.00 T");
  EXPECT_EQ(format_si(42), "42.00");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(1.5e-3), "1.50 ms");
  EXPECT_EQ(format_time(2.5e-7), "250.00 ns");
  EXPECT_EQ(format_time(2.0), "2.000 s");
}

TEST(Fmt, IntThousandsSeparators) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_int(25557032), "25,557,032");
  EXPECT_EQ(fmt_int(-1234), "-1,234");
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"b", "20.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20.5"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEmitsCommaSeparatedRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"25,557,032", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"25,557,032\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);  // must not crash; missing cells render empty
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform_int(10), 10u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(123);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.03);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.03);
}

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyAccumulatorIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

}  // namespace
}  // namespace mbs::util
