// Tests for the WaveCore architecture models: Tab. 1 GEMM shapes, systolic
// timing properties (including the ArchOpt double-buffering win), Tab. 4
// memory configs, the energy model, Tab. 2 area roll-up, and the GPU
// comparator.
#include <gtest/gtest.h>

#include "arch/area.h"
#include "arch/energy.h"
#include "arch/gpu.h"
#include "arch/memory.h"
#include "arch/systolic.h"
#include "models/zoo.h"

namespace mbs::arch {
namespace {

using core::FeatureShape;
using core::Layer;

// ---- Tab. 1: im2col GEMM dimensions -----------------------------------------

TEST(GemmShapes, ForwardMatchesTab1) {
  const Layer conv = core::make_conv("c", FeatureShape{64, 56, 56}, 128, 3, 1, 1);
  const GemmShape s = gemm_shape(conv, 8, GemmPass::kForward);
  EXPECT_EQ(s.gh, 8LL * 56 * 56);   // N * Ho * Wo
  EXPECT_EQ(s.gw, 128);             // Co
  EXPECT_EQ(s.k, 64LL * 3 * 3);     // Ci * R * S
}

TEST(GemmShapes, DataGradMatchesTab1) {
  const Layer conv = core::make_conv("c", FeatureShape{64, 56, 56}, 128, 3, 2, 1);
  const GemmShape s = gemm_shape(conv, 4, GemmPass::kDataGrad);
  EXPECT_EQ(s.gh, 4LL * 56 * 56);   // N * Hi * Wi
  EXPECT_EQ(s.gw, 64);              // Ci
  EXPECT_EQ(s.k, 128LL * 3 * 3);    // Co * R * S
}

TEST(GemmShapes, WeightGradMatchesTab1) {
  const Layer conv = core::make_conv("c", FeatureShape{64, 56, 56}, 128, 3, 1, 1);
  const GemmShape s = gemm_shape(conv, 4, GemmPass::kWeightGrad);
  EXPECT_EQ(s.gh, 64LL * 3 * 3);    // Ci * R * S
  EXPECT_EQ(s.gw, 128);             // Co
  EXPECT_EQ(s.k, 4LL * 56 * 56);    // N * Ho * Wo
}

TEST(GemmShapes, MacCountInvariantAcrossPasses) {
  // All three passes of a conv perform the same number of MACs.
  const Layer conv = core::make_conv("c", FeatureShape{32, 14, 14}, 64, 3, 1, 1);
  const auto f = gemm_shape(conv, 8, GemmPass::kForward).macs();
  const auto d = gemm_shape(conv, 8, GemmPass::kDataGrad).macs();
  const auto w = gemm_shape(conv, 8, GemmPass::kWeightGrad).macs();
  EXPECT_EQ(f, w);
  // DataGrad differs only by the input/output spatial ratio (stride 1: equal).
  EXPECT_EQ(f, d);
}

TEST(GemmShapes, FcShapes) {
  const Layer fc = core::make_fc("fc", 2048, 1000);
  const GemmShape f = gemm_shape(fc, 16, GemmPass::kForward);
  EXPECT_EQ(f.gh, 16);
  EXPECT_EQ(f.gw, 1000);
  EXPECT_EQ(f.k, 2048);
  const GemmShape w = gemm_shape(fc, 16, GemmPass::kWeightGrad);
  EXPECT_EQ(w.gh, 2048);
  EXPECT_EQ(w.k, 16);
}

// ---- Systolic timing ---------------------------------------------------------

TEST(Systolic, TileGeometry) {
  SystolicConfig cfg;
  EXPECT_EQ(cfg.tile_m(), 256);  // 128 KiB / (128 cols * 4 B)
  EXPECT_EQ(cfg.macs_per_cycle(), 128 * 128);
}

TEST(Systolic, UtilizationBounded) {
  SystolicConfig cfg;
  for (std::int64_t gh : {1, 100, 1000, 100000})
    for (std::int64_t gw : {1, 64, 128, 512})
      for (std::int64_t k : {1, 128, 2304}) {
        const GemmTiming t = simulate_gemm(cfg, {gh, gw, k});
        EXPECT_GT(t.utilization, 0);
        EXPECT_LE(t.utilization, 1.0);
        // Cycles can never beat the ideal MAC throughput.
        EXPECT_GE(t.cycles * cfg.macs_per_cycle(), t.macs);
      }
}

TEST(Systolic, DoubleBufferingStrictlyFaster) {
  SystolicConfig with;
  SystolicConfig without = with;
  without.weight_double_buffering = false;
  const GemmShape shapes[] = {{6272, 256, 2304}, {256, 64, 576}, {32, 1000, 2048}};
  for (const GemmShape& s : shapes) {
    const GemmTiming a = simulate_gemm(with, s);
    const GemmTiming b = simulate_gemm(without, s);
    EXPECT_LT(a.cycles, b.cycles);
    EXPECT_GT(a.utilization, b.utilization);
  }
}

TEST(Systolic, DoubleBufferingGainMatchesPaperScale) {
  // Paper Fig. 14: Baseline averages ~54% utilization, ArchOpt ~81%.
  // A large, well-shaped GEMM should show that ratio per-kernel.
  SystolicConfig with;
  SystolicConfig without = with;
  without.weight_double_buffering = false;
  const GemmShape s{100352, 256, 1152};  // ResNet50 mid conv, N=32
  const double u_with = simulate_gemm(with, s).utilization;
  const double u_without = simulate_gemm(without, s).utilization;
  EXPECT_GT(u_with, 0.85);
  EXPECT_LT(u_without, 0.70);
}

TEST(Systolic, NarrowGemmUnderutilizes) {
  // Fig. 14's residual losses: early layers with small channel counts give
  // narrow tiles that cannot fill the 128-wide array.
  SystolicConfig cfg;
  const double narrow = simulate_gemm(cfg, {100000, 3, 147}).utilization;
  const double wide = simulate_gemm(cfg, {100000, 256, 1152}).utilization;
  EXPECT_LT(narrow, 0.05);
  EXPECT_GT(wide, 0.85);
}

TEST(Systolic, SmallSubBatchStillUtilizesViaIm2col) {
  // Sec. 4.1: with im2col, a sub-batch of 2 still yields a tall Gh
  // (N*Ho*Wo), so utilization stays high for typical conv layers.
  SystolicConfig cfg;
  const Layer conv = core::make_conv("c", FeatureShape{64, 56, 56}, 64, 3, 1, 1);
  const GemmTiming t =
      simulate_gemm(cfg, gemm_shape(conv, /*sub_batch=*/2, GemmPass::kForward));
  EXPECT_GT(t.utilization, 0.35);
}

TEST(Systolic, CyclesScaleLinearlyInGh) {
  SystolicConfig cfg;
  const GemmTiming a = simulate_gemm(cfg, {2560, 128, 1152});
  const GemmTiming b = simulate_gemm(cfg, {5120, 128, 1152});
  EXPECT_NEAR(static_cast<double>(b.cycles) / a.cycles, 2.0, 0.1);
}

TEST(Systolic, BufferTrafficAccountsForTileRereads) {
  SystolicConfig cfg;
  // Two tile columns force A to stream twice.
  const GemmShape s{256, 256, 128};
  const GemmTiming t = simulate_gemm(cfg, s);
  EXPECT_EQ(t.buf_read_bytes, 2 * (s.gh * s.k * 2 + s.k * s.gw * 1));
  EXPECT_EQ(t.buf_write_bytes, 2 * s.gh * s.gw);
}

// ---- Tab. 4 memory configurations ---------------------------------------------

TEST(Memory, Tab4Values) {
  EXPECT_DOUBLE_EQ(hbm2().bandwidth_bytes_per_s, 300.0 * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(hbm2_x2().bandwidth_bytes_per_s, 2 * hbm2().bandwidth_bytes_per_s);
  EXPECT_DOUBLE_EQ(gddr5().bandwidth_bytes_per_s, 384.0 * 1024 * 1024 * 1024);
  EXPECT_NEAR(lpddr4().bandwidth_bytes_per_s, 239.2 * 1024 * 1024 * 1024, 1e6);
  EXPECT_EQ(hbm2().channels, 8);
  EXPECT_EQ(gddr5().channels, 12);
  EXPECT_EQ(lpddr4().channels, 8);
}

TEST(Memory, BandwidthRatiosMatchPaper) {
  // Sec. 6: GDDR5 is 64% and LPDDR4 40% of HBM2x2 bandwidth.
  EXPECT_NEAR(gddr5().bandwidth_bytes_per_s / hbm2_x2().bandwidth_bytes_per_s,
              0.64, 0.01);
  EXPECT_NEAR(lpddr4().bandwidth_bytes_per_s / hbm2_x2().bandwidth_bytes_per_s,
              0.40, 0.01);
}

TEST(Memory, PerCoreBandwidthSplitsAcrossCores) {
  EXPECT_DOUBLE_EQ(hbm2().per_core_bandwidth(2),
                   hbm2().bandwidth_bytes_per_s / 2);
}

TEST(Memory, LookupByName) {
  EXPECT_EQ(memory_config_by_name("LPDDR4").name, "LPDDR4");
  EXPECT_EQ(all_memory_configs().size(), 4u);
}

// ---- Energy --------------------------------------------------------------------

TEST(Energy, BufferAccessEightTimesCheaperThanDram) {
  const EnergyModel m;
  EXPECT_NEAR(m.dram_pj_per_byte / m.buffer_pj_per_byte, 8.0, 0.1);
}

TEST(Energy, ComponentsAddUp) {
  const EnergyModel m;
  const EnergyBreakdown e = compute_energy(m, 1e9, 2e9, 1e12, 1e10, 0.1);
  EXPECT_NEAR(e.total(),
              e.dram_j + e.buffer_j + e.mac_j + e.vector_j + e.static_j, 1e-12);
  EXPECT_GT(e.dram_fraction(), 0);
  EXPECT_LT(e.dram_fraction(), 1);
}

TEST(Energy, ZeroSkipReducesMacEnergy) {
  EnergyModel skip;
  EnergyModel no_skip = skip;
  no_skip.zero_skip_fraction = 0;
  const double with = compute_energy(skip, 0, 0, 1e12, 0, 0).mac_j;
  const double without = compute_energy(no_skip, 0, 0, 1e12, 0, 0).mac_j;
  EXPECT_LT(with, without);
  EXPECT_NEAR(with / without, 1.0 - skip.zero_skip_fraction, 1e-9);
}

TEST(Energy, ScalesLinearly) {
  const EnergyModel m;
  const EnergyBreakdown a = compute_energy(m, 1e9, 1e9, 1e12, 1e9, 0.1);
  const EnergyBreakdown b = compute_energy(m, 2e9, 2e9, 2e12, 2e9, 0.2);
  EXPECT_NEAR(b.total(), 2 * a.total(), 1e-9);
}

// ---- Tab. 2 area / power --------------------------------------------------------

TEST(Area, PeArrayMatchesPaper) {
  const AreaModel m;
  EXPECT_NEAR(m.array_mm2(), 199.45, 0.5);  // Sec. 4.2
}

TEST(Area, TotalDieMatchesPaper) {
  const AreaModel m;
  EXPECT_NEAR(m.total_mm2(), 534.0, 2.0);  // Tab. 2
}

TEST(Area, PeakTopsMatchesPaper) {
  const AreaModel m;
  EXPECT_NEAR(m.peak_tops(), 45.0, 1.0);  // Tab. 2: 45 FP16 TOPS
}

TEST(Area, ComparisonTableListsFourAccelerators) {
  const auto specs = accelerator_comparison(AreaModel{});
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "V100");
  EXPECT_EQ(specs[3].name, "WaveCore");
  EXPECT_NEAR(specs[3].peak_power_w, 56.0, 1e-9);
  // WaveCore is smaller than V100 despite a similar role.
  EXPECT_LT(specs[3].die_area_mm2, specs[0].die_area_mm2);
}

// ---- GPU comparator --------------------------------------------------------------

TEST(Gpu, StepTimeScalesWithDepth) {
  const GpuModel gpu;
  const auto r50 = simulate_gpu_step(gpu, models::make_network("resnet50"), 64);
  const auto r101 =
      simulate_gpu_step(gpu, models::make_network("resnet101"), 64);
  EXPECT_GT(r101.time_s, r50.time_s);
  EXPECT_GT(r50.time_s, 0);
}

TEST(Gpu, Im2colMaterializationCostsTrafficAndTime) {
  GpuModel with;
  GpuModel without = with;
  without.materialize_im2col = false;
  const core::Network net = models::make_network("resnet50");
  const auto a = simulate_gpu_step(with, net, 64);
  const auto b = simulate_gpu_step(without, net, 64);
  EXPECT_GT(a.dram_bytes, b.dram_bytes);
  EXPECT_GE(a.time_s, b.time_s);
}

TEST(Gpu, V100StepTimeInMeasuredBallpark) {
  // Fig. 13 reports ~200 ms per 64-sample ResNet50 step for Caffe on V100.
  const auto r = simulate_gpu_step(GpuModel{}, models::make_network("resnet50"), 64);
  EXPECT_GT(r.time_s, 0.05);
  EXPECT_LT(r.time_s, 0.6);
}

}  // namespace
}  // namespace mbs::arch
