// Tests for the functional training substrate: finite-difference gradient
// checks for every operator, and the paper's central correctness claim —
// MBS serialization leaves GN training math unchanged (Sec. 3), while BN is
// incompatible with serialization (Sec. 3.1).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "train/attention.h"
#include "train/data.h"
#include "train/loss.h"
#include "train/model.h"
#include "train/norm.h"
#include "train/ops.h"
#include "train/optim.h"
#include "train/trainer.h"
#include "train/transformer_model.h"

namespace mbs::train {
namespace {

// ---- Finite-difference gradient checking -----------------------------------

/// Checks d(sum(f(x)))/dx against central differences at every coordinate.
void check_input_gradient(
    const std::function<Tensor(const Tensor&)>& f,
    const std::function<Tensor(const Tensor&, const Tensor&)>& backward,
    Tensor x, double eps = 1e-3, double tol = 2e-2) {
  const Tensor y0 = f(x);
  Tensor dy(y0.shape());
  dy.fill(1.0f);  // loss = sum(y)
  const Tensor dx = backward(x, dy);
  ASSERT_EQ(dx.size(), x.size());
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const Tensor yp = f(x);
    x[i] = orig - static_cast<float>(eps);
    const Tensor ym = f(x);
    x[i] = orig;
    double sp = 0, sm = 0;
    for (std::int64_t j = 0; j < yp.size(); ++j) {
      sp += yp[j];
      sm += ym[j];
    }
    const double numeric = (sp - sm) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, tol) << "coordinate " << i;
  }
}

TEST(GradCheck, Conv2dInput) {
  util::Rng rng(3);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  const Tensor w = Tensor::randn({3, 2, 3, 3}, rng, 0.5);
  const Tensor b = Tensor::randn({3}, rng, 0.1);
  check_input_gradient(
      [&](const Tensor& xx) { return conv2d_forward(xx, w, b, 1, 1); },
      [&](const Tensor& xx, const Tensor& dy) {
        return conv2d_backward(xx, w, dy, 1, 1).dx;
      },
      x);
}

TEST(GradCheck, Conv2dStridedInput) {
  util::Rng rng(4);
  Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
  const Tensor w = Tensor::randn({2, 2, 3, 3}, rng, 0.5);
  const Tensor b = Tensor({2});
  check_input_gradient(
      [&](const Tensor& xx) { return conv2d_forward(xx, w, b, 2, 1); },
      [&](const Tensor& xx, const Tensor& dy) {
        return conv2d_backward(xx, w, dy, 2, 1).dx;
      },
      x);
}

TEST(GradCheck, Conv2dWeights) {
  util::Rng rng(5);
  const Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  Tensor w = Tensor::randn({2, 2, 3, 3}, rng, 0.5);
  const Tensor b = Tensor({2});
  check_input_gradient(
      [&](const Tensor& ww) { return conv2d_forward(x, ww, b, 1, 1); },
      [&](const Tensor& ww, const Tensor& dy) {
        return conv2d_backward(x, ww, dy, 1, 1).dw;
      },
      w);
}

TEST(GradCheck, Conv2dBias) {
  util::Rng rng(6);
  const Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  const Tensor w = Tensor::randn({2, 2, 3, 3}, rng, 0.5);
  Tensor b = Tensor::randn({2}, rng, 0.1);
  check_input_gradient(
      [&](const Tensor& bb) { return conv2d_forward(x, w, bb, 1, 1); },
      [&](const Tensor&, const Tensor& dy) {
        return conv2d_backward(x, w, dy, 1, 1).dbias;
      },
      b);
}

TEST(GradCheck, Linear) {
  util::Rng rng(7);
  Tensor x = Tensor::randn({3, 6}, rng);
  const Tensor w = Tensor::randn({4, 6}, rng, 0.5);
  const Tensor b = Tensor::randn({4}, rng, 0.1);
  check_input_gradient(
      [&](const Tensor& xx) { return linear_forward(xx, w, b); },
      [&](const Tensor& xx, const Tensor& dy) {
        return linear_backward(xx, w, dy).dx;
      },
      x);
}

TEST(GradCheck, LinearWeights) {
  util::Rng rng(8);
  const Tensor x = Tensor::randn({3, 5}, rng);
  Tensor w = Tensor::randn({2, 5}, rng, 0.5);
  const Tensor b = Tensor({2});
  check_input_gradient(
      [&](const Tensor& ww) { return linear_forward(x, ww, b); },
      [&](const Tensor& ww, const Tensor& dy) {
        return linear_backward(x, ww, dy).dw;
      },
      w);
}

TEST(GradCheck, BatchNormInput) {
  util::Rng rng(9);
  Tensor x = Tensor::randn({3, 2, 3, 3}, rng);
  const Tensor gamma = Tensor::randn({2}, rng, 0.2);
  const Tensor beta = Tensor::randn({2}, rng, 0.2);
  check_input_gradient(
      [&](const Tensor& xx) {
        NormCache c;
        return batchnorm_forward(xx, gamma, beta, c);
      },
      [&](const Tensor& xx, const Tensor& dy) {
        NormCache c;
        batchnorm_forward(xx, gamma, beta, c);
        return batchnorm_backward(dy, gamma, c).dx;
      },
      x, 1e-3, 3e-2);
}

TEST(GradCheck, GroupNormInput) {
  util::Rng rng(10);
  Tensor x = Tensor::randn({2, 4, 3, 3}, rng);
  const Tensor gamma = Tensor::full({4}, 1.2f);
  const Tensor beta = Tensor::full({4}, -0.1f);
  check_input_gradient(
      [&](const Tensor& xx) {
        NormCache c;
        return groupnorm_forward(xx, gamma, beta, 2, c);
      },
      [&](const Tensor& xx, const Tensor& dy) {
        NormCache c;
        groupnorm_forward(xx, gamma, beta, 2, c);
        return groupnorm_backward(dy, gamma, 2, c).dx;
      },
      x, 1e-3, 3e-2);
}

TEST(GradCheck, GroupNormGamma) {
  util::Rng rng(11);
  const Tensor x = Tensor::randn({2, 4, 3, 3}, rng);
  Tensor gamma = Tensor::full({4}, 1.0f);
  const Tensor beta = Tensor({4});
  check_input_gradient(
      [&](const Tensor& gg) {
        NormCache c;
        return groupnorm_forward(x, gg, beta, 2, c);
      },
      [&](const Tensor& gg, const Tensor& dy) {
        NormCache c;
        groupnorm_forward(x, gg, beta, 2, c);
        return groupnorm_backward(dy, gg, 2, c).dgamma;
      },
      gamma, 1e-3, 3e-2);
}

TEST(GradCheck, AttentionInput) {
  // d_model 4, 2 heads, 3 tokens, 2 samples: small enough for the full
  // finite-difference sweep over all 72 qkv coordinates.
  util::Rng rng(11);
  Tensor x = Tensor::randn({2, 12, 3, 1}, rng);
  check_input_gradient(
      [&](const Tensor& xx) {
        AttentionCache c;
        return attention_forward(xx, /*heads=*/2, c);
      },
      [&](const Tensor& xx, const Tensor& dy) {
        AttentionCache c;
        attention_forward(xx, 2, c);
        return attention_backward(dy, xx, 2, c);
      },
      x);
}

TEST(GradCheck, AttentionSingleHead) {
  util::Rng rng(17);
  Tensor x = Tensor::randn({1, 9, 4, 1}, rng);  // d_model 3, 4 tokens
  check_input_gradient(
      [&](const Tensor& xx) {
        AttentionCache c;
        return attention_forward(xx, 1, c);
      },
      [&](const Tensor& xx, const Tensor& dy) {
        AttentionCache c;
        attention_forward(xx, 1, c);
        return attention_backward(dy, xx, 1, c);
      },
      x);
}

TEST(GradCheck, MaxPool) {
  util::Rng rng(12);
  // Distinct values avoid ties, which break finite differences.
  Tensor x({1, 2, 4, 4});
  for (std::int64_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(i % 7) + 0.01f * static_cast<float>(i);
  check_input_gradient(
      [&](const Tensor& xx) { return maxpool_forward(xx, 2, 2).y; },
      [&](const Tensor& xx, const Tensor& dy) {
        const MaxPoolResult r = maxpool_forward(xx, 2, 2);
        return maxpool_backward(dy, r, xx.shape());
      },
      x);
}

TEST(GradCheck, GlobalAvgPool) {
  util::Rng rng(13);
  Tensor x = Tensor::randn({2, 3, 3, 3}, rng);
  check_input_gradient(
      [&](const Tensor& xx) { return global_avg_pool_forward(xx); },
      [&](const Tensor& xx, const Tensor& dy) {
        return global_avg_pool_backward(dy, xx.shape());
      },
      x);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  util::Rng rng(14);
  Tensor logits = Tensor::randn({3, 4}, rng);
  const std::vector<int> labels{1, 3, 0};
  const LossResult base = softmax_cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(eps);
    const double lp = softmax_cross_entropy(logits, labels).loss_sum;
    logits[i] = orig - static_cast<float>(eps);
    const double lm = softmax_cross_entropy(logits, labels).loss_sum;
    logits[i] = orig;
    EXPECT_NEAR(base.dlogits[i], (lp - lm) / (2 * eps), 1e-3);
  }
}

// ---- Operator semantics ----------------------------------------------------

TEST(Ops, ReluClampsAndMasks) {
  Tensor x({4});
  x[0] = -1;
  x[1] = 0;
  x[2] = 2;
  x[3] = -0.5;
  const Tensor y = relu_forward(x);
  EXPECT_EQ(y[0], 0);
  EXPECT_EQ(y[2], 2);
  Tensor dy({4});
  dy.fill(1.0f);
  const Tensor dx = relu_backward(dy, y);
  // Gradient is exactly 0 or 1 — the property that lets MBS store 1-bit
  // masks (Sec. 3).
  EXPECT_EQ(dx[0], 0);
  EXPECT_EQ(dx[2], 1);
  EXPECT_EQ(dx[3], 0);
}

TEST(Ops, ConvOutputShape) {
  util::Rng rng(1);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor w = Tensor::randn({5, 3, 3, 3}, rng);
  const Tensor y = conv2d_forward(x, w, Tensor(), 2, 1);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 5, 4, 4}));
}

TEST(Ops, ConvIdentityKernel) {
  // 1x1 kernel with identity weights reproduces the input channel.
  Tensor x({1, 1, 3, 3});
  for (std::int64_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  Tensor w({1, 1, 1, 1});
  w[0] = 1.0f;
  const Tensor y = conv2d_forward(x, w, Tensor(), 1, 0);
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Norm, BatchNormNormalizesPerChannel) {
  util::Rng rng(2);
  const Tensor x = Tensor::randn({8, 3, 4, 4}, rng, 3.0);
  const Tensor gamma = Tensor::full({3}, 1.0f);
  const Tensor beta = Tensor({3});
  NormCache c;
  const Tensor y = batchnorm_forward(x, gamma, beta, c);
  // Each channel of y has ~zero mean and ~unit variance.
  for (int ch = 0; ch < 3; ++ch) {
    double s = 0, sq = 0;
    int m = 0;
    for (int b = 0; b < 8; ++b)
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) {
          const double v = y.at(b, ch, i, j);
          s += v;
          sq += v * v;
          ++m;
        }
    EXPECT_NEAR(s / m, 0.0, 1e-4);
    EXPECT_NEAR(sq / m, 1.0, 1e-2);
  }
}

TEST(Norm, GroupNormIsPerSample) {
  // GN statistics must not mix samples: normalizing a batch equals
  // normalizing each sample separately. This is the property that makes GN
  // compatible with MBS (Sec. 3.1).
  util::Rng rng(3);
  const Tensor x = Tensor::randn({4, 4, 3, 3}, rng, 2.0);
  const Tensor gamma = Tensor::full({4}, 1.0f);
  const Tensor beta = Tensor({4});
  NormCache c_all;
  const Tensor y_all = groupnorm_forward(x, gamma, beta, 2, c_all);
  for (int b = 0; b < 4; ++b) {
    const Tensor xb = x.slice_batch(b, 1);
    NormCache c_one;
    const Tensor yb = groupnorm_forward(xb, gamma, beta, 2, c_one);
    for (std::int64_t i = 0; i < yb.size(); ++i)
      EXPECT_FLOAT_EQ(yb[i], y_all[b * yb.size() + i]);
  }
}

TEST(Norm, BatchNormIsNotPerSample) {
  util::Rng rng(4);
  const Tensor x = Tensor::randn({4, 2, 3, 3}, rng, 2.0);
  const Tensor gamma = Tensor::full({2}, 1.0f);
  const Tensor beta = Tensor({2});
  NormCache c_all;
  const Tensor y_all = batchnorm_forward(x, gamma, beta, c_all);
  const Tensor xb = x.slice_batch(0, 1);
  NormCache c_one;
  const Tensor yb = batchnorm_forward(xb, gamma, beta, c_one);
  double max_diff = 0;
  for (std::int64_t i = 0; i < yb.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(yb[i]) - y_all[i]));
  EXPECT_GT(max_diff, 0.05);
}

// ---- The central claim: serialization equivalence ---------------------------

class SerializationEquivalence : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(SerializationEquivalence, GnGradientsMatchFullBatch) {
  SmallCnnConfig cfg;
  cfg.norm = NormMode::kGroup;
  cfg.seed = 99;
  const Dataset data = make_synthetic_dataset(16, 4, 1, 12, /*seed=*/21);

  SmallCnn full(cfg);
  compute_gradients(full, data.images, data.labels, {16});

  SmallCnn serial(cfg);  // identical init (same seed)
  compute_gradients(serial, data.images, data.labels, GetParam());

  auto gf = full.gradients();
  auto gs = serial.gradients();
  ASSERT_EQ(gf.size(), gs.size());
  for (std::size_t i = 0; i < gf.size(); ++i) {
    ASSERT_EQ(gf[i]->size(), gs[i]->size());
    for (std::int64_t j = 0; j < gf[i]->size(); ++j)
      EXPECT_NEAR((*gf[i])[j], (*gs[i])[j], 2e-4)
          << "param " << i << " elem " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChunkPartitions, SerializationEquivalence,
    ::testing::Values(std::vector<int>{8, 8}, std::vector<int>{4, 4, 4, 4},
                      std::vector<int>{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                                       1, 1, 1},
                      std::vector<int>{6, 6, 4}, std::vector<int>{15, 1}));

TEST(SerializationDivergence, BnGradientsDifferUnderSerialization) {
  // The negative control: BN statistics change with the chunking, so
  // serialized BN does NOT reproduce full-batch gradients — the reason the
  // paper switches to GN (Sec. 3.1).
  SmallCnnConfig cfg;
  cfg.norm = NormMode::kBatch;
  cfg.seed = 99;
  const Dataset data = make_synthetic_dataset(16, 4, 1, 12, 21);

  SmallCnn full(cfg);
  compute_gradients(full, data.images, data.labels, {16});
  SmallCnn serial(cfg);
  compute_gradients(serial, data.images, data.labels, {4, 4, 4, 4});

  auto gf = full.gradients();
  auto gs = serial.gradients();
  double max_rel = 0;
  for (std::size_t i = 0; i < gf.size(); ++i)
    for (std::int64_t j = 0; j < gf[i]->size(); ++j) {
      const double a = (*gf[i])[j], b = (*gs[i])[j];
      const double scale = std::max({std::abs(a), std::abs(b), 1e-6});
      max_rel = std::max(max_rel, std::abs(a - b) / scale);
    }
  EXPECT_GT(max_rel, 0.05);
}

// ---- The transformer leg of the equivalence claim ---------------------------

/// [N, C, H, W] images reinterpreted as [N, C, H*W, 1] token sequences
/// (row-major layouts are identical, so this is a pure copy).
Tensor tokens_from_images(const Tensor& images) {
  Tensor t({images.dim(0), images.dim(1), images.dim(2) * images.dim(3), 1});
  std::memcpy(t.data(), images.data(),
              static_cast<std::size_t>(images.size()) * sizeof(float));
  return t;
}

/// One accumulation pass over a chunk partition, gradients scaled by
/// 1/mini-batch — the transformer analogue of compute_gradients().
void transformer_gradients(TinyTransformer& model, const Tensor& x,
                           const std::vector<int>& labels,
                           const std::vector<int>& chunks) {
  const int n = x.dim(0);
  model.zero_grad();
  int offset = 0;
  for (int c : chunks) {
    const Tensor xc = x.slice_batch(offset, c);
    const std::vector<int> yc(labels.begin() + offset,
                              labels.begin() + offset + c);
    LossResult lr = softmax_cross_entropy(model.forward(xc), yc);
    lr.dlogits.scale(1.0f / static_cast<float>(n));
    model.backward(lr.dlogits);
    offset += c;
  }
}

class TransformerSerializationEquivalence
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(TransformerSerializationEquivalence, GnGradientsMatchFullBatch) {
  // Attention is sample-local (every token attends within its own sample),
  // so the Sec. 3 equivalence argument extends verbatim: GN + real softmax
  // attention under any chunk partition reproduces full-batch gradients to
  // float32 rounding.
  TinyTransformerConfig cfg;  // norm defaults to kGroup
  cfg.seed = 7;
  const Dataset data = make_synthetic_dataset(16, 3, 3, 4, /*seed=*/21);
  const Tensor x = tokens_from_images(data.images);  // 9 tokens = cfg.seq

  TinyTransformer full(cfg);
  transformer_gradients(full, x, data.labels, {16});
  TinyTransformer serial(cfg);  // identical init (same seed)
  transformer_gradients(serial, x, data.labels, GetParam());

  auto gf = full.gradients();
  auto gs = serial.gradients();
  ASSERT_EQ(gf.size(), gs.size());
  for (std::size_t i = 0; i < gf.size(); ++i) {
    ASSERT_EQ(gf[i]->size(), gs[i]->size());
    for (std::int64_t j = 0; j < gf[i]->size(); ++j)
      EXPECT_NEAR((*gf[i])[j], (*gs[i])[j], 2e-4)
          << "param " << i << " elem " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChunkPartitions, TransformerSerializationEquivalence,
    ::testing::Values(std::vector<int>{8, 8}, std::vector<int>{4, 4, 4, 4},
                      std::vector<int>{6, 6, 4}, std::vector<int>{15, 1}));

TEST(TransformerSerializationDivergence, BnGradientsDifferUnderSerialization) {
  // The negative control survives the architecture swap: BN statistics
  // still span the mini-batch, so serialized BN diverges on a transformer
  // exactly as it does on the CNN.
  TinyTransformerConfig cfg;
  cfg.norm = NormMode::kBatch;
  cfg.seed = 7;
  const Dataset data = make_synthetic_dataset(16, 3, 3, 4, 21);
  const Tensor x = tokens_from_images(data.images);

  TinyTransformer full(cfg);
  transformer_gradients(full, x, data.labels, {16});
  TinyTransformer serial(cfg);
  transformer_gradients(serial, x, data.labels, {4, 4, 4, 4});

  auto gf = full.gradients();
  auto gs = serial.gradients();
  double max_rel = 0;
  for (std::size_t i = 0; i < gf.size(); ++i)
    for (std::int64_t j = 0; j < gf[i]->size(); ++j) {
      const double a = (*gf[i])[j], b = (*gs[i])[j];
      const double scale = std::max({std::abs(a), std::abs(b), 1e-6});
      max_rel = std::max(max_rel, std::abs(a - b) / scale);
    }
  EXPECT_GT(max_rel, 0.05);
}

TEST(Transformer, ForwardShapesAndDeterminism) {
  TinyTransformerConfig cfg;
  cfg.seed = 5;
  TinyTransformer a(cfg), b(cfg);
  const Dataset data = make_synthetic_dataset(8, 3, 3, 4, 3);
  const Tensor x = tokens_from_images(data.images);
  const Tensor la = a.forward(x);
  const Tensor lb = b.forward(x);
  EXPECT_EQ(la.shape(), (std::vector<int>{8, 4}));
  for (std::int64_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
}

// ---- Model / optimizer / data ----------------------------------------------

TEST(Model, ForwardShapesAndDeterminism) {
  SmallCnnConfig cfg;
  cfg.seed = 5;
  SmallCnn a(cfg), b(cfg);
  const Dataset data = make_synthetic_dataset(8, 4, 1, 12, 3);
  const Tensor la = a.forward(data.images);
  const Tensor lb = b.forward(data.images);
  EXPECT_EQ(la.shape(), (std::vector<int>{8, 4}));
  for (std::int64_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST(Model, GradientsAccumulateAcrossBackwardCalls) {
  SmallCnnConfig cfg;
  SmallCnn m(cfg);
  const Dataset data = make_synthetic_dataset(4, 4, 1, 12, 3);
  const Tensor logits = m.forward(data.images);
  LossResult lr = softmax_cross_entropy(logits, data.labels);
  m.zero_grad();
  m.backward(lr.dlogits);
  const float g1 = (*m.gradients()[0])[0];
  m.forward(data.images);
  m.backward(lr.dlogits);
  EXPECT_NEAR((*m.gradients()[0])[0], 2 * g1, 1e-5);
}

TEST(Model, ZeroGradClears) {
  SmallCnnConfig cfg;
  SmallCnn m(cfg);
  const Dataset data = make_synthetic_dataset(4, 4, 1, 12, 3);
  const Tensor logits = m.forward(data.images);
  LossResult lr = softmax_cross_entropy(logits, data.labels);
  m.backward(lr.dlogits);
  m.zero_grad();
  for (Tensor* g : m.gradients())
    for (std::int64_t i = 0; i < g->size(); ++i) EXPECT_EQ((*g)[i], 0.0f);
}

TEST(Optim, SgdStepMovesAgainstGradient) {
  Tensor p({2});
  p[0] = 1.0f;
  p[1] = -1.0f;
  Tensor g({2});
  g[0] = 0.5f;
  g[1] = -0.5f;
  Sgd opt({/*lr=*/0.1, /*momentum=*/0.0, /*weight_decay=*/0.0});
  opt.step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(p[1], -1.0f + 0.05f);
}

TEST(Optim, MomentumAccumulates) {
  Tensor p({1});
  Tensor g({1});
  g[0] = 1.0f;
  Sgd opt({/*lr=*/1.0, /*momentum=*/0.5, /*weight_decay=*/0.0});
  opt.step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], -1.0f);  // v=1
  opt.step({&p}, {&g});
  EXPECT_FLOAT_EQ(p[0], -2.5f);  // v=1.5
}

TEST(Data, DeterministicAndBalanced) {
  const Dataset a = make_synthetic_dataset(64, 4, 1, 12, 11);
  const Dataset b = make_synthetic_dataset(64, 4, 1, 12, 11);
  for (std::int64_t i = 0; i < a.images.size(); ++i)
    EXPECT_EQ(a.images[i], b.images[i]);
  std::vector<int> counts(4, 0);
  for (int l : a.labels) counts[static_cast<std::size_t>(l)]++;
  for (int c : counts) EXPECT_EQ(c, 16);
}

TEST(Data, DifferentSeedsDiffer) {
  const Dataset a = make_synthetic_dataset(8, 4, 1, 12, 1);
  const Dataset b = make_synthetic_dataset(8, 4, 1, 12, 2);
  double diff = 0;
  for (std::int64_t i = 0; i < a.images.size(); ++i)
    diff += std::abs(static_cast<double>(a.images[i]) - b.images[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Trainer, LearnsSyntheticTask) {
  SmallCnnConfig cfg;
  cfg.norm = NormMode::kGroup;
  SmallCnn model(cfg);
  const Dataset train_set = make_synthetic_dataset(256, 4, 1, 12, 31);
  const Dataset val_set = make_synthetic_dataset(128, 4, 1, 12, 32);
  TrainRunConfig rc;
  rc.epochs = 6;
  rc.sgd.lr = 0.05;
  const auto logs = train_model(model, train_set, val_set, rc);
  ASSERT_EQ(logs.size(), 6u);
  // Chance is 75% error; the model must do far better.
  EXPECT_LT(logs.back().val_error, 40.0);
  EXPECT_LT(logs.back().val_error, logs.front().val_error + 1e-9);
}

TEST(Trainer, SerializedTrainingMatchesFullBatchForGn) {
  // Whole-run equivalence: identical val-error trajectories for GN with and
  // without MBS serialization (float32 tolerance).
  const Dataset train_set = make_synthetic_dataset(128, 4, 1, 12, 41);
  const Dataset val_set = make_synthetic_dataset(64, 4, 1, 12, 42);
  TrainRunConfig rc;
  rc.epochs = 3;
  rc.batch = 32;

  SmallCnnConfig cfg;
  cfg.norm = NormMode::kGroup;
  cfg.seed = 77;
  SmallCnn full(cfg);
  const auto lf = train_model(full, train_set, val_set, rc);

  rc.chunks = {8, 8, 8, 8};
  SmallCnn serial(cfg);
  const auto ls = train_model(serial, train_set, val_set, rc);

  for (std::size_t e = 0; e < lf.size(); ++e) {
    EXPECT_NEAR(lf[e].train_loss, ls[e].train_loss, 1e-3);
    EXPECT_NEAR(lf[e].val_error, ls[e].val_error, 1.6);
  }
}

TEST(Tensor, SliceBatch) {
  Tensor t({4, 2});
  for (std::int64_t i = 0; i < 8; ++i) t[i] = static_cast<float>(i);
  const Tensor s = t.slice_batch(1, 2);
  EXPECT_EQ(s.shape(), (std::vector<int>{2, 2}));
  EXPECT_EQ(s[0], 2.0f);
  EXPECT_EQ(s[3], 5.0f);
}

TEST(Tensor, AxpyAndScale) {
  Tensor a = Tensor::full({3}, 1.0f);
  Tensor b = Tensor::full({3}, 2.0f);
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[1], 4.0f);
}

}  // namespace
}  // namespace mbs::train
