// Unit tests for the shape/layer/block IR in src/core.
#include <gtest/gtest.h>

#include "core/block.h"
#include "core/layer.h"
#include "core/network.h"
#include "core/shape.h"

namespace mbs::core {
namespace {

TEST(Shape, ElementsAndBytes) {
  FeatureShape s{64, 56, 56};
  EXPECT_EQ(s.elements(), 64 * 56 * 56);
  EXPECT_EQ(s.bytes(DataType::kF16), 64 * 56 * 56 * 2);
  EXPECT_EQ(s.bytes(DataType::kF32), 64 * 56 * 56 * 4);
}

TEST(Shape, BitPackingRoundsUp) {
  // 9 mask bits occupy 2 bytes.
  EXPECT_EQ(bytes_for(9, DataType::kBit), 2);
  EXPECT_EQ(bytes_for(8, DataType::kBit), 1);
  EXPECT_EQ(bytes_for(1, DataType::kBit), 1);
  EXPECT_EQ(bytes_for(0, DataType::kBit), 0);
}

TEST(Shape, DtypeBits) {
  EXPECT_EQ(dtype_bits(DataType::kF16), 16);
  EXPECT_EQ(dtype_bits(DataType::kF32), 32);
  EXPECT_EQ(dtype_bits(DataType::kI8), 8);
  EXPECT_EQ(dtype_bits(DataType::kBit), 1);
}

TEST(ConvOutDim, MatchesClosedForm) {
  EXPECT_EQ(conv_out_dim(224, 7, 2, 3), 112);
  EXPECT_EQ(conv_out_dim(112, 3, 2, 1), 56);
  EXPECT_EQ(conv_out_dim(56, 3, 1, 1), 56);
  EXPECT_EQ(conv_out_dim(299, 3, 2, 0), 149);
  EXPECT_EQ(conv_out_dim(224, 11, 4, 2), 55);
}

TEST(Layer, ConvShapeAndParams) {
  Layer l = make_conv("c", FeatureShape{3, 224, 224}, 64, 7, 2, 3);
  EXPECT_EQ(l.out.c, 64);
  EXPECT_EQ(l.out.h, 112);
  EXPECT_EQ(l.out.w, 112);
  EXPECT_EQ(l.param_count(), 3LL * 7 * 7 * 64);
}

TEST(Layer, ConvBiasAddsOutputChannels) {
  Layer l = make_conv("c", FeatureShape{3, 224, 224}, 64, 7, 2, 3, true);
  EXPECT_EQ(l.param_count(), 3LL * 7 * 7 * 64 + 64);
}

TEST(Layer, AsymmetricPadding) {
  // Inception 1x7 convolution: pad only along the width.
  Layer l = make_conv("c", FeatureShape{192, 17, 17}, 224, 1, 7, 1, 0, 3);
  EXPECT_EQ(l.out.h, 17);
  EXPECT_EQ(l.out.w, 17);
  EXPECT_EQ(l.param_count(), 192LL * 1 * 7 * 224);
}

TEST(Layer, FcParams) {
  Layer l = make_fc("fc", 2048, 1000);
  EXPECT_EQ(l.param_count(), 2048LL * 1000 + 1000);
  EXPECT_EQ(l.out.c, 1000);
}

TEST(Layer, NormHasTwoParamsPerChannel) {
  Layer l = make_norm("n", FeatureShape{256, 56, 56});
  EXPECT_EQ(l.param_count(), 512);
  EXPECT_EQ(l.out, l.in);
}

TEST(Layer, PoolShapes) {
  Layer l = make_pool("p", FeatureShape{64, 112, 112}, 3, 2, 1, PoolKind::kMax);
  EXPECT_EQ(l.out.h, 56);
  EXPECT_EQ(l.param_count(), 0);
  Layer g = make_global_avg_pool("g", FeatureShape{2048, 7, 7});
  EXPECT_EQ(g.out.h, 1);
  EXPECT_EQ(g.out.c, 2048);
}

TEST(Layer, ConvFlops) {
  // 1x1 conv: 2 * Cout*Hout*Wout * Cin MACs.
  Layer l = make_conv("c", FeatureShape{256, 56, 56}, 64, 1, 1, 0);
  EXPECT_EQ(l.flops_per_sample(), 2LL * 64 * 56 * 56 * 256);
}

TEST(Layer, AddReadsTwoOperands) {
  Layer l = make_add("a", FeatureShape{256, 56, 56});
  EXPECT_EQ(l.input_bytes_per_sample(), 2 * l.in.bytes());
  EXPECT_EQ(l.output_bytes_per_sample(), l.in.bytes());
}

TEST(Block, SimpleChainFootprint) {
  std::vector<Layer> chain;
  chain.push_back(make_conv("c", FeatureShape{3, 224, 224}, 64, 7, 2, 3));
  chain.push_back(make_norm("n", chain.back().out));
  chain.push_back(make_act("r", chain.back().out));
  Block b = make_simple_block("stem", chain);
  // Peak working set is the conv: input 3x224x224 + output 64x112x112.
  const std::int64_t conv_ws =
      FeatureShape{3, 224, 224}.bytes() + FeatureShape{64, 112, 112}.bytes();
  const std::int64_t norm_ws = 2 * FeatureShape{64, 112, 112}.bytes();
  EXPECT_EQ(b.footprint_per_branch(), std::max(conv_ws, norm_ws));
  // Simple blocks are identical under both policies.
  EXPECT_EQ(b.footprint_inter_branch(), b.footprint_per_branch());
}

// A hand-computed residual bottleneck checks Eq. 1.
TEST(Block, ResidualFootprintMatchesEq1) {
  const FeatureShape in{256, 56, 56};
  std::vector<Layer> main;
  main.push_back(make_conv("a", in, 64, 1, 1, 0));
  main.push_back(make_conv("b", main.back().out, 64, 3, 1, 1));
  main.push_back(make_conv("c", main.back().out, 256, 1, 1, 0));
  Block b = make_residual_block("res", in, main, {});

  const std::int64_t d_in = in.bytes();
  const std::int64_t d_mid = FeatureShape{64, 56, 56}.bytes();
  const std::int64_t d_out = FeatureShape{256, 56, 56}.bytes();
  // Eq. 1 candidates for the main branch (b=1):
  //   l=1: Din + Dout            = d_in + d_mid
  //   l=2: Din + Dout + Dblock_in = d_mid + d_mid + d_in
  //   l=3: Din + Dout + Dblock_in = d_mid + d_out + d_in
  // Identity shortcut merge (in-place Add): main_out + shortcut(d_in).
  const std::int64_t eq1 = std::max({d_in + d_mid, 2 * d_mid + d_in,
                                     d_mid + d_out + d_in, d_out + d_in});
  EXPECT_EQ(b.footprint_inter_branch(), eq1);
  // Per-branch (MBS1) footprint ignores the cross-branch terms; the
  // in-place Add holds its two operands.
  const std::int64_t per_branch =
      std::max({d_in + d_mid, d_mid + d_mid, d_mid + d_out, 2 * d_out});
  EXPECT_EQ(b.footprint_per_branch(), per_branch);
  // Inter-branch provisioning can never need less space.
  EXPECT_GE(b.footprint_inter_branch(), b.footprint_per_branch());
}

TEST(Block, InceptionFootprintMatchesEq2) {
  const FeatureShape in{192, 35, 35};
  std::vector<std::vector<Layer>> branches;
  branches.push_back({make_conv("b1", in, 64, 1, 1, 0)});
  branches.push_back({make_conv("b2a", in, 48, 1, 1, 0),
                      make_conv("b2b", FeatureShape{48, 35, 35}, 64, 5, 1, 2)});
  Block b = make_inception_block("mix", in, branches);
  EXPECT_EQ(b.out.c, 128);

  const std::int64_t d_in = in.bytes();
  const std::int64_t d_out = b.out.bytes();
  const std::int64_t d_b1 = FeatureShape{64, 35, 35}.bytes();
  const std::int64_t d_b2a = FeatureShape{48, 35, 35}.bytes();
  // Eq. 2 candidates:
  //  b1 l=1 (first and last): Din + Dout = d_in + d_b1
  //  b2 l=1 (first, not last): d_in + d_b2a + Dblock_out
  //  b2 l=2 (not first, last): d_b2a + d_b1 + Dblock_in
  //  merge: Dblock_in + Dblock_out
  const std::int64_t eq2 =
      std::max({d_in + d_b1, d_in + d_b2a + d_out, d_b2a + d_b1 + d_in,
                d_in + d_out});
  EXPECT_EQ(b.footprint_inter_branch(), eq2);
}

TEST(Block, ParamAndFlopAggregation) {
  const FeatureShape in{64, 56, 56};
  std::vector<Layer> main;
  main.push_back(make_conv("a", in, 64, 3, 1, 1));
  main.push_back(make_norm("an", main.back().out));
  Block b = make_residual_block("res", in, main, {});
  EXPECT_EQ(b.param_count(), 64LL * 3 * 3 * 64 + 2 * 64);
  // Conv + norm + merge Add + merge ReLU FLOPs.
  const std::int64_t expect = 2LL * 64 * 56 * 56 * 64 * 9 +
                              8LL * 64 * 56 * 56 + 64LL * 56 * 56 +
                              64LL * 56 * 56;
  EXPECT_EQ(b.flops_per_sample(), expect);
  EXPECT_EQ(b.layer_count(), 4);
}

TEST(Network, CheckAcceptsChainedBlocks) {
  Network net;
  net.name = "tiny";
  net.input = FeatureShape{3, 8, 8};
  net.blocks.push_back(make_simple_block(
      "c1", {make_conv("c1", net.input, 8, 3, 1, 1)}));
  net.blocks.push_back(make_simple_block(
      "fc", {make_fc("fc", 8 * 8 * 8, 10)}));
  net.check();
  EXPECT_EQ(net.layer_count(), 2);
  EXPECT_EQ(net.param_count(), 3LL * 3 * 3 * 8 + (8LL * 8 * 8 * 10 + 10));
}

}  // namespace
}  // namespace mbs::core
