// Tests for the MBS scheduler and the traffic model: structural invariants
// of every (network, config) pair, the grouping algorithms, and the traffic
// orderings the paper's evaluation rests on.
#include <gtest/gtest.h>

#include <tuple>

#include "models/zoo.h"
#include "sched/config.h"
#include "sched/scheduler.h"
#include "sched/traffic.h"

namespace mbs::sched {
namespace {

using core::Network;

const ExecConfig kAllConfigs[] = {ExecConfig::kBaseline, ExecConfig::kArchOpt,
                                  ExecConfig::kIL,       ExecConfig::kMbsFs,
                                  ExecConfig::kMbs1,     ExecConfig::kMbs2};

// ---- Basic helpers ----------------------------------------------------------

TEST(Config, Predicates) {
  EXPECT_FALSE(uses_weight_double_buffering(ExecConfig::kBaseline));
  EXPECT_TRUE(uses_weight_double_buffering(ExecConfig::kArchOpt));
  EXPECT_TRUE(uses_weight_double_buffering(ExecConfig::kMbs2));
  EXPECT_FALSE(uses_serialization(ExecConfig::kIL));
  EXPECT_TRUE(uses_serialization(ExecConfig::kMbsFs));
  EXPECT_TRUE(uses_serialization(ExecConfig::kMbs1));
  EXPECT_FALSE(uses_inter_branch_reuse(ExecConfig::kMbs1));
  EXPECT_TRUE(uses_inter_branch_reuse(ExecConfig::kMbs2));
  EXPECT_TRUE(uses_relu_masks(ExecConfig::kMbs2));
  EXPECT_FALSE(uses_relu_masks(ExecConfig::kBaseline));
}

TEST(SubBatch, MaxSubBatchClamps) {
  EXPECT_EQ(max_sub_batch(1, 1024, 32), 32);     // tiny footprint -> mini-batch
  EXPECT_EQ(max_sub_batch(1024, 1024, 32), 1);   // exactly one sample
  EXPECT_EQ(max_sub_batch(2048, 1024, 32), 1);   // even one sample spills
  EXPECT_EQ(max_sub_batch(100, 1000, 32), 10);
}

TEST(SubBatch, IterationsCeil) {
  EXPECT_EQ(iterations_for(32, 32), 1);
  EXPECT_EQ(iterations_for(32, 17), 2);
  EXPECT_EQ(iterations_for(32, 3), 11);
  EXPECT_EQ(iterations_for(32, 1), 32);
}

TEST(Group, ChunksGreedyFill) {
  Group g;
  g.sub_batch = 3;
  g.iterations = 11;
  const auto chunks = g.chunks(32);
  ASSERT_EQ(chunks.size(), 11u);  // Fig. 5: 3,3,3,3,3,3,3,3,3,3,2
  int sum = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i], i + 1 < chunks.size() ? 3 : 2);
    sum += chunks[i];
  }
  EXPECT_EQ(sum, 32);
}

TEST(Group, ChunksExactDivision) {
  Group g;
  g.sub_batch = 8;
  g.iterations = 4;
  const auto chunks = g.chunks(32);
  ASSERT_EQ(chunks.size(), 4u);
  for (int c : chunks) EXPECT_EQ(c, 8);
}

// ---- Parameterized invariants over every (network, config) pair ------------

class ScheduleInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, ExecConfig>> {};

TEST_P(ScheduleInvariants, ValidatesAndCoversAllBlocks) {
  const Network net = models::make_network(std::get<0>(GetParam()));
  const Schedule s = build_schedule(net, std::get<1>(GetParam()));
  EXPECT_EQ(s.validate(net), "");
  EXPECT_EQ(s.groups.front().first, 0);
  EXPECT_EQ(s.groups.back().last, static_cast<int>(net.blocks.size()) - 1);
  // Every block belongs to exactly one group.
  for (int b = 0; b < static_cast<int>(net.blocks.size()); ++b)
    EXPECT_GE(s.group_of_block(b), 0);
}

TEST_P(ScheduleInvariants, SerializedFootprintsFitTheBuffer) {
  const Network net = models::make_network(std::get<0>(GetParam()));
  const ExecConfig cfg = std::get<1>(GetParam());
  const Schedule s = build_schedule(net, cfg);
  if (!uses_serialization(cfg)) {
    EXPECT_EQ(s.groups.size(), 1u);
    EXPECT_EQ(s.groups[0].iterations, 1);
    return;
  }
  for (const Group& g : s.groups)
    for (int b = g.first; b <= g.last; ++b) {
      const auto fp = s.block_footprint[static_cast<std::size_t>(b)];
      if (g.sub_batch > 1) {
        EXPECT_LE(fp * g.sub_batch, s.buffer_bytes)
            << "block " << b << " sub-batch " << g.sub_batch;
      }
    }
}

TEST_P(ScheduleInvariants, TrafficIsPositiveAndFinite) {
  const Network net = models::make_network(std::get<0>(GetParam()));
  const Schedule s = build_schedule(net, std::get<1>(GetParam()));
  const Traffic t = compute_traffic(net, s);
  EXPECT_GT(t.dram_bytes(), 0);
  EXPECT_GT(t.buffer_bytes(), 0);
  EXPECT_GE(t.dram_read_bytes(), 0);
  EXPECT_GE(t.dram_write_bytes(), 0);
  EXPECT_NEAR(t.dram_bytes(), t.dram_read_bytes() + t.dram_write_bytes(),
              1.0);
}

TEST_P(ScheduleInvariants, MasksOnlyUnderMbs) {
  const Network net = models::make_network(std::get<0>(GetParam()));
  const ExecConfig cfg = std::get<1>(GetParam());
  const Schedule s = build_schedule(net, cfg);
  const Traffic t = compute_traffic(net, s);
  const double mask = t.dram_bytes_by_class(TrafficClass::kMask);
  if (uses_relu_masks(cfg) && net.name != "AlexNet") {
    EXPECT_GT(mask, 0);
  }
  if (!uses_relu_masks(cfg)) {
    EXPECT_EQ(mask, 0);
  }
}

std::string schedule_invariant_name(
    const ::testing::TestParamInfo<std::tuple<std::string, ExecConfig>>&
        info) {
  std::string name = std::get<0>(info.param);
  name += "_";
  name += to_string(std::get<1>(info.param));
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworksAllConfigs, ScheduleInvariants,
    ::testing::Combine(::testing::ValuesIn(models::evaluated_network_names()),
                       ::testing::ValuesIn(kAllConfigs)),
    schedule_invariant_name);

// The Transformer family must satisfy the same structural invariants under
// every configuration — the zoo-growth contract of docs/WORKLOADS.md.
INSTANTIATE_TEST_SUITE_P(
    TransformerFamilyAllConfigs, ScheduleInvariants,
    ::testing::Combine(
        ::testing::ValuesIn(models::transformer_network_names()),
        ::testing::ValuesIn(kAllConfigs)),
    schedule_invariant_name);

// ---- Traffic orderings (the paper's Fig. 10c structure) ---------------------

class TrafficOrdering : public ::testing::TestWithParam<std::string> {
 protected:
  double traffic(ExecConfig cfg) const {
    const Network net = models::make_network(GetParam());
    return dram_traffic_bytes(net, build_schedule(net, cfg));
  }
};

TEST_P(TrafficOrdering, BaselineEqualsArchOpt) {
  // Weight double buffering changes timing, not bytes moved.
  EXPECT_DOUBLE_EQ(traffic(ExecConfig::kBaseline),
                   traffic(ExecConfig::kArchOpt));
}

TEST_P(TrafficOrdering, IlNeverExceedsBaseline) {
  EXPECT_LE(traffic(ExecConfig::kIL), traffic(ExecConfig::kBaseline));
}

TEST_P(TrafficOrdering, Mbs1BeatsMbsFs) {
  // Greedy grouping dominates naive full serialization (Sec. 6).
  EXPECT_LT(traffic(ExecConfig::kMbs1), traffic(ExecConfig::kMbsFs));
}

TEST_P(TrafficOrdering, Mbs2NeverWorseThanMbs1) {
  EXPECT_LE(traffic(ExecConfig::kMbs2), traffic(ExecConfig::kMbs1) * 1.0001);
}

TEST_P(TrafficOrdering, Mbs2CutsDeepCnnTrafficSubstantially) {
  if (GetParam() == "alexnet") GTEST_SKIP() << "AlexNet is compute dominated";
  // Paper: 71-78% DRAM traffic reduction for the deep CNNs (Sec. 6).
  EXPECT_LT(traffic(ExecConfig::kMbs2),
            0.45 * traffic(ExecConfig::kArchOpt));
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, TrafficOrdering,
                         ::testing::ValuesIn(models::evaluated_network_names()));

// ---- Grouping algorithms -----------------------------------------------------

TEST(Grouping, ResNet50SubBatchSizesGrowMonotonically) {
  // Down-sampling shrinks features, so deeper groups admit larger
  // sub-batches (Fig. 5: 3 -> 6 -> 11 -> 16 in the paper's run).
  const Network net = models::make_network("resnet50");
  const Schedule s = build_schedule(net, ExecConfig::kMbs2);
  ASSERT_GE(s.groups.size(), 2u);
  for (std::size_t g = 1; g < s.groups.size(); ++g)
    EXPECT_GE(s.groups[g].sub_batch, s.groups[g - 1].sub_batch);
}

TEST(Grouping, GreedyNeverWorseThanInitialOrFs) {
  for (const auto& name : models::evaluated_network_names()) {
    const Network net = models::make_network(name);
    const double greedy =
        dram_traffic_bytes(net, build_schedule(net, ExecConfig::kMbs1));
    const double fs =
        dram_traffic_bytes(net, build_schedule(net, ExecConfig::kMbsFs));
    EXPECT_LE(greedy, fs * 1.0001) << name;
  }
}

TEST(Grouping, DpOptimalNeverWorseThanGreedy) {
  // Footnote 1: exhaustive grouping improves traffic by roughly 1%.
  ScheduleParams opt;
  opt.optimal_grouping = true;
  for (const auto& name : {"resnet50", "alexnet"}) {
    const Network net = models::make_network(name);
    const double greedy =
        dram_traffic_bytes(net, build_schedule(net, ExecConfig::kMbs2));
    const double dp = dram_traffic_bytes(
        net, build_schedule(net, ExecConfig::kMbs2, opt));
    EXPECT_LE(dp, greedy * 1.0001) << name;
    // ... and greedy stays close to optimal.
    EXPECT_LE(greedy, dp * 1.08) << name;
  }
}

TEST(Grouping, MbsFsIsSingleGroup) {
  const Network net = models::make_network("resnet50");
  const Schedule s = build_schedule(net, ExecConfig::kMbsFs);
  EXPECT_EQ(s.groups.size(), 1u);
}

TEST(Grouping, BufferSizeMonotonicity) {
  // A larger global buffer can only reduce MBS traffic (Fig. 11).
  const Network net = models::make_network("resnet50");
  double prev = 1e300;
  for (double mib : {5.0, 10.0, 20.0, 30.0, 40.0}) {
    ScheduleParams p;
    p.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
    const double t =
        dram_traffic_bytes(net, build_schedule(net, ExecConfig::kMbs2, p));
    EXPECT_LE(t, prev * 1.0001) << mib << " MiB";
    prev = t;
  }
}

// ---- Grouping variants (non-contiguous search space) ------------------------

/// Field-by-field equality of two schedules, down to the bit pattern of
/// every group and footprint entry.
void expect_bitwise_equal(const Schedule& a, const Schedule& b) {
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.mini_batch, b.mini_batch);
  EXPECT_EQ(a.buffer_bytes, b.buffer_bytes);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].first, b.groups[g].first) << "group " << g;
    EXPECT_EQ(a.groups[g].last, b.groups[g].last) << "group " << g;
    EXPECT_EQ(a.groups[g].sub_batch, b.groups[g].sub_batch) << "group " << g;
    EXPECT_EQ(a.groups[g].iterations, b.groups[g].iterations) << "group " << g;
    EXPECT_EQ(a.groups[g].members, b.groups[g].members) << "group " << g;
  }
  EXPECT_EQ(a.block_footprint, b.block_footprint);
  EXPECT_EQ(a.block_max_sub, b.block_max_sub);
}

TEST(GroupingVariants, VariantOffIsBitwiseIdenticalToCurrentSchedules) {
  // The kContiguous default must be indistinguishable from a pre-variant
  // build: explicit kContiguous == default-constructed params, groups carry
  // no member lists, and the modeled traffic agrees to the last bit.
  for (const auto& name : models::evaluated_network_names()) {
    const Network net = models::make_network(name);
    for (ExecConfig cfg : kAllConfigs) {
      const Schedule def = build_schedule(net, cfg);
      ScheduleParams p;
      p.variant = GroupingVariant::kContiguous;
      const Schedule explicit_off = build_schedule(net, cfg, p);
      expect_bitwise_equal(def, explicit_off);
      for (const Group& g : def.groups) EXPECT_TRUE(g.members.empty());
      EXPECT_EQ(dram_traffic_bytes(net, def),
                dram_traffic_bytes(net, explicit_off))
          << name << " " << to_string(cfg);
    }
  }
}

TEST(GroupingVariants, NonContiguousSchedulesValidate) {
  ScheduleParams p;
  p.variant = GroupingVariant::kNonContiguous;
  for (const auto& name : {"resnet50", "alexnet", "vit_base"}) {
    const Network net = models::make_network(name);
    for (ExecConfig cfg : {ExecConfig::kMbs1, ExecConfig::kMbs2}) {
      const Schedule s = build_schedule(net, cfg, p);
      EXPECT_EQ(s.validate(net), "") << name << " " << to_string(cfg);
      // Every block owned by exactly one group, via the member lists.
      for (int b = 0; b < static_cast<int>(net.blocks.size()); ++b)
        EXPECT_GE(s.group_of_block(b), 0) << name << " block " << b;
    }
  }
}

TEST(GroupingVariants, NonContiguousNeverImprovesTraffic) {
  // All tensor edges connect adjacent blocks, so merging non-adjacent
  // groups keeps no extra data on chip while tightening the sub-batch:
  // the wider search must land exactly on the contiguous greedy's result.
  ScheduleParams noncontig;
  noncontig.variant = GroupingVariant::kNonContiguous;
  for (const auto& name : models::evaluated_network_names()) {
    const Network net = models::make_network(name);
    const double contiguous =
        dram_traffic_bytes(net, build_schedule(net, ExecConfig::kMbs2));
    const double relaxed = dram_traffic_bytes(
        net, build_schedule(net, ExecConfig::kMbs2, noncontig));
    EXPECT_DOUBLE_EQ(relaxed, contiguous) << name;
  }
}

TEST(GroupingVariants, BoundaryPredicateMatchesFirstBlockRule) {
  // For contiguous schedules the generalized predecessor-based boundary
  // rule must coincide with the historical "block is some group's first".
  const Network net = models::make_network("resnet50");
  for (ExecConfig cfg : kAllConfigs) {
    const Schedule s = build_schedule(net, cfg);
    for (int b = 0; b < static_cast<int>(net.blocks.size()); ++b) {
      bool is_first = false;
      for (const Group& g : s.groups) is_first |= (g.first == b);
      EXPECT_EQ(s.is_group_boundary(b), is_first)
          << to_string(cfg) << " block " << b;
    }
  }
}

TEST(GroupingVariants, NonContiguousGroupAccessors) {
  // A hand-built non-contiguous schedule: membership, boundaries, and the
  // validate() partition check all follow the member lists.
  Group a;
  a.members = {0, 2};
  a.first = 0;
  a.last = 2;
  Group b;
  b.members = {1};
  b.first = b.last = 1;
  EXPECT_TRUE(a.contains(0));
  EXPECT_FALSE(a.contains(1));
  EXPECT_TRUE(a.contains(2));
  EXPECT_EQ(a.blocks(), (std::vector<int>{0, 2}));

  Schedule s;
  s.config = ExecConfig::kMbs1;
  s.mini_batch = 4;
  s.buffer_bytes = 1 << 20;
  s.groups = {a, b};
  for (Group& g : s.groups) {
    g.sub_batch = 4;
    g.iterations = 1;
  }
  s.block_footprint = {1, 1, 1};
  s.block_max_sub = {4, 4, 4};
  EXPECT_EQ(s.group_of_block(0), 0);
  EXPECT_EQ(s.group_of_block(1), 1);
  EXPECT_EQ(s.group_of_block(2), 0);
  // Blocks 1 and 2 both start boundary runs (their predecessors belong to
  // the other group).
  EXPECT_TRUE(s.is_group_boundary(0));
  EXPECT_TRUE(s.is_group_boundary(1));
  EXPECT_TRUE(s.is_group_boundary(2));

  core::Network net;
  net.name = "toy";
  net.input = core::FeatureShape{1, 4, 4};
  for (int i = 0; i < 3; ++i)
    net.blocks.push_back(core::make_simple_block(
        "b" + std::to_string(i),
        {core::make_act("act" + std::to_string(i), net.input)}));
  EXPECT_EQ(s.validate(net), "");
  // Dropping a block from the partition is caught.
  s.groups[1].members = {};
  s.groups[1].first = s.groups[1].last = 2;  // now 1 is unowned, 2 doubly
  EXPECT_NE(s.validate(net), "");
  // A member-less first > last group mixed into a non-contiguous schedule
  // is reported as an error, not expanded into a bogus block range
  // (regression: validate must range-check before calling blocks()).
  s.groups[1].first = 2;
  s.groups[1].last = 1;
  EXPECT_NE(s.validate(net), "");
}

TEST(GroupingVariants, MiniBatchAndBufferComposeWithVariant) {
  const Network net = models::make_network("transformer_base");
  ScheduleParams p;
  p.variant = GroupingVariant::kNonContiguous;
  p.mini_batch = 64;
  p.buffer_bytes = 5ll * 1024 * 1024;
  const Schedule s = build_schedule(net, ExecConfig::kMbs2, p);
  EXPECT_EQ(s.mini_batch, 64);
  EXPECT_EQ(s.validate(net), "");
  EXPECT_GT(dram_traffic_bytes(net, s), 0);
}

TEST(Grouping, MiniBatchOverrideRespected) {
  const Network net = models::make_network("resnet50");
  ScheduleParams p;
  p.mini_batch = 64;
  const Schedule s = build_schedule(net, ExecConfig::kMbs2, p);
  EXPECT_EQ(s.mini_batch, 64);
  EXPECT_EQ(s.validate(net), "");
}

// ---- Footprint policies ------------------------------------------------------

TEST(Footprints, InterBranchAtLeastPerBranch) {
  for (const auto& name : models::evaluated_network_names()) {
    const Network net = models::make_network(name);
    const auto per_branch =
        block_footprints(net, ExecConfig::kMbs1, core::DataType::kF16);
    const auto inter =
        block_footprints(net, ExecConfig::kMbs2, core::DataType::kF16);
    ASSERT_EQ(per_branch.size(), inter.size());
    for (std::size_t i = 0; i < inter.size(); ++i)
      EXPECT_GE(inter[i], per_branch[i]) << name << " block " << i;
  }
}

TEST(Footprints, Mbs2NeedsMoreIterationsThanMbs1) {
  // Eq. 1/2 provisioning shrinks sub-batches, so MBS2 runs at least as many
  // sub-batch iterations (Sec. 6's stated MBS2 cost).
  const Network net = models::make_network("resnet50");
  const Schedule s1 = build_schedule(net, ExecConfig::kMbs1);
  const Schedule s2 = build_schedule(net, ExecConfig::kMbs2);
  EXPECT_GE(s2.total_iterations(), s1.total_iterations());
}

// ---- Traffic class structure -------------------------------------------------

TEST(TrafficClasses, WeightTrafficScalesWithIterations) {
  const Network net = models::make_network("resnet50");
  const Traffic base =
      compute_traffic(net, build_schedule(net, ExecConfig::kBaseline));
  const Traffic fs =
      compute_traffic(net, build_schedule(net, ExecConfig::kMbsFs));
  // MBS-FS re-reads weights once per sub-batch iteration.
  EXPECT_GT(fs.dram_bytes_by_class(TrafficClass::kWeight),
            3 * base.dram_bytes_by_class(TrafficClass::kWeight));
}

TEST(TrafficClasses, AlexNetFsWeightBlowup) {
  // Sec. 6: AlexNet's FC weights make MBS-FS increase total traffic ~2.6x.
  const Network net = models::make_network("alexnet");
  const double base =
      dram_traffic_bytes(net, build_schedule(net, ExecConfig::kBaseline));
  const double fs =
      dram_traffic_bytes(net, build_schedule(net, ExecConfig::kMbsFs));
  EXPECT_GT(fs, 1.8 * base);
  EXPECT_LT(fs, 3.5 * base);
}

TEST(TrafficClasses, MbsEliminatesMostFeatureTraffic) {
  const Network net = models::make_network("resnet50");
  const Traffic base =
      compute_traffic(net, build_schedule(net, ExecConfig::kBaseline));
  const Traffic mbs2 =
      compute_traffic(net, build_schedule(net, ExecConfig::kMbs2));
  EXPECT_LT(mbs2.dram_bytes_by_class(TrafficClass::kFeature),
            0.1 * base.dram_bytes_by_class(TrafficClass::kFeature));
  EXPECT_LT(mbs2.dram_bytes_by_class(TrafficClass::kGradient),
            0.1 * base.dram_bytes_by_class(TrafficClass::kGradient));
}

TEST(TrafficClasses, StashSimilarAcrossConfigs) {
  // Data stored for backward reuse is fundamental to training, not to the
  // schedule; it should be the dominant remaining MBS traffic.
  const Network net = models::make_network("resnet50");
  const Traffic base =
      compute_traffic(net, build_schedule(net, ExecConfig::kBaseline));
  const Traffic mbs2 =
      compute_traffic(net, build_schedule(net, ExecConfig::kMbs2));
  const double sb = base.dram_bytes_by_class(TrafficClass::kStash);
  const double sm = mbs2.dram_bytes_by_class(TrafficClass::kStash);
  EXPECT_GT(sm, 0.5 * sb);
  EXPECT_LT(sm, 1.5 * sb);
}

TEST(TrafficClasses, InputTrafficIndependentOfConfig) {
  const Network net = models::make_network("resnet50");
  const Traffic a =
      compute_traffic(net, build_schedule(net, ExecConfig::kBaseline));
  const Traffic b =
      compute_traffic(net, build_schedule(net, ExecConfig::kMbs2));
  EXPECT_DOUBLE_EQ(a.dram_bytes_by_class(TrafficClass::kInput),
                   b.dram_bytes_by_class(TrafficClass::kInput));
}

TEST(TrafficClasses, PerBlockAttributionSumsToTotal) {
  const Network net = models::make_network("resnet50");
  const Schedule s = build_schedule(net, ExecConfig::kMbs2);
  const Traffic t = compute_traffic(net, s);
  double sum = 0;
  for (int b = 0; b < static_cast<int>(net.blocks.size()); ++b)
    sum += t.dram_bytes_for_block(b);
  EXPECT_NEAR(sum, t.dram_bytes(), t.dram_bytes() * 1e-9);
}

}  // namespace
}  // namespace mbs::sched
