// Tests for the im2col GEMM lowering (Sec. 4.1): equivalence with direct
// convolution for all three Tab. 1 training passes, adjointness of
// im2col/col2im, and GEMM correctness.
#include <gtest/gtest.h>

#include "train/im2col.h"
#include "train/ops.h"
#include "util/rng.h"

namespace mbs::train {
namespace {

void expect_close(const Tensor& a, const Tensor& b, double tol = 1e-4) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol) << "elem " << i;
}

TEST(Im2col, ShapeMatchesTab1) {
  util::Rng rng(1);
  const Tensor x = Tensor::randn({4, 3, 8, 8}, rng);
  const Tensor cols = im2col(x, 3, 3, 1, 1, 1);
  // Gh = N*Ho*Wo, K = Ci*R*S.
  EXPECT_EQ(cols.dim(0), 4 * 8 * 8);
  EXPECT_EQ(cols.dim(1), 3 * 3 * 3);
}

TEST(Im2col, UnitKernelIsTranspositionOnly) {
  util::Rng rng(2);
  const Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  const Tensor cols = im2col(x, 1, 1, 1, 0, 0);
  // Row (n, h, w), column c equals x[n, c, h, w].
  std::int64_t row = 0;
  for (int n = 0; n < 2; ++n)
    for (int h = 0; h < 4; ++h)
      for (int w = 0; w < 4; ++w, ++row)
        for (int c = 0; c < 3; ++c)
          EXPECT_EQ(cols[row * 3 + c], x.at(n, c, h, w));
}

TEST(Im2col, PaddingMaterializesZeros) {
  Tensor x = Tensor::full({1, 1, 2, 2}, 1.0f);
  const Tensor cols = im2col(x, 3, 3, 1, 1, 1);
  // The (0,0) output position sees the corner: 4 in-bounds ones, 5 zeros.
  double s = 0;
  for (int i = 0; i < 9; ++i) s += cols[i];
  EXPECT_EQ(s, 4.0);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), c> == <x, col2im(c)> for random x, c — the defining adjoint
  // property that makes the data-gradient GEMM correct.
  util::Rng rng(3);
  const Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  const Tensor ax = im2col(x, 3, 3, 2, 1, 1);
  Tensor c = Tensor::randn(ax.shape(), rng);
  const Tensor aTc = col2im(c, x.shape(), 3, 3, 2, 1, 1);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < ax.size(); ++i) lhs += ax[i] * c[i];
  for (std::int64_t i = 0; i < x.size(); ++i) rhs += x[i] * aTc[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(Matmul, AgainstHandComputed) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  for (std::int64_t i = 0; i < 6; ++i) {
    a[i] = static_cast<float>(i + 1);       // [[1,2,3],[4,5,6]]
    b[i] = static_cast<float>((i + 1) * 2); // [[2,4],[6,8],[10,12]]
  }
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c[0], 1 * 2 + 2 * 6 + 3 * 10);
  EXPECT_EQ(c[1], 1 * 4 + 2 * 8 + 3 * 12);
  EXPECT_EQ(c[2], 4 * 2 + 5 * 6 + 6 * 10);
  EXPECT_EQ(c[3], 4 * 4 + 5 * 8 + 6 * 12);
}

TEST(Matmul, TransposedVariantsAgree) {
  util::Rng rng(4);
  const Tensor a = Tensor::randn({5, 7}, rng);
  const Tensor b = Tensor::randn({7, 4}, rng);
  const Tensor c = matmul(a, b);
  // matmul_bt(a, b^T) == a*b.
  Tensor bt({4, 7});
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 4; ++j) bt[j * 7 + i] = b[i * 4 + j];
  expect_close(matmul_bt(a, bt), c);
  // matmul_at(a^T, b) == a*b.
  Tensor at({7, 5});
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 7; ++j) at[j * 5 + i] = a[i * 7 + j];
  expect_close(matmul_at(at, b), c);
}

// ---- The headline property: im2col GEMM == direct convolution ---------------

struct ConvCase {
  int n, ci, hw, co, k, stride, pad;
};

class Im2colEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Im2colEquivalence, ForwardMatchesDirect) {
  const ConvCase p = GetParam();
  util::Rng rng(11);
  const Tensor x = Tensor::randn({p.n, p.ci, p.hw, p.hw}, rng);
  const Tensor w = Tensor::randn({p.co, p.ci, p.k, p.k}, rng, 0.5);
  const Tensor b = Tensor::randn({p.co}, rng, 0.1);
  expect_close(conv2d_forward_im2col(x, w, b, p.stride, p.pad),
               conv2d_forward(x, w, b, p.stride, p.pad));
}

TEST_P(Im2colEquivalence, BackwardMatchesDirect) {
  const ConvCase p = GetParam();
  util::Rng rng(13);
  const Tensor x = Tensor::randn({p.n, p.ci, p.hw, p.hw}, rng);
  const Tensor w = Tensor::randn({p.co, p.ci, p.k, p.k}, rng, 0.5);
  const Tensor y = conv2d_forward(x, w, Tensor(), p.stride, p.pad);
  const Tensor dy = Tensor::randn(y.shape(), rng);
  const Conv2dGrads direct = conv2d_backward(x, w, dy, p.stride, p.pad);
  const Conv2dIm2colGrads gemm =
      conv2d_backward_im2col(x, w, dy, p.stride, p.pad);
  expect_close(gemm.dx, direct.dx, 1e-3);
  expect_close(gemm.dw, direct.dw, 1e-3);
  expect_close(gemm.dbias, direct.dbias, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colEquivalence,
    ::testing::Values(ConvCase{2, 3, 8, 4, 3, 1, 1},   // ResNet-style 3x3
                      ConvCase{1, 4, 7, 8, 1, 1, 0},   // 1x1 bottleneck
                      ConvCase{2, 2, 9, 3, 3, 2, 1},   // strided
                      ConvCase{1, 3, 11, 2, 5, 1, 2},  // 5x5 (AlexNet-style)
                      ConvCase{3, 1, 6, 2, 3, 1, 0},   // valid padding
                      ConvCase{1, 2, 8, 2, 3, 2, 0})); // strided valid

}  // namespace
}  // namespace mbs::train
