// Property-based tests: randomized sweeps over layer geometries, block
// structures and schedule parameters, checking the invariants the library's
// correctness rests on. Uses the deterministic RNG so failures reproduce.
#include <gtest/gtest.h>

#include "arch/systolic.h"
#include "core/block.h"
#include "core/layer.h"
#include "engine/evaluator.h"
#include "engine/scenario.h"
#include "engine/sweep_runner.h"
#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sched/traffic.h"
#include "util/rng.h"

namespace mbs {
namespace {

using core::Block;
using core::FeatureShape;
using core::Layer;

// ---- Random generators -------------------------------------------------------

core::Layer random_conv(util::Rng& rng, FeatureShape in) {
  const int kernel = 1 + 2 * static_cast<int>(rng.uniform_int(3));  // 1/3/5
  const int stride = 1 + static_cast<int>(rng.uniform_int(2));
  const int pad = kernel / 2;
  const int out_c = 1 << (3 + rng.uniform_int(6));  // 8..256
  return core::make_conv("c", in, out_c, kernel, stride, pad);
}

FeatureShape random_shape(util::Rng& rng) {
  const int c = 1 << (2 + rng.uniform_int(7));       // 4..256
  const int hw = 4 + static_cast<int>(rng.uniform_int(60));
  return FeatureShape{c, hw, hw};
}

// ---- Conv / GEMM properties ---------------------------------------------------

class RandomConvProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomConvProperties, GemmShapesConsistent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const Layer conv = random_conv(rng, random_shape(rng));
    const int n = 1 + static_cast<int>(rng.uniform_int(32));
    const auto fwd = arch::gemm_shape(conv, n, arch::GemmPass::kForward);
    const auto dgrad = arch::gemm_shape(conv, n, arch::GemmPass::kDataGrad);
    const auto wgrad = arch::gemm_shape(conv, n, arch::GemmPass::kWeightGrad);
    // Forward and weight-gradient GEMMs perform identical MAC counts
    // (Tab. 1: the dimensions are permutations of each other).
    EXPECT_EQ(fwd.macs(), wgrad.macs());
    // Forward MACs equal the layer's FLOP count over n samples.
    EXPECT_EQ(2 * fwd.macs(), conv.flops_per_sample() * n);
    // Weight-gradient output is exactly the weight tensor.
    EXPECT_EQ(wgrad.gh * wgrad.gw, conv.param_count());
    // Data-gradient Gh covers the input spatial grid (Tab. 1: N x Hi x Wi).
    EXPECT_EQ(dgrad.gh, static_cast<std::int64_t>(n) * conv.in.h * conv.in.w);
  }
}

TEST_P(RandomConvProperties, SystolicModelBounds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  arch::SystolicConfig with;
  arch::SystolicConfig without = with;
  without.weight_double_buffering = false;
  for (int trial = 0; trial < 20; ++trial) {
    const Layer conv = random_conv(rng, random_shape(rng));
    const int n = 1 + static_cast<int>(rng.uniform_int(16));
    const auto shape = arch::gemm_shape(conv, n, arch::GemmPass::kForward);
    const auto a = arch::simulate_gemm(with, shape);
    const auto b = arch::simulate_gemm(without, shape);
    EXPECT_GT(a.cycles, 0);
    EXPECT_LE(a.cycles, b.cycles);          // double buffering never hurts
    EXPECT_LE(a.utilization, 1.0);
    EXPECT_GT(a.utilization, 0.0);
    EXPECT_GE(a.cycles * with.macs_per_cycle(), a.macs);  // physics
    EXPECT_EQ(a.macs, shape.macs());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConvProperties, ::testing::Range(1, 6));

// ---- Block footprint properties ------------------------------------------------

class RandomBlockProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomBlockProperties, ResidualFootprintOrdering) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
  for (int trial = 0; trial < 10; ++trial) {
    const int c = 16 << rng.uniform_int(4);
    const int hw = 7 * (1 + static_cast<int>(rng.uniform_int(8)));
    const FeatureShape in{c, hw, hw};
    const int planes = c / 4;
    std::vector<Layer> main;
    main.push_back(core::make_conv("a", in, planes, 1, 1, 0));
    main.push_back(core::make_norm("an", main.back().out));
    main.push_back(core::make_act("ar", main.back().out));
    main.push_back(core::make_conv("b", main.back().out, c, 3, 1, 1));
    main.push_back(core::make_norm("bn", main.back().out));
    const Block blk = core::make_residual_block("res", in, main, {});

    // Inter-branch provisioning (Eq. 1) needs at least the per-branch peak,
    // and at most per-branch + block-in + block-out (the conditional terms).
    const auto pb = blk.footprint_per_branch();
    const auto ib = blk.footprint_inter_branch();
    EXPECT_GE(ib, pb);
    EXPECT_LE(ib, pb + in.bytes() + blk.out.bytes());
    EXPECT_GT(pb, 0);
  }
}

TEST_P(RandomBlockProperties, InceptionFootprintOrdering) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  for (int trial = 0; trial < 10; ++trial) {
    const FeatureShape in{32 << rng.uniform_int(3), 17, 17};
    std::vector<std::vector<Layer>> branches;
    const int n_branches = 2 + static_cast<int>(rng.uniform_int(3));
    for (int b = 0; b < n_branches; ++b) {
      std::vector<Layer> chain;
      chain.push_back(core::make_conv("b" + std::to_string(b), in,
                                      16 << rng.uniform_int(3), 1, 1, 0));
      if (rng.uniform() < 0.5)
        chain.push_back(core::make_conv("b" + std::to_string(b) + "x",
                                        chain.back().out,
                                        16 << rng.uniform_int(3), 3, 1, 1));
      branches.push_back(std::move(chain));
    }
    const Block blk = core::make_inception_block("mix", in, branches);
    EXPECT_GE(blk.footprint_inter_branch(), blk.footprint_per_branch());
    EXPECT_LE(blk.footprint_inter_branch(),
              blk.footprint_per_branch() + in.bytes() + blk.out.bytes());
    // Output channels are the branch sum.
    int c_sum = 0;
    for (const auto& br : blk.branches) c_sum += br.layers.back().out.c;
    EXPECT_EQ(blk.out.c, c_sum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBlockProperties, ::testing::Range(1, 5));

// ---- Schedule properties over randomized parameters ----------------------------

class RandomScheduleProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomScheduleProperties, ValidAcrossBufferAndBatchSweep) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 313);
  const core::Network net = models::make_network(
      models::evaluated_network_names()[static_cast<std::size_t>(
          GetParam() - 1) % 6]);
  for (int trial = 0; trial < 6; ++trial) {
    sched::ScheduleParams p;
    p.buffer_bytes = (2 + static_cast<std::int64_t>(rng.uniform_int(62))) *
                     1024 * 1024;
    p.mini_batch = 1 << rng.uniform_int(8);  // 1..128
    for (auto cfg : {sched::ExecConfig::kMbsFs, sched::ExecConfig::kMbs1,
                     sched::ExecConfig::kMbs2}) {
      const sched::Schedule s = sched::build_schedule(net, cfg, p);
      EXPECT_EQ(s.validate(net), "")
          << net.name << " " << sched::to_string(cfg) << " buffer "
          << p.buffer_bytes << " batch " << p.mini_batch;
      EXPECT_GT(sched::dram_traffic_bytes(net, s), 0);
    }
  }
}

TEST_P(RandomScheduleProperties, TrafficScalesWithMiniBatch) {
  // Doubling the mini-batch should (weakly) increase every config's traffic.
  const core::Network net = models::make_network(
      models::evaluated_network_names()[static_cast<std::size_t>(
          GetParam() - 1) % 6]);
  for (auto cfg : {sched::ExecConfig::kBaseline, sched::ExecConfig::kMbs2}) {
    sched::ScheduleParams small;
    small.mini_batch = 16;
    sched::ScheduleParams big;
    big.mini_batch = 32;
    const double t_small =
        sched::dram_traffic_bytes(net, sched::build_schedule(net, cfg, small));
    const double t_big =
        sched::dram_traffic_bytes(net, sched::build_schedule(net, cfg, big));
    EXPECT_GT(t_big, t_small) << sched::to_string(cfg);
  }
}

TEST_P(RandomScheduleProperties, SingleSampleMiniBatchDegenerate) {
  // mini-batch 1: serialization has nothing to split; every group runs one
  // iteration and MBS traffic cannot exceed baseline by more than the
  // (empty) partial-sum overhead.
  const core::Network net = models::make_network(
      models::evaluated_network_names()[static_cast<std::size_t>(
          GetParam() - 1) % 6]);
  sched::ScheduleParams p;
  p.mini_batch = 1;
  const sched::Schedule s =
      sched::build_schedule(net, sched::ExecConfig::kMbs2, p);
  EXPECT_EQ(s.validate(net), "");
  for (const sched::Group& g : s.groups) EXPECT_EQ(g.iterations, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScheduleProperties,
                         ::testing::Range(1, 7));

// ---- Edge cases ---------------------------------------------------------------

TEST(EdgeCases, TinyBufferForcesSingleSampleSubBatches) {
  const core::Network net = models::make_network("resnet50");
  sched::ScheduleParams p;
  p.buffer_bytes = 1024;  // absurdly small: every footprint exceeds it
  const sched::Schedule s =
      sched::build_schedule(net, sched::ExecConfig::kMbs2, p);
  EXPECT_EQ(s.validate(net), "");
  for (const sched::Group& g : s.groups) EXPECT_EQ(g.sub_batch, 1);
}

TEST(EdgeCases, HugeBufferCollapsesToOneGroup) {
  const core::Network net = models::make_network("resnet50");
  sched::ScheduleParams p;
  p.buffer_bytes = 64ll * 1024 * 1024 * 1024;  // everything fits
  const sched::Schedule s =
      sched::build_schedule(net, sched::ExecConfig::kMbs2, p);
  EXPECT_EQ(s.validate(net), "");
  EXPECT_EQ(s.groups.size(), 1u);
  EXPECT_EQ(s.groups[0].sub_batch, s.mini_batch);
  EXPECT_EQ(s.groups[0].iterations, 1);
}

TEST(EdgeCases, HugeBufferMbsTrafficBelowBaseline) {
  // With an infinite buffer MBS degenerates to pure inter-layer reuse and
  // must beat baseline outright (no iteration overhead remains).
  const core::Network net = models::make_network("resnet50");
  sched::ScheduleParams p;
  p.buffer_bytes = 64ll * 1024 * 1024 * 1024;
  const double mbs = sched::dram_traffic_bytes(
      net, sched::build_schedule(net, sched::ExecConfig::kMbs2, p));
  const double base = sched::dram_traffic_bytes(
      net, sched::build_schedule(net, sched::ExecConfig::kBaseline, p));
  EXPECT_LT(mbs, 0.5 * base);
}

TEST(EdgeCases, SingleBlockNetwork) {
  core::Network net;
  net.name = "single";
  net.input = FeatureShape{3, 8, 8};
  net.mini_batch_per_core = 4;
  net.blocks.push_back(core::make_simple_block(
      "conv", {core::make_conv("conv", net.input, 8, 3, 1, 1)}));
  net.check();
  for (auto cfg : {sched::ExecConfig::kBaseline, sched::ExecConfig::kMbs2}) {
    const sched::Schedule s = sched::build_schedule(net, cfg);
    EXPECT_EQ(s.validate(net), "");
    EXPECT_GT(sched::dram_traffic_bytes(net, s), 0);
  }
}

TEST(EdgeCases, GemmWithUnitDimensions) {
  arch::SystolicConfig cfg;
  const auto t = arch::simulate_gemm(cfg, {1, 1, 1});
  EXPECT_GT(t.cycles, 0);
  EXPECT_EQ(t.macs, 1);
  EXPECT_LE(t.utilization, 1.0);
}

// ---- Cycle-backend (Device::kSystolic) properties ------------------------------

arch::Dataflow random_dataflow(util::Rng& rng) {
  const arch::Dataflow flows[] = {arch::Dataflow::kOutputStationary,
                                  arch::Dataflow::kWeightStationary,
                                  arch::Dataflow::kInputStationary};
  return flows[rng.uniform_int(3)];
}

class CycleBackendProperties : public ::testing::TestWithParam<int> {
 protected:
  core::Network net_ = models::make_network(
      models::evaluated_network_names()[static_cast<std::size_t>(
          GetParam() - 1) % 6]);
  sched::Schedule schedule_ =
      sched::build_schedule(net_, sched::ExecConfig::kMbs2);
  sched::Traffic traffic_ = sched::compute_traffic(net_, schedule_);
};

TEST_P(CycleBackendProperties, MoreBandwidthNeverIncreasesStalls) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 517);
  for (int trial = 0; trial < 8; ++trial) {
    arch::SystolicSimParams p;
    p.options.dataflow = random_dataflow(rng);
    p.options.scratchpad_bytes = std::int64_t{1}
                                 << (10 + rng.uniform_int(14));  // 1K..8M
    p.vector_flops = 2.87e12;
    p.buffer_bw_bytes = 5e11;
    p.dram_bw_bytes_per_s = (50.0 + static_cast<double>(rng.uniform_int(400))) * 1e9;
    const auto slow =
        arch::simulate_systolic_step(net_, schedule_, traffic_, p);
    arch::SystolicSimParams fast = p;
    fast.dram_bw_bytes_per_s *= 2;
    const auto faster =
        arch::simulate_systolic_step(net_, schedule_, traffic_, fast);
    EXPECT_LE(faster.stats.stall_cycles, slow.stats.stall_cycles);
    // Compute cycles are bandwidth-independent.
    EXPECT_EQ(faster.stats.comp_cycles, slow.stats.comp_cycles);
    // The unconstrained limit lower-bounds every finite bandwidth.
    arch::SystolicSimParams nobw = p;
    nobw.dram_bw_bytes_per_s = 0;
    EXPECT_EQ(
        arch::simulate_systolic_step(net_, schedule_, traffic_, nobw)
            .stats.stall_cycles,
        0);
  }
}

TEST_P(CycleBackendProperties, LargerScratchpadNeverIncreasesCycleTime) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 991);
  for (int trial = 0; trial < 8; ++trial) {
    arch::SystolicSimParams p;
    p.options.dataflow = random_dataflow(rng);
    p.options.scratchpad_bytes = std::int64_t{1} << (8 + rng.uniform_int(12));
    p.vector_flops = 2.87e12;
    p.buffer_bw_bytes = 5e11;
    p.dram_bw_bytes_per_s = (50.0 + static_cast<double>(rng.uniform_int(400))) * 1e9;
    const auto small =
        arch::simulate_systolic_step(net_, schedule_, traffic_, p);
    arch::SystolicSimParams big = p;
    big.options.scratchpad_bytes *= 2;
    const auto bigger =
        arch::simulate_systolic_step(net_, schedule_, traffic_, big);
    EXPECT_LE(bigger.stats.total_cycles(), small.stats.total_cycles());
    EXPECT_EQ(bigger.stats.comp_cycles, small.stats.comp_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleBackendProperties, ::testing::Range(1, 5));

TEST(CycleBackendDeterminism, SweepInvariantUnderThreadsAndShards) {
  // Cycle-backend sweep results are bit-identical whatever the thread count
  // or shard plan — the same determinism contract the analytic backend has.
  std::vector<engine::Scenario> grid;
  for (const char* net : {"alexnet", "vit_small"})
    for (engine::Device dev :
         {engine::Device::kWaveCore, engine::Device::kSystolic})
      for (double mib : {4.0, 10.0}) {
        engine::Scenario s;
        s.network = net;
        s.config = sched::ExecConfig::kMbs2;
        s.device = dev;
        s.params.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
        s.hw.global_buffer_bytes = s.params.buffer_bytes;
        grid.push_back(std::move(s));
      }

  engine::Evaluator serial_eval;
  engine::SweepRunner serial(engine::SweepOptions{1, true});
  const auto reference = serial.run(grid, serial_eval);

  engine::Evaluator threaded_eval;
  engine::SweepRunner threaded(engine::SweepOptions{8, true});
  const auto parallel = threaded.run(grid, threaded_eval);

  engine::Evaluator shard_evals[2];
  engine::SweepRunner runner{engine::SweepOptions{2, true}};
  const auto shard0 =
      runner.run_sharded(grid, shard_evals[0], engine::ShardPlan{0, 2});
  const auto shard1 =
      runner.run_sharded(grid, shard_evals[1], engine::ShardPlan{1, 2});

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& ref = reference[i];
    for (const engine::ScenarioResult* other :
         {&parallel[i], &(i % 2 == 0 ? shard0 : shard1)[i]}) {
      EXPECT_EQ(ref.step.time_s, other->step.time_s) << i;
      EXPECT_EQ(ref.step.dram_bytes, other->step.dram_bytes) << i;
      EXPECT_EQ(ref.systolic.stats.comp_cycles,
                other->systolic.stats.comp_cycles)
          << i;
      EXPECT_EQ(ref.systolic.stats.stall_cycles,
                other->systolic.stats.stall_cycles)
          << i;
      EXPECT_EQ(ref.systolic.time_s, other->systolic.time_s) << i;
    }
  }
}

// ---- Attention traffic properties ----------------------------------------------

/// Total DRAM bytes (read + write) of attention-layer records of one class.
double attention_dram(const sched::Traffic& t, sched::TrafficClass cls) {
  double sum = 0;
  for (const sched::TrafficRecord& r : t.records)
    if (r.kind == core::LayerKind::kAttention && r.cls == cls)
      sum += r.dram_read + r.dram_write;
  return sum;
}

/// One-way score-stash bytes: sum over attention layers of B * H * S * S
/// feature-precision bytes — what one full pass must move per step.
double score_stash_bytes(const core::Network& net) {
  double total = 0;
  for (const core::Block& b : net.blocks)
    b.for_each_layer([&](const core::Layer& l, int) {
      if (l.kind == core::LayerKind::kAttention)
        total += static_cast<double>(l.attention_score_bytes_per_sample()) *
                 net.mini_batch_per_core;
    });
  return total;
}

TEST(AttentionTraffic, ScoreStashConservedAcrossSubBatchSplits) {
  // P = softmax(Q.K^T) is written once forward and read once backward —
  // exactly B*H*S*S feature-precision bytes each way — no matter how the
  // schedule splits the mini-batch. Serialization relocates reuse; it
  // cannot change what backward must remember. The attention layer's total
  // stash also carries its Q/K/V operand stash, whose policy depends on
  // the config but never on the sub-batch split — so per config, the total
  // is exactly invariant across buffer sizes (and the splits they induce),
  // and always at least the two-way score bytes.
  for (const char* name : {"vit_small", "transformer_base"}) {
    const core::Network net = models::make_network(name);
    const double score_two_way = 2 * score_stash_bytes(net);
    ASSERT_GT(score_two_way, 0) << name;
    for (auto cfg : {sched::ExecConfig::kBaseline, sched::ExecConfig::kMbsFs,
                     sched::ExecConfig::kMbs1, sched::ExecConfig::kMbs2}) {
      double reference = -1;
      for (double mib : {2.0, 8.0, 32.0}) {
        sched::ScheduleParams p;
        p.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
        const sched::Schedule s = sched::build_schedule(net, cfg, p);
        ASSERT_EQ(s.validate(net), "") << name;
        const double stash =
            attention_dram(compute_traffic(net, s), sched::TrafficClass::kStash);
        EXPECT_GE(stash, score_two_way)
            << name << " " << sched::to_string(cfg) << " " << mib << " MiB";
        if (reference < 0) reference = stash;
        EXPECT_DOUBLE_EQ(stash, reference)
            << name << " " << sched::to_string(cfg) << " " << mib << " MiB";
      }
    }
  }
}

TEST(AttentionTraffic, MonotoneInSequenceLength) {
  // Longer sequences strictly increase total step traffic (the score
  // footprint grows quadratically while everything else is at worst
  // linear) under every configuration.
  const core::Network shorter = models::make_network("vit_small");
  const core::Network longer = models::make_network("vit_small", 256);
  for (auto cfg : {sched::ExecConfig::kBaseline, sched::ExecConfig::kMbs1,
                   sched::ExecConfig::kMbs2}) {
    const double t_short = sched::dram_traffic_bytes(
        shorter, sched::build_schedule(shorter, cfg));
    const double t_long =
        sched::dram_traffic_bytes(longer, sched::build_schedule(longer, cfg));
    EXPECT_GT(t_long, t_short) << sched::to_string(cfg);
  }
  EXPECT_GT(score_stash_bytes(longer), score_stash_bytes(shorter));
}

TEST(AttentionTraffic, BufferGateMonotoneWithExactEndpoints) {
  // The unserialized baseline keeps a full mini-batch of score matrices per
  // group: spilling charges 9x the one-way stash bytes in intermediate
  // feature traffic, fitting charges none, and growing the buffer can only
  // move layers from spill to fit.
  const core::Network net = models::make_network("vit_small");
  const double p = score_stash_bytes(net);
  // Under baseline every inter-layer edge moves through DRAM, so the
  // attention layers carry a buffer-independent edge term (Q/K/V in, ctx
  // out) on top of the gated score intermediates.
  double edge = 0;
  for (const core::Block& b : net.blocks)
    b.for_each_layer([&](const core::Layer& l, int) {
      if (l.kind == core::LayerKind::kAttention)
        edge += static_cast<double>(l.input_bytes_per_sample(core::DataType::kF16) +
                                    l.output_bytes_per_sample(core::DataType::kF16)) *
                net.mini_batch_per_core;
    });
  double prev = -1;
  bool first = true;
  for (double mib : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    sched::ScheduleParams sp;
    sp.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
    const sched::Schedule s =
        sched::build_schedule(net, sched::ExecConfig::kBaseline, sp);
    const double feat =
        attention_dram(compute_traffic(net, s), sched::TrafficClass::kFeature);
    if (!first) {
      EXPECT_LE(feat, prev) << mib << " MiB";
    }
    prev = feat;
    first = false;
    if (mib == 1.0) {
      EXPECT_DOUBLE_EQ(feat, edge + 9 * p);  // every layer spills
    }
    if (mib == 64.0) {
      EXPECT_DOUBLE_EQ(feat, edge);  // every layer fits: only edges remain
    }
  }
  // Serialized MBS schedules shrink sub-batches until block footprints —
  // which include the score matrix — fit, so their attention intermediates
  // never touch DRAM even at a small buffer.
  sched::ScheduleParams sp;
  sp.buffer_bytes = 4 * 1024 * 1024;
  const sched::Schedule mbs =
      sched::build_schedule(net, sched::ExecConfig::kMbs2, sp);
  EXPECT_DOUBLE_EQ(
      attention_dram(compute_traffic(net, mbs), sched::TrafficClass::kFeature),
      0.0);
}

TEST(AttentionTraffic, SweepInvariantUnderThreadsAndShardsWithSeq) {
  // The determinism contract extends to the seq axis and both backends:
  // results are bit-identical whatever the thread count or shard plan.
  std::vector<engine::Scenario> grid;
  for (int seq : {0, 256})
    for (engine::Device dev :
         {engine::Device::kWaveCore, engine::Device::kSystolic}) {
      engine::Scenario s;
      s.network = "vit_small";
      s.seq = seq;
      s.config = sched::ExecConfig::kMbs2;
      s.device = dev;
      grid.push_back(std::move(s));
    }

  engine::Evaluator serial_eval;
  engine::SweepRunner serial(engine::SweepOptions{1, true});
  const auto reference = serial.run(grid, serial_eval);

  engine::Evaluator threaded_eval;
  engine::SweepRunner threaded(engine::SweepOptions{8, true});
  const auto parallel = threaded.run(grid, threaded_eval);

  engine::Evaluator shard_evals[2];
  engine::SweepRunner runner{engine::SweepOptions{2, true}};
  const auto shard0 =
      runner.run_sharded(grid, shard_evals[0], engine::ShardPlan{0, 2});
  const auto shard1 =
      runner.run_sharded(grid, shard_evals[1], engine::ShardPlan{1, 2});

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& ref = reference[i];
    for (const engine::ScenarioResult* other :
         {&parallel[i], &(i % 2 == 0 ? shard0 : shard1)[i]}) {
      EXPECT_EQ(ref.step.time_s, other->step.time_s) << i;
      EXPECT_EQ(ref.step.dram_bytes, other->step.dram_bytes) << i;
      EXPECT_EQ(ref.systolic.time_s, other->systolic.time_s) << i;
    }
  }
}

}  // namespace
}  // namespace mbs
