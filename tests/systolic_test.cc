// Cycle-level systolic backend: hand-computed fold/cycle counts per
// dataflow, conservation invariants of the step-level result, and the
// double-buffer / bandwidth edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/memory.h"
#include "arch/systolic.h"
#include "core/block.h"
#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sched/traffic.h"
#include "sim/simulator.h"

namespace mbs::arch {
namespace {

/// 4x4 array at 1 GHz: small enough that every fold below is checkable by
/// hand from the model's documented formula
///   cycles = preload + stream + span_a + span_b - 2.
SystolicConfig tiny_array() {
  SystolicConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.clock_hz = 1e9;
  return cfg;
}

TEST(GemmCycles, OutputStationarySingleFold) {
  // C[2x3] = A[2x5] * B[5x3] fits one fold: K=5 streams through a 2x3
  // mapped region -> 5 + 2 + 3 - 2 = 8 cycles, no partial-sum spills.
  const GemmCycles g =
      simulate_gemm_cycles(tiny_array(), Dataflow::kOutputStationary, {2, 3, 5});
  EXPECT_EQ(g.comp_cycles, 8);
  EXPECT_EQ(g.folds, 1);
  EXPECT_EQ(g.mapped_pe_folds, 6);
  EXPECT_EQ(g.macs, 30);
  EXPECT_DOUBLE_EQ(g.mapping_eff(tiny_array()), 6.0 / 16.0);
  // fp16 streams: A once (2x5), B once (5x3), C written once (2x3).
  EXPECT_EQ(g.bytes.a, 2 * 2 * 5);
  EXPECT_EQ(g.bytes.b, 2 * 5 * 3);
  EXPECT_EQ(g.bytes.c, 2 * 2 * 3);
  // Single fold's working set = all three tiles.
  EXPECT_EQ(g.max_fold_bytes, 2 * (2 * 5 + 5 * 3 + 2 * 3));
}

TEST(GemmCycles, WeightStationaryFoldsReduction) {
  // K=5 folds over 4 array rows as k_t = 4 then 1; one n-fold (Gw=3).
  // fold 1: preload 4 + stream Gh=2 + (4 + 3 - 2) = 11 cycles
  // fold 2: preload 1 + stream 2 + (1 + 3 - 2) = 5 cycles
  const GemmCycles g =
      simulate_gemm_cycles(tiny_array(), Dataflow::kWeightStationary, {2, 3, 5});
  EXPECT_EQ(g.comp_cycles, 11 + 5);
  EXPECT_EQ(g.folds, 2);
  EXPECT_EQ(g.mapped_pe_folds, 4 * 3 + 1 * 3);
  EXPECT_EQ(g.macs, 30);
  // A streams per fold (2x4 then 2x1), B preloads each fold exactly once
  // (total = K*Gw), C partials: written by both k-folds, re-read by the
  // second -> 3 * Gh*Gw elements.
  EXPECT_EQ(g.bytes.a, 2 * (2 * 4 + 2 * 1));
  EXPECT_EQ(g.bytes.b, 2 * 5 * 3);
  EXPECT_EQ(g.bytes.c, 2 * 3 * 2 * 3);
  EXPECT_EQ(g.max_fold_bytes, 2 * (4 * 3 + 2 * 4 + 2 * 3));
}

TEST(GemmCycles, InputStationaryFoldsReduction) {
  // Mirror of ws with A pinned: folds (k_t=4, m_t=2) and (k_t=1, m_t=2),
  // streaming Gw=3: 4+3+(4+2-2)=11 and 1+3+(1+2-2)=5 cycles.
  const GemmCycles g =
      simulate_gemm_cycles(tiny_array(), Dataflow::kInputStationary, {2, 3, 5});
  EXPECT_EQ(g.comp_cycles, 11 + 5);
  EXPECT_EQ(g.folds, 2);
  EXPECT_EQ(g.mapped_pe_folds, 4 * 2 + 1 * 2);
  EXPECT_EQ(g.macs, 30);
  EXPECT_EQ(g.bytes.a, 2 * (4 * 2 + 1 * 2));  // A preloads once per fold
  EXPECT_EQ(g.bytes.b, 2 * (3 * 4 + 3 * 1));  // B streams per fold
  EXPECT_EQ(g.bytes.c, 2 * 3 * 2 * 3);        // psums: write, write+read
}

TEST(GemmCycles, SingleMacGemm) {
  EXPECT_EQ(simulate_gemm_cycles(tiny_array(), Dataflow::kOutputStationary,
                                 {1, 1, 1})
                .comp_cycles,
            1);  // 0 preload + 1 stream + 1 + 1 - 2
  EXPECT_EQ(simulate_gemm_cycles(tiny_array(), Dataflow::kWeightStationary,
                                 {1, 1, 1})
                .comp_cycles,
            2);  // 1 preload + 1 stream + 1 + 1 - 2
  EXPECT_EQ(simulate_gemm_cycles(tiny_array(), Dataflow::kInputStationary,
                                 {1, 1, 1})
                .comp_cycles,
            2);
}

TEST(GemmCycles, FullArrayFoldMapsEveryPe) {
  const GemmCycles g =
      simulate_gemm_cycles(tiny_array(), Dataflow::kOutputStationary, {4, 4, 4});
  EXPECT_EQ(g.comp_cycles, 4 + 4 + 4 - 2);
  EXPECT_EQ(g.folds, 1);
  EXPECT_DOUBLE_EQ(g.mapping_eff(tiny_array()), 1.0);
}

TEST(GemmCycles, EdgeFoldsAreExact) {
  // Gh=5 over 4 rows: folds of m_t = 4 and 1 (one n-fold, Gw=3, K=2):
  // (2+4+3-2) + (2+1+3-2) = 7 + 4.
  const GemmCycles g =
      simulate_gemm_cycles(tiny_array(), Dataflow::kOutputStationary, {5, 3, 2});
  EXPECT_EQ(g.comp_cycles, 11);
  EXPECT_EQ(g.folds, 2);
  EXPECT_EQ(g.mapped_pe_folds, 4 * 3 + 1 * 3);
}

// ---------------------------------------------------------------------------
// Step-level invariants.
// ---------------------------------------------------------------------------

struct StepFixture {
  core::Network net = models::make_network("alexnet");
  sched::Schedule schedule =
      sched::build_schedule(net, sched::ExecConfig::kMbs2);
  sched::Traffic traffic = sched::compute_traffic(net, schedule);

  SystolicSimParams params() const {
    SystolicSimParams p;
    p.dram_bw_bytes_per_s = arch::hbm2().per_core_bandwidth(2);
    p.buffer_bw_bytes = 5e11;
    p.vector_flops = 2.87e12;
    return p;
  }
};

class SystolicStepDataflows : public ::testing::TestWithParam<Dataflow> {};

TEST_P(SystolicStepDataflows, ConservationInvariants) {
  StepFixture f;
  SystolicSimParams p = f.params();
  p.options.dataflow = GetParam();
  const SystolicStepResult r =
      simulate_systolic_step(f.net, f.schedule, f.traffic, p);

  EXPECT_EQ(r.stats.comp_cycles + r.stats.stall_cycles,
            r.stats.total_cycles());
  EXPECT_GT(r.stats.comp_cycles, 0);
  EXPECT_GT(r.stats.util, 0);
  EXPECT_LE(r.stats.util, 1.0);
  EXPECT_GT(r.stats.mapping_eff, 0);
  EXPECT_LE(r.stats.mapping_eff, 1.0);
  // Times are the cycle counters in seconds — nothing else contributes.
  EXPECT_DOUBLE_EQ(r.time_s, r.compute_time_s + r.stall_time_s);
  EXPECT_DOUBLE_EQ(
      r.time_s,
      static_cast<double>(r.stats.total_cycles()) / p.array.clock_hz);
  EXPECT_GT(r.dram_bytes, 0);
  EXPECT_GT(r.total_macs, 0);
  EXPECT_GT(r.bw_ifmap, 0);
  EXPECT_GT(r.bw_filter, 0);
  EXPECT_GT(r.bw_ofmap, 0);
}

TEST_P(SystolicStepDataflows, UnlimitedBandwidthMeansZeroStalls) {
  StepFixture f;
  SystolicSimParams p = f.params();
  p.options.dataflow = GetParam();
  p.options.scratchpad_bytes = 1;  // even with no double buffering
  p.dram_bw_bytes_per_s = 0;       // unconstrained
  const SystolicStepResult r =
      simulate_systolic_step(f.net, f.schedule, f.traffic, p);
  EXPECT_EQ(r.stats.stall_cycles, 0);
  EXPECT_DOUBLE_EQ(r.time_s, r.compute_time_s);
}

TEST_P(SystolicStepDataflows, DeterministicAcrossCalls) {
  StepFixture f;
  SystolicSimParams p = f.params();
  p.options.dataflow = GetParam();
  const SystolicStepResult a =
      simulate_systolic_step(f.net, f.schedule, f.traffic, p);
  const SystolicStepResult b =
      simulate_systolic_step(f.net, f.schedule, f.traffic, p);
  EXPECT_EQ(a.stats.comp_cycles, b.stats.comp_cycles);
  EXPECT_EQ(a.stats.stall_cycles, b.stats.stall_cycles);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_DOUBLE_EQ(a.bw_ifmap, b.bw_ifmap);
}

INSTANTIATE_TEST_SUITE_P(AllDataflows, SystolicStepDataflows,
                         ::testing::Values(Dataflow::kOutputStationary,
                                           Dataflow::kWeightStationary,
                                           Dataflow::kInputStationary),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(SystolicStep, MacsMatchAnalyticBackend) {
  // Same chunks, same first-GEMM data-grad skip: both backends count the
  // exact same useful arithmetic, whatever the mapping.
  StepFixture f;
  const sim::StepResult analytic =
      sim::simulate_step(f.net, f.schedule, sim::WaveCoreConfig{});
  for (Dataflow df : {Dataflow::kOutputStationary,
                      Dataflow::kWeightStationary,
                      Dataflow::kInputStationary}) {
    SystolicSimParams p = f.params();
    p.options.dataflow = df;
    const SystolicStepResult r =
        simulate_systolic_step(f.net, f.schedule, f.traffic, p);
    EXPECT_DOUBLE_EQ(r.total_macs, analytic.total_macs);
    EXPECT_DOUBLE_EQ(r.dram_bytes, analytic.dram_bytes);
  }
}

TEST(SystolicStep, AttentionMatchesAnalyticBackendUnconstrained) {
  // The attention kind's activation-activation GEMMs (Q.K^T, P.V and their
  // four backward shapes) and softmax vector work are modeled twice —
  // analytically (sim::simulate_step) and at cycle level. With
  // unconstrained DRAM both backends must agree exactly on useful
  // arithmetic and bytes moved, for every dataflow and sequence length.
  // This is the differential gate for the attention traffic model: a
  // one-sided change to either backend breaks it.
  for (const char* name : {"vit_small", "transformer_base"})
    for (int seq : {0, 256}) {
      const core::Network net = models::make_network(name, seq);
      int attention_layers = 0;
      for (const core::Block& b : net.blocks)
        b.for_each_layer([&](const core::Layer& l, int) {
          attention_layers += (l.kind == core::LayerKind::kAttention) ? 1 : 0;
        });
      ASSERT_GT(attention_layers, 0) << name;

      const sched::Schedule schedule =
          sched::build_schedule(net, sched::ExecConfig::kMbs2);
      const sched::Traffic traffic = sched::compute_traffic(net, schedule);
      const sim::StepResult analytic =
          sim::simulate_step(net, schedule, sim::WaveCoreConfig{});

      for (Dataflow df : {Dataflow::kOutputStationary,
                          Dataflow::kWeightStationary,
                          Dataflow::kInputStationary}) {
        SystolicSimParams p;
        p.options.dataflow = df;
        p.dram_bw_bytes_per_s = 0;  // unconstrained
        p.buffer_bw_bytes = 5e11;
        p.vector_flops = 2.87e12;
        const SystolicStepResult r =
            simulate_systolic_step(net, schedule, traffic, p);
        EXPECT_EQ(r.stats.stall_cycles, 0)
            << name << " seq=" << seq << " " << to_string(df);
        EXPECT_DOUBLE_EQ(r.total_macs, analytic.total_macs)
            << name << " seq=" << seq << " " << to_string(df);
        EXPECT_DOUBLE_EQ(r.dram_bytes, analytic.dram_bytes)
            << name << " seq=" << seq << " " << to_string(df);
      }
    }
}

TEST(SystolicStep, TinyScratchpadSerializesGemmTransfers) {
  // A single-conv network (no vector layers, and its one GEMM skips the
  // data-grad pass): with a scratchpad smaller than any fold, every DRAM
  // byte serializes behind compute, so the stall count equals the traffic
  // model's per-phase transfer cycles exactly.
  core::Network net;
  net.name = "one_conv";
  net.input = {3, 32, 32};
  net.mini_batch_per_core = 8;
  net.blocks.push_back(core::make_simple_block(
      "conv", {core::make_conv("conv", net.input, 16, 3, 1, 1)}));
  net.check();
  const sched::Schedule schedule =
      sched::build_schedule(net, sched::ExecConfig::kMbs2);
  const sched::Traffic traffic = sched::compute_traffic(net, schedule);

  SystolicSimParams p;
  p.options.scratchpad_bytes = 1;  // smaller than one tile: no overlap
  p.dram_bw_bytes_per_s = 256e9;
  p.vector_flops = 2.87e12;
  p.buffer_bw_bytes = 5e11;
  const SystolicStepResult r =
      simulate_systolic_step(net, schedule, traffic, p);

  double dram[2] = {0, 0};
  for (const sched::TrafficRecord& rec : traffic.records)
    dram[rec.phase == sched::Phase::kForward ? 0 : 1] +=
        rec.dram_read + rec.dram_write;
  const double bytes_per_cycle = p.dram_bw_bytes_per_s / p.array.clock_hz;
  const std::int64_t expected =
      static_cast<std::int64_t>(std::ceil(dram[0] / bytes_per_cycle)) +
      static_cast<std::int64_t>(std::ceil(dram[1] / bytes_per_cycle));
  EXPECT_EQ(r.stats.stall_cycles, expected);
}

TEST(SystolicStep, ScratchpadGatesOverlapOnly) {
  // Between no-overlap (1 byte) and full-overlap (huge), only stall cycles
  // may move — tile geometry, compute cycles and traffic stay fixed.
  StepFixture f;
  SystolicSimParams tiny = f.params();
  tiny.options.scratchpad_bytes = 1;
  SystolicSimParams huge = f.params();
  huge.options.scratchpad_bytes = std::int64_t{1} << 40;
  const SystolicStepResult a =
      simulate_systolic_step(f.net, f.schedule, f.traffic, tiny);
  const SystolicStepResult b =
      simulate_systolic_step(f.net, f.schedule, f.traffic, huge);
  EXPECT_EQ(a.stats.comp_cycles, b.stats.comp_cycles);
  EXPECT_GE(a.stats.stall_cycles, b.stats.stall_cycles);
  EXPECT_DOUBLE_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_DOUBLE_EQ(a.total_macs, b.total_macs);
}

}  // namespace
}  // namespace mbs::arch
