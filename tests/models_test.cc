// Tests for the model zoo: shape inference, parameter counts, and structural
// properties of the six evaluated CNNs.
#include <gtest/gtest.h>

#include "models/alexnet.h"
#include "models/inception_v3.h"
#include "models/inception_v4.h"
#include "models/resnet.h"
#include "models/transformer.h"
#include "models/zoo.h"

namespace mbs::models {
namespace {

using core::Block;
using core::BlockKind;
using core::LayerKind;
using core::Network;

int count_blocks(const Network& net, BlockKind kind) {
  int n = 0;
  for (const Block& b : net.blocks) n += (b.kind == kind) ? 1 : 0;
  return n;
}

TEST(ResNet50, StructureMatchesPaperFig4) {
  const Network net = make_resnet(50);
  // Fig. 4: CONV stem, POOL, 16 residual blocks, POOL, FC.
  EXPECT_EQ(count_blocks(net, BlockKind::kResidual), 16);
  EXPECT_EQ(net.blocks.front().name, "stem");
  EXPECT_EQ(net.blocks.back().name, "fc");
  EXPECT_EQ(net.mini_batch_per_core, 32);
}

TEST(ResNet50, ParamCountMatchesReference) {
  // torchvision resnet50: 25,557,032 parameters (convs bias-free, norm has
  // scale+shift, FC has bias).
  EXPECT_EQ(make_resnet(50).param_count(), 25557032);
}

TEST(ResNet101, ParamCountMatchesReference) {
  EXPECT_EQ(make_resnet(101).param_count(), 44549160);
}

TEST(ResNet152, ParamCountMatchesReference) {
  EXPECT_EQ(make_resnet(152).param_count(), 60192808);
}

TEST(ResNet, BlockCounts) {
  EXPECT_EQ(count_blocks(make_resnet(101), BlockKind::kResidual), 33);
  EXPECT_EQ(count_blocks(make_resnet(152), BlockKind::kResidual), 50);
}

TEST(ResNet50, SpatialPyramid) {
  const Network net = make_resnet(50);
  // Stage outputs: 56 -> 28 -> 14 -> 7.
  std::vector<int> stage_h;
  for (const Block& b : net.blocks)
    if (b.kind == BlockKind::kResidual) stage_h.push_back(b.out.h);
  ASSERT_EQ(stage_h.size(), 16u);
  EXPECT_EQ(stage_h.front(), 56);
  EXPECT_EQ(stage_h.back(), 7);
  // Final residual output: 2048 x 7 x 7.
  EXPECT_EQ(net.blocks[net.blocks.size() - 3].out.c, 2048);
}

TEST(ResNet50, ProjectionShortcutsOnlyAtStageBoundaries) {
  const Network net = make_resnet(50);
  int projections = 0;
  for (const Block& b : net.blocks)
    if (b.kind == BlockKind::kResidual && !b.branches[1].is_identity())
      ++projections;
  EXPECT_EQ(projections, 4);
}

TEST(InceptionV3, ShapeWaypointsMatchReference) {
  const Network net = make_inception_v3();
  // 35x35x192 after the stem; 17x17x768 mid-network; 8x8x2048 at the top.
  bool saw_35 = false, saw_768 = false, saw_2048 = false;
  for (const Block& b : net.blocks) {
    if (b.out.c == 192 && b.out.h == 35) saw_35 = true;
    if (b.out.c == 768 && b.out.h == 17) saw_768 = true;
    if (b.out.c == 2048 && b.out.h == 8) saw_2048 = true;
  }
  EXPECT_TRUE(saw_35);
  EXPECT_TRUE(saw_768);
  EXPECT_TRUE(saw_2048);
}

TEST(InceptionV3, ModuleCount) {
  const Network net = make_inception_v3();
  // 3x A + B + 4x C + D + 2x E = 11 inception modules.
  EXPECT_EQ(count_blocks(net, BlockKind::kInception), 11);
}

TEST(InceptionV3, ParamCountNearReference) {
  // Reference (no aux head): 23,834,568. The flattened Mixed_7b/7c nested
  // splits duplicate two leading convolutions per module (documented in
  // DESIGN.md), so allow up to 25% overhead but require the right scale.
  const std::int64_t params = make_inception_v3().param_count();
  EXPECT_GT(params, 23000000);
  EXPECT_LT(params, 30000000);
}

TEST(InceptionV4, ShapeWaypointsMatchReference) {
  const Network net = make_inception_v4();
  bool saw_384 = false, saw_1024 = false, saw_1536 = false;
  for (const Block& b : net.blocks) {
    if (b.out.c == 384 && b.out.h == 35) saw_384 = true;
    if (b.out.c == 1024 && b.out.h == 17) saw_1024 = true;
    if (b.out.c == 1536 && b.out.h == 8) saw_1536 = true;
  }
  EXPECT_TRUE(saw_384);
  EXPECT_TRUE(saw_1024);
  EXPECT_TRUE(saw_1536);
}

TEST(InceptionV4, ModuleCount) {
  const Network net = make_inception_v4();
  // 3 stem splits + 4 A + reduction-A + 7 B + reduction-B + 3 C = 19.
  EXPECT_EQ(count_blocks(net, BlockKind::kInception), 19);
}

TEST(InceptionV4, DeeperThanV3) {
  EXPECT_GT(make_inception_v4().layer_count(),
            make_inception_v3().layer_count());
  EXPECT_GT(make_inception_v4().param_count(),
            make_inception_v3().param_count());
}

TEST(AlexNet, ParamCountMatchesReference) {
  // torchvision alexnet: 61,100,840 parameters.
  EXPECT_EQ(make_alexnet().param_count(), 61100840);
}

TEST(AlexNet, UsesLargerMiniBatch) {
  // Sec. 5: 64 samples per core for AlexNet.
  EXPECT_EQ(make_alexnet().mini_batch_per_core, 64);
}

TEST(AlexNet, HasNoNormalizationLayers) {
  const Network net = make_alexnet();
  int norms = 0;
  for (const Block& b : net.blocks)
    b.for_each_layer([&](const core::Layer& l, int) {
      norms += (l.kind == LayerKind::kNorm) ? 1 : 0;
    });
  EXPECT_EQ(norms, 0);
}

TEST(Zoo, AllNetworksBuildAndValidate) {
  for (const auto& net : all_evaluated_networks()) {
    EXPECT_GT(net.param_count(), 0);
    EXPECT_GT(net.flops_per_sample(), 0);
    EXPECT_GT(net.layer_count(), 0);
  }
}

TEST(Zoo, NamesRoundTrip) {
  for (const auto& name : evaluated_network_names()) {
    const Network net = make_network(name);
    EXPECT_FALSE(net.name.empty());
  }
}

TEST(Zoo, ForwardFlopsScale) {
  // Published single-sample forward GFLOPs (multiply+add counted as 2):
  // ResNet50 ~8.2, InceptionV3 ~11.4, AlexNet ~1.4. Accept +-35% given the
  // flattened-branch approximation and bias terms.
  auto gflops = [](const Network& n) {
    return static_cast<double>(n.flops_per_sample()) / 1e9;
  };
  EXPECT_NEAR(gflops(make_resnet(50)), 8.2, 8.2 * 0.35);
  EXPECT_NEAR(gflops(make_inception_v3()), 11.4, 11.4 * 0.40);
  EXPECT_NEAR(gflops(make_alexnet()), 1.4, 1.4 * 0.35);
}

TEST(Zoo, ResNetDepthMonotonicity) {
  EXPECT_LT(make_resnet(50).flops_per_sample(),
            make_resnet(101).flops_per_sample());
  EXPECT_LT(make_resnet(101).flops_per_sample(),
            make_resnet(152).flops_per_sample());
}

// ---- Transformer family -----------------------------------------------------

TEST(Transformer, VitBaseStructure) {
  const Network net = make_vit_base();
  net.check();
  // patch_embed + 12 x (attention + MLP residual pairs) + head.
  ASSERT_EQ(net.blocks.size(), 26u);
  EXPECT_EQ(count_blocks(net, BlockKind::kResidual), 24);
  EXPECT_EQ(net.blocks.front().name, "patch_embed");
  EXPECT_EQ(net.blocks.back().name, "head");
  // 224/16 = 14: the token grid every encoder block preserves.
  for (std::size_t b = 1; b + 1 < net.blocks.size(); ++b) {
    EXPECT_EQ(net.blocks[b].out.c, 768);
    EXPECT_EQ(net.blocks[b].out.h, 14);
    EXPECT_EQ(net.blocks[b].out.w, 14);
  }
  EXPECT_EQ(net.mini_batch_per_core, 32);
}

TEST(Transformer, VitBaseParamAndFlopCountsExact) {
  const Network net = make_vit_base();
  // True counts now that attention is weight-free (no score/context
  // stand-in parameters). Exactness pins the model against accidental
  // structural drift; the NEAR checks document the distance to the
  // published ViT-B/16 references (86.6M params — ours lacks the class
  // token and position embeddings, 0.31% below — and 35.2 GFLOPs/sample
  // at 2 FLOPs per MAC, ours 0.55% below).
  EXPECT_EQ(net.param_count(), 86333416);
  EXPECT_NEAR(static_cast<double>(net.param_count()) / 1e6, 86.6,
              86.6 * 0.01);
  const double gflops = static_cast<double>(net.flops_per_sample()) / 1e9;
  EXPECT_NEAR(gflops, 35.2, 35.2 * 0.01);
}

TEST(Transformer, VitBaseAttentionAccounting) {
  const Network net = make_vit_base();
  const core::Block& attn = net.blocks[1];
  ASSERT_EQ(attn.name, "enc0.attn");
  ASSERT_EQ(attn.kind, BlockKind::kResidual);
  // norm + qkv + attention + proj, plus the bare Add merge (no
  // post-residual ReLU: transformers do not activate after the sum).
  EXPECT_EQ(attn.layer_count(), 5);
  int relus_after_add = 0;
  for (const core::Layer& l : attn.merge)
    relus_after_add += (l.kind == LayerKind::kAct) ? 1 : 0;
  EXPECT_EQ(relus_after_add, 0);
  // The attention layer itself holds no weights; block params are exactly
  // norm 2d + qkv 3d^2 + proj d^2 with d=768.
  const core::Layer& a = attn.branches[0].layers[2];
  ASSERT_EQ(a.kind, LayerKind::kAttention);
  EXPECT_EQ(a.heads, 12);
  EXPECT_EQ(a.param_count(), 0);
  const std::int64_t d = 768, tokens = 196;
  EXPECT_EQ(attn.param_count(), 2 * d + 3 * d * d + d * d);
  // Attention FLOPs: 4*S^2*d for the two S x S x d_head GEMM families
  // (Q.K^T and P.V across all heads) + 4*H*S^2 softmax vector ops.
  EXPECT_EQ(a.flops_per_sample(),
            4 * tokens * tokens * d + 4 * 12 * tokens * tokens);
}

TEST(Transformer, SequenceLengthOverride) {
  // seq = 256 tokens = a 16x16 patch grid: every encoder block reshapes,
  // attention FLOPs grow quadratically, weight params stay fixed.
  const Network base = make_vit_base();
  const Network longer = make_vit_base(/*seq=*/256);
  EXPECT_EQ(longer.blocks[1].out.h * longer.blocks[1].out.w, 256);
  EXPECT_EQ(longer.param_count(), base.param_count());
  const core::Layer& a196 = base.blocks[1].branches[0].layers[2];
  const core::Layer& a256 = longer.blocks[1].branches[0].layers[2];
  const std::int64_t d = 768, h = 12;
  EXPECT_EQ(a256.flops_per_sample() - a196.flops_per_sample(),
            4 * (d + h) * (256LL * 256 - 196LL * 196));

  // The text encoder takes any positive seq directly.
  const Network text = make_transformer_base(/*seq=*/100);
  EXPECT_EQ(text.input.h, 100);
  text.check();

  // Validation: 0 = default everywhere; ViTs demand perfect squares;
  // CNNs have no sequence axis at all.
  std::string why;
  EXPECT_TRUE(valid_sequence_length("vit_base", 0, &why));
  EXPECT_TRUE(valid_sequence_length("vit_base", 256, &why));
  EXPECT_FALSE(valid_sequence_length("vit_base", 200, &why));
  EXPECT_NE(why.find("perfect square"), std::string::npos);
  EXPECT_TRUE(valid_sequence_length("transformer_base", 100, &why));
  EXPECT_FALSE(valid_sequence_length("transformer_base", -1, &why));
  EXPECT_FALSE(valid_sequence_length("resnet50", 64, &why));
  EXPECT_NE(why.find("no sequence-length axis"), std::string::npos);
  EXPECT_FALSE(is_transformer_network("resnet50"));
  EXPECT_TRUE(is_transformer_network("vit_small"));
}

TEST(Transformer, FamilyOrderingAndTextEncoder) {
  const Network small = make_vit_small();
  const Network base = make_vit_base();
  EXPECT_LT(small.param_count(), base.param_count());
  EXPECT_LT(small.flops_per_sample(), base.flops_per_sample());

  const Network text = make_transformer_base();
  text.check();
  // No patch stem, final-norm head: 6 encoder layers = 12 residual blocks.
  EXPECT_EQ(count_blocks(text, BlockKind::kResidual), 12);
  EXPECT_EQ(text.blocks.size(), 13u);
  EXPECT_EQ(text.input.c, 512);
  EXPECT_EQ(text.input.h, 192);
  EXPECT_EQ(text.input.w, 1);
  EXPECT_EQ(text.blocks.back().out.c, 512);
}

TEST(Transformer, RegisteredInZoo) {
  const auto names = transformer_network_names();
  ASSERT_EQ(names.size(), 3u);
  for (const auto& name : names) {
    const Network net = make_network(name);
    net.check();
    EXPECT_GT(net.param_count(), 0);
    EXPECT_GT(net.flops_per_sample(), 0);
  }
  // all_network_names = evaluated CNNs + transformer family, in order; the
  // evaluated list itself must never grow (paper-figure grids depend on it).
  EXPECT_EQ(evaluated_network_names().size(), 6u);
  const auto all = all_network_names();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all[5], "alexnet");
  EXPECT_EQ(all[6], "vit_small");
  EXPECT_EQ(all[8], "transformer_base");
}

}  // namespace
}  // namespace mbs::models
