// Tests for the fast kernel layer (util/parallel.h + the blocked GEMM
// family): bit-identity of the blocked/pooled kernels against the naive
// scalar loops they replaced, across thread budgets {1, 2, 3, 8} and
// adversarial shapes (M/N/K not multiples of the tile size, strided and
// asymmetrically padded convolutions, 1x1 and 7x7 kernels), plus the
// Tensor::count overflow guard and the compute_gradients serialization
// identity on the fast path. PR 4 adds the memory-plan layer's coverage:
// cached-im2col conv backward == uncached across budgets {1, 2, 8} and
// adversarial geometries (pad > kernel, 1x1, stride 2), util::Arena
// reuse/rewind/reset semantics, and the Debug zero-allocation contract
// for steady-state train steps. PR 6 adds the kernel-ISA dispatch layer:
// the portable and AVX2 microkernel families must be bit-identical to
// each other and to the naive references on remainder-heavy shapes, an
// MBS_KERNEL=avx2 request on a host without AVX2 must fall back cleanly,
// and the raw-pointer norm-loop rewrite must equal the legacy Tensor::at()
// form bit for bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/arena.h"

#include "train/data.h"
#include "train/gemm_microkernels.h"
#include "train/im2col.h"
#include "train/model.h"
#include "train/norm.h"
#include "train/ops.h"
#include "train/optim.h"
#include "train/trainer.h"
#include "util/cpu.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace mbs::train {
namespace {

const std::vector<int> kBudgets{1, 2, 3, 8};

/// Restores an approximation of the default budget (hardware concurrency)
/// when a test finishes pinning it.
struct BudgetGuard {
  ~BudgetGuard() { util::set_thread_budget(-1); }  // back to MBS_THREADS
};

void expect_bits_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.size()) * sizeof(float)))
      << what << ": payload bits differ";
}

/// Runs `make` under every budget in kBudgets and bit-compares everything
/// against the budget-1 result.
void expect_budget_invariant(const std::function<std::vector<Tensor>()>& make,
                             const char* what) {
  BudgetGuard guard;
  util::set_thread_budget(1);
  const std::vector<Tensor> reference = make();
  for (int budget : kBudgets) {
    util::set_thread_budget(budget);
    const std::vector<Tensor> got = make();
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      expect_bits_equal(got[i], reference[i],
                        (std::string(what) + " budget " +
                         std::to_string(budget) + " tensor " +
                         std::to_string(i))
                            .c_str());
  }
}

// ---- Naive references (the seed's scalar loops, kept verbatim) --------------

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p) {
      const float av = a[static_cast<std::int64_t>(i) * k + p];
      if (av == 0.0f) continue;
      for (int j = 0; j < n; ++j)
        c[static_cast<std::int64_t>(i) * n + j] +=
            av * b[static_cast<std::int64_t>(p) * n + j];
    }
  return c;
}

Tensor naive_matmul_bt(const Tensor& a, const Tensor& b) {
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0;
      for (int p = 0; p < k; ++p)
        acc += static_cast<double>(a[static_cast<std::int64_t>(i) * k + p]) *
               b[static_cast<std::int64_t>(j) * k + p];
      c[static_cast<std::int64_t>(i) * n + j] = static_cast<float>(acc);
    }
  return c;
}

Tensor naive_matmul_at(const Tensor& a, const Tensor& b) {
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int p = 0; p < k; ++p)
    for (int i = 0; i < m; ++i) {
      const float av = a[static_cast<std::int64_t>(p) * m + i];
      if (av == 0.0f) continue;
      for (int j = 0; j < n; ++j)
        c[static_cast<std::int64_t>(i) * n + j] +=
            av * b[static_cast<std::int64_t>(p) * n + j];
    }
  return c;
}

int ref_out_dim(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

Tensor naive_conv2d_forward(const Tensor& x, const Tensor& w,
                            const Tensor& bias, int stride, int pad) {
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int co = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = ref_out_dim(ih, kh, stride, pad);
  const int ow = ref_out_dim(iw, kw, stride, pad);
  Tensor y({n, co, oh, ow});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < co; ++o) {
      const float bv = bias.empty() ? 0.0f : bias[o];
      for (int yh = 0; yh < oh; ++yh)
        for (int yw = 0; yw < ow; ++yw) {
          float acc = bv;
          for (int c = 0; c < ci; ++c)
            for (int r = 0; r < kh; ++r) {
              const int xh = yh * stride - pad + r;
              if (xh < 0 || xh >= ih) continue;
              for (int s = 0; s < kw; ++s) {
                const int xw = yw * stride - pad + s;
                if (xw < 0 || xw >= iw) continue;
                acc += x.at(b, c, xh, xw) * w.at(o, c, r, s);
              }
            }
          y.at(b, o, yh, yw) = acc;
        }
    }
  return y;
}

Conv2dGrads naive_conv2d_backward(const Tensor& x, const Tensor& w,
                                  const Tensor& dy, int stride, int pad,
                                  bool need_dx = true) {
  const int n = x.dim(0), ci = x.dim(1), ih = x.dim(2), iw = x.dim(3);
  const int co = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const int oh = dy.dim(2), ow = dy.dim(3);
  Conv2dGrads g;
  g.dw = Tensor({co, ci, kh, kw});
  g.dbias = Tensor({co});
  if (need_dx) g.dx = Tensor({n, ci, ih, iw});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < co; ++o)
      for (int yh = 0; yh < oh; ++yh)
        for (int yw = 0; yw < ow; ++yw) {
          const float d = dy.at(b, o, yh, yw);
          if (d == 0.0f) continue;
          g.dbias[o] += d;
          for (int c = 0; c < ci; ++c)
            for (int r = 0; r < kh; ++r) {
              const int xh = yh * stride - pad + r;
              if (xh < 0 || xh >= ih) continue;
              for (int s = 0; s < kw; ++s) {
                const int xw = yw * stride - pad + s;
                if (xw < 0 || xw >= iw) continue;
                g.dw.at(o, c, r, s) += d * x.at(b, c, xh, xw);
                if (need_dx) g.dx.at(b, c, xh, xw) += d * w.at(o, c, r, s);
              }
            }
        }
  return g;
}

// ---- GEMM family: blocked == naive, bit for bit -----------------------------

struct GemmShapeCase {
  int m, k, n;
};

class BlockedGemm : public ::testing::TestWithParam<GemmShapeCase> {};

TEST_P(BlockedGemm, MatchesNaiveLoopsBitForBit) {
  const GemmShapeCase p = GetParam();
  util::Rng rng(17);
  const Tensor a = Tensor::randn({p.m, p.k}, rng);
  const Tensor b = Tensor::randn({p.k, p.n}, rng);
  Tensor bt({p.n, p.k});
  for (int i = 0; i < p.k; ++i)
    for (int j = 0; j < p.n; ++j)
      bt[static_cast<std::int64_t>(j) * p.k + i] =
          b[static_cast<std::int64_t>(i) * p.n + j];
  Tensor at({p.k, p.m});
  for (int i = 0; i < p.m; ++i)
    for (int j = 0; j < p.k; ++j)
      at[static_cast<std::int64_t>(j) * p.m + i] =
          a[static_cast<std::int64_t>(i) * p.k + j];

  const Tensor ref = naive_matmul(a, b);
  const Tensor ref_bt = naive_matmul_bt(a, bt);
  const Tensor ref_at = naive_matmul_at(at, b);
  BudgetGuard guard;
  for (int budget : kBudgets) {
    util::set_thread_budget(budget);
    expect_bits_equal(matmul(a, b), ref, "matmul");
    expect_bits_equal(matmul_bt(a, bt), ref_bt, "matmul_bt");
    expect_bits_equal(matmul_at(at, b), ref_at, "matmul_at");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AdversarialShapes, BlockedGemm,
    ::testing::Values(GemmShapeCase{17, 29, 23},   // nothing divides the tiles
                      GemmShapeCase{1, 1, 1},      // degenerate
                      GemmShapeCase{4, 8, 64},     // exact tile/panel multiples
                      GemmShapeCase{5, 3, 7},      // smaller than one tile
                      GemmShapeCase{129, 65, 130},  // crosses the panel width
                      GemmShapeCase{64, 1, 9}));   // K = 1

TEST(BlockedGemm, SparseInputsMatchTheSkippingNaiveLoop) {
  // The naive loops skipped zero multiplicands; the blocked kernels do not.
  // Equality on zero-rich inputs (exactly what im2col padding produces) is
  // the regression test for that dropped skip.
  util::Rng rng(18);
  Tensor a = Tensor::randn({33, 31}, rng);
  Tensor b = Tensor::randn({31, 21}, rng);
  for (std::int64_t i = 0; i < a.size(); i += 2) a[i] = 0.0f;
  for (std::int64_t i = 0; i < b.size(); i += 3) b[i] = 0.0f;
  expect_bits_equal(matmul(a, b), naive_matmul(a, b), "sparse matmul");
  Tensor at({31, 33});
  for (int i = 0; i < 33; ++i)
    for (int j = 0; j < 31; ++j)
      at[static_cast<std::int64_t>(j) * 33 + i] =
          a[static_cast<std::int64_t>(i) * 31 + j];
  expect_bits_equal(matmul_at(at, b), naive_matmul_at(at, b),
                    "sparse matmul_at");
}

// ---- Convolution: the GEMM production path == the seed's direct loops -------

struct ConvShapeCase {
  int n, ci, h, w, co, k, stride, pad;
  bool bias;
};

class FastConv : public ::testing::TestWithParam<ConvShapeCase> {};

TEST_P(FastConv, ForwardAndBackwardMatchNaiveBitForBit) {
  const ConvShapeCase p = GetParam();
  util::Rng rng(23);
  const Tensor x = Tensor::randn({p.n, p.ci, p.h, p.w}, rng);
  const Tensor w = Tensor::randn({p.co, p.ci, p.k, p.k}, rng, 0.5);
  const Tensor b = p.bias ? Tensor::randn({p.co}, rng, 0.1) : Tensor();

  const Tensor ref_y = naive_conv2d_forward(x, w, b, p.stride, p.pad);
  util::Rng rng2(29);
  const Tensor dy = Tensor::randn(ref_y.shape(), rng2);
  const Conv2dGrads ref_g = naive_conv2d_backward(x, w, dy, p.stride, p.pad);

  BudgetGuard guard;
  for (int budget : kBudgets) {
    util::set_thread_budget(budget);
    expect_bits_equal(conv2d_forward(x, w, b, p.stride, p.pad), ref_y,
                      "conv2d_forward");
    const Conv2dGrads g = conv2d_backward(x, w, dy, p.stride, p.pad);
    expect_bits_equal(g.dw, ref_g.dw, "conv dw");
    expect_bits_equal(g.dbias, ref_g.dbias, "conv dbias");
    expect_bits_equal(g.dx, ref_g.dx, "conv dx");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AdversarialGeometries, FastConv,
    ::testing::Values(
        ConvShapeCase{2, 3, 8, 8, 4, 3, 1, 1, true},    // ResNet-style 3x3
        ConvShapeCase{1, 4, 7, 7, 8, 1, 1, 0, true},    // 1x1 bottleneck
        ConvShapeCase{2, 2, 9, 11, 3, 3, 2, 1, false},  // stride 2, H != W
        ConvShapeCase{1, 2, 13, 13, 2, 7, 1, 3, true},  // 7x7, heavy padding
        ConvShapeCase{1, 3, 10, 6, 2, 5, 2, 2, false},  // stride 2, 5x5
        ConvShapeCase{3, 1, 6, 6, 2, 3, 1, 0, true}));  // valid padding

TEST(FastConv, ReluSparsifiedGradientsMatchTheSkippingNaiveLoop) {
  // The seed's backward skipped whole receptive fields when dy == 0 (the
  // common post-ReLU case); the GEMM weight gradient does not skip.
  util::Rng rng(31);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor w = Tensor::randn({4, 3, 3, 3}, rng, 0.5);
  Tensor dy = Tensor::randn({2, 4, 8, 8}, rng);
  for (std::int64_t i = 0; i < dy.size(); i += 2) dy[i] = 0.0f;
  const Conv2dGrads ref = naive_conv2d_backward(x, w, dy, 1, 1);
  const Conv2dGrads g = conv2d_backward(x, w, dy, 1, 1);
  expect_bits_equal(g.dw, ref.dw, "sparse dw");
  expect_bits_equal(g.dbias, ref.dbias, "sparse dbias");
  expect_bits_equal(g.dx, ref.dx, "sparse dx");
}

// ---- im2col with asymmetric padding stays thread-invariant ------------------

TEST(KernelThreading, Im2colAndCol2imAreBudgetInvariant) {
  util::Rng rng(37);
  const Tensor x = Tensor::randn({3, 2, 9, 7}, rng);
  expect_budget_invariant(
      [&] {
        const Tensor cols = im2col(x, 3, 2, 2, /*pad_h=*/2, /*pad_w=*/1);
        const Tensor back = col2im(cols, x.shape(), 3, 2, 2, 2, 1);
        return std::vector<Tensor>{cols, back};
      },
      "im2col/col2im asymmetric");
}

// ---- Pool/norm/linear/sgd kernels across budgets ----------------------------

TEST(KernelThreading, PoolNormLinearSgdAreBudgetInvariant) {
  util::Rng rng(41);
  const Tensor x = Tensor::randn({3, 4, 9, 9}, rng);
  const Tensor gamma = Tensor::randn({4}, rng, 0.3);
  const Tensor beta = Tensor::randn({4}, rng, 0.3);
  const Tensor fc_x = Tensor::randn({5, 36}, rng);
  const Tensor fc_w = Tensor::randn({7, 36}, rng, 0.4);
  const Tensor fc_b = Tensor::randn({7}, rng, 0.1);
  const Tensor fc_dy = Tensor::randn({5, 7}, rng);

  expect_budget_invariant(
      [&] {
        std::vector<Tensor> out;
        const MaxPoolResult mp = maxpool_forward(x, 2, 2);
        out.push_back(mp.y);
        Tensor dy_pool(mp.y.shape());
        dy_pool.fill(0.5f);
        out.push_back(maxpool_backward(dy_pool, mp, x.shape()));
        out.push_back(global_avg_pool_forward(x));
        out.push_back(relu_forward(x));

        NormCache bc;
        out.push_back(batchnorm_forward(x, gamma, beta, bc));
        Tensor dyn(x.shape());
        dyn.fill(0.25f);
        NormGrads bg = batchnorm_backward(dyn, gamma, bc);
        out.push_back(bg.dx);
        out.push_back(bg.dgamma);
        NormCache gc;
        out.push_back(groupnorm_forward(x, gamma, beta, 2, gc));
        NormGrads gg = groupnorm_backward(dyn, gamma, 2, gc);
        out.push_back(gg.dx);
        out.push_back(gg.dbeta);

        out.push_back(linear_forward(fc_x, fc_w, fc_b));
        LinearGrads lg = linear_backward(fc_x, fc_w, fc_dy);
        out.push_back(lg.dx);
        out.push_back(lg.dw);
        out.push_back(lg.dbias);

        Tensor p = fc_w;
        Tensor g(fc_w.shape());
        g.fill(0.125f);
        Sgd opt({/*lr=*/0.1, /*momentum=*/0.9, /*weight_decay=*/1e-4});
        opt.step({&p}, {&g});
        opt.step({&p}, {&g});
        out.push_back(p);
        return out;
      },
      "pool/norm/linear/sgd");
}

// ---- Whole-model gradients: fast path x serialization x budgets -------------

TEST(KernelThreading, ComputeGradientsIsBudgetInvariant) {
  const Dataset data = make_synthetic_dataset(16, 4, 1, 12, /*seed=*/61);
  expect_budget_invariant(
      [&] {
        SmallCnnConfig cfg;
        cfg.norm = NormMode::kGroup;
        cfg.seed = 99;
        SmallCnn model(cfg);
        compute_gradients(model, data.images, data.labels, {4, 4, 4, 4});
        std::vector<Tensor> out;
        for (Tensor* g : model.gradients()) out.push_back(*g);
        return out;
      },
      "compute_gradients");
}

TEST(KernelThreading, SerializedGradientsStillMatchFullBatchOnFastPath) {
  // The Sec. 3 serialization identity, re-checked on the GEMM production
  // path: GN gradients for chunked sub-batches equal full-batch gradients
  // to float32 accumulation noise.
  const Dataset data = make_synthetic_dataset(16, 4, 1, 12, /*seed=*/21);
  SmallCnnConfig cfg;
  cfg.norm = NormMode::kGroup;
  cfg.seed = 99;
  SmallCnn full(cfg), serial(cfg);
  compute_gradients(full, data.images, data.labels, {16});
  compute_gradients(serial, data.images, data.labels, {4, 4, 4, 4});
  auto gf = full.gradients(), gs = serial.gradients();
  ASSERT_EQ(gf.size(), gs.size());
  for (std::size_t i = 0; i < gf.size(); ++i)
    for (std::int64_t j = 0; j < gf[i]->size(); ++j)
      EXPECT_NEAR((*gf[i])[j], (*gs[i])[j], 2e-4)
          << "param " << i << " elem " << j;
}

// ---- parallel_for semantics -------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnceAtAnyBudget) {
  BudgetGuard guard;
  for (int budget : kBudgets) {
    util::set_thread_budget(budget);
    std::vector<std::atomic<int>> hits(1000);
    util::parallel_for(1000, 1, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, NestedCallsRunInline) {
  BudgetGuard guard;
  util::set_thread_budget(8);
  std::atomic<bool> nested_was_inline{true};
  util::parallel_for(4, 1, [&](std::int64_t, std::int64_t) {
    // Inside a region (pool worker or inline caller), a nested parallel_for
    // must not fan out again.
    if (!util::in_parallel_region())
      nested_was_inline.store(false);
  });
  EXPECT_TRUE(nested_was_inline.load());
  EXPECT_FALSE(util::in_parallel_region());
  {
    util::ParallelRegionGuard region;
    EXPECT_TRUE(util::in_parallel_region());
  }
  EXPECT_FALSE(util::in_parallel_region());
}

TEST(ParallelFor, PropagatesExceptions) {
  BudgetGuard guard;
  util::set_thread_budget(4);
  EXPECT_THROW(
      util::parallel_for(100, 1,
                         [](std::int64_t i0, std::int64_t) {
                           if (i0 > 0) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
}

// ---- ConvCache: cached-im2col backward == uncached, bit for bit -------------

struct CachedConvCase {
  int n, ci, h, w, co, k, stride, pad;
};

class CachedConv : public ::testing::TestWithParam<CachedConvCase> {};

TEST_P(CachedConv, BackwardWithForwardCacheMatchesUncachedBitForBit) {
  const CachedConvCase p = GetParam();
  util::Rng rng(53);
  const Tensor x = Tensor::randn({p.n, p.ci, p.h, p.w}, rng);
  const Tensor w = Tensor::randn({p.co, p.ci, p.k, p.k}, rng, 0.5);
  const Tensor b = Tensor::randn({p.co}, rng, 0.1);

  // Uncached reference (budget 1).
  BudgetGuard guard;
  util::set_thread_budget(1);
  const Tensor ref_y = conv2d_forward(x, w, b, p.stride, p.pad);
  util::Rng rng2(59);
  const Tensor dy = Tensor::randn(ref_y.shape(), rng2);
  const Conv2dGrads ref_g = conv2d_backward(x, w, dy, p.stride, p.pad);

  for (int budget : {1, 2, 8}) {
    util::set_thread_budget(budget);
    ConvCache cache;
    Conv2dGrads g;
    Tensor y;
    // Twice: the second iteration reuses every step-persistent buffer, so
    // it also exercises the ensure_shape/zeroed reuse paths.
    for (int iter = 0; iter < 2; ++iter) {
      conv2d_forward_into(x, w, b, p.stride, p.pad, &cache, y);
      expect_bits_equal(y, ref_y, "cached conv forward");
      conv2d_backward_into(x, w, dy, p.stride, p.pad, /*need_dx=*/true,
                           &cache, g);
      expect_bits_equal(g.dw, ref_g.dw, "cached conv dw");
      expect_bits_equal(g.dbias, ref_g.dbias, "cached conv dbias");
      expect_bits_equal(g.dx, ref_g.dx, "cached conv dx");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AdversarialGeometries, CachedConv,
    ::testing::Values(
        CachedConvCase{2, 3, 8, 8, 4, 3, 1, 1},    // ResNet-style 3x3
        CachedConvCase{1, 4, 7, 7, 8, 1, 1, 0},    // 1x1 bottleneck
        CachedConvCase{2, 2, 9, 11, 3, 3, 2, 1},   // stride 2, H != W
        CachedConvCase{1, 2, 6, 6, 2, 3, 1, 4},    // pad > kernel
        CachedConvCase{1, 3, 10, 6, 2, 5, 2, 2},   // stride 2, 5x5
        CachedConvCase{2, 2, 7, 7, 3, 3, 2, 3}));  // stride 2, pad > kernel/2

TEST(CachedConv, GeometryChangeWithSameColsShapeRezerosTheBuffer) {
  // A 3x1 kernel (pad 1) and a 1x3 kernel (pad 1) on the same input both
  // lower to a cols matrix of identical SHAPE, but with different
  // padding-zero layouts. Reusing one cache across the switch must not
  // preserve the first geometry's stale values in positions the second
  // geometry treats as padding.
  util::Rng rng(83);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  Tensor w31({2, 1, 3, 1}), w13({2, 1, 1, 3});
  for (std::int64_t i = 0; i < w31.size(); ++i) {
    w31[i] = 0.25f * static_cast<float>(i + 1);
    w13[i] = -0.5f * static_cast<float>(i + 1);
  }
  ConvCache cache;
  Tensor y;
  conv2d_forward_into(x, w31, Tensor(), 1, 1, &cache, y);
  expect_bits_equal(y, conv2d_forward(x, w31, Tensor(), 1, 1), "3x1 pass");
  conv2d_forward_into(x, w13, Tensor(), 1, 1, &cache, y);
  expect_bits_equal(y, conv2d_forward(x, w13, Tensor(), 1, 1),
                    "1x3 pass after 3x1 cache");
  // And the backward consuming the refreshed cache is right too.
  util::Rng rng2(89);
  const Tensor dy = Tensor::randn(y.shape(), rng2);
  Conv2dGrads got;
  conv2d_backward_into(x, w13, dy, 1, 1, /*need_dx=*/true, &cache, got);
  const Conv2dGrads ref = conv2d_backward(x, w13, dy, 1, 1);
  expect_bits_equal(got.dw, ref.dw, "1x3 dw after geometry switch");
  expect_bits_equal(got.dx, ref.dx, "1x3 dx after geometry switch");
}

TEST(CachedConv, StaleCacheFallsBackToRecomputingBitForBit) {
  util::Rng rng(61);
  const Tensor x8 = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor x6 = Tensor::randn({2, 3, 6, 6}, rng);
  const Tensor w = Tensor::randn({4, 3, 3, 3}, rng, 0.5);
  ConvCache cache;
  Tensor y;
  conv2d_forward_into(x8, w, Tensor(), 1, 1, &cache, y);  // caches 8x8
  // Backward against the 6x6 input: the cache is stale (geometry stamp
  // mismatch) and must be ignored, not consumed.
  util::Rng rng2(67);
  const Tensor dy = Tensor::randn({2, 4, 6, 6}, rng2);
  Conv2dGrads got;
  conv2d_backward_into(x6, w, dy, 1, 1, /*need_dx=*/true, &cache, got);
  const Conv2dGrads ref = conv2d_backward(x6, w, dy, 1, 1);
  expect_bits_equal(got.dw, ref.dw, "stale-cache dw");
  expect_bits_equal(got.dx, ref.dx, "stale-cache dx");
}

TEST(CachedConv, RepeatedStepsWithReusedBuffersStayBitStable) {
  // Every per-layer buffer (ConvCache cols, gradient scratch, activation
  // caches) is reused in place across steps; a second pass over the same
  // data must reproduce the first bit for bit — stale state anywhere in
  // the reuse discipline would show up here.
  const Dataset data = make_synthetic_dataset(8, 4, 1, 12, /*seed=*/71);
  SmallCnnConfig cfg;
  cfg.norm = NormMode::kGroup;
  cfg.seed = 3;
  SmallCnn model(cfg);
  compute_gradients(model, data.images, data.labels, {4, 4});
  std::vector<Tensor> first;
  for (Tensor* g : model.gradients()) first.push_back(*g);
  compute_gradients(model, data.images, data.labels, {4, 4});
  auto gs = model.gradients();
  ASSERT_EQ(gs.size(), first.size());
  for (std::size_t i = 0; i < gs.size(); ++i)
    expect_bits_equal(*gs[i], first[i], "repeated-step gradients");
}

// ---- ReLU into/in-place forms -----------------------------------------------

TEST(ReluForms, IntoAndInplaceMatchTheAllocatingForms) {
  util::Rng rng(73);
  const Tensor x = Tensor::randn({3, 4, 5, 5}, rng);
  const Tensor ref_y = relu_forward(x);
  Tensor y;
  relu_forward_into(x, y);
  expect_bits_equal(y, ref_y, "relu_forward_into");
  relu_forward_into(x, y);  // reused buffer
  expect_bits_equal(y, ref_y, "relu_forward_into reuse");

  util::Rng rng2(79);
  const Tensor dy = Tensor::randn(x.shape(), rng2);
  const Tensor ref_dx = relu_backward(dy, ref_y);
  Tensor d = dy;
  relu_backward_inplace(d, ref_y);
  expect_bits_equal(d, ref_dx, "relu_backward_inplace");
}

// ---- util::Arena -------------------------------------------------------------

TEST(Arena, ReusesCapacityAfterRewindAndReset) {
  util::Arena arena;
  float* first = arena.floats(1000);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(first) % util::Arena::kAlign,
            0u);
  const std::int64_t blocks_after_first = arena.block_allocs();
  arena.reset();
  // Same request after reset: same memory, no new block.
  float* second = arena.floats(1000);
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.block_allocs(), blocks_after_first);

  // A repeating allocation pattern reaches a steady state with zero
  // further block acquisitions (the zero-allocation contract's arena
  // half).
  for (int step = 0; step < 5; ++step) {
    arena.reset();
    arena.floats(123);
    arena.floats(4567);
    arena.floats(89);
  }
  EXPECT_EQ(arena.block_allocs(), blocks_after_first);
  EXPECT_GT(arena.high_water(), 0u);
}

TEST(Arena, MarkRewindNestsLikeAStack) {
  util::Arena arena;
  arena.floats(64);
  const util::Arena::Marker outer = arena.mark();
  float* a = arena.floats(256);
  {
    util::ArenaScope scope(arena);
    float* b = scope.floats(512);
    ASSERT_NE(b, nullptr);
    EXPECT_GT(arena.used(), 0u);
  }
  // The scope rewound its scratch; a new allocation lands where b was.
  float* b2 = arena.floats(512);
  arena.rewind(outer);
  // After rewinding to the outer marker, the same sequence replays to the
  // same addresses.
  float* a2 = arena.floats(256);
  EXPECT_EQ(a, a2);
  float* b3 = arena.floats(512);
  EXPECT_EQ(b2, b3);
}

TEST(Arena, GrowsAcrossBlocksWithoutInvalidatingLivePointers) {
  util::Arena arena;
  float* small = arena.floats(8);
  small[0] = 42.0f;
  // Force growth past the first block.
  float* big = arena.floats((std::int64_t{1} << 20));
  ASSERT_NE(big, nullptr);
  big[0] = 1.0f;
  EXPECT_EQ(small[0], 42.0f);  // old pointer still valid
  EXPECT_GE(arena.block_allocs(), 2);
}

// ---- Zero-allocation contract (Debug builds) --------------------------------

TEST(ZeroAllocContract, SteadyStateTrainStepIsAllocationFree) {
  if (!util::alloc_hook_active())
    GTEST_SKIP() << "allocation hook only active in Debug builds";
  const Dataset data = make_synthetic_dataset(32, 8, 1, 12, /*seed=*/7);
  SmallCnnConfig cfg;
  cfg.norm = NormMode::kGroup;
  cfg.classes = 8;
  cfg.stage_channels = {16, 32};
  SmallCnn model(cfg);
  Sgd opt({/*lr=*/0.05, /*momentum=*/0.9, /*weight_decay=*/1e-4});
  // Warm-up: grows the arena to its high-water mark and settles every
  // step-persistent buffer's capacity.
  for (int i = 0; i < 3; ++i)
    train_step(model, opt, data.images, data.labels, {8, 8, 8, 8});
  const std::int64_t before = util::kernel_path_allocs();
  for (int i = 0; i < 2; ++i)
    train_step(model, opt, data.images, data.labels, {8, 8, 8, 8});
  EXPECT_EQ(util::kernel_path_allocs(), before)
      << "steady-state conv/GEMM path touched the heap";
}

// ---- Kernel-ISA dispatch: portable and AVX2 families are bit-identical ------

/// Pins MBS_KERNEL / MBS_FORCE_NO_AVX2 for one test and restores the
/// default dispatch (env unset) on the way out.
struct IsaGuard {
  ~IsaGuard() {
    unsetenv("MBS_KERNEL");
    unsetenv("MBS_FORCE_NO_AVX2");
    detail::reset_microkernel_dispatch();
  }
  void force(const char* isa) {
    setenv("MBS_KERNEL", isa, 1);
    detail::reset_microkernel_dispatch();
  }
};

bool avx2_available() {
  return detail::avx2_microkernels() != nullptr && util::cpu_supports_avx2();
}

class KernelDispatch : public ::testing::TestWithParam<GemmShapeCase> {};

TEST_P(KernelDispatch, BothIsaFamiliesMatchNaiveBitForBit) {
  const GemmShapeCase p = GetParam();
  util::Rng rng(101);
  const Tensor a = Tensor::randn({p.m, p.k}, rng);
  const Tensor b = Tensor::randn({p.k, p.n}, rng);
  const Tensor init = Tensor::randn({p.n}, rng, 0.2);
  Tensor bt({p.n, p.k});
  for (int i = 0; i < p.k; ++i)
    for (int j = 0; j < p.n; ++j)
      bt[static_cast<std::int64_t>(j) * p.k + i] =
          b[static_cast<std::int64_t>(i) * p.n + j];
  Tensor at({p.k, p.m});
  for (int i = 0; i < p.m; ++i)
    for (int j = 0; j < p.k; ++j)
      at[static_cast<std::int64_t>(j) * p.m + i] =
          a[static_cast<std::int64_t>(i) * p.k + j];

  const Tensor ref = naive_matmul(a, b);
  const Tensor ref_bt = naive_matmul_bt(a, bt);
  const Tensor ref_at = naive_matmul_at(at, b);
  Tensor ref_btf({p.m, p.n});
  for (int i = 0; i < p.m; ++i)
    for (int j = 0; j < p.n; ++j) {
      float acc = init[j];
      for (int kk = 0; kk < p.k; ++kk)
        acc += a[static_cast<std::int64_t>(i) * p.k + kk] *
               bt[static_cast<std::int64_t>(j) * p.k + kk];
      ref_btf[static_cast<std::int64_t>(i) * p.n + j] = acc;
    }

  IsaGuard guard;
  BudgetGuard budget;
  for (const char* isa : {"portable", "avx2"}) {
    if (std::strcmp(isa, "avx2") == 0 && !avx2_available()) continue;
    guard.force(isa);
    ASSERT_EQ(util::to_string(active_gemm_isa()), std::string(isa));
    for (int budget_n : {1, 3}) {
      util::set_thread_budget(budget_n);
      const std::string tag = std::string(isa) + " matmul";
      expect_bits_equal(matmul(a, b), ref, tag.c_str());
      expect_bits_equal(matmul_bt(a, bt), ref_bt,
                        (std::string(isa) + " matmul_bt").c_str());
      expect_bits_equal(matmul_at(at, b), ref_at,
                        (std::string(isa) + " matmul_at").c_str());
      expect_bits_equal(matmul_bt_f32(a, bt, init), ref_btf,
                        (std::string(isa) + " matmul_bt_f32").c_str());
    }
  }
}

// K >= 128 defeats the shared small-GEMM shortcut, so every case below
// actually reaches the dispatched microkernels; N values land on the
// 16-wide block, the 8-wide half-tile, and the masked tail, and odd M
// exercises every MR row remainder.
INSTANTIATE_TEST_SUITE_P(
    RemainderTiles, KernelDispatch,
    ::testing::Values(GemmShapeCase{5, 131, 7},     // masked tail only
                      GemmShapeCase{17, 129, 23},   // 16-block + masked tail
                      GemmShapeCase{3, 200, 33},    // 2x16 + 1-lane tail
                      GemmShapeCase{4, 128, 16},    // exact tile multiples
                      GemmShapeCase{2, 257, 9},     // 8-wide + 1-lane tail
                      GemmShapeCase{1, 131, 1},     // degenerate M = N = 1
                      GemmShapeCase{33, 130, 15},   // M remainder 1, N 8+7
                      GemmShapeCase{6, 128, 31}));  // 16+8+masked 7

TEST(KernelDispatch, Avx2RequestWithoutCpuSupportFallsBackCleanly) {
  IsaGuard guard;
  setenv("MBS_FORCE_NO_AVX2", "1", 1);
  guard.force("avx2");
  EXPECT_EQ(active_gemm_isa(), util::KernelIsa::kPortable);
  // ...and GEMMs keep working on the fallback path.
  util::Rng rng(103);
  const Tensor a = Tensor::randn({9, 130}, rng);
  const Tensor b = Tensor::randn({130, 11}, rng);
  expect_bits_equal(matmul(a, b), naive_matmul(a, b), "fallback matmul");
}

TEST(KernelDispatch, DefaultResolutionPrefersAvx2WhenSupported) {
  IsaGuard guard;
  unsetenv("MBS_KERNEL");
  detail::reset_microkernel_dispatch();
  if (avx2_available())
    EXPECT_EQ(active_gemm_isa(), util::KernelIsa::kAvx2);
  else
    EXPECT_EQ(active_gemm_isa(), util::KernelIsa::kPortable);
}

// ---- Norm rewrite: raw-pointer loops == legacy Tensor::at() loops -----------

TEST(NormRewrite, PointerAndLegacyFormsAreBitIdentical) {
  const bool saved = norm_rewrite_enabled();
  util::Rng rng(107);
  const Tensor x = Tensor::randn({3, 4, 9, 7}, rng);  // odd H/W planes
  const Tensor gamma = Tensor::randn({4}, rng, 0.3);
  const Tensor beta = Tensor::randn({4}, rng, 0.3);
  Tensor dy = Tensor::randn(x.shape(), rng);

  auto run_all = [&] {
    std::vector<Tensor> out;
    NormCache bc;
    out.push_back(batchnorm_forward(x, gamma, beta, bc));
    out.push_back(bc.mean);
    out.push_back(bc.inv_std);
    out.push_back(bc.xhat);
    NormGrads bg = batchnorm_backward(dy, gamma, bc);
    out.push_back(bg.dx);
    out.push_back(bg.dgamma);
    out.push_back(bg.dbeta);
    NormCache gc;
    out.push_back(groupnorm_forward(x, gamma, beta, 2, gc));
    out.push_back(gc.mean);
    out.push_back(gc.inv_std);
    NormGrads gg = groupnorm_backward(dy, gamma, 2, gc);
    out.push_back(gg.dx);
    out.push_back(gg.dgamma);
    out.push_back(gg.dbeta);
    return out;
  };

  BudgetGuard budget;
  for (int budget_n : {1, 3}) {
    util::set_thread_budget(budget_n);
    set_norm_rewrite(true);
    const std::vector<Tensor> fast = run_all();
    set_norm_rewrite(false);
    const std::vector<Tensor> legacy = run_all();
    ASSERT_EQ(fast.size(), legacy.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
      expect_bits_equal(fast[i], legacy[i],
                        ("norm rewrite tensor " + std::to_string(i) +
                         " budget " + std::to_string(budget_n))
                            .c_str());
  }
  set_norm_rewrite(saved);
}

// ---- Tensor::count overflow guard -------------------------------------------

TEST(TensorCountDeathTest, OversizedShapesFailLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // 2^31 * 2^31 * 2^31 would silently wrap a 64-bit product in Release
  // builds before this guard existed.
  const int big = 1 << 30;
  EXPECT_DEATH(Tensor::count({big, big, big, 8}), "overflows int64");
  EXPECT_DEATH(Tensor::count({2, -3}), "negative dimension");
  // In-range products still work.
  EXPECT_EQ(Tensor::count({big, 4}), static_cast<std::int64_t>(big) * 4);
  EXPECT_EQ(Tensor::count({0, big, big}), 0);
}

}  // namespace
}  // namespace mbs::train
