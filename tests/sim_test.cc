// Integration tests for the training-step simulator: the orderings and
// magnitudes behind Fig. 10, 11, 12 and 14.
#include <gtest/gtest.h>

#include "models/zoo.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace mbs::sim {
namespace {

using core::Network;
using sched::ExecConfig;

StepResult run(const Network& net, ExecConfig cfg,
               const WaveCoreConfig& hw = WaveCoreConfig{}) {
  return simulate_step(net, sched::build_schedule(net, cfg), hw);
}

class SimPerNetwork : public ::testing::TestWithParam<std::string> {
 protected:
  Network net_ = models::make_network(GetParam());
};

TEST_P(SimPerNetwork, ResultsArePositiveAndConsistent) {
  const StepResult r = run(net_, ExecConfig::kMbs2);
  EXPECT_GT(r.time_s, 0);
  EXPECT_GT(r.dram_bytes, 0);
  EXPECT_GT(r.total_macs, 0);
  EXPECT_GT(r.energy.total(), 0);
  EXPECT_GT(r.systolic_utilization, 0);
  EXPECT_LE(r.systolic_utilization, 1.0);
  // The per-layer-type breakdown partitions total time.
  EXPECT_NEAR(r.time_by_type.total(), r.time_s, r.time_s * 1e-9);
}

TEST_P(SimPerNetwork, Mbs2FasterThanBaseline) {
  EXPECT_LT(run(net_, ExecConfig::kMbs2).time_s,
            run(net_, ExecConfig::kBaseline).time_s);
}

TEST_P(SimPerNetwork, ArchOptFasterThanBaseline) {
  // Weight double buffering removes inter-wave idle time (Fig. 8).
  EXPECT_LT(run(net_, ExecConfig::kArchOpt).time_s,
            run(net_, ExecConfig::kBaseline).time_s);
}

TEST_P(SimPerNetwork, Mbs2SavesEnergy) {
  EXPECT_LT(run(net_, ExecConfig::kMbs2).energy.total(),
            run(net_, ExecConfig::kBaseline).energy.total());
}

TEST_P(SimPerNetwork, MacsIndependentOfSchedule) {
  // Scheduling changes data movement and timing, never arithmetic.
  const double base = run(net_, ExecConfig::kBaseline).total_macs;
  const double mbs2 = run(net_, ExecConfig::kMbs2).total_macs;
  EXPECT_NEAR(base, mbs2, base * 1e-9);
}

TEST_P(SimPerNetwork, DramEnergyShareDropsUnderMbs) {
  // Sec. 6: the DRAM share of step energy falls (21.6% -> 8.7% for the deep
  // CNNs) because traffic shifts into the 8x-cheaper global buffer.
  if (GetParam() == "alexnet") GTEST_SKIP() << "compute dominated";
  EXPECT_LT(run(net_, ExecConfig::kMbs2).energy.dram_fraction(),
            run(net_, ExecConfig::kBaseline).energy.dram_fraction());
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, SimPerNetwork,
                         ::testing::ValuesIn(models::evaluated_network_names()));

// ---- Utilization (Fig. 14) ---------------------------------------------------

TEST(Utilization, BaselineVsArchOptMatchesPaperScale) {
  // Paper: Baseline averages 53.8%, ArchOpt 81.5% (unlimited DRAM BW).
  WaveCoreConfig hw;
  hw.unlimited_dram_bw = true;
  const Network net = models::make_network("resnet50");
  const double base = run(net, ExecConfig::kBaseline, hw).systolic_utilization;
  const double opt = run(net, ExecConfig::kArchOpt, hw).systolic_utilization;
  EXPECT_GT(base, 0.35);
  EXPECT_LT(base, 0.70);
  EXPECT_GT(opt, 0.70);
  EXPECT_GT(opt, base + 0.1);
}

TEST(Utilization, MbsWithinAFewPercentOfArchOpt) {
  // Sec. 6: grouped MBS regains utilization to within ~3% of full-batch.
  WaveCoreConfig hw;
  hw.unlimited_dram_bw = true;
  const Network net = models::make_network("resnet50");
  const double opt = run(net, ExecConfig::kArchOpt, hw).systolic_utilization;
  const double mbs2 = run(net, ExecConfig::kMbs2, hw).systolic_utilization;
  EXPECT_GT(mbs2, opt - 0.10);
}

TEST(Utilization, MbsFsLowerThanMbs1) {
  // Sec. 6: MBS-FS's single small sub-batch hurts utilization (66.7% vs
  // 78.6% in the paper).
  WaveCoreConfig hw;
  hw.unlimited_dram_bw = true;
  const Network net = models::make_network("resnet50");
  EXPECT_LT(run(net, ExecConfig::kMbsFs, hw).systolic_utilization,
            run(net, ExecConfig::kMbs1, hw).systolic_utilization);
}

// ---- Memory sensitivity (Fig. 11, 12) ------------------------------------------

TEST(MemorySensitivity, Mbs2RobustToLowBandwidth) {
  // Fig. 12: moving from HBM2x2 to LPDDR4 costs Baseline ~40% but MBS2 <15%.
  const Network net = models::make_network("resnet50");
  sched::ScheduleParams p;
  p.mini_batch = 64;  // Fig. 12 trains 64/core with high-capacity DRAM

  auto time_with = [&](ExecConfig cfg, const arch::MemoryConfig& mem) {
    WaveCoreConfig hw;
    hw.memory = mem;
    return simulate_step(net, sched::build_schedule(net, cfg, p), hw).time_s;
  };
  const double base_drop = time_with(ExecConfig::kBaseline, arch::lpddr4()) /
                           time_with(ExecConfig::kBaseline, arch::hbm2_x2());
  const double mbs_drop = time_with(ExecConfig::kMbs2, arch::lpddr4()) /
                          time_with(ExecConfig::kMbs2, arch::hbm2_x2());
  EXPECT_GT(base_drop, 1.2);
  EXPECT_LT(mbs_drop, 1.25);
  EXPECT_LT(mbs_drop, base_drop);
}

TEST(MemorySensitivity, BufferSizeMattersLittleForMbs) {
  // Fig. 11: MBS1/MBS2 vary little from 5 MiB to 40 MiB.
  const Network net = models::make_network("resnet50");
  auto time_at = [&](double mib) {
    sched::ScheduleParams p;
    p.buffer_bytes = static_cast<std::int64_t>(mib * 1024 * 1024);
    WaveCoreConfig hw;
    hw.global_buffer_bytes = p.buffer_bytes;
    return simulate_step(net, sched::build_schedule(net, ExecConfig::kMbs2, p),
                         hw).time_s;
  };
  EXPECT_LT(time_at(5.0) / time_at(40.0), 1.30);
}

TEST(MemorySensitivity, UnlimitedBandwidthRemovesMemoryTime) {
  const Network net = models::make_network("resnet50");
  WaveCoreConfig hw;
  hw.unlimited_dram_bw = true;
  const StepResult r = run(net, ExecConfig::kBaseline, hw);
  EXPECT_EQ(r.memory_time_s, 0);
  EXPECT_LT(r.time_s, run(net, ExecConfig::kBaseline).time_s);
}

// ---- Fig. 12 breakdown -----------------------------------------------------------

TEST(Breakdown, ConvDominatesComputeNetworks) {
  const Network net = models::make_network("alexnet");
  const StepResult r = run(net, ExecConfig::kArchOpt);
  EXPECT_GT(r.time_by_type.conv + r.time_by_type.fc, 0.6 * r.time_s);
}

TEST(Breakdown, NormSignificantForBaselineResNet) {
  // The memory-bound normalization layers are a large share of baseline
  // ResNet time — the bandwidth-boundedness MBS attacks.
  const Network net = models::make_network("resnet50");
  const StepResult r = run(net, ExecConfig::kBaseline);
  EXPECT_GT(r.time_by_type.norm, 0.1 * r.time_s);
}

TEST(Breakdown, MbsShrinksVectorLayerTime) {
  const Network net = models::make_network("resnet50");
  const StepResult base = run(net, ExecConfig::kBaseline);
  const StepResult mbs = run(net, ExecConfig::kMbs2);
  const double base_vec =
      base.time_by_type.norm + base.time_by_type.pool + base.time_by_type.sum;
  const double mbs_vec =
      mbs.time_by_type.norm + mbs.time_by_type.pool + mbs.time_by_type.sum;
  EXPECT_LT(mbs_vec, 0.6 * base_vec);
}

// ---- Speedup magnitudes (Fig. 10a shape) ------------------------------------------

TEST(Speedups, DeepCnnSpeedupsInPaperRange) {
  // Paper: MBS2 improves training performance by 36-66% over ArchOpt for
  // the deep CNNs. Accept a generous band around that.
  for (const char* name : {"resnet50", "resnet101", "inception_v3"}) {
    const Network net = models::make_network(name);
    const double s = run(net, ExecConfig::kArchOpt).time_s /
                     run(net, ExecConfig::kMbs2).time_s;
    EXPECT_GT(s, 1.15) << name;
    EXPECT_LT(s, 2.0) << name;
  }
}

TEST(Speedups, InceptionFsSlowerThanIl) {
  // Sec. 6's signature inversion: MBS-FS underperforms IL on Inception.
  const Network net = models::make_network("inception_v3");
  EXPECT_GT(run(net, ExecConfig::kMbsFs).time_s,
            run(net, ExecConfig::kIL).time_s);
}

TEST(Speedups, AlexNetFsSlowerThanBaseline) {
  const Network net = models::make_network("alexnet");
  EXPECT_GT(run(net, ExecConfig::kMbsFs).time_s,
            run(net, ExecConfig::kBaseline).time_s);
}

}  // namespace
}  // namespace mbs::sim
