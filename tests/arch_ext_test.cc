// Tests for the Sec. 4.2 extensions: local-buffer sizing and the
// multi-accelerator weak-scaling model.
#include <gtest/gtest.h>

#include "arch/buffers.h"
#include "arch/scaling.h"

namespace mbs::arch {
namespace {

TEST(LocalBuffers, MatchPaperSizes) {
  // Sec. 4.2: B half-buffer 32 KiB (128x128x16b), A half-buffer 64 KiB,
  // accumulation part 128 KiB.
  const LocalBufferPlan p = plan_local_buffers(SystolicConfig{});
  EXPECT_EQ(p.b_half_bytes, 32 * 1024);
  EXPECT_EQ(p.a_half_bytes, 64 * 1024);
  EXPECT_EQ(p.acc_part_bytes, 128 * 1024);
}

TEST(LocalBuffers, TotalIncludesAllCopies) {
  const LocalBufferPlan p = plan_local_buffers(SystolicConfig{});
  // 2x32 + 2x64 + 3x128 = 576 KiB of local storage per core.
  EXPECT_EQ(p.total_bytes(), (2 * 32 + 2 * 64 + 3 * 128) * 1024);
}

TEST(LocalBuffers, ScaleWithArrayGeometry) {
  SystolicConfig small;
  small.rows = 64;
  small.cols = 64;
  small.acc_half_bytes = 32 * 1024;
  const LocalBufferPlan p = plan_local_buffers(small);
  EXPECT_EQ(p.b_half_bytes, 64 * 64 * 2);
  EXPECT_EQ(p.a_half_bytes, 2 * p.b_half_bytes);
  EXPECT_EQ(p.acc_part_bytes,
            static_cast<std::int64_t>(small.tile_m()) * 64 * 4);
}

TEST(LocalBuffers, AHalfHidesWeightLoad) {
  // A halves are twice B halves so A streaming covers the next wave's
  // weight shift-in (Sec. 4.2: "A blocks need to be twice as large").
  const LocalBufferPlan p = plan_local_buffers(SystolicConfig{});
  EXPECT_EQ(p.a_half_bytes, 2 * p.b_half_bytes);
}

TEST(Scaling, SingleDeviceIsFree) {
  const ScalingResult r = weak_scaling(0.1, 100e6, 1);
  EXPECT_EQ(r.allreduce_time_s, 0);
  EXPECT_DOUBLE_EQ(r.efficiency, 1.0);
}

TEST(Scaling, RingAllReduceBandwidthTerm) {
  InterconnectConfig net;
  net.bandwidth_bytes_per_s = 10e9;
  net.latency_s = 0;
  // 2*(p-1)/p * bytes / bw.
  EXPECT_NEAR(ring_allreduce_seconds(10e9, 2, net), 1.0, 1e-9);
  EXPECT_NEAR(ring_allreduce_seconds(10e9, 4, net), 1.5, 1e-9);
}

TEST(Scaling, EfficiencyDecreasesWithDevices) {
  const auto sweep = weak_scaling_sweep(0.08, 51e6, {1, 2, 4, 8, 16});
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].efficiency, sweep[i - 1].efficiency + 1e-12);
    EXPECT_GE(sweep[i].step_time_s, sweep[i - 1].step_time_s - 1e-12);
  }
  // ResNet50-scale gradients over PCIe-class links still scale well: the
  // 80 ms MBS step dwarfs the ~10 ms all-reduce.
  EXPECT_GT(sweep.back().efficiency, 0.7);
}

TEST(Scaling, AllReduceBoundedByTwiceGradientVolume) {
  // The ring moves at most 2x the gradient bytes per device.
  InterconnectConfig net;
  net.latency_s = 0;
  const double bytes = 51e6;
  for (int p : {2, 3, 8, 64})
    EXPECT_LE(ring_allreduce_seconds(bytes, p, net),
              2.0 * bytes / net.bandwidth_bytes_per_s + 1e-12);
}

}  // namespace
}  // namespace mbs::arch
