// Tests for the parallel experiment engine: scenario cache keys, evaluator
// memoization, parallel-vs-serial determinism of SweepRunner, and the
// ResultSink CSV/JSON round trip.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <stdexcept>

#include "engine/engine.h"
#include "models/zoo.h"
#include "sched/config.h"

namespace mbs::engine {
namespace {

Scenario mbs2_scenario(const std::string& net = "resnet50") {
  Scenario s;
  s.network = net;
  s.config = sched::ExecConfig::kMbs2;
  return s;
}

bool step_equal(const sim::StepResult& a, const sim::StepResult& b) {
  return a.time_s == b.time_s && a.dram_bytes == b.dram_bytes &&
         a.buffer_bytes == b.buffer_bytes && a.total_macs == b.total_macs &&
         a.systolic_utilization == b.systolic_utilization &&
         a.compute_time_s == b.compute_time_s &&
         a.memory_time_s == b.memory_time_s &&
         a.energy.total() == b.energy.total() &&
         a.time_by_type.total() == b.time_by_type.total();
}

// ---- Scenario keys ----------------------------------------------------------

TEST(Scenario, EqualScenariosShareKeys) {
  const Scenario a = mbs2_scenario();
  const Scenario b = mbs2_scenario();
  EXPECT_EQ(a.cache_key(), b.cache_key());
  EXPECT_EQ(a.schedule_key(), b.schedule_key());
}

TEST(Scenario, ScheduleKeyIgnoresHardware) {
  Scenario a = mbs2_scenario();
  Scenario b = mbs2_scenario();
  b.hw.memory = arch::lpddr4();
  b.hw.unlimited_dram_bw = true;
  EXPECT_EQ(a.schedule_key(), b.schedule_key());
  EXPECT_NE(a.cache_key(), b.cache_key());
}

TEST(Scenario, KeyDistinguishesEveryScheduleField) {
  const Scenario base = mbs2_scenario();
  Scenario s = base;
  s.config = sched::ExecConfig::kMbs1;
  EXPECT_NE(s.schedule_key(), base.schedule_key());
  s = base;
  s.params.buffer_bytes *= 2;
  EXPECT_NE(s.schedule_key(), base.schedule_key());
  s = base;
  s.params.mini_batch = 64;
  EXPECT_NE(s.schedule_key(), base.schedule_key());
  s = base;
  s.params.optimal_grouping = true;
  EXPECT_NE(s.schedule_key(), base.schedule_key());
  s = base;
  s.network = "alexnet";
  EXPECT_NE(s.schedule_key(), base.schedule_key());
}

TEST(Scenario, GpuKeyIsDisjointFromWaveCoreKey) {
  Scenario wave = mbs2_scenario();
  Scenario gpu = mbs2_scenario();
  gpu.device = Device::kGpu;
  EXPECT_NE(wave.cache_key(), gpu.cache_key());
}

TEST(Scenario, GridIsNetworkMajor) {
  const auto grid = scenario_grid({"resnet50", "alexnet"},
                                  {sched::ExecConfig::kBaseline,
                                   sched::ExecConfig::kMbs2});
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].network, "resnet50");
  EXPECT_EQ(grid[0].config, sched::ExecConfig::kBaseline);
  EXPECT_EQ(grid[1].network, "resnet50");
  EXPECT_EQ(grid[1].config, sched::ExecConfig::kMbs2);
  EXPECT_EQ(grid[2].network, "alexnet");
  EXPECT_EQ(grid[3].config, sched::ExecConfig::kMbs2);
}

// ---- Evaluator memoization --------------------------------------------------

TEST(Evaluator, MemoizesNetworkBuilds) {
  Evaluator eval;
  const core::Network& a = eval.network("resnet50");
  const core::Network& b = eval.network("resnet50");
  EXPECT_EQ(&a, &b);  // same cached object, not a rebuild
  const EvaluatorStats stats = eval.stats();
  EXPECT_EQ(stats.network_misses, 1);
  EXPECT_EQ(stats.network_hits, 1);
}

TEST(Evaluator, MemoizesSchedulesAcrossHardwareVariants) {
  Evaluator eval;
  Scenario a = mbs2_scenario();
  Scenario b = mbs2_scenario();
  b.hw.memory = arch::lpddr4();  // different hw, same scheduling problem
  const sched::Schedule& sa = eval.schedule(a);
  const sched::Schedule& sb = eval.schedule(b);
  EXPECT_EQ(&sa, &sb);
}

TEST(Evaluator, CacheHitReturnsIdenticalStepResult) {
  Evaluator eval;
  const Scenario s = mbs2_scenario();
  const sim::StepResult first = eval.step(s);
  const sim::StepResult second = eval.step(s);  // cache hit
  EXPECT_TRUE(step_equal(first, second));
  EXPECT_EQ(&eval.step(s), &eval.step(s));  // same cached object
  const EvaluatorStats stats = eval.stats();
  EXPECT_EQ(stats.step_misses, 1);
  EXPECT_GE(stats.step_hits, 2);
}

TEST(Evaluator, DistinctKeysComputeDistinctResults) {
  Evaluator eval;
  Scenario a = mbs2_scenario();
  Scenario b = mbs2_scenario();
  b.config = sched::ExecConfig::kBaseline;
  EXPECT_NE(eval.step(a).time_s, eval.step(b).time_s);
}

// ---- SweepRunner determinism ------------------------------------------------

TEST(SweepRunner, ParallelMatchesSerialBitForBit) {
  const auto grid = scenario_grid(models::evaluated_network_names(),
                                  sched::paper_tab3_configs());

  // Serial reference: evaluate each scenario in order on one thread.
  Evaluator serial_eval;
  std::vector<ScenarioResult> serial;
  serial.reserve(grid.size());
  for (const Scenario& s : grid)
    serial.push_back(evaluate_scenario(s, serial_eval));

  // Parallel run with an explicit pool.
  SweepOptions opts;
  opts.threads = 8;
  Evaluator par_eval;
  const auto parallel = SweepRunner(opts).run(grid, par_eval);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].scenario.cache_key(), serial[i].scenario.cache_key());
    EXPECT_TRUE(step_equal(parallel[i].step, serial[i].step))
        << "scenario " << i << " diverged between serial and parallel runs";
    EXPECT_EQ(parallel[i].traffic->dram_bytes(),
              serial[i].traffic->dram_bytes());
    EXPECT_EQ(parallel[i].schedule->groups.size(),
              serial[i].schedule->groups.size());
  }

  // The sweep shares intermediates: six network builds serve 36 scenarios.
  const EvaluatorStats stats = par_eval.stats();
  EXPECT_EQ(stats.network_misses, 6);
  EXPECT_EQ(stats.schedule_misses, 36);
}

TEST(SweepRunner, ResultsComeBackInInputOrder) {
  SweepOptions opts;
  opts.threads = 4;
  const SweepRunner runner(opts);
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 64; ++i) jobs.push_back([i] { return i * i; });
  const std::vector<int> out = runner.map<int>(jobs);
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(SweepRunner, PropagatesWorkerExceptions) {
  SweepOptions opts;
  opts.threads = 2;
  const SweepRunner runner(opts);
  EXPECT_THROW(
      runner.for_each_index(8,
                            [](int i) {
                              if (i == 3) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
}

TEST(SweepRunner, GpuScenariosMapIntoStepFields) {
  Scenario s;
  s.network = "resnet50";
  s.device = Device::kGpu;
  Evaluator eval;
  const auto results = SweepRunner().run({s}, eval);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].schedule, nullptr);
  EXPECT_GT(results[0].gpu.time_s, 0);
  EXPECT_EQ(results[0].step.time_s, results[0].gpu.time_s);
  EXPECT_EQ(results[0].step.dram_bytes, results[0].gpu.dram_bytes);
  // GPU cache activity is counted separately from the WaveCore step cache.
  EXPECT_EQ(eval.stats().gpu_misses, 1);
  EXPECT_EQ(eval.stats().step_misses, 0);
}

TEST(SweepRunner, ShallowStagesSkipLaterPipelineWork) {
  Scenario s = mbs2_scenario();
  s.stage = Stage::kSchedule;
  Evaluator eval;
  const auto results = SweepRunner().run({s}, eval);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].schedule, nullptr);
  EXPECT_EQ(results[0].traffic, nullptr);
  EXPECT_EQ(eval.stats().step_misses, 0);   // simulate_step never ran
  EXPECT_EQ(eval.stats().traffic_misses, 0);

  // Deepening the same scenario reuses the memoized shallow stages.
  s.stage = Stage::kSimulate;
  const auto deep = SweepRunner().run({s}, eval);
  EXPECT_EQ(deep[0].schedule, results[0].schedule);
  EXPECT_EQ(eval.stats().schedule_misses, 1);
}

// ---- ResultSink -------------------------------------------------------------

TEST(ResultSink, CsvRoundTripsTableContents) {
  ResultSink sink("Fig. X", {"network", "value", "note"});
  sink.add_row({"resnet50", "1.25", "plain"});
  sink.add_row({"odd,cell", "with \"quotes\"", "multi\nline"});
  std::ostringstream os;
  sink.write_csv(os);

  const ResultSink::Parsed parsed = ResultSink::parse_csv(os.str());
  EXPECT_EQ(parsed.headers, sink.table().headers());
  ASSERT_EQ(parsed.rows.size(), sink.table().rows().size());
  for (std::size_t i = 0; i < parsed.rows.size(); ++i)
    EXPECT_EQ(parsed.rows[i], sink.table().rows()[i]);
}

TEST(ResultSink, JsonRoundTripsTableContents) {
  ResultSink sink("Fig. 10a: time \"per step\"", {"network", "t [ms]"});
  sink.add_row({"resnet50", "58.3"});
  sink.add_row({"needs \\escaping\t", "line\nbreak"});
  std::ostringstream os;
  sink.write_json(os);

  const ResultSink::Parsed parsed = ResultSink::parse_json(os.str());
  EXPECT_EQ(parsed.title, sink.title());
  EXPECT_EQ(parsed.headers, sink.table().headers());
  ASSERT_EQ(parsed.rows.size(), sink.table().rows().size());
  for (std::size_t i = 0; i < parsed.rows.size(); ++i)
    EXPECT_EQ(parsed.rows[i], sink.table().rows()[i]);
}

TEST(ResultSink, ShortRowsRoundTripPadded) {
  ResultSink sink("t", {"a", "b", "c"});
  sink.add_row({"only"});  // padded to ("only", "", "") by util::Table
  std::ostringstream csv, json;
  sink.write_csv(csv);
  sink.write_json(json);
  EXPECT_EQ(ResultSink::parse_csv(csv.str()).rows[0],
            (std::vector<std::string>{"only", "", ""}));
  EXPECT_EQ(ResultSink::parse_json(json.str()).rows[0],
            (std::vector<std::string>{"only", "", ""}));
}

}  // namespace
}  // namespace mbs::engine
